(* The SetPath closure (paper Fig. 9) in isolation: direct edges, equality
   as two subsets, component-wise implications, transitive chains, and
   culprit tracking. *)

open Orm
module Setcomp = Orm_patterns.Setcomp

let bool = Alcotest.check Alcotest.bool

let schema =
  Schema.empty "sc"
  |> Schema.add_fact (Fact_type.make "f" "A" "B")
  |> Schema.add_fact (Fact_type.make "g" "A" "B")
  |> Schema.add_fact (Fact_type.make "h" "A" "B")
  |> Schema.add_constraint
       (Constraints.make "s1" (Subset (Ids.whole_predicate "f", Ids.whole_predicate "g")))
  |> Schema.add_constraint
       (Constraints.make "s2" (Subset (Ids.whole_predicate "g", Ids.whole_predicate "h")))
  |> Schema.add_constraint
       (Constraints.make "e1" (Equality (Single (Ids.first "h"), Single (Ids.first "f"))))

let g = Setcomp.build schema

let path a b = Setcomp.set_path g a b

let test_direct () =
  bool "f <= g" true (path (Ids.whole_predicate "f") (Ids.whole_predicate "g") <> None);
  bool "no reverse" true
    (path (Ids.whole_predicate "g") (Ids.whole_predicate "f") = None);
  bool "no self path" true
    (path (Ids.whole_predicate "f") (Ids.whole_predicate "f") = None)

let test_transitive () =
  match path (Ids.whole_predicate "f") (Ids.whole_predicate "h") with
  | Some ids ->
      Alcotest.check (Alcotest.list Alcotest.string) "culprits along the chain"
        [ "s1"; "s2" ] (List.sort String.compare ids)
  | None -> Alcotest.fail "transitive path expected"

let test_componentwise () =
  (* Pair subsets imply role subsets (Fig. 9). *)
  bool "f.1 <= g.1 implied" true
    (path (Single (Ids.first "f")) (Single (Ids.first "g")) <> None);
  bool "f.2 <= g.2 implied" true
    (path (Single (Ids.second "f")) (Single (Ids.second "g")) <> None);
  (* ... but role subsets do NOT imply pair subsets. *)
  let role_only =
    Schema.empty "ro"
    |> Schema.add_fact (Fact_type.make "f" "A" "B")
    |> Schema.add_fact (Fact_type.make "g" "A" "B")
    |> Schema.add (Subset (Single (Ids.first "f"), Single (Ids.first "g")))
  in
  let g' = Setcomp.build role_only in
  bool "no pair path from role subset" true
    (Setcomp.set_path g' (Ids.whole_predicate "f") (Ids.whole_predicate "g") = None)

let test_equality_both_ways () =
  bool "h.1 <= f.1" true (path (Single (Ids.first "h")) (Single (Ids.first "f")) <> None);
  bool "f.1 <= h.1" true (path (Single (Ids.first "f")) (Single (Ids.first "h")) <> None)

let test_mixed_chain () =
  (* f.1 <= g.1 (implied) ... g <= h gives g.1 <= h.1; h.1 = f.1 closes a
     cycle; any_path must find something in either direction. *)
  bool "any_path f.1 g.1" true
    (Setcomp.any_path g (Single (Ids.first "f")) (Single (Ids.first "g")) <> None);
  bool "any_path g.1 f.1 (via h)" true
    (Setcomp.any_path g (Single (Ids.first "g")) (Single (Ids.first "f")) <> None)

let test_empty_graph () =
  let g' = Setcomp.build (Schema.empty "none") in
  bool "no paths in empty graph" true
    (Setcomp.set_path g' (Single (Ids.first "f")) (Single (Ids.first "g")) = None)

let suite =
  [
    Alcotest.test_case "direct edges" `Quick test_direct;
    Alcotest.test_case "transitive chain with culprits" `Quick test_transitive;
    Alcotest.test_case "component-wise implication" `Quick test_componentwise;
    Alcotest.test_case "equality is two subsets" `Quick test_equality_both_ways;
    Alcotest.test_case "mixed chains" `Quick test_mixed_chain;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
  ]
