(* DOT and JSON exporters: structure, highlighting, escaping. *)

open Orm
module Dot = Orm_export.Dot
module Json = Orm_export.Json

let contains = Str_split_contains.contains
let bool = Alcotest.check Alcotest.bool

let test_dot_structure () =
  let dot = Dot.to_string Figures.fig1 in
  bool "digraph header" true (contains dot "digraph \"fig1\"");
  bool "type node" true (contains dot "ot_PhDStudent");
  bool "subtype arrow" true (contains dot "ot_Student -> ot_Person");
  bool "exclusion node" true (contains dot "shape=circle");
  bool "balanced braces" true
    (String.length (String.trim dot) > 0
    && String.get (String.trim dot) (String.length (String.trim dot) - 1) = '}')

let test_dot_highlighting () =
  let report = Orm_patterns.Engine.check Figures.fig1 in
  let dot = Dot.to_string ~report Figures.fig1 in
  bool "unsat type painted red" true
    (contains dot "ot_PhDStudent [label=\"PhDStudent\", shape=ellipse, color=red");
  let plain = Dot.to_string Figures.fig1 in
  bool "no red without report" false (contains plain "color=red")

let test_dot_role_marks () =
  let dot = Dot.to_string Figures.fig10 in
  bool "uniqueness mark" true (contains dot "u");
  bool "frequency mark" true (contains dot "FC(2-5)")

let test_dot_rings_and_values () =
  let dot = Dot.to_string Figures.fig11 in
  bool "ring annotation" true (contains dot "{ir}");
  let dot5 = Dot.to_string Figures.fig5 in
  bool "value constraint shown" true (contains dot5 "'x1'");
  bool "double periphery" true (contains dot5 "peripheries=2")

let test_json_escaping () =
  Alcotest.check Alcotest.string "quotes and newline" {|a\"b\\c\nd|}
    (Json.escape_string "a\"b\\c\nd");
  Alcotest.check Alcotest.string "control chars" "\\u0001"
    (Json.escape_string "\001")

let test_json_schema () =
  let json = Json.of_schema Figures.fig5 in
  bool "has name" true (contains json {|"name":"fig5"|});
  bool "has fact" true (contains json {|"player1":"A"|});
  bool "has frequency" true (contains json {|"kind":"frequency"|});
  bool "has values" true (contains json {|"values":["x1","x2"]|})

let test_json_report () =
  let json = Json.of_report (Orm_patterns.Engine.check Figures.fig5) in
  bool "pattern origin" true (contains json {|"kind":"pattern","number":4|});
  bool "unsat roles" true (contains json {|"unsat_roles":[{"fact":"f1","side":1}|});
  bool "element certainty" true (contains json {|"certainty":"element"|});
  let joint = Json.of_report (Orm_patterns.Engine.check Figures.fig6) in
  bool "joint certainty" true (contains joint {|"certainty":"joint"|})

(* Rough JSON well-formedness: balanced braces/brackets outside strings. *)
let balanced json =
  let depth = ref 0 and in_str = ref false and escaped = ref false and ok = ref true in
  String.iter
    (fun c ->
      if !escaped then escaped := false
      else if !in_str then begin
        if c = '\\' then escaped := true else if c = '"' then in_str := false
      end
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    json;
  !ok && !depth = 0 && not !in_str

let test_json_balanced =
  QCheck.Test.make ~count:40 ~name:"JSON output is balanced on generated schemas"
    QCheck.(pair (int_range 0 1000) (int_range 1 9))
    (fun (seed, p) ->
      let schema =
        (Orm_generator.Faults.inject ~seed p (Orm_generator.Gen.clean ~seed ())).schema
      in
      balanced (Json.of_schema schema)
      && balanced (Json.of_report (Orm_patterns.Engine.check schema)))

let suite =
  [
    Alcotest.test_case "dot structure" `Quick test_dot_structure;
    Alcotest.test_case "dot highlights unsat elements" `Quick test_dot_highlighting;
    Alcotest.test_case "dot role marks" `Quick test_dot_role_marks;
    Alcotest.test_case "dot rings and values" `Quick test_dot_rings_and_values;
    Alcotest.test_case "json escaping" `Quick test_json_escaping;
    Alcotest.test_case "json schema" `Quick test_json_schema;
    Alcotest.test_case "json report" `Quick test_json_report;
    QCheck_alcotest.to_alcotest test_json_balanced;
  ]
