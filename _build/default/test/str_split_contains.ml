(* Test helper: substring containment. *)
let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  n = 0 || loop 0
