(* The SAT stack: DPLL solver units, cardinality encodings, and the key
   differential property - the propositional route and the explicit model
   finder decide the bounded ORM question identically. *)

open Orm
module D = Orm_sat.Dpll
module B = Orm_sat.Cnf_builder
module Encode = Orm_sat.Encode
module Finder = Orm_reasoner.Finder

let bool = Alcotest.check Alcotest.bool
let int = Alcotest.check Alcotest.int

let is_sat = function D.Sat _ -> true | D.Unsat | D.Timeout -> false

let test_dpll_basics () =
  bool "empty cnf" true (is_sat (D.solve ~nvars:0 []));
  bool "unit" true (is_sat (D.solve ~nvars:1 [ [ 1 ] ]));
  bool "contradiction" false (is_sat (D.solve ~nvars:1 [ [ 1 ]; [ -1 ] ]));
  bool "empty clause" false (is_sat (D.solve ~nvars:1 [ [] ]));
  bool "2sat chain" true
    (is_sat (D.solve ~nvars:3 [ [ 1; 2 ]; [ -1; 3 ]; [ -2; 3 ]; [ -3; 1 ] ]));
  (* A satisfying assignment verifies. *)
  (match D.solve ~nvars:4 [ [ 1; -2 ]; [ 2; 3 ]; [ -1; -3; 4 ] ] with
  | D.Sat a -> bool "model verifies" true (D.verify [ [ 1; -2 ]; [ 2; 3 ]; [ -1; -3; 4 ] ] a)
  | D.Unsat | D.Timeout -> Alcotest.fail "expected sat");
  Alcotest.check_raises "range check"
    (Invalid_argument "Dpll.solve: literal out of range") (fun () ->
      ignore (D.solve ~nvars:1 [ [ 2 ] ]))

(* Pigeonhole PHP(n+1, n) is unsatisfiable and exercises backtracking. *)
let pigeonhole pigeons holes =
  let var p h = (p * holes) + h + 1 in
  let per_pigeon =
    List.init pigeons (fun p -> List.init holes (fun h -> var p h))
  in
  let conflicts =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun p ->
            List.filter_map
              (fun p' -> if p < p' then Some [ -var p h; -var p' h ] else None)
              (List.init pigeons Fun.id))
          (List.init pigeons Fun.id))
      (List.init holes Fun.id)
  in
  (pigeons * holes, per_pigeon @ conflicts)

let test_pigeonhole () =
  let nvars, cnf = pigeonhole 4 3 in
  bool "php(4,3) unsat" false (is_sat (D.solve ~nvars cnf));
  let nvars, cnf = pigeonhole 3 3 in
  bool "php(3,3) sat" true (is_sat (D.solve ~nvars cnf))

let count_true lits a =
  List.length (List.filter (fun l -> a.(abs l)) lits)

let test_cardinality_encodings () =
  (* at_most k: enumerate all assignments of the free vars by solving with
     forced patterns. *)
  List.iter
    (fun (n, k) ->
      let b = B.create () in
      let lits = List.init n (fun i -> B.var b (Printf.sprintf "x%d" i)) in
      B.at_most b k lits;
      (* Can we have exactly k true?  Force k of them. *)
      List.iteri (fun i l -> if i < k then B.add b [ l ]) lits;
      (match B.solve b with
      | D.Sat a -> bool (Printf.sprintf "≤%d of %d: %d ok" k n k) true (count_true lits a <= k)
      | D.Unsat | D.Timeout -> Alcotest.failf "at_most %d of %d should allow %d" k n k);
      (* Forcing k+1 must be unsat. *)
      let b2 = B.create () in
      let lits2 = List.init n (fun i -> B.var b2 (Printf.sprintf "x%d" i)) in
      B.at_most b2 k lits2;
      List.iteri (fun i l -> if i <= k then B.add b2 [ l ]) lits2;
      bool (Printf.sprintf "≤%d of %d: %d too many" k n (k + 1)) false (is_sat (B.solve b2)))
    [ (4, 1); (4, 2); (5, 3); (6, 2) ]

let test_at_least () =
  let b = B.create () in
  let lits = List.init 5 (fun i -> B.var b (Printf.sprintf "y%d" i)) in
  B.at_least b 3 lits;
  (match B.solve b with
  | D.Sat a -> bool "≥3 of 5 honoured" true (count_true lits a >= 3)
  | D.Unsat | D.Timeout -> Alcotest.fail "at_least 3 of 5 is satisfiable");
  let b2 = B.create () in
  let lits2 = List.init 3 (fun i -> B.var b2 (Printf.sprintf "y%d" i)) in
  B.at_least b2 4 lits2;
  bool "≥4 of 3 impossible" false (is_sat (B.solve b2))

let test_guarded_cardinality () =
  (* unless-guarded at_least: disabled when the guard is true. *)
  let b = B.create () in
  let guard = B.var b "g" in
  let lits = List.init 4 (fun i -> B.var b (Printf.sprintf "z%d" i)) in
  B.at_least ~unless:guard b 3 lits;
  B.add b [ guard ];
  List.iter (fun l -> B.add b [ -l ]) lits;
  bool "guard disables the constraint" true (is_sat (B.solve b));
  let b2 = B.create () in
  let guard2 = B.var b2 "g" in
  let lits2 = List.init 4 (fun i -> B.var b2 (Printf.sprintf "z%d" i)) in
  B.at_least ~unless:guard2 b2 3 lits2;
  B.add b2 [ -guard2 ];
  List.iter (fun l -> B.add b2 [ -l ]) lits2;
  bool "unguarded constraint bites" false (is_sat (B.solve b2))

(* --- Differential: Encode vs Finder on the paper's figures ----------- *)

let agree fig schema query =
  let sat_says = Encode.solve ~budget:400_000 schema query in
  let finder_query : Finder.query =
    match (query : Encode.query) with
    | Schema_satisfiable -> Schema_satisfiable
    | Type_satisfiable t -> Type_satisfiable t
    | Role_satisfiable r -> Role_satisfiable r
    | All_populated rs -> All_populated rs
    | Strongly_satisfiable -> Strongly_satisfiable
  in
  let finder_says = Finder.solve ~budget:250_000 schema finder_query in
  match (sat_says, finder_says) with
  | Encode.Model _, Finder.Model _ | Encode.No_model, Finder.No_model -> ()
  | Encode.Timeout, _ | _, Finder.Budget_exceeded -> ()  (* inconclusive *)
  | Encode.Model pop, Finder.No_model ->
      Alcotest.failf "%s: SAT finds a model the finder refutes:@.%a" fig
        Orm_semantics.Population.pp pop
  | Encode.No_model, Finder.Model pop ->
      Alcotest.failf "%s: finder finds a model SAT refutes:@.%a" fig
        Orm_semantics.Population.pp pop

let test_figures_differential () =
  List.iter
    (fun (e : Figures.expectation) ->
      agree e.figure e.schema Schema_satisfiable;
      List.iter (fun t -> agree e.figure e.schema (Type_satisfiable t)) e.unsat_types;
      List.iter (fun r -> agree e.figure e.schema (Role_satisfiable r)) e.unsat_roles;
      (* And one satisfiable element per figure as a positive control. *)
      match Schema.object_types e.schema with
      | t :: _ when not (List.mem t e.unsat_types) ->
          agree e.figure e.schema (Type_satisfiable t)
      | _ -> ())
    Figures.all

let test_random_differential =
  QCheck.Test.make ~count:8 ~name:"SAT route = finder on faulted schemas"
    QCheck.(pair (int_range 0 300) (int_range 1 9))
    (fun (seed, p) ->
      let schema =
        (Orm_generator.Faults.inject ~seed p
           (Orm_generator.Gen.clean ~config:(Orm_generator.Gen.sized 2) ~seed ()))
          .schema
      in
      let report = Orm_patterns.Engine.check schema in
      (* Check the flagged elements plus strong satisfiability. *)
      Ids.String_set.iter
        (fun t -> agree "rand" schema (Type_satisfiable t))
        report.unsat_types;
      Ids.Role_set.iter
        (fun r -> agree "rand" schema (Role_satisfiable r))
        report.unsat_roles;
      true)

let test_stats () =
  ignore (Encode.solve Figures.fig1 (Type_satisfiable "PhDStudent"));
  let stats = Encode.last_stats () in
  bool "variables allocated" true (stats.variables > 0);
  bool "clauses emitted" true (stats.clauses > 0)

let test_fig5_sat_verdicts () =
  (* The canonical frequency-value contradiction, end to end on the SAT
     route alone. *)
  (match Encode.solve Figures.fig5 (Role_satisfiable (Ids.first "f1")) with
  | Encode.No_model -> ()
  | Encode.Model _ -> Alcotest.fail "fig5 f1.1 should be refuted"
  | Encode.Timeout -> Alcotest.fail "timeout");
  match Encode.solve Figures.fig5 Schema_satisfiable with
  | Encode.Model _ -> ()
  | Encode.No_model | Encode.Timeout -> Alcotest.fail "fig5 is weakly satisfiable"

let suite =
  [
    Alcotest.test_case "dpll basics" `Quick test_dpll_basics;
    Alcotest.test_case "pigeonhole" `Quick test_pigeonhole;
    Alcotest.test_case "cardinality encodings" `Quick test_cardinality_encodings;
    Alcotest.test_case "at_least" `Quick test_at_least;
    Alcotest.test_case "guarded cardinality" `Quick test_guarded_cardinality;
    Alcotest.test_case "figures differential vs finder" `Slow test_figures_differential;
    QCheck_alcotest.to_alcotest ~long:true test_random_differential;
    Alcotest.test_case "encoding statistics" `Quick test_stats;
    Alcotest.test_case "fig5 on the SAT route" `Quick test_fig5_sat_verdicts;
  ]
