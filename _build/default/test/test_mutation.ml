(* Mutation testing of the model checker: start from a witness population
   produced by the finder, apply a targeted mutation, and assert that Eval
   reports exactly the intended kind of violation.  This catches evaluator
   bugs that satisfiable/unsatisfiable round trips miss. *)

open Orm
open Orm_semantics

let bool = Alcotest.check Alcotest.bool
let v = Value.str

(* A well-behaved base schema with a witness we control by hand. *)
let schema =
  Schema.empty "mut"
  |> Schema.add_subtype ~sub:"Manager" ~super:"Employee"
  |> Schema.add_fact (Fact_type.make "works_on" "Employee" "Project")
  |> Schema.add_fact (Fact_type.make "leads" "Manager" "Project")
  |> Schema.add (Mandatory (Ids.first "works_on"))
  |> Schema.add (Uniqueness (Single (Ids.first "leads")))
  |> Schema.add (Subset (Single (Ids.first "leads"), Single (Ids.first "works_on")))
  |> Schema.add (Value_constraint ("Project", Value.Constraint.of_strings [ "p1"; "p2" ]))

let witness =
  Population.empty
  |> Population.add_objects "Employee" [ v "e1"; v "m1" ]
  |> Population.add_object "Manager" (v "m1")
  |> Population.add_objects "Project" [ v "p1"; v "p2" ]
  |> Population.add_tuples "works_on" [ (v "e1", v "p1"); (v "m1", v "p2") ]
  |> Population.add_tuple "leads" (v "m1", v "p2")

let violations pop = Eval.violations schema pop

let has_broken id pop =
  List.exists
    (function Eval.Broken (id', _) -> id' = id | _ -> false)
    (violations pop)

let test_witness_is_model () =
  Alcotest.check (Alcotest.list Alcotest.string) "clean witness" []
    (List.map (Format.asprintf "%a" Eval.pp_violation) (violations witness))

let test_mutations () =
  (* 1. Untyped tuple component. *)
  let m = Population.add_tuple "works_on" (v "ghost", v "p1") witness in
  bool "untyped component detected" true
    (List.exists
       (function Eval.Untyped_component _ -> true | _ -> false)
       (violations m));
  (* 2. Subtype not subset. *)
  let m = Population.add_object "Manager" (v "outsider") witness in
  bool "subtype violation detected" true
    (List.exists
       (function Eval.Subtype_not_subset ("Manager", "Employee") -> true | _ -> false)
       (violations m));
  (* 3. Strictness: make Manager = Employee. *)
  let m = Population.add_object "Manager" (v "e1") witness in
  bool "strictness violation detected" true
    (List.exists
       (function Eval.Subtype_not_strict ("Manager", "Employee") -> true | _ -> false)
       (violations m));
  (* 4. Mandatory: an employee working on nothing. *)
  let m = Population.add_object "Employee" (v "idle") witness in
  bool "mandatory violation detected" true (has_broken "c1" m);
  (* 5. Uniqueness: the manager leads two projects. *)
  let m = Population.add_tuple "leads" (v "m1", v "p1") witness in
  bool "uniqueness violation detected" true (has_broken "c2" m);
  (* 6. Subset: a lead without a matching works_on. *)
  let m =
    witness
    |> Population.add_object "Manager" (v "m2")
    |> Population.add_object "Employee" (v "m2")
    |> Population.add_object "Employee" (v "pad")
    |> Population.add_tuple "works_on" (v "pad", v "p1")
    |> Population.add_tuple "leads" (v "m2", v "p2")
  in
  bool "subset violation detected" true (has_broken "c3" m);
  (* 7. Value constraint: a project outside the admitted set. *)
  let m = Population.add_object "Project" (v "p9") witness in
  bool "value violation detected" true (has_broken "c4" m);
  (* 8. Implicit exclusion: an unrelated family sharing a value. *)
  let s2 = Schema.add_object_type "Alien" schema in
  let m = Population.add_object "Alien" (v "e1") witness in
  bool "implicit exclusion detected" true
    (List.exists
       (function Eval.Implicit_exclusion _ -> true | _ -> false)
       (Eval.violations s2 m))

(* Removing any works_on tuple from the hand-built witness must break a
   constraint: each player occurs exactly once there, so the mandatory
   constraint (or, for the lead, the subset) loses its support. *)
let test_removal_property () =
  let all_tuples = Population.tuples witness "works_on" in
  bool "witness populates works_on" true (all_tuples <> []);
  List.iter
    (fun removed ->
      let m =
        Population.empty
        |> Population.add_objects "Employee"
             (Value.Set.elements (Population.extension witness "Employee"))
        |> Population.add_object "Manager" (v "m1")
        |> Population.add_objects "Project"
             (Value.Set.elements (Population.extension witness "Project"))
        |> fun base ->
        List.fold_left
          (fun acc t ->
            if t = removed then acc else Population.add_tuple "works_on" t acc)
          base all_tuples
        |> Population.add_tuple "leads" (v "m1", v "p2")
      in
      bool "removal breaks a constraint" true (not (Eval.satisfies schema m)))
    all_tuples

let suite =
  [
    Alcotest.test_case "witness is a model" `Quick test_witness_is_model;
    Alcotest.test_case "targeted mutations" `Quick test_mutations;
    Alcotest.test_case "tuple removals break constraints" `Slow test_removal_property;
  ]
