(* Verbalization: each constraint kind has a sentence, and the key phrases
   land where domain experts expect them. *)

open Orm
module V = Orm_verbalize.Verbalize

let contains = Str_split_contains.contains
let bool = Alcotest.check Alcotest.bool

let schema =
  Schema.empty "verb"
  |> Schema.add_subtype ~sub:"Employee" ~super:"Person"
  |> Schema.add_fact (Fact_type.make ~reading:"works for" "works_for" "Employee" "Company")
  |> Schema.add_fact (Fact_type.make ~reading:"audits" "audits" "Employee" "Company")
  |> Schema.add_fact (Fact_type.make ~reading:"mentors" "mentors" "Employee" "Employee")

let sentence body =
  V.constraint_ schema (Constraints.make "c" body)

let test_fact_and_subtype () =
  bool "fact reading" true
    (contains
       (V.fact_type (Option.get (Schema.find_fact schema "works_for")))
       "Each Employee works for some-or-no Company.");
  bool "subtype" true
    (V.subtype ~sub:"Employee" ~super:"Person" = "Each Employee is a Person.")

let test_constraint_sentences () =
  let checks =
    [
      ( Constraints.Mandatory (Ids.first "works_for"),
        "Each Employee works for at least one Company" );
      ( Constraints.Uniqueness (Single (Ids.first "works_for")),
        "works for at most one Company" );
      ( Constraints.Uniqueness (Single (Ids.second "works_for")),
        "is works for by at most one Employee" );
      ( Constraints.Frequency (Single (Ids.first "works_for"), Constraints.frequency ~max:5 2),
        "at least 2 and at most 5" );
      ( Constraints.Frequency (Single (Ids.first "works_for"), Constraints.frequency 3),
        "at least 3" );
      ( Constraints.Frequency
          (Single (Ids.first "works_for"), Constraints.frequency ~max:2 2),
        "exactly 2" );
      ( Constraints.Value_constraint ("Company", Value.Constraint.of_strings [ "acme" ]),
        "The possible values of Company are 'acme'." );
      ( Constraints.Role_exclusion
          [ Ids.Single (Ids.first "works_for"); Ids.Single (Ids.first "audits") ],
        "No object works for some Company and also audits some Company." );
      ( Constraints.Subset (Single (Ids.first "audits"), Single (Ids.first "works_for")),
        "Whatever audits some Company also works for some Company." );
      ( Constraints.Equality
          (Ids.whole_predicate "works_for", Ids.whole_predicate "audits"),
        "Exactly the same objects" );
      (Constraints.Type_exclusion [ "Person"; "Company" ], "No object is more than one of");
      ( Constraints.Total_subtypes ("Person", [ "Employee" ]),
        "Each Person is at least one of: Employee." );
      ( Constraints.Disjunctive_mandatory [ Ids.first "works_for"; Ids.first "audits" ],
        "works for some Company or audits some Company" );
      (Constraints.Ring (Ring.Irreflexive, "mentors"), "No object mentors itself.");
      (Constraints.Ring (Ring.Symmetric, "mentors"), "If x mentors y, then y mentors x.");
      ( Constraints.Ring (Ring.Acyclic, "mentors"),
        "No chain of 'mentors' links loops back to its start." );
      ( Constraints.Ring (Ring.Intransitive, "mentors"),
        "then x does not mentors z" );
      ( Constraints.Ring (Ring.Antisymmetric, "mentors"),
        "x and y are the same object" );
      ( Constraints.Ring (Ring.Asymmetric, "mentors"),
        "then y does not mentors x" );
    ]
  in
  List.iter
    (fun (body, expected) ->
      let s = sentence body in
      bool (Printf.sprintf "%S in %S" expected s) true (contains s expected))
    checks

let test_schema_verbalization_complete () =
  (* One sentence per fact, subtype edge and constraint. *)
  let s =
    schema
    |> Schema.add (Mandatory (Ids.first "works_for"))
    |> Schema.add (Uniqueness (Single (Ids.first "works_for")))
  in
  Alcotest.check Alcotest.int "sentence count"
    (3 (* facts *) + 1 (* subtype *) + 2 (* constraints *))
    (List.length (V.schema s))

let test_default_reading () =
  (* Fact types without an explicit reading fall back to the name with
     underscores replaced. *)
  let ft = Fact_type.make "reports_to" "A" "B" in
  bool "underscores become spaces" true (Fact_type.reading_text ft = "reports to")

let suite =
  [
    Alcotest.test_case "facts and subtypes" `Quick test_fact_and_subtype;
    Alcotest.test_case "constraint sentences" `Quick test_constraint_sentences;
    Alcotest.test_case "whole-schema verbalization" `Quick
      test_schema_verbalization_complete;
    Alcotest.test_case "default reading" `Quick test_default_reading;
  ]
