(* Schema construction, editing, derived queries and well-formedness. *)

open Orm

let bool = Alcotest.check Alcotest.bool
let int = Alcotest.check Alcotest.int
let strings = Alcotest.check (Alcotest.list Alcotest.string)

let sample =
  Schema.empty "sample"
  |> Schema.add_subtype ~sub:"B" ~super:"A"
  |> Schema.add_fact (Fact_type.make "f" "A" "C")
  |> Schema.add_fact (Fact_type.make "g" "B" "C")
  |> Schema.add (Mandatory (Ids.first "f"))
  |> Schema.add (Uniqueness (Single (Ids.first "f")))
  |> Schema.add (Value_constraint ("C", Value.Constraint.of_strings [ "x"; "y"; "z" ]))
  |> Schema.add (Frequency (Single (Ids.second "g"), Constraints.frequency 2))

let test_accessors () =
  strings "object types" [ "A"; "B"; "C" ] (Schema.object_types sample);
  int "fact types" 2 (List.length (Schema.fact_types sample));
  int "constraints" 4 (List.length (Schema.constraints sample));
  int "roles" 4 (List.length (Schema.all_roles sample));
  Alcotest.check (Alcotest.option Alcotest.string) "player f.1" (Some "A")
    (Schema.player sample (Ids.first "f"));
  Alcotest.check (Alcotest.option Alcotest.string) "player g.2" (Some "C")
    (Schema.player sample (Ids.second "g"));
  strings "roles played by C" [ "f.2"; "g.2" ]
    (List.map Ids.role_to_string (Schema.roles_played_by sample "C"));
  bool "f.1 mandatory" true (Schema.is_mandatory sample (Ids.first "f"));
  bool "g.1 not mandatory" false (Schema.is_mandatory sample (Ids.first "g"));
  bool "uniqueness on f.1" true (Schema.has_uniqueness sample (Single (Ids.first "f")));
  int "min frequency g.2" 2 (Schema.min_frequency sample (Ids.second "g"));
  int "min frequency default" 1 (Schema.min_frequency sample (Ids.first "g"))

let test_fresh_ids () =
  let ids = List.map (fun (c : Constraints.t) -> c.id) (Schema.constraints sample) in
  strings "generated ids" [ "c1"; "c2"; "c3"; "c4" ] ids;
  (* Fresh ids keep counting after removals: no accidental reuse. *)
  let s = Schema.remove_constraint "c4" sample |> Schema.add (Mandatory (Ids.first "g")) in
  let ids = List.map (fun (c : Constraints.t) -> c.id) (Schema.constraints s) in
  strings "no id reuse" [ "c1"; "c2"; "c3"; "c5" ] ids

let test_effective_value_sets () =
  let s =
    Schema.empty "vals"
    |> Schema.add_subtype ~sub:"Sub" ~super:"Super"
    |> Schema.add (Value_constraint ("Super", Value.Constraint.of_range 1 10))
    |> Schema.add (Value_constraint ("Sub", Value.Constraint.of_range 5 20))
  in
  (match Schema.effective_value_set s "Sub" with
  | Some vs -> int "intersection 5..10" 6 (Value.Constraint.cardinal vs)
  | None -> Alcotest.fail "expected an effective value set");
  (match Schema.effective_value_set s "Super" with
  | Some vs -> int "super unchanged" 10 (Value.Constraint.cardinal vs)
  | None -> Alcotest.fail "expected a value set");
  Alcotest.check Alcotest.bool "unconstrained type" true
    (Schema.effective_value_set s "Unrelated" = None)

let test_removals () =
  (* Removing a fact drops the constraints that mention its roles. *)
  let s = Schema.remove_fact "f" sample in
  int "f's constraints gone" 2 (List.length (Schema.constraints s));
  bool "fact gone" true (Schema.find_fact s "f" = None);
  (* Removing an object type cascades to facts it plays in. *)
  let s = Schema.remove_object_type "C" sample in
  int "both facts gone" 0 (List.length (Schema.fact_types s));
  strings "types left" [ "A"; "B" ] (Schema.object_types s);
  (* Removing a subtype edge keeps the types. *)
  let s = Schema.remove_subtype ~sub:"B" ~super:"A" sample in
  strings "types kept" [ "A"; "B"; "C" ] (Schema.object_types s);
  bool "edge gone" true (Subtype_graph.edges (Schema.graph s) = [])

let test_validation_clean () =
  Alcotest.check Alcotest.int "sample is well-formed" 0
    (List.length (Schema.validate sample))

let test_validation_errors () =
  let expect_error name schema pred =
    match List.filter pred (Schema.validate schema) with
    | [] -> Alcotest.failf "%s: expected a validation error" name
    | _ -> ()
  in
  expect_error "undeclared player"
    (Schema.add (Mandatory (Ids.first "nofact")) (Schema.empty "e"))
    (function Schema.Undeclared_fact_type ("nofact", _) -> true | _ -> false);
  expect_error "bad pair"
    (Schema.empty "e"
    |> Schema.add_fact (Fact_type.make "f" "A" "B")
    |> Schema.add_fact (Fact_type.make "g" "A" "B")
    |> Schema.add (Uniqueness (Pair (Ids.first "f", Ids.second "g"))))
    (function Schema.Invalid_pair _ -> true | _ -> false);
  expect_error "arity mismatch"
    (Schema.empty "e"
    |> Schema.add_fact (Fact_type.make "f" "A" "B")
    |> Schema.add (Subset (Single (Ids.first "f"), Ids.whole_predicate "f")))
    (function Schema.Arity_mismatch _ -> true | _ -> false);
  expect_error "exclusion too small"
    (Schema.empty "e"
    |> Schema.add_fact (Fact_type.make "f" "A" "B")
    |> Schema.add (Role_exclusion [ Single (Ids.first "f") ]))
    (function Schema.Exclusion_too_small _ -> true | _ -> false);
  expect_error "empty value set"
    (Schema.empty "e"
    |> Schema.add_object_type "A"
    |> Schema.add (Value_constraint ("A", Value.Constraint.of_list [])))
    (function Schema.Empty_value_set _ -> true | _ -> false);
  expect_error "frequency minimum 0"
    (Schema.empty "e"
    |> Schema.add_fact (Fact_type.make "f" "A" "B")
    |> Schema.add (Frequency (Single (Ids.first "f"), Constraints.frequency 0)))
    (function Schema.Bad_frequency _ -> true | _ -> false);
  expect_error "ring players unrelated"
    (Schema.empty "e"
    |> Schema.add_fact (Fact_type.make "f" "A" "B")
    |> Schema.add (Ring (Ring.Irreflexive, "f")))
    (function Schema.Ring_players_unrelated _ -> true | _ -> false);
  expect_error "duplicate id"
    (Schema.empty "e"
    |> Schema.add_object_type "A"
    |> Schema.add_constraint (Constraints.make "dup" (Type_exclusion [ "A"; "A" ]))
    |> Schema.add_constraint (Constraints.make "dup" (Type_exclusion [ "A"; "A" ])))
    (function Schema.Duplicate_constraint_id "dup" -> true | _ -> false)

let test_ring_via_supertype () =
  (* Ring constraints are allowed when the players share a supertype. *)
  let s =
    Schema.empty "e"
    |> Schema.add_subtype ~sub:"Man" ~super:"Person"
    |> Schema.add_subtype ~sub:"Woman" ~super:"Person"
    |> Schema.add_fact (Fact_type.make "married_to" "Man" "Woman")
    |> Schema.add (Ring (Ring.Irreflexive, "married_to"))
  in
  Alcotest.check Alcotest.int "valid" 0 (List.length (Schema.validate s))

let test_stats () =
  let stats = Schema.stats sample in
  int "stat object-types" 3 (List.assoc "object-types" stats);
  int "stat fact-types" 2 (List.assoc "fact-types" stats);
  int "stat constraints" 4 (List.assoc "constraints" stats);
  int "stat mandatory" 1 (List.assoc "mandatory" stats)

let test_frequency_validation () =
  Alcotest.check_raises "max < min"
    (Invalid_argument "Constraints.frequency: max < min") (fun () ->
      ignore (Constraints.frequency ~max:1 3));
  Alcotest.check_raises "negative min"
    (Invalid_argument "Constraints.frequency: negative min") (fun () ->
      ignore (Constraints.frequency (-1)))

let suite =
  [
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "fresh constraint ids" `Quick test_fresh_ids;
    Alcotest.test_case "effective value sets" `Quick test_effective_value_sets;
    Alcotest.test_case "removal cascades" `Quick test_removals;
    Alcotest.test_case "validation accepts sample" `Quick test_validation_clean;
    Alcotest.test_case "validation rejects malformed schemas" `Quick
      test_validation_errors;
    Alcotest.test_case "ring allowed via common supertype" `Quick
      test_ring_via_supertype;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "frequency construction" `Quick test_frequency_validation;
  ]
