(* The n-ary front end: objectification produces well-formed binary
   schemas, constraints translate component-wise, the patterns fire through
   the reduction, and the approximations are reported as notes. *)

open Orm
module Nary = Orm_nary.Nary
module Engine = Orm_patterns.Engine

let bool = Alcotest.check Alcotest.bool
let int = Alcotest.check Alcotest.int

(* A ternary enrolment: Student enrols in Course in Semester. *)
let ternary =
  Nary.make "uni"
  |> Nary.add_fact ~reading:"enrols" "enrolled" [ "Student"; "Course"; "Semester" ]

let test_objectification_shape () =
  let schema, notes = Nary.binarize ternary in
  Alcotest.check Alcotest.int "well-formed" 0 (List.length (Schema.validate schema));
  bool "objectified type declared" true (Schema.has_object_type schema "enrolled!");
  int "three component facts" 3 (List.length (Schema.fact_types schema));
  (* each component: mandatory + uniqueness on the objectified side, plus
     one external uniqueness for tuple identity *)
  int "seven constraints" 7 (List.length (Schema.constraints schema));
  int "no notes" 0 (List.length notes);
  bool "tuple identity via external uniqueness" true
    (List.exists
       (fun (c : Constraints.t) ->
         match c.body with Constraints.External_uniqueness _ -> true | _ -> false)
       (Schema.constraints schema))

let test_binary_passthrough () =
  let input =
    Nary.make "plain"
    |> Nary.add_fact "works_for" [ "Person"; "Company" ]
    |> Nary.add (Nary.Mandatory { fact = "works_for"; index = 1 })
    |> Nary.add (Nary.Uniqueness { fact = "works_for"; index = 2 })
  in
  let schema, notes = Nary.binarize input in
  int "no notes" 0 (List.length notes);
  bool "fact kept verbatim" true (Schema.find_fact schema "works_for" <> None);
  bool "no objectified type" false (Schema.has_object_type schema "works_for!");
  bool "mandatory lands on works_for.1" true
    (Schema.is_mandatory schema (Ids.first "works_for"));
  bool "uniqueness lands on works_for.2" true
    (Schema.has_uniqueness schema (Single (Ids.second "works_for")))

let test_constraints_translate () =
  let input =
    ternary
    |> Nary.add (Nary.Mandatory { fact = "enrolled"; index = 1 })
    |> Nary.add
         (Nary.Frequency
            ({ fact = "enrolled"; index = 2 }, Constraints.frequency ~max:5 2))
    |> Nary.add
         (Nary.Value_constraint
            ("Semester", Value.Constraint.of_strings [ "S1"; "S2" ]))
  in
  let schema, _ = Nary.binarize input in
  (* Mandatory on the n-ary role = mandatory on the player side of the
     component fact. *)
  bool "mandatory on component" true
    (Schema.is_mandatory schema (Ids.second "enrolled!1"));
  bool "frequency on component" true
    (Schema.frequencies_on schema (Single (Ids.second "enrolled!2")) <> []);
  bool "value constraint kept" true (Schema.value_constraint schema "Semester" <> None)

let test_pattern_through_reduction () =
  (* Uniqueness + FC(2-) on the same ternary role: pattern 7 must fire on
     the binarized schema. *)
  let input =
    ternary
    |> Nary.add (Nary.Uniqueness { fact = "enrolled"; index = 1 })
    |> Nary.add
         (Nary.Frequency
            ({ fact = "enrolled"; index = 1 }, Constraints.frequency ~max:4 2))
  in
  let schema, _ = Nary.binarize input in
  let fired =
    List.filter_map Orm_patterns.Diagnostic.pattern_number
      (Engine.check schema).diagnostics
  in
  bool "pattern 7 fires through the reduction" true (List.mem 7 fired)

let test_formation_rule7_nary () =
  (* The n-ary shape behind formation rule 7: a frequency minimum larger
     than the component player's value count (pattern 4 on the reduction). *)
  let input =
    ternary
    |> Nary.add
         (Nary.Value_constraint ("Semester", Value.Constraint.of_strings [ "S1"; "S2" ]))
    |> Nary.add
         (Nary.Frequency
            ({ fact = "enrolled"; index = 3 }, Constraints.frequency ~max:6 3))
  in
  (* The frequency is on enrolled.3, counting objectified instances per
     Semester - the value bound is on Semester itself, so we need the
     frequency on the OBJECTIFIED side role of another component to trip
     pattern 4; instead check the direct reading: FC on the component's
     player side with the co-player being the objectified type (no value
     bound) stays satisfiable. *)
  let schema, _ = Nary.binarize input in
  let fired =
    List.filter_map Orm_patterns.Diagnostic.pattern_number
      (Engine.check schema).diagnostics
  in
  bool "no spurious detection" true (not (List.mem 4 fired))

let test_exclusion_translates () =
  let input =
    Nary.make "x"
    |> Nary.add_fact "supplies" [ "Vendor"; "Part"; "Project" ]
    |> Nary.add_fact "audits" [ "Vendor"; "Part"; "Project" ]
    |> Nary.add (Nary.Mandatory { fact = "supplies"; index = 1 })
    |> Nary.add
         (Nary.Exclusion
            [ { fact = "supplies"; index = 1 }; { fact = "audits"; index = 1 } ])
  in
  let schema, _ = Nary.binarize input in
  (* Pattern 3: mandatory + exclusion over the same (component) player. *)
  let fired =
    List.filter_map Orm_patterns.Diagnostic.pattern_number
      (Engine.check schema).diagnostics
  in
  bool "pattern 3 fires through the reduction" true (List.mem 3 fired)

let test_composite_uniqueness () =
  (* Binary composite -> Pair uniqueness; wider composites are skipped with
     a note. *)
  let binary =
    Nary.make "b"
    |> Nary.add_fact "f" [ "A"; "B" ]
    |> Nary.add
         (Nary.Composite_uniqueness [ { fact = "f"; index = 1 }; { fact = "f"; index = 2 } ])
  in
  let schema, notes = Nary.binarize binary in
  int "no notes for binary composite" 0 (List.length notes);
  bool "pair uniqueness" true (Schema.has_uniqueness schema (Ids.whole_predicate "f"));
  let wide =
    ternary
    |> Nary.add
         (Nary.Composite_uniqueness
            [ { fact = "enrolled"; index = 1 }; { fact = "enrolled"; index = 2 } ])
  in
  let _, notes = Nary.binarize wide in
  bool "composite skipped with note" true
    (List.exists
       (function Nary.Composite_uniqueness_skipped _ -> true | _ -> false)
       notes)

let test_unknown_role () =
  let input = ternary |> Nary.add (Nary.Mandatory { fact = "enrolled"; index = 9 }) in
  let _, notes = Nary.binarize input in
  bool "unknown role reported" true
    (List.exists (function Nary.Unknown_role _ -> true | _ -> false) notes)

let test_strong_satisfiability_preserved () =
  (* A clean ternary schema binarizes to something strongly satisfiable. *)
  let schema, _ = Nary.binarize ternary in
  match Orm_reasoner.Finder.solve schema Strongly_satisfiable with
  | Model _ -> ()
  | No_model -> Alcotest.fail "objectified schema should be strongly satisfiable"
  | Budget_exceeded -> Alcotest.fail "budget exceeded"

let suite =
  [
    Alcotest.test_case "objectification shape" `Quick test_objectification_shape;
    Alcotest.test_case "binary passthrough" `Quick test_binary_passthrough;
    Alcotest.test_case "constraints translate" `Quick test_constraints_translate;
    Alcotest.test_case "pattern 7 through the reduction" `Quick
      test_pattern_through_reduction;
    Alcotest.test_case "no spurious pattern 4" `Quick test_formation_rule7_nary;
    Alcotest.test_case "pattern 3 through the reduction" `Quick test_exclusion_translates;
    Alcotest.test_case "composite uniqueness" `Quick test_composite_uniqueness;
    Alcotest.test_case "unknown role note" `Quick test_unknown_role;
    Alcotest.test_case "strong satisfiability preserved" `Slow
      test_strong_satisfiability_preserved;
  ]
