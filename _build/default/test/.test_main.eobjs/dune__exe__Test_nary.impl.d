test/test_nary.ml: Alcotest Constraints Ids List Orm Orm_nary Orm_patterns Orm_reasoner Schema Value
