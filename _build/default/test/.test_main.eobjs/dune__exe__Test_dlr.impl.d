test/test_dlr.ml: Alcotest Dlr_check List Mapping Option Orm Orm_dlr Printf Str_split_contains Syntax Tableau
