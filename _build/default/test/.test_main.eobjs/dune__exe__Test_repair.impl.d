test/test_repair.ml: Alcotest Constraints Fact_type Figures Ids List Orm Orm_generator Orm_patterns Orm_repair QCheck QCheck_alcotest Schema
