test/test_interactive.ml: Alcotest Constraints Fact_type Figures Format Ids List Option Orm Orm_dsl Orm_interactive Orm_patterns Printf QCheck QCheck_alcotest Random Schema
