test/test_setcomp.ml: Alcotest Constraints Fact_type Ids List Orm Orm_patterns Schema String
