test/test_external_uc.ml: Alcotest Constraints Eval Fact_type Ids List Option Orm Orm_dsl Orm_reasoner Orm_sat Orm_semantics Orm_verbalize Population Schema Str_split_contains Value
