test/test_schema_files.ml: Alcotest Filename Ids Int List Orm Orm_dsl Orm_patterns Orm_reasoner Schema
