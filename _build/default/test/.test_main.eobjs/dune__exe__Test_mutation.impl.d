test/test_mutation.ml: Alcotest Eval Fact_type Format Ids List Orm Orm_semantics Population Schema Value
