test/test_sat.ml: Alcotest Array Figures Fun Ids List Orm Orm_generator Orm_patterns Orm_reasoner Orm_sat Orm_semantics Printf QCheck QCheck_alcotest Schema
