test/str_split_contains.ml: String
