test/test_explain.ml: Alcotest Figures List Orm Orm_explain Orm_generator Orm_patterns QCheck QCheck_alcotest Str_split_contains String
