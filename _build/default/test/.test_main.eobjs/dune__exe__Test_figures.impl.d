test/test_figures.ml: Alcotest Figures Format Ids Int List Orm Orm_patterns Orm_reasoner Orm_semantics Printf Schema String
