test/test_extensions.ml: Alcotest Fact_type Ids Int List Orm Orm_generator Orm_patterns Orm_reasoner Orm_semantics QCheck QCheck_alcotest Ring Schema Value
