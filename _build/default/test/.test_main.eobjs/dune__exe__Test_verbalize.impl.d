test/test_verbalize.ml: Alcotest Constraints Fact_type Ids List Option Orm Orm_verbalize Printf Ring Schema Str_split_contains Value
