test/test_schema.ml: Alcotest Constraints Fact_type Ids List Orm Ring Schema Subtype_graph Value
