test/test_diff.ml: Alcotest Constraints Fact_type Figures Ids List Orm Orm_generator Orm_interactive Orm_patterns QCheck QCheck_alcotest Schema
