test/test_value.ml: Alcotest Format Orm Value
