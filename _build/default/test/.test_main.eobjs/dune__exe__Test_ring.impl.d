test/test_ring.ml: Alcotest Format Fun Lazy List Option Orm Printf Ring
