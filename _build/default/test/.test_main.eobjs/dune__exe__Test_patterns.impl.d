test/test_patterns.ml: Alcotest Constraints Fact_type Figures Ids Int List Orm Orm_patterns Ring Schema Value
