test/test_generator.ml: Alcotest Ids List Orm Orm_dsl Orm_generator Orm_patterns Orm_reasoner QCheck QCheck_alcotest Schema
