test/test_subtype_graph.ml: Alcotest Fun Ids List Orm Printf QCheck QCheck_alcotest Subtype_graph
