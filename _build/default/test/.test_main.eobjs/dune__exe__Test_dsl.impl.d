test/test_dsl.ml: Alcotest Fact_type Figures List Orm Orm_dsl Orm_generator Printf QCheck QCheck_alcotest Schema Str_split_contains Subtype_graph Value
