test/test_fuzz.ml: Ids List Orm Orm_dlr Orm_dsl Orm_explain Orm_export Orm_generator Orm_lint Orm_patterns Orm_repair Orm_sat Orm_verbalize QCheck QCheck_alcotest Schema
