test/test_classify.ml: Alcotest Fact_type Figures Ids List Orm Orm_dlr Schema
