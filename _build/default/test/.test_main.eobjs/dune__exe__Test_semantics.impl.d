test/test_semantics.ml: Alcotest Constraints Eval Fact_type Ids List Orm Orm_semantics Population Ring Schema Value
