test/test_lint.ml: Alcotest Constraints Fact_type Figures Ids List Option Orm Orm_lint Orm_patterns Orm_reasoner Schema String Value
