test/test_finder.ml: Alcotest Constraints Fact_type Figures Finder Ids List Orm Orm_generator Orm_reasoner Orm_semantics Schema Value
