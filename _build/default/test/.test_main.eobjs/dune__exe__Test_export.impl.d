test/test_export.ml: Alcotest Figures Orm Orm_export Orm_generator Orm_patterns QCheck QCheck_alcotest Str_split_contains String
