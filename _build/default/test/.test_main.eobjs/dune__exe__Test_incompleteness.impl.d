test/test_incompleteness.ml: Alcotest Constraints Fact_type Ids List Orm Orm_patterns Orm_reasoner Orm_semantics Ring Schema Value
