(* The DL route: NNF, tableau units on hand-written TBoxes, the ORM -> DLR
   mapping, and agreement with the pattern engine on the figures whose
   constraints fall inside the mapped fragment. *)

open Orm_dlr
open Syntax

let bool = Alcotest.check Alcotest.bool
let int = Alcotest.check Alcotest.int

let verdict =
  Alcotest.testable Tableau.pp_verdict (fun a b -> a = b)

let sat ?tbox c = Tableau.satisfiable (Option.value ~default:[] tbox) c

let test_nnf () =
  let a = Atomic "A" and b = Atomic "B" in
  bool "double negation" true (nnf (Not (Not a)) = a);
  bool "de morgan" true (nnf (Not (And [ a; b ])) = Or [ Not a; Not b ]);
  bool "neg exists" true
    (nnf (Not (Exists (role "r", a))) = Forall (role "r", Not a));
  bool "neg atleast" true (nnf (Not (At_least (2, role "r"))) = At_most (1, role "r"));
  bool "neg atmost" true (nnf (Not (At_most (2, role "r"))) = At_least (3, role "r"));
  bool "neg atleast 0 is bottom" true (nnf (Not (At_least (0, role "r"))) = Bottom)

let test_tableau_basics () =
  let a = Atomic "A" in
  Alcotest.check verdict "atomic sat" Tableau.Sat (sat a);
  Alcotest.check verdict "contradiction" Tableau.Unsat (sat (And [ a; Not a ]));
  Alcotest.check verdict "bottom" Tableau.Unsat (sat Bottom);
  Alcotest.check verdict "disjunction" Tableau.Sat (sat (Or [ And [ a; Not a ]; a ]));
  Alcotest.check verdict "exists" Tableau.Sat (sat (Exists (role "r", a)));
  Alcotest.check verdict "exists conflict" Tableau.Unsat
    (sat (And [ Exists (role "r", a); Forall (role "r", Not a) ]));
  Alcotest.check verdict "number conflict" Tableau.Unsat
    (sat (And [ At_least (2, role "r"); At_most (1, role "r") ]));
  Alcotest.check verdict "number ok" Tableau.Sat
    (sat (And [ At_least (2, role "r"); At_most (3, role "r") ]))

let test_tableau_tbox () =
  let a = Atomic "A" and b = Atomic "B" in
  (* A ⊑ B, A ⊑ ¬B: A must be empty. *)
  let tbox = [ Subsumes (a, b); Subsumes (a, Not b) ] in
  Alcotest.check verdict "unsat w.r.t. tbox" Tableau.Unsat (sat ~tbox a);
  Alcotest.check verdict "other concept fine" Tableau.Sat (sat ~tbox b);
  (* A cyclic TBox needs blocking to terminate: A ⊑ ∃r.A. *)
  let cyclic = [ Subsumes (a, Exists (role "r", a)) ] in
  Alcotest.check verdict "blocking terminates" Tableau.Sat (sat ~tbox:cyclic a)

let test_tableau_inverse () =
  let a = Atomic "A" in
  (* ∃r.(∀r⁻.¬A) ⊓ A: the child looks back at the root. *)
  Alcotest.check verdict "inverse propagation" Tableau.Unsat
    (sat (And [ a; Exists (role "r", Forall (inv (role "r"), Not a)) ]))

let test_tableau_role_hierarchy () =
  let a = Atomic "A" in
  (* r ⊑ s: an r-successor is an s-successor. *)
  let tbox = [ Role_subsumes (role "r", role "s") ] in
  Alcotest.check verdict "role inclusion" Tableau.Unsat
    (sat ~tbox (And [ Exists (role "r", a); Forall (role "s", Not a) ]))

let test_mapping_axiom_count () =
  let m = Mapping.translate Orm.Figures.fig1 in
  bool "no skips" true (m.skipped = []);
  (* 4 subtype axioms + 1 exclusion axiom (+ no facts, no roots disjoint
     since Person is the only root). *)
  int "axiom count" 5 (List.length m.tbox)

let test_mapping_skips () =
  let m = Mapping.translate Orm.Figures.fig11 in
  int "ring skipped" 1 (List.length m.skipped);
  let m5 = Mapping.translate Orm.Figures.fig5 in
  bool "value constraint skipped" true
    (List.exists (fun (_, why) -> Str_split_contains.contains why "nominal") m5.skipped)

(* Figures whose constraints are fully translatable AND whose semantics the
   DL captures (fig13 is excluded: DL subtyping is non-strict, so subtype
   loops are DL-satisfiable — exactly the divergence DESIGN.md documents). *)
let dl_exact_figures = [ "fig1"; "fig2"; "fig3"; "fig4a"; "fig4b"; "fig4c"; "fig10"; "fig14" ]

let test_agreement_with_engine () =
  List.iter
    (fun name ->
      let (e : Orm.Figures.expectation) = Option.get (Orm.Figures.find name) in
      let result = Dlr_check.check e.schema in
      bool (name ^ " translation complete") true result.complete;
      let dl_types = Dlr_check.unsat_types result in
      List.iter
        (fun t ->
          bool
            (Printf.sprintf "%s: DL finds type %s unsat" name t)
            true (List.mem t dl_types))
        e.unsat_types;
      let dl_roles = Dlr_check.unsat_roles result in
      List.iter
        (fun r ->
          bool
            (Printf.sprintf "%s: DL finds role %s unsat" name (Orm.Ids.role_to_string r))
            true
            (List.exists (Orm.Ids.equal_role r) dl_roles))
        e.unsat_roles)
    dl_exact_figures

let test_negative_control () =
  (* fig14 is satisfiable and fully translatable: the DL route must not
     invent unsatisfiability. *)
  let e = Option.get (Orm.Figures.find "fig14") in
  let result = Dlr_check.check e.schema in
  bool "no unsat types" true (Dlr_check.unsat_types result = []);
  bool "no unsat roles" true (Dlr_check.unsat_roles result = [])

let test_fig8_refined_side () =
  (* The DL route agrees with the refined reading of pattern 6: only the
     subset side of Fig. 8 is unsatisfiable. *)
  let e = Option.get (Orm.Figures.find "fig8") in
  let result = Dlr_check.check e.schema in
  let dl_roles = Dlr_check.unsat_roles result in
  bool "f1.1 unsat" true (List.exists (Orm.Ids.equal_role (Orm.Ids.first "f1")) dl_roles);
  bool "f2.1 satisfiable" false
    (List.exists (Orm.Ids.equal_role (Orm.Ids.first "f2")) dl_roles)

let test_budget () =
  Alcotest.check verdict "tiny budget gives unknown" Tableau.Unknown
    (Tableau.satisfiable ~budget:2
       [ Subsumes (Atomic "A", Exists (role "r", Atomic "A")) ]
       (And [ Atomic "A"; Exists (role "r", Atomic "B") ]))

let suite =
  [
    Alcotest.test_case "negation normal form" `Quick test_nnf;
    Alcotest.test_case "tableau: propositional and modal" `Quick test_tableau_basics;
    Alcotest.test_case "tableau: TBox reasoning and blocking" `Quick test_tableau_tbox;
    Alcotest.test_case "tableau: inverse roles" `Quick test_tableau_inverse;
    Alcotest.test_case "tableau: role hierarchy" `Quick test_tableau_role_hierarchy;
    Alcotest.test_case "mapping: fig1 axioms" `Quick test_mapping_axiom_count;
    Alcotest.test_case "mapping: footnote-10 skips" `Quick test_mapping_skips;
    Alcotest.test_case "DL agrees with the engine on the mapped fragment" `Slow
      test_agreement_with_engine;
    Alcotest.test_case "DL negative control (fig14)" `Quick test_negative_control;
    Alcotest.test_case "DL sees fig8's refined side" `Quick test_fig8_refined_side;
    Alcotest.test_case "budget exhaustion is Unknown" `Quick test_budget;
  ]
