(* Repair suggestions: candidates come from culprits and hierarchy edges,
   rankings reflect diagnostics fixed, and the greedy loop restores
   pattern-cleanliness on every injectable fault. *)

open Orm
module Repair = Orm_repair.Repair
module Engine = Orm_patterns.Engine

let bool = Alcotest.check Alcotest.bool
let int = Alcotest.check Alcotest.int

let test_clean_schema_no_suggestions () =
  Alcotest.check Alcotest.int "no suggestions on a clean schema" 0
    (List.length (Repair.suggestions Figures.fig14))

let test_fig1_suggestions () =
  let suggestions = Repair.suggestions Figures.fig1 in
  bool "some suggestion" true (suggestions <> []);
  (* Both dropping the exclusion and cutting one of PhDStudent's subtype
     links must appear. *)
  let actions = List.map (fun (s : Repair.suggestion) -> s.action) suggestions in
  bool "drop exclusive constraint offered" true
    (List.exists (function Repair.Drop_constraint _ -> true | _ -> false) actions);
  bool "cut subtype offered" true
    (List.exists
       (function
         | Repair.Cut_subtype ("PhDStudent", _) -> true
         | Repair.Cut_subtype _ | Repair.Drop_constraint _ -> false)
       actions);
  (* Every suggestion on fig1 resolves its single diagnostic. *)
  List.iter
    (fun (s : Repair.suggestion) -> int "fixes all" 0 s.remaining)
    suggestions

let test_fig13_loop_repair () =
  let suggestions = Repair.suggestions Figures.fig13 in
  bool "loop edges offered" true
    (List.exists
       (function Repair.Cut_subtype _ -> true | Repair.Drop_constraint _ -> false)
       (List.map (fun (s : Repair.suggestion) -> s.action) suggestions));
  let repaired, actions = Repair.repair Figures.fig13 in
  int "one cut suffices" 1 (List.length actions);
  int "clean afterwards" 0 (List.length (Engine.check repaired).diagnostics)

let test_repair_all_figures () =
  List.iter
    (fun (e : Figures.expectation) ->
      let repaired, _ = Repair.repair e.schema in
      int (e.figure ^ " repaired to clean") 0
        (List.length (Engine.check repaired).diagnostics))
    Figures.all

let test_repair_injected =
  QCheck.Test.make ~count:60 ~name:"greedy repair cleans every injected fault"
    QCheck.(pair (int_range 0 5_000) (int_range 1 9))
    (fun (seed, p) ->
      let faulted =
        (Orm_generator.Faults.inject ~seed p (Orm_generator.Gen.clean ~seed ())).schema
      in
      let repaired, actions = Repair.repair faulted in
      (Engine.check repaired).diagnostics = [] && actions <> [])

let test_repair_all_nine_at_once () =
  let faulted =
    List.fold_left
      (fun s p -> (Orm_generator.Faults.inject ~seed:7 p s).Orm_generator.Faults.schema)
      (Orm_generator.Gen.clean ~seed:7 ())
      Orm_generator.Faults.all_patterns
  in
  let repaired, actions = Repair.repair faulted in
  int "clean after repairing all nine" 0 (List.length (Engine.check repaired).diagnostics);
  bool "at most one action per fault plus slack" true (List.length actions <= 12)

let test_max_steps () =
  let faulted =
    List.fold_left
      (fun s p -> (Orm_generator.Faults.inject ~seed:9 p s).Orm_generator.Faults.schema)
      (Orm_generator.Gen.clean ~seed:9 ())
      Orm_generator.Faults.all_patterns
  in
  let _, actions = Repair.repair ~max_steps:2 faulted in
  int "respects the step bound" 2 (List.length actions)

let test_ranking () =
  (* A schema where one constraint causes two diagnostics and another causes
     one: the double-culprit must rank first. *)
  let s =
    Schema.empty "rank"
    |> Schema.add_fact (Fact_type.make "f" "A" "B")
    |> Schema.add_fact (Fact_type.make "g" "A" "C")
    |> Schema.add_fact (Fact_type.make "h" "A" "D")
    (* one diagnostic: uniqueness vs frequency on h *)
    |> Schema.add (Uniqueness (Single (Ids.first "h")))
    |> Schema.add (Frequency (Single (Ids.first "h"), Constraints.frequency ~max:4 2))
    (* two diagnostics from one mandatory: exclusion partner roles die *)
    |> Schema.add (Mandatory (Ids.first "f"))
    |> Schema.add (Role_exclusion [ Single (Ids.first "f"); Single (Ids.first "g") ])
    |> Schema.add (Role_exclusion [ Single (Ids.first "f"); Single (Ids.first "h") ])
  in
  match Repair.suggestions s with
  | [] -> Alcotest.fail "expected suggestions"
  | (best : Repair.suggestion) :: _ ->
      bool "the shared mandatory ranks first" true
        (best.action = Repair.Drop_constraint "c3" && best.fixes >= 2)

let suite =
  [
    Alcotest.test_case "clean schema" `Quick test_clean_schema_no_suggestions;
    Alcotest.test_case "fig1 suggestions" `Quick test_fig1_suggestions;
    Alcotest.test_case "fig13 loop repair" `Quick test_fig13_loop_repair;
    Alcotest.test_case "all figures repairable" `Quick test_repair_all_figures;
    QCheck_alcotest.to_alcotest test_repair_injected;
    Alcotest.test_case "all nine faults at once" `Quick test_repair_all_nine_at_once;
    Alcotest.test_case "max_steps respected" `Quick test_max_steps;
    Alcotest.test_case "ranking by fixes" `Quick test_ranking;
  ]
