(* End-to-end on the shipped .orm files: parse from disk, validate, check,
   and compare against the expected verdicts.  Exercises the same code path
   as `ormcheck check FILE`. *)

open Orm

let bool = Alcotest.check Alcotest.bool
let int = Alcotest.check Alcotest.int

let load name =
  match Orm_dsl.Parser.parse_file (Filename.concat "schemas" name) with
  | Ok schema ->
      int (name ^ " well-formed") 0 (List.length (Schema.validate schema));
      schema
  | Error msg -> Alcotest.failf "%s failed to parse: %s" name msg

let fired schema =
  List.sort_uniq Int.compare
    (List.filter_map Orm_patterns.Diagnostic.pattern_number
       (Orm_patterns.Engine.check schema).diagnostics)

let test_phd () =
  let schema = load "phd.orm" in
  Alcotest.check (Alcotest.list Alcotest.int) "pattern 2" [ 2 ] (fired schema);
  bool "PhDStudent dead" true
    (Ids.String_set.mem "PhDStudent"
       (Orm_patterns.Engine.check schema).unsat_types)

let test_library () =
  let schema = load "library.orm" in
  Alcotest.check (Alcotest.list Alcotest.int) "clean" [] (fired schema);
  match Orm_reasoner.Finder.solve schema Schema_satisfiable with
  | Model _ -> ()
  | No_model | Budget_exceeded -> Alcotest.fail "library.orm should be satisfiable"

let test_broken_grades () =
  let schema = load "broken_grades.orm" in
  Alcotest.check (Alcotest.list Alcotest.int) "pattern 4" [ 4 ] (fired schema);
  (* The explicit constraint id from the file shows up in culprits. *)
  bool "named culprit" true
    (List.exists
       (fun (d : Orm_patterns.Diagnostic.t) -> List.mem "fc" d.culprits)
       (Orm_patterns.Engine.check schema).diagnostics)

let test_org_chart () =
  let schema = load "org_chart.orm" in
  Alcotest.check (Alcotest.list Alcotest.int) "pattern 8" [ 8 ] (fired schema)

let test_roundtrip_files () =
  List.iter
    (fun name ->
      let schema = load name in
      match Orm_dsl.Parser.parse (Orm_dsl.Printer.to_string schema) with
      | Ok reparsed ->
          bool (name ^ " round trips") true
            (Orm_dsl.Printer.to_string schema = Orm_dsl.Printer.to_string reparsed)
      | Error msg -> Alcotest.failf "%s reprint failed: %s" name msg)
    [ "phd.orm"; "library.orm"; "broken_grades.orm"; "org_chart.orm" ]

let suite =
  [
    Alcotest.test_case "phd.orm" `Quick test_phd;
    Alcotest.test_case "library.orm" `Quick test_library;
    Alcotest.test_case "broken_grades.orm" `Quick test_broken_grades;
    Alcotest.test_case "org_chart.orm" `Quick test_org_chart;
    Alcotest.test_case "files round trip" `Quick test_roundtrip_files;
  ]
