(* The bounded model finder on its own: witnesses are genuine models, weak
   vs strong satisfiability, budget behaviour, and unsat_elements. *)

open Orm
open Orm_reasoner
module Eval = Orm_semantics.Eval

let bool = Alcotest.check Alcotest.bool

let test_witnesses_are_models () =
  (* Every Model outcome must pass the model checker. *)
  List.iter
    (fun (e : Figures.expectation) ->
      match Finder.solve e.schema Schema_satisfiable with
      | Model pop ->
          bool (e.figure ^ " witness checks out") true (Eval.satisfies e.schema pop)
      | No_model -> Alcotest.failf "%s should be weakly satisfiable" e.figure
      | Budget_exceeded -> Alcotest.failf "%s: budget exceeded" e.figure)
    Figures.all

let test_weak_is_trivial () =
  (* The everywhere-empty population satisfies any well-formed schema of the
     fragment, so weak satisfiability always holds — the paper's point that
     weak satisfiability detects nothing. *)
  List.iter
    (fun (e : Figures.expectation) ->
      bool (e.figure ^ " empty pop is a model") true
        (Eval.satisfies e.schema Orm_semantics.Population.empty))
    Figures.all

let test_strong_needs_search () =
  (* fig14 is strongly satisfiable but needs a non-trivial witness: both the
     disjunctive mandatory and the exclusion must be honoured. *)
  match Finder.solve Figures.fig14 Strongly_satisfiable with
  | Model pop ->
      bool "all roles populated" true
        (List.for_all (Eval.populates_role pop) (Schema.all_roles Figures.fig14))
  | No_model | Budget_exceeded -> Alcotest.fail "fig14 should have a strong model"

let test_frequency_witness () =
  (* A satisfiable frequency constraint forces a witness with enough
     distinct co-players; checks the fresh-atom sizing logic. *)
  let s =
    Schema.empty "freq"
    |> Schema.add_fact (Fact_type.make "f" "A" "B")
    |> Schema.add (Frequency (Single (Ids.first "f"), Constraints.frequency ~max:3 3))
  in
  match Finder.solve s (Role_satisfiable (Ids.first "f")) with
  | Model pop ->
      let bs = Orm_semantics.Population.role_population pop (Ids.second "f") in
      bool "three distinct partners" true (Value.Set.cardinal bs >= 3)
  | No_model | Budget_exceeded -> Alcotest.fail "FC(3-3) alone is satisfiable"

let test_budget_exceeded () =
  (* A large clean schema with a tiny budget must give up, not crash. *)
  let s = Orm_generator.Gen.clean ~config:(Orm_generator.Gen.sized 12) ~seed:3 () in
  match Finder.solve ~budget:5 s Strongly_satisfiable with
  | Budget_exceeded -> ()
  | Model _ | No_model -> Alcotest.fail "expected budget exhaustion"

let test_unsat_elements () =
  let elements = Finder.unsat_elements Figures.fig1 in
  bool "PhDStudent refuted" true (List.mem (`Type "PhDStudent") elements);
  bool "Person satisfiable" false (List.mem (`Type "Person") elements);
  let e4 = Finder.unsat_elements Figures.fig4a in
  bool "fig4a f2.1 refuted" true (List.mem (`Role (Ids.first "f2")) e4);
  bool "fig4a f1.1 satisfiable" false (List.mem (`Role (Ids.first "f1")) e4)

let test_nodes_counter () =
  ignore (Finder.solve Figures.fig1 Schema_satisfiable);
  bool "some nodes explored" true (Finder.stats_last_nodes () > 0)

let test_type_exclusion_search () =
  (* The finder must respect implicit family exclusion: populating both A
     and B is fine (different atoms), but a type below both is refutable. *)
  let s =
    Schema.empty "fam" |> Schema.add_object_type "A" |> Schema.add_object_type "B"
  in
  (match Finder.solve s Strongly_satisfiable with
  | Model pop ->
      let a = Orm_semantics.Population.extension pop "A" in
      let b = Orm_semantics.Population.extension pop "B" in
      bool "families disjoint" true (Value.Set.is_empty (Value.Set.inter a b))
  | No_model | Budget_exceeded -> Alcotest.fail "two isolated types are satisfiable");
  ()

let suite =
  [
    Alcotest.test_case "witnesses satisfy the schema" `Slow test_witnesses_are_models;
    Alcotest.test_case "weak satisfiability is trivial" `Quick test_weak_is_trivial;
    Alcotest.test_case "strong witness for fig14" `Slow test_strong_needs_search;
    Alcotest.test_case "frequency forces distinct partners" `Quick
      test_frequency_witness;
    Alcotest.test_case "budget exhaustion" `Quick test_budget_exceeded;
    Alcotest.test_case "unsat_elements" `Slow test_unsat_elements;
    Alcotest.test_case "node statistics" `Quick test_nodes_counter;
    Alcotest.test_case "implicit family exclusion honoured" `Quick
      test_type_exclusion_search;
  ]
