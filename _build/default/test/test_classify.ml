(* DL classification over the translated knowledge base: declared links are
   re-derived, implied links are surfaced, and unsatisfiable concepts are
   kept out of the hierarchy. *)

open Orm
module Classify = Orm_dlr.Classify

let bool = Alcotest.check Alcotest.bool

let link sub super links =
  List.exists (fun (l : Classify.link) -> l.sub = sub && l.super = super) links

let test_subsumes_basics () =
  let a = Orm_dlr.Syntax.Atomic "A" and b = Orm_dlr.Syntax.Atomic "B" in
  let tbox = [ Orm_dlr.Syntax.Subsumes (a, b) ] in
  Alcotest.check
    (Alcotest.testable Classify.pp_answer ( = ))
    "declared subsumption" Classify.Yes
    (Classify.subsumes tbox ~sub:a ~super:b);
  Alcotest.check
    (Alcotest.testable Classify.pp_answer ( = ))
    "no reverse subsumption" Classify.No
    (Classify.subsumes tbox ~sub:b ~super:a)

let test_fig3_hierarchy () =
  let links = Classify.classify Figures.fig3 in
  bool "B <= A declared" true (link "B" "A" links);
  bool "C <= A declared" true (link "C" "A" links);
  (* D is unsatisfiable, hence excluded from the hierarchy. *)
  bool "D excluded" true
    (List.for_all (fun (l : Classify.link) -> l.sub <> "D" && l.super <> "D") links);
  bool "no spurious A <= B" false (link "A" "B" links)

let test_implied_total () =
  (* With a total (covering) constraint over a single subtype, the supertype
     is implied to be below the subtype — a link nobody declared. *)
  let s =
    Schema.empty "impl"
    |> Schema.add_subtype ~sub:"Only" ~super:"Top"
    |> Schema.add (Total_subtypes ("Top", [ "Only" ]))
  in
  let implied = Classify.implied_links s in
  bool "Top <= Only implied" true (link "Top" "Only" implied);
  bool "declared link not in implied list" false (link "Only" "Top" implied)

let test_implied_mandatory_domain () =
  (* Every player of f's first role is an A (typing axiom); if every B must
     play it, B <= A follows. *)
  let s =
    Schema.empty "impl2"
    |> Schema.add_subtype ~sub:"A" ~super:"T"
    |> Schema.add_subtype ~sub:"B" ~super:"T"
    |> Schema.add_fact (Fact_type.make "f" "A" "C")
    |> Schema.add (Mandatory (Ids.first "f"))
  in
  (* B plays no role here; extend: the mandatory is on A's own role, so no
     implication about B.  Check no bogus link appears. *)
  let implied = Classify.implied_links s in
  bool "no bogus implication" false (link "B" "A" implied)

let test_transitive_derived () =
  let s =
    Schema.empty "trans"
    |> Schema.add_subtype ~sub:"C" ~super:"B"
    |> Schema.add_subtype ~sub:"B" ~super:"A"
  in
  let links = Classify.classify s in
  bool "transitive C <= A derived" true (link "C" "A" links);
  (* classify marks it declared because the subtype graph is transitive. *)
  bool "marked as declared" true
    (List.exists
       (fun (l : Classify.link) -> l.sub = "C" && l.super = "A" && l.declared)
       links)

let suite =
  [
    Alcotest.test_case "subsumption by refutation" `Quick test_subsumes_basics;
    Alcotest.test_case "fig3 hierarchy" `Quick test_fig3_hierarchy;
    Alcotest.test_case "implied link via covering" `Quick test_implied_total;
    Alcotest.test_case "no bogus implications" `Quick test_implied_mandatory_domain;
    Alcotest.test_case "transitive derivation" `Quick test_transitive_derived;
  ]
