(* Schema diff: the edit script transforms the source into the target,
   including the cascade-sensitive cases (removed facts with attached
   constraints, changed fact definitions, removed object types). *)

open Orm
module Diff = Orm_interactive.Schema_diff
module Edit = Orm_interactive.Edit

let bool = Alcotest.check Alcotest.bool
let int = Alcotest.check Alcotest.int

let apply_script a script = List.fold_left (fun s e -> Edit.apply e s) a script

let check_transforms name a b =
  let script = Diff.diff a b in
  bool name true (Diff.equal_schemas (apply_script a script) b)

let test_identity () =
  List.iter
    (fun (e : Figures.expectation) ->
      int (e.figure ^ " empty diff") 0 (List.length (Diff.diff e.schema e.schema)))
    Figures.all

let test_figures_pairwise () =
  (* Every ordered pair of paper figures must be reachable by a script. *)
  List.iter
    (fun (a : Figures.expectation) ->
      List.iter
        (fun (b : Figures.expectation) ->
          check_transforms (a.figure ^ " -> " ^ b.figure) a.schema b.schema)
        Figures.all)
    Figures.all

let test_changed_fact_preserves_constraints () =
  (* Changing a fact's reading must not drop its constraints. *)
  let a =
    Schema.empty "s"
    |> Schema.add_fact (Fact_type.make "f" "A" "B")
    |> Schema.add (Mandatory (Ids.first "f"))
  in
  let b =
    Schema.empty "s"
    |> Schema.add_fact (Fact_type.make ~reading:"new reading" "f" "A" "B")
    |> Schema.add (Mandatory (Ids.first "f"))
  in
  let script = Diff.diff a b in
  bool "single edit" true (List.length script = 1);
  check_transforms "reading change" a b

let test_removed_fact_with_constraints () =
  let a =
    Schema.empty "s"
    |> Schema.add_fact (Fact_type.make "f" "A" "B")
    |> Schema.add_fact (Fact_type.make "g" "A" "B")
    |> Schema.add (Mandatory (Ids.first "f"))
    |> Schema.add (Uniqueness (Single (Ids.first "g")))
  in
  let b =
    Schema.empty "s"
    |> Schema.add_fact (Fact_type.make "g" "A" "B")
    |> Schema.add_constraint (Constraints.make "c2" (Uniqueness (Single (Ids.first "g"))))
  in
  check_transforms "fact removal cascades correctly" a b

let test_diff_random =
  QCheck.Test.make ~count:60 ~name:"diff transforms generated schemas"
    QCheck.(triple (int_range 0 2_000) (int_range 0 2_000) (int_range 1 9))
    (fun (seed_a, seed_b, p) ->
      let a = Orm_generator.Gen.clean ~seed:seed_a () in
      let b =
        (Orm_generator.Faults.inject ~seed:seed_b p (Orm_generator.Gen.clean ~seed:seed_b ()))
          .schema
      in
      Diff.equal_schemas (apply_script a (Diff.diff a b)) b
      && Diff.equal_schemas (apply_script b (Diff.diff b a)) a)

let test_diff_drives_session () =
  (* A diff applied through a session keeps the incremental report exact. *)
  let a = Figures.fig14 in
  let b = Figures.fig4b in
  let session =
    List.fold_left
      (fun s e -> Orm_interactive.Session.apply e s)
      (Orm_interactive.Session.create a)
      (Diff.diff a b)
  in
  let direct = Orm_patterns.Engine.check (Orm_interactive.Session.schema session) in
  let incremental = Orm_interactive.Session.report session in
  bool "session report matches" true
    (Ids.Role_set.equal direct.unsat_roles incremental.unsat_roles
    && Ids.String_set.equal direct.unsat_types incremental.unsat_types)

let suite =
  [
    Alcotest.test_case "identity diffs are empty" `Quick test_identity;
    Alcotest.test_case "figures pairwise" `Quick test_figures_pairwise;
    Alcotest.test_case "changed fact keeps constraints" `Quick
      test_changed_fact_preserves_constraints;
    Alcotest.test_case "removed fact cascades" `Quick test_removed_fact_with_constraints;
    QCheck_alcotest.to_alcotest test_diff_random;
    Alcotest.test_case "diff drives a session" `Quick test_diff_drives_session;
  ]
