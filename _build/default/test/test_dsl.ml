(* The textual schema language: lexer units, parser errors, and the
   print-parse round trip over the paper figures and generated schemas. *)

open Orm

let bool = Alcotest.check Alcotest.bool
let int = Alcotest.check Alcotest.int
let strings = Alcotest.check (Alcotest.list Alcotest.string)

(* Structural schema equivalence via the canonical printed form (value-set
   internals are balanced trees whose shape depends on insertion order, so
   polymorphic comparison would be too strict). *)
let schemas_equal a b = Orm_dsl.Printer.to_string a = Orm_dsl.Printer.to_string b

let test_lexer_units () =
  let toks src = List.map (fun (t : Orm_dsl.Token.located) -> t.token) (Orm_dsl.Lexer.tokenize src) in
  Alcotest.check Alcotest.int "count" 5 (List.length (toks "a . 1 .."));
  bool "range token" true (List.mem Orm_dsl.Token.Range (toks "1..5"));
  bool "string escape" true (List.mem (Orm_dsl.Token.String {|say "hi"|}) (toks {|"say \"hi\""|}));
  bool "comment skipped" true (toks "# nothing\nx" = [ Orm_dsl.Token.Ident "x"; Orm_dsl.Token.Eof ]);
  bool "slash comment" true (toks "// nothing\nx" = [ Orm_dsl.Token.Ident "x"; Orm_dsl.Token.Eof ]);
  bool "negative int" true (List.mem (Orm_dsl.Token.Int (-3)) (toks "value N {-3}"));
  Alcotest.check_raises "illegal char" (Orm_dsl.Lexer.Error ("illegal character '%'", 1, 1))
    (fun () -> ignore (toks "%"));
  Alcotest.check_raises "unterminated string"
    (Orm_dsl.Lexer.Error ("unterminated string literal", 1, 1)) (fun () ->
      ignore (toks "\"oops"))

let test_parse_minimal () =
  let src =
    {|schema demo
      object_type Person
      object_type Student subtype_of Person
      fact enrols (Student, Course) reading "enrols in"
      [m] mandatory enrols.1
      unique enrols.1
      frequency enrols.2 2..5
      value Course {"c1", "c2", "c3"}
      exclusion enrols.1, teaches.1
      subset (enrols.1, enrols.2) <= (audits.1, audits.2)
      equal enrols.1 = audits.1
      exclusive_types Student, Lecturer
      total Person = Student, Lecturer
      mandatory_or enrols.1, audits.1
      ring ac reports
    |}
  in
  let schema = Orm_dsl.Parser.parse_exn src in
  Alcotest.check Alcotest.string "name" "demo" (Schema.name schema);
  int "constraints" 11 (List.length (Schema.constraints schema));
  bool "explicit id kept" true (Schema.find_constraint schema "m" <> None);
  strings "subtype edge" [ "Student" ]
    (Subtype_graph.direct_subtypes (Schema.graph schema) "Person")

let test_parse_errors () =
  let expect_err src fragment =
    match Orm_dsl.Parser.parse src with
    | Error msg ->
        bool
          (Printf.sprintf "error %S mentions %S" msg fragment)
          true
          (let re = Str_split_contains.contains msg fragment in
           re)
    | Ok _ -> Alcotest.failf "expected a parse error for %S" src
  in
  expect_err "object_type X" "must start with 'schema";
  expect_err "schema s fact f (A B)" "','";
  expect_err "schema s mandatory f.3" "role index";
  expect_err "schema s ring weird f" "unknown ring constraint";
  expect_err "schema s frobnicate x" "unknown statement";
  expect_err "schema s frequency f.1 5..2" "max < min"

let test_roundtrip_figures () =
  List.iter
    (fun (e : Figures.expectation) ->
      let printed = Orm_dsl.Printer.to_string e.schema in
      match Orm_dsl.Parser.parse printed with
      | Error msg -> Alcotest.failf "%s does not re-parse: %s@.%s" e.figure msg printed
      | Ok reparsed ->
          bool (e.figure ^ " round trip") true (schemas_equal e.schema reparsed))
    Figures.all

let test_roundtrip_generated =
  QCheck.Test.make ~count:60 ~name:"print/parse round trip on generated schemas"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let schema = Orm_generator.Gen.clean ~seed () in
      match Orm_dsl.Parser.parse (Orm_dsl.Printer.to_string schema) with
      | Error _ -> false
      | Ok reparsed -> schemas_equal schema reparsed)

let test_roundtrip_faulted =
  QCheck.Test.make ~count:30 ~name:"round trip survives injected faults"
    QCheck.(pair (int_range 0 1000) (int_range 1 9))
    (fun (seed, p) ->
      let base = Orm_generator.Gen.clean ~seed () in
      let faulted = (Orm_generator.Faults.inject ~seed p base).schema in
      match Orm_dsl.Parser.parse (Orm_dsl.Printer.to_string faulted) with
      | Error _ -> false
      | Ok reparsed -> schemas_equal faulted reparsed)

let test_string_escapes_roundtrip () =
  let tricky =
    Schema.empty "esc"
    |> Schema.add_fact (Fact_type.make ~reading:{|says "quoted" \ back|} "f" "A" "B")
    |> Schema.add (Value_constraint ("B", Value.Constraint.of_strings [ {|a"b|}; {|c\d|} ]))
  in
  match Orm_dsl.Parser.parse (Orm_dsl.Printer.to_string tricky) with
  | Error msg -> Alcotest.failf "escape round trip failed: %s" msg
  | Ok reparsed -> bool "escapes survive" true (schemas_equal tricky reparsed)

let suite =
  [
    Alcotest.test_case "lexer units" `Quick test_lexer_units;
    Alcotest.test_case "parse a full schema" `Quick test_parse_minimal;
    Alcotest.test_case "parse errors are located" `Quick test_parse_errors;
    Alcotest.test_case "round trip: paper figures" `Quick test_roundtrip_figures;
    QCheck_alcotest.to_alcotest test_roundtrip_generated;
    QCheck_alcotest.to_alcotest test_roundtrip_faulted;
    Alcotest.test_case "string escapes round trip" `Quick test_string_escapes_roundtrip;
  ]
