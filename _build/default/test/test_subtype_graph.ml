(* Subtype graph: reachability, common-supertype queries, cycle detection
   and the topological comparison used by the model finder. *)

open Orm

let bool = Alcotest.check Alcotest.bool
let strings = Alcotest.check (Alcotest.list Alcotest.string)

let diamond =
  (* D < B < A, D < C < A *)
  Subtype_graph.of_edges [ ("B", "A"); ("C", "A"); ("D", "B"); ("D", "C") ]

let forest = Subtype_graph.of_edges [ ("B", "A"); ("C", "A"); ("Y", "X") ]

let looped = Subtype_graph.of_edges [ ("A", "B"); ("B", "C"); ("C", "A"); ("E", "D") ]

let test_reachability () =
  strings "supers of D" [ "A"; "B"; "C" ]
    (Ids.String_set.elements (Subtype_graph.supertypes diamond "D"));
  strings "subs of A" [ "B"; "C"; "D" ]
    (Ids.String_set.elements (Subtype_graph.subtypes diamond "A"));
  strings "supers of A" [] (Ids.String_set.elements (Subtype_graph.supertypes diamond "A"));
  strings "direct supers of D" [ "B"; "C" ] (Subtype_graph.direct_supertypes diamond "D");
  bool "D subtype of A" true (Subtype_graph.is_subtype_of diamond ~sub:"D" ~super:"A");
  bool "A not subtype of D" false (Subtype_graph.is_subtype_of diamond ~sub:"A" ~super:"D");
  bool "reflexive subtyping" true (Subtype_graph.is_subtype_of diamond ~sub:"D" ~super:"D")

let test_related () =
  bool "siblings related" true (Subtype_graph.related diamond "B" "C");
  bool "cross-family unrelated" false (Subtype_graph.related forest "B" "Y");
  bool "self related" true (Subtype_graph.related forest "B" "B");
  bool "ancestor related" true (Subtype_graph.related diamond "A" "D")

let test_cycles () =
  Alcotest.check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "one 3-cycle"
    [ [ "A"; "B"; "C" ] ]
    (Subtype_graph.cycles looped);
  bool "A on cycle" true (Subtype_graph.on_cycle looped "A");
  bool "E not on cycle" false (Subtype_graph.on_cycle looped "E");
  Alcotest.check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "diamond acyclic" [] (Subtype_graph.cycles diamond);
  (* A self-loop is a cycle of length one. *)
  let self = Subtype_graph.of_edges [ ("S", "S") ] in
  Alcotest.check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "self loop" [ [ "S" ] ] (Subtype_graph.cycles self)

let test_two_cycles () =
  let g = Subtype_graph.of_edges [ ("A", "B"); ("B", "A"); ("C", "D"); ("D", "C") ] in
  Alcotest.check
    (Alcotest.list (Alcotest.list Alcotest.string))
    "two disjoint 2-cycles"
    [ [ "A"; "B" ]; [ "C"; "D" ] ]
    (Subtype_graph.cycles g)

let test_height_order () =
  let cmp = Subtype_graph.compare_height diamond in
  bool "A before B" true (cmp "A" "B" < 0);
  bool "B before D" true (cmp "B" "D" < 0);
  bool "A before D" true (cmp "A" "D" < 0);
  bool "antisymmetric" true (cmp "D" "A" > 0);
  bool "equal" true (cmp "C" "C" = 0);
  (* Siblings fall back to name order. *)
  bool "B before C" true (cmp "B" "C" < 0)

(* Property: transitive supertypes computed by BFS coincide with naive
   fixpoint iteration of direct supertypes. *)
let test_closure_property =
  QCheck.Test.make ~count:200 ~name:"supertypes = naive closure"
    QCheck.(list (pair (int_range 0 8) (int_range 0 8)))
    (fun raw_edges ->
      let name i = Printf.sprintf "N%d" i in
      let edges = List.map (fun (a, b) -> (name a, name b)) raw_edges in
      let g = Subtype_graph.of_edges edges in
      (* Naive closure: start from the direct supertypes, then saturate.
         The start node itself is included exactly when some edge reaches
         back to it. *)
      let naive start =
        let step set =
          Ids.String_set.fold
            (fun t acc ->
              List.fold_left
                (fun acc (sub, super) ->
                  if sub = t then Ids.String_set.add super acc else acc)
                acc edges)
            set set
        in
        let direct =
          List.fold_left
            (fun acc (sub, super) ->
              if sub = start then Ids.String_set.add super acc else acc)
            Ids.String_set.empty edges
        in
        let rec fix set =
          let next = step set in
          if Ids.String_set.equal next set then set else fix next
        in
        fix direct
      in
      List.for_all
        (fun i ->
          Ids.String_set.equal (Subtype_graph.supertypes g (name i)) (naive (name i)))
        (List.init 9 Fun.id))

let suite =
  [
    Alcotest.test_case "reachability" `Quick test_reachability;
    Alcotest.test_case "related (common supertype)" `Quick test_related;
    Alcotest.test_case "cycle detection" `Quick test_cycles;
    Alcotest.test_case "multiple cycles" `Quick test_two_cycles;
    Alcotest.test_case "topological height order" `Quick test_height_order;
    QCheck_alcotest.to_alcotest test_closure_property;
  ]
