(* The formation-rule / RIDL-A linter, reproducing Section 3's analysis:
   which rules are style advice, which indicate unsatisfiability, and the
   paper's counterexamples (FR3's FC(1-5)+UC and FR6's Fig. 14 are
   violations yet satisfiable). *)

open Orm
module Lint = Orm_lint.Lint

let bool = Alcotest.check Alcotest.bool
let int = Alcotest.check Alcotest.int

let rule_ids findings =
  List.sort_uniq String.compare
    (List.map (fun (f : Lint.finding) -> f.rule.rule_id) findings)

let has id findings = List.mem id (rule_ids findings)

let fact_base =
  Schema.empty "lint"
  |> Schema.add_fact (Fact_type.make "f" "A" "B")
  |> Schema.add_fact (Fact_type.make "g" "A" "B")

let test_catalogue () =
  int "14 rules" 14 (List.length Lint.rules);
  (* Section 3's classification. *)
  let relevant =
    List.filter (fun (r : Lint.rule) -> r.relevant_for_unsat) Lint.rules
  in
  Alcotest.check
    (Alcotest.list Alcotest.string)
    "only FR5, FR7 and S4 are relevant for unsatisfiability"
    [ "FR5"; "FR7"; "S4" ]
    (List.sort String.compare (List.map (fun (r : Lint.rule) -> r.rule_id) relevant));
  (* Their covering patterns, as stated in Section 3. *)
  let covered id = (Option.get (Lint.find_rule id)).Lint.covered_by_pattern in
  Alcotest.check (Alcotest.option Alcotest.int) "FR5 = pattern 3" (Some 3) (covered "FR5");
  Alcotest.check (Alcotest.option Alcotest.int) "FR7 -> pattern 4" (Some 4) (covered "FR7");
  Alcotest.check (Alcotest.option Alcotest.int) "S4 -> pattern 6" (Some 6) (covered "S4");
  Alcotest.check (Alcotest.option Alcotest.int) "S2 -> pattern 9 (subtypes only)"
    (Some 9) (covered "S2")

let test_fr1 () =
  let s =
    fact_base
    |> Schema.add (Frequency (Single (Ids.first "f"), Constraints.frequency ~max:1 1))
  in
  bool "FC(1-1) flagged" true (has "FR1" (Lint.check s));
  let ok =
    fact_base
    |> Schema.add (Frequency (Single (Ids.first "f"), Constraints.frequency ~max:2 1))
  in
  bool "FC(1-2) not flagged by FR1" false (has "FR1" (Lint.check ok))

let test_fr2 () =
  let s =
    fact_base
    |> Schema.add (Frequency (Ids.whole_predicate "f", Constraints.frequency ~max:2 1))
  in
  bool "spanning frequency flagged" true (has "FR2" (Lint.check s))

let test_fr3_satisfiable_violation () =
  (* The paper's Section 3 example: FC(1-5) plus a uniqueness constraint on
     the same role violates FR3 yet no role is unsatisfiable. *)
  let s =
    fact_base
    |> Schema.add (Uniqueness (Single (Ids.first "f")))
    |> Schema.add (Frequency (Single (Ids.first "f"), Constraints.frequency ~max:5 1))
  in
  bool "FR3 flagged" true (has "FR3" (Lint.check s));
  int "but no pattern fires" 0
    (List.length (Orm_patterns.Engine.check s).diagnostics);
  match Orm_reasoner.Finder.solve s Strongly_satisfiable with
  | Model _ -> ()
  | No_model | Budget_exceeded -> Alcotest.fail "FR3 violation should be satisfiable"

let test_fr4 () =
  let s =
    fact_base
    |> Schema.add (Uniqueness (Single (Ids.first "f")))
    |> Schema.add (Uniqueness (Ids.whole_predicate "f"))
  in
  bool "spanned pair uniqueness flagged" true (has "FR4" (Lint.check s))

let test_fr5_matches_pattern3 () =
  let e = Option.get (Figures.find "fig4a") in
  bool "FR5 on fig4a" true (has "FR5" (Lint.check e.schema))

let test_fr6_fig14 () =
  (* Fig. 14 violates FR6 but is strongly satisfiable. *)
  bool "FR6 on fig14" true (has "FR6" (Lint.check Figures.fig14));
  int "fig14 has no pattern diagnostics" 0
    (List.length (Orm_patterns.Engine.check Figures.fig14).diagnostics)

let test_fr7_matches_pattern4 () =
  bool "FR7 on fig5" true (has "FR7" (Lint.check Figures.fig5))

let test_s1_superfluous_subset () =
  let s =
    fact_base
    |> Schema.add_fact (Fact_type.make "h" "A" "B")
    |> Schema.add (Subset (Ids.whole_predicate "f", Ids.whole_predicate "g"))
    |> Schema.add (Subset (Ids.whole_predicate "g", Ids.whole_predicate "h"))
    (* implied by the two above: *)
    |> Schema.add (Subset (Ids.whole_predicate "f", Ids.whole_predicate "h"))
  in
  bool "transitive duplicate flagged" true (has "S1" (Lint.check s));
  let minimal =
    fact_base |> Schema.add (Subset (Ids.whole_predicate "f", Ids.whole_predicate "g"))
  in
  bool "single subset not flagged" false (has "S1" (Lint.check minimal))

let test_s2_loop () =
  let s =
    fact_base
    |> Schema.add (Subset (Ids.whole_predicate "f", Ids.whole_predicate "g"))
    |> Schema.add (Subset (Ids.whole_predicate "g", Ids.whole_predicate "f"))
  in
  bool "subset loop flagged" true (has "S2" (Lint.check s));
  (* ... and satisfiable, as the paper notes against RIDL-A's S2. *)
  int "no pattern diagnostics" 0 (List.length (Orm_patterns.Engine.check s).diagnostics)

let test_s3_superfluous_equality () =
  let s =
    fact_base
    |> Schema.add (Subset (Ids.whole_predicate "f", Ids.whole_predicate "g"))
    |> Schema.add (Subset (Ids.whole_predicate "g", Ids.whole_predicate "f"))
    |> Schema.add (Equality (Ids.whole_predicate "f", Ids.whole_predicate "g"))
  in
  bool "implied equality flagged" true (has "S3" (Lint.check s))

let test_s4_mirrors_pattern6 () =
  bool "S4 on fig8" true (has "S4" (Lint.check Figures.fig8));
  bool "S4 silent on fig14" false (has "S4" (Lint.check Figures.fig14))

let test_validity_rules () =
  let s = Schema.add_object_type "Orphan" fact_base in
  bool "V1 orphan type" true
    (List.exists
       (fun (f : Lint.finding) -> f.rule.rule_id = "V1" && f.subject = "Orphan")
       (Lint.check s));
  bool "V2 missing uniqueness" true (has "V2" (Lint.check fact_base));
  let with_uc = Schema.add (Uniqueness (Single (Ids.first "f"))) fact_base in
  bool "V2 quiet once f has a UC" true
    (List.for_all
       (fun (f : Lint.finding) -> f.rule.rule_id <> "V2" || f.subject <> "f")
       (Lint.check with_uc));
  let widened =
    Schema.empty "v3"
    |> Schema.add_subtype ~sub:"Sub" ~super:"Super"
    |> Schema.add (Value_constraint ("Super", Value.Constraint.of_range 1 3))
    |> Schema.add (Value_constraint ("Sub", Value.Constraint.of_range 2 9))
  in
  bool "V3 widened subtype values" true (has "V3" (Lint.check widened))

let test_check_rule () =
  Alcotest.check_raises "unknown rule"
    (Invalid_argument "Lint.check_rule: unknown rule XX") (fun () ->
      ignore (Lint.check_rule "XX" fact_base));
  int "FR1 alone runs" 0 (List.length (Lint.check_rule "FR1" fact_base))

let suite =
  [
    Alcotest.test_case "catalogue mirrors Section 3" `Quick test_catalogue;
    Alcotest.test_case "FR1" `Quick test_fr1;
    Alcotest.test_case "FR2" `Quick test_fr2;
    Alcotest.test_case "FR3 violation is satisfiable" `Quick
      test_fr3_satisfiable_violation;
    Alcotest.test_case "FR4" `Quick test_fr4;
    Alcotest.test_case "FR5 = pattern 3 territory" `Quick test_fr5_matches_pattern3;
    Alcotest.test_case "FR6 on fig14 (satisfiable violation)" `Quick test_fr6_fig14;
    Alcotest.test_case "FR7 = pattern 4 territory" `Quick test_fr7_matches_pattern4;
    Alcotest.test_case "S1 superfluous subset" `Quick test_s1_superfluous_subset;
    Alcotest.test_case "S2 loop is satisfiable" `Quick test_s2_loop;
    Alcotest.test_case "S3 superfluous equality" `Quick test_s3_superfluous_equality;
    Alcotest.test_case "S4 mirrors pattern 6" `Quick test_s4_mirrors_pattern6;
    Alcotest.test_case "validity approximations" `Quick test_validity_rules;
    Alcotest.test_case "check_rule" `Quick test_check_rule;
  ]
