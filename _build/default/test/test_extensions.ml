(* The extension patterns 10-12 (the paper's Section-5 future work): each is
   off by default, fires on its target contradiction when enabled, stays
   silent on satisfiable neighbours, and is sound against the complete
   bounded model finder. *)

open Orm
module Engine = Orm_patterns.Engine
module Settings = Orm_patterns.Settings

let bool = Alcotest.check Alcotest.bool
let int = Alcotest.check Alcotest.int

let ext = Settings.with_extensions Settings.default

let fired settings schema =
  List.sort_uniq Int.compare
    (List.filter_map Orm_patterns.Diagnostic.pattern_number
       (Engine.check ~settings schema).diagnostics)

(* --- P10: empty effective value set ----------------------------------- *)

let disjoint_values =
  Schema.empty "p10"
  |> Schema.add_subtype ~sub:"Sub" ~super:"Super"
  |> Schema.add (Value_constraint ("Super", Value.Constraint.of_range 1 5))
  |> Schema.add (Value_constraint ("Sub", Value.Constraint.of_range 10 15))

let test_p10_fires () =
  bool "pattern 10 fires" true (List.mem 10 (fired ext disjoint_values));
  bool "Sub flagged" true
    (Ids.String_set.mem "Sub" (Engine.check ~settings:ext disjoint_values).unsat_types);
  bool "off by default" false (List.mem 10 (fired Settings.default disjoint_values))

let test_p10_sound () =
  match Orm_reasoner.Finder.solve disjoint_values (Type_satisfiable "Sub") with
  | No_model -> ()
  | Model _ -> Alcotest.fail "Sub should have no population"
  | Budget_exceeded -> Alcotest.fail "budget exceeded"

let test_p10_overlap_ok () =
  let s =
    Schema.empty "p10ok"
    |> Schema.add_subtype ~sub:"Sub" ~super:"Super"
    |> Schema.add (Value_constraint ("Super", Value.Constraint.of_range 1 5))
    |> Schema.add (Value_constraint ("Sub", Value.Constraint.of_range 4 9))
  in
  bool "overlapping ranges fine" false (List.mem 10 (fired ext s))

(* --- P11: ring-value --------------------------------------------------- *)

let sneaky =
  (* Exactly the paper's Section-5 example. *)
  Schema.empty "p11"
  |> Schema.add_fact (Fact_type.make "r" "A" "A")
  |> Schema.add (Ring (Ring.Irreflexive, "r"))
  |> Schema.add (Value_constraint ("A", Value.Constraint.of_strings [ "only" ]))

let test_p11_fires () =
  bool "pattern 11 closes the paper's gap" true (List.mem 11 (fired ext sneaky));
  bool "off by default (the nine are incomplete)" false
    (List.mem 11 (fired Settings.default sneaky))

let test_p11_sound () =
  let report = Engine.check ~settings:ext sneaky in
  Ids.Role_set.iter
    (fun r ->
      match Orm_reasoner.Finder.solve sneaky (Role_satisfiable r) with
      | No_model -> ()
      | Model _ -> Alcotest.failf "role %s should be refuted" (Ids.role_to_string r)
      | Budget_exceeded -> Alcotest.fail "budget exceeded")
    report.unsat_roles;
  bool "roles flagged" true (not (Ids.Role_set.is_empty report.unsat_roles))

let test_p11_two_values_ok () =
  let s =
    Schema.empty "p11ok"
    |> Schema.add_fact (Fact_type.make "r" "A" "A")
    |> Schema.add (Ring (Ring.Irreflexive, "r"))
    |> Schema.add (Value_constraint ("A", Value.Constraint.of_strings [ "x"; "y" ]))
  in
  bool "two values suffice" false (List.mem 11 (fired ext s))

let test_p11_all_nonreflexive_kinds () =
  List.iter
    (fun kind ->
      let s =
        Schema.empty "p11k"
        |> Schema.add_fact (Fact_type.make "r" "A" "A")
        |> Schema.add (Ring (kind, "r"))
        |> Schema.add (Value_constraint ("A", Value.Constraint.of_strings [ "v" ]))
      in
      let expect = kind <> Ring.Symmetric && kind <> Ring.Antisymmetric in
      bool (Ring.to_string kind) expect (List.mem 11 (fired ext s)))
    Ring.all

let test_p11_heterogeneous_players () =
  (* Different players whose value sets coincide on one value. *)
  let s =
    Schema.empty "p11h"
    |> Schema.add_subtype ~sub:"A" ~super:"T"
    |> Schema.add_subtype ~sub:"B" ~super:"T"
    |> Schema.add_fact (Fact_type.make "r" "A" "B")
    |> Schema.add (Ring (Ring.Asymmetric, "r"))
    |> Schema.add (Value_constraint ("A", Value.Constraint.of_strings [ "v" ]))
    |> Schema.add (Value_constraint ("B", Value.Constraint.of_strings [ "v" ]))
  in
  bool "single shared value across players" true (List.mem 11 (fired ext s))

(* --- P12: acyclic + mandatory ------------------------------------------ *)

let endless =
  Schema.empty "p12"
  |> Schema.add_fact (Fact_type.make "reports_to" "Employee" "Employee")
  |> Schema.add (Ring (Ring.Acyclic, "reports_to"))
  |> Schema.add (Mandatory (Ids.first "reports_to"))

let test_p12_fires () =
  bool "pattern 12 fires" true (List.mem 12 (fired ext endless));
  bool "Employee flagged" true
    (Ids.String_set.mem "Employee" (Engine.check ~settings:ext endless).unsat_types);
  bool "off by default" false (List.mem 12 (fired Settings.default endless))

let test_p12_sound () =
  match Orm_reasoner.Finder.solve endless (Type_satisfiable "Employee") with
  | No_model -> ()
  | Model pop ->
      Alcotest.failf "Employee should be empty in finite populations, got:@.%a"
        Orm_semantics.Population.pp pop
  | Budget_exceeded -> Alcotest.fail "budget exceeded"

let test_p12_second_side () =
  (* Mandatory on the second role: everyone must be reported to. *)
  let s =
    Schema.empty "p12b"
    |> Schema.add_fact (Fact_type.make "r" "E" "E")
    |> Schema.add (Ring (Ring.Acyclic, "r"))
    |> Schema.add (Mandatory (Ids.second "r"))
  in
  bool "second side fires too" true (List.mem 12 (fired ext s))

let test_p12_subtype_coplayer () =
  (* Successors in a subtype of the player still stay inside the player. *)
  let s =
    Schema.empty "p12c"
    |> Schema.add_subtype ~sub:"Manager" ~super:"Employee"
    |> Schema.add_fact (Fact_type.make "reports_to" "Employee" "Manager")
    |> Schema.add (Ring (Ring.Acyclic, "reports_to"))
    |> Schema.add (Mandatory (Ids.first "reports_to"))
  in
  bool "subtype co-player fires" true (List.mem 12 (fired ext s))

let test_p12_escape_hatch () =
  (* If the co-player is NOT contained in the player, chains can escape:
     satisfiable, no diagnostic. *)
  let s =
    Schema.empty "p12ok"
    |> Schema.add_subtype ~sub:"Manager" ~super:"Person"
    |> Schema.add_subtype ~sub:"Employee" ~super:"Person"
    |> Schema.add_fact (Fact_type.make "reports_to" "Employee" "Manager")
    |> Schema.add (Ring (Ring.Acyclic, "reports_to"))
    |> Schema.add (Mandatory (Ids.first "reports_to"))
  in
  bool "escaping chain is fine" false (List.mem 12 (fired ext s));
  match Orm_reasoner.Finder.solve s (Role_satisfiable (Ids.first "reports_to")) with
  | Model _ -> ()
  | No_model -> Alcotest.fail "an employee reporting to a non-employee manager is fine"
  | Budget_exceeded -> Alcotest.fail "budget exceeded"

let test_p12_no_mandatory_ok () =
  let s =
    Schema.empty "p12nm"
    |> Schema.add_fact (Fact_type.make "r" "E" "E")
    |> Schema.add (Ring (Ring.Acyclic, "r"))
  in
  bool "acyclic alone is fine" false (List.mem 12 (fired ext s))

(* The incompleteness exhibit of test_incompleteness.ml is now CLOSED when
   extensions are on - the programme the paper sketches in Section 5. *)
let test_extensions_close_the_gap () =
  int "nine patterns: silent" 0
    (List.length (Engine.check ~settings:Settings.default sneaky).diagnostics);
  bool "with extensions: caught" true
    ((Engine.check ~settings:ext sneaky).diagnostics <> [])

(* Injected extension faults: invisible to the nine, caught with
   extensions on, and sound against the finder. *)
let test_extension_faults =
  QCheck.Test.make ~count:30 ~name:"extension faults caught only with extensions"
    QCheck.(pair (int_range 0 3_000) (int_range 10 12))
    (fun (seed, p) ->
      let base = Orm_generator.Gen.clean ~seed () in
      let inj = Orm_generator.Faults.inject ~seed p base in
      let plain = Engine.check ~settings:Settings.default inj.schema in
      let with_ext = Engine.check ~settings:ext inj.schema in
      let fired =
        List.filter_map Orm_patterns.Diagnostic.pattern_number with_ext.diagnostics
      in
      (not (List.mem p
              (List.filter_map Orm_patterns.Diagnostic.pattern_number plain.diagnostics)))
      && List.mem p fired
      && List.for_all
           (fun t -> Ids.String_set.mem t with_ext.unsat_types)
           inj.expect_types
      && List.for_all
           (fun r -> Ids.Role_set.mem r with_ext.unsat_roles)
           inj.expect_roles)

let test_extension_faults_sound =
  QCheck.Test.make ~count:6 ~name:"extension verdicts refuted by the finder"
    QCheck.(pair (int_range 0 500) (int_range 10 12))
    (fun (seed, p) ->
      let base = Orm_generator.Gen.clean ~config:(Orm_generator.Gen.sized 2) ~seed () in
      let inj = Orm_generator.Faults.inject ~seed p base in
      let report = Engine.check ~settings:ext inj.schema in
      let ok_type t =
        match Orm_reasoner.Finder.solve ~budget:300_000 inj.schema (Type_satisfiable t) with
        | Model _ -> false
        | No_model | Budget_exceeded -> true
      in
      let ok_role r =
        match Orm_reasoner.Finder.solve ~budget:300_000 inj.schema (Role_satisfiable r) with
        | Model _ -> false
        | No_model | Budget_exceeded -> true
      in
      Ids.String_set.for_all ok_type report.unsat_types
      && Ids.Role_set.for_all ok_role report.unsat_roles)

let suite =
  [
    QCheck_alcotest.to_alcotest test_extension_faults;
    QCheck_alcotest.to_alcotest ~long:true test_extension_faults_sound;
    Alcotest.test_case "p10 fires on disjoint inherited values" `Quick test_p10_fires;
    Alcotest.test_case "p10 sound vs finder" `Quick test_p10_sound;
    Alcotest.test_case "p10 overlapping ranges fine" `Quick test_p10_overlap_ok;
    Alcotest.test_case "p11 closes the paper's example gap" `Quick test_p11_fires;
    Alcotest.test_case "p11 sound vs finder" `Quick test_p11_sound;
    Alcotest.test_case "p11 two values suffice" `Quick test_p11_two_values_ok;
    Alcotest.test_case "p11 kind coverage" `Quick test_p11_all_nonreflexive_kinds;
    Alcotest.test_case "p11 heterogeneous players" `Quick test_p11_heterogeneous_players;
    Alcotest.test_case "p12 fires on acyclic+mandatory" `Quick test_p12_fires;
    Alcotest.test_case "p12 sound vs finder" `Quick test_p12_sound;
    Alcotest.test_case "p12 second side" `Quick test_p12_second_side;
    Alcotest.test_case "p12 subtype co-player" `Quick test_p12_subtype_coplayer;
    Alcotest.test_case "p12 escape hatch" `Quick test_p12_escape_hatch;
    Alcotest.test_case "p12 needs the mandatory" `Quick test_p12_no_mandatory_ok;
    Alcotest.test_case "extensions close the incompleteness gap" `Quick
      test_extensions_close_the_gap;
  ]
