(* Explanations: headline per element kind, verbalized premises from
   culprits and subtype links, totality over figures and faulted schemas. *)

open Orm
module Explain = Orm_explain.Explain

let contains = Str_split_contains.contains
let bool = Alcotest.check Alcotest.bool

let explain_first schema =
  match Explain.report schema (Orm_patterns.Engine.check schema) with
  | e :: _ -> e
  | [] -> Alcotest.fail "expected a diagnostic to explain"

let test_fig1 () =
  let e = explain_first Figures.fig1 in
  bool "headline names the dead type" true
    (contains e.headline "no PhDStudent can ever exist");
  bool "premise: exclusive types" true
    (List.exists (fun p -> contains p "No object is more than one of") e.premises);
  bool "premise: subtype links" true
    (List.exists (fun p -> contains p "Each PhDStudent is a") e.premises);
  bool "pattern name" true
    (e.pattern = Some "Exclusive constraint between types")

let test_fig5_role_headline () =
  let e = explain_first Figures.fig5 in
  bool "role phrased in domain terms" true (contains e.headline "no A can ever f1");
  bool "value premise" true
    (List.exists (fun p -> contains p "The possible values of B") e.premises)

let test_joint_headline () =
  let e = explain_first Figures.fig6 in
  bool "joint phrasing" true (contains e.headline "cannot all hold in one population")

let test_propagation_explanations () =
  let report = Orm_patterns.Engine.check Figures.fig13 in
  let explanations = Explain.report Figures.fig13 report in
  bool "one explanation per diagnostic" true
    (List.length explanations = List.length report.diagnostics)

let test_totality =
  QCheck.Test.make ~count:40 ~name:"explanations render for every faulted schema"
    QCheck.(pair (int_range 0 2_000) (int_range 1 9))
    (fun (seed, p) ->
      let schema =
        (Orm_generator.Faults.inject ~seed p (Orm_generator.Gen.clean ~seed ())).schema
      in
      let explanations =
        Explain.report schema (Orm_patterns.Engine.check schema)
      in
      explanations <> []
      && List.for_all (fun e -> String.length (Explain.to_text e) > 0) explanations)

let suite =
  [
    Alcotest.test_case "fig1 explanation" `Quick test_fig1;
    Alcotest.test_case "fig5 role headline" `Quick test_fig5_role_headline;
    Alcotest.test_case "joint headline" `Quick test_joint_headline;
    Alcotest.test_case "propagation explanations" `Quick test_propagation_explanations;
    QCheck_alcotest.to_alcotest test_totality;
  ]
