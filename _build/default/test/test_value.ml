(* The Value module: ordering, set operations, ranges, printing. *)

open Orm

let bool = Alcotest.check Alcotest.bool
let int = Alcotest.check Alcotest.int
let string = Alcotest.check Alcotest.string

let test_compare () =
  bool "str < int ordering is total" true
    (Value.compare (Value.str "a") (Value.int 1) <> 0);
  bool "antisymmetric" true
    (Value.compare (Value.str "a") (Value.int 1)
    = -Value.compare (Value.int 1) (Value.str "a"));
  int "equal strings" 0 (Value.compare (Value.str "x") (Value.str "x"));
  bool "int order" true (Value.compare (Value.int 1) (Value.int 2) < 0);
  bool "equal" true (Value.equal (Value.int 5) (Value.int 5));
  bool "not equal across kinds" false (Value.equal (Value.str "1") (Value.int 1))

let test_printing () =
  string "string quoted" "'x1'" (Value.to_string (Value.str "x1"));
  string "int bare" "42" (Value.to_string (Value.int 42))

let test_ranges () =
  let r = Value.Constraint.of_range 3 7 in
  int "cardinal 3..7" 5 (Value.Constraint.cardinal r);
  bool "mem lower" true (Value.Constraint.mem (Value.int 3) r);
  bool "mem upper" true (Value.Constraint.mem (Value.int 7) r);
  bool "not mem outside" false (Value.Constraint.mem (Value.int 8) r);
  int "singleton range" 1 (Value.Constraint.cardinal (Value.Constraint.of_range 5 5));
  Alcotest.check_raises "inverted range"
    (Invalid_argument "Value.Constraint.of_range: lo > hi") (fun () ->
      ignore (Value.Constraint.of_range 7 3))

let test_set_ops () =
  let a = Value.Constraint.of_range 1 5 in
  let b = Value.Constraint.of_range 4 8 in
  int "union" 8 (Value.Constraint.cardinal (Value.Constraint.union a b));
  int "inter" 2 (Value.Constraint.cardinal (Value.Constraint.inter a b));
  bool "empty inter" true
    (Value.Constraint.is_empty
       (Value.Constraint.inter a (Value.Constraint.of_range 10 12)));
  bool "dedup in of_list" true
    (Value.Constraint.cardinal (Value.Constraint.of_strings [ "x"; "x"; "y" ]) = 2);
  bool "equal is extensional" true
    (Value.Constraint.equal
       (Value.Constraint.of_list [ Value.int 2; Value.int 1 ])
       (Value.Constraint.of_list [ Value.int 1; Value.int 2 ]))

let test_pp_sorted () =
  string "elements print sorted" "{1, 2, 3}"
    (Format.asprintf "%a" Value.Constraint.pp (Value.Constraint.of_list
       [ Value.int 3; Value.int 1; Value.int 2 ]))

let suite =
  [
    Alcotest.test_case "comparison" `Quick test_compare;
    Alcotest.test_case "printing" `Quick test_printing;
    Alcotest.test_case "ranges" `Quick test_ranges;
    Alcotest.test_case "set operations" `Quick test_set_ops;
    Alcotest.test_case "canonical printing" `Quick test_pp_sorted;
  ]
