(* Every worked example of the paper (Figures 1-14) against its expected
   verdict: which pattern fires, which elements are unsatisfiable, and - for
   the negative controls - that nothing fires and the bounded model finder
   produces a strong witness. *)

open Orm
module Engine = Orm_patterns.Engine
module Settings = Orm_patterns.Settings
module Diagnostic = Orm_patterns.Diagnostic
module Finder = Orm_reasoner.Finder

let check = Alcotest.check
let bool msg expected actual = Alcotest.check Alcotest.bool msg expected actual

let test_wellformed (e : Figures.expectation) () =
  match Schema.validate e.schema with
  | [] -> ()
  | errs ->
      Alcotest.failf "%s is not well-formed: %a" e.figure
        (Format.pp_print_list Schema.pp_error)
        errs

(* Paper mode (no propagation): the diagnostics must come from exactly the
   expected pattern, and must flag exactly the expected elements. *)
let test_paper_verdict (e : Figures.expectation) () =
  let report = Engine.check ~settings:Settings.patterns_only e.schema in
  let fired =
    List.sort_uniq Int.compare
      (List.filter_map Diagnostic.pattern_number report.diagnostics)
  in
  (match e.pattern with
  | None ->
      check (Alcotest.list Alcotest.int) (e.figure ^ " fires no pattern") [] fired
  | Some p ->
      bool
        (Printf.sprintf "%s fires pattern %d (got [%s])" e.figure p
           (String.concat ";" (List.map string_of_int fired)))
        true (List.mem p fired));
  let types = Ids.String_set.elements report.unsat_types in
  let roles = Ids.Role_set.elements report.unsat_roles in
  check
    (Alcotest.list Alcotest.string)
    (e.figure ^ " unsat types")
    (List.sort String.compare e.unsat_types)
    types;
  check
    (Alcotest.list Alcotest.string)
    (e.figure ^ " unsat roles")
    (List.sort String.compare (List.map Ids.role_to_string e.unsat_roles))
    (List.map Ids.role_to_string roles);
  let show_group g =
    String.concat "+" (List.map Ids.role_to_string (Ids.Role_set.elements g))
  in
  check
    (Alcotest.list Alcotest.string)
    (e.figure ^ " joint groups")
    (List.sort String.compare
       (List.map (fun g -> show_group (Ids.Role_set.of_list g)) e.joint_roles))
    (List.sort String.compare (List.map show_group report.joint))

(* Default mode adds propagation: everything the paper flags must still be
   flagged. *)
let test_default_superset (e : Figures.expectation) () =
  let report = Engine.check e.schema in
  List.iter
    (fun t ->
      bool (e.figure ^ ": " ^ t ^ " flagged") true
        (Ids.String_set.mem t report.unsat_types))
    e.unsat_types;
  List.iter
    (fun r ->
      bool
        (e.figure ^ ": " ^ Ids.role_to_string r ^ " flagged")
        true
        (Ids.Role_set.mem r report.unsat_roles))
    e.unsat_roles

(* Soundness against the semantics: every element the engine flags must be
   refuted by the complete bounded model finder. *)
let test_sound_vs_finder (e : Figures.expectation) () =
  let report = Engine.check e.schema in
  Ids.String_set.iter
    (fun t ->
      match Finder.solve e.schema (Type_satisfiable t) with
      | Model pop ->
          Alcotest.failf "%s: engine flags type %s but a model populates it:@.%a"
            e.figure t Orm_semantics.Population.pp pop
      | No_model | Budget_exceeded -> ())
    report.unsat_types;
  Ids.Role_set.iter
    (fun r ->
      match Finder.solve e.schema (Role_satisfiable r) with
      | Model pop ->
          Alcotest.failf "%s: engine flags role %s but a model populates it:@.%a"
            e.figure (Ids.role_to_string r) Orm_semantics.Population.pp pop
      | No_model | Budget_exceeded -> ())
    report.unsat_roles;
  List.iter
    (fun group ->
      match Finder.solve e.schema (All_populated (Ids.Role_set.elements group)) with
      | Model pop ->
          Alcotest.failf
            "%s: engine calls a role group jointly unsatisfiable but a model \
             populates all of it:@.%a"
            e.figure Orm_semantics.Population.pp pop
      | No_model | Budget_exceeded -> ())
    report.joint

(* Negative controls must admit a strong witness. *)
let test_negative_strong (e : Figures.expectation) () =
  if e.pattern = None then
    match Finder.solve e.schema Strongly_satisfiable with
    | Model pop -> (
        match Orm_semantics.Eval.check_strong e.schema pop with
        | Ok () -> ()
        | Error why -> Alcotest.failf "%s: witness is not strong: %s" e.figure why)
    | No_model -> Alcotest.failf "%s: no strong model found" e.figure
    | Budget_exceeded -> Alcotest.failf "%s: finder ran out of budget" e.figure

(* Fig. 1's special property stressed by the paper: PhDStudent is
   unsatisfiable, yet the schema as a whole is (weakly) satisfiable. *)
let test_fig1_weak_sat () =
  match Finder.solve Figures.fig1 Schema_satisfiable with
  | Model _ -> ()
  | No_model | Budget_exceeded ->
      Alcotest.fail "fig1 should be weakly satisfiable (empty population)"

let test_fig1_phd_refuted () =
  match Finder.solve Figures.fig1 (Type_satisfiable "PhDStudent") with
  | No_model -> ()
  | Model _ -> Alcotest.fail "PhDStudent should have no population"
  | Budget_exceeded -> Alcotest.fail "finder budget exceeded on fig1"

let suite =
  let per_figure (e : Figures.expectation) =
    [
      Alcotest.test_case (e.figure ^ " well-formed") `Quick (test_wellformed e);
      Alcotest.test_case (e.figure ^ " paper verdict") `Quick (test_paper_verdict e);
      Alcotest.test_case (e.figure ^ " default superset") `Quick
        (test_default_superset e);
      Alcotest.test_case (e.figure ^ " sound vs finder") `Slow
        (test_sound_vs_finder e);
      Alcotest.test_case (e.figure ^ " negative strong") `Slow
        (test_negative_strong e);
    ]
  in
  List.concat_map per_figure Figures.all
  @ [
      Alcotest.test_case "fig1 weakly satisfiable" `Quick test_fig1_weak_sat;
      Alcotest.test_case "fig1 PhDStudent refuted" `Slow test_fig1_phd_refuted;
    ]
