(* The model checker: each constraint kind is exercised with a satisfying
   and a violating population, plus the two implicit ORM rules (type-family
   exclusion and strict subtyping). *)

open Orm
open Orm_semantics

let bool = Alcotest.check Alcotest.bool
let int = Alcotest.check Alcotest.int

let v = Value.str
let sat schema pop = Eval.satisfies schema pop
let n_violations schema pop = List.length (Eval.violations schema pop)

let fact_schema extra =
  let s =
    Schema.empty "m"
    |> Schema.add_fact (Fact_type.make "f" "A" "B")
    |> Schema.add_fact (Fact_type.make "g" "A" "B")
  in
  List.fold_left (fun s body -> Schema.add body s) s extra

let base_pop =
  Population.empty
  |> Population.add_objects "A" [ v "a1"; v "a2" ]
  |> Population.add_objects "B" [ v "b1"; v "b2" ]

let test_typing () =
  let s = fact_schema [] in
  bool "well-typed" true (sat s (Population.add_tuple "f" (v "a1", v "b1") base_pop));
  (* a value playing a role without being in the player's extension *)
  bool "untyped component" false
    (sat s (Population.add_tuple "f" (v "ghost", v "b1") base_pop));
  int "two bad components" 2
    (n_violations s (Population.add_tuple "f" (v "ghost", v "phantom") base_pop))

let test_mandatory () =
  let s = fact_schema [ Mandatory (Ids.first "f") ] in
  bool "all A play" true
    (sat s
       (base_pop
       |> Population.add_tuples "f" [ (v "a1", v "b1"); (v "a2", v "b1") ]));
  bool "a2 misses" false
    (sat s (Population.add_tuple "f" (v "a1", v "b1") base_pop));
  bool "empty population fine" true (sat s Population.empty)

let test_disjunctive_mandatory () =
  let s =
    fact_schema [ Disjunctive_mandatory [ Ids.first "f"; Ids.first "g" ] ]
  in
  bool "split over both roles" true
    (sat s
       (base_pop
       |> Population.add_tuple "f" (v "a1", v "b1")
       |> Population.add_tuple "g" (v "a2", v "b2")));
  bool "a2 plays neither" false
    (sat s (Population.add_tuple "f" (v "a1", v "b1") base_pop))

let test_uniqueness () =
  let s = fact_schema [ Uniqueness (Single (Ids.first "f")) ] in
  bool "unique" true
    (sat s
       (base_pop
       |> Population.add_tuples "f" [ (v "a1", v "b1"); (v "a2", v "b1") ]));
  bool "a1 twice" false
    (sat s
       (base_pop
       |> Population.add_tuples "f" [ (v "a1", v "b1"); (v "a1", v "b2") ]))

let test_frequency () =
  let s =
    fact_schema [ Frequency (Single (Ids.first "f"), Constraints.frequency ~max:2 2) ]
  in
  bool "a1 plays twice" true
    (sat s
       (base_pop
       |> Population.add_tuples "f" [ (v "a1", v "b1"); (v "a1", v "b2") ]));
  bool "a1 plays once (below min)" false
    (sat s (Population.add_tuple "f" (v "a1", v "b1") base_pop));
  bool "absent player unconstrained" true (sat s base_pop);
  let s3 =
    fact_schema [ Frequency (Single (Ids.first "f"), Constraints.frequency ~max:1 1) ]
  in
  bool "above max" false
    (sat s3
       (base_pop
       |> Population.add_tuples "f" [ (v "a1", v "b1"); (v "a1", v "b2") ]))

let test_value_constraint () =
  let s =
    fact_schema [ Value_constraint ("B", Value.Constraint.of_strings [ "b1"; "b2" ]) ]
  in
  bool "inside the set" true (sat s base_pop);
  bool "outside the set" false (sat s (Population.add_object "B" (v "b3") base_pop))

let test_role_exclusion () =
  let s =
    fact_schema
      [ Role_exclusion [ Single (Ids.first "f"); Single (Ids.first "g") ] ]
  in
  bool "disjoint" true
    (sat s
       (base_pop
       |> Population.add_tuple "f" (v "a1", v "b1")
       |> Population.add_tuple "g" (v "a2", v "b1")));
  bool "overlap" false
    (sat s
       (base_pop
       |> Population.add_tuple "f" (v "a1", v "b1")
       |> Population.add_tuple "g" (v "a1", v "b2")))

let test_subset_equality () =
  let sub = fact_schema [ Subset (Ids.whole_predicate "f", Ids.whole_predicate "g") ] in
  let pop_ok =
    base_pop
    |> Population.add_tuple "f" (v "a1", v "b1")
    |> Population.add_tuples "g" [ (v "a1", v "b1"); (v "a2", v "b2") ]
  in
  bool "subset holds" true (sat sub pop_ok);
  bool "subset broken" false
    (sat sub (Population.add_tuple "f" (v "a1", v "b1") base_pop));
  let eq = fact_schema [ Equality (Ids.whole_predicate "f", Ids.whole_predicate "g") ] in
  bool "equality broken one way" false (sat eq pop_ok);
  bool "equality holds" true
    (sat eq
       (base_pop
       |> Population.add_tuple "f" (v "a1", v "b1")
       |> Population.add_tuple "g" (v "a1", v "b1")))

let test_type_exclusion () =
  let s =
    Schema.empty "m"
    |> Schema.add_subtype ~sub:"A" ~super:"Top"
    |> Schema.add_subtype ~sub:"B" ~super:"Top"
    |> Schema.add (Type_exclusion [ "A"; "B" ])
  in
  bool "disjoint" true
    (Eval.satisfies s
       (Population.empty
       |> Population.add_objects "Top" [ v "x"; v "y" ]
       |> Population.add_object "A" (v "x")
       |> Population.add_object "B" (v "y")));
  bool "overlap" false
    (Eval.satisfies s
       (Population.empty
       |> Population.add_object "Top" (v "x")
       |> Population.add_object "A" (v "x")
       |> Population.add_object "B" (v "x")))

let test_total_subtypes () =
  let s =
    Schema.empty "m"
    |> Schema.add_subtype ~sub:"A" ~super:"Top"
    |> Schema.add_subtype ~sub:"B" ~super:"Top"
    |> Schema.add (Total_subtypes ("Top", [ "A"; "B" ]))
  in
  bool "covered" true
    (Eval.satisfies s
       (Population.empty
       |> Population.add_objects "Top" [ v "x"; v "y" ]
       |> Population.add_object "A" (v "x")
       |> Population.add_object "B" (v "y")));
  bool "x uncovered" false
    (Eval.satisfies s
       (Population.empty
       |> Population.add_objects "Top" [ v "x"; v "y" ]
       |> Population.add_object "A" (v "y")))

let test_ring_eval () =
  let s =
    Schema.empty "m"
    |> Schema.add_fact (Fact_type.make "r" "A" "A")
    |> Schema.add (Ring (Ring.Irreflexive, "r"))
  in
  let pop = Population.add_objects "A" [ v "x"; v "y" ] Population.empty in
  bool "irreflexive ok" true
    (Eval.satisfies s (Population.add_tuple "r" (v "x", v "y") pop));
  bool "loop violates" false
    (Eval.satisfies s (Population.add_tuple "r" (v "x", v "x") pop))

let test_implicit_exclusion () =
  let s =
    Schema.empty "m" |> Schema.add_object_type "A" |> Schema.add_object_type "B"
  in
  let shared =
    Population.empty |> Population.add_object "A" (v "x") |> Population.add_object "B" (v "x")
  in
  bool "unrelated types may not overlap" false (Eval.satisfies s shared);
  bool "overlap allowed when disabled" true
    (Eval.satisfies
       ~config:{ Eval.default_config with implicit_type_exclusion = false }
       s shared);
  (* Under a common supertype the overlap is legal. *)
  let s' =
    Schema.empty "m"
    |> Schema.add_subtype ~sub:"A" ~super:"Top"
    |> Schema.add_subtype ~sub:"B" ~super:"Top"
  in
  let shared' = Population.add_objects "Top" [ v "x" ] shared in
  bool "related types may overlap" true
    (Eval.satisfies s'
       (Population.add_object "Top" (v "y") shared'))

let test_strict_subtyping () =
  let s = Schema.empty "m" |> Schema.add_subtype ~sub:"Sub" ~super:"Super" in
  let equal_pop =
    Population.empty
    |> Population.add_object "Super" (v "x")
    |> Population.add_object "Sub" (v "x")
  in
  bool "equal populations violate strictness" false (Eval.satisfies s equal_pop);
  bool "strictness can be disabled" true
    (Eval.satisfies ~config:{ Eval.default_config with strict_subtyping = false } s
       equal_pop);
  bool "proper subset fine" true
    (Eval.satisfies s (Population.add_object "Super" (v "y") equal_pop));
  bool "both empty fine" true (Eval.satisfies s Population.empty);
  bool "not a subset" false
    (Eval.satisfies s (Population.add_object "Sub" (v "z") equal_pop))

let test_check_strong () =
  let s = fact_schema [] in
  let full =
    base_pop
    |> Population.add_tuple "f" (v "a1", v "b1")
    |> Population.add_tuple "g" (v "a2", v "b2")
  in
  (match Eval.check_strong s full with
  | Ok () -> ()
  | Error why -> Alcotest.failf "expected a strong witness: %s" why);
  (match Eval.check_strong s base_pop with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "roles are unpopulated, should not be strong")

let test_population_basics () =
  let pop = Population.add_tuple "f" (v "a", v "b") Population.empty in
  int "idempotent tuples" 1
    (List.length (Population.tuples (Population.add_tuple "f" (v "a", v "b") pop) "f"));
  int "cardinality" 1 (Population.cardinality pop);
  bool "is_empty empty" true (Population.is_empty Population.empty);
  bool "is_empty nonempty" false (Population.is_empty pop);
  Alcotest.check (Alcotest.list Alcotest.string) "seq population pair"
    [ "'b'"; "'a'" ]
    (List.map Value.to_string
       (List.concat
          (Population.seq_population pop (Pair (Ids.second "f", Ids.first "f")))))

let suite =
  [
    Alcotest.test_case "tuple typing" `Quick test_typing;
    Alcotest.test_case "mandatory" `Quick test_mandatory;
    Alcotest.test_case "disjunctive mandatory" `Quick test_disjunctive_mandatory;
    Alcotest.test_case "uniqueness" `Quick test_uniqueness;
    Alcotest.test_case "frequency" `Quick test_frequency;
    Alcotest.test_case "value constraint" `Quick test_value_constraint;
    Alcotest.test_case "role exclusion" `Quick test_role_exclusion;
    Alcotest.test_case "subset and equality" `Quick test_subset_equality;
    Alcotest.test_case "type exclusion" `Quick test_type_exclusion;
    Alcotest.test_case "total subtypes" `Quick test_total_subtypes;
    Alcotest.test_case "ring constraints" `Quick test_ring_eval;
    Alcotest.test_case "implicit type exclusion" `Quick test_implicit_exclusion;
    Alcotest.test_case "strict subtyping" `Quick test_strict_subtyping;
    Alcotest.test_case "check_strong" `Quick test_check_strong;
    Alcotest.test_case "population basics" `Quick test_population_basics;
  ]
