(* Interactive sessions: the incremental report must always coincide with a
   from-scratch engine run, undo must restore the previous state exactly,
   and the affected-pattern computation must be what makes increments
   cheap. *)

open Orm
module Session = Orm_interactive.Session
module Edit = Orm_interactive.Edit
module Engine = Orm_patterns.Engine

let bool = Alcotest.check Alcotest.bool
let int = Alcotest.check Alcotest.int

let reports_equal (a : Engine.report) (b : Engine.report) =
  Ids.String_set.equal a.unsat_types b.unsat_types
  && Ids.Role_set.equal a.unsat_roles b.unsat_roles
  && List.length a.diagnostics = List.length b.diagnostics
  && List.length a.joint = List.length b.joint

let test_incremental_matches_full () =
  let edits =
    [
      Edit.Add_subtype ("Student", "Person");
      Edit.Add_subtype ("Employee", "Person");
      Edit.Add (Type_exclusion [ "Student"; "Employee" ]);
      Edit.Add_subtype ("PhD", "Student");
      Edit.Add_subtype ("PhD", "Employee");
      Edit.Add_fact (Fact_type.make "f" "Student" "Course");
      Edit.Add (Mandatory (Ids.first "f"));
      Edit.Add_fact (Fact_type.make "g" "Student" "Course");
      Edit.Add (Role_exclusion [ Single (Ids.first "f"); Single (Ids.first "g") ]);
      Edit.Remove_constraint "c1";
      Edit.Remove_fact "g";
      Edit.Remove_object_type "PhD";
    ]
  in
  let _final =
    List.fold_left
      (fun session edit ->
        let session = Session.apply edit session in
        let full = Engine.check (Session.schema session) in
        bool
          (Format.asprintf "after %a" Edit.pp edit)
          true
          (reports_equal (Session.report session) full);
        session)
      (Session.create (Schema.empty "inc"))
      edits
  in
  ()

(* Random edit scripts: incremental == full at every step. *)
let random_edit rng schema =
  let types = Schema.object_types schema in
  let facts = Schema.fact_types schema in
  let name prefix = Printf.sprintf "%s%d" prefix (Random.State.int rng 8) in
  let pick xs = List.nth xs (Random.State.int rng (List.length xs)) in
  match Random.State.int rng 9 with
  | 0 -> Edit.Add_object_type (name "T")
  | 1 -> Edit.Add_subtype (name "T", name "T")
  | 2 -> Edit.Add_fact (Fact_type.make (name "F") (name "T") (name "T"))
  | 3 when facts <> [] ->
      let (ft : Fact_type.t) = pick facts in
      Edit.Add (Mandatory (Ids.first ft.name))
  | 4 when facts <> [] ->
      let (ft : Fact_type.t) = pick facts in
      Edit.Add (Uniqueness (Single (Ids.first ft.name)))
  | 5 when facts <> [] ->
      let (ft : Fact_type.t) = pick facts in
      Edit.Add
        (Frequency (Single (Ids.second ft.name), Constraints.frequency ~max:4 2))
  | 6 when List.length facts >= 2 ->
      let (f1 : Fact_type.t) = pick facts and (f2 : Fact_type.t) = pick facts in
      if f1.name = f2.name then Edit.Add_object_type (name "T")
      else
        Edit.Add
          (Role_exclusion [ Single (Ids.first f1.name); Single (Ids.first f2.name) ])
  | 7 when Schema.constraints schema <> [] ->
      let (c : Constraints.t) = pick (Schema.constraints schema) in
      Edit.Remove_constraint c.id
  | 8 when types <> [] -> Edit.Remove_object_type (pick types)
  | _ -> Edit.Add_object_type (name "T")

let test_incremental_random =
  QCheck.Test.make ~count:40 ~name:"random edit scripts: incremental = full"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let rec loop session n =
        if n = 0 then true
        else
          let edit = random_edit rng (Session.schema session) in
          let session = Session.apply edit session in
          reports_equal (Session.report session) (Engine.check (Session.schema session))
          && loop session (n - 1)
      in
      loop (Session.create (Schema.empty "rand")) 15)

let test_undo () =
  let s0 = Session.create Figures.fig1 in
  let before = Orm_dsl.Printer.to_string (Session.schema s0) in
  let s1 = Session.apply (Edit.Add_object_type "Extra") s0 in
  let s2 = Session.apply (Edit.Add_subtype ("Extra2", "Extra")) s1 in
  int "history length" 2 (List.length (Session.history s2));
  match Session.undo s2 with
  | None -> Alcotest.fail "undo should succeed"
  | Some s1' -> (
      bool "undo restores schema" true
        (Orm_dsl.Printer.to_string (Session.schema s1')
        = Orm_dsl.Printer.to_string (Session.schema s1));
      match Session.undo s1' with
      | None -> Alcotest.fail "second undo should succeed"
      | Some s0' ->
          bool "double undo restores original" true
            (Orm_dsl.Printer.to_string (Session.schema s0') = before);
          bool "undo at bottom" true (Session.undo s0' = None))

let test_affected_patterns () =
  let schema = Figures.fig10 in
  let affected edit = Edit.affected_patterns schema edit in
  Alcotest.check (Alcotest.list Alcotest.int) "uniqueness -> 7" [ 7 ]
    (affected (Edit.Add (Uniqueness (Single (Ids.first "f1")))));
  Alcotest.check (Alcotest.list Alcotest.int) "frequency -> 4,5,7" [ 4; 5; 7 ]
    (affected (Edit.Add (Frequency (Single (Ids.first "f1"), Constraints.frequency 2))));
  Alcotest.check (Alcotest.list Alcotest.int) "subtype -> 1,2,3,4,5,9,10,11,12"
    [ 1; 2; 3; 4; 5; 9; 10; 11; 12 ]
    (affected (Edit.Add_subtype ("X", "Y")));
  Alcotest.check (Alcotest.list Alcotest.int) "new fact -> none" []
    (affected (Edit.Add_fact (Fact_type.make "fresh" "A" "B")));
  Alcotest.check (Alcotest.list Alcotest.int) "remove fact -> all"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ]
    (affected (Edit.Remove_fact "f1"));
  (* Removing a constraint consults the schema for its kind. *)
  let freq_id =
    List.find_map
      (fun (c : Constraints.t) ->
        match c.body with Frequency _ -> Some c.id | _ -> None)
      (Schema.constraints schema)
    |> Option.get
  in
  Alcotest.check (Alcotest.list Alcotest.int) "remove frequency -> 4,5,7" [ 4; 5; 7 ]
    (affected (Edit.Remove_constraint freq_id))

let test_last_rechecked () =
  let s = Session.create (Schema.empty "r") in
  let s = Session.apply (Edit.Add_fact (Fact_type.make "f" "A" "B")) s in
  Alcotest.check (Alcotest.list Alcotest.int) "fact add re-ran nothing" []
    (Session.last_rechecked s);
  let s = Session.apply (Edit.Add (Uniqueness (Single (Ids.first "f")))) s in
  Alcotest.check (Alcotest.list Alcotest.int) "uniqueness re-ran 7" [ 7 ]
    (Session.last_rechecked s)

let test_disabled_patterns_stay_disabled () =
  let settings = Orm_patterns.Settings.disable 9 Orm_patterns.Settings.default in
  let s = Session.create ~settings (Schema.empty "d") in
  let s = Session.apply (Edit.Add_subtype ("A", "B")) s in
  let s = Session.apply (Edit.Add_subtype ("B", "A")) s in
  bool "loop not reported with pattern 9 off" true (Session.is_clean s)

let suite =
  [
    Alcotest.test_case "scripted incremental = full" `Quick test_incremental_matches_full;
    QCheck_alcotest.to_alcotest test_incremental_random;
    Alcotest.test_case "undo" `Quick test_undo;
    Alcotest.test_case "affected patterns" `Quick test_affected_patterns;
    Alcotest.test_case "last_rechecked" `Quick test_last_rechecked;
    Alcotest.test_case "settings respected" `Quick test_disabled_patterns_stay_disabled;
  ]
