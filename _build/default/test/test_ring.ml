(* Ring constraints: the witness theorem behind Table 1 is cross-validated
   against brute-force enumeration of every relation over domains of size
   up to 3, and the Fig. 12 implications are checked semantically. *)

open Orm

let check = Alcotest.check
let bool = Alcotest.check Alcotest.bool

(* All relations over {0..n-1}: subsets of the n*n pairs. *)
let all_relations n =
  let cells =
    List.concat_map (fun a -> List.init n (fun b -> (a, b))) (List.init n Fun.id)
  in
  List.fold_left
    (fun acc cell -> acc @ List.map (fun rel -> cell :: rel) acc)
    [ [] ] cells

let relations3 = lazy (all_relations 3)

let brute_compatible ks =
  List.exists
    (fun rel -> rel <> [] && Ring.satisfies_all ks rel)
    (Lazy.force relations3)

let test_witness_theorem () =
  List.iter
    (fun (ks, verdict) ->
      bool
        (Format.asprintf "combination %a" Ring.pp_set ks)
        (brute_compatible ks) verdict)
    Ring.table1

let test_paper_examples () =
  let combo abbrevs =
    Ring.Kind_set.of_list (List.filter_map Ring.of_abbrev abbrevs)
  in
  (* Section 2's worked examples of incompatible combinations. *)
  bool "(sym,it,ans)" false (Ring.compatible (combo [ "sym"; "it"; "ans" ]));
  bool "(sym,it,ac)" false (Ring.compatible (combo [ "sym"; "it"; "ac" ]));
  bool "(ans,it,ir,sym)" false (Ring.compatible (combo [ "ans"; "it"; "ir"; "sym" ]));
  bool "acyclic+symmetric" false (Ring.compatible (combo [ "ac"; "sym" ]));
  (* And compatible ones. *)
  bool "(sym,it)" true (Ring.compatible (combo [ "sym"; "it" ]));
  bool "(ans,sym)" true (Ring.compatible (combo [ "ans"; "sym" ]));
  bool "(ir)" true (Ring.compatible (combo [ "ir" ]))

(* Fig. 12's Euler-diagram structure, semantically. *)
let test_implications () =
  let implies a b = Ring.implies a b in
  bool "ac => as" true (implies Acyclic Asymmetric);
  bool "ac => ir" true (implies Acyclic Irreflexive);
  bool "ac => ans" true (implies Acyclic Antisymmetric);
  bool "as => ir" true (implies Asymmetric Irreflexive);
  bool "as => ans" true (implies Asymmetric Antisymmetric);
  bool "it => ir" true (implies Intransitive Irreflexive);
  bool "as !=> ac" false (implies Asymmetric Acyclic);
  bool "ir !=> it" false (implies Irreflexive Intransitive);
  bool "ans !=> ir" false (implies Antisymmetric Irreflexive);
  bool "sym !=> ans" false (implies Symmetric Antisymmetric);
  bool "ir !=> as" false (implies Irreflexive Asymmetric)

(* Brute-force validation of [implies] itself over domain 3. *)
let test_implications_brute () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let brute =
            List.for_all
              (fun rel -> (not (Ring.holds a rel)) || Ring.holds b rel)
              (Lazy.force relations3)
          in
          bool
            (Printf.sprintf "%s => %s" (Ring.to_string a) (Ring.to_string b))
            brute (Ring.implies a b))
        Ring.all)
    Ring.all

let test_holds_units () =
  let two_cycle = [ (0, 1); (1, 0) ] in
  let chain = [ (0, 1); (1, 2); (0, 2) ] in
  bool "2-cycle symmetric" true (Ring.holds Symmetric two_cycle);
  bool "2-cycle not asymmetric" false (Ring.holds Asymmetric two_cycle);
  bool "2-cycle not acyclic" false (Ring.holds Acyclic two_cycle);
  bool "2-cycle intransitive" true (Ring.holds Intransitive two_cycle);
  bool "chain acyclic" true (Ring.holds Acyclic chain);
  bool "chain not intransitive" false (Ring.holds Intransitive chain);
  bool "loop not irreflexive" false (Ring.holds Irreflexive [ (2, 2) ]);
  bool "loop antisymmetric" true (Ring.holds Antisymmetric [ (2, 2) ]);
  bool "loop not acyclic" false (Ring.holds Acyclic [ (2, 2) ]);
  bool "empty satisfies everything" true
    (Ring.satisfies_all (Ring.Kind_set.of_list Ring.all) [])

let test_table_shape () =
  check Alcotest.int "64 combinations" 64 (List.length Ring.table1);
  (* 36 non-empty compatible combinations plus the vacuous empty one. *)
  check Alcotest.int "37 compatible" 37 (List.length Ring.compatible_combinations);
  (* Compatibility is antitone: adding a constraint never repairs an
     incompatible combination. *)
  List.iter
    (fun (ks, ok) ->
      if not ok then
        List.iter
          (fun k ->
            bool "superset stays incompatible" false
              (Ring.compatible (Ring.Kind_set.add k ks)))
          Ring.all)
    Ring.table1

let test_abbrev_roundtrip () =
  List.iter
    (fun k ->
      check
        (Alcotest.option Alcotest.string)
        (Ring.to_string k) (Some (Ring.to_string k))
        (Option.map Ring.to_string (Ring.of_abbrev (Ring.abbrev k))))
    Ring.all;
  check (Alcotest.option Alcotest.string) "unknown abbrev" None
    (Option.map Ring.to_string (Ring.of_abbrev "xyz"))

let suite =
  [
    Alcotest.test_case "witness theorem vs brute force (table 1)" `Slow
      test_witness_theorem;
    Alcotest.test_case "paper's example combinations" `Quick test_paper_examples;
    Alcotest.test_case "fig. 12 implications" `Quick test_implications;
    Alcotest.test_case "implications vs brute force" `Slow test_implications_brute;
    Alcotest.test_case "holds on concrete relations" `Quick test_holds_units;
    Alcotest.test_case "table shape and antitonicity" `Quick test_table_shape;
    Alcotest.test_case "abbreviation round trip" `Quick test_abbrev_roundtrip;
  ]
