(* Generator properties: clean schemas are well-formed and pattern-silent;
   every injected fault is caught by its pattern with the expected verdict;
   and — the key soundness property — everything the engine flags on a
   faulted schema is refuted by the complete bounded model finder. *)

open Orm
module Engine = Orm_patterns.Engine
module Gen = Orm_generator.Gen
module Faults = Orm_generator.Faults

let test_clean_wellformed =
  QCheck.Test.make ~count:80 ~name:"clean schemas are well-formed"
    QCheck.(int_range 0 100_000)
    (fun seed -> Schema.validate (Gen.clean ~seed ()) = [])

let test_clean_silent =
  QCheck.Test.make ~count:80 ~name:"clean schemas fire no pattern"
    QCheck.(int_range 0 100_000)
    (fun seed -> (Engine.check (Gen.clean ~seed ())).diagnostics = [])

let test_deterministic () =
  let a = Gen.clean ~seed:123 () and b = Gen.clean ~seed:123 () in
  Alcotest.check Alcotest.string "same seed, same schema"
    (Orm_dsl.Printer.to_string a) (Orm_dsl.Printer.to_string b);
  let c = Gen.clean ~seed:124 () in
  Alcotest.check Alcotest.bool "different seed, different schema" false
    (Orm_dsl.Printer.to_string a = Orm_dsl.Printer.to_string c)

let test_sized () =
  let small = Gen.clean ~config:(Gen.sized 3) ~seed:5 () in
  let large = Gen.clean ~config:(Gen.sized 30) ~seed:5 () in
  Alcotest.check Alcotest.bool "sized grows" true
    (List.length (Schema.object_types large) > List.length (Schema.object_types small))

let test_faults_caught =
  QCheck.Test.make ~count:90 ~name:"every injected fault is caught by its pattern"
    QCheck.(pair (int_range 0 10_000) (int_range 1 9))
    (fun (seed, p) ->
      let base = Gen.clean ~seed () in
      let inj = Faults.inject ~seed p base in
      let report = Engine.check inj.schema in
      let fired =
        List.filter_map Orm_patterns.Diagnostic.pattern_number report.diagnostics
      in
      List.mem inj.pattern fired
      && List.for_all
           (fun t -> Ids.String_set.mem t report.unsat_types)
           inj.expect_types
      && List.for_all
           (fun r -> Ids.Role_set.mem r report.unsat_roles)
           inj.expect_roles
      && List.for_all
           (fun group ->
             let want = Ids.Role_set.of_list group in
             List.exists (fun g -> Ids.Role_set.subset want g) report.joint)
           inj.expect_joint)

(* Soundness vs the ground truth, on small schemas so the finder stays
   fast: every element the engine condemns must have no model. *)
let test_soundness_vs_finder =
  QCheck.Test.make ~count:12 ~name:"engine verdicts refuted by the model finder"
    QCheck.(pair (int_range 0 500) (int_range 1 9))
    (fun (seed, p) ->
      let base = Gen.clean ~config:(Gen.sized 3) ~seed () in
      let inj = Faults.inject ~seed p base in
      let report = Engine.check inj.schema in
      let type_ok t =
        match Orm_reasoner.Finder.solve ~budget:400_000 inj.schema (Type_satisfiable t) with
        | Model _ -> false
        | No_model | Budget_exceeded -> true
      in
      let role_ok r =
        match Orm_reasoner.Finder.solve ~budget:400_000 inj.schema (Role_satisfiable r) with
        | Model _ -> false
        | No_model | Budget_exceeded -> true
      in
      Ids.String_set.for_all type_ok report.unsat_types
      && Ids.Role_set.for_all role_ok report.unsat_roles)

let test_fault_numbers () =
  Alcotest.check_raises "pattern 0"
    (Invalid_argument "Faults.inject: no pattern 0") (fun () ->
      ignore (Faults.inject ~seed:1 0 (Schema.empty "x")));
  Alcotest.check (Alcotest.list Alcotest.int) "all patterns" [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    Faults.all_patterns

let suite =
  [
    QCheck_alcotest.to_alcotest test_clean_wellformed;
    QCheck_alcotest.to_alcotest test_clean_silent;
    Alcotest.test_case "determinism" `Quick test_deterministic;
    Alcotest.test_case "sized configs" `Quick test_sized;
    QCheck_alcotest.to_alcotest test_faults_caught;
    QCheck_alcotest.to_alcotest ~long:true test_soundness_vs_finder;
    Alcotest.test_case "fault numbering" `Quick test_fault_numbers;
  ]
