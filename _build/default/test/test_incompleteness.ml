(* The paper is explicit that the nine patterns are incomplete: "one could
   demand that for irreflexive roles at least 2 different values need to be
   present" (Section 5).  This suite exhibits exactly that schema — every
   pattern passes, yet the complete bounded model finder refutes the role —
   keeping the incompleteness claim honest and executable. *)

open Orm
module Engine = Orm_patterns.Engine

let bool = Alcotest.check Alcotest.bool

(* An irreflexive homogeneous fact over a one-value type: populating the
   role needs two distinct values of A, but only one exists. *)
let sneaky =
  Schema.empty "sneaky"
  |> Schema.add_fact (Fact_type.make "r" "A" "A")
  |> Schema.add (Ring (Ring.Irreflexive, "r"))
  |> Schema.add (Value_constraint ("A", Value.Constraint.of_strings [ "only" ]))

let test_patterns_silent () =
  Alcotest.check Alcotest.int "no diagnostics" 0
    (List.length (Engine.check sneaky).diagnostics)

let test_but_role_unsat () =
  match Orm_reasoner.Finder.solve sneaky (Role_satisfiable (Ids.first "r")) with
  | No_model -> ()
  | Model pop ->
      Alcotest.failf "r should be unpopulatable, got:@.%a" Orm_semantics.Population.pp
        pop
  | Budget_exceeded -> Alcotest.fail "budget exceeded on a tiny schema"

let test_type_still_satisfiable () =
  (* Only the role is dead; A itself is fine — so this is a gap in role
     (strong) satisfiability detection specifically. *)
  match Orm_reasoner.Finder.solve sneaky (Type_satisfiable "A") with
  | Model _ -> ()
  | No_model | Budget_exceeded -> Alcotest.fail "A itself should be satisfiable"

(* A second gap: asymmetric needs two values too. *)
let sneaky_asymmetric =
  Schema.empty "sneaky2"
  |> Schema.add_fact (Fact_type.make "r" "A" "A")
  |> Schema.add (Ring (Ring.Asymmetric, "r"))
  |> Schema.add (Value_constraint ("A", Value.Constraint.of_strings [ "only" ]))

let test_asymmetric_gap () =
  Alcotest.check Alcotest.int "patterns silent" 0
    (List.length (Engine.check sneaky_asymmetric).diagnostics);
  match Orm_reasoner.Finder.solve sneaky_asymmetric (Role_satisfiable (Ids.first "r")) with
  | No_model -> ()
  | Model _ -> Alcotest.fail "asymmetric over one value should be unpopulatable"
  | Budget_exceeded -> Alcotest.fail "budget exceeded"

(* A third gap, across constraints: two mandatory roles of A into co-players
   with disjoint one-value sets is fine, but a frequency minimum equal to
   the number of *tuples* cannot be diagnosed by cardinality arguments the
   patterns make.  Document the nearest case that IS caught, as a contrast. *)
let contrast_caught =
  Schema.empty "contrast"
  |> Schema.add_fact (Fact_type.make "r" "A" "B")
  |> Schema.add (Value_constraint ("B", Value.Constraint.of_strings [ "b1" ]))
  |> Schema.add (Frequency (Single (Ids.first "r"), Constraints.frequency ~max:2 2))

let test_contrast_is_caught () =
  bool "pattern 4 catches the two-partner demand" true
    (List.exists
       (fun d -> Orm_patterns.Diagnostic.pattern_number d = Some 4)
       (Engine.check contrast_caught).diagnostics)

let suite =
  [
    Alcotest.test_case "irreflexive gap: patterns silent" `Quick test_patterns_silent;
    Alcotest.test_case "irreflexive gap: finder refutes the role" `Quick
      test_but_role_unsat;
    Alcotest.test_case "irreflexive gap: concept still satisfiable" `Quick
      test_type_still_satisfiable;
    Alcotest.test_case "asymmetric gap" `Quick test_asymmetric_gap;
    Alcotest.test_case "contrast: cardinality case is caught" `Quick
      test_contrast_is_caught;
  ]
