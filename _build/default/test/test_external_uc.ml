(* External uniqueness constraints: validation, semantics, the DSL, and
   agreement between the two bounded reasoners. *)

open Orm
open Orm_semantics

let bool = Alcotest.check Alcotest.bool
let v = Value.str

(* Person identified by (first name, birth date): two facts joined on
   Person, externally unique over the far roles. *)
let schema =
  Schema.empty "ext"
  |> Schema.add_fact (Fact_type.make ~reading:"has first name" "named" "Person" "Name")
  |> Schema.add_fact (Fact_type.make ~reading:"was born on" "born" "Person" "Date")
  |> Schema.add_constraint
       (Constraints.make "euc"
          (External_uniqueness [ Ids.second "named"; Ids.second "born" ]))

let base_pop =
  Population.empty
  |> Population.add_objects "Person" [ v "p1"; v "p2" ]
  |> Population.add_objects "Name" [ v "ada"; v "bob" ]
  |> Population.add_objects "Date" [ v "d1" ]

let test_validation () =
  Alcotest.check Alcotest.int "well-formed" 0 (List.length (Schema.validate schema));
  let bad_single =
    Schema.empty "bad"
    |> Schema.add_fact (Fact_type.make "f" "A" "B")
    |> Schema.add (External_uniqueness [ Ids.second "f" ])
  in
  bool "single role rejected" true
    (List.exists
       (function Schema.External_uniqueness_misaligned _ -> true | _ -> false)
       (Schema.validate bad_single));
  let bad_join =
    Schema.empty "bad2"
    |> Schema.add_fact (Fact_type.make "f" "A" "B")
    |> Schema.add_fact (Fact_type.make "g" "C" "D")
    |> Schema.add (External_uniqueness [ Ids.second "f"; Ids.second "g" ])
  in
  bool "mismatched join type rejected" true
    (List.exists
       (function Schema.External_uniqueness_misaligned _ -> true | _ -> false)
       (Schema.validate bad_join))

let test_semantics () =
  (* Distinct combinations: fine. *)
  let ok =
    base_pop
    |> Population.add_tuple "named" (v "p1", v "ada")
    |> Population.add_tuple "named" (v "p2", v "bob")
    |> Population.add_tuple "born" (v "p1", v "d1")
    |> Population.add_tuple "born" (v "p2", v "d1")
  in
  bool "distinct combinations satisfy" true (Eval.satisfies schema ok);
  (* Two people with the same name and date: violation. *)
  let clash =
    base_pop
    |> Population.add_tuple "named" (v "p1", v "ada")
    |> Population.add_tuple "named" (v "p2", v "ada")
    |> Population.add_tuple "born" (v "p1", v "d1")
    |> Population.add_tuple "born" (v "p2", v "d1")
  in
  bool "shared combination violates" false (Eval.satisfies schema clash);
  (* A person missing one component contributes no combination. *)
  let partial =
    base_pop
    |> Population.add_tuple "named" (v "p1", v "ada")
    |> Population.add_tuple "named" (v "p2", v "ada")
    |> Population.add_tuple "born" (v "p1", v "d1")
  in
  bool "partial join is unconstrained" true (Eval.satisfies schema partial)

let test_dsl_roundtrip () =
  let src =
    {|schema ext
      fact named (Person, Name)
      fact born (Person, Date)
      [euc] external_unique named.2, born.2
    |}
  in
  let parsed = Orm_dsl.Parser.parse_exn src in
  Alcotest.check Alcotest.int "well-formed" 0 (List.length (Schema.validate parsed));
  bool "round trips" true
    (Orm_dsl.Printer.to_string parsed
    = Orm_dsl.Printer.to_string
        (Orm_dsl.Parser.parse_exn (Orm_dsl.Printer.to_string parsed)))

(* A schema where external uniqueness forces unsatisfiability: only one
   (name, date) combination exists, yet two mandatory-named persons are
   required via value constraints. *)
let pigeonhole =
  schema
  |> Schema.add (Value_constraint ("Name", Value.Constraint.of_strings [ "ada" ]))
  |> Schema.add (Value_constraint ("Date", Value.Constraint.of_strings [ "d1" ]))
  |> Schema.add (Value_constraint ("Person", Value.Constraint.of_strings [ "p1"; "p2" ]))
  |> Schema.add (Mandatory (Ids.first "named"))
  |> Schema.add (Mandatory (Ids.first "born"))
  |> Schema.add (Frequency (Single (Ids.second "named"), Constraints.frequency 2))

let test_reasoners_agree () =
  (* Both bounded procedures must refute populating named.2 twice: the
     frequency demands two persons named 'ada', both born (mandatory) on
     the only date — an identifying-combination clash. *)
  let finder = Orm_reasoner.Finder.solve ~budget:500_000 pigeonhole
      (Role_satisfiable (Ids.first "named"))
  in
  let sat =
    Orm_sat.Encode.solve ~budget:500_000 pigeonhole
      (Role_satisfiable (Ids.first "named"))
  in
  (match (finder, sat) with
  | No_model, Orm_sat.Encode.No_model -> ()
  | Model _, _ | _, Orm_sat.Encode.Model _ ->
      Alcotest.fail "the identifying combination cannot cover two persons"
  | Budget_exceeded, _ | _, Orm_sat.Encode.Timeout ->
      Alcotest.fail "budget exceeded on a tiny schema");
  (* Dropping the external uniqueness restores satisfiability. *)
  let relaxed = Schema.remove_constraint "euc" pigeonhole in
  match Orm_sat.Encode.solve ~budget:500_000 relaxed (Role_satisfiable (Ids.first "named")) with
  | Orm_sat.Encode.Model _ -> ()
  | Orm_sat.Encode.No_model | Orm_sat.Encode.Timeout ->
      Alcotest.fail "without the external uniqueness this is satisfiable"

let test_verbalization () =
  let sentence =
    Orm_verbalize.Verbalize.constraint_ schema
      (Option.get (Schema.find_constraint schema "euc"))
  in
  bool "verbalized" true
    (Str_split_contains.contains sentence
       "The combination of Name and Date identifies at most one Person.")

let suite =
  [
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "join semantics" `Quick test_semantics;
    Alcotest.test_case "dsl round trip" `Quick test_dsl_roundtrip;
    Alcotest.test_case "bounded reasoners agree" `Quick test_reasoners_agree;
    Alcotest.test_case "verbalization" `Quick test_verbalization;
  ]
