(* Quickstart: build the paper's Fig. 1 schema with the public API, run the
   pattern engine, inspect the diagnostics, cross-check with the complete
   bounded model finder and the DLR route, and read the schema back in
   pseudo-natural language.

   Run with:  dune exec examples/quickstart.exe *)

open Orm
module Engine = Orm_patterns.Engine
module Finder = Orm_reasoner.Finder

let () =
  (* A PhD student is both a Student and an Employee, but Students and
     Employees are declared mutually exclusive: PhDStudent can never be
     populated, even though the schema as a whole is satisfiable. *)
  let schema =
    Schema.empty "university"
    |> Schema.add_subtype ~sub:"Student" ~super:"Person"
    |> Schema.add_subtype ~sub:"Employee" ~super:"Person"
    |> Schema.add_subtype ~sub:"PhDStudent" ~super:"Student"
    |> Schema.add_subtype ~sub:"PhDStudent" ~super:"Employee"
    |> Schema.add (Type_exclusion [ "Student"; "Employee" ])
  in

  (* Well-formedness is separate from satisfiability; always check it. *)
  assert (Schema.validate schema = []);

  print_endline "--- the schema, verbalized ---";
  List.iter print_endline (Orm_verbalize.Verbalize.schema schema);

  print_endline "\n--- pattern engine ---";
  let report = Engine.check schema in
  Format.printf "%a@." Engine.pp_report report;

  print_endline "\n--- cross-check with the complete bounded model finder ---";
  (match Finder.solve schema (Type_satisfiable "PhDStudent") with
  | No_model -> print_endline "finder agrees: no population can contain a PhDStudent"
  | Model _ -> print_endline "finder disagrees (this would be an engine bug!)"
  | Budget_exceeded -> print_endline "finder ran out of budget");
  (match Finder.solve schema Schema_satisfiable with
  | Model _ -> print_endline "yet the schema is weakly satisfiable (the paper's point)"
  | No_model | Budget_exceeded -> print_endline "unexpected: no global model");

  print_endline "\n--- the DLR description-logic route ---";
  let dl = Orm_dlr.Dlr_check.check schema in
  Format.printf "DL reasoner finds unsatisfiable types: %s@."
    (String.concat ", " (Orm_dlr.Dlr_check.unsat_types dl))
