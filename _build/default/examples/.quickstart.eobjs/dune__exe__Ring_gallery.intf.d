examples/ring_gallery.mli:
