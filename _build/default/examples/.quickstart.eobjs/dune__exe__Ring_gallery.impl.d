examples/ring_gallery.ml: Fact_type Format Ids List Orm Orm_patterns Printf Ring Schema String
