examples/quickstart.ml: Format List Orm Orm_dlr Orm_patterns Orm_reasoner Orm_verbalize Schema String
