examples/university.ml: Constraints Fact_type Format Ids List Option Orm Orm_dsl Orm_interactive Orm_patterns Orm_verbalize Schema String Value
