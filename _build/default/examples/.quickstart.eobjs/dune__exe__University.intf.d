examples/university.mli:
