examples/quickstart.mli:
