examples/complaint_ontology.mli:
