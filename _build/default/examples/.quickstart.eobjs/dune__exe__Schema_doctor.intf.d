examples/schema_doctor.mli:
