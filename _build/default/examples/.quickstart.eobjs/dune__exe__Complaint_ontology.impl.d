examples/complaint_ontology.ml: Constraints Fact_type Format Ids List Orm Orm_patterns Orm_reasoner Orm_verbalize Printf Ring Schema String Value
