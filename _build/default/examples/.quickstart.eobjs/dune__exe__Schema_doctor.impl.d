examples/schema_doctor.ml: Constraints Fact_type Format Ids List Orm Orm_dlr Orm_export Orm_lint Orm_patterns Orm_repair Ring Schema String
