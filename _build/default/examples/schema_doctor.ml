(* "Schema doctor": the full triage pipeline on one faulty schema -
   style lint (Halpin's formation rules / RIDL-A), unsatisfiability
   patterns with the Section-5 extension patterns enabled, ranked repair
   suggestions, greedy repair, DL classification of the repaired schema,
   and DOT/JSON export for external tooling.

   Run with:  dune exec examples/schema_doctor.exe *)

open Orm

let section title = Format.printf "@.=== %s ===@." title

(* A project-tracking schema with a bit of everything wrong:
   - a subtype loop typo (Task < Subtask < Task),
   - an acyclic dependency relation declared mandatory (extension pattern 12),
   - a priority role with contradictory uniqueness + frequency,
   - style noise: FC(1-1), a redundant subset, an orphan type. *)
let schema =
  Schema.empty "tracker"
  |> Schema.add_subtype ~sub:"Subtask" ~super:"Task"
  |> Schema.add_subtype ~sub:"Task" ~super:"Subtask" (* typo: loop *)
  |> Schema.add_subtype ~sub:"Milestone" ~super:"Deliverable"
  |> Schema.add_object_type "Orphan"
  |> Schema.add_fact (Fact_type.make ~reading:"depends on" "depends_on" "Deliverable" "Deliverable")
  |> Schema.add_fact (Fact_type.make ~reading:"has priority" "has_priority" "Deliverable" "Priority")
  |> Schema.add_fact (Fact_type.make ~reading:"is owned by" "owned_by" "Deliverable" "Team")
  |> Schema.add_fact (Fact_type.make ~reading:"is reviewed by" "reviewed_by" "Deliverable" "Team")
  |> Schema.add (Ring (Ring.Acyclic, "depends_on"))
  |> Schema.add (Mandatory (Ids.first "depends_on")) (* ext. pattern 12 *)
  |> Schema.add (Uniqueness (Single (Ids.first "has_priority")))
  |> Schema.add
       (Frequency (Single (Ids.first "has_priority"), Constraints.frequency ~max:3 2))
  |> Schema.add (Frequency (Single (Ids.first "owned_by"), Constraints.frequency ~max:1 1))
  |> Schema.add (Subset (Ids.whole_predicate "reviewed_by", Ids.whole_predicate "owned_by"))
  |> Schema.add (Subset (Ids.whole_predicate "reviewed_by", Ids.whole_predicate "owned_by"))

let () =
  assert (Schema.validate schema = []);

  section "style lint (formation rules / RIDL-A)";
  List.iter
    (fun f -> Format.printf "%a@." Orm_lint.Lint.pp_finding f)
    (Orm_lint.Lint.check schema);

  section "unsatisfiability patterns (with extensions)";
  let settings = Orm_patterns.Settings.(with_extensions default) in
  let report = Orm_patterns.Engine.check ~settings schema in
  List.iter
    (fun (d : Orm_patterns.Diagnostic.t) -> Format.printf "- %s@." d.message)
    report.diagnostics;

  section "ranked repair suggestions";
  List.iter
    (fun (s : Orm_repair.Repair.suggestion) ->
      Format.printf "%a  (fixes %d, leaves %d)@." Orm_repair.Repair.pp_action s.action
        s.fixes s.remaining)
    (Orm_repair.Repair.suggestions ~settings schema);

  section "greedy repair";
  let repaired, actions = Orm_repair.Repair.repair ~settings schema in
  List.iter (fun a -> Format.printf "applied: %a@." Orm_repair.Repair.pp_action a) actions;
  Format.printf "diagnostics after repair: %d@."
    (List.length (Orm_patterns.Engine.check ~settings repaired).diagnostics);

  section "derived subsumption hierarchy of the repaired schema";
  (match Orm_dlr.Classify.classify repaired with
  | [] -> Format.printf "(no links derivable)@."
  | links ->
      List.iter
        (fun (l : Orm_dlr.Classify.link) ->
          Format.printf "%s <= %s%s@." l.sub l.super
            (if l.declared then "" else "  (implied)"))
        links);

  section "exports";
  let dot = Orm_export.Dot.to_string ~report schema in
  Format.printf "DOT: %d lines (pipe `ormcheck dot` into graphviz)@."
    (List.length (String.split_on_char '\n' dot));
  let json = Orm_export.Json.of_report report in
  Format.printf "JSON report: %d bytes@." (String.length json)
