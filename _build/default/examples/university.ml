(* Interactive modeling walkthrough: a university registrar's schema is
   built step by step in an Orm_interactive.Session, the way DogmaModeler
   users work (paper Section 4).  Three classic mistakes are made on the
   way; the incremental validator reports each one immediately, and the
   modeler repairs it before moving on.

   Run with:  dune exec examples/university.exe *)

open Orm
module Session = Orm_interactive.Session
module Edit = Orm_interactive.Edit

let narrate session msg =
  Format.printf "@.== %s@." msg;
  let report = Session.report session in
  if report.diagnostics = [] then
    Format.printf "   validator: clean (re-ran patterns %s)@."
      (String.concat "," (List.map string_of_int (Session.last_rechecked session)))
  else begin
    Format.printf "   validator caught a problem (re-ran patterns %s):@."
      (String.concat "," (List.map string_of_int (Session.last_rechecked session)));
    List.iter
      (fun (d : Orm_patterns.Diagnostic.t) -> Format.printf "   %s@." d.message)
      report.diagnostics
  end;
  session

let step session edit = narrate (Session.apply edit session) "edit applied"

let () =
  let s = Session.create (Schema.empty "registrar") in

  (* Build the type hierarchy. *)
  let s = step s (Edit.Add_subtype ("Student", "Person")) in
  let s = step s (Edit.Add_subtype ("Lecturer", "Person")) in
  let s = step s (Edit.Add_subtype ("Course", "Offering")) in

  (* Facts: enrolment and teaching. *)
  let s = step s (Edit.Add_fact (Fact_type.make ~reading:"enrols in" "enrols" "Student" "Course")) in
  let s = step s (Edit.Add_fact (Fact_type.make ~reading:"teaches" "teaches" "Lecturer" "Course")) in
  let s = step s (Edit.Add (Mandatory (Ids.first "enrols"))) in
  let s = step s (Edit.Add (Uniqueness (Single (Ids.first "teaches")))) in

  (* Mistake 1: "students and lecturers are different people" plus a
     teaching-assistant type below both. *)
  let s = step s (Edit.Add (Type_exclusion [ "Student"; "Lecturer" ])) in
  let s =
    narrate
      (Session.apply (Edit.Add_subtype ("TeachingAssistant", "Student")) s
      |> Session.apply (Edit.Add_subtype ("TeachingAssistant", "Lecturer")))
      "mistake 1: TeachingAssistant below two exclusive types (pattern 2)"
  in
  (* Repair: drop the exclusion (TAs are legitimately both). *)
  let exclusion_id =
    List.find_map
      (fun (c : Constraints.t) ->
        match c.body with Type_exclusion _ -> Some c.id | _ -> None)
      (Schema.constraints (Session.schema s))
    |> Option.get
  in
  let s = narrate (Session.apply (Edit.Remove_constraint exclusion_id) s) "repair 1: exclusion dropped" in

  (* Mistake 2: "each lecturer teaches at least two courses" on a role that
     already says "at most one" (pattern 7). *)
  let s =
    narrate
      (Session.apply
         (Edit.Add (Frequency (Single (Ids.first "teaches"), Constraints.frequency ~max:4 2)))
         s)
      "mistake 2: FC(2-4) against a uniqueness constraint (pattern 7)"
  in
  let freq_id =
    List.find_map
      (fun (c : Constraints.t) ->
        match c.body with Frequency _ -> Some c.id | _ -> None)
      (Schema.constraints (Session.schema s))
    |> Option.get
  in
  let s = narrate (Session.apply (Edit.Remove_constraint freq_id) s) "repair 2: frequency dropped" in

  (* Mistake 3: grading levels constrained to two values while demanding
     three distinct grades per transcript row (pattern 4). *)
  let s = step s (Edit.Add_fact (Fact_type.make ~reading:"awards grade" "awards" "Course" "Grade")) in
  let s = step s (Edit.Add (Value_constraint ("Grade", Value.Constraint.of_strings [ "pass"; "fail" ]))) in
  let s =
    narrate
      (Session.apply
         (Edit.Add (Frequency (Single (Ids.first "awards"), Constraints.frequency ~max:5 3)))
         s)
      "mistake 3: 3 distinct grades demanded, 2 possible (pattern 4)"
  in
  let s = narrate (Option.get (Session.undo s)) "repair 3: undo the last edit" in

  Format.printf "@.Final schema (%d edits, clean=%b):@.%s@."
    (List.length (Session.history s))
    (Session.is_clean s)
    (Orm_dsl.Printer.to_string (Session.schema s));
  Format.printf "Verbalization for the domain expert:@.";
  List.iter print_endline (Orm_verbalize.Verbalize.schema (Session.schema s))
