(* A customer-complaint ontology in the spirit of the CCFORM case study the
   paper reports on (Section 4): a mid-size legal-domain schema built by
   many hands, with the kinds of contradictions the lawyers actually
   introduced.  The example builds the ontology, lets the pattern engine
   triage it, groups the findings per pattern, and shows how a modeler
   would use the diagnostics (culprit constraint identifiers) to repair the
   schema until it is clean.

   Run with:  dune exec examples/complaint_ontology.exe *)

open Orm
module Engine = Orm_patterns.Engine

let ( |- ) s body = Schema.add body s

let base_ontology =
  Schema.empty "ccform"
  (* Agents. *)
  |> Schema.add_subtype ~sub:"NaturalPerson" ~super:"Agent"
  |> Schema.add_subtype ~sub:"LegalPerson" ~super:"Agent"
  |> Schema.add_subtype ~sub:"Complainant" ~super:"Agent"
  |> Schema.add_subtype ~sub:"ComplaintRecipient" ~super:"Agent"
  |> Schema.add_subtype ~sub:"Customer" ~super:"Complainant"
  |> Schema.add_subtype ~sub:"Vendor" ~super:"ComplaintRecipient"
  |> Schema.add_subtype ~sub:"Authority" ~super:"ComplaintRecipient"
  (* Complaints and their anatomy. *)
  |> Schema.add_subtype ~sub:"PrivacyComplaint" ~super:"Complaint"
  |> Schema.add_subtype ~sub:"ContractComplaint" ~super:"Complaint"
  |> Schema.add_subtype ~sub:"DeliveryComplaint" ~super:"ContractComplaint"
  |> Schema.add_subtype ~sub:"PaymentComplaint" ~super:"ContractComplaint"
  |> Schema.add_subtype ~sub:"Resolution" ~super:"Outcome"
  |> Schema.add_subtype ~sub:"Rejection" ~super:"Outcome"
  |> Schema.add_subtype ~sub:"Settlement" ~super:"Resolution"
  (* Evidence and contracts. *)
  |> Schema.add_subtype ~sub:"Invoice" ~super:"Document"
  |> Schema.add_subtype ~sub:"Receipt" ~super:"Document"
  |> Schema.add_subtype ~sub:"Contract" ~super:"Document"
  (* Facts. *)
  |> Schema.add_fact (Fact_type.make ~reading:"files" "files" "Complainant" "Complaint")
  |> Schema.add_fact
       (Fact_type.make ~reading:"is addressed to" "addressed_to" "Complaint"
          "ComplaintRecipient")
  |> Schema.add_fact
       (Fact_type.make ~reading:"is supported by" "supported_by" "Complaint" "Document")
  |> Schema.add_fact
       (Fact_type.make ~reading:"results in" "results_in" "Complaint" "Outcome")
  |> Schema.add_fact
       (Fact_type.make ~reading:"concerns" "concerns" "ContractComplaint" "Contract")
  |> Schema.add_fact
       (Fact_type.make ~reading:"escalates" "escalates" "Complaint" "Complaint")
  |> Schema.add_fact
       (Fact_type.make ~reading:"has severity" "has_severity" "Complaint" "Severity")
  |> Schema.add_fact
       (Fact_type.make ~reading:"is settled by" "settled_by" "Settlement" "Agent")
  (* Sound constraints. *)
  |- Mandatory (Ids.first "files")
  |- Mandatory (Ids.first "addressed_to")
  |- Uniqueness (Single (Ids.first "addressed_to"))
  |- Uniqueness (Single (Ids.first "results_in"))
  |- Mandatory (Ids.first "has_severity")
  |- Uniqueness (Single (Ids.first "has_severity"))
  |- Value_constraint
       ("Severity", Value.Constraint.of_strings [ "low"; "medium"; "high"; "critical" ])
  |- Total_subtypes ("Outcome", [ "Resolution"; "Rejection" ])
  |- Ring (Ring.Acyclic, "escalates")

(* The mistakes, as separate edits so the repair loop can locate them. *)
let with_mistakes =
  base_ontology
  (* M1 (pattern 2): anonymous complainants cannot be customers, yet the
     web-form workflow introduced AnonymousCustomer below both. *)
  |> Schema.add_subtype ~sub:"AnonymousComplainant" ~super:"Complainant"
  |> Schema.add_subtype ~sub:"AnonymousCustomer" ~super:"AnonymousComplainant"
  |> Schema.add_subtype ~sub:"AnonymousCustomer" ~super:"Customer"
  |> Schema.add_constraint
       (Constraints.make "m1"
          (Type_exclusion [ "AnonymousComplainant"; "Customer" ]))
  (* M2 (pattern 3): every complaint must be escalated, but escalated and
     resolved complaints were declared exclusive. *)
  |> Schema.add_constraint (Constraints.make "m2a" (Mandatory (Ids.first "results_in")))
  |> Schema.add_constraint
       (Constraints.make "m2b"
          (Role_exclusion
             [ Ids.Single (Ids.first "results_in"); Ids.Single (Ids.first "escalates") ]))
  (* M3 (pattern 7): "a complaint cites at least two severities" against the
     one-severity-per-complaint uniqueness. *)
  |> Schema.add_constraint
       (Constraints.make "m3"
          (Frequency (Single (Ids.first "has_severity"), Constraints.frequency ~max:4 2)))
  (* M4 (pattern 8): escalation was also declared symmetric. *)
  |> Schema.add_constraint (Constraints.make "m4" (Ring (Ring.Symmetric, "escalates")))

let () =
  let schema = with_mistakes in
  assert (Schema.validate schema = []);
  Format.printf "ontology size: %s@."
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) (Schema.stats schema)));

  let report = Engine.check schema in
  Format.printf "@.--- triage: %d diagnostics ---@." (List.length report.diagnostics);
  List.iter
    (fun (d : Orm_patterns.Diagnostic.t) ->
      let tag =
        match d.origin with
        | Orm_patterns.Diagnostic.Pattern n ->
            Printf.sprintf "pattern %d (%s)" n (Orm_patterns.Diagnostic.pattern_name n)
        | Propagation _ -> "propagation"
      in
      Format.printf "[%s] %s@." tag d.message)
    report.diagnostics;

  (* Repair loop: remove the culprit constraints the diagnostics name,
     preferring the most recently added (the mistakes, by construction). *)
  let rec repair schema rounds =
    let report = Engine.check schema in
    let culprits =
      List.concat_map (fun (d : Orm_patterns.Diagnostic.t) -> d.culprits) report.diagnostics
      |> List.sort_uniq String.compare
      |> List.filter (fun id -> String.length id > 0 && id.[0] = 'm')
    in
    match culprits with
    | [] -> (schema, rounds, report)
    | id :: _ -> repair (Schema.remove_constraint id schema) (rounds + 1)
  in
  let repaired, rounds, final_report = repair schema 0 in
  (* The M1 mistake also involves subtype edges; the final repair drops the
     offending exclusive constraint, which the loop above already did if it
     was named. *)
  Format.printf "@.--- after %d repairs: %d diagnostics remain ---@." rounds
    (List.length final_report.diagnostics);
  if final_report.diagnostics = [] then begin
    Format.printf "ontology is pattern-clean; strong witness search:@.";
    match Orm_reasoner.Finder.solve ~budget:2_000_000 repaired Schema_satisfiable with
    | Model _ -> Format.printf "weakly satisfiable: yes@."
    | No_model -> Format.printf "weakly satisfiable: no@."
    | Budget_exceeded -> Format.printf "weak satisfiability: search budget exceeded@."
  end;

  Format.printf "@.--- verbalization sample (first 10 sentences) ---@.";
  List.iteri
    (fun i s -> if i < 10 then print_endline s)
    (Orm_verbalize.Verbalize.schema repaired)
