(* Ring-constraint gallery: regenerates the paper's Table 1 and the
   implication structure of the Fig. 12 Euler diagram from first
   principles, and shows pattern 8 at work on every incompatible pair.

   Run with:  dune exec examples/ring_gallery.exe *)

open Orm

let () =
  print_endline "=== Table 1: compatible ring-constraint combinations ===";
  List.iter
    (fun ks ->
      if not (Ring.Kind_set.is_empty ks) then
        match Ring.witness ks with
        | Some rel ->
            Format.printf "%-24s witness: {%s}@."
              (Format.asprintf "%a" Ring.pp_set ks)
              (String.concat ", "
                 (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) rel))
        | None -> assert false)
    Ring.compatible_combinations;

  print_endline "\n=== Fig. 12: implications between ring constraints ===";
  List.iter
    (fun a ->
      let implied = List.filter (fun b -> b <> a && Ring.implies a b) Ring.all in
      if implied <> [] then
        Format.printf "%-14s implies %s@." (Ring.to_string a)
          (String.concat ", " (List.map Ring.to_string implied)))
    Ring.all;

  print_endline "\n=== pattern 8 on every incompatible pair ===";
  List.iter
    (fun (a, b) ->
      let ks = Ring.Kind_set.of_list [ a; b ] in
      if not (Ring.compatible ks) then begin
        let schema =
          Schema.empty "gallery"
          |> Schema.add_fact (Fact_type.make "r" "A" "A")
          |> Schema.add (Ring (a, "r"))
          |> Schema.add (Ring (b, "r"))
        in
        let report = Orm_patterns.Engine.check schema in
        Format.printf "%s + %s -> %d diagnostic(s), roles flagged: %s@."
          (Ring.to_string a) (Ring.to_string b)
          (List.length report.diagnostics)
          (String.concat ", "
             (List.map Ids.role_to_string (Ids.Role_set.elements report.unsat_roles)))
      end)
    (List.concat_map (fun a -> List.map (fun b -> (a, b)) Ring.all) Ring.all
    |> List.filter (fun (a, b) -> Ring.compare a b < 0))
