bench/experiments.ml: Constraints Fact_type Figures Format Ids Int List Orm Orm_dlr Orm_generator Orm_interactive Orm_patterns Orm_reasoner Orm_sat Printf Ring Schema String Sys Value
