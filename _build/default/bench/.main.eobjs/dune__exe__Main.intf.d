bench/main.mli:
