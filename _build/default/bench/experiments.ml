(* Experiment tables: regenerate every evaluable artifact of the paper
   (Figures 1-14, Table 1) and measure the Section-4 claims (patterns fast
   and incomplete vs complete and exponential; incremental re-checking for
   interactive modeling).  EXPERIMENTS.md records the expected shapes. *)

open Orm
module Engine = Orm_patterns.Engine
module Settings = Orm_patterns.Settings
module Diagnostic = Orm_patterns.Diagnostic
module Finder = Orm_reasoner.Finder

let hr title =
  Printf.printf "\n==== %s ====\n" title

(* Median wall-clock seconds of [f] over [n] runs. *)
let time_median ?(n = 5) f =
  let runs =
    List.init n (fun _ ->
        let t0 = Sys.time () in
        ignore (Sys.opaque_identity (f ()));
        Sys.time () -. t0)
  in
  List.nth (List.sort compare runs) (n / 2)

let ms t = t *. 1_000.
let us t = t *. 1_000_000.

(* --- Experiment F1-F14: figure-by-figure verdicts ------------------- *)

let figure_verdicts () =
  hr "Experiment F: paper figures, engine vs complete reasoners";
  Printf.printf "%-8s %-8s %-10s %-22s %-22s %-14s\n" "figure" "pattern"
    "expected" "engine(paper-mode)" "finder-confirmed" "DL route";
  List.iter
    (fun (e : Figures.expectation) ->
      let report = Engine.check ~settings:Settings.patterns_only e.schema in
      let fired =
        List.sort_uniq Int.compare
          (List.filter_map Diagnostic.pattern_number report.diagnostics)
      in
      let expected =
        match e.pattern with None -> "none" | Some p -> Printf.sprintf "P%d" p
      in
      let engine_col =
        if fired = [] then "silent"
        else
          Printf.sprintf "P%s: %dT %dR %dJ"
            (String.concat "," (List.map string_of_int fired))
            (Ids.String_set.cardinal report.unsat_types)
            (Ids.Role_set.cardinal report.unsat_roles)
            (List.length report.joint)
      in
      (* The finder confirms every element-level verdict; a budget overrun
         is inconclusive (distinct from a genuine counterexample). *)
      let refuted = ref true and inconclusive = ref false in
      let observe = function
        | Finder.No_model -> ()
        | Finder.Model _ -> refuted := false
        | Finder.Budget_exceeded -> inconclusive := true
      in
      Ids.String_set.iter
        (fun t -> observe (Finder.solve ~budget:500_000 e.schema (Type_satisfiable t)))
        report.unsat_types;
      Ids.Role_set.iter
        (fun r -> observe (Finder.solve ~budget:500_000 e.schema (Role_satisfiable r)))
        report.unsat_roles;
      let confirmation =
        if not !refuted then "MISMATCH"
        else if !inconclusive then "confirmed (partial)"
        else "all confirmed"
      in
      let dl = Orm_dlr.Dlr_check.check e.schema in
      let dl_col =
        let n_t = List.length (Orm_dlr.Dlr_check.unsat_types dl) in
        let n_r = List.length (Orm_dlr.Dlr_check.unsat_roles dl) in
        Printf.sprintf "%dT %dR%s" n_t n_r (if dl.complete then "" else " (partial)")
      in
      Printf.printf "%-8s %-8s %-10s %-22s %-22s %-14s\n" e.figure expected
        expected engine_col confirmation dl_col)
    Figures.all

(* --- Experiment T1: the ring compatibility table --------------------- *)

let table1 () =
  hr "Experiment T1: ring-constraint compatibility (paper Table 1)";
  let compatible =
    List.filter (fun ks -> not (Ring.Kind_set.is_empty ks)) Ring.compatible_combinations
  in
  List.iteri
    (fun i ks ->
      Printf.printf "%-22s%s"
        (Format.asprintf "%a" Ring.pp_set ks)
        (if (i + 1) mod 3 = 0 then "\n" else " "))
    compatible;
  Printf.printf "\n%d of 63 non-empty combinations are compatible.\n"
    (List.length compatible);
  Printf.printf "paper's incompatible examples rejected: (sym,it)+(ans)=%b  (sym,it)+(it,ac)=%b  (ans,it)+(ir,sym)=%b\n"
    (not (Ring.compatible (Ring.Kind_set.of_list [ Symmetric; Intransitive; Antisymmetric ])))
    (not (Ring.compatible (Ring.Kind_set.of_list [ Symmetric; Intransitive; Acyclic ])))
    (not
       (Ring.compatible
          (Ring.Kind_set.of_list [ Antisymmetric; Intransitive; Irreflexive; Symmetric ])))

(* --- Experiment S4a: patterns vs complete procedures ------------------ *)

let scaling () =
  hr "Experiment S4a: pattern engine vs complete procedures (schema size sweep)";
  Printf.printf "%-6s %-7s %-7s | %-12s | %-16s %-8s | %-12s | %-12s\n" "size" "types"
    "facts" "engine" "finder(strong)" "nodes" "DL(all elems)" "SAT(strong)";
  List.iter
    (fun size ->
      let schema = Orm_generator.Gen.clean ~config:(Orm_generator.Gen.sized size) ~seed:11 () in
      let n_types = List.length (Schema.object_types schema) in
      let n_facts = List.length (Schema.fact_types schema) in
      let t_engine = time_median (fun () -> Engine.check schema) in
      let finder_outcome = ref Finder.Budget_exceeded in
      let t_finder =
        time_median ~n:1 (fun () ->
            finder_outcome := Finder.solve ~budget:60_000 schema Strongly_satisfiable)
      in
      let nodes = Finder.stats_last_nodes () in
      let outcome =
        match !finder_outcome with
        | Model _ -> "model"
        | No_model -> "no-model"
        | Budget_exceeded -> "gave-up"
      in
      let t_dl = time_median ~n:1 (fun () -> Orm_dlr.Dlr_check.check ~budget:5_000 schema) in
      let sat_outcome = ref Orm_sat.Encode.Timeout in
      let t_sat =
        time_median ~n:1 (fun () ->
            sat_outcome := Orm_sat.Encode.solve ~budget:500_000 schema Strongly_satisfiable)
      in
      let sat_col =
        match !sat_outcome with
        | Orm_sat.Encode.Model _ -> "model"
        | No_model -> "no-model"
        | Timeout -> "gave-up"
      in
      Printf.printf
        "%-6d %-7d %-7d | %8.1f us  | %10.2f ms %-9s %8d | %9.2f ms | %8.2f ms %-9s\n"
        size n_types n_facts (us t_engine) (ms t_finder) outcome nodes (ms t_dl)
        (ms t_sat) sat_col)
    [ 2; 4; 6; 8; 10 ];
  Printf.printf
    "(expected shape: engine grows mildly and stays in microseconds; the\n\
    \ complete search grows exponentially and eventually gives up - the\n\
    \ paper's motivation for running patterns interactively)\n"

(* --- Experiment S4b: incremental vs full re-check --------------------- *)

let incremental () =
  hr "Experiment S4b: incremental vs full re-check (interactive modeling)";
  Printf.printf "%-6s %-12s %-12s %-8s\n" "size" "full" "incremental" "speedup";
  List.iter
    (fun size ->
      let schema = Orm_generator.Gen.clean ~config:(Orm_generator.Gen.sized size) ~seed:17 () in
      let session = Orm_interactive.Session.create schema in
      let fact =
        match Schema.fact_types schema with
        | ft :: _ -> ft.Fact_type.name
        | [] -> assert false
      in
      let edit = Orm_interactive.Edit.Add (Uniqueness (Single (Ids.first fact))) in
      let t_full =
        time_median (fun () -> Engine.check (Orm_interactive.Edit.apply edit schema))
      in
      let t_inc = time_median (fun () -> Orm_interactive.Session.apply edit session) in
      Printf.printf "%-6d %9.1f us %9.1f us %7.1fx\n" size (us t_full) (us t_inc)
        (t_full /. t_inc))
    [ 5; 10; 20; 40; 80 ]

(* --- Experiment S4c: CCFORM-scale ontology ---------------------------- *)

let ccform_scale () =
  hr "Experiment S4c: CCFORM-scale ontology check latency";
  (* A complaint-ontology-sized schema (about 40 types) with all nine faults
     planted, as a stress on the diagnostic path. *)
  let base = Orm_generator.Gen.clean ~config:(Orm_generator.Gen.sized 40) ~seed:23 () in
  let faulted =
    List.fold_left
      (fun s p -> (Orm_generator.Faults.inject ~seed:23 p s).Orm_generator.Faults.schema)
      base
      Orm_generator.Faults.all_patterns
  in
  let report = Engine.check faulted in
  let t = time_median (fun () -> Engine.check faulted) in
  let by_pattern =
    List.filter_map Diagnostic.pattern_number report.diagnostics
    |> List.sort_uniq Int.compare
  in
  Printf.printf
    "schema: %d types, %d facts, %d constraints; 9 planted mistakes\n"
    (List.length (Schema.object_types faulted))
    (List.length (Schema.fact_types faulted))
    (List.length (Schema.constraints faulted));
  Printf.printf "full check: %.1f us, %d diagnostics, patterns fired: %s\n"
    (us t)
    (List.length report.diagnostics)
    (String.concat "," (List.map string_of_int by_pattern));
  Printf.printf
    "(interactive budget is ~100 ms per keystroke; the check is %d000x inside it)\n"
    (max 1 (int_of_float (0.1 /. t /. 1000.)))

(* --- Experiment A1: ablations ----------------------------------------- *)

let ablations () =
  hr "Experiment A1: ablations of the refinements";
  (* Paper-faithful vs refined pattern 6 on Fig. 8. *)
  let paper = Engine.check ~settings:Settings.patterns_only Figures.fig8 in
  let refined =
    Engine.check
      ~settings:{ Settings.patterns_only with paper_faithful = false }
      Figures.fig8
  in
  Printf.printf
    "P6 on fig8   paper-mode: %d certain roles + %d joint group(s); refined: %d certain roles, %d joint\n"
    (Ids.Role_set.cardinal paper.unsat_roles)
    (List.length paper.joint)
    (Ids.Role_set.cardinal refined.unsat_roles)
    (List.length refined.joint);
  (* Propagation on/off on the subtype-loop figure with a dependent type. *)
  let deep =
    Figures.fig13 |> Schema.add_subtype ~sub:"Below" ~super:"A"
    |> Schema.add_fact (Fact_type.make "uses" "Below" "Other")
  in
  let with_prop = Engine.check deep in
  let without = Engine.check ~settings:Settings.patterns_only deep in
  Printf.printf
    "propagation  on: %d types + %d roles flagged; off (paper algorithms): %d types + %d roles\n"
    (Ids.String_set.cardinal with_prop.unsat_types)
    (Ids.Role_set.cardinal with_prop.unsat_roles)
    (Ids.String_set.cardinal without.unsat_types)
    (Ids.Role_set.cardinal without.unsat_roles);
  (* Extension patterns (Section-5 future work) on the incompleteness
     exhibit. *)
  let sneaky_ring =
    Schema.empty "sneaky"
    |> Schema.add_fact (Fact_type.make "r" "A" "A")
    |> Schema.add (Ring (Ring.Irreflexive, "r"))
    |> Schema.add (Value_constraint ("A", Value.Constraint.of_strings [ "only" ]))
  in
  Printf.printf
    "extensions   nine patterns: %d diagnostics; with patterns 10-12: %d diagnostics\n"
    (List.length (Engine.check sneaky_ring).diagnostics)
    (List.length
       (Engine.check ~settings:(Settings.with_extensions Settings.default) sneaky_ring)
         .diagnostics);
  (* Effective value sets on/off on an inherited-value-constraint schema. *)
  let inherited =
    Schema.empty "inh"
    |> Schema.add_subtype ~sub:"SmallB" ~super:"B"
    |> Schema.add_fact (Fact_type.make "f" "A" "SmallB")
    |> Schema.add (Value_constraint ("B", Value.Constraint.of_strings [ "x"; "y" ]))
    |> Schema.add (Frequency (Single (Ids.first "f"), Constraints.frequency ~max:5 3))
  in
  let eff = Engine.check inherited in
  let direct =
    Engine.check ~settings:{ Settings.default with effective_value_sets = false } inherited
  in
  Printf.printf
    "value sets   effective (ours): %d diagnostics; direct only (paper): %d diagnostics\n"
    (List.length eff.diagnostics)
    (List.length direct.diagnostics)

(* --- Incompleteness exhibit ------------------------------------------- *)

let incompleteness () =
  hr "Incompleteness exhibit (paper Section 5)";
  let sneaky =
    Schema.empty "sneaky"
    |> Schema.add_fact (Fact_type.make "r" "A" "A")
    |> Schema.add (Ring (Ring.Irreflexive, "r"))
    |> Schema.add (Value_constraint ("A", Value.Constraint.of_strings [ "only" ]))
  in
  let diags = (Engine.check sneaky).diagnostics in
  let refuted =
    match Finder.solve sneaky (Role_satisfiable (Ids.first "r")) with
    | No_model -> true
    | Model _ | Budget_exceeded -> false
  in
  Printf.printf
    "irreflexive role over a 1-value type: patterns report %d diagnostics,\n\
     complete finder refutes the role: %b  (the gap the paper concedes)\n"
    (List.length diags) refuted

let run_all () =
  figure_verdicts ();
  table1 ();
  scaling ();
  incremental ();
  ccform_scale ();
  ablations ();
  incompleteness ()
