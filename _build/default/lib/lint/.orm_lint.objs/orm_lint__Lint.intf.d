lib/lint/lint.mli: Format Orm Schema
