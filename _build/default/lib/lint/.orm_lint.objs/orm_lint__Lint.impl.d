lib/lint/lint.ml: Constraints Fact_type Format Ids List Option Orm Orm_patterns Printf Schema String Subtype_graph Value
