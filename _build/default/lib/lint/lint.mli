(** Modeling-style rules from the literature the paper analyzes in Section 3:
    Halpin's seven {e formation rules} [H89] (FR1–FR7) and the RIDL-A
    {e set-constraint analysis} [DMV] (S1–S4), plus three validity checks
    (V1–V3) in the spirit of RIDL-A's validity analysis (whose exact rules
    the paper does not reproduce; ours are standard ORM hygiene checks and
    are labelled as approximations).

    The paper's central observation is reproduced as data: most of these
    rules are {e style} or {e redundancy} guidelines — violating them does
    not make any role unsatisfiable — and the few that do touch
    unsatisfiability are subsumed by one of the nine patterns.  Each rule
    carries the paper's verdict ([relevant_for_unsat]) and, where
    applicable, the pattern that covers it. *)

open Orm

type severity =
  | Style  (** prefer another formulation; nothing is wrong semantically *)
  | Redundancy  (** the constraint is implied by others *)
  | Unsat_risk  (** violating this rule makes some role unsatisfiable *)

type rule = {
  rule_id : string;  (** "FR1".."FR7", "S1".."S4", "V1".."V3" *)
  title : string;
  severity : severity;
  relevant_for_unsat : bool;
      (** the paper's Section 3 verdict: does a violation imply an
          unsatisfiable role? *)
  covered_by_pattern : int option;
      (** the unsatisfiability pattern subsuming the rule, if any *)
}

val rules : rule list
(** The full catalogue with the paper's classification — FR5 is pattern 3,
    FR7 is covered by pattern 4, S2 on subtypes is pattern 9, everything
    else is style/redundancy. *)

val find_rule : string -> rule option

type finding = {
  rule : rule;
  subject : string;  (** the offending element or constraint *)
  message : string;
}

val pp_finding : Format.formatter -> finding -> unit

val check : Schema.t -> finding list
(** Runs every rule over the schema.  Unlike {!Orm_patterns.Engine.check},
    findings here are advice: the schema may be perfectly satisfiable. *)

val check_rule : string -> Schema.t -> finding list
(** Runs a single rule by identifier.
    @raise Invalid_argument on an unknown identifier. *)
