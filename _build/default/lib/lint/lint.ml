open Orm

type severity = Style | Redundancy | Unsat_risk

type rule = {
  rule_id : string;
  title : string;
  severity : severity;
  relevant_for_unsat : bool;
  covered_by_pattern : int option;
}

let rules =
  [
    {
      rule_id = "FR1";
      title = "A frequency constraint of 1 is never used (use uniqueness instead)";
      severity = Style;
      relevant_for_unsat = false;
      covered_by_pattern = None;
    };
    {
      rule_id = "FR2";
      title = "A frequency constraint cannot span a whole predicate";
      severity = Style;
      relevant_for_unsat = false;
      (* Only the min>1 case is an unsatisfiability, and pattern 7 owns it. *)
      covered_by_pattern = Some 7;
    };
    {
      rule_id = "FR3";
      title =
        "No role sequence exactly spanned by a uniqueness constraint can have a \
         frequency constraint";
      severity = Redundancy;
      relevant_for_unsat = false;
      covered_by_pattern = Some 7;
    };
    {
      rule_id = "FR4";
      title = "No uniqueness constraint can be spanned by a longer uniqueness constraint";
      severity = Redundancy;
      relevant_for_unsat = false;
      covered_by_pattern = None;
    };
    {
      rule_id = "FR5";
      title =
        "An exclusion constraint cannot be specified between roles if one of them is \
         mandatory";
      severity = Unsat_risk;
      relevant_for_unsat = true;
      covered_by_pattern = Some 3;
    };
    {
      rule_id = "FR6";
      title =
        "An exclusion constraint cannot be specified between roles of an object type \
         and its subtype";
      severity = Style;
      relevant_for_unsat = false;  (* the paper's Fig. 14 counterexample *)
      covered_by_pattern = None;
    };
    {
      rule_id = "FR7";
      title =
        "A frequency minimum cannot exceed the co-player's admissible value count";
      severity = Unsat_risk;
      relevant_for_unsat = true;
      covered_by_pattern = Some 4;
    };
    {
      rule_id = "S1";
      title = "A subset constraint may not be superfluous";
      severity = Redundancy;
      relevant_for_unsat = false;
      covered_by_pattern = None;
    };
    {
      rule_id = "S2";
      title = "A subset constraint may not contain any loops";
      severity = Style;
      relevant_for_unsat = false;
      (* On subtypes, where subsetting is strict, loops ARE unsatisfiable
         and pattern 9 owns them. *)
      covered_by_pattern = Some 9;
    };
    {
      rule_id = "S3";
      title = "An equality constraint may not be superfluous";
      severity = Redundancy;
      relevant_for_unsat = false;
      covered_by_pattern = None;
    };
    {
      rule_id = "S4";
      title = "Sequences under an exclusion constraint may not have a common subset";
      severity = Unsat_risk;
      relevant_for_unsat = true;
      covered_by_pattern = Some 6;
    };
    {
      rule_id = "V1";
      title = "An object type should play some role or subtype link (approximation)";
      severity = Style;
      relevant_for_unsat = false;
      covered_by_pattern = None;
    };
    {
      rule_id = "V2";
      title =
        "A fact type should carry an explicit uniqueness constraint (approximation)";
      severity = Style;
      relevant_for_unsat = false;
      covered_by_pattern = None;
    };
    {
      rule_id = "V3";
      title =
        "A subtype's value constraint should refine its supertype's (approximation)";
      severity = Style;
      relevant_for_unsat = false;
      covered_by_pattern = None;
    };
  ]

let find_rule id = List.find_opt (fun r -> r.rule_id = id) rules

type finding = {
  rule : rule;
  subject : string;
  message : string;
}

let pp_finding ppf f =
  Format.fprintf ppf "[%s] %s: %s" f.rule.rule_id f.subject f.message

let get id = Option.get (find_rule id)

let finding id subject fmt =
  Format.kasprintf (fun message -> { rule = get id; subject; message }) fmt

let singles seqs =
  let extract = function Ids.Single r -> Some r | Ids.Pair _ -> None in
  let roles = List.filter_map extract seqs in
  if List.length roles = List.length seqs then Some roles else None

(* FR1: FC(1-1) is a uniqueness constraint in disguise. *)
let fr1 schema =
  List.filter_map
    (fun (c : Constraints.t) ->
      match c.body with
      | Frequency (seq, { min = 1; max = Some 1 }) ->
          Some
            (finding "FR1" c.id
               "frequency FC(1-1) on %s should be a uniqueness constraint"
               (Ids.seq_to_string seq))
      | _ -> None)
    (Schema.constraints schema)

(* FR2: frequency spanning a whole (binary) predicate. *)
let fr2 schema =
  List.filter_map
    (fun (c : Constraints.t) ->
      match c.body with
      | Frequency (Pair _, f) ->
          Some
            (finding "FR2" c.id
               "frequency %s spans the whole predicate; a predicate is a set, so \
                only FC(1-n) is satisfiable (and redundant)"
               (Format.asprintf "%a" Constraints.pp_frequency f))
      | _ -> None)
    (Schema.constraints schema)

(* FR3: frequency on a sequence that is exactly spanned by a uniqueness. *)
let fr3 schema =
  List.filter_map
    (fun (c : Constraints.t) ->
      match c.body with
      | Frequency (seq, _) when Schema.has_uniqueness schema seq ->
          Some
            (finding "FR3" c.id
               "frequency on %s duplicates the uniqueness constraint there"
               (Ids.seq_to_string seq))
      | _ -> None)
    (Schema.constraints schema)

(* FR4: a pair uniqueness spanned by a single-role uniqueness is redundant. *)
let fr4 schema =
  List.filter_map
    (fun (c : Constraints.t) ->
      match c.body with
      | Uniqueness (Pair (r1, r2)) ->
          let shorter r = Schema.has_uniqueness schema (Ids.Single r) in
          if shorter r1 || shorter r2 then
            Some
              (finding "FR4" c.id
                 "the spanning uniqueness on %s is implied by a shorter uniqueness"
                 r1.fact)
          else None
      | _ -> None)
    (Schema.constraints schema)

(* FR5: mandatory role inside an exclusion constraint. *)
let fr5 schema =
  List.filter_map
    (fun ((c : Constraints.t), seqs) ->
      match singles seqs with
      | None -> None
      | Some roles ->
          let mand = List.filter (Schema.is_mandatory schema) roles in
          if mand = [] then None
          else
            Some
              (finding "FR5" c.id
                 "roles %s in the exclusion are mandatory (see pattern 3)"
                 (String.concat ", " (List.map Ids.role_to_string mand))))
    (Schema.role_exclusions schema)

(* FR6: exclusion between roles whose players are in a subtype relation. *)
let fr6 schema =
  let g = Schema.graph schema in
  List.filter_map
    (fun ((c : Constraints.t), seqs) ->
      match singles seqs with
      | None -> None
      | Some roles ->
          let offending =
            List.exists
              (fun ri ->
                List.exists
                  (fun rj ->
                    (not (Ids.equal_role ri rj))
                    &&
                    match (Schema.player schema ri, Schema.player schema rj) with
                    | Some pi, Some pj ->
                        pi <> pj
                        && (Subtype_graph.is_subtype_of g ~sub:pi ~super:pj
                           || Subtype_graph.is_subtype_of g ~sub:pj ~super:pi)
                    | _ -> false)
                  roles)
              roles
          in
          if offending then
            Some
              (finding "FR6" c.id
                 "the excluded roles are played by a type and its subtype; this is \
                  legal (all roles can still be satisfiable, cf. the paper's Fig. 14) \
                  but considered poor style")
          else None)
    (Schema.role_exclusions schema)

(* FR7: frequency minimum above the co-player's value count (= pattern 4). *)
let fr7 schema =
  List.filter_map
    (fun (c : Constraints.t) ->
      match c.body with
      | Frequency (Single r, { min; _ }) -> (
          match Schema.player schema (Ids.co_role r) with
          | None -> None
          | Some co_player -> (
              match Schema.effective_value_set schema co_player with
              | Some vs when Value.Constraint.cardinal vs < min ->
                  Some
                    (finding "FR7" c.id
                       "the frequency minimum %d exceeds the %d admissible values of %s"
                       min (Value.Constraint.cardinal vs) co_player)
              | _ -> None))
      | _ -> None)
    (Schema.constraints schema)

(* Is there a SetPath from [a] to [b] that does not use constraint [id]?  A
   subset/equality implied that way makes the constraint superfluous. *)
let redundant_path schema id a b =
  let without = Schema.remove_constraint id schema in
  let g = Orm_patterns.Setcomp.build without in
  Orm_patterns.Setcomp.set_path g a b <> None

let s1 schema =
  List.filter_map
    (fun (c : Constraints.t) ->
      match c.body with
      | Subset (a, b) when redundant_path schema c.id a b ->
          Some
            (finding "S1" c.id "the subset %s <= %s is implied by other constraints"
               (Ids.seq_to_string a) (Ids.seq_to_string b))
      | _ -> None)
    (Schema.constraints schema)

(* S2: subset loops (populations forced equal, but satisfiable). *)
let s2 schema =
  let g = Orm_patterns.Setcomp.build schema in
  List.filter_map
    (fun (c : Constraints.t) ->
      match c.body with
      | Subset (a, b) when Orm_patterns.Setcomp.set_path g b a <> None ->
          Some
            (finding "S2" c.id
               "subset %s <= %s closes a loop; the populations are forced to be \
                equal (use an equality constraint)"
               (Ids.seq_to_string a) (Ids.seq_to_string b))
      | _ -> None)
    (Schema.constraints schema)

let s3 schema =
  List.filter_map
    (fun (c : Constraints.t) ->
      match c.body with
      | Equality (a, b)
        when redundant_path schema c.id a b && redundant_path schema c.id b a ->
          Some
            (finding "S3" c.id "the equality %s = %s is implied by other constraints"
               (Ids.seq_to_string a) (Ids.seq_to_string b))
      | _ -> None)
    (Schema.constraints schema)

(* S4: excluded sequences with a common subset - this is what pattern 6
   detects; the lint finding just points there. *)
let s4 schema =
  List.filter_map
    (fun d ->
      match Orm_patterns.Diagnostic.pattern_number d with
      | Some 6 ->
          Some
            (finding "S4"
               (String.concat ", " d.Orm_patterns.Diagnostic.culprits)
               "excluded sequences share a forced common subset (pattern 6)")
      | _ -> None)
    (Orm_patterns.Engine.run_pattern 6 schema)

(* V1: object types connected to nothing. *)
let v1 schema =
  let g = Schema.graph schema in
  let mentioned =
    List.fold_left
      (fun acc (c : Constraints.t) ->
        List.fold_left
          (fun acc t -> Ids.String_set.add t acc)
          acc
          (Constraints.object_types_of c.body))
      Ids.String_set.empty (Schema.constraints schema)
  in
  List.filter_map
    (fun t ->
      if
        Schema.roles_played_by schema t = []
        && Subtype_graph.direct_supertypes g t = []
        && Subtype_graph.direct_subtypes g t = []
        && not (Ids.String_set.mem t mentioned)
      then Some (finding "V1" t "object type %s plays no role and has no links" t)
      else None)
    (Schema.object_types schema)

(* V2: fact types without any explicit uniqueness constraint. *)
let v2 schema =
  List.filter_map
    (fun (ft : Fact_type.t) ->
      let has_uc =
        Schema.has_uniqueness schema (Ids.Single (Ids.first ft.name))
        || Schema.has_uniqueness schema (Ids.Single (Ids.second ft.name))
        || Schema.has_uniqueness schema (Ids.whole_predicate ft.name)
      in
      if has_uc then None
      else
        Some
          (finding "V2" ft.name
             "fact type %s has no explicit uniqueness constraint (many-to-many by \
              default)"
             ft.name))
    (Schema.fact_types schema)

(* V3: a subtype's value constraint not contained in its supertype's. *)
let v3 schema =
  let g = Schema.graph schema in
  List.filter_map
    (fun (c : Constraints.t) ->
      match c.body with
      | Value_constraint (t, vs) ->
          let violating_ancestor =
            List.find_opt
              (fun anc ->
                match Schema.value_constraint schema anc with
                | Some (_, vs') ->
                    not (Value.Constraint.equal (Value.Constraint.inter vs vs') vs)
                | None -> false)
              (Ids.String_set.elements (Subtype_graph.supertypes g t))
          in
          Option.map
            (fun anc ->
              finding "V3" c.id
                "the value constraint on %s is not contained in its supertype %s's" t
                anc)
            violating_ancestor
      | _ -> None)
    (Schema.constraints schema)

let checkers =
  [
    ("FR1", fr1); ("FR2", fr2); ("FR3", fr3); ("FR4", fr4); ("FR5", fr5);
    ("FR6", fr6); ("FR7", fr7); ("S1", s1); ("S2", s2); ("S3", s3); ("S4", s4);
    ("V1", v1); ("V2", v2); ("V3", v3);
  ]

let check schema = List.concat_map (fun (_, checker) -> checker schema) checkers

let check_rule id schema =
  match List.assoc_opt id checkers with
  | Some checker -> checker schema
  | None -> invalid_arg (Printf.sprintf "Lint.check_rule: unknown rule %s" id)
