type object_type = string
type fact_type = string

type side = Fst | Snd

let other_side = function Fst -> Snd | Snd -> Fst
let side_index = function Fst -> 1 | Snd -> 2

type role = { fact : fact_type; side : side }

let role fact side = { fact; side }
let first fact = { fact; side = Fst }
let second fact = { fact; side = Snd }
let co_role r = { r with side = other_side r.side }

type role_seq =
  | Single of role
  | Pair of role * role

let seq_roles = function
  | Single r -> [ r ]
  | Pair (r1, r2) -> [ r1; r2 ]

let seq_fact = function
  | Single r -> r.fact
  | Pair (r, _) -> r.fact

let whole_predicate fact = Pair (first fact, second fact)

let compare_role (a : role) (b : role) = compare a b
let equal_role (a : role) (b : role) = a = b
let compare_seq (a : role_seq) (b : role_seq) = compare a b
let equal_seq (a : role_seq) (b : role_seq) = a = b

let pp_role ppf r = Format.fprintf ppf "%s.%d" r.fact (side_index r.side)

let pp_seq ppf = function
  | Single r -> pp_role ppf r
  | Pair (r1, r2) -> Format.fprintf ppf "(%a, %a)" pp_role r1 pp_role r2

let role_to_string r = Format.asprintf "%a" pp_role r
let seq_to_string s = Format.asprintf "%a" pp_seq s

module Role_set = Set.Make (struct
  type t = role

  let compare = compare_role
end)

module Role_map = Map.Make (struct
  type t = role

  let compare = compare_role
end)

module Seq_set = Set.Make (struct
  type t = role_seq

  let compare = compare_seq
end)

module String_set = Set.Make (String)
module String_map = Map.Make (String)
