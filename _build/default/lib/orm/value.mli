(** Lexical values.

    Values populate object types and appear in ORM {e value constraints}
    (e.g. [{'x1', 'x2'}] in the paper's Fig. 5, or integer ranges).  The
    same type is used by the semantics library to populate schemas. *)

type t =
  | Str of string  (** a quoted lexical value, e.g. ['x1'] *)
  | Int of int  (** an integer value *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val str : string -> t
val int : int -> t

module Set : Set.S with type elt = t

(** A value constraint: an enumerated set of admissible values, possibly
    built from integer ranges.  The paper only needs the {e cardinality} of
    the set (patterns 4 and 5), but populations need membership too. *)
module Constraint : sig
  type value = t

  type t

  val of_list : value list -> t
  (** [of_list vs] is the enumeration of [vs] (duplicates removed). *)

  val of_strings : string list -> t
  (** [of_strings ss] enumerates string values. *)

  val of_range : int -> int -> t
  (** [of_range lo hi] admits the integers in [lo..hi] inclusive.
      @raise Invalid_argument if [lo > hi]. *)

  val union : t -> t -> t
  val inter : t -> t -> t

  val cardinal : t -> int
  (** Number of admissible values — the [c] of patterns 4 and 5. *)

  val mem : value -> t -> bool
  val elements : t -> value list
  val is_empty : t -> bool
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end
