(** Ring constraints (paper pattern 8, Figs. 11–12, Table 1).

    ORM supports six ring constraints on a pair of co-typed roles:
    antisymmetric, asymmetric, acyclic, irreflexive, intransitive and
    symmetric [H01].  Two results of the paper are reproduced here:

    - the implication/incompatibility structure of Halpin's Euler diagram
      (Fig. 12), derived {e semantically} rather than transcribed;
    - Table 1, the list of all compatible combinations, computed from the
      witness theorem below.

    {b Witness theorem.}  A set [ks] of ring constraints admits a non-empty
    satisfying relation iff one of the three canonical relations
    [{(a,a)}], [{(a,b)}] or [{(a,b), (b,a)}] (with [a <> b]) satisfies it.
    {e Proof sketch}: take any non-empty satisfying relation [R] and a pair
    [(x,y)] in [R].  If [x = y] then [ks] excludes irreflexivity,
    asymmetry, acyclicity and intransitivity, and [{(a,a)}] satisfies the
    rest.  If [x <> y] and [(y,x)] is in [R] then [ks] excludes asymmetry,
    acyclicity and antisymmetry, and [{(a,b),(b,a)}] satisfies the rest.
    Otherwise [ks] excludes symmetry (a symmetric [R] would contain
    [(y,x)]), and [{(a,b)}] satisfies the rest.  The tests cross-validate
    this against brute-force enumeration of all relations over domains of
    size up to 3. *)

type kind =
  | Irreflexive  (** no [R(x,x)] *)
  | Antisymmetric  (** [R(x,y)] and [R(y,x)] imply [x = y] *)
  | Asymmetric  (** [R(x,y)] implies not [R(y,x)] *)
  | Acyclic  (** no directed cycle (of any length, including loops) *)
  | Intransitive  (** [R(x,y)] and [R(y,z)] imply not [R(x,z)] *)
  | Symmetric  (** [R(x,y)] implies [R(y,x)] *)

val all : kind list
(** The six kinds, in the paper's order of introduction. *)

val to_string : kind -> string
val abbrev : kind -> string
(** The paper's abbreviation: ["ir"], ["ans"], ["as"], ["ac"], ["it"],
    ["sym"]. *)

val of_abbrev : string -> kind option
val pp : Format.formatter -> kind -> unit
val compare : kind -> kind -> int
val equal : kind -> kind -> bool

module Kind_set : Set.S with type elt = kind

val holds : kind -> ('a * 'a) list -> bool
(** [holds k rel] checks constraint [k] on the concrete finite relation
    [rel] (structural equality on ['a]).  Used both by the semantics
    library and by the brute-force validation of the witness theorem. *)

val satisfies_all : Kind_set.t -> ('a * 'a) list -> bool
(** [satisfies_all ks rel] checks every constraint of [ks] on [rel]. *)

val compatible : Kind_set.t -> bool
(** [compatible ks] is [true] iff some {e non-empty} relation satisfies all
    constraints in [ks] — the paper's notion of a compatible combination
    (incompatible combinations make the constrained roles unsatisfiable). *)

val witness : Kind_set.t -> (int * int) list option
(** [witness ks] is a non-empty satisfying relation over the domain
    [{0, 1}] if the combination is compatible, [None] otherwise. *)

val implies : kind -> kind -> bool
(** [implies a b] is [true] iff every relation satisfying [a] satisfies
    [b]; e.g. [implies Acyclic Asymmetric] and [implies Intransitive
    Irreflexive] hold (the Fig. 12 Euler-diagram structure). *)

val table1 : (Kind_set.t * bool) list
(** All 64 combinations of the six kinds with their compatibility verdict —
    the computational regeneration of the paper's Table 1. *)

val compatible_combinations : Kind_set.t list
(** The compatible rows of {!table1} (what Table 1 actually lists). *)

val pp_set : Format.formatter -> Kind_set.t -> unit
(** Prints a combination as e.g. ["(Ir, sym)"], following the paper's
    notation. *)
