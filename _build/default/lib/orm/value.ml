type t =
  | Str of string
  | Int of int

let compare (a : t) (b : t) =
  match (a, b) with
  | Str x, Str y -> String.compare x y
  | Int x, Int y -> Int.compare x y
  | Str _, Int _ -> -1
  | Int _, Str _ -> 1

let equal a b = compare a b = 0

let pp ppf = function
  | Str s -> Format.fprintf ppf "'%s'" s
  | Int i -> Format.pp_print_int ppf i

let to_string v = Format.asprintf "%a" pp v
let str s = Str s
let int i = Int i

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Constraint = struct
  type value = t

  type t = Set.t

  let of_list vs = Set.of_list vs
  let of_strings ss = Set.of_list (List.map str ss)

  let of_range lo hi =
    if lo > hi then invalid_arg "Value.Constraint.of_range: lo > hi";
    let rec build acc i = if i < lo then acc else build (Set.add (Int i) acc) (i - 1) in
    build Set.empty hi

  let union = Set.union
  let inter = Set.inter
  let cardinal = Set.cardinal
  let mem = Set.mem
  let elements = Set.elements
  let is_empty = Set.is_empty
  let equal = Set.equal

  let pp ppf set =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp)
      (Set.elements set)
end
