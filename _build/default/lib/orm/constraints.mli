(** The ORM constraint vocabulary.

    Every constraint occurrence in a schema carries a unique identifier so
    that diagnostics can point at the culprit constraints, as the
    DogmaModeler messages of the paper's appendix do. *)

type id = string
(** Constraint identifier, unique within a schema (e.g. ["c7"] or a
    user-chosen name). *)

(** A frequency constraint [FC(min-max)]: every object appearing in the
    constrained role sequence appears between [min] and [max] times.
    [max = None] means unbounded (the paper's [FC(n -)]). *)
type frequency = { min : int; max : int option }

val frequency : ?max:int -> int -> frequency
(** [frequency ?max min] builds a frequency range.
    @raise Invalid_argument if [min < 0] or [max < min]. *)

val pp_frequency : Format.formatter -> frequency -> unit
(** Prints as ["FC(3-5)"] or ["FC(2-)"], the paper's notation. *)

(** The constraint forms of the paper's ORM fragment (binary fact types, no
    objectification, no derivation rules). *)
type body =
  | Mandatory of Ids.role
      (** every instance of the role's player must play the role *)
  | Disjunctive_mandatory of Ids.role list
      (** inclusive-or mandatory: every instance of the (common) player must
          play at least one of the roles (needed by the paper's Fig. 14) *)
  | Uniqueness of Ids.role_seq
      (** internal uniqueness constraint: each instantiation of the sequence
          occurs at most once *)
  | External_uniqueness of Ids.role list
      (** external uniqueness over roles of {e different} fact types whose
          co-roles share one player [T] (the join type): in the natural join
          on [T], a combination of values at the constrained roles
          identifies at most one [T]-instance.  Outside the paper's nine
          patterns, but required by the n-ary objectification to recover
          tuple identity. *)
  | Frequency of Ids.role_seq * frequency
      (** occurrence-count bounds on the sequence *)
  | Value_constraint of Ids.object_type * Value.Constraint.t
      (** enumerated admissible values for an object type *)
  | Role_exclusion of Ids.role_seq list
      (** populations of the sequences are pairwise disjoint (the paper's
          exclusion constraint between roles or predicates, in most compact
          form) *)
  | Subset of Ids.role_seq * Ids.role_seq
      (** population of the first sequence is contained in the second *)
  | Equality of Ids.role_seq * Ids.role_seq
      (** populations of the two sequences coincide (equivalent to two
          subset constraints) *)
  | Type_exclusion of Ids.object_type list
      (** the object types are pairwise disjoint (the paper's exclusive
          constraint between types, Figs. 1 and 3) *)
  | Total_subtypes of Ids.object_type * Ids.object_type list
      (** the supertype's population is covered by the listed subtypes *)
  | Ring of Ring.kind * Ids.fact_type
      (** ring constraint on the (co-typed) pair of roles of a fact type *)

type t = { id : id; body : body }

val make : id -> body -> t

val pp_body : Format.formatter -> body -> unit
val pp : Format.formatter -> t -> unit

val roles_of : body -> Ids.role list
(** All roles mentioned by the constraint (empty for type-level
    constraints). *)

val object_types_of : body -> Ids.object_type list
(** All object types mentioned {e directly} by the constraint (players of
    mentioned roles are resolved by {!Schema}). *)

val kind_name : body -> string
(** Short descriptor used in diagnostics and statistics, e.g.
    ["mandatory"], ["frequency"], ["ring"]. *)
