type expectation = {
  figure : string;
  schema : Schema.t;
  pattern : int option;
  unsat_types : Ids.object_type list;
  unsat_roles : Ids.role list;
  joint_roles : Ids.role list list;
}

let ( |- ) s body = Schema.add body s

let fig1 =
  Schema.empty "fig1"
  |> Schema.add_subtype ~sub:"Student" ~super:"Person"
  |> Schema.add_subtype ~sub:"Employee" ~super:"Person"
  |> Schema.add_subtype ~sub:"PhDStudent" ~super:"Student"
  |> Schema.add_subtype ~sub:"PhDStudent" ~super:"Employee"
  |- Type_exclusion [ "Student"; "Employee" ]

let fig2 =
  Schema.empty "fig2"
  |> Schema.add_object_type "A"
  |> Schema.add_object_type "B"
  |> Schema.add_subtype ~sub:"C" ~super:"A"
  |> Schema.add_subtype ~sub:"C" ~super:"B"

let fig3 =
  Schema.empty "fig3"
  |> Schema.add_subtype ~sub:"B" ~super:"A"
  |> Schema.add_subtype ~sub:"C" ~super:"A"
  |> Schema.add_subtype ~sub:"D" ~super:"B"
  |> Schema.add_subtype ~sub:"D" ~super:"C"
  |- Type_exclusion [ "B"; "C" ]

(* Fig. 4: object type A plays r1 = f1.1 and r3 = f2.1; in (c) a subtype B
   additionally plays r5 = f3.1.  Role numbering follows the paper. *)

let fig4_base name =
  Schema.empty name
  |> Schema.add_fact (Fact_type.make "f1" "A" "B")
  |> Schema.add_fact (Fact_type.make "f2" "A" "C")

let fig4a =
  fig4_base "fig4a"
  |- Mandatory (Ids.first "f1")
  |- Role_exclusion [ Single (Ids.first "f1"); Single (Ids.first "f2") ]

let fig4b =
  fig4_base "fig4b"
  |- Mandatory (Ids.first "f1")
  |- Mandatory (Ids.first "f2")
  |- Role_exclusion [ Single (Ids.first "f1"); Single (Ids.first "f2") ]

let fig4c =
  fig4_base "fig4c"
  |> Schema.add_subtype ~sub:"B'" ~super:"A"
  |> Schema.add_fact (Fact_type.make "f3" "B'" "D")
  |- Mandatory (Ids.first "f1")
  |- Role_exclusion
       [ Single (Ids.first "f1"); Single (Ids.first "f2"); Single (Ids.first "f3") ]

let fig5 =
  Schema.empty "fig5"
  |> Schema.add_fact (Fact_type.make "f1" "A" "B")
  |- Frequency (Single (Ids.first "f1"), Constraints.frequency ~max:5 3)
  |- Value_constraint ("B", Value.Constraint.of_strings [ "x1"; "x2" ])

let fig6 =
  Schema.empty "fig6"
  |> Schema.add_fact (Fact_type.make "f1" "A" "B")
  |> Schema.add_fact (Fact_type.make "f2" "A" "C")
  |- Value_constraint ("A", Value.Constraint.of_strings [ "a1"; "a2" ])
  |- Frequency (Single (Ids.second "f1"), Constraints.frequency ~max:2 2)
  |- Role_exclusion [ Single (Ids.first "f1"); Single (Ids.first "f2") ]

let fig7 =
  Schema.empty "fig7"
  |> Schema.add_fact (Fact_type.make "f1" "A" "B")
  |> Schema.add_fact (Fact_type.make "f2" "A" "C")
  |> Schema.add_fact (Fact_type.make "f3" "A" "D")
  |- Value_constraint ("A", Value.Constraint.of_strings [ "a1"; "a2" ])
  |- Role_exclusion
       [ Single (Ids.first "f1"); Single (Ids.first "f2"); Single (Ids.first "f3") ]

let fig8 =
  Schema.empty "fig8"
  |> Schema.add_fact (Fact_type.make "f1" "A" "B")
  |> Schema.add_fact (Fact_type.make "f2" "A" "B")
  |- Role_exclusion [ Single (Ids.first "f1"); Single (Ids.first "f2") ]
  |- Subset (Ids.whole_predicate "f1", Ids.whole_predicate "f2")

let fig10 =
  Schema.empty "fig10"
  |> Schema.add_fact (Fact_type.make "f1" "A" "B")
  |- Uniqueness (Single (Ids.first "f1"))
  |- Frequency (Single (Ids.first "f1"), Constraints.frequency ~max:5 2)

let fig11 =
  Schema.empty "fig11"
  |> Schema.add_fact (Fact_type.make ~reading:"is sister of" "sister_of" "Woman" "Woman")
  |- Ring (Ring.Irreflexive, "sister_of")

let fig11_incompatible =
  Schema.empty "fig11x"
  |> Schema.add_fact (Fact_type.make "r" "A" "A")
  |- Ring (Ring.Symmetric, "r")
  |- Ring (Ring.Acyclic, "r")

let fig13 =
  Schema.empty "fig13"
  |> Schema.add_subtype ~sub:"A" ~super:"B"
  |> Schema.add_subtype ~sub:"B" ~super:"C"
  |> Schema.add_subtype ~sub:"C" ~super:"A"

(* Fig. 14: B is a subtype of A; every A plays r1 or r3 (disjunctive
   mandatory); r5 (played by B) is exclusive with r3 — a violation of
   formation rule 6, yet every role can be populated. *)
let fig14 =
  Schema.empty "fig14"
  |> Schema.add_subtype ~sub:"B'" ~super:"A"
  |> Schema.add_fact (Fact_type.make "f1" "A" "B")
  |> Schema.add_fact (Fact_type.make "f2" "A" "C")
  |> Schema.add_fact (Fact_type.make "f3" "B'" "D")
  |- Disjunctive_mandatory [ Ids.first "f1"; Ids.first "f2" ]
  |- Role_exclusion [ Single (Ids.first "f2"); Single (Ids.first "f3") ]

let expectation ?(joint = []) figure schema pattern unsat_types unsat_roles =
  { figure; schema; pattern; unsat_types; unsat_roles; joint_roles = joint }

let all =
  [
    expectation "fig1" fig1 (Some 2) [ "PhDStudent" ] [];
    expectation "fig2" fig2 (Some 1) [ "C" ] [];
    expectation "fig3" fig3 (Some 2) [ "D" ] [];
    expectation "fig4a" fig4a (Some 3) [] [ Ids.first "f2" ];
    expectation "fig4b" fig4b (Some 3) [] [ Ids.first "f1"; Ids.first "f2" ];
    expectation "fig4c" fig4c (Some 3) [] [ Ids.first "f2"; Ids.first "f3" ];
    expectation "fig5" fig5 (Some 4) [] [ Ids.first "f1" ];
    expectation "fig6" fig6 (Some 5) [] []
      ~joint:[ [ Ids.first "f1"; Ids.first "f2" ] ];
    expectation "fig7" fig7 (Some 5) [] []
      ~joint:[ [ Ids.first "f1"; Ids.first "f2"; Ids.first "f3" ] ];
    (* The subset side (f1) is provably empty; the paper additionally claims
       f2, which only holds as a joint verdict. *)
    expectation "fig8" fig8 (Some 6) [] [ Ids.first "f1"; Ids.second "f1" ]
      ~joint:
        [ [ Ids.first "f1"; Ids.second "f1"; Ids.first "f2"; Ids.second "f2" ] ];
    expectation "fig10" fig10 (Some 7) [] [ Ids.first "f1" ];
    expectation "fig11" fig11 None [] [];
    expectation "fig11x" fig11_incompatible (Some 8) []
      [ Ids.first "r"; Ids.second "r" ];
    expectation "fig13" fig13 (Some 9) [ "A"; "B"; "C" ] [];
    expectation "fig14" fig14 None [] [];
  ]

let find name = List.find_opt (fun e -> e.figure = name) all
