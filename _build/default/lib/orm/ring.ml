type kind =
  | Irreflexive
  | Antisymmetric
  | Asymmetric
  | Acyclic
  | Intransitive
  | Symmetric

let all = [ Antisymmetric; Asymmetric; Acyclic; Irreflexive; Intransitive; Symmetric ]

let to_string = function
  | Irreflexive -> "irreflexive"
  | Antisymmetric -> "antisymmetric"
  | Asymmetric -> "asymmetric"
  | Acyclic -> "acyclic"
  | Intransitive -> "intransitive"
  | Symmetric -> "symmetric"

let abbrev = function
  | Irreflexive -> "ir"
  | Antisymmetric -> "ans"
  | Asymmetric -> "as"
  | Acyclic -> "ac"
  | Intransitive -> "it"
  | Symmetric -> "sym"

let of_abbrev = function
  | "ir" -> Some Irreflexive
  | "ans" -> Some Antisymmetric
  | "as" -> Some Asymmetric
  | "ac" -> Some Acyclic
  | "it" -> Some Intransitive
  | "sym" -> Some Symmetric
  | _ -> None

let pp ppf k = Format.pp_print_string ppf (to_string k)

let rank = function
  | Irreflexive -> 0
  | Antisymmetric -> 1
  | Asymmetric -> 2
  | Acyclic -> 3
  | Intransitive -> 4
  | Symmetric -> 5

let compare a b = Int.compare (rank a) (rank b)
let equal a b = rank a = rank b

module Kind_set = Set.Make (struct
  type t = kind

  let compare = compare
end)

let mem_pair rel (x, y) = List.exists (fun (a, b) -> a = x && b = y) rel

(* Cycle detection by depth-first search over the successor relation. *)
let has_cycle rel =
  let add acc v = if List.mem v acc then acc else v :: acc in
  let nodes = List.fold_left (fun acc (x, y) -> add (add acc x) y) [] rel in
  let successors x = List.filter_map (fun (a, b) -> if a = x then Some b else None) rel in
  let rec visit path visited x =
    if List.mem x path then (true, visited)
    else if List.mem x visited then (false, visited)
    else
      let path = x :: path in
      List.fold_left
        (fun (cyc, visited) y ->
          if cyc then (true, visited) else visit path visited y)
        (false, x :: visited)
        (successors x)
  in
  let cyclic, _ =
    List.fold_left
      (fun (cyc, visited) x -> if cyc then (true, visited) else visit [] visited x)
      (false, []) nodes
  in
  cyclic

let holds kind rel =
  match kind with
  | Irreflexive -> not (List.exists (fun (x, y) -> x = y) rel)
  | Antisymmetric ->
      List.for_all (fun (x, y) -> x = y || not (mem_pair rel (y, x))) rel
  | Asymmetric -> List.for_all (fun (x, y) -> not (mem_pair rel (y, x))) rel
  | Acyclic -> not (has_cycle rel)
  | Intransitive ->
      List.for_all
        (fun (x, y) ->
          List.for_all (fun (y', z) -> y' <> y || not (mem_pair rel (x, z))) rel)
        rel
  | Symmetric -> List.for_all (fun (x, y) -> mem_pair rel (y, x)) rel

let satisfies_all ks rel = Kind_set.for_all (fun k -> holds k rel) ks

(* The three canonical witnesses of the witness theorem (see the interface). *)
let canonical_witnesses = [ [ (0, 0) ]; [ (0, 1) ]; [ (0, 1); (1, 0) ] ]

let witness ks = List.find_opt (satisfies_all ks) canonical_witnesses
let compatible ks = Option.is_some (witness ks)

let implies a b =
  (* [a] implies [b] iff no relation satisfies [a] but violates [b].  By the
     same case analysis as the witness theorem, it suffices to test the three
     canonical relations plus the relations needed to separate acyclicity and
     intransitivity from asymmetry: a 2-cycle, a 3-cycle, and a transitive
     3-chain. *)
  let separating =
    canonical_witnesses
    @ [ [ (0, 1); (1, 2); (2, 0) ]; [ (0, 1); (1, 2); (0, 2) ]; [ (0, 1); (1, 2) ] ]
  in
  List.for_all (fun rel -> (not (holds a rel)) || holds b rel) separating

let all_subsets =
  let rec subsets = function
    | [] -> [ Kind_set.empty ]
    | k :: rest ->
        let without = subsets rest in
        without @ List.map (Kind_set.add k) without
  in
  subsets all

let table1 = List.map (fun ks -> (ks, compatible ks)) all_subsets

let compatible_combinations =
  List.filter_map (fun (ks, ok) -> if ok then Some ks else None) table1

let pp_set ppf ks =
  let names = List.map abbrev (Kind_set.elements ks) in
  let names = match names with [] -> [] | hd :: tl -> String.capitalize_ascii hd :: tl in
  Format.fprintf ppf "(%s)" (String.concat ", " names)
