(** The subtype graph of a schema.

    Subtyping in ORM forms a directed graph over object types ([sub -> super]
    edges); a well-formed schema has an acyclic graph, and pattern 9 detects
    the cycles.  The graph also answers the reachability queries on which
    patterns 1–3 rely (transitive supertypes and subtypes, common
    supertypes, roots). *)

type t

val empty : t

val add_edge : sub:Ids.object_type -> super:Ids.object_type -> t -> t
(** [add_edge ~sub ~super g] records that [sub] is a direct subtype of
    [super].  Duplicate edges are ignored. *)

val of_edges : (Ids.object_type * Ids.object_type) list -> t
(** [of_edges pairs] builds a graph from [(sub, super)] pairs. *)

val edges : t -> (Ids.object_type * Ids.object_type) list
(** All [(sub, super)] edges in deterministic order. *)

val direct_supertypes : t -> Ids.object_type -> Ids.object_type list
val direct_subtypes : t -> Ids.object_type -> Ids.object_type list

val supertypes : t -> Ids.object_type -> Ids.String_set.t
(** Transitive supertypes, excluding the type itself (unless it lies on a
    cycle through itself). *)

val subtypes : t -> Ids.object_type -> Ids.String_set.t
(** Transitive subtypes, excluding the type itself (unless on a cycle). *)

val supertypes_with_self : t -> Ids.object_type -> Ids.String_set.t
val subtypes_with_self : t -> Ids.object_type -> Ids.String_set.t

val is_subtype_of : t -> sub:Ids.object_type -> super:Ids.object_type -> bool
(** Reflexive-transitive: a type is a subtype of itself. *)

val related : t -> Ids.object_type -> Ids.object_type -> bool
(** [related g a b] holds iff [a] and [b] share a common supertype (or one
    is an ancestor of the other) — the ORM condition under which two object
    types are {e allowed} to overlap. *)

val cycles : t -> Ids.object_type list list
(** The non-trivial strongly connected components plus self-loops: each list
    is a set of object types forming a subtype loop (pattern 9).  Every type
    appears in at most one cycle. *)

val on_cycle : t -> Ids.object_type -> bool

val compare_height : t -> Ids.object_type -> Ids.object_type -> int
(** Orders types so that supertypes come before subtypes (topological
    order); used by the model finder.  Unrelated types compare by name. *)
