type id = string

type frequency = { min : int; max : int option }

let frequency ?max min =
  if min < 0 then invalid_arg "Constraints.frequency: negative min";
  (match max with
  | Some m when m < min -> invalid_arg "Constraints.frequency: max < min"
  | _ -> ());
  { min; max }

let pp_frequency ppf { min; max } =
  match max with
  | Some m -> Format.fprintf ppf "FC(%d-%d)" min m
  | None -> Format.fprintf ppf "FC(%d-)" min

type body =
  | Mandatory of Ids.role
  | Disjunctive_mandatory of Ids.role list
  | Uniqueness of Ids.role_seq
  | External_uniqueness of Ids.role list
  | Frequency of Ids.role_seq * frequency
  | Value_constraint of Ids.object_type * Value.Constraint.t
  | Role_exclusion of Ids.role_seq list
  | Subset of Ids.role_seq * Ids.role_seq
  | Equality of Ids.role_seq * Ids.role_seq
  | Type_exclusion of Ids.object_type list
  | Total_subtypes of Ids.object_type * Ids.object_type list
  | Ring of Ring.kind * Ids.fact_type

type t = { id : id; body : body }

let make id body = { id; body }

let pp_names ppf names =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    Format.pp_print_string ppf names

let pp_seqs ppf seqs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    Ids.pp_seq ppf seqs

let pp_roles ppf roles =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    Ids.pp_role ppf roles

let pp_body ppf = function
  | Mandatory r -> Format.fprintf ppf "mandatory %a" Ids.pp_role r
  | Disjunctive_mandatory roles ->
      Format.fprintf ppf "mandatory-or [%a]" pp_roles roles
  | Uniqueness s -> Format.fprintf ppf "unique %a" Ids.pp_seq s
  | External_uniqueness roles ->
      Format.fprintf ppf "external-unique [%a]" pp_roles roles
  | Frequency (s, f) -> Format.fprintf ppf "%a on %a" pp_frequency f Ids.pp_seq s
  | Value_constraint (ot, vs) ->
      Format.fprintf ppf "value %s %a" ot Value.Constraint.pp vs
  | Role_exclusion seqs -> Format.fprintf ppf "exclusion [%a]" pp_seqs seqs
  | Subset (sub, super) ->
      Format.fprintf ppf "subset %a <= %a" Ids.pp_seq sub Ids.pp_seq super
  | Equality (a, b) -> Format.fprintf ppf "equality %a = %a" Ids.pp_seq a Ids.pp_seq b
  | Type_exclusion ots -> Format.fprintf ppf "exclusive-types [%a]" pp_names ots
  | Total_subtypes (super, subs) ->
      Format.fprintf ppf "total %s = [%a]" super pp_names subs
  | Ring (k, fact) -> Format.fprintf ppf "ring %s on %s" (Ring.to_string k) fact

let pp ppf { id; body } = Format.fprintf ppf "%s: %a" id pp_body body

let roles_of = function
  | Mandatory r -> [ r ]
  | Disjunctive_mandatory roles -> roles
  | Uniqueness s | Frequency (s, _) -> Ids.seq_roles s
  | External_uniqueness roles -> roles
  | Value_constraint _ -> []
  | Role_exclusion seqs -> List.concat_map Ids.seq_roles seqs
  | Subset (a, b) | Equality (a, b) -> Ids.seq_roles a @ Ids.seq_roles b
  | Type_exclusion _ | Total_subtypes _ -> []
  | Ring (_, fact) -> [ Ids.first fact; Ids.second fact ]

let object_types_of = function
  | Mandatory _ | Disjunctive_mandatory _ | Uniqueness _ | External_uniqueness _
  | Frequency _ | Role_exclusion _ | Subset _ | Equality _ | Ring _ ->
      []
  | Value_constraint (ot, _) -> [ ot ]
  | Type_exclusion ots -> ots
  | Total_subtypes (super, subs) -> super :: subs

let kind_name = function
  | Mandatory _ -> "mandatory"
  | Disjunctive_mandatory _ -> "disjunctive-mandatory"
  | Uniqueness _ -> "uniqueness"
  | External_uniqueness _ -> "external-uniqueness"
  | Frequency _ -> "frequency"
  | Value_constraint _ -> "value"
  | Role_exclusion _ -> "role-exclusion"
  | Subset _ -> "subset"
  | Equality _ -> "equality"
  | Type_exclusion _ -> "type-exclusion"
  | Total_subtypes _ -> "total-subtypes"
  | Ring _ -> "ring"
