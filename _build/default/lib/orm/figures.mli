(** The paper's worked examples (Figures 1–14) as executable schemas.

    Each figure is reconstructed from the paper's description; the expected
    verdicts (which elements are unsatisfiable, and which pattern detects
    them) are recorded in {!expectations} and cross-checked by the test
    suite and the benchmark harness.  Figures 9 and 12 are diagrams about
    implications rather than schemas and are covered by the set-comparison
    and ring modules directly. *)

type expectation = {
  figure : string;  (** e.g. ["fig4b"] *)
  schema : Schema.t;
  pattern : int option;
      (** the pattern (1–9) expected to fire, [None] for negative controls *)
  unsat_types : Ids.object_type list;  (** object types that cannot be populated *)
  unsat_roles : Ids.role list;  (** roles that cannot be populated *)
  joint_roles : Ids.role list list;
      (** groups of roles that cannot all be populated in one model, though
          each may be satisfiable alone (Figs. 6–8) *)
}

val fig1 : Schema.t
(** Fig. 1: Student/Employee exclusive subtypes of Person; PhDStudent below
    both — PhDStudent unsatisfiable (pattern 2), schema weakly satisfiable. *)

val fig2 : Schema.t
(** Fig. 2: C below unrelated A and B — no top common supertype (pattern 1). *)

val fig3 : Schema.t
(** Fig. 3: D below exclusive siblings B and C (pattern 2). *)

val fig4a : Schema.t
(** Fig. 4(a): mandatory r1 exclusive with r3 — r3 unplayable (pattern 3). *)

val fig4b : Schema.t
(** Fig. 4(b): mandatory r1 and r3, mutually exclusive — both unplayable. *)

val fig4c : Schema.t
(** Fig. 4(c): exclusion spanning a subtype's role — r3 and r5 unplayable. *)

val fig5 : Schema.t
(** Fig. 5: FC(3-5) on r1 vs two-valued co-player (pattern 4). *)

val fig6 : Schema.t
(** Fig. 6: value(2) + exclusion + FC(2-) on the inverse role (pattern 5). *)

val fig7 : Schema.t
(** Fig. 7: three exclusive roles over a two-valued player (pattern 5). *)

val fig8 : Schema.t
(** Fig. 8: exclusion between r1 and r3 vs subset between the predicates
    (pattern 6). *)

val fig10 : Schema.t
(** Fig. 10: uniqueness + FC(2-5) on the same role (pattern 7). *)

val fig11 : Schema.t
(** Fig. 11: irreflexive [sister_of] — satisfiable (negative control for
    pattern 8). *)

val fig11_incompatible : Schema.t
(** A variant of Fig. 11 with an incompatible ring combination
    (symmetric + acyclic, the paper's Section 2 example) — pattern 8 fires. *)

val fig13 : Schema.t
(** Fig. 13: subtype loop A < B < C < A (pattern 9). *)

val fig14 : Schema.t
(** Fig. 14: violates formation rule 6 yet all roles satisfiable
    (negative control). *)

val all : expectation list
(** Every figure with its expected verdict, in paper order. *)

val find : string -> expectation option
(** [find "fig4b"] looks an expectation up by name. *)
