(** Identifiers for the elements of an ORM schema.

    Object types and fact types are identified by name.  A role is one of the
    two ends of a binary fact type and is identified by the fact-type name
    together with the side it occupies.  Several constraints range over
    {e role sequences}: either a single role or the whole (ordered) pair of
    roles of one predicate. *)

type object_type = string
(** Name of an object type (entity type or value type), e.g. ["Person"]. *)

type fact_type = string
(** Name of a binary fact type (predicate), e.g. ["works_for"]. *)

(** The two ends of a binary predicate. *)
type side = Fst | Snd

val other_side : side -> side
(** [other_side s] is the opposite end of the predicate. *)

val side_index : side -> int
(** [side_index s] is [1] for [Fst] and [2] for [Snd] (the paper's r1/r2
    numbering within a fact type). *)

type role = { fact : fact_type; side : side }
(** A role: one typed end of a fact type. *)

val role : fact_type -> side -> role
(** [role f s] builds the role of fact type [f] on side [s]. *)

val first : fact_type -> role
(** [first f] is the role on the first side of [f]. *)

val second : fact_type -> role
(** [second f] is the role on the second side of [f]. *)

val co_role : role -> role
(** [co_role r] is the other role of the same fact type (the paper's
    {e inverse role} of [r]). *)

(** A role sequence: the unit over which set-comparison, uniqueness and
    frequency constraints are declared.  [Pair (r1, r2)] is an ordered
    sequence of the two roles of one predicate; the invariant
    [r1.fact = r2.fact && r1.side <> r2.side] is enforced by
    {!Schema.validate}. *)
type role_seq =
  | Single of role
  | Pair of role * role

val seq_roles : role_seq -> role list
(** [seq_roles s] lists the roles of [s] in order. *)

val seq_fact : role_seq -> fact_type
(** [seq_fact s] is the fact type the sequence belongs to (for a [Single]
    role, the fact type of that role). *)

val whole_predicate : fact_type -> role_seq
(** [whole_predicate f] is the pair sequence spanning [f] in declaration
    order. *)

val compare_role : role -> role -> int
val equal_role : role -> role -> bool
val compare_seq : role_seq -> role_seq -> int
val equal_seq : role_seq -> role_seq -> bool

val pp_role : Format.formatter -> role -> unit
(** Prints a role as ["fact.1"] or ["fact.2"]. *)

val pp_seq : Format.formatter -> role_seq -> unit
(** Prints a sequence as ["fact.1"] or ["(fact.1, fact.2)"]. *)

val role_to_string : role -> string
val seq_to_string : role_seq -> string

module Role_set : Set.S with type elt = role
module Role_map : Map.S with type key = role
module Seq_set : Set.S with type elt = role_seq
module String_set : Set.S with type elt = string
module String_map : Map.S with type key = string
