module Sset = Ids.String_set
module Smap = Ids.String_map

type t = {
  supers_of : Sset.t Smap.t;  (* direct supertypes of each node *)
  subs_of : Sset.t Smap.t;  (* direct subtypes of each node *)
}

let empty = { supers_of = Smap.empty; subs_of = Smap.empty }

let add_to_map key v map =
  Smap.update key
    (function None -> Some (Sset.singleton v) | Some set -> Some (Sset.add v set))
    map

let add_edge ~sub ~super g =
  {
    supers_of = add_to_map sub super g.supers_of;
    subs_of = add_to_map super sub g.subs_of;
  }

let of_edges pairs =
  List.fold_left (fun g (sub, super) -> add_edge ~sub ~super g) empty pairs

let edges g =
  Smap.fold
    (fun sub supers acc -> Sset.fold (fun super acc -> (sub, super) :: acc) supers acc)
    g.supers_of []
  |> List.rev

let neighbours map node =
  match Smap.find_opt node map with None -> Sset.empty | Some set -> set

let direct_supertypes g node = Sset.elements (neighbours g.supers_of node)
let direct_subtypes g node = Sset.elements (neighbours g.subs_of node)

(* Transitive closure by breadth-first traversal; the start node is included
   in the result only if reachable from itself through an edge. *)
let reachable map start =
  let rec loop frontier seen =
    if Sset.is_empty frontier then seen
    else
      let next =
        Sset.fold
          (fun node acc -> Sset.union acc (neighbours map node))
          frontier Sset.empty
      in
      let fresh = Sset.diff next seen in
      loop fresh (Sset.union seen fresh)
  in
  loop (Sset.singleton start) Sset.empty

let supertypes g node = reachable g.supers_of node
let subtypes g node = reachable g.subs_of node
let supertypes_with_self g node = Sset.add node (supertypes g node)
let subtypes_with_self g node = Sset.add node (subtypes g node)

let is_subtype_of g ~sub ~super = sub = super || Sset.mem super (supertypes g sub)

let related g a b =
  not (Sset.is_empty (Sset.inter (supertypes_with_self g a) (supertypes_with_self g b)))

let on_cycle g node = Sset.mem node (supertypes g node)

let nodes g =
  Sset.union
    (Smap.fold (fun k _ acc -> Sset.add k acc) g.supers_of Sset.empty)
    (Smap.fold (fun k _ acc -> Sset.add k acc) g.subs_of Sset.empty)

let cycles g =
  (* Nodes on cycles, grouped into components of mutually reachable nodes. *)
  let cyclic = Sset.filter (on_cycle g) (nodes g) in
  let rec group remaining acc =
    match Sset.min_elt_opt remaining with
    | None -> List.rev acc
    | Some seed ->
        let component =
          Sset.inter remaining
            (Sset.add seed (Sset.inter (supertypes g seed) (subtypes g seed)))
        in
        group (Sset.diff remaining component) (Sset.elements component :: acc)
  in
  group cyclic []

let compare_height g a b =
  if a = b then 0
  else if Sset.mem a (supertypes g b) && not (Sset.mem b (supertypes g a)) then -1
  else if Sset.mem b (supertypes g a) && not (Sset.mem a (supertypes g b)) then 1
  else
    let ca = Sset.cardinal (supertypes g a) and cb = Sset.cardinal (supertypes g b) in
    if ca <> cb then Int.compare ca cb else String.compare a b
