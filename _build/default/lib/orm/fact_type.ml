type t = {
  name : Ids.fact_type;
  player1 : Ids.object_type;
  player2 : Ids.object_type;
  reading : string option;
}

let make ?reading name player1 player2 = { name; player1; player2; reading }

let player ft = function Ids.Fst -> ft.player1 | Ids.Snd -> ft.player2

let roles ft = (Ids.first ft.name, Ids.second ft.name)

let reading_text ft =
  match ft.reading with
  | Some r -> r
  | None -> String.map (function '_' -> ' ' | c -> c) ft.name

let pp ppf ft =
  Format.fprintf ppf "%s : %s -> %s" ft.name ft.player1 ft.player2
