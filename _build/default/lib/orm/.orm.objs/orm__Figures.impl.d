lib/orm/figures.ml: Constraints Fact_type Ids List Ring Schema Value
