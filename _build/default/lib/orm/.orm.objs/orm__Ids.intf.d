lib/orm/ids.mli: Format Map Set
