lib/orm/figures.mli: Ids Schema
