lib/orm/ring.ml: Format Int List Option Set String
