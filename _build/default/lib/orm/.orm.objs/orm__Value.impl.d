lib/orm/value.ml: Format Int List Set String
