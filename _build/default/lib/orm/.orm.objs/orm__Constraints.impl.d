lib/orm/constraints.ml: Format Ids List Ring Value
