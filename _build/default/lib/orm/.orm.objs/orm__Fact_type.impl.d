lib/orm/fact_type.ml: Format Ids String
