lib/orm/subtype_graph.ml: Ids Int List String
