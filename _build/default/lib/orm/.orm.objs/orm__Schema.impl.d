lib/orm/schema.ml: Constraints Fact_type Format Hashtbl Ids List Option Printf String Subtype_graph Value
