lib/orm/constraints.mli: Format Ids Ring Value
