lib/orm/value.mli: Format Set
