lib/orm/schema.mli: Constraints Fact_type Format Ids Ring Subtype_graph Value
