lib/orm/subtype_graph.mli: Ids
