lib/orm/ids.ml: Format Map Set String
