lib/orm/fact_type.mli: Format Ids
