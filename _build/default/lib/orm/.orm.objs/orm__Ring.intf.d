lib/orm/ring.mli: Format Set
