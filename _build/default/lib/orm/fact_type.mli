(** Binary fact types (predicates).

    The paper restricts itself to binary predicates; a fact type connects two
    roles, each played by an object type.  The optional verbalization is the
    pseudo-natural-language reading used by {!module:Orm_verbalize}. *)

type t = {
  name : Ids.fact_type;
  player1 : Ids.object_type;  (** player of the first role *)
  player2 : Ids.object_type;  (** player of the second role *)
  reading : string option;
      (** infix reading, e.g. ["works for"]; defaults to the fact name with
          underscores replaced by spaces *)
}

val make : ?reading:string -> Ids.fact_type -> Ids.object_type -> Ids.object_type -> t

val player : t -> Ids.side -> Ids.object_type
(** [player ft side] is the object type playing the role on [side]. *)

val roles : t -> Ids.role * Ids.role
val reading_text : t -> string
val pp : Format.formatter -> t -> unit
