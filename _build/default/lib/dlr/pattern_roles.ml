let singles seqs =
  let extract = function Orm.Ids.Single r -> Some r | Orm.Ids.Pair _ -> None in
  let roles = List.filter_map extract seqs in
  if List.length roles = List.length seqs then Some roles else None
