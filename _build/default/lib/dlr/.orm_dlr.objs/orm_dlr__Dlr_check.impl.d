lib/dlr/dlr_check.ml: Format Ids List Mapping Orm Schema Tableau
