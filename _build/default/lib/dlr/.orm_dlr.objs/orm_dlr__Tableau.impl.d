lib/dlr/tableau.ml: Format Int List Map Option Syntax
