lib/dlr/syntax.ml: Format List
