lib/dlr/tableau.mli: Format Syntax
