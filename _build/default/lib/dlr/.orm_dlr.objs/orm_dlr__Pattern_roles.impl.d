lib/dlr/pattern_roles.ml: List Orm
