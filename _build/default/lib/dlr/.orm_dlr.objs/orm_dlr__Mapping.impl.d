lib/dlr/mapping.ml: Constraints Fact_type Format Ids List Orm Pattern_roles Schema String Subtype_graph Syntax
