lib/dlr/classify.ml: Format Ids List Mapping Orm Schema Subtype_graph Syntax Tableau
