lib/dlr/pattern_roles.mli: Orm
