lib/dlr/dlr_check.mli: Format Ids Mapping Orm Schema Tableau
