lib/dlr/classify.mli: Format Ids Orm Schema Syntax
