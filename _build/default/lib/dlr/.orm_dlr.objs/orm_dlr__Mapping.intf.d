lib/dlr/mapping.mli: Constraints Format Ids Orm Schema Syntax
