lib/dlr/syntax.mli: Format
