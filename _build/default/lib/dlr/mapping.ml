open Orm
open Syntax

type t = {
  tbox : Syntax.tbox;
  skipped : (Constraints.id * string) list;
}

let concept_of_type ot = Atomic ot

let dl_role (r : Ids.role) =
  match r.side with Ids.Fst -> role r.fact | Ids.Snd -> inv (role r.fact)

let plays r = Exists (dl_role r, Top)

let typing_axioms (ft : Fact_type.t) =
  [
    (* Domain and range of the predicate. *)
    Subsumes (Exists (role ft.name, Top), concept_of_type ft.player1);
    Subsumes (Exists (inv (role ft.name), Top), concept_of_type ft.player2);
  ]

let subtype_axioms graph =
  List.map
    (fun (sub, super) -> Subsumes (concept_of_type sub, concept_of_type super))
    (Subtype_graph.edges graph)

(* ORM's implicit mutual exclusion: types sharing no common supertype are
   disjoint by definition.  Emitting it for top-level (root) types suffices:
   disjointness is inherited downward through the subtype axioms. *)
let implicit_disjointness schema =
  let g = Schema.graph schema in
  let roots =
    List.filter
      (fun t -> Subtype_graph.direct_supertypes g t = [])
      (Schema.object_types schema)
  in
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
  in
  List.filter_map
    (fun (a, b) ->
      if Subtype_graph.related g a b then None
      else Some (Subsumes (And [ concept_of_type a; concept_of_type b ], Bottom)))
    (pairs roots)

let skip id reason = Error (id, reason)

let constraint_axioms schema (c : Constraints.t) =
  match c.body with
  | Mandatory r -> (
      match Schema.player schema r with
      | Some p -> Ok [ Subsumes (concept_of_type p, plays r) ]
      | None -> skip c.id "role has no declared fact type")
  | Disjunctive_mandatory roles -> (
      let players = List.filter_map (Schema.player schema) roles in
      match List.sort_uniq String.compare players with
      | [ p ] -> Ok [ Subsumes (concept_of_type p, disj (List.map plays roles)) ]
      | _ -> skip c.id "disjunctive mandatory over roles with different players")
  | Uniqueness (Single r) -> (
      match Schema.player schema r with
      | Some p -> Ok [ Subsumes (concept_of_type p, At_most (1, dl_role r)) ]
      | None -> skip c.id "role has no declared fact type")
  | Uniqueness (Pair _) ->
      (* Spanning uniqueness is implied by set semantics; no axiom needed. *)
      Ok []
  | External_uniqueness _ ->
      skip c.id "external uniqueness needs role composition, outside the fragment"
  | Frequency (Single r, { min; max }) ->
      let bounds =
        At_least (min, dl_role r)
        :: (match max with Some m -> [ At_most (m, dl_role r) ] | None -> [])
      in
      Ok [ Subsumes (plays r, conj bounds) ]
  | Frequency (Pair _, _) ->
      skip c.id "frequency over a whole predicate is outside DLR (footnote 10)"
  | Value_constraint _ ->
      skip c.id "value constraints need nominals, outside the mapped fragment"
  | Role_exclusion seqs -> (
      match Pattern_roles.singles seqs with
      | Some roles ->
          let rec pairs = function
            | [] -> []
            | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
          in
          Ok
            (List.map
               (fun (a, b) -> Subsumes (And [ plays a; plays b ], Bottom))
               (pairs roles))
      | None -> skip c.id "exclusion between whole predicates needs role disjointness")
  | Subset (Single a, Single b) -> Ok [ Subsumes (plays a, plays b) ]
  | Subset (Pair (a1, _), Pair (b1, _)) ->
      Ok [ Role_subsumes (role a1.fact, role b1.fact) ]
  | Subset _ -> skip c.id "subset between sequences of different arity"
  | Equality (Single a, Single b) ->
      Ok [ Subsumes (plays a, plays b); Subsumes (plays b, plays a) ]
  | Equality (Pair (a1, _), Pair (b1, _)) ->
      Ok
        [
          Role_subsumes (role a1.fact, role b1.fact);
          Role_subsumes (role b1.fact, role a1.fact);
        ]
  | Equality _ -> skip c.id "equality between sequences of different arity"
  | Type_exclusion ots ->
      let rec pairs = function
        | [] -> []
        | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
      in
      Ok
        (List.map
           (fun (a, b) ->
             Subsumes (And [ concept_of_type a; concept_of_type b ], Bottom))
           (pairs ots))
  | Total_subtypes (super, subs) ->
      Ok [ Subsumes (concept_of_type super, disj (List.map concept_of_type subs)) ]
  | Ring _ ->
      skip c.id "ring constraints are outside DLR (paper footnote 10)"

let translate schema =
  let base =
    List.concat_map typing_axioms (Schema.fact_types schema)
    @ subtype_axioms (Schema.graph schema)
    @ implicit_disjointness schema
  in
  let tbox, skipped =
    List.fold_left
      (fun (axioms, skipped) c ->
        match constraint_axioms schema c with
        | Ok axs -> (axioms @ axs, skipped)
        | Error sk -> (axioms, sk :: skipped))
      (base, []) (Schema.constraints schema)
  in
  { tbox; skipped = List.rev skipped }

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]" Syntax.pp_tbox t.tbox;
  match t.skipped with
  | [] -> ()
  | sk ->
      Format.fprintf ppf "@.@[<v>not translated:@,%a@]"
        (Format.pp_print_list (fun ppf (id, why) ->
             Format.fprintf ppf "  %s: %s" id why))
        sk
