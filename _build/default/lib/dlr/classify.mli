(** Classification over the translated knowledge base.

    Beyond satisfiability, a DL reasoner derives the {e subsumption}
    hierarchy: [C ⊑ D] holds iff [C ⊓ ¬D] is unsatisfiable w.r.t. the
    TBox.  Classifying the translation of an ORM schema surfaces implied
    subtype links the modeler never declared — the second classical service
    the paper's complete-procedure route (Section 4) buys on top of the
    patterns. *)

open Orm

type answer = Yes | No | Unknown

val pp_answer : Format.formatter -> answer -> unit

val subsumes :
  ?budget:int -> Syntax.tbox -> sub:Syntax.concept -> super:Syntax.concept -> answer
(** [subsumes tbox ~sub ~super] decides [sub ⊑ super] by refutation. *)

type link = {
  sub : Ids.object_type;
  super : Ids.object_type;
  declared : bool;  (** already a (transitive) subtype edge in the schema *)
}

val classify : ?budget:int -> Schema.t -> link list
(** All object-type pairs with [sub ⊑ super] derivable from the
    translation, excluding reflexive pairs and pairs involving a type whose
    concept is unsatisfiable (an empty concept is vacuously below
    everything, which would flood the result).  [declared] distinguishes
    derived-and-declared from genuinely implied links. *)

val implied_links : ?budget:int -> Schema.t -> link list
(** The derived-but-undeclared subset of {!classify} — the interesting
    output for a modeler. *)
