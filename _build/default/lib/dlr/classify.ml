open Orm

type answer = Yes | No | Unknown

let pp_answer ppf = function
  | Yes -> Format.pp_print_string ppf "yes"
  | No -> Format.pp_print_string ppf "no"
  | Unknown -> Format.pp_print_string ppf "unknown"

let subsumes ?budget tbox ~sub ~super =
  match Tableau.satisfiable ?budget tbox (Syntax.And [ sub; Syntax.Not super ]) with
  | Tableau.Unsat -> Yes
  | Tableau.Sat -> No
  | Tableau.Unknown -> Unknown

type link = {
  sub : Ids.object_type;
  super : Ids.object_type;
  declared : bool;
}

let classify ?budget schema =
  let mapping = Mapping.translate schema in
  let g = Schema.graph schema in
  let types = Schema.object_types schema in
  let satisfiable t =
    Tableau.satisfiable ?budget mapping.tbox (Mapping.concept_of_type t) = Tableau.Sat
  in
  let live = List.filter satisfiable types in
  List.concat_map
    (fun sub ->
      List.filter_map
        (fun super ->
          if sub = super then None
          else
            match
              subsumes ?budget mapping.tbox ~sub:(Mapping.concept_of_type sub)
                ~super:(Mapping.concept_of_type super)
            with
            | Yes ->
                Some
                  { sub; super; declared = Subtype_graph.is_subtype_of g ~sub ~super }
            | No | Unknown -> None)
        live)
    live

let implied_links ?budget schema =
  List.filter (fun l -> not l.declared) (classify ?budget schema)
