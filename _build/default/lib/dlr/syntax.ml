type role = { rname : string; inverted : bool }

let role rname = { rname; inverted = false }
let inv r = { r with inverted = not r.inverted }
let equal_role (a : role) (b : role) = a = b

let pp_role ppf r =
  if r.inverted then Format.fprintf ppf "%s⁻" r.rname
  else Format.pp_print_string ppf r.rname

type concept =
  | Top
  | Bottom
  | Atomic of string
  | Not of concept
  | And of concept list
  | Or of concept list
  | Exists of role * concept
  | Forall of role * concept
  | At_least of int * role
  | At_most of int * role

let rec pp_concept ppf = function
  | Top -> Format.pp_print_string ppf "⊤"
  | Bottom -> Format.pp_print_string ppf "⊥"
  | Atomic a -> Format.pp_print_string ppf a
  | Not c -> Format.fprintf ppf "¬%a" pp_atomish c
  | And cs -> pp_nary ppf " ⊓ " cs
  | Or cs -> pp_nary ppf " ⊔ " cs
  | Exists (r, c) -> Format.fprintf ppf "∃%a.%a" pp_role r pp_atomish c
  | Forall (r, c) -> Format.fprintf ppf "∀%a.%a" pp_role r pp_atomish c
  | At_least (n, r) -> Format.fprintf ppf "≥%d %a" n pp_role r
  | At_most (n, r) -> Format.fprintf ppf "≤%d %a" n pp_role r

and pp_atomish ppf c =
  match c with
  | Top | Bottom | Atomic _ | Not _ | Exists _ | Forall _ | At_least _ | At_most _ ->
      pp_concept ppf c
  | And _ | Or _ -> Format.fprintf ppf "(%a)" pp_concept c

and pp_nary ppf sep = function
  | [] -> Format.pp_print_string ppf "⊤"
  | [ c ] -> pp_concept ppf c
  | c :: rest ->
      pp_atomish ppf c;
      List.iter (fun d -> Format.fprintf ppf "%s%a" sep pp_atomish d) rest

let concept_to_string c = Format.asprintf "%a" pp_concept c

type axiom =
  | Subsumes of concept * concept
  | Role_subsumes of role * role

let pp_axiom ppf = function
  | Subsumes (c, d) -> Format.fprintf ppf "%a ⊑ %a" pp_concept c pp_concept d
  | Role_subsumes (r, s) -> Format.fprintf ppf "%a ⊑ %a" pp_role r pp_role s

type tbox = axiom list

let pp_tbox ppf tbox =
  Format.fprintf ppf "@[<v>%a@]" (Format.pp_print_list pp_axiom) tbox

let conj = function [] -> Top | [ c ] -> c | cs -> And cs
let disj = function [] -> Bottom | [ c ] -> c | cs -> Or cs

let rec nnf = function
  | (Top | Bottom | Atomic _ | At_least _ | At_most _) as c -> c
  | And cs -> And (List.map nnf cs)
  | Or cs -> Or (List.map nnf cs)
  | Exists (r, c) -> Exists (r, nnf c)
  | Forall (r, c) -> Forall (r, nnf c)
  | Not c -> neg_nnf c

and neg_nnf = function
  | Top -> Bottom
  | Bottom -> Top
  | Atomic a -> Not (Atomic a)
  | Not c -> nnf c
  | And cs -> Or (List.map neg_nnf cs)
  | Or cs -> And (List.map neg_nnf cs)
  | Exists (r, c) -> Forall (r, neg_nnf c)
  | Forall (r, c) -> Exists (r, neg_nnf c)
  | At_least (n, r) -> if n = 0 then Bottom else At_most (n - 1, r)
  | At_most (n, r) -> At_least (n + 1, r)

let neg c = neg_nnf c

let compare_concept (a : concept) (b : concept) = compare a b
