(** Description-logic syntax for the target of the ORM → DLR mapping.

    The fragment is ALCIN with role inclusions: atomic concepts, boolean
    connectives, existential/universal restrictions, unqualified number
    restrictions, and inverse roles — the portion of DLR the paper's [JF05]
    mapping actually exercises for the binary-fact-type fragment of ORM. *)

(** A (possibly inverted) atomic role.  In the binary encoding every ORM
    fact type [f : A -> B] becomes the atomic role [f], read from the first
    player to the second; [f⁻] reads backwards. *)
type role = { rname : string; inverted : bool }

val role : string -> role
val inv : role -> role
val equal_role : role -> role -> bool
val pp_role : Format.formatter -> role -> unit

type concept =
  | Top
  | Bottom
  | Atomic of string
  | Not of concept
  | And of concept list
  | Or of concept list
  | Exists of role * concept  (** ∃R.C *)
  | Forall of role * concept  (** ∀R.C *)
  | At_least of int * role  (** ≥n R (unqualified) *)
  | At_most of int * role  (** ≤n R (unqualified) *)

val pp_concept : Format.formatter -> concept -> unit
val concept_to_string : concept -> string

(** TBox axioms: general concept inclusions and role inclusions. *)
type axiom =
  | Subsumes of concept * concept  (** [Subsumes (c, d)]: c ⊑ d *)
  | Role_subsumes of role * role  (** r ⊑ s *)

val pp_axiom : Format.formatter -> axiom -> unit

type tbox = axiom list

val pp_tbox : Format.formatter -> tbox -> unit

val nnf : concept -> concept
(** Negation normal form. *)

val neg : concept -> concept
(** [neg c] is the NNF of [Not c]. *)

val conj : concept list -> concept
(** Flattening conjunction ([And []] is [Top]). *)

val disj : concept list -> concept

val compare_concept : concept -> concept -> int
