(** The ORM → DLR mapping of [JF05] for the paper's binary fragment.

    Each object type becomes an atomic concept, each fact type an atomic
    role typed by domain/range axioms, and each constraint a TBox axiom
    where the fragment allows.  The constructs the paper's footnote 10
    excludes from the mapping — ring constraints, value constraints
    (nominals), and exclusion/uniqueness over whole predicates (role
    disjointness) — are reported in [skipped] rather than silently dropped,
    so callers know the DL route is advisory for those schemas. *)

open Orm

type t = {
  tbox : Syntax.tbox;
  skipped : (Constraints.id * string) list;
      (** untranslatable constraint occurrences with the reason *)
}

val translate : Schema.t -> t
(** The full knowledge base: typing axioms, subtype axioms, implicit
    disjointness of unrelated top-level types (ORM's default mutual
    exclusion), and one axiom per translatable constraint. *)

val concept_of_type : Ids.object_type -> Syntax.concept
val plays : Ids.role -> Syntax.concept
(** [plays r] is the concept of objects playing role [r]:
    [∃f.⊤] for a first role, [∃f⁻.⊤] for a second. *)

val dl_role : Ids.role -> Syntax.role
(** The DL role reading {e away} from the given end: first role ↦ [f],
    second ↦ [f⁻]. *)

val pp : Format.formatter -> t -> unit
