(** Local helper: extract single roles from a sequence list. *)

val singles : Orm.Ids.role_seq list -> Orm.Ids.role list option
(** [Some roles] when every sequence is a single role, [None] otherwise. *)
