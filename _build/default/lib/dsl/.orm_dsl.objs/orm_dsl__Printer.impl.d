lib/dsl/printer.ml: Buffer Constraints Fact_type Format Ids List Orm Out_channel Printf Ring Schema String Subtype_graph Value
