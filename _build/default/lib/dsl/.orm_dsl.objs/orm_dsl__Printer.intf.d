lib/dsl/printer.mli: Format Orm
