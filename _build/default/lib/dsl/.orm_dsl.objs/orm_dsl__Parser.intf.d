lib/dsl/parser.mli: Orm
