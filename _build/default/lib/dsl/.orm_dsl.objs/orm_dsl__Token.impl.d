lib/dsl/token.ml: Printf
