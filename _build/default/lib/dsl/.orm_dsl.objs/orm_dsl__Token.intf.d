lib/dsl/token.mli:
