lib/dsl/parser.ml: Array Constraints Fact_type Format Ids In_channel Lexer List Orm Printf Result Ring Schema Token Value
