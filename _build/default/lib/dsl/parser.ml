open Orm

exception Error of string * int * int

type stream = { tokens : Token.located array; mutable index : int }

let current st = st.tokens.(st.index)

let fail_at (tok : Token.located) fmt =
  Format.kasprintf (fun msg -> raise (Error (msg, tok.line, tok.col))) fmt

let advance st = if st.index < Array.length st.tokens - 1 then st.index <- st.index + 1

let expect st expected =
  let tok = current st in
  if tok.token = expected then advance st
  else fail_at tok "expected %s but found %s" (Token.describe expected)
      (Token.describe tok.token)

let ident st =
  let tok = current st in
  match tok.token with
  | Token.Ident name ->
      advance st;
      name
  | other -> fail_at tok "expected an identifier but found %s" (Token.describe other)

let int st =
  let tok = current st in
  match tok.token with
  | Token.Int n ->
      advance st;
      n
  | other -> fail_at tok "expected an integer but found %s" (Token.describe other)

let comma_list st parse_item =
  let rec loop acc =
    let item = parse_item st in
    if (current st).token = Token.Comma then begin
      advance st;
      loop (item :: acc)
    end
    else List.rev (item :: acc)
  in
  loop []

let role st =
  let tok = current st in
  let fact = ident st in
  expect st Token.Dot;
  match int st with
  | 1 -> Ids.first fact
  | 2 -> Ids.second fact
  | n -> fail_at tok "role index must be 1 or 2, found %d" n

let seq st =
  if (current st).token = Token.Lparen then begin
    advance st;
    let r1 = role st in
    expect st Token.Comma;
    let r2 = role st in
    expect st Token.Rparen;
    Ids.Pair (r1, r2)
  end
  else Ids.Single (role st)

let value st =
  let tok = current st in
  match tok.token with
  | Token.String s ->
      advance st;
      Value.str s
  | Token.Int n ->
      advance st;
      Value.int n
  | other -> fail_at tok "expected a value but found %s" (Token.describe other)

let value_set st =
  expect st Token.Lbrace;
  let set =
    match ((current st).token, st.tokens.(st.index + 1).token) with
    | Token.Int lo, Token.Range ->
        advance st;
        advance st;
        let hi = int st in
        Value.Constraint.of_range lo hi
    | _ -> Value.Constraint.of_list (comma_list st value)
  in
  expect st Token.Rbrace;
  set

let frequency st =
  let tok = current st in
  let min = int st in
  expect st Token.Range;
  let max =
    match (current st).token with
    | Token.Int m ->
        advance st;
        Some m
    | _ -> None
  in
  match Constraints.frequency ?max min with
  | f -> f
  | exception Invalid_argument msg -> fail_at tok "%s" msg

let constraint_body st keyword =
  match keyword with
  | "mandatory" -> Constraints.Mandatory (role st)
  | "mandatory_or" -> Constraints.Disjunctive_mandatory (comma_list st role)
  | "unique" -> Constraints.Uniqueness (seq st)
  | "external_unique" -> Constraints.External_uniqueness (comma_list st role)
  | "frequency" ->
      let s = seq st in
      Constraints.Frequency (s, frequency st)
  | "value" ->
      let ot = ident st in
      Constraints.Value_constraint (ot, value_set st)
  | "exclusion" -> Constraints.Role_exclusion (comma_list st seq)
  | "subset" ->
      let sub = seq st in
      expect st Token.Subset_op;
      Constraints.Subset (sub, seq st)
  | "equal" ->
      let a = seq st in
      expect st Token.Equals;
      Constraints.Equality (a, seq st)
  | "exclusive_types" -> Constraints.Type_exclusion (comma_list st ident)
  | "total" ->
      let super = ident st in
      expect st Token.Equals;
      Constraints.Total_subtypes (super, comma_list st ident)
  | "ring" -> (
      let tok = current st in
      let kind_name = ident st in
      match Ring.of_abbrev kind_name with
      | Some kind -> Constraints.Ring (kind, ident st)
      | None ->
          fail_at tok "unknown ring constraint '%s' (expected ir, ans, as, ac, it or sym)"
            kind_name)
  | other ->
      fail_at (current st) "unknown statement '%s'" other

let statement st schema =
  let tok = current st in
  match tok.token with
  | Token.Ident "object_type" ->
      advance st;
      let name = ident st in
      if (current st).token = Token.Ident "subtype_of" then begin
        advance st;
        let supers = comma_list st ident in
        List.fold_left (fun s super -> Schema.add_subtype ~sub:name ~super s) schema supers
      end
      else Schema.add_object_type name schema
  | Token.Ident "fact" ->
      advance st;
      let name = ident st in
      expect st Token.Lparen;
      let player1 = ident st in
      expect st Token.Comma;
      let player2 = ident st in
      expect st Token.Rparen;
      let reading =
        if (current st).token = Token.Ident "reading" then begin
          advance st;
          match (current st).token with
          | Token.String s ->
              advance st;
              Some s
          | other ->
              fail_at (current st) "expected a string after 'reading', found %s"
                (Token.describe other)
        end
        else None
      in
      Schema.add_fact (Fact_type.make ?reading name player1 player2) schema
  | Token.Lbracket ->
      advance st;
      let id = ident st in
      expect st Token.Rbracket;
      let keyword = ident st in
      Schema.add_constraint (Constraints.make id (constraint_body st keyword)) schema
  | Token.Ident keyword ->
      advance st;
      Schema.add (constraint_body st keyword) schema
  | other -> fail_at tok "expected a statement but found %s" (Token.describe other)

let parse_exn src =
  let tokens = Array.of_list (Lexer.tokenize src) in
  let st = { tokens; index = 0 } in
  (match (current st).token with
  | Token.Ident "schema" -> advance st
  | other -> fail_at (current st) "a schema must start with 'schema <name>', found %s"
        (Token.describe other));
  let name = ident st in
  let rec loop schema =
    if (current st).token = Token.Eof then schema else loop (statement st schema)
  in
  loop (Schema.empty name)

let parse src =
  match parse_exn src with
  | schema -> Ok schema
  | exception Error (msg, line, col) ->
      Result.Error (Printf.sprintf "line %d, column %d: %s" line col msg)
  | exception Lexer.Error (msg, line, col) ->
      Result.Error (Printf.sprintf "line %d, column %d: %s" line col msg)

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | src -> parse src
  | exception Sys_error msg -> Result.Error msg
