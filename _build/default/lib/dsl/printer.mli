(** Printer for the textual schema language; inverse of {!Parser}.

    [Parser.parse_exn (to_string s)] reconstructs a schema with the same
    object types, subtype edges, fact types and constraint occurrences —
    the round-trip property checked by the test suite. *)

val to_string : Orm.Schema.t -> string
val pp : Format.formatter -> Orm.Schema.t -> unit
val write_file : string -> Orm.Schema.t -> unit
