type t =
  | Ident of string
  | Int of int
  | String of string
  | Dot
  | Comma
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Subset_op
  | Equals
  | Range
  | Eof

type located = { token : t; line : int; col : int }

let describe = function
  | Ident s -> Printf.sprintf "identifier '%s'" s
  | Int n -> Printf.sprintf "integer %d" n
  | String s -> Printf.sprintf "string %S" s
  | Dot -> "'.'"
  | Comma -> "','"
  | Lparen -> "'('"
  | Rparen -> "')'"
  | Lbrace -> "'{'"
  | Rbrace -> "'}'"
  | Lbracket -> "'['"
  | Rbracket -> "']'"
  | Subset_op -> "'<='"
  | Equals -> "'='"
  | Range -> "'..'"
  | Eof -> "end of input"
