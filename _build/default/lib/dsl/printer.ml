open Orm

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let role_str (r : Ids.role) = Printf.sprintf "%s.%d" r.fact (Ids.side_index r.side)

let seq_str = function
  | Ids.Single r -> role_str r
  | Ids.Pair (r1, r2) -> Printf.sprintf "(%s, %s)" (role_str r1) (role_str r2)

let value_str = function
  | Value.Str s -> Printf.sprintf "\"%s\"" (escape s)
  | Value.Int n -> string_of_int n

let freq_str (f : Constraints.frequency) =
  match f.max with
  | Some m -> Printf.sprintf "%d..%d" f.min m
  | None -> Printf.sprintf "%d.." f.min

let body_str = function
  | Constraints.Mandatory r -> "mandatory " ^ role_str r
  | Constraints.Disjunctive_mandatory roles ->
      "mandatory_or " ^ String.concat ", " (List.map role_str roles)
  | Constraints.Uniqueness seq -> "unique " ^ seq_str seq
  | Constraints.External_uniqueness roles ->
      "external_unique " ^ String.concat ", " (List.map role_str roles)
  | Constraints.Frequency (seq, f) ->
      Printf.sprintf "frequency %s %s" (seq_str seq) (freq_str f)
  | Constraints.Value_constraint (ot, vs) ->
      Printf.sprintf "value %s {%s}" ot
        (String.concat ", " (List.map value_str (Value.Constraint.elements vs)))
  | Constraints.Role_exclusion seqs ->
      "exclusion " ^ String.concat ", " (List.map seq_str seqs)
  | Constraints.Subset (sub, super) ->
      Printf.sprintf "subset %s <= %s" (seq_str sub) (seq_str super)
  | Constraints.Equality (a, b) ->
      Printf.sprintf "equal %s = %s" (seq_str a) (seq_str b)
  | Constraints.Type_exclusion ots -> "exclusive_types " ^ String.concat ", " ots
  | Constraints.Total_subtypes (super, subs) ->
      Printf.sprintf "total %s = %s" super (String.concat ", " subs)
  | Constraints.Ring (kind, fact) ->
      Printf.sprintf "ring %s %s" (Ring.abbrev kind) fact

let to_string schema =
  let buf = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "schema %s" (Schema.name schema);
  let graph = Schema.graph schema in
  List.iter
    (fun ot ->
      match Subtype_graph.direct_supertypes graph ot with
      | [] -> line "object_type %s" ot
      | supers -> line "object_type %s subtype_of %s" ot (String.concat ", " supers))
    (Schema.object_types schema);
  List.iter
    (fun (ft : Fact_type.t) ->
      match ft.reading with
      | None -> line "fact %s (%s, %s)" ft.name ft.player1 ft.player2
      | Some r ->
          line "fact %s (%s, %s) reading \"%s\"" ft.name ft.player1 ft.player2
            (escape r))
    (Schema.fact_types schema);
  List.iter
    (fun (c : Constraints.t) -> line "[%s] %s" c.id (body_str c.body))
    (Schema.constraints schema);
  Buffer.contents buf

let pp ppf schema = Format.pp_print_string ppf (to_string schema)

let write_file path schema =
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (to_string schema))
