(** Hand-written lexer for the schema language.

    Identifiers are ASCII letters, digits, underscores and primes, starting
    with a letter or underscore; integers are decimal (a leading minus is
    accepted); strings are double-quoted with backslash escapes for the
    quote and the backslash.  Comments run from [#] or [//] to end of
    line. *)

exception Error of string * int * int  (** message, line, column *)

val tokenize : string -> Token.located list
(** The token stream, ending with {!Token.Eof}.
    @raise Error on an illegal character or unterminated string. *)
