(** Tokens of the textual ORM schema language. *)

type t =
  | Ident of string  (** bare identifier: object/fact/constraint names *)
  | Int of int
  | String of string  (** double-quoted literal *)
  | Dot
  | Comma
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Subset_op  (** [<=] *)
  | Equals  (** [=] *)
  | Range  (** [..] *)
  | Eof

type located = { token : t; line : int; col : int }

val describe : t -> string
(** Human-readable token name for error messages. *)
