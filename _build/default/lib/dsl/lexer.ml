exception Error of string * int * int

type cursor = { src : string; mutable pos : int; mutable line : int; mutable col : int }

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let peek2 cur =
  if cur.pos + 1 < String.length cur.src then Some cur.src.[cur.pos + 1] else None

let advance cur =
  (match peek cur with
  | Some '\n' ->
      cur.line <- cur.line + 1;
      cur.col <- 1
  | Some _ -> cur.col <- cur.col + 1
  | None -> ());
  cur.pos <- cur.pos + 1

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_digit c = c >= '0' && c <= '9'

let lex_ident cur =
  let start = cur.pos in
  while (match peek cur with Some c -> is_ident_char c | None -> false) do
    advance cur
  done;
  String.sub cur.src start (cur.pos - start)

let lex_int cur =
  let start = cur.pos in
  if peek cur = Some '-' then advance cur;
  while (match peek cur with Some c -> is_digit c | None -> false) do
    advance cur
  done;
  int_of_string (String.sub cur.src start (cur.pos - start))

let lex_string cur =
  let line = cur.line and col = cur.col in
  advance cur (* opening quote *);
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> raise (Error ("unterminated string literal", line, col))
    | Some '"' -> advance cur
    | Some '\\' -> (
        advance cur;
        match peek cur with
        | Some (('"' | '\\') as c) ->
            Buffer.add_char buf c;
            advance cur;
            loop ()
        | Some c -> raise (Error (Printf.sprintf "unknown escape '\\%c'" c, cur.line, cur.col))
        | None -> raise (Error ("unterminated string literal", line, col)))
    | Some c ->
        Buffer.add_char buf c;
        advance cur;
        loop ()
  in
  loop ();
  Buffer.contents buf

let skip_line cur =
  while (match peek cur with Some c -> c <> '\n' | None -> false) do
    advance cur
  done

let tokenize src =
  let cur = { src; pos = 0; line = 1; col = 1 } in
  let tokens = ref [] in
  let emit token line col = tokens := { Token.token; line; col } :: !tokens in
  let rec loop () =
    match peek cur with
    | None -> ()
    | Some c ->
        let line = cur.line and col = cur.col in
        (match c with
        | ' ' | '\t' | '\r' | '\n' -> advance cur
        | '#' -> skip_line cur
        | '/' when peek2 cur = Some '/' -> skip_line cur
        | '"' -> emit (String (lex_string cur)) line col
        | '.' when peek2 cur = Some '.' ->
            advance cur;
            advance cur;
            emit Range line col
        | '.' ->
            advance cur;
            emit Dot line col
        | ',' ->
            advance cur;
            emit Comma line col
        | '(' ->
            advance cur;
            emit Lparen line col
        | ')' ->
            advance cur;
            emit Rparen line col
        | '{' ->
            advance cur;
            emit Lbrace line col
        | '}' ->
            advance cur;
            emit Rbrace line col
        | '[' ->
            advance cur;
            emit Lbracket line col
        | ']' ->
            advance cur;
            emit Rbracket line col
        | '<' when peek2 cur = Some '=' ->
            advance cur;
            advance cur;
            emit Subset_op line col
        | '=' ->
            advance cur;
            emit Equals line col
        | '-' when (match peek2 cur with Some d -> is_digit d | None -> false) ->
            emit (Int (lex_int cur)) line col
        | c when is_digit c -> emit (Int (lex_int cur)) line col
        | c when is_ident_start c -> emit (Ident (lex_ident cur)) line col
        | c -> raise (Error (Printf.sprintf "illegal character '%c'" c, line, col)));
        loop ()
  in
  loop ();
  emit Eof cur.line cur.col;
  List.rev !tokens
