(** Recursive-descent parser for the textual ORM schema language.

    Grammar (comments run to end of line with [#] or [//]):
    {v
    schema      ::= "schema" IDENT stmt*
    stmt        ::= "object_type" IDENT ("subtype_of" idents)?
                  | "fact" IDENT "(" IDENT "," IDENT ")" ("reading" STRING)?
                  | ("[" IDENT "]")? constraint      -- optional explicit id
    constraint  ::= "mandatory" role
                  | "mandatory_or" roles
                  | "unique" seq
                  | "external_unique" roles
                  | "frequency" seq INT ".." INT?
                  | "value" IDENT "{" values "}"
                  | "exclusion" seqs
                  | "subset" seq "<=" seq
                  | "equal" seq "=" seq
                  | "exclusive_types" idents
                  | "total" IDENT "=" idents
                  | "ring" KIND IDENT                -- KIND in ir|ans|as|ac|it|sym
    role        ::= IDENT "." INT                    -- fact.1 or fact.2
    seq         ::= role | "(" role "," role ")"
    values      ::= (STRING|INT) ("," (STRING|INT))* | INT ".." INT
    v} *)

exception Error of string * int * int  (** message, line, column *)

val parse : string -> (Orm.Schema.t, string) result
(** Parses a schema from source text; the error string carries the
    location. *)

val parse_exn : string -> Orm.Schema.t
(** @raise Error on syntax errors. *)

val parse_file : string -> (Orm.Schema.t, string) result
(** Reads and parses a [.orm] file. *)
