open Orm

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let type_node t = Printf.sprintf "ot_%s" t
let fact_node f = Printf.sprintf "ft_%s" f
let constraint_node id = Printf.sprintf "c_%s" id

let to_string ?report schema =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf ("  " ^ s ^ "\n")) fmt in
  let unsat_types, unsat_roles =
    match report with
    | None -> (Ids.String_set.empty, Ids.Role_set.empty)
    | Some (r : Orm_patterns.Engine.report) -> (r.unsat_types, r.unsat_roles)
  in
  Buffer.add_string buf
    (Printf.sprintf "digraph \"%s\" {\n" (escape (Schema.name schema)));
  line "rankdir=BT;";
  line "node [fontname=\"Helvetica\", fontsize=11];";
  (* Object types. *)
  List.iter
    (fun t ->
      let value_label =
        match Schema.value_constraint schema t with
        | Some (_, vs) -> Printf.sprintf "\\n%s" (escape (Format.asprintf "%a" Value.Constraint.pp vs))
        | None -> ""
      in
      let color =
        if Ids.String_set.mem t unsat_types then ", color=red, fontcolor=red" else ""
      in
      let peripheries =
        if Schema.value_constraint schema t <> None then ", peripheries=2" else ""
      in
      line "%s [label=\"%s%s\", shape=ellipse%s%s];" (type_node t) (escape t)
        value_label peripheries color)
    (Schema.object_types schema);
  (* Subtype edges. *)
  List.iter
    (fun (sub, super) ->
      line "%s -> %s [style=bold, arrowhead=empty];" (type_node sub) (type_node super))
    (Subtype_graph.edges (Schema.graph schema));
  (* Fact types: a box connected to both players, decorated with the
     mandatory/uniqueness/frequency/ring markers on each role. *)
  let role_marks r =
    let marks = ref [] in
    if Schema.is_mandatory schema r then marks := "●" :: !marks;
    if Schema.has_uniqueness schema (Ids.Single r) then marks := "u" :: !marks;
    List.iter
      (fun (_, (f : Constraints.frequency)) ->
        marks := Format.asprintf "%a" Constraints.pp_frequency f :: !marks)
      (Schema.frequencies_on schema (Ids.Single r));
    match !marks with [] -> "" | ms -> " [" ^ String.concat " " ms ^ "]"
  in
  List.iter
    (fun (ft : Fact_type.t) ->
      let rings =
        match Schema.rings_on schema ft.name with
        | [] -> ""
        | rs ->
            "\\n{"
            ^ String.concat ", " (List.map (fun (_, k) -> Ring.abbrev k) rs)
            ^ "}"
      in
      let dead r = Ids.Role_set.mem r unsat_roles in
      let color =
        if dead (Ids.first ft.name) || dead (Ids.second ft.name) then
          ", color=red, fontcolor=red"
        else ""
      in
      line "%s [label=\"%s%s\", shape=box%s];" (fact_node ft.name)
        (escape (Fact_type.reading_text ft))
        rings color;
      line "%s -> %s [dir=none, label=\"1%s\", fontsize=9];" (type_node ft.player1)
        (fact_node ft.name)
        (escape (role_marks (Ids.first ft.name)));
      line "%s -> %s [dir=none, label=\"2%s\", fontsize=9];" (type_node ft.player2)
        (fact_node ft.name)
        (escape (role_marks (Ids.second ft.name))))
    (Schema.fact_types schema);
  (* Set-comparison / exclusion / type-level constraints as dashed nodes. *)
  List.iter
    (fun (c : Constraints.t) ->
      let link targets label =
        line "%s [label=\"%s\", shape=circle, style=dashed, fontsize=9];"
          (constraint_node c.id) (escape label);
        List.iter
          (fun target ->
            line "%s -> %s [style=dashed, dir=none];" (constraint_node c.id) target)
          targets
      in
      match c.body with
      | Role_exclusion seqs ->
          link (List.map (fun s -> fact_node (Ids.seq_fact s)) seqs) "X"
      | Subset (a, b) -> link [ fact_node (Ids.seq_fact a); fact_node (Ids.seq_fact b) ] "⊆"
      | Equality (a, b) -> link [ fact_node (Ids.seq_fact a); fact_node (Ids.seq_fact b) ] "="
      | Type_exclusion ots -> link (List.map type_node ots) "X"
      | Total_subtypes (super, subs) -> link (List.map type_node (super :: subs)) "⊙"
      | Disjunctive_mandatory roles ->
          link (List.map (fun (r : Ids.role) -> fact_node r.fact) roles) "∨●"
      | External_uniqueness roles ->
          link (List.map (fun (r : Ids.role) -> fact_node r.fact) roles) "U"
      | Mandatory _ | Uniqueness _ | Frequency _ | Value_constraint _ | Ring _ ->
          (* already rendered as role marks / node decorations *)
          ())
    (Schema.constraints schema);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ?report path schema =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string ?report schema))
