(** Graphviz export of ORM schemas.

    Renders the schema as a DOT digraph in the spirit of ORM diagrams:
    object types as named ellipses (double border when a value constraint
    applies, with the value list attached), fact types as boxes wired to
    their players, subtype links as thick arrows, and constraint
    annotations as dashed edges/labels.  An optional engine report paints
    unsatisfiable elements red — the textual analogue of DogmaModeler
    highlighting problems in the diagram. *)

open Orm

val to_string : ?report:Orm_patterns.Engine.report -> Schema.t -> string
(** The DOT source for the schema; pipe into [dot -Tsvg]. *)

val write_file : ?report:Orm_patterns.Engine.report -> string -> Schema.t -> unit
