(** JSON export of schemas and diagnostic reports.

    A dependency-free JSON serializer (the container has no json library)
    for integrating the checker with external tooling — e.g. an editor
    plugin consuming diagnostics, the use case behind the paper's footnote
    about re-implementing the patterns in Protégé. *)

open Orm

val of_schema : Schema.t -> string
(** The schema as a JSON object: [{name, object_types, subtypes, facts,
    constraints}] with constraints rendered structurally. *)

val of_report : Orm_patterns.Engine.report -> string
(** The engine report: diagnostics with origin/certainty/affected/culprits,
    plus the aggregated unsatisfiable element lists. *)

val escape_string : string -> string
(** JSON string escaping (exposed for tests). *)
