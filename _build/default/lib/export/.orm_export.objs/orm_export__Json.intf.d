lib/export/json.mli: Orm Orm_patterns Schema
