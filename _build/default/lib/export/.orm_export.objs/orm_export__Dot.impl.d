lib/export/dot.ml: Buffer Constraints Fact_type Format Ids List Orm Orm_patterns Out_channel Printf Ring Schema String Subtype_graph Value
