lib/export/dot.mli: Orm Orm_patterns Schema
