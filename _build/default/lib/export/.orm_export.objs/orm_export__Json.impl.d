lib/export/json.ml: Buffer Char Constraints Fact_type Ids List Orm Orm_patterns Printf Ring Schema String Subtype_graph Value
