lib/reasoner/finder.mli: Eval Format Ids Orm Orm_semantics Population Schema
