lib/reasoner/finder.ml: Array Constraints Eval Fact_type Format Hashtbl Ids List Option Orm Orm_semantics Population Printf Schema Subtype_graph Value
