open Orm

type injection = {
  pattern : int;
  schema : Schema.t;
  expect_types : Ids.object_type list;
  expect_roles : Ids.role list;
  expect_joint : Ids.role list list;
}

let all_patterns = [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
let extension_patterns = [ 10; 11; 12 ]

let ( |- ) s body = Schema.add body s

let inject ~seed n schema =
  let _rng = Random.State.make [| seed; n |] in
  let t name = Printf.sprintf "X%d_%s" n name in
  let f name = Printf.sprintf "XF%d_%s" n name in
  match n with
  | 1 ->
      (* A subtype of two types with disjoint ancestries. *)
      let schema =
        schema
        |> Schema.add_object_type (t "A")
        |> Schema.add_object_type (t "B")
        |> Schema.add_subtype ~sub:(t "C") ~super:(t "A")
        |> Schema.add_subtype ~sub:(t "C") ~super:(t "B")
      in
      { pattern = 1; schema; expect_types = [ t "C" ]; expect_roles = []; expect_joint = [] }
  | 2 ->
      let schema =
        schema
        |> Schema.add_subtype ~sub:(t "B") ~super:(t "A")
        |> Schema.add_subtype ~sub:(t "C") ~super:(t "A")
        |> Schema.add_subtype ~sub:(t "D") ~super:(t "B")
        |> Schema.add_subtype ~sub:(t "D") ~super:(t "C")
        |- Type_exclusion [ t "B"; t "C" ]
      in
      { pattern = 2; schema; expect_types = [ t "D" ]; expect_roles = []; expect_joint = [] }
  | 3 ->
      let schema =
        schema
        |> Schema.add_fact (Fact_type.make (f "f") (t "A") (t "B"))
        |> Schema.add_fact (Fact_type.make (f "g") (t "A") (t "C"))
        |- Mandatory (Ids.first (f "f"))
        |- Role_exclusion [ Single (Ids.first (f "f")); Single (Ids.first (f "g")) ]
      in
      {
        pattern = 3;
        schema;
        expect_types = [];
        expect_roles = [ Ids.first (f "g") ];
        expect_joint = [];
      }
  | 4 ->
      let schema =
        schema
        |> Schema.add_fact (Fact_type.make (f "f") (t "A") (t "B"))
        |- Value_constraint (t "B", Value.Constraint.of_strings [ "v1"; "v2" ])
        |- Frequency (Single (Ids.first (f "f")), Constraints.frequency ~max:5 3)
      in
      {
        pattern = 4;
        schema;
        expect_types = [];
        expect_roles = [ Ids.first (f "f") ];
        expect_joint = [];
      }
  | 5 ->
      let schema =
        schema
        |> Schema.add_fact (Fact_type.make (f "f") (t "A") (t "B"))
        |> Schema.add_fact (Fact_type.make (f "g") (t "A") (t "C"))
        |- Value_constraint (t "A", Value.Constraint.of_strings [ "a1"; "a2" ])
        |- Frequency (Single (Ids.second (f "f")), Constraints.frequency ~max:2 2)
        |- Role_exclusion [ Single (Ids.first (f "f")); Single (Ids.first (f "g")) ]
      in
      {
        pattern = 5;
        schema;
        expect_types = [];
        expect_roles = [];
        expect_joint = [ [ Ids.first (f "f"); Ids.first (f "g") ] ];
      }
  | 6 ->
      let schema =
        schema
        |> Schema.add_fact (Fact_type.make (f "f") (t "A") (t "B"))
        |> Schema.add_fact (Fact_type.make (f "g") (t "A") (t "B"))
        |- Role_exclusion [ Single (Ids.first (f "f")); Single (Ids.first (f "g")) ]
        |- Subset (Ids.whole_predicate (f "f"), Ids.whole_predicate (f "g"))
      in
      {
        pattern = 6;
        schema;
        expect_types = [];
        expect_roles = [ Ids.first (f "f"); Ids.second (f "f") ];
        expect_joint =
          [
            [
              Ids.first (f "f"); Ids.second (f "f"); Ids.first (f "g"); Ids.second (f "g");
            ];
          ];
      }
  | 7 ->
      let schema =
        schema
        |> Schema.add_fact (Fact_type.make (f "f") (t "A") (t "B"))
        |- Uniqueness (Single (Ids.first (f "f")))
        |- Frequency (Single (Ids.first (f "f")), Constraints.frequency ~max:5 2)
      in
      {
        pattern = 7;
        schema;
        expect_types = [];
        expect_roles = [ Ids.first (f "f") ];
        expect_joint = [];
      }
  | 8 ->
      let schema =
        schema
        |> Schema.add_fact (Fact_type.make (f "r") (t "A") (t "A"))
        |- Ring (Ring.Symmetric, f "r")
        |- Ring (Ring.Acyclic, f "r")
      in
      {
        pattern = 8;
        schema;
        expect_types = [];
        expect_roles = [ Ids.first (f "r"); Ids.second (f "r") ];
        expect_joint = [];
      }
  | 9 ->
      let schema =
        schema
        |> Schema.add_subtype ~sub:(t "A") ~super:(t "B")
        |> Schema.add_subtype ~sub:(t "B") ~super:(t "C")
        |> Schema.add_subtype ~sub:(t "C") ~super:(t "A")
      in
      {
        pattern = 9;
        schema;
        expect_types = [ t "A"; t "B"; t "C" ];
        expect_roles = [];
        expect_joint = [];
      }
  | 10 ->
      (* Disjoint inherited value constraints. *)
      let schema =
        schema
        |> Schema.add_subtype ~sub:(t "Sub") ~super:(t "Super")
        |- Value_constraint (t "Super", Value.Constraint.of_range 1 5)
        |- Value_constraint (t "Sub", Value.Constraint.of_range 100 105)
      in
      {
        pattern = 10;
        schema;
        expect_types = [ t "Sub" ];
        expect_roles = [];
        expect_joint = [];
      }
  | 11 ->
      (* Irreflexive ring over a single admissible value (the paper's
         Section-5 example). *)
      let schema =
        schema
        |> Schema.add_fact (Fact_type.make (f "r") (t "A") (t "A"))
        |- Ring (Ring.Irreflexive, f "r")
        |- Value_constraint (t "A", Value.Constraint.of_strings [ "only" ])
      in
      {
        pattern = 11;
        schema;
        expect_types = [];
        expect_roles = [ Ids.first (f "r"); Ids.second (f "r") ];
        expect_joint = [];
      }
  | 12 ->
      (* Mandatory role on an acyclic self-relation. *)
      let schema =
        schema
        |> Schema.add_fact (Fact_type.make (f "r") (t "A") (t "A"))
        |- Ring (Ring.Acyclic, f "r")
        |- Mandatory (Ids.first (f "r"))
      in
      {
        pattern = 12;
        schema;
        expect_types = [ t "A" ];
        expect_roles = [ Ids.first (f "r"); Ids.second (f "r") ];
        expect_joint = [];
      }
  | n -> invalid_arg (Printf.sprintf "Faults.inject: no pattern %d" n)
