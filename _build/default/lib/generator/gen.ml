open Orm

type config = {
  n_types : int;
  n_facts : int;
  subtype_density : float;
  p_mandatory : float;
  p_uniqueness : float;
  p_frequency : float;
  p_value : float;
  p_exclusion : float;
  p_subset : float;
  p_ring : float;
}

let default =
  {
    n_types = 8;
    n_facts = 8;
    subtype_density = 0.4;
    p_mandatory = 0.3;
    p_uniqueness = 0.4;
    p_frequency = 0.25;
    p_value = 0.3;
    p_exclusion = 0.25;
    p_subset = 0.2;
    p_ring = 0.3;
  }

let sized n = { default with n_types = max 1 n; n_facts = max 1 n }

let type_name i = Printf.sprintf "T%d" (i + 1)
let fact_name i = Printf.sprintf "F%d" (i + 1)

let flip rng p = Random.State.float rng 1.0 < p
let pick rng xs = List.nth xs (Random.State.int rng (List.length xs))

let clean ?(config = default) ~seed () =
  let rng = Random.State.make [| seed; 0x0c0ffee |] in
  let n = max 1 config.n_types in
  (* Object types form a forest: each new type subtypes at most one earlier
     type, so patterns 1 (multiple unrelated supertypes) and 9 (loops) are
     impossible by construction. *)
  let schema = ref (Schema.empty (Printf.sprintf "gen%d" seed)) in
  let in_subtyping = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    let name = type_name i in
    if i > 0 && flip rng config.subtype_density then begin
      let super = type_name (Random.State.int rng i) in
      Hashtbl.replace in_subtyping name ();
      Hashtbl.replace in_subtyping super ();
      schema := Schema.add_subtype ~sub:name ~super !schema
    end
    else schema := Schema.add_object_type name !schema
  done;
  (* Generous value sets (≥ 6 values), only on types outside the subtype
     forest so effective value sets never shrink below a frequency bound. *)
  for i = 0 to n - 1 do
    let name = type_name i in
    if (not (Hashtbl.mem in_subtyping name)) && flip rng config.p_value then
      let base = (i + 1) * 100 in
      let width = 5 + Random.State.int rng 5 in
      schema :=
        Schema.add
          (Value_constraint (name, Value.Constraint.of_range base (base + width)))
          !schema
  done;
  (* Fact types; a third are homogeneous so ring constraints have targets.
     Subset pairs are generated as parallel facts (same players). *)
  let m = max 1 config.n_facts in
  let has_mandatory = Hashtbl.create 16 in
  let has_frequency = Hashtbl.create 16 in
  let in_setcomp = Hashtbl.create 16 in
  for i = 0 to m - 1 do
    let name = fact_name i in
    let player1 = type_name (Random.State.int rng n) in
    let player2 =
      if i mod 3 = 0 then player1 else type_name (Random.State.int rng n)
    in
    schema := Schema.add_fact (Fact_type.make name player1 player2) !schema;
    if flip rng config.p_mandatory then begin
      Hashtbl.replace has_mandatory name ();
      schema := Schema.add (Mandatory (Ids.first name)) !schema
    end;
    List.iter
      (fun role ->
        if flip rng config.p_uniqueness then
          schema := Schema.add (Uniqueness (Single role)) !schema)
      [ Ids.first name; Ids.second name ];
    (* A frequency with minimum above 1 is only safe on a role without a
       uniqueness constraint (pattern 7) whose co-player admits at least as
       many values as the minimum (pattern 4). *)
    if flip rng config.p_frequency then begin
      let role = if flip rng 0.5 then Ids.first name else Ids.second name in
      let min_f = 2 + Random.State.int rng 2 in
      let co_values_ok =
        match Schema.effective_value_set !schema (Schema.player_exn !schema (Ids.co_role role)) with
        | Some vs -> Value.Constraint.cardinal vs >= min_f
        | None -> true
      in
      if (not (Schema.has_uniqueness !schema (Single role))) && co_values_ok then begin
        Hashtbl.replace has_frequency name ();
        schema :=
          Schema.add
            (Frequency (Single role, Constraints.frequency ~max:(min_f + 2) min_f))
            !schema
      end
    end
  done;
  (* Safe subsets: parallel facts (same players, both free of exclusions so
     far), marked to keep them out of future exclusions (pattern 6). *)
  let facts () = List.map (fun (ft : Fact_type.t) -> ft) (Schema.fact_types !schema) in
  List.iter
    (fun (ft : Fact_type.t) ->
      if flip rng config.p_subset then
        let candidates =
          List.filter
            (fun (other : Fact_type.t) ->
              other.name <> ft.name && other.player1 = ft.player1
              && other.player2 = ft.player2
              && not (Hashtbl.mem in_setcomp other.name))
            (facts ())
        in
        match candidates with
        | [] -> ()
        | _ ->
            let other = pick rng candidates in
            Hashtbl.replace in_setcomp ft.name ();
            Hashtbl.replace in_setcomp other.name ();
            schema :=
              Schema.add
                (Subset (Ids.whole_predicate ft.name, Ids.whole_predicate other.name))
                !schema)
    (facts ());
  (* Safe exclusions: first roles of facts without mandatory (pattern 3),
     frequency (pattern 5) or set-comparison (pattern 6) constraints. *)
  let exclusion_safe (ft : Fact_type.t) =
    (not (Hashtbl.mem has_mandatory ft.name))
    && (not (Hashtbl.mem has_frequency ft.name))
    && not (Hashtbl.mem in_setcomp ft.name)
  in
  let used_in_exclusion = Hashtbl.create 16 in
  List.iter
    (fun (ft : Fact_type.t) ->
      if flip rng config.p_exclusion && exclusion_safe ft
         && not (Hashtbl.mem used_in_exclusion ft.name) then
        let partners =
          List.filter
            (fun (other : Fact_type.t) ->
              other.name <> ft.name && exclusion_safe other
              && not (Hashtbl.mem used_in_exclusion other.name))
            (facts ())
        in
        match partners with
        | [] -> ()
        | _ ->
            let other = pick rng partners in
            Hashtbl.replace used_in_exclusion ft.name ();
            Hashtbl.replace used_in_exclusion other.name ();
            schema :=
              Schema.add
                (Role_exclusion [ Single (Ids.first ft.name); Single (Ids.first other.name) ])
                !schema)
    (facts ());
  (* One ring kind per homogeneous fact: any single kind is compatible. *)
  List.iter
    (fun (ft : Fact_type.t) ->
      if ft.player1 = ft.player2 && flip rng config.p_ring then
        let kind = pick rng Ring.all in
        schema := Schema.add (Ring (kind, ft.name)) !schema)
    (facts ());
  !schema

(* Unconstrained generation: every reference is valid (the schema passes
   Schema.validate) but nothing prevents contradictions. *)
let arbitrary ?(config = default) ~seed () =
  let rng = Random.State.make [| seed; 0xa5b17a51 |] in
  let n = max 2 config.n_types in
  let m = max 1 config.n_facts in
  let type_of i = type_name (i mod n) in
  let schema = ref (Schema.empty (Printf.sprintf "arb%d" seed)) in
  for i = 0 to n - 1 do
    schema := Schema.add_object_type (type_name i) !schema
  done;
  (* Subtype edges, including occasional multiple supertypes; loops are
     possible only through the explicit chance below, keeping most schemas
     loop-free but not all. *)
  for i = 1 to n - 1 do
    if flip rng config.subtype_density then
      schema :=
        Schema.add_subtype ~sub:(type_name i)
          ~super:(type_name (Random.State.int rng i))
          !schema;
    if flip rng (config.subtype_density /. 2.) then
      schema :=
        Schema.add_subtype ~sub:(type_name i)
          ~super:(type_of (i + 1 + Random.State.int rng n))
          !schema
  done;
  if flip rng 0.1 then
    schema := Schema.add_subtype ~sub:(type_name 0) ~super:(type_name (n - 1)) !schema;
  for i = 0 to m - 1 do
    let name = fact_name i in
    let p1 = type_of (Random.State.int rng n) in
    let p2 = if i mod 2 = 0 then p1 else type_of (Random.State.int rng n) in
    schema := Schema.add_fact (Fact_type.make name p1 p2) !schema
  done;
  let facts = Schema.fact_types !schema in
  let random_fact () = pick rng facts in
  let random_role () =
    let (ft : Fact_type.t) = random_fact () in
    if flip rng 0.5 then Ids.first ft.name else Ids.second ft.name
  in
  let n_constraints = 2 + Random.State.int rng (2 * m) in
  for _ = 1 to n_constraints do
    let body =
      match Random.State.int rng 10 with
      | 0 -> Some (Constraints.Mandatory (random_role ()))
      | 1 -> Some (Constraints.Uniqueness (Single (random_role ())))
      | 2 ->
          let min_f = 1 + Random.State.int rng 3 in
          Some
            (Constraints.Frequency
               (Single (random_role ()), Constraints.frequency ~max:(min_f + Random.State.int rng 3) min_f))
      | 3 ->
          let t = type_of (Random.State.int rng n) in
          let size = 1 + Random.State.int rng 4 in
          Some
            (Constraints.Value_constraint
               (t, Value.Constraint.of_range 0 (size - 1)))
      | 4 ->
          let r1 = random_role () and r2 = random_role () in
          if Ids.equal_role r1 r2 then None
          else Some (Constraints.Role_exclusion [ Single r1; Single r2 ])
      | 5 ->
          let f1 = random_fact () and f2 = random_fact () in
          if f1.name = f2.name then None
          else
            Some
              (Constraints.Subset
                 (Ids.whole_predicate f1.name, Ids.whole_predicate f2.name))
      | 6 ->
          let f1 = random_fact () and f2 = random_fact () in
          if f1.name = f2.name then None
          else
            Some
              (Constraints.Equality
                 (Ids.whole_predicate f1.name, Ids.whole_predicate f2.name))
      | 7 ->
          let a = type_of (Random.State.int rng n) in
          let b = type_of (Random.State.int rng n) in
          if a = b then None else Some (Constraints.Type_exclusion [ a; b ])
      | 8 -> (
          let (ft : Fact_type.t) = random_fact () in
          if ft.player1 = ft.player2 then
            Some (Constraints.Ring (pick rng Ring.all, ft.name))
          else None)
      | _ ->
          let super = type_of (Random.State.int rng n) in
          let sub = type_of (Random.State.int rng n) in
          if super = sub then None
          else Some (Constraints.Total_subtypes (super, [ sub ]))
    in
    match body with Some b -> schema := Schema.add b !schema | None -> ()
  done;
  !schema

let type_names schema = Schema.object_types schema
