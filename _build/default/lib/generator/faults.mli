(** Fault injection: plant each of the paper's nine contradictions into a
    schema.

    Injected elements use a reserved ["X"] name prefix so they never collide
    with {!Gen}-produced elements.  Each injection records what the engine
    is expected to flag, which drives the fault-detection property tests
    ("every planted contradiction is caught by its pattern") and the
    detection benchmarks. *)

open Orm

type injection = {
  pattern : int;  (** the pattern expected to detect the fault *)
  schema : Schema.t;  (** the faulted schema *)
  expect_types : Ids.object_type list;
      (** object types that must appear among [unsat_types] *)
  expect_roles : Ids.role list;  (** roles that must appear among [unsat_roles] *)
  expect_joint : Ids.role list list;
      (** role groups that must appear among the joint verdicts *)
}

val inject : seed:int -> int -> Schema.t -> injection
(** [inject ~seed p schema] plants the pattern-[p] contradiction: 1–9 for
    the paper's patterns, 10–12 for the extension patterns (which only the
    extension-enabled engine settings detect).
    @raise Invalid_argument for other numbers. *)

val all_patterns : int list
(** The paper's nine. *)

val extension_patterns : int list
(** The extension faults 10–12. *)
