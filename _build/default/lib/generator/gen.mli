(** Seeded random schema generation — the workload generator behind the
    property tests and the scaling benchmarks (paper Section 4's
    fast-vs-complete comparison needs schemas of growing size).

    {!clean} produces schemas that are {e clean by construction}: the
    constraint mix is restricted so that none of the nine patterns can fire
    (e.g. frequency minima exceeding 1 are only placed on roles without
    uniqueness constraints, exclusions only join roles of unrelated
    players without mandatory constraints).  {!Faults.inject} then plants a
    specific contradiction into a clean schema. *)

open Orm

type config = {
  n_types : int;  (** object types (≥ 1) *)
  n_facts : int;  (** binary fact types *)
  subtype_density : float;
      (** probability that a new type subtypes an existing one *)
  p_mandatory : float;  (** per-fact probability of a mandatory first role *)
  p_uniqueness : float;  (** per-role probability of a uniqueness constraint *)
  p_frequency : float;  (** per-fact probability of a safe frequency range *)
  p_value : float;  (** per-type probability of a (generous) value set *)
  p_exclusion : float;  (** per-fact probability of a safe exclusion *)
  p_subset : float;  (** per-fact probability of a safe subset *)
  p_ring : float;  (** per-homogeneous-fact probability of one ring kind *)
}

val default : config
val sized : int -> config
(** [sized n] scales types and facts linearly with [n] keeping default
    probabilities. *)

val clean : ?config:config -> seed:int -> unit -> Schema.t
(** A well-formed schema on which no unsatisfiability pattern fires. *)

val arbitrary : ?config:config -> seed:int -> unit -> Schema.t
(** A well-formed schema with an {e unconstrained} constraint mix — no
    safety filtering, so contradictions of any pattern (and combinations no
    pattern covers) arise naturally.  Used by the fuzzing property tests:
    whatever the engine condemns on an arbitrary schema must be refuted by
    a complete bounded procedure. *)

val type_names : Schema.t -> string list
(** Convenience: the generated type names, in creation order. *)
