lib/generator/gen.ml: Constraints Fact_type Hashtbl Ids List Orm Printf Random Ring Schema Value
