lib/generator/gen.mli: Orm Schema
