lib/generator/faults.mli: Ids Orm Schema
