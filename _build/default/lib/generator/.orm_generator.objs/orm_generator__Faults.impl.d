lib/generator/faults.ml: Constraints Fact_type Ids Orm Printf Random Ring Schema Value
