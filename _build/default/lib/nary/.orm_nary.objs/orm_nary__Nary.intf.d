lib/nary/nary.mli: Constraints Format Ids Orm Schema Value
