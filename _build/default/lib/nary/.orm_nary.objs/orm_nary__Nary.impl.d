lib/nary/nary.ml: Constraints Fact_type Format Ids List Option Orm Printf Schema Value
