open Orm

type role_ref = { fact : string; index : int }

type fact = {
  name : string;
  players : Ids.object_type list;
  reading : string option;
}

type constr =
  | Mandatory of role_ref
  | Uniqueness of role_ref
  | Composite_uniqueness of role_ref list
  | Frequency of role_ref * Constraints.frequency
  | Value_constraint of Ids.object_type * Value.Constraint.t
  | Exclusion of role_ref list
  | Subset of role_ref * role_ref
  | Equality of role_ref * role_ref
  | Type_exclusion of Ids.object_type list

type t = {
  schema_name : string;
  object_types : Ids.object_type list;
  subtypes : (Ids.object_type * Ids.object_type) list;
  facts : fact list;
  constrs : constr list;
}

let make schema_name =
  { schema_name; object_types = []; subtypes = []; facts = []; constrs = [] }

let add_fact ?reading name players t =
  if players = [] then invalid_arg "Nary.add_fact: a fact needs at least one role";
  { t with facts = t.facts @ [ { name; players; reading } ] }

let add_subtype ~sub ~super t = { t with subtypes = t.subtypes @ [ (sub, super) ] }
let add c t = { t with constrs = t.constrs @ [ c ] }

type note =
  | Composite_uniqueness_skipped of role_ref list
  | Tuple_identity_approximated of string
  | Unknown_role of role_ref

let pp_ref ppf r = Format.fprintf ppf "%s.%d" r.fact r.index

let pp_note ppf = function
  | Composite_uniqueness_skipped refs ->
      Format.fprintf ppf
        "composite uniqueness over %a needs an external uniqueness constraint and \
         was skipped"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_ref)
        refs
  | Tuple_identity_approximated fact ->
      Format.fprintf ppf
        "objectified instances of %s are not forced to coincide on equal component \
         vectors"
        fact
  | Unknown_role r -> Format.fprintf ppf "constraint references unknown role %a" pp_ref r

let objectified_type fact = fact ^ "!"
let component_fact fact i = Printf.sprintf "%s!%d" fact i
let component_role r = Ids.second (component_fact r.fact r.index)

let binarize t =
  let notes = ref [] in
  let note n = notes := n :: !notes in
  let arity name =
    Option.map
      (fun f -> List.length f.players)
      (List.find_opt (fun f -> f.name = name) t.facts)
  in
  (* Resolve an n-ary role reference to a binary role of the output. *)
  let resolve (r : role_ref) =
    match arity r.fact with
    | Some 2 when r.index = 1 -> Some (Ids.first r.fact)
    | Some 2 when r.index = 2 -> Some (Ids.second r.fact)
    | Some n when r.index >= 1 && r.index <= n -> Some (component_role r)
    | Some _ | None ->
        note (Unknown_role r);
        None
  in
  let schema = ref (Schema.empty t.schema_name) in
  let declare body = schema := Schema.add body !schema in
  List.iter (fun ot -> schema := Schema.add_object_type ot !schema) t.object_types;
  List.iter
    (fun (sub, super) -> schema := Schema.add_subtype ~sub ~super !schema)
    t.subtypes;
  (* Facts: binary pass through; other arities are objectified. *)
  List.iter
    (fun (f : fact) ->
      match f.players with
      | [ p1; p2 ] ->
          schema := Schema.add_fact (Fact_type.make ?reading:f.reading f.name p1 p2) !schema
      | players ->
          let obj = objectified_type f.name in
          schema := Schema.add_object_type obj !schema;
          List.iteri
            (fun i player ->
              let cf = component_fact f.name (i + 1) in
              let reading =
                Printf.sprintf "has component %d%s" (i + 1)
                  (match f.reading with Some r -> " of '" ^ r ^ "'" | None -> "")
              in
              schema := Schema.add_fact (Fact_type.make ~reading cf obj player) !schema;
              (* Every objectified instance has exactly one i-th component. *)
              declare (Constraints.Mandatory (Ids.first cf));
              declare (Constraints.Uniqueness (Single (Ids.first cf))))
            players;
          (* Tuple identity: the component vector identifies the
             objectified instance (an external uniqueness over the
             component roles, joined on the objectified type). *)
          declare
            (Constraints.External_uniqueness
               (List.mapi
                  (fun i _ -> Ids.second (component_fact f.name (i + 1)))
                  players)))
    t.facts;
  (* Constraints. *)
  List.iter
    (fun c ->
      match c with
      | Mandatory r ->
          Option.iter (fun role -> declare (Constraints.Mandatory role)) (resolve r)
      | Uniqueness r ->
          Option.iter
            (fun role -> declare (Constraints.Uniqueness (Single role)))
            (resolve r)
      | Composite_uniqueness refs -> (
          match refs with
          | [ a; b ]
            when a.fact = b.fact && arity a.fact = Some 2 && a.index <> b.index -> (
              match (resolve a, resolve b) with
              | Some ra, Some rb -> declare (Constraints.Uniqueness (Pair (ra, rb)))
              | _ -> ())
          | _ -> note (Composite_uniqueness_skipped refs))
      | Frequency (r, f) ->
          Option.iter
            (fun role -> declare (Constraints.Frequency (Single role, f)))
            (resolve r)
      | Value_constraint (ot, vs) -> declare (Constraints.Value_constraint (ot, vs))
      | Exclusion refs ->
          let roles = List.filter_map resolve refs in
          if List.length roles = List.length refs then
            declare
              (Constraints.Role_exclusion (List.map (fun r -> Ids.Single r) roles))
      | Subset (a, b) -> (
          match (resolve a, resolve b) with
          | Some ra, Some rb -> declare (Constraints.Subset (Single ra, Single rb))
          | _ -> ())
      | Equality (a, b) -> (
          match (resolve a, resolve b) with
          | Some ra, Some rb -> declare (Constraints.Equality (Single ra, Single rb))
          | _ -> ())
      | Type_exclusion ots -> declare (Constraints.Type_exclusion ots))
    t.constrs;
  (!schema, List.rev !notes)
