(** N-ary fact types via objectification.

    The paper's patterns are defined over binary predicates only ("although
    ORM supports n-ary predicates, only binary predicates are considered",
    Section 2).  Real ORM schemas are frequently ternary or wider, so this
    front end closes the gap with the standard reduction: an n-ary fact
    type [F(T1,...,Tn)] is {e objectified} into a fresh object type [F!]
    plus [n] binary component fact types [F!i : F! -> Ti], where every
    objectified instance has exactly one [i]-th component (mandatory +
    uniqueness on the [F!] side).

    Constraints on n-ary roles translate component-wise:
    - mandatory / uniqueness / frequency on a single role [F.i] become the
      same constraint on the second role of [F!i];
    - value constraints are type-level and pass through;
    - exclusion / subset / equality between single roles map to the
      corresponding component roles.

    Tuple identity — two [F!] instances with identical component vectors
    must coincide — is enforced with an {e external uniqueness} constraint
    over the component roles, which the semantics library and the bounded
    reasoners check (the nine patterns themselves ignore it, as the paper's
    fragment has no external uniqueness).  Composite (multi-role) internal
    uniqueness constraints over more than a whole binary predicate are the
    one feature that does not survive the reduction; they are reported as
    {!note}s rather than silently dropped. *)

open Orm

type role_ref = { fact : string; index : int }
(** The [index]-th role (1-based) of an n-ary fact type. *)

type fact = {
  name : string;
  players : Ids.object_type list;  (** arity = list length, ≥ 1 *)
  reading : string option;
}

type constr =
  | Mandatory of role_ref
  | Uniqueness of role_ref
  | Composite_uniqueness of role_ref list  (** spanning several roles *)
  | Frequency of role_ref * Constraints.frequency
  | Value_constraint of Ids.object_type * Value.Constraint.t
  | Exclusion of role_ref list
  | Subset of role_ref * role_ref
  | Equality of role_ref * role_ref
  | Type_exclusion of Ids.object_type list

type t = {
  schema_name : string;
  object_types : Ids.object_type list;
  subtypes : (Ids.object_type * Ids.object_type) list;  (** (sub, super) *)
  facts : fact list;
  constrs : constr list;
}

val make : string -> t
val add_fact : ?reading:string -> string -> Ids.object_type list -> t -> t
val add_subtype : sub:Ids.object_type -> super:Ids.object_type -> t -> t
val add : constr -> t -> t

(** What got lost or approximated in the reduction. *)
type note =
  | Composite_uniqueness_skipped of role_ref list
      (** needs an external uniqueness constraint, outside the binary
          fragment *)
  | Tuple_identity_approximated of string
      (** retained for callers that pattern-match notes; no longer emitted
          now that tuple identity is enforced via external uniqueness *)
  | Unknown_role of role_ref  (** constraint referenced a missing role *)

val pp_note : Format.formatter -> note -> unit

val objectified_type : string -> Ids.object_type
(** The fresh object type standing for an n-ary fact, e.g.
    [objectified_type "enrolled" = "enrolled!"]. *)

val component_fact : string -> int -> Ids.fact_type
(** The binary fact linking the objectified type to its [i]-th player. *)

val component_role : role_ref -> Ids.role
(** The binary role corresponding to an n-ary role: the player side of the
    component fact. *)

val binarize : t -> Schema.t * note list
(** The reduction.  Binary facts in the input pass through unchanged (no
    objectification overhead); the output schema is ready for
    {!Orm_patterns.Engine.check} and friends. *)
