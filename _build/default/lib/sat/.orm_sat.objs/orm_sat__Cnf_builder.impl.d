lib/sat/cnf_builder.ml: Array Dpll Hashtbl List Printf
