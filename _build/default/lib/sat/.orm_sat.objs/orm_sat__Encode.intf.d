lib/sat/encode.mli: Format Ids Orm Orm_semantics Population Schema
