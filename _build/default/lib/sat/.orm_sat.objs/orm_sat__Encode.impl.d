lib/sat/encode.ml: Array Cnf_builder Constraints Dpll Eval Fact_type Format Hashtbl Ids List Option Orm Orm_semantics Population Printf Ring Schema Subtype_graph Value
