lib/sat/cnf_builder.mli: Dpll
