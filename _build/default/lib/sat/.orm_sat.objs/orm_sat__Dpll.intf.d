lib/sat/dpll.mli:
