(** Tiny string utility: first-occurrence substring replacement (the
    standard library has none and the [re] dependency would be overkill for
    verbalization templates). *)

val first : string -> string -> string -> string
(** [first s needle replacement] replaces the first occurrence of [needle]
    in [s]; returns [s] unchanged when [needle] does not occur or is
    empty. *)
