let first s needle replacement =
  let n = String.length needle in
  if n = 0 then s
  else
    let limit = String.length s - n in
    let rec find i =
      if i > limit then None
      else if String.sub s i n = needle then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> s
    | Some i ->
        String.sub s 0 i ^ replacement ^ String.sub s (i + n) (String.length s - i - n)
