(** Pseudo-natural-language verbalization of ORM schemas.

    Translating a schema into controlled natural language is a hallmark of
    ORM (paper, Section 1): it lets domain experts — the lawyers of the
    CCFORM case study — read and validate the model.  The sentence forms
    follow Halpin's verbalization conventions for binary fact types. *)

open Orm

val fact_type : Fact_type.t -> string
(** ["Each Person works for some-or-no Company."]-style reading of the bare
    predicate. *)

val constraint_ : Schema.t -> Constraints.t -> string
(** One sentence per constraint occurrence, e.g. a mandatory role becomes
    ["Each Employee works for at least one Company."]. *)

val subtype : sub:Ids.object_type -> super:Ids.object_type -> string

val schema : Schema.t -> string list
(** The full verbalization: fact-type readings, subtype links, then one
    sentence per constraint, in declaration order. *)

val pp_schema : Format.formatter -> Schema.t -> unit
