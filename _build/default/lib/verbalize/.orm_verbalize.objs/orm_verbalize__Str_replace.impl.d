lib/verbalize/str_replace.ml: String
