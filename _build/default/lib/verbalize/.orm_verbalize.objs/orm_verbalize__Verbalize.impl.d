lib/verbalize/verbalize.ml: Constraints Fact_type Format Ids List Orm Printf Ring Schema Str_replace String Subtype_graph Value
