lib/verbalize/verbalize.mli: Constraints Fact_type Format Ids Orm Schema
