lib/verbalize/str_replace.mli:
