open Orm

let fact_type (ft : Fact_type.t) =
  Printf.sprintf "Each %s %s some-or-no %s." ft.player1 (Fact_type.reading_text ft)
    ft.player2

let subtype ~sub ~super = Printf.sprintf "Each %s is a %s." sub super

(* The phrase "plays role r", oriented by the side of the predicate the
   role occupies: active voice for the first role, passive for the second. *)
let role_phrase schema (r : Ids.role) =
  match Schema.find_fact schema r.fact with
  | None -> Printf.sprintf "plays %s" (Ids.role_to_string r)
  | Some ft -> (
      let reading = Fact_type.reading_text ft in
      match r.side with
      | Ids.Fst -> Printf.sprintf "%s some %s" reading ft.player2
      | Ids.Snd -> Printf.sprintf "is %s by some %s" reading ft.player1)

let each_player schema (r : Ids.role) =
  match Schema.player schema r with
  | Some p -> Printf.sprintf "Each %s" p
  | None -> "Each object"

let seq_phrase schema = function
  | Ids.Single r -> role_phrase schema r
  | Ids.Pair (r1, _) -> (
      match Schema.find_fact schema r1.fact with
      | Some ft -> Printf.sprintf "appears as a pair in '%s'" (Fact_type.reading_text ft)
      | None -> Printf.sprintf "appears as a pair in %s" r1.fact)

let bound_phrase (f : Constraints.frequency) =
  match f.max with
  | Some m when m = f.min -> Printf.sprintf "exactly %d" f.min
  | Some m -> Printf.sprintf "at least %d and at most %d" f.min m
  | None -> Printf.sprintf "at least %d" f.min

let relation_reading schema fact =
  match Schema.find_fact schema fact with
  | Some ft -> Fact_type.reading_text ft
  | None -> fact

let ring_sentence schema kind fact =
  let r = relation_reading schema fact in
  match (kind : Ring.kind) with
  | Irreflexive -> Printf.sprintf "No object %s itself." r
  | Symmetric -> Printf.sprintf "If x %s y, then y %s x." r r
  | Asymmetric -> Printf.sprintf "If x %s y, then y does not %s x." r r
  | Antisymmetric ->
      Printf.sprintf "If x %s y and y %s x, then x and y are the same object." r r
  | Acyclic -> Printf.sprintf "No chain of '%s' links loops back to its start." r
  | Intransitive -> Printf.sprintf "If x %s y and y %s z, then x does not %s z." r r r

let constraint_ schema (c : Constraints.t) =
  match c.body with
  | Mandatory r ->
      Printf.sprintf "%s %s." (each_player schema r)
        (role_phrase schema r
        |> fun p ->
        match r.side with
        | Ids.Fst ->
            (* "works for some Company" -> "works for at least one Company" *)
            Str_replace.first p "some " "at least one "
        | Ids.Snd -> Str_replace.first p "by some " "by at least one ")
  | Disjunctive_mandatory roles ->
      let phrases = List.map (role_phrase schema) roles in
      Printf.sprintf "%s %s."
        (match roles with r :: _ -> each_player schema r | [] -> "Each object")
        (String.concat " or " phrases)
  | Uniqueness (Single r) ->
      Printf.sprintf "%s %s." (each_player schema r)
        (Str_replace.first (role_phrase schema r) "some " "at most one ")
  | Uniqueness (Pair (r1, _)) ->
      Printf.sprintf "Each pair appears at most once in '%s'."
        (relation_reading schema r1.fact)
  | External_uniqueness roles ->
      let joint =
        match roles with
        | r :: _ -> (
            match Schema.player schema (Ids.co_role r) with
            | Some p -> p
            | None -> "object")
        | [] -> "object"
      in
      let parts =
        List.filter_map
          (fun (r : Ids.role) -> Schema.player schema r)
          roles
      in
      Printf.sprintf "The combination of %s identifies at most one %s."
        (String.concat " and " parts) joint
  | Frequency (Single r, f) ->
      Printf.sprintf "%s that %s, does so %s times." (each_player schema r)
        (role_phrase schema r) (bound_phrase f)
  | Frequency (Pair (r1, _), f) ->
      Printf.sprintf "Each pair occurs %s times in '%s'." (bound_phrase f)
        (relation_reading schema r1.fact)
  | Value_constraint (ot, vs) ->
      Printf.sprintf "The possible values of %s are %s." ot
        (String.concat ", " (List.map Value.to_string (Value.Constraint.elements vs)))
  | Role_exclusion seqs ->
      Printf.sprintf "No object %s."
        (String.concat " and also " (List.map (seq_phrase schema) seqs))
  | Subset (a, b) ->
      Printf.sprintf "Whatever %s also %s." (seq_phrase schema a) (seq_phrase schema b)
  | Equality (a, b) ->
      Printf.sprintf "Exactly the same objects %s and %s." (seq_phrase schema a)
        (seq_phrase schema b)
  | Type_exclusion ots ->
      Printf.sprintf "No object is more than one of: %s." (String.concat ", " ots)
  | Total_subtypes (super, subs) ->
      Printf.sprintf "Each %s is at least one of: %s." super (String.concat ", " subs)
  | Ring (kind, fact) -> ring_sentence schema kind fact

let schema s =
  List.map fact_type (Schema.fact_types s)
  @ List.map
      (fun (sub, super) -> subtype ~sub ~super)
      (Subtype_graph.edges (Schema.graph s))
  @ List.map (constraint_ s) (Schema.constraints s)

let pp_schema ppf s =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list Format.pp_print_string)
    (schema s)
