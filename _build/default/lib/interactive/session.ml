open Orm
module Engine = Orm_patterns.Engine
module Settings = Orm_patterns.Settings
module Diagnostic = Orm_patterns.Diagnostic

module Imap = Map.Make (Int)

type t = {
  schema : Schema.t;
  session_settings : Settings.t;
  cache : Diagnostic.t list Imap.t;  (* pattern number -> its diagnostics *)
  report : Engine.report;
  past : (Edit.t * t) list;  (* newest first: edit together with the state before it *)
  last_rechecked : int list;
}

let enabled settings = List.sort_uniq Int.compare settings.Settings.enabled

let rebuild_report settings schema cache =
  let diagnostics = List.concat_map snd (Imap.bindings cache) in
  Engine.assemble ~settings schema diagnostics

let full_cache settings schema =
  List.fold_left
    (fun cache n -> Imap.add n (Engine.run_pattern n ~settings schema) cache)
    Imap.empty (enabled settings)

let create ?(settings = Settings.default) schema =
  let cache = full_cache settings schema in
  {
    schema;
    session_settings = settings;
    cache;
    report = rebuild_report settings schema cache;
    past = [];
    last_rechecked = enabled settings;
  }

let schema t = t.schema
let settings t = t.session_settings
let report t = t.report

let apply edit t =
  let affected =
    List.filter
      (fun n -> List.mem n (enabled t.session_settings))
      (Edit.affected_patterns t.schema edit)
  in
  let schema = Edit.apply edit t.schema in
  let cache =
    List.fold_left
      (fun cache n ->
        Imap.add n (Engine.run_pattern n ~settings:t.session_settings schema) cache)
      t.cache affected
  in
  {
    schema;
    session_settings = t.session_settings;
    cache;
    report = rebuild_report t.session_settings schema cache;
    past = (edit, t) :: t.past;
    last_rechecked = affected;
  }

let undo t = match t.past with [] -> None | (_, before) :: _ -> Some before

let history t = List.rev_map fst t.past

let last_rechecked t = t.last_rechecked

let is_clean t = t.report.diagnostics = []
