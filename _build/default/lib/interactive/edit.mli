(** Edit operations on a schema — the vocabulary of an interactive modeling
    session (paper Section 4: DogmaModeler re-validates while the user
    edits). *)

open Orm

type t =
  | Add_object_type of Ids.object_type
  | Add_subtype of Ids.object_type * Ids.object_type  (** sub, super *)
  | Add_fact of Fact_type.t
  | Add_constraint of Constraints.t
  | Add of Constraints.body  (** constraint under a fresh identifier *)
  | Remove_constraint of Constraints.id
  | Remove_fact of Ids.fact_type
  | Remove_subtype of Ids.object_type * Ids.object_type
  | Remove_object_type of Ids.object_type

val apply : t -> Schema.t -> Schema.t

val affected_patterns : Schema.t -> t -> int list
(** The patterns whose verdict can change when the edit is applied to the
    schema — the key to incremental re-checking.  Computed from the edit
    kind (e.g. adding a uniqueness constraint can only influence pattern 7;
    a subtype edge influences 1, 2, 3, 9 and — through inherited value
    sets — 4 and 5).  For removals of facts or object types, which drop an
    unbounded set of attached constraints, all patterns are returned. *)

val pp : Format.formatter -> t -> unit
