open Orm
module Sset = Ids.String_set

(* Canonical rendering of a constraint occurrence (value sets print their
   elements in sorted order, so this is insertion-order independent). *)
let constraint_key (c : Constraints.t) = Format.asprintf "%a" Constraints.pp c

let fact_key (ft : Fact_type.t) =
  Format.asprintf "%s|%s|%s|%s" ft.name ft.player1 ft.player2
    (Option.value ~default:"" ft.reading)

(* Body lines of the canonical textual form: everything except the schema
   name, sorted. *)
let body_lines schema =
  let constraints = List.map constraint_key (Schema.constraints schema) in
  let facts = List.map fact_key (Schema.fact_types schema) in
  let edges =
    List.map (fun (a, b) -> a ^ "<" ^ b) (Subtype_graph.edges (Schema.graph schema))
  in
  List.sort String.compare
    (Schema.object_types schema @ facts @ edges @ constraints)

let equal_schemas a b = body_lines a = body_lines b

let one_pass a b =
  let keys_of f xs = List.map (fun x -> (f x, x)) xs in
  let only_in keyed_x keyed_y =
    List.filter (fun (k, _) -> not (List.mem_assoc k keyed_y)) keyed_x
  in
  (* Constraints, compared by id + canonical body. *)
  let ca = keys_of constraint_key (Schema.constraints a) in
  let cb = keys_of constraint_key (Schema.constraints b) in
  let remove_constraints =
    List.map (fun (_, (c : Constraints.t)) -> Edit.Remove_constraint c.id) (only_in ca cb)
  in
  let add_constraints =
    List.map (fun (_, c) -> Edit.Add_constraint c) (only_in cb ca)
  in
  (* Subtype edges. *)
  let ea = Subtype_graph.edges (Schema.graph a) in
  let eb = Subtype_graph.edges (Schema.graph b) in
  let remove_edges =
    List.filter_map
      (fun (sub, super) ->
        if List.mem (sub, super) eb then None else Some (Edit.Remove_subtype (sub, super)))
      ea
  in
  let add_edges =
    List.filter_map
      (fun (sub, super) ->
        if List.mem (sub, super) ea then None else Some (Edit.Add_subtype (sub, super)))
      eb
  in
  (* Fact types: removals for vanished names; Add_fact both for new names
     and for changed definitions (Add_fact replaces in place). *)
  let fa = Schema.fact_types a and fb = Schema.fact_types b in
  let name_of (ft : Fact_type.t) = ft.name in
  let remove_facts =
    List.filter_map
      (fun ft ->
        if List.exists (fun ft' -> name_of ft' = name_of ft) fb then None
        else Some (Edit.Remove_fact (name_of ft)))
      fa
  in
  let add_facts =
    List.filter_map
      (fun ft ->
        match List.find_opt (fun ft' -> name_of ft' = name_of ft) fa with
        | Some existing when fact_key existing = fact_key ft -> None
        | Some _ | None -> Some (Edit.Add_fact ft))
      fb
  in
  (* Object types. *)
  let ta = Sset.of_list (Schema.object_types a) in
  let tb = Sset.of_list (Schema.object_types b) in
  let remove_types =
    List.map (fun t -> Edit.Remove_object_type t) (Sset.elements (Sset.diff ta tb))
  in
  let add_types =
    List.map (fun t -> Edit.Add_object_type t) (Sset.elements (Sset.diff tb ta))
  in
  remove_constraints @ remove_edges @ remove_facts @ remove_types @ add_types
  @ add_facts @ add_edges @ add_constraints

(* Removal cascades (a removed object type drops its facts, a removed or
   replaced fact drops attached constraints) can delete elements the target
   still wants, so a single pass is not always enough: iterate until the
   pass produces no edits.  Each extra round only re-adds cascade victims,
   so the loop converges quickly; the bound is a safety net. *)
let diff a b =
  let rec loop a acc rounds =
    match one_pass a b with
    | [] -> List.rev acc
    | _ when rounds = 0 -> List.rev acc
    | script ->
        let a' = List.fold_left (fun s e -> Edit.apply e s) a script in
        loop a' (List.rev_append script acc) (rounds - 1)
  in
  loop a [] 4
