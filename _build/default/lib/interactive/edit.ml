open Orm

type t =
  | Add_object_type of Ids.object_type
  | Add_subtype of Ids.object_type * Ids.object_type
  | Add_fact of Fact_type.t
  | Add_constraint of Constraints.t
  | Add of Constraints.body
  | Remove_constraint of Constraints.id
  | Remove_fact of Ids.fact_type
  | Remove_subtype of Ids.object_type * Ids.object_type
  | Remove_object_type of Ids.object_type

let apply edit schema =
  match edit with
  | Add_object_type ot -> Schema.add_object_type ot schema
  | Add_subtype (sub, super) -> Schema.add_subtype ~sub ~super schema
  | Add_fact ft -> Schema.add_fact ft schema
  | Add_constraint c -> Schema.add_constraint c schema
  | Add body -> Schema.add body schema
  | Remove_constraint id -> Schema.remove_constraint id schema
  | Remove_fact f -> Schema.remove_fact f schema
  | Remove_subtype (sub, super) -> Schema.remove_subtype ~sub ~super schema
  | Remove_object_type ot -> Schema.remove_object_type ot schema

let all = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12 ]

let patterns_of_body = function
  | Constraints.Mandatory _ -> [ 3; 12 ]
  | Constraints.Disjunctive_mandatory _ -> []
  | Constraints.Uniqueness _ -> [ 7 ]
  | Constraints.External_uniqueness _ -> []
  | Constraints.Frequency _ -> [ 4; 5; 7 ]
  | Constraints.Value_constraint _ -> [ 4; 5; 10; 11 ]
  | Constraints.Role_exclusion _ -> [ 3; 5; 6 ]
  | Constraints.Subset _ | Constraints.Equality _ -> [ 6 ]
  | Constraints.Type_exclusion _ -> [ 2 ]
  | Constraints.Total_subtypes _ -> []
  | Constraints.Ring _ -> [ 8; 11; 12 ]

let affected_patterns schema = function
  | Add_object_type _ -> []
  | Add_subtype _ | Remove_subtype _ ->
      (* Subtyping feeds the hierarchy patterns directly, patterns 4/5/10/11
         through inherited (effective) value sets, and pattern 12 through
         the successor-stays-inside test. *)
      [ 1; 2; 3; 4; 5; 9; 10; 11; 12 ]
  | Add_fact ft ->
      (* A fresh fact type carries no constraints yet; but adding under an
         existing name REPLACES the fact type (possibly changing its
         players), which can affect any constraint mentioning its roles. *)
      if Schema.find_fact schema ft.Fact_type.name = None then [] else all
  | Add_constraint { body; _ } | Add body -> patterns_of_body body
  | Remove_constraint id -> (
      match Schema.find_constraint schema id with
      | Some { body; _ } -> patterns_of_body body
      | None -> [])
  | Remove_fact _ | Remove_object_type _ ->
      (* Removal cascades to an unbounded set of attached constraints. *)
      all

let pp ppf = function
  | Add_object_type ot -> Format.fprintf ppf "add object type %s" ot
  | Add_subtype (sub, super) -> Format.fprintf ppf "add subtype %s < %s" sub super
  | Add_fact ft -> Format.fprintf ppf "add fact %a" Fact_type.pp ft
  | Add_constraint c -> Format.fprintf ppf "add %a" Constraints.pp c
  | Add body -> Format.fprintf ppf "add %a" Constraints.pp_body body
  | Remove_constraint id -> Format.fprintf ppf "remove constraint %s" id
  | Remove_fact f -> Format.fprintf ppf "remove fact %s" f
  | Remove_subtype (sub, super) -> Format.fprintf ppf "remove subtype %s < %s" sub super
  | Remove_object_type ot -> Format.fprintf ppf "remove object type %s" ot
