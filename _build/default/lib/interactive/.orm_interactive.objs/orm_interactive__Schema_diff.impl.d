lib/interactive/schema_diff.ml: Constraints Edit Fact_type Format Ids List Option Orm Schema String Subtype_graph
