lib/interactive/edit.ml: Constraints Fact_type Format Ids Orm Schema
