lib/interactive/session.ml: Edit Int List Map Orm Orm_patterns Schema
