lib/interactive/session.mli: Edit Orm Orm_patterns Schema
