lib/interactive/edit.mli: Constraints Fact_type Format Ids Orm Schema
