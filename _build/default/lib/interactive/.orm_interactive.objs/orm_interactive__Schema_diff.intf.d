lib/interactive/schema_diff.mli: Edit Orm Schema
