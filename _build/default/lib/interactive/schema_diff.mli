(** Edit scripts between schema versions.

    [diff a b] computes a list of {!Edit.t} operations that transforms [a]
    into [b] — the bridge between file-based workflows (reload a [.orm]
    file) and the incremental session: instead of re-creating the session,
    apply the diff and let the engine re-check only the affected patterns.

    The script orders removals before additions so that cascade semantics
    ([Remove_fact] drops attached constraints, [Remove_object_type] drops
    attached facts) never deletes something the target still wants.  Fact
    types that exist in both schemas under the same name but with different
    players or readings are updated in place via [Add_fact] (which replaces),
    preserving their surviving constraints. *)

open Orm

val diff : Schema.t -> Schema.t -> Edit.t list
(** [diff a b] is an edit script with
    [List.fold_left (fun s e -> Edit.apply e s) a (diff a b)] structurally
    equal to [b] (same object types, subtype edges, fact types and
    constraint occurrences, in canonical order). *)

val equal_schemas : Schema.t -> Schema.t -> bool
(** Structural equality used as the diff's target notion (canonical
    printed form). *)
