lib/explain/explain.ml: Fact_type Format Ids List Option Orm Orm_patterns Orm_verbalize Printf Schema String Subtype_graph
