lib/explain/explain.mli: Format Orm Orm_patterns Schema
