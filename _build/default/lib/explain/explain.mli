(** Domain-expert explanations of diagnostics.

    The paper's CCFORM experience (Section 4) hinged on diagnostics that
    lawyers could read: DogmaModeler's messages name the culprit
    constraints, and ORM's verbalization makes those constraints readable.
    This module combines the two: an explanation lists the culprit
    constraints {e verbalized as sentences} (the premises), then the
    engine's conclusion — the "why" a domain expert sees next to the red
    element in the diagram. *)

open Orm

type t = {
  headline : string;  (** one-line conclusion, e.g. which element is dead *)
  premises : string list;
      (** the culprit constraints, verbalized; subtype links involved are
          verbalized too for the hierarchy patterns *)
  conclusion : string;  (** the diagnostic's own message *)
  pattern : string option;  (** pattern name, when pattern-originated *)
}

val diagnostic : Schema.t -> Orm_patterns.Diagnostic.t -> t

val report : Schema.t -> Orm_patterns.Engine.report -> t list
(** One explanation per diagnostic, in report order. *)

val pp : Format.formatter -> t -> unit
val to_text : t -> string
