open Orm
module Diagnostic = Orm_patterns.Diagnostic

type t = {
  headline : string;
  premises : string list;
  conclusion : string;
  pattern : string option;
}

let element_phrase schema = function
  | Diagnostic.Object_type ot -> Printf.sprintf "no %s can ever exist" ot
  | Diagnostic.Role r -> (
      match Schema.find_fact schema r.fact with
      | Some ft -> (
          let reading = Fact_type.reading_text ft in
          match r.side with
          | Ids.Fst -> Printf.sprintf "no %s can ever %s anything" ft.player1 reading
          | Ids.Snd ->
              Printf.sprintf "no %s can ever be %s by anything" ft.player2 reading)
      | None -> Printf.sprintf "role %s can never be played" (Ids.role_to_string r))
  | Diagnostic.Fact f -> Printf.sprintf "the fact '%s' can never be recorded" f

let headline_of schema (d : Diagnostic.t) =
  let phrases = List.map (element_phrase schema) d.affected in
  match d.certainty with
  | Diagnostic.Element_unsatisfiable -> String.concat "; " phrases
  | Diagnostic.Jointly_unsatisfiable ->
      "these cannot all hold in one population: " ^ String.concat "; " phrases

(* Subtype links relevant to the affected types, verbalized as premises for
   the hierarchy patterns (whose culprit list carries no constraint ids). *)
let subtype_premises schema (d : Diagnostic.t) =
  let g = Schema.graph schema in
  List.concat_map
    (function
      | Diagnostic.Object_type t ->
          List.map
            (fun super -> Orm_verbalize.Verbalize.subtype ~sub:t ~super)
            (Subtype_graph.direct_supertypes g t)
      | Diagnostic.Role _ | Diagnostic.Fact _ -> [])
    d.affected

let diagnostic schema (d : Diagnostic.t) =
  let constraint_premises =
    List.filter_map
      (fun id ->
        Option.map
          (fun c -> Orm_verbalize.Verbalize.constraint_ schema c)
          (Schema.find_constraint schema id))
      d.culprits
  in
  let premises =
    List.sort_uniq String.compare (constraint_premises @ subtype_premises schema d)
  in
  {
    headline = headline_of schema d;
    premises;
    conclusion = d.message;
    pattern =
      Option.map Diagnostic.pattern_name (Diagnostic.pattern_number d);
  }

let report schema (r : Orm_patterns.Engine.report) =
  List.map (diagnostic schema) r.diagnostics

let pp ppf e =
  Format.fprintf ppf "@[<v2>%s%s@," e.headline
    (match e.pattern with Some p -> Printf.sprintf "  [%s]" p | None -> "");
  if e.premises <> [] then begin
    Format.fprintf ppf "because:@,";
    List.iter (fun p -> Format.fprintf ppf "  - %s@," p) e.premises
  end;
  Format.fprintf ppf "%s@]" e.conclusion

let to_text e = Format.asprintf "%a" pp e
