lib/repair/repair.ml: Constraints Format Ids Int List Orm Orm_patterns Schema Subtype_graph
