lib/repair/repair.mli: Constraints Format Ids Orm Orm_patterns Schema
