(** Repair suggestions for unsatisfiable schemas.

    The paper's workflow (Section 4) is diagnose-then-fix: DogmaModeler
    names the culprit constraints and the modeler removes or weakens one.
    This module automates the proposal step: candidate actions are derived
    from the diagnostics (drop a culprit constraint, or cut a subtype edge
    for the hierarchy patterns 1 and 9), scored by how many diagnostics
    they eliminate, and optionally applied greedily until the schema is
    pattern-clean.

    Repair is heuristic: it restores {e pattern-cleanliness}, which is
    necessary but (the patterns being incomplete) not sufficient for strong
    satisfiability. *)

open Orm

type action =
  | Drop_constraint of Constraints.id
  | Cut_subtype of Ids.object_type * Ids.object_type  (** sub, super *)

val pp_action : Format.formatter -> action -> unit
val apply_action : action -> Schema.t -> Schema.t

type suggestion = {
  action : action;
  fixes : int;  (** diagnostics eliminated by the action alone *)
  remaining : int;  (** diagnostics left afterwards *)
}

val suggestions :
  ?settings:Orm_patterns.Settings.t -> Schema.t -> suggestion list
(** Candidate single actions, best first (most diagnostics fixed, ties by
    fewest remaining, then deterministic order).  Empty iff the schema is
    already clean or no candidate helps. *)

val repair :
  ?settings:Orm_patterns.Settings.t ->
  ?max_steps:int ->
  Schema.t ->
  Schema.t * action list
(** Greedy repair loop: repeatedly applies the best suggestion (default at
    most 32 steps).  Returns the repaired schema and the actions taken, in
    order.  Stops early when clean or when no action makes progress. *)
