open Orm
module Engine = Orm_patterns.Engine
module Diagnostic = Orm_patterns.Diagnostic

type action =
  | Drop_constraint of Constraints.id
  | Cut_subtype of Ids.object_type * Ids.object_type

let pp_action ppf = function
  | Drop_constraint id -> Format.fprintf ppf "drop constraint %s" id
  | Cut_subtype (sub, super) -> Format.fprintf ppf "cut subtype %s < %s" sub super

let apply_action action schema =
  match action with
  | Drop_constraint id -> Schema.remove_constraint id schema
  | Cut_subtype (sub, super) -> Schema.remove_subtype ~sub ~super schema

type suggestion = {
  action : action;
  fixes : int;
  remaining : int;
}

(* Candidate actions for one diagnostic: each culprit constraint, plus the
   subtype edges involved in the hierarchy patterns (which have no culprit
   constraint occurrence to remove). *)
let candidates_of schema (d : Diagnostic.t) =
  let g = Schema.graph schema in
  let constraint_actions = List.map (fun id -> Drop_constraint id) d.culprits in
  let edge_actions =
    match d.origin with
    | Diagnostic.Pattern 1 ->
        List.concat_map
          (function
            | Diagnostic.Object_type t ->
                List.map
                  (fun super -> Cut_subtype (t, super))
                  (Subtype_graph.direct_supertypes g t)
            | Diagnostic.Role _ | Diagnostic.Fact _ -> [])
          d.affected
    | Diagnostic.Pattern 9 ->
        (* Cutting any edge inside the loop opens it. *)
        let members =
          List.filter_map
            (function Diagnostic.Object_type t -> Some t | _ -> None)
            d.affected
        in
        List.concat_map
          (fun sub ->
            List.filter_map
              (fun super -> if List.mem super members then Some (Cut_subtype (sub, super)) else None)
              (Subtype_graph.direct_supertypes g sub))
          members
    | Diagnostic.Pattern 2 ->
        (* Besides dropping the exclusive constraint, detaching the doomed
           subtype from one of its supertypes resolves the conflict. *)
        List.concat_map
          (function
            | Diagnostic.Object_type t ->
                List.map
                  (fun super -> Cut_subtype (t, super))
                  (Subtype_graph.direct_supertypes g t)
            | Diagnostic.Role _ | Diagnostic.Fact _ -> [])
          d.affected
    | _ -> []
  in
  constraint_actions @ edge_actions

let dedup_actions actions =
  List.sort_uniq compare actions

let suggestions ?(settings = Orm_patterns.Settings.default) schema =
  let before = (Engine.check ~settings schema).diagnostics in
  if before = [] then []
  else
    let n_before = List.length before in
    let candidates =
      dedup_actions (List.concat_map (candidates_of schema) before)
    in
    List.filter_map
      (fun action ->
        let after =
          (Engine.check ~settings (apply_action action schema)).diagnostics
        in
        let remaining = List.length after in
        if remaining < n_before then
          Some { action; fixes = n_before - remaining; remaining }
        else None)
      candidates
    |> List.sort (fun a b ->
           match Int.compare b.fixes a.fixes with
           | 0 -> (
               match Int.compare a.remaining b.remaining with
               | 0 -> compare a.action b.action
               | c -> c)
           | c -> c)

let repair ?(settings = Orm_patterns.Settings.default) ?(max_steps = 32) schema =
  let rec loop schema taken steps =
    if steps = 0 then (schema, List.rev taken)
    else
      match suggestions ~settings schema with
      | [] -> (schema, List.rev taken)
      | best :: _ ->
          loop (apply_action best.action schema) (best.action :: taken) (steps - 1)
  in
  loop schema [] max_steps
