(** The model checker: does a population satisfy a schema?

    This implements ORM's set-theoretic semantics [H89, BHW91] for the
    paper's fragment, including the two implicit rules the paper leans on:

    - {e implicit type exclusion}: object types that share no common
      supertype are mutually exclusive by definition (Section 2, pattern 1);
    - {e strict subtyping}: the population of a subtype is a {e strict}
      subset of its supertype's [H01] (pattern 9 depends on this).

    Both are configurable so that their effect can be ablated. *)

open Orm

type config = {
  strict_subtyping : bool;
      (** require subtype populations to be proper subsets (default [true]) *)
  implicit_type_exclusion : bool;
      (** enforce disjointness of unrelated type families (default [true]) *)
}

val default_config : config

(** A violated rule, with enough structure for tests to assert on. *)
type violation =
  | Untyped_component of Ids.role * Value.t
      (** a tuple component is not in the role player's extension *)
  | Subtype_not_subset of Ids.object_type * Ids.object_type
  | Subtype_not_strict of Ids.object_type * Ids.object_type
  | Implicit_exclusion of Ids.object_type * Ids.object_type * Value.t
      (** unrelated types sharing a value *)
  | Broken of Constraints.id * string
      (** a declared constraint, with a human-readable reason *)

val pp_violation : Format.formatter -> violation -> unit

val violations : ?config:config -> Schema.t -> Population.t -> violation list
(** All rules the population breaks; [[]] means the population is a model
    of the schema. *)

val satisfies : ?config:config -> Schema.t -> Population.t -> bool

val populates_role : Population.t -> Ids.role -> bool
val populates_type : Population.t -> Ids.object_type -> bool

val check_strong : ?config:config -> Schema.t -> Population.t -> (unit, string) result
(** [check_strong s pop] is [Ok ()] iff [pop] satisfies [s] {e and}
    populates every role and every object type — a witness of the paper's
    strong satisfiability. *)
