open Orm

type config = {
  strict_subtyping : bool;
  implicit_type_exclusion : bool;
}

let default_config = { strict_subtyping = true; implicit_type_exclusion = true }

type violation =
  | Untyped_component of Ids.role * Value.t
  | Subtype_not_subset of Ids.object_type * Ids.object_type
  | Subtype_not_strict of Ids.object_type * Ids.object_type
  | Implicit_exclusion of Ids.object_type * Ids.object_type * Value.t
  | Broken of Constraints.id * string

let pp_violation ppf = function
  | Untyped_component (r, v) ->
      Format.fprintf ppf "value %a plays %a but is not in the player's extension"
        Value.pp v Ids.pp_role r
  | Subtype_not_subset (sub, super) ->
      Format.fprintf ppf "population of %s is not a subset of %s's" sub super
  | Subtype_not_strict (sub, super) ->
      Format.fprintf ppf "population of subtype %s equals its supertype %s's" sub super
  | Implicit_exclusion (a, b, v) ->
      Format.fprintf ppf
        "unrelated object types %s and %s share the value %a" a b Value.pp v
  | Broken (id, why) -> Format.fprintf ppf "constraint %s violated: %s" id why

(* Count the occurrences of a row in a row list. *)
let count_of row rows = List.length (List.filter (( = ) row) rows)

let subset_rows a b = List.for_all (fun row -> List.mem row b) a

let check_typing schema pop acc =
  List.fold_left
    (fun acc (ft : Fact_type.t) ->
      List.fold_left
        (fun acc (a, b) ->
          let check side v acc =
            let player = Fact_type.player ft side in
            if Value.Set.mem v (Population.extension pop player) then acc
            else Untyped_component (Ids.role ft.name side, v) :: acc
          in
          check Ids.Fst a (check Ids.Snd b acc))
        acc
        (Population.tuples pop ft.name))
    acc (Schema.fact_types schema)

let check_subtyping config schema pop acc =
  List.fold_left
    (fun acc (sub, super) ->
      let ext_sub = Population.extension pop sub in
      let ext_super = Population.extension pop super in
      if not (Value.Set.subset ext_sub ext_super) then
        Subtype_not_subset (sub, super) :: acc
      else if config.strict_subtyping && Value.Set.equal ext_sub ext_super
              && not (Value.Set.is_empty ext_sub) then
        (* A strict subset may not coincide with its supertype [H01]; empty =
           empty is tolerated so that the everywhere-empty population remains
           a (weak) model. *)
        Subtype_not_strict (sub, super) :: acc
      else acc)
    acc
    (Subtype_graph.edges (Schema.graph schema))

let check_implicit_exclusion config schema pop acc =
  if not config.implicit_type_exclusion then acc
  else
    let graph = Schema.graph schema in
    let rec pairs = function
      | [] -> []
      | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
    in
    List.fold_left
      (fun acc (a, b) ->
        if Subtype_graph.related graph a b then acc
        else
          let shared =
            Value.Set.inter (Population.extension pop a) (Population.extension pop b)
          in
          match Value.Set.choose_opt shared with
          | None -> acc
          | Some v -> Implicit_exclusion (a, b, v) :: acc)
      acc
      (pairs (Schema.object_types schema))

let broken id fmt = Format.kasprintf (fun why -> Broken (id, why)) fmt

let check_constraint schema pop acc (c : Constraints.t) =
  match c.body with
  | Mandatory r -> (
      match Schema.player schema r with
      | None -> acc
      | Some player ->
          let playing = Population.role_population pop r in
          let missing = Value.Set.diff (Population.extension pop player) playing in
          Value.Set.fold
            (fun v acc ->
              broken c.id "%a is a %s but does not play %a" Value.pp v player
                Ids.pp_role r
              :: acc)
            missing acc)
  | Disjunctive_mandatory roles ->
      let players =
        List.sort_uniq String.compare (List.filter_map (Schema.player schema) roles)
      in
      let must_play =
        List.fold_left
          (fun acc p -> Value.Set.union acc (Population.extension pop p))
          Value.Set.empty players
      in
      let playing =
        List.fold_left
          (fun acc r -> Value.Set.union acc (Population.role_population pop r))
          Value.Set.empty roles
      in
      Value.Set.fold
        (fun v acc ->
          if Value.Set.mem v playing then acc
          else broken c.id "%a plays none of the disjunctively mandatory roles" Value.pp v :: acc)
        must_play acc
  | Uniqueness seq ->
      let rows = Population.seq_population pop seq in
      List.fold_left
        (fun acc row ->
          if count_of row rows > 1 then
            broken c.id "row occurs %d times under a uniqueness constraint"
              (count_of row rows)
            :: acc
          else acc)
        acc
        (List.sort_uniq compare rows)
  | External_uniqueness roles ->
      (* In the join on the common co-player, a combination of values at the
         constrained roles identifies at most one joining instance. *)
      let component (r : Ids.role) (a, b) =
        match r.side with Ids.Fst -> a | Ids.Snd -> b
      in
      let values_for x (r : Ids.role) =
        List.filter_map
          (fun tuple ->
            if Value.equal (component (Ids.co_role r) tuple) x then
              Some (component r tuple)
            else None)
          (Population.tuples pop r.fact)
      in
      let entities =
        List.fold_left
          (fun acc (r : Ids.role) ->
            Value.Set.union acc (Population.role_population pop (Ids.co_role r)))
          Value.Set.empty roles
        |> Value.Set.elements
      in
      let rec cartesian = function
        | [] -> [ [] ]
        | vs :: rest ->
            let tails = cartesian rest in
            List.concat_map (fun v -> List.map (fun t -> v :: t) tails) vs
      in
      let combos x =
        let per_role = List.map (values_for x) roles in
        if List.exists (fun vs -> vs = []) per_role then []
        else cartesian per_role
      in
      let rec check_pairs acc = function
        | [] -> acc
        | x :: rest ->
            let cx = combos x in
            let acc =
              List.fold_left
                (fun acc y ->
                  let shared = List.filter (fun v -> List.mem v (combos y)) cx in
                  match shared with
                  | [] -> acc
                  | combo :: _ ->
                      broken c.id
                        "%a and %a share the identifying combination (%s)" Value.pp x
                        Value.pp y
                        (String.concat ", " (List.map Value.to_string combo))
                      :: acc)
                acc rest
            in
            check_pairs acc rest
      in
      check_pairs acc entities
  | Frequency (seq, { min; max }) ->
      let rows = Population.seq_population pop seq in
      List.fold_left
        (fun acc row ->
          let n = count_of row rows in
          if n < min then
            broken c.id "row occurs %d times, below the frequency minimum %d" n min :: acc
          else
            match max with
            | Some m when n > m ->
                broken c.id "row occurs %d times, above the frequency maximum %d" n m :: acc
            | _ -> acc)
        acc
        (List.sort_uniq compare rows)
  | Value_constraint (ot, vs) ->
      Value.Set.fold
        (fun v acc ->
          if Value.Constraint.mem v vs then acc
          else broken c.id "%a is not an admissible value of %s" Value.pp v ot :: acc)
        (Population.extension pop ot)
        acc
  | Role_exclusion seqs ->
      let rec pairs = function
        | [] -> []
        | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
      in
      List.fold_left
        (fun acc (a, b) ->
          let rows_a = Population.seq_population pop a in
          let rows_b = Population.seq_population pop b in
          match List.find_opt (fun row -> List.mem row rows_b) rows_a with
          | None -> acc
          | Some _ ->
              broken c.id "sequences %a and %a overlap despite the exclusion"
                Ids.pp_seq a Ids.pp_seq b
              :: acc)
        acc (pairs seqs)
  | Subset (sub, super) ->
      if subset_rows (Population.seq_population pop sub) (Population.seq_population pop super)
      then acc
      else
        broken c.id "population of %a is not included in %a" Ids.pp_seq sub
          Ids.pp_seq super
        :: acc
  | Equality (a, b) ->
      let rows_a = Population.seq_population pop a in
      let rows_b = Population.seq_population pop b in
      if subset_rows rows_a rows_b && subset_rows rows_b rows_a then acc
      else
        broken c.id "populations of %a and %a differ despite the equality" Ids.pp_seq a
          Ids.pp_seq b
        :: acc
  | Type_exclusion ots ->
      let rec pairs = function
        | [] -> []
        | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
      in
      List.fold_left
        (fun acc (a, b) ->
          let shared = Value.Set.inter (Population.extension pop a) (Population.extension pop b) in
          match Value.Set.choose_opt shared with
          | None -> acc
          | Some v ->
              broken c.id "%a belongs to both exclusive types %s and %s" Value.pp v a b
              :: acc)
        acc (pairs ots)
  | Total_subtypes (super, subs) ->
      let covered =
        List.fold_left
          (fun acc sub -> Value.Set.union acc (Population.extension pop sub))
          Value.Set.empty subs
      in
      Value.Set.fold
        (fun v acc ->
          if Value.Set.mem v covered then acc
          else broken c.id "%a is a %s but belongs to none of the covering subtypes" Value.pp v super :: acc)
        (Population.extension pop super)
        acc
  | Ring (kind, fact) ->
      if Ring.holds kind (Population.tuples pop fact) then acc
      else broken c.id "relation %s violates the %s ring constraint" fact (Ring.to_string kind) :: acc

let violations ?(config = default_config) schema pop =
  []
  |> check_typing schema pop
  |> check_subtyping config schema pop
  |> check_implicit_exclusion config schema pop
  |> fun acc ->
  List.fold_left (check_constraint schema pop) acc (Schema.constraints schema)
  |> List.rev

let satisfies ?config schema pop = violations ?config schema pop = []

let populates_role pop r = Population.role_column pop r <> []
let populates_type pop ot = not (Value.Set.is_empty (Population.extension pop ot))

let check_strong ?config schema pop =
  match violations ?config schema pop with
  | v :: _ -> Error (Format.asprintf "%a" pp_violation v)
  | [] -> (
      let empty_type =
        List.find_opt (fun ot -> not (populates_type pop ot)) (Schema.object_types schema)
      in
      let empty_role =
        List.find_opt (fun r -> not (populates_role pop r)) (Schema.all_roles schema)
      in
      match (empty_type, empty_role) with
      | Some ot, _ -> Error (Printf.sprintf "object type %s is unpopulated" ot)
      | None, Some r -> Error (Printf.sprintf "role %s is unpopulated" (Ids.role_to_string r))
      | None, None -> Ok ())
