(** Populations (interpretations) of an ORM schema.

    A population assigns a finite extension of {!Orm.Value.t} values to every
    object type and a finite set of value pairs to every fact type.  The
    paper's three satisfiability notions quantify over populations:
    a schema is {e weakly} satisfiable if some population satisfies all
    constraints, a concept is satisfiable if some satisfying population
    gives it a non-empty extension, and a role is satisfiable if some
    satisfying population populates it. *)

open Orm

type t

val empty : t

val add_object : Ids.object_type -> Value.t -> t -> t
(** Adds a value to the extension of an object type (idempotent). *)

val add_objects : Ids.object_type -> Value.t list -> t -> t

val add_tuple : Ids.fact_type -> Value.t * Value.t -> t -> t
(** Adds a tuple to a fact type's extension (idempotent: predicates are
    sets). *)

val add_tuples : Ids.fact_type -> (Value.t * Value.t) list -> t -> t

val extension : t -> Ids.object_type -> Value.Set.t
(** Extension of an object type (empty if unmentioned). *)

val tuples : t -> Ids.fact_type -> (Value.t * Value.t) list
(** Tuples of a fact type, in insertion order, duplicate-free. *)

val role_column : t -> Ids.role -> Value.t list
(** The values occurring at one end of a fact type, {e with} repetitions —
    the multiset against which frequency constraints count. *)

val role_population : t -> Ids.role -> Value.Set.t
(** The set of values playing the role. *)

val seq_population : t -> Ids.role_seq -> (Value.t list) list
(** The population of a role sequence: singleton rows for a single role,
    two-element rows (in sequence order) for a pair. *)

val object_types : t -> Ids.object_type list
val fact_types : t -> Ids.fact_type list

val is_empty : t -> bool
val cardinality : t -> int
(** Total number of objects and tuples — a size measure for reporting. *)

val pp : Format.formatter -> t -> unit
