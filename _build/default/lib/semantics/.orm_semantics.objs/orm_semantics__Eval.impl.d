lib/semantics/eval.ml: Constraints Fact_type Format Ids List Orm Population Printf Ring Schema String Subtype_graph Value
