lib/semantics/population.mli: Format Ids Orm Value
