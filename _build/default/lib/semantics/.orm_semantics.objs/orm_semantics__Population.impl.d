lib/semantics/population.ml: Format Ids List Option Orm Value
