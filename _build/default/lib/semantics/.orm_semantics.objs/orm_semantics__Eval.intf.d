lib/semantics/eval.mli: Constraints Format Ids Orm Population Schema Value
