open Orm
module Smap = Ids.String_map

type t = {
  extensions : Value.Set.t Smap.t;
  facts : (Value.t * Value.t) list Smap.t;  (* insertion order, duplicate-free *)
}

let empty = { extensions = Smap.empty; facts = Smap.empty }

let add_object ot v pop =
  {
    pop with
    extensions =
      Smap.update ot
        (function
          | None -> Some (Value.Set.singleton v) | Some set -> Some (Value.Set.add v set))
        pop.extensions;
  }

let add_objects ot vs pop = List.fold_left (fun pop v -> add_object ot v pop) pop vs

let add_tuple fact tuple pop =
  {
    pop with
    facts =
      Smap.update fact
        (function
          | None -> Some [ tuple ]
          | Some tuples ->
              if List.mem tuple tuples then Some tuples else Some (tuples @ [ tuple ]))
        pop.facts;
  }

let add_tuples fact tuples pop =
  List.fold_left (fun pop t -> add_tuple fact t pop) pop tuples

let extension pop ot =
  Option.value ~default:Value.Set.empty (Smap.find_opt ot pop.extensions)

let tuples pop fact = Option.value ~default:[] (Smap.find_opt fact pop.facts)

let component side (a, b) = match side with Ids.Fst -> a | Ids.Snd -> b

let role_column pop (r : Ids.role) = List.map (component r.side) (tuples pop r.fact)

let role_population pop r = Value.Set.of_list (role_column pop r)

let seq_population pop = function
  | Ids.Single r -> List.map (fun v -> [ v ]) (role_column pop r)
  | Ids.Pair (r1, r2) ->
      List.map
        (fun tuple -> [ component r1.side tuple; component r2.side tuple ])
        (tuples pop r1.fact)

let object_types pop = List.map fst (Smap.bindings pop.extensions)
let fact_types pop = List.map fst (Smap.bindings pop.facts)

let is_empty pop =
  Smap.for_all (fun _ set -> Value.Set.is_empty set) pop.extensions
  && Smap.for_all (fun _ ts -> ts = []) pop.facts

let cardinality pop =
  Smap.fold (fun _ set acc -> acc + Value.Set.cardinal set) pop.extensions 0
  + Smap.fold (fun _ ts acc -> acc + List.length ts) pop.facts 0

let pp ppf pop =
  Format.fprintf ppf "@[<v>";
  Smap.iter
    (fun ot set ->
      Format.fprintf ppf "%s = {%a}@," ot
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Value.pp)
        (Value.Set.elements set))
    pop.extensions;
  Smap.iter
    (fun fact ts ->
      Format.fprintf ppf "%s = {%a}@," fact
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (fun ppf (a, b) -> Format.fprintf ppf "(%a, %a)" Value.pp a Value.pp b))
        ts)
    pop.facts;
  Format.fprintf ppf "@]"
