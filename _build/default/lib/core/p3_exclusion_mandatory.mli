(** Pattern 3 (Exclusion-Mandatory).

    If a role [ri] in an exclusion constraint is mandatory, then any other
    excluded role [rj] whose player is the same object type — or one of its
    subtypes — can never be played: every candidate player of [rj] is
    forced into [ri] and thereby barred from [rj] (paper Fig. 4 a–c). *)

val check : Settings.t -> Orm.Schema.t -> Diagnostic.t list
