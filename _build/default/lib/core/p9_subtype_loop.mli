(** Pattern 9 (Loops in Subtypes).

    The population of an ORM subtype is a {e strict} subset of its
    supertype's [H01], so a loop in the subtype relation would make a
    population a strict subset of itself; every type on the loop is
    unsatisfiable (paper Fig. 13).  Loops of subset constraints between
    roles, by contrast, merely force equality and are not flagged. *)

val check : Settings.t -> Orm.Schema.t -> Diagnostic.t list
