(** Set-comparison implication closure (paper Fig. 9, used by pattern 6).

    Subset and equality constraints — jointly called {e SetPaths} by the
    paper (an equality is two subsets) — form a directed containment graph
    over role sequences.  Two implications from Fig. 9 are materialized when
    building the graph:

    - a subset between two predicates implies a subset between their
      corresponding roles;
    - (used by the pattern itself) an exclusion between single roles implies
      an exclusion between their predicates, so a SetPath between the
      predicates also contradicts a role-level exclusion. *)

open Orm

type t

val build : Schema.t -> t
(** Collects all subset/equality constraints of the schema and closes them
    under the component-wise implication. *)

val set_path : t -> Ids.role_seq -> Ids.role_seq -> Constraints.id list option
(** [set_path g a b] is [Some ids] when the population of [a] is forced to
    be included in [b]'s by a chain of (possibly implied) subset
    constraints, where [ids] are the constraint occurrences along the
    chain; [None] when no such chain exists. *)

val any_path : t -> Ids.role_seq -> Ids.role_seq -> Constraints.id list option
(** A SetPath in either direction. *)
