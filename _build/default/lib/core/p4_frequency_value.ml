open Orm

let check settings schema =
  List.concat_map
    (fun (c : Constraints.t) ->
      match c.body with
      | Frequency (Single r, { min; _ }) -> (
          let co = Ids.co_role r in
          match Schema.player schema co with
          | None -> []
          | Some co_player -> (
              match Pattern_util.value_info settings schema co_player with
              | Some (vs, vc_ids) when Value.Constraint.cardinal vs < min ->
                  [
                    Diagnostic.msg (Pattern 4)
                      [ Role r ]
                      (c.id :: vc_ids)
                      "The role %s cannot be instantiated: the frequency \
                       constraint %s requires at least %d distinct values of \
                       %s, but its value constraint admits only %d."
                      (Ids.role_to_string r) c.id min co_player
                      (Value.Constraint.cardinal vs);
                  ]
              | _ -> []))
      | _ -> [])
    (Schema.constraints schema)
