(** Pattern 7 (Uniqueness-Frequency).

    A uniqueness constraint limits each player to one occurrence, so a
    frequency constraint with minimum strictly greater than 1 on the same
    sequence is contradictory (paper Fig. 10).  Because an ORM predicate is
    a {e set} of tuples, a frequency constraint spanning a whole predicate
    is treated as if a spanning uniqueness constraint were present (the
    paper's reading of formation rule 2).  A minimum of exactly 1 is
    redundant but satisfiable — the paper's loosening of formation rule 3. *)

val check : Settings.t -> Orm.Schema.t -> Diagnostic.t list
