open Orm

let rec pairs = function
  | [] -> []
  | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest

let value_info (settings : Settings.t) schema ot =
  let types =
    if settings.effective_value_sets then
      Ids.String_set.elements (Subtype_graph.supertypes_with_self (Schema.graph schema) ot)
    else [ ot ]
  in
  let infos =
    List.filter_map
      (fun t ->
        Option.map
          (fun ((c : Constraints.t), vs) -> (c.id, vs))
          (Schema.value_constraint schema t))
      types
  in
  match infos with
  | [] -> None
  | (id, vs) :: rest ->
      let set, ids =
        List.fold_left
          (fun (set, ids) (id, vs') -> (Value.Constraint.inter set vs', id :: ids))
          (vs, [ id ]) rest
      in
      Some (set, List.rev ids)

let singles seqs =
  let extract = function Ids.Single r -> Some r | Ids.Pair _ -> None in
  let roles = List.filter_map extract seqs in
  if List.length roles = List.length seqs then Some roles else None

let min_frequency_info schema role =
  List.fold_left
    (fun (best, ids) ((c : Constraints.t), (f : Constraints.frequency)) ->
      if f.min > best then (f.min, [ c.id ]) else (best, ids))
    (1, [])
    (Schema.frequencies_on schema (Ids.Single role))
