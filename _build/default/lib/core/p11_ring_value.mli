(** Extension pattern 11 (Ring-Value) — the concrete example the paper's
    conclusion gives for a missing pattern: "for irreflexive roles at least
    2 different values need to be present".

    Any ring constraint that forbids reflexive pairs (irreflexive,
    asymmetric, acyclic, intransitive) forces a tuple's two components to
    differ, so populating the fact type needs two distinct values across
    the players' admissible value sets. *)

val check : Settings.t -> Orm.Schema.t -> Diagnostic.t list
