(** Pattern 2 (Exclusive constraint between types).

    A common subtype of two mutually exclusive object types must be empty:
    its population is contained in the (empty) intersection of the two
    exclusive types (paper Figs. 1 and 3). *)

val check : Settings.t -> Orm.Schema.t -> Diagnostic.t list
