open Orm

let check _settings schema =
  List.concat_map
    (fun (c : Constraints.t) ->
      match c.body with
      | Frequency (seq, { min; _ }) when min > 1 -> (
          let ucs = Schema.uniqueness_on schema seq in
          let spanning = match seq with Ids.Pair _ -> true | Ids.Single _ -> false in
          match (ucs, spanning) with
          | [], false -> []
          | _ ->
              let uc_ids = List.map (fun (u : Constraints.t) -> u.id) ucs in
              let reason =
                if ucs <> [] then
                  Printf.sprintf "the uniqueness constraint %s" (String.concat ", " uc_ids)
                else "the implicit spanning uniqueness of a set-valued predicate"
              in
              [
                Diagnostic.msg (Pattern 7)
                  (List.map (fun r -> Diagnostic.Role r) (Ids.seq_roles seq))
                  (c.id :: uc_ids)
                  "The frequency constraint %s (minimum %d) on %s cannot be \
                   satisfied: it conflicts with %s, which limits every player \
                   to a single occurrence."
                  c.id min (Ids.seq_to_string seq) reason;
              ])
      | _ -> [])
    (Schema.constraints schema)
