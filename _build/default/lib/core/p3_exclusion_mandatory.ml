open Orm

let check _settings schema =
  let g = Schema.graph schema in
  List.filter_map
    (fun ((c : Constraints.t), seqs) ->
      match Pattern_util.singles seqs with
      | None -> None
      | Some roles ->
          let doomed =
            List.concat_map
              (fun ri ->
                match
                  (Schema.mandatory_constraints_on schema ri, Schema.player schema ri)
                with
                | [], _ | _, None -> []
                | mand :: _, Some pi ->
                    List.filter_map
                      (fun rj ->
                        if Ids.equal_role ri rj then None
                        else
                          match Schema.player schema rj with
                          | Some pj
                            when pj = pi
                                 || Ids.String_set.mem pj (Subtype_graph.subtypes g pi)
                            ->
                              Some (rj, (mand : Constraints.t).id)
                          | _ -> None)
                      roles)
              roles
          in
          (match doomed with
          | [] -> None
          | _ ->
              let roles_hit =
                List.sort_uniq Ids.compare_role (List.map fst doomed)
              in
              let mand_ids = List.sort_uniq String.compare (List.map snd doomed) in
              Some
                (Diagnostic.msg (Pattern 3)
                   (List.map (fun r -> Diagnostic.Role r) roles_hit)
                   (c.id :: mand_ids)
                   "The roles %s can never be played: every candidate player \
                    must play a mandatory role (%s) that the exclusion \
                    constraint %s makes incompatible with them."
                   (String.concat ", " (List.map Ids.role_to_string roles_hit))
                   (String.concat ", " mand_ids)
                   c.id)))
    (Schema.role_exclusions schema)
