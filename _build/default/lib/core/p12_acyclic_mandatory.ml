open Orm

let check _settings schema =
  let g = Schema.graph schema in
  List.concat_map
    (fun (ft : Fact_type.t) ->
      let acyclic =
        List.filter (fun (_, k) -> k = Ring.Acyclic) (Schema.rings_on schema ft.name)
      in
      if acyclic = [] then []
      else
        let ring_ids = List.map (fun ((c : Constraints.t), _) -> c.id) acyclic in
        let successor_stays_inside mandatory_side =
          (* The co-player's population is contained in the player's when it
             is the same type or a subtype. *)
          let player = Fact_type.player ft mandatory_side in
          let co_player = Fact_type.player ft (Ids.other_side mandatory_side) in
          co_player = player || Subtype_graph.is_subtype_of g ~sub:co_player ~super:player
        in
        List.filter_map
          (fun side ->
            let role = Ids.role ft.name side in
            match Schema.mandatory_constraints_on schema role with
            | (mand : Constraints.t) :: _ when successor_stays_inside side ->
                let player = Fact_type.player ft side in
                Some
                  (Diagnostic.msg (Pattern 12)
                     [
                       Object_type player;
                       Role (Ids.first ft.name);
                       Role (Ids.second ft.name);
                     ]
                     (mand.id :: ring_ids)
                     "The object type %s cannot be populated: the mandatory role \
                      %s forces every instance into the acyclic relation %s whose \
                      successors are again instances of %s — a finite population \
                      would need an infinite descending chain."
                     player
                     (Ids.role_to_string role)
                     ft.name player)
            | _ -> None)
          [ Ids.Fst; Ids.Snd ])
    (Schema.fact_types schema)
