(** Extension pattern 10 (Empty effective value set) — not in the paper's
    nine; part of the Section-5 "more patterns" programme.

    Value constraints are inherited: a subtype's population must satisfy
    every ancestor's value constraint, so a type whose constraints
    intersect to the empty set can never be populated. *)

val check : Settings.t -> Orm.Schema.t -> Diagnostic.t list
