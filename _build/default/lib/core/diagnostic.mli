(** Diagnostics produced by the unsatisfiability patterns.

    A diagnostic mirrors what DogmaModeler reports (paper, Section 4): which
    schema elements can never be populated, which pattern detected it, and
    which constraint occurrences conspire to cause it. *)

open Orm

(** A schema element that a diagnostic declares unsatisfiable. *)
type element =
  | Object_type of Ids.object_type
  | Role of Ids.role
  | Fact of Ids.fact_type
      (** a whole predicate (both its roles are unpopulatable) *)

val pp_element : Format.formatter -> element -> unit
val compare_element : element -> element -> int

(** Where a diagnostic comes from: directly from one of the paper's nine
    patterns, or from the engine's downward propagation phase (a refinement
    over the paper: unsatisfiability of a type propagates to its strict
    subtypes, to the roles it plays, and across a fact type to the co-role). *)
type origin =
  | Pattern of int  (** 1–9 *)
  | Propagation of element  (** the element it was derived from *)

(** How strong the verdict is.  The paper's messages are deliberately vague
    ("some roles in R cannot be instantiated"); semantically two different
    situations arise, and distinguishing them keeps the engine sound with
    respect to the model-theoretic ground truth:

    - [Element_unsatisfiable]: {e each} affected element is empty in every
      model of the schema (e.g. pattern 4: the constrained role can never be
      played);
    - [Jointly_unsatisfiable]: no single model populates {e all} affected
      elements, though each may be populatable on its own (e.g. pattern 5,
      Fig. 6: either excluded role can be played, but never both) — a
      violation of the paper's strong satisfiability. *)
type certainty = Element_unsatisfiable | Jointly_unsatisfiable

type t = {
  origin : origin;
  certainty : certainty;
  affected : element list;  (** elements that cannot (all) be populated *)
  culprits : Constraints.id list;
      (** the constraint occurrences jointly causing the contradiction *)
  message : string;  (** DogmaModeler-style verbalized explanation *)
}

val make : ?certainty:certainty -> origin -> element list -> Constraints.id list -> string -> t
(** [certainty] defaults to [Element_unsatisfiable]. *)

val msg :
  ?certainty:certainty ->
  origin ->
  element list ->
  Constraints.id list ->
  ('a, Format.formatter, unit, t) format4 ->
  'a
(** [msg origin affected culprits fmt ...] builds a diagnostic with a
    formatted message. *)

val pattern_number : t -> int option
(** The pattern that produced the diagnostic ([None] for propagation). *)

val pattern_name : int -> string
(** The paper's name for each pattern, e.g. [pattern_name 3 =
    "Exclusion-Mandatory"]. *)

val pp : Format.formatter -> t -> unit

val affected_types : t list -> Ids.String_set.t
(** All object types some [Element_unsatisfiable] diagnostic declares
    unsatisfiable. *)

val affected_roles : t list -> Ids.Role_set.t
(** All roles some [Element_unsatisfiable] diagnostic declares
    unsatisfiable ([Fact] elements contribute both their roles). *)

val joint_groups : t list -> Ids.Role_set.t list
(** The role groups of the [Jointly_unsatisfiable] diagnostics: each set
    cannot be fully populated in any single model. *)

val roles_of_elements : element list -> Ids.Role_set.t
(** The roles denoted by a list of elements ([Fact]s contribute both their
    roles, object types none). *)
