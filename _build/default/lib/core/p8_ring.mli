(** Pattern 8 (Ring constraints).

    Combinations of ring constraints that are disjoint regions of Halpin's
    Euler diagram (paper Fig. 12) admit only the empty relation; the
    constrained roles are then unsatisfiable.  Compatibility is decided by
    {!Orm.Ring.compatible}, which regenerates the paper's Table 1. *)

val check : Settings.t -> Orm.Schema.t -> Diagnostic.t list
