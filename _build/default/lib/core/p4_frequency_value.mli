(** Pattern 4 (Frequency-Value).

    A frequency constraint [FC(n-m)] on a role of fact type [A r B] demands
    [n] distinct co-players for every player; if a value constraint bounds
    [B] to fewer than [n] values, the role can never be populated
    (paper Fig. 5). *)

val check : Settings.t -> Orm.Schema.t -> Diagnostic.t list
