(** Pattern 6 (Set-comparison constraints).

    An exclusion constraint contradicts any direct or implied SetPath
    (chain of subset/equality constraints, closed under the Fig. 9
    implications) between the excluded sequences; for single-role
    exclusions a SetPath between the enclosing predicates also contradicts,
    since a role exclusion implies a predicate exclusion (paper Fig. 8).

    In paper-faithful mode both predicates are reported unpopulatable, as
    in the paper's algorithm; in refined mode only the sequences on the
    subset side of the path are (both, for an equality path). *)

val check : Settings.t -> Orm.Schema.t -> Diagnostic.t list
