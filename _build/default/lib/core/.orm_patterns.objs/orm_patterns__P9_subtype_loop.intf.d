lib/core/p9_subtype_loop.mli: Diagnostic Orm Settings
