lib/core/p5_value_exclusion_frequency.ml: Constraints Diagnostic Ids List Orm Pattern_util Schema String Value
