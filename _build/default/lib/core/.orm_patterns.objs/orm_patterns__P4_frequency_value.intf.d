lib/core/p4_frequency_value.mli: Diagnostic Orm Settings
