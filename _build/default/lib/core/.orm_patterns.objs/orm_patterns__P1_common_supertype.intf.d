lib/core/p1_common_supertype.mli: Diagnostic Orm Settings
