lib/core/p11_ring_value.ml: Constraints Diagnostic Fact_type List Orm Pattern_util Ring Schema Value
