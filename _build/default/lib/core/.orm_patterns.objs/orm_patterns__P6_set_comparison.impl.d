lib/core/p6_set_comparison.ml: Constraints Diagnostic Format Ids List Option Orm Pattern_util Schema Setcomp Settings String
