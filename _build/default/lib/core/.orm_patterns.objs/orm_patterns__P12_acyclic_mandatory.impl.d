lib/core/p12_acyclic_mandatory.ml: Constraints Diagnostic Fact_type Ids List Orm Ring Schema Subtype_graph
