lib/core/p1_common_supertype.ml: Diagnostic Ids List Orm Schema String Subtype_graph
