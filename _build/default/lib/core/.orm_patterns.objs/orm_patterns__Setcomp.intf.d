lib/core/setcomp.mli: Constraints Ids Orm Schema
