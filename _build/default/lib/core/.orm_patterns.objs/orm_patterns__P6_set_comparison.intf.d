lib/core/p6_set_comparison.mli: Diagnostic Orm Settings
