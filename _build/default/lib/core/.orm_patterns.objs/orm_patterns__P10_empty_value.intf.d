lib/core/p10_empty_value.mli: Diagnostic Orm Settings
