lib/core/setcomp.ml: Constraints Hashtbl Ids List Option Orm Schema
