lib/core/p7_uniqueness_frequency.mli: Diagnostic Orm Settings
