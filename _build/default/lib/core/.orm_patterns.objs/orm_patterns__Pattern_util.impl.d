lib/core/pattern_util.ml: Constraints Ids List Option Orm Schema Settings Subtype_graph Value
