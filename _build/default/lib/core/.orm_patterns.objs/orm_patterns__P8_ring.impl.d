lib/core/p8_ring.ml: Constraints Diagnostic Fact_type Format List Orm Ring Schema String
