lib/core/settings.mli:
