lib/core/p3_exclusion_mandatory.ml: Constraints Diagnostic Ids List Orm Pattern_util Schema String Subtype_graph
