lib/core/p5_value_exclusion_frequency.mli: Diagnostic Orm Settings
