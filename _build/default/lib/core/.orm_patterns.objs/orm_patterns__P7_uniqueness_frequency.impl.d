lib/core/p7_uniqueness_frequency.ml: Constraints Diagnostic Ids List Orm Printf Schema String
