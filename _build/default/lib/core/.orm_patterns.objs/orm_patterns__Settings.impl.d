lib/core/settings.ml: Int List
