lib/core/diagnostic.ml: Constraints Format Ids List Orm Printf String
