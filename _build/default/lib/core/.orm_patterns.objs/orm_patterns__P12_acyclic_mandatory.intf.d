lib/core/p12_acyclic_mandatory.mli: Diagnostic Orm Settings
