lib/core/diagnostic.mli: Constraints Format Ids Orm
