lib/core/p10_empty_value.ml: Constraints Diagnostic Ids List Option Orm Schema Subtype_graph Value
