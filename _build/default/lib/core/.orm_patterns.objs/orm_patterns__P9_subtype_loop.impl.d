lib/core/p9_subtype_loop.ml: Diagnostic List Orm Schema String Subtype_graph
