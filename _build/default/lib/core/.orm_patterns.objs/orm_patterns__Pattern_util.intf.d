lib/core/pattern_util.mli: Constraints Ids Orm Schema Settings Value
