lib/core/engine.mli: Diagnostic Format Ids Orm Schema Settings
