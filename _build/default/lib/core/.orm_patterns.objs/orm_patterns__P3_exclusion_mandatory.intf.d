lib/core/p3_exclusion_mandatory.mli: Diagnostic Orm Settings
