lib/core/p2_exclusive_types.ml: Constraints Diagnostic Ids List Orm Pattern_util Schema String Subtype_graph
