lib/core/p4_frequency_value.ml: Constraints Diagnostic Ids List Orm Pattern_util Schema Value
