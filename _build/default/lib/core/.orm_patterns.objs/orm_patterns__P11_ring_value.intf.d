lib/core/p11_ring_value.mli: Diagnostic Orm Settings
