lib/core/p2_exclusive_types.mli: Diagnostic Orm Settings
