lib/core/p8_ring.mli: Diagnostic Orm Settings
