open Orm

(* Adjacency: for each sequence, the sequences it is (directly or by
   component-wise implication) a subset of, labelled with the constraint
   responsible. *)
type t = (Ids.role_seq, (Ids.role_seq * Constraints.id) list) Hashtbl.t

let add_edge g src dst id =
  let existing = Option.value ~default:[] (Hashtbl.find_opt g src) in
  if List.exists (fun (d, i) -> Ids.equal_seq d dst && i = id) existing then ()
  else Hashtbl.replace g src ((dst, id) :: existing)

(* A subset between pairs implies component-wise subsets between the
   corresponding roles (Fig. 9). *)
let add_subset g id a b =
  add_edge g a b id;
  match (a, b) with
  | Ids.Pair (a1, a2), Ids.Pair (b1, b2) ->
      add_edge g (Ids.Single a1) (Ids.Single b1) id;
      add_edge g (Ids.Single a2) (Ids.Single b2) id
  | _ -> ()

let build schema =
  let g : t = Hashtbl.create 16 in
  List.iter
    (fun (c, kind, a, b) ->
      let id = (c : Constraints.t).id in
      match kind with
      | `Subset -> add_subset g id a b
      | `Equality ->
          add_subset g id a b;
          add_subset g id b a)
    (Schema.set_comparisons schema);
  g

let set_path g src dst =
  if Ids.equal_seq src dst then None
  else
    let rec bfs frontier visited =
      match frontier with
      | [] -> None
      | (node, ids) :: rest ->
          if Ids.equal_seq node dst then Some (List.rev ids)
          else
            let next =
              Option.value ~default:[] (Hashtbl.find_opt g node)
              |> List.filter (fun (n, _) -> not (List.exists (Ids.equal_seq n) visited))
            in
            let visited = List.map fst next @ visited in
            bfs (rest @ List.map (fun (n, id) -> (n, id :: ids)) next) visited
    in
    bfs [ (src, []) ] [ src ]

let any_path g a b =
  match set_path g a b with Some ids -> Some ids | None -> set_path g b a
