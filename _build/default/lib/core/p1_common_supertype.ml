open Orm

let check _settings schema =
  let g = Schema.graph schema in
  List.filter_map
    (fun t ->
      let directs = Subtype_graph.direct_supertypes g t in
      match directs with
      | [] | [ _ ] -> None
      | first :: rest ->
          let common =
            List.fold_left
              (fun acc super ->
                Ids.String_set.inter acc (Subtype_graph.supertypes_with_self g super))
              (Subtype_graph.supertypes_with_self g first)
              rest
          in
          if Ids.String_set.is_empty common then
            Some
              (Diagnostic.msg (Pattern 1)
                 [ Object_type t ]
                 []
                 "The subtype %s cannot be satisfied: its supertypes %s do not share \
                  a top common supertype, so they are mutually exclusive by definition."
                 t
                 (String.concat ", " directs))
          else None)
    (Schema.object_types schema)
