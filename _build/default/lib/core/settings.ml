type t = {
  enabled : int list;
  paper_faithful : bool;
  propagate : bool;
  effective_value_sets : bool;
}

let all_patterns = [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]

let default =
  {
    enabled = all_patterns;
    paper_faithful = true;
    propagate = true;
    effective_value_sets = true;
  }

let patterns_only = { default with propagate = false }

let extension_patterns = [ 10; 11; 12 ]

let with_extensions t =
  { t with enabled = List.sort_uniq Int.compare (extension_patterns @ t.enabled) }

let enable n t =
  if List.mem n t.enabled then t
  else { t with enabled = List.sort Int.compare (n :: t.enabled) }

let disable n t = { t with enabled = List.filter (( <> ) n) t.enabled }
let is_enabled n t = List.mem n t.enabled
let with_patterns ps t = { t with enabled = ps }
