open Orm

(* Kinds whose relations contain no reflexive pair (it => ir, as => ir,
   ac => ir are Fig. 12 implications; ir is direct). *)
let forbids_reflexive = function
  | Ring.Irreflexive | Ring.Asymmetric | Ring.Acyclic | Ring.Intransitive -> true
  | Ring.Antisymmetric | Ring.Symmetric -> false

let check settings schema =
  List.filter_map
    (fun (ft : Fact_type.t) ->
      let rings = Schema.rings_on schema ft.name in
      let irreflexive_like =
        List.filter (fun (_, k) -> forbids_reflexive k) rings
      in
      if irreflexive_like = [] then None
      else
        (* A tuple (x, y) with x <> y needs two distinct admissible values
           across the two players. *)
        let v1 = Pattern_util.value_info settings schema ft.player1 in
        let v2 = Pattern_util.value_info settings schema ft.player2 in
        match (v1, v2) with
        | Some (vs1, ids1), Some (vs2, ids2) ->
            let union = Value.Constraint.union vs1 vs2 in
            if Value.Constraint.cardinal union < 2 then
              let ring_ids = List.map (fun ((c : Constraints.t), _) -> c.id) irreflexive_like in
              Some
                (Diagnostic.msg (Pattern 11)
                   [ Fact ft.name ]
                   (ring_ids @ ids1 @ ids2)
                   "The predicate %s cannot be populated: its ring constraint \
                    forbids reflexive pairs, but the value constraints admit \
                    only one value."
                   ft.name)
            else None
        | _ -> None)
    (Schema.fact_types schema)
