open Orm

let check _settings schema =
  List.map
    (fun cycle ->
      Diagnostic.msg (Pattern 9)
        (List.map (fun t -> Diagnostic.Object_type t) cycle)
        []
        "The object types %s form a loop in the subtype relation; a \
         population would have to be a strict subset of itself, so none of \
         them can be satisfied."
        (String.concat ", " cycle))
    (Subtype_graph.cycles (Schema.graph schema))
