(** Pattern 5 (Value-Exclusion-Frequency).

    For an exclusion constraint over single roles all played by the same
    object type [T], each role [Ri] needs at least [fi] distinct values of
    [T], where [fi] is the frequency minimum on the {e inverse} role (1 if
    unconstrained); the roles' populations being disjoint, the value
    constraint on [T] must admit at least [f1 + ... + fn] values
    (paper Figs. 6 and 7; a strict generalization of pattern 4's idea to
    exclusion families). *)

val check : Settings.t -> Orm.Schema.t -> Diagnostic.t list
