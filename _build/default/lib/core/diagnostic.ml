open Orm

type element =
  | Object_type of Ids.object_type
  | Role of Ids.role
  | Fact of Ids.fact_type

let pp_element ppf = function
  | Object_type ot -> Format.fprintf ppf "object type %s" ot
  | Role r -> Format.fprintf ppf "role %a" Ids.pp_role r
  | Fact f -> Format.fprintf ppf "predicate %s" f

let compare_element (a : element) (b : element) = compare a b

type origin =
  | Pattern of int
  | Propagation of element

type certainty = Element_unsatisfiable | Jointly_unsatisfiable

type t = {
  origin : origin;
  certainty : certainty;
  affected : element list;
  culprits : Constraints.id list;
  message : string;
}

let make ?(certainty = Element_unsatisfiable) origin affected culprits message =
  { origin; certainty; affected; culprits; message }

let msg ?certainty origin affected culprits fmt =
  Format.kasprintf (make ?certainty origin affected culprits) fmt

let pattern_number d = match d.origin with Pattern n -> Some n | Propagation _ -> None

let pattern_name = function
  | 1 -> "Top common supertype"
  | 2 -> "Exclusive constraint between types"
  | 3 -> "Exclusion-Mandatory"
  | 4 -> "Frequency-Value"
  | 5 -> "Value-Exclusion-Frequency"
  | 6 -> "Set-comparison constraints"
  | 7 -> "Uniqueness-Frequency"
  | 8 -> "Ring constraints"
  | 9 -> "Loops in Subtypes"
  | 10 -> "Empty effective value set (extension)"
  | 11 -> "Ring-Value (extension)"
  | 12 -> "Acyclic-Mandatory (extension)"
  | n -> Printf.sprintf "Unknown pattern %d" n

let pp ppf d =
  let origin =
    match d.origin with
    | Pattern n -> Printf.sprintf "pattern %d (%s)" n (pattern_name n)
    | Propagation e -> Format.asprintf "propagation from %a" pp_element e
  in
  let origin =
    match d.certainty with
    | Element_unsatisfiable -> origin
    | Jointly_unsatisfiable -> origin ^ ", joint"
  in
  Format.fprintf ppf "@[<v2>[%s]@,affected: %a@,culprits: %s@,%s@]" origin
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_element)
    d.affected
    (String.concat ", " d.culprits)
    d.message

let certain ds = List.filter (fun d -> d.certainty = Element_unsatisfiable) ds

let affected_types ds =
  List.fold_left
    (fun acc d ->
      List.fold_left
        (fun acc -> function
          | Object_type ot -> Ids.String_set.add ot acc
          | Role _ | Fact _ -> acc)
        acc d.affected)
    Ids.String_set.empty (certain ds)

let roles_of_elements elements =
  List.fold_left
    (fun acc -> function
      | Object_type _ -> acc
      | Role r -> Ids.Role_set.add r acc
      | Fact f -> Ids.Role_set.add (Ids.first f) (Ids.Role_set.add (Ids.second f) acc))
    Ids.Role_set.empty elements

let affected_roles ds =
  List.fold_left
    (fun acc d -> Ids.Role_set.union acc (roles_of_elements d.affected))
    Ids.Role_set.empty (certain ds)

let joint_groups ds =
  List.filter_map
    (fun d ->
      match d.certainty with
      | Element_unsatisfiable -> None
      | Jointly_unsatisfiable -> Some (roles_of_elements d.affected))
    ds
