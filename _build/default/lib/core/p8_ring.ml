open Orm

let check _settings schema =
  List.filter_map
    (fun (ft : Fact_type.t) ->
      match Schema.rings_on schema ft.name with
      | [] -> None
      | rings ->
          let kinds =
            List.fold_left
              (fun acc (_, k) -> Ring.Kind_set.add k acc)
              Ring.Kind_set.empty rings
          in
          if Ring.compatible kinds then None
          else
            let ids = List.map (fun ((c : Constraints.t), _) -> c.id) rings in
            Some
              (Diagnostic.msg (Pattern 8)
                 [ Fact ft.name ]
                 ids
                 "The ring constraints %s on %s cannot be satisfied together: \
                  only the empty relation satisfies the combination %s."
                 (String.concat ", " ids)
                 ft.name
                 (Format.asprintf "%a" Ring.pp_set kinds)))
    (Schema.fact_types schema)
