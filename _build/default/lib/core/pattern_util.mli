(** Helpers shared by the pattern implementations. *)

open Orm

val pairs : 'a list -> ('a * 'a) list
(** All unordered pairs of distinct positions. *)

val value_info :
  Settings.t -> Schema.t -> Ids.object_type -> (Value.Constraint.t * Constraints.id list) option
(** The admissible-value set of an object type together with the identifiers
    of the value constraints contributing to it.  Honours
    {!Settings.t.effective_value_sets}: when on, value constraints of
    supertypes are intersected in; when off, only the direct constraint is
    read (the paper's behaviour). *)

val singles : Ids.role_seq list -> Ids.role list option
(** [Some roles] when every sequence is a single role, [None] otherwise. *)

val min_frequency_info : Schema.t -> Ids.role -> int * Constraints.id list
(** The paper's [fi] for pattern 5: the largest minimum among the frequency
    constraints on the role (1 when unconstrained), with the responsible
    constraint identifiers. *)
