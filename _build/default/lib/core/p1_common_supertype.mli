(** Pattern 1 (Top common supertype).

    In ORM all object types are mutually exclusive by definition except
    those sharing a common supertype; a type with several direct supertypes
    whose ancestries are disjoint can therefore never be populated
    (paper Fig. 2). *)

val check : Settings.t -> Orm.Schema.t -> Diagnostic.t list
