open Orm

let check _settings schema =
  List.filter_map
    (fun t ->
      match Schema.effective_value_set schema t with
      | Some vs when Value.Constraint.is_empty vs ->
          let culprits =
            List.filter_map
              (fun anc -> Option.map (fun ((c : Constraints.t), _) -> c.id)
                   (Schema.value_constraint schema anc))
              (Ids.String_set.elements
                 (Subtype_graph.supertypes_with_self (Schema.graph schema) t))
          in
          Some
            (Diagnostic.msg (Pattern 10)
               [ Object_type t ]
               culprits
               "The object type %s cannot be populated: the value constraints \
                inherited along its supertype chain have an empty intersection."
               t)
      | _ -> None)
    (Schema.object_types schema)
