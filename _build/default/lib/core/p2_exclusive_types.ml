open Orm

let check _settings schema =
  let g = Schema.graph schema in
  List.filter_map
    (fun ((c : Constraints.t), ots) ->
      let doomed =
        List.fold_left
          (fun acc (a, b) ->
            if a = b then acc
            else
              Ids.String_set.union acc
                (Ids.String_set.inter
                   (Subtype_graph.subtypes_with_self g a)
                   (Subtype_graph.subtypes_with_self g b)))
          Ids.String_set.empty
          (Pattern_util.pairs ots)
      in
      if Ids.String_set.is_empty doomed then None
      else
        let names = Ids.String_set.elements doomed in
        Some
          (Diagnostic.msg (Pattern 2)
             (List.map (fun t -> Diagnostic.Object_type t) names)
             [ c.id ]
             "The subtypes %s cannot be instantiated because of the exclusive \
              constraint %s between %s."
             (String.concat ", " names)
             c.id
             (String.concat ", " ots)))
    (Schema.type_exclusions schema)
