(** Validator settings — the engine-level counterpart of DogmaModeler's
    "Validator Settings" window (paper Fig. 15), where each pattern can be
    enabled or disabled, plus the ablation switches of our refinements. *)

type t = {
  enabled : int list;  (** patterns (1–9) that are switched on *)
  paper_faithful : bool;
      (** [true]: report exactly what the paper's algorithms report (e.g.
          pattern 6 declares {e both} predicates unsatisfiable);
          [false]: report only what is semantically forced *)
  propagate : bool;
      (** derive downward consequences (subtypes of an unsatisfiable type,
          roles it plays, co-roles of unsatisfiable roles) *)
  effective_value_sets : bool;
      (** intersect value constraints along the supertype chain in patterns
          4 and 5 instead of reading only the direct constraint *)
}

val default : t
(** All nine patterns, paper-faithful reporting, propagation and effective
    value sets on. *)

val extension_patterns : int list
(** The extension patterns (10–12) implementing the paper's Section-5
    future-work programme: empty effective value sets, ring-value
    interaction, and acyclic-mandatory finiteness.  Off by default. *)

val with_extensions : t -> t
(** Enables the extension patterns on top of whatever is enabled. *)

val patterns_only : t
(** {!default} with propagation off — the paper's algorithms verbatim. *)

val enable : int -> t -> t
val disable : int -> t -> t
val is_enabled : int -> t -> bool
val with_patterns : int list -> t -> t
