open Orm

let check settings schema =
  List.filter_map
    (fun ((c : Constraints.t), seqs) ->
      match Pattern_util.singles seqs with
      | None -> None
      | Some roles -> (
          let players = List.filter_map (Schema.player schema) roles in
          match List.sort_uniq String.compare players with
          | [ t ] when List.length players = List.length roles -> (
              let needed, freq_ids =
                List.fold_left
                  (fun (sum, ids) ri ->
                    let fi, fids =
                      Pattern_util.min_frequency_info schema (Ids.co_role ri)
                    in
                    (sum + fi, fids @ ids))
                  (0, []) roles
              in
              match Pattern_util.value_info settings schema t with
              | Some (vs, vc_ids) when Value.Constraint.cardinal vs < needed ->
                  Some
                    (Diagnostic.msg ~certainty:Jointly_unsatisfiable (Pattern 5)
                       (List.map (fun r -> Diagnostic.Role r) roles)
                       (c.id :: (freq_ids @ vc_ids))
                       "Some of the roles %s cannot be instantiated: the \
                        exclusion constraint %s forces their populations to be \
                        disjoint and, with the frequency minima on the inverse \
                        roles, requires %d distinct values of %s — but its \
                        value constraint admits only %d."
                       (String.concat ", " (List.map Ids.role_to_string roles))
                       c.id needed t
                       (Value.Constraint.cardinal vs))
              | _ -> None)
          | _ -> None))
    (Schema.role_exclusions schema)
