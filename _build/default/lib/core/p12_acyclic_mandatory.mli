(** Extension pattern 12 (Acyclic-Mandatory) — another Section-5-style
    addition, exploiting ORM's finite-population semantics.

    A mandatory role on an acyclic fact type forces every instance of the
    player to have a successor.  When every successor is again an instance
    of the player (the co-player is the player itself or one of its
    subtypes), any non-empty population contains an infinite descending
    chain — impossible in a finite population without a cycle, which
    acyclicity forbids.  The player and both roles are unsatisfiable. *)

val check : Settings.t -> Orm.Schema.t -> Diagnostic.t list
