(* Benchmark harness.

   Part 1 prints the experiment tables that regenerate the paper's
   artifacts (figure verdicts, Table 1, the Section-4 scaling and
   interactivity claims, ablations) - see Experiments and EXPERIMENTS.md.

   Part 2 runs Bechamel micro-benchmarks, one Test.make per experiment:
     fig/NN               pattern-engine check of each paper figure
     table/1              regeneration of the ring compatibility table
     scale/engine-N       pattern engine on generated schemas of size N
     scale/finder-N       complete bounded search on the same schemas
     scale/dlr-N          DLR translation + tableau on the same schemas
     interactive/apply    one incremental edit on a size-40 session
     interactive/full     the equivalent from-scratch check
     ccform/check         full check of the complaint-scale faulted schema
     verbalize/ccform     verbalization of the same schema
     dsl/roundtrip        print + parse of the same schema *)

open Bechamel
open Toolkit
open Orm
module Engine = Orm_patterns.Engine

let figure_tests =
  List.map
    (fun (e : Figures.expectation) ->
      Test.make
        ~name:(Printf.sprintf "fig/%s" e.figure)
        (Staged.stage (fun () -> Engine.check e.schema)))
    Figures.all

let table1_test =
  Test.make ~name:"table/1"
    (Staged.stage (fun () ->
         List.filter (fun (_, ok) -> ok) Ring.table1))

let sized_schema n = Orm_generator.Gen.clean ~config:(Orm_generator.Gen.sized n) ~seed:11 ()

let scale_tests =
  List.concat_map
    (fun n ->
      let schema = sized_schema n in
      [
        Test.make
          ~name:(Printf.sprintf "scale/engine-%d" n)
          (Staged.stage (fun () -> Engine.check schema));
      ]
      @ (if n > 4 then []
         else
           [
             Test.make
               ~name:(Printf.sprintf "scale/dlr-%d" n)
               (Staged.stage (fun () -> Orm_dlr.Dlr_check.check ~budget:2_000 schema));
           ])
      @
      if n > 6 then []
      else
        [
          Test.make
            ~name:(Printf.sprintf "scale/finder-%d" n)
            (Staged.stage (fun () ->
                 Orm_reasoner.Finder.solve ~budget:20_000 schema Strongly_satisfiable));
          Test.make
            ~name:(Printf.sprintf "scale/sat-%d" n)
            (Staged.stage (fun () ->
                 Orm_sat.Encode.solve ~budget:50_000 schema Strongly_satisfiable));
        ])
    [ 2; 4; 6; 10 ]

let interactive_tests =
  let schema = sized_schema 40 in
  let session = Orm_interactive.Session.create schema in
  let fact =
    match Schema.fact_types schema with ft :: _ -> ft.Fact_type.name | [] -> assert false
  in
  let edit = Orm_interactive.Edit.Add (Uniqueness (Single (Ids.first fact))) in
  [
    Test.make ~name:"interactive/apply"
      (Staged.stage (fun () -> Orm_interactive.Session.apply edit session));
    Test.make ~name:"interactive/full"
      (Staged.stage (fun () -> Engine.check (Orm_interactive.Edit.apply edit schema)));
  ]

let ccform_tests =
  let base = Orm_generator.Gen.clean ~config:(Orm_generator.Gen.sized 40) ~seed:23 () in
  let faulted =
    List.fold_left
      (fun s p -> (Orm_generator.Faults.inject ~seed:23 p s).Orm_generator.Faults.schema)
      base Orm_generator.Faults.all_patterns
  in
  [
    Test.make ~name:"ccform/check" (Staged.stage (fun () -> Engine.check faulted));
    Test.make ~name:"verbalize/ccform"
      (Staged.stage (fun () -> Orm_verbalize.Verbalize.schema faulted));
    Test.make ~name:"dsl/roundtrip"
      (Staged.stage (fun () ->
           Orm_dsl.Parser.parse_exn (Orm_dsl.Printer.to_string faulted)));
    Test.make ~name:"lint/ccform"
      (Staged.stage (fun () -> Orm_lint.Lint.check faulted));
    Test.make ~name:"repair/suggest"
      (Staged.stage (fun () -> Orm_repair.Repair.suggestions faulted));
    Test.make ~name:"export/dot"
      (Staged.stage (fun () -> Orm_export.Dot.to_string faulted));
    Test.make ~name:"export/json"
      (Staged.stage (fun () -> Orm_export.Json.of_schema faulted));
    Test.make ~name:"dlr/classify-fig3"
      (Staged.stage (fun () -> Orm_dlr.Classify.classify Orm.Figures.fig3));
  ]

let all_tests =
  Test.make_grouped ~name:"orm-unsat"
    (figure_tests @ [ table1_test ] @ scale_tests @ interactive_tests @ ccform_tests)

let run_bechamel () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.1) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances all_tests in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  let merged = Analyze.merge ols instances results in
  Printf.printf "\n==== Bechamel micro-benchmarks (monotonic clock) ====\n";
  Printf.printf "%-28s %14s\n" "benchmark" "time/run";
  let rows = ref [] in
  Hashtbl.iter
    (fun _measure tbl ->
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> rows := (name, est) :: !rows
          | _ -> ())
        tbl)
    merged;
  let pretty ns =
    if ns >= 1e9 then Printf.sprintf "%10.2f s " (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%10.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%10.2f us" (ns /. 1e3)
    else Printf.sprintf "%10.0f ns" ns
  in
  List.iter
    (fun (name, est) -> Printf.printf "%-28s %14s\n" name (pretty est))
    (List.sort (fun (a, _) (b, _) -> String.compare a b) !rows)

(* Sections are selectable so the BENCH_*.json artifacts can be
   regenerated without sitting through the slow bechamel sweep:
     bench/main.exe                 everything (the default)
     bench/main.exe parallel trace  just those artifact writers *)
let sections =
  [
    ("experiments", Experiments.run_all);
    ("bechamel", run_bechamel);
    ("parallel", fun () -> Bench_parallel.run ());
    ("trace", fun () -> Bench_trace.run ());
    ("server", fun () -> Bench_server.run ());
  ]

let () =
  let requested =
    match List.tl (Array.to_list Sys.argv) with
    | [] -> List.map fst sections
    | args -> args
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some run -> run ()
      | None ->
          Printf.eprintf "bench: unknown section %S (known: %s)\n" name
            (String.concat ", " (List.map fst sections));
          exit 2)
    requested;
  print_newline ()
