(* Shared plumbing for the BENCH_*.json writers.

   Every artifact records the host it was measured on: the physical core
   count (from /proc/cpuinfo; the runtime's recommendation as a fallback)
   next to the runtime's recommended domain count.  The two can differ —
   cgroup-limited containers typically show many processors but recommend
   one domain — and a reader needs both to tell a 1-core container's ~1x
   "speedup" from a real multicore regression. *)

let host_recommended_domains = Domain.recommended_domain_count ()

let host_cores =
  match open_in "/proc/cpuinfo" with
  | exception Sys_error _ -> host_recommended_domains
  | ic ->
      let n = ref 0 in
      (try
         while true do
           let line = input_line ic in
           if String.length line >= 9 && String.sub line 0 9 = "processor" then
             incr n
         done
       with End_of_file -> ());
      close_in ic;
      if !n > 0 then !n else host_recommended_domains

(* The fields every BENCH_*.json document leads with. *)
let host_fields =
  [
    ("host_cores", string_of_int host_cores);
    ("host_recommended_domains", string_of_int host_recommended_domains);
  ]

(* OCaml's %S is not a JSON escaper: it renders non-ASCII bytes as decimal
   escapes (\226...), which JSON parsers reject.  Route every string value
   through the JSON library's own escaper instead. *)
let json_str s = "\"" ^ Orm_json.escape_string s ^ "\""

let json_obj fields =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "%s:%s" (json_str k) v) fields)
  ^ "}"

let json_arr items = "[" ^ String.concat "," items ^ "]"

let write_doc ~file doc =
  let oc = open_out file in
  output_string oc doc;
  output_char oc '\n';
  close_out oc
