(* Parse/print throughput of the shared JSON core (lib/json), on the two
   payload shapes the server actually sees: a typical request envelope and
   a nested check response.  Run directly:

     dune exec bench/bench_json.exe

   Numbers land in docs/EXPERIMENTS.md; record the host core count next to
   them (the bench itself is single-threaded). *)

module J = Orm_json

let envelope =
  {|{"ormcheck": 1, "id": "req-00042", "method": "check", "params": {"schema_text": "schema S\nobject Person\nobject Committee\nfact chairs Person Committee\nconstraint c1 mandatory chairs.1\nconstraint c2 frequency chairs.2 2..2\n", "jobs": 2, "deadline_ms": 250}}|}

let nested =
  let diag i =
    Printf.sprintf
      {|{"origin":{"kind":"pattern","number":%d},"certainty":"element","affected":[{"kind":"role","role":{"fact":"chairs","side":%d}}],"culprits":["c%d","c%d"],"message":"role is unsatisfiable: frequency 2..2 conflicts with uniqueness"}|}
      (1 + (i mod 9))
      (i mod 2) i (i + 1)
  in
  Printf.sprintf
    {|{"ormcheck":1,"id":"req-00042","status":"ok","cached":false,"result":{"diagnostics":[%s],"unsat_types":["Person","Committee"],"unsat_roles":[{"fact":"chairs","side":0},{"fact":"chairs","side":1}],"joint":[[{"fact":"chairs","side":0}]]}}|}
    (String.concat "," (List.init 8 diag))

let time_ns f =
  let t0 = Unix.gettimeofday () in
  f ();
  (Unix.gettimeofday () -. t0) *. 1e9

let bench name src =
  let parse () =
    match J.of_string src with Ok v -> v | Error e -> failwith e
  in
  let v = parse () in
  (* calibrate the iteration count to ~0.5 s of work *)
  let iters =
    let probe = 1000 in
    let ns = time_ns (fun () -> for _ = 1 to probe do ignore (parse ()) done) in
    max 10_000 (int_of_float (5e8 /. (ns /. float_of_int probe)))
  in
  let parse_ns =
    time_ns (fun () -> for _ = 1 to iters do ignore (parse ()) done)
    /. float_of_int iters
  in
  let print_ns =
    time_ns (fun () -> for _ = 1 to iters do ignore (J.to_string v) done)
    /. float_of_int iters
  in
  let bytes = float_of_int (String.length src) in
  Printf.printf
    "%-10s %5d B  parse %8.2f us  %7.1f MB/s   print %8.2f us  %7.1f MB/s\n"
    name (String.length src) (parse_ns /. 1e3)
    (bytes /. parse_ns *. 1e3)
    (print_ns /. 1e3)
    (bytes /. print_ns *. 1e3)

let () =
  Printf.printf "orm_json throughput (%d core(s) visible)\n"
    (Domain.recommended_domain_count ());
  bench "envelope" envelope;
  bench "nested" nested
