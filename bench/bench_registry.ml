(* Registry section of BENCH_server.json.

   Three claims are priced, all through [Server.handle] — the same entry
   point the socket loop uses:

   - ingest throughput: bulk-ingesting a distinct corpus pays one full
     canonicalize + engine check + append per schema, so the row is the
     cost of building the corpus, not of serving it;
   - canonical vs byte hit rate: a corpus is checked once, then a
     renamed clone of every schema is checked.  Every clone has a
     different byte digest (the old cache key) but the same canonical
     digest, so the canonical tier serves them warm where a byte-keyed
     cache recomputes.  The artifact records both rates; the canonical
     one must be strictly higher on this corpus;
   - warm query latency: [query] answers from the covering index without
     re-checking, so the row must sit near the cache-hit rows, orders of
     magnitude under a cold check. *)

module Metrics = Orm_telemetry.Metrics
module P = Orm_server.Protocol
module Server = Orm_server.Server
module Registry = Orm_registry.Store

let ingest_corpus = 40
let clone_corpus = 30
let queries = 200

let with_store k =
  let dir = Filename.temp_file "bench_registry" ".store" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> k (Registry.create ~format_version:P.format_version ~dir))

let handle server line =
  let resp, _ = Server.handle server line in
  assert (String.length resp > 0)

(* Faulted schemas so ingest prices real verdicts (the corpus carries
   every pattern) and "pattern:N" queries have matches to return. *)
let corpus_texts ~n ~seed0 =
  List.init n (fun i ->
      Orm_dsl.Printer.to_string
        (Orm_generator.Faults.inject ~seed:(seed0 + i)
           (1 + (i mod 9))
           (Orm_generator.Gen.clean
              ~config:(Orm_generator.Gen.sized 8) ~seed:(seed0 + i) ()))
          .Orm_generator.Faults.schema)

let ingest_row () =
  with_store (fun store ->
      let server = Server.create ~registry:store Server.default_config in
      let texts = corpus_texts ~n:ingest_corpus ~seed0:1_000 in
      let _, elapsed_ns =
        Metrics.time (fun () ->
            handle server (P.build_request ~schema_texts:texts P.Ingest))
      in
      Bench_util.json_obj
        [
          ("scenario", Bench_util.json_str "bulk ingest, distinct corpus");
          ("schemas", string_of_int ingest_corpus);
          ("new_entries", string_of_int (Registry.ingested store));
          ("duplicates", string_of_int (Registry.duplicates store));
          ("elapsed_ns", string_of_int elapsed_ns);
          ( "schemas_per_s",
            Printf.sprintf "%.1f"
              (float_of_int ingest_corpus *. 1e9
              /. float_of_int (max 1 elapsed_ns)) );
        ])

let hit_rate_row () =
  let metrics = Metrics.create () in
  let server = Server.create ~metrics Server.default_config in
  let base =
    List.init clone_corpus (fun i ->
        (Orm_generator.Faults.inject ~seed:(2_000 + i)
           (1 + (i mod 9))
           (Orm_generator.Gen.clean
              ~config:(Orm_generator.Gen.sized 8) ~seed:(2_000 + i) ()))
          .Orm_generator.Faults.schema)
  in
  (* warm the cache with the originals *)
  List.iter
    (fun s ->
      handle server
        (P.build_request ~schema_text:(Orm_dsl.Printer.to_string s) P.Check))
    base;
  let hits_before = Server.cache_hits server in
  let clones =
    List.mapi
      (fun i s ->
        Orm_dsl.Printer.to_string
          (Orm.Schema.rename
             ~schema_name:(Printf.sprintf "Clone%d" i)
             ~object_type:(fun t -> "Q" ^ string_of_int i ^ "_" ^ t)
             ~fact_type:(fun f -> "R" ^ string_of_int i ^ "_" ^ f)
             ~constraint_id:(fun c -> "k" ^ string_of_int i ^ "_" ^ c)
             s))
      base
  in
  let _, elapsed_ns =
    Metrics.time (fun () ->
        List.iter
          (fun text -> handle server (P.build_request ~schema_text:text P.Check))
          clones)
  in
  let snap = Metrics.snapshot metrics in
  let clone_hits = Server.cache_hits server - hits_before in
  (* a canon hit is a hit the byte digest alone would have missed *)
  let byte_hits = clone_hits - snap.Metrics.canon_hits in
  let rate n = float_of_int n /. float_of_int clone_corpus in
  assert (snap.Metrics.canon_hits > 0);
  assert (rate clone_hits > rate byte_hits);
  Bench_util.json_obj
    [
      ( "scenario",
        Bench_util.json_str "renamed clones of a warm corpus, one check each"
      );
      ("clones", string_of_int clone_corpus);
      ("canonical_hits", string_of_int clone_hits);
      ("canonical_hit_rate", Printf.sprintf "%.3f" (rate clone_hits));
      ("byte_hits", string_of_int byte_hits);
      ("byte_hit_rate", Printf.sprintf "%.3f" (rate byte_hits));
      ("elapsed_ns", string_of_int elapsed_ns);
      ( "checks_per_s",
        Printf.sprintf "%.1f"
          (float_of_int clone_corpus *. 1e9 /. float_of_int (max 1 elapsed_ns))
      );
    ]

let query_row () =
  with_store (fun store ->
      let server = Server.create ~registry:store Server.default_config in
      handle server
        (P.build_request
           ~schema_texts:(corpus_texts ~n:ingest_corpus ~seed0:3_000)
           P.Ingest);
      let qs = [ "pattern:6"; "verdict:unsat"; "pattern:1 verdict:unsat" ] in
      let timings =
        Array.init queries (fun i ->
            let line =
              P.build_request ~q:(List.nth qs (i mod List.length qs)) P.Query
            in
            snd (Metrics.time (fun () -> handle server line)))
      in
      Array.sort compare timings;
      let total = Array.fold_left ( + ) 0 timings in
      let pct p = timings.(min (queries - 1) (p * queries / 100)) in
      Bench_util.json_obj
        [
          ("scenario", Bench_util.json_str "warm queries over ingested corpus");
          ("entries", string_of_int (Registry.size store));
          ("queries", string_of_int queries);
          ("elapsed_ns", string_of_int total);
          ( "queries_per_s",
            Printf.sprintf "%.1f"
              (float_of_int queries *. 1e9 /. float_of_int (max 1 total)) );
          ("p50_ns", string_of_int (pct 50));
          ("p95_ns", string_of_int (pct 95));
        ])

let note =
  "registry: bulk ingest of a distinct faulted corpus (one canonicalize + \
   engine check + append per schema); the canonical-vs-byte row checks a \
   warm corpus's renamed clones — every clone misses on byte digest and \
   hits on canonical digest, so canonical_hit_rate must be strictly above \
   byte_hit_rate; warm queries answer from the covering index without \
   re-checking, so p50 must sit with the cache-hit rows, not the engine \
   rows"

let rows () = [ ingest_row (); hit_rate_row (); query_row () ]
