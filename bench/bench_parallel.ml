(* Sequential-vs-parallel benchmark, persisted as BENCH_parallel.json.

   Two workloads, matching Engine_par's two modes:

   - per figure schema: one Engine.check against the pattern-fanning
     Engine_par.check (figures are tiny, so this mostly measures the pool
     floor — small on many cores, visible on few);
   - per generated-schema batch: a List.map Engine.check baseline against
     Engine_par.check_batch at several domain counts over >= 100 schemas.

   Times are best-of-[repeats] monotonic wall times; the host's recommended
   domain count is recorded so a reader can tell a 1-core container's ~1x
   "speedup" from a real multicore run. *)

module Engine = Orm_patterns.Engine
module Engine_par = Orm_patterns.Engine_par
module Metrics = Orm_telemetry.Metrics

let repeats = 5

let best_of_ns f =
  let best = ref max_int in
  for _ = 1 to repeats do
    let (_ : unit), ns = Metrics.time f in
    if ns < !best then best := ns
  done;
  !best

let json_obj = Bench_util.json_obj
let json_arr = Bench_util.json_arr

let figure_rows ~domains =
  List.map
    (fun (e : Orm.Figures.expectation) ->
      let seq_ns = best_of_ns (fun () -> ignore (Engine.check e.schema)) in
      let par_ns =
        best_of_ns (fun () -> ignore (Engine_par.check ~domains e.schema))
      in
      json_obj
        [
          ("figure", Bench_util.json_str e.figure);
          ("sequential_ns", string_of_int seq_ns);
          ("parallel_fan_ns", string_of_int par_ns);
          ("domains", string_of_int domains);
        ])
    Orm.Figures.all

let batch_schemas ~n ~size =
  List.init n (fun i ->
      let base = Orm_generator.Gen.clean ~config:(Orm_generator.Gen.sized size) ~seed:(500 + i) () in
      if i mod 3 = 0 then
        (Orm_generator.Faults.inject ~seed:(500 + i) (1 + (i mod 9)) base)
          .Orm_generator.Faults.schema
      else base)

let batch_rows ~domain_counts ~n ~size =
  let schemas = batch_schemas ~n ~size in
  let seq_ns = best_of_ns (fun () -> ignore (List.map Engine.check schemas)) in
  List.map
    (fun domains ->
      let par_ns =
        best_of_ns (fun () -> ignore (Engine_par.check_batch ~domains schemas))
      in
      json_obj
        [
          ("schemas", string_of_int n);
          ("size", string_of_int size);
          ("domains", string_of_int domains);
          ("sequential_ns", string_of_int seq_ns);
          ("parallel_ns", string_of_int par_ns);
          ("speedup", Printf.sprintf "%.3f" (float_of_int seq_ns /. float_of_int par_ns));
        ])
    domain_counts

let run ?(file = "BENCH_parallel.json") () =
  let recommended = Domain.recommended_domain_count () in
  let fan_domains = max 2 (min 4 recommended) in
  let figures = figure_rows ~domains:fan_domains in
  let batches =
    batch_rows ~domain_counts:[ 1; 2; 4; 8 ] ~n:120 ~size:12
    @ batch_rows ~domain_counts:[ 1; 2; 4; 8 ] ~n:200 ~size:6
  in
  let doc =
    json_obj
      (Bench_util.host_fields
      @ [
        ("repeats", string_of_int repeats);
        ( "note",
          Bench_util.json_str
            (if recommended <= 1 then
               "host exposes a single core: domain parallelism cannot beat the \
                sequential engine here; speedups > 1 require \
                host_recommended_domains >= 2 (the differential test suite \
                still proves report equivalence at every domain count)"
             else "speedup = sequential_ns / parallel_ns; > 1 means the pool wins") );
          ("figures", json_arr figures);
          ("batches", json_arr batches);
        ])
  in
  Bench_util.write_doc ~file doc;
  Printf.printf "\n==== parallel batch engine (best of %d, %d recommended domain(s)) ====\n"
    repeats recommended;
  Printf.printf "wrote %s\n" file;
  List.iter
    (fun row -> Printf.printf "  %s\n" row)
    batches
