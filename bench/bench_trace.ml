(* Tracing-overhead benchmark, persisted as BENCH_trace.json.

   The tracer's design promise is "off costs nothing, on costs little":
   the disabled path is the engine's original code (no closures, no
   timestamps — enforced by test_trace's Gc guard), and the enabled path
   is two monotonic-clock reads plus one ring write per span.  This
   benchmark quantifies both halves of the promise on the same workloads
   BENCH_parallel.json uses:

   - per figure schema: Engine.check with tracing off vs on;
   - per generated batch: Engine_par.check_batch at a couple of domain
     counts, off vs on, plus the event volume a traced batch produces.

   Times are best-of-[repeats] monotonic wall times; the host's
   recommended domain count is recorded because on a single-core container
   the batch rows measure the pool floor, not parallel tracing. *)

module Engine = Orm_patterns.Engine
module Engine_par = Orm_patterns.Engine_par
module Metrics = Orm_telemetry.Metrics
module Trace = Orm_trace.Trace

let repeats = 5

let best_of_ns f =
  let best = ref max_int in
  for _ = 1 to repeats do
    let (_ : unit), ns = Metrics.time f in
    if ns < !best then best := ns
  done;
  !best

let json_obj = Bench_util.json_obj
let json_arr = Bench_util.json_arr

let overhead off on =
  Printf.sprintf "%.3f" (float_of_int on /. float_of_int off)

(* The tracer is created (and its ring first written, which allocates the
   per-domain buffer) outside the timed region: a tracer lives for a whole
   session, so the rows price the marginal per-span cost, not the one-time
   ring allocation. *)
let figure_rows () =
  List.map
    (fun (e : Orm.Figures.expectation) ->
      let off_ns = best_of_ns (fun () -> ignore (Engine.check e.schema)) in
      let tracer = Trace.create () in
      ignore (Engine.check ~tracer e.schema);
      let on_ns = best_of_ns (fun () -> ignore (Engine.check ~tracer e.schema)) in
      json_obj
        [
          ("figure", Bench_util.json_str e.figure);
          ("untraced_ns", string_of_int off_ns);
          ("traced_ns", string_of_int on_ns);
          ("overhead", overhead off_ns on_ns);
        ])
    Orm.Figures.all

let batch_rows ~domain_counts ~n ~size =
  let schemas = Bench_parallel.batch_schemas ~n ~size in
  List.map
    (fun domains ->
      let off_ns =
        best_of_ns (fun () -> ignore (Engine_par.check_batch ~domains schemas))
      in
      (* one long-lived tracer, as in a real session; each batch call still
         spawns fresh worker domains, so their ring registration is part of
         the honest traced cost *)
      let tracer = Trace.create () in
      ignore (Engine_par.check_batch ~domains ~tracer schemas);
      let on_ns =
        best_of_ns (fun () ->
            ignore (Engine_par.check_batch ~domains ~tracer schemas))
      in
      (* event volume of one traced run, for the ring-sizing discussion in
         docs/OBSERVABILITY.md *)
      let tracer = Trace.create () in
      ignore (Engine_par.check_batch ~domains ~tracer schemas);
      json_obj
        [
          ("schemas", string_of_int n);
          ("size", string_of_int size);
          ("domains", string_of_int domains);
          ("untraced_ns", string_of_int off_ns);
          ("traced_ns", string_of_int on_ns);
          ("overhead", overhead off_ns on_ns);
          ("events", string_of_int (List.length (Trace.events tracer)));
          ("dropped", string_of_int (Trace.dropped tracer));
        ])
    domain_counts

let run ?(file = "BENCH_trace.json") () =
  let recommended = Domain.recommended_domain_count () in
  let figures = figure_rows () in
  let batches = batch_rows ~domain_counts:[ 1; 2; 4 ] ~n:120 ~size:12 in
  let doc =
    json_obj
      (Bench_util.host_fields
      @ [
        ("repeats", string_of_int repeats);
        ( "note",
          Bench_util.json_str
            "overhead = traced_ns / untraced_ns; tracing off is the engine's \
             original path (the test suite pins it allocation-free), tracing \
             on pays two clock reads and a ring write per span" );
          ("figures", json_arr figures);
          ("batches", json_arr batches);
        ])
  in
  Bench_util.write_doc ~file doc;
  Printf.printf "\n==== tracing overhead (best of %d, %d recommended domain(s)) ====\n"
    repeats recommended;
  Printf.printf "wrote %s\n" file;
  List.iter (fun row -> Printf.printf "  %s\n" row) batches
