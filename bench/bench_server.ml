(* Checking-service throughput, persisted as BENCH_server.json.

   The server's performance claim is the cache: a cold request pays the full
   engine, a warm one pays a digest, a hash lookup and a response rebuild.
   This benchmark drives [Server.handle] directly — the same entry point the
   socket loop uses, so the numbers price the service (parse, digest, cache,
   dispatch, print) without socket noise:

   - cold: N check requests over N distinct schemas (every one a miss);
   - warm: N check requests over [distinct] schemas (first [distinct] miss,
     the rest hit);
   - reason-warm: the same warm loop through the full reasoning stack, to
     show the cache flattening the expensive backends too.

   p50/p95 are read off the telemetry request-latency histogram — the same
   numbers `ormcheck serve --stats` reports, so EXPERIMENTS.md quotes the
   production surface, not a bench-only code path. *)

module Metrics = Orm_telemetry.Metrics
module P = Orm_server.Protocol
module Server = Orm_server.Server

let requests = 200
let distinct = 5

let schema_texts ~n ~size =
  List.map Orm_dsl.Printer.to_string (Bench_parallel.batch_schemas ~n ~size)

(* One fresh server per scenario so cache state and histograms don't leak
   across rows.  The reason scenario caps its backends ([budget]): the
   artifact is about warm-vs-cold shape, and uncapped tableau misses at
   this size run for minutes without changing that shape. *)
let run_scenario ?budget ?sat_budget ~meth ~texts () =
  let metrics = Metrics.create () in
  let server = Server.create ~metrics Server.default_config in
  let total = List.length texts in
  let _, elapsed_ns =
    Metrics.time (fun () ->
        List.iteri
          (fun i text ->
            let line =
              P.build_request ~id:(string_of_int i) ~schema_text:text ?budget
                ?sat_budget meth
            in
            let resp, _ = Server.handle server line in
            assert (String.length resp > 0))
          texts)
  in
  let snap = Metrics.snapshot metrics in
  let req_per_s =
    float_of_int total *. 1e9 /. float_of_int (max 1 elapsed_ns)
  in
  Bench_util.json_obj
    [
      ("method", Printf.sprintf "%S" (P.meth_to_string meth));
      ("requests", string_of_int total);
      ("cache_hits", string_of_int (Server.cache_hits server));
      ("cache_misses", string_of_int (Server.cache_misses server));
      ("elapsed_ns", string_of_int elapsed_ns);
      ("requests_per_s", Printf.sprintf "%.1f" req_per_s);
      ("p50_ns", string_of_int (Metrics.request_p50_ns snap));
      ("p95_ns", string_of_int (Metrics.request_p95_ns snap));
      ("max_ns", string_of_int snap.Metrics.request_max_ns);
    ]

let run ?(file = "BENCH_server.json") () =
  let cold_texts = schema_texts ~n:requests ~size:8 in
  let warm_base = schema_texts ~n:distinct ~size:8 in
  let warm_texts =
    List.init requests (fun i -> List.nth warm_base (i mod distinct))
  in
  let rows =
    [
      run_scenario ~meth:P.Check ~texts:cold_texts ();
      run_scenario ~meth:P.Check ~texts:warm_texts ();
      run_scenario ~meth:P.Reason ~budget:2_000 ~sat_budget:200_000
        ~texts:warm_texts ();
    ]
  in
  let doc =
    Bench_util.json_obj
      (Bench_util.host_fields
      @ [
          ("requests", string_of_int requests);
          ("distinct_schemas_warm", string_of_int distinct);
          ( "note",
            Printf.sprintf "%S"
              "rows: check over all-distinct schemas (cold, every request a \
               miss), check over few repeated schemas (warm, hit rate \
               (requests-distinct)/requests), reason over the same warm mix; \
               p50/p95 from the telemetry request-latency histogram, i.e. \
               what `ormcheck serve --stats` reports" );
          ("scenarios", Bench_util.json_arr rows);
        ])
  in
  Bench_util.write_doc ~file doc;
  Printf.printf "\n==== checking service (%d requests, %d distinct warm) ====\n"
    requests distinct;
  Printf.printf "wrote %s\n" file;
  List.iter (fun row -> Printf.printf "  %s\n" row) rows
