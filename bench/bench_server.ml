(* Checking-service throughput, persisted as BENCH_server.json.

   The server's performance claim is the cache: a cold request pays the full
   engine, a warm one pays a digest, a hash lookup and a response rebuild.
   This benchmark drives [Server.handle] directly — the same entry point the
   socket loop uses, so the numbers price the service (parse, digest, cache,
   dispatch, print) without socket noise:

   - cold: N check requests over N distinct schemas (every one a miss);
   - warm: N check requests over [distinct] schemas (first [distinct] miss,
     the rest hit);
   - reason-warm: the same warm loop through the full reasoning stack, to
     show the cache flattening the expensive backends too.

   p50/p95 are read off the telemetry request-latency histogram — the same
   numbers `ormcheck serve --stats` reports, so EXPERIMENTS.md quotes the
   production surface, not a bench-only code path. *)

module Metrics = Orm_telemetry.Metrics
module P = Orm_server.Protocol
module Server = Orm_server.Server

let requests = 200
let distinct = 5

let schema_texts ~n ~size =
  List.map Orm_dsl.Printer.to_string (Bench_parallel.batch_schemas ~n ~size)

(* One fresh server per scenario so cache state and histograms don't leak
   across rows.  The reason scenario caps its backends ([budget]): the
   artifact is about warm-vs-cold shape, and uncapped tableau misses at
   this size run for minutes without changing that shape. *)
let run_scenario ?budget ?sat_budget ?backend ?mix ~meth ~texts () =
  let metrics = Metrics.create () in
  let server = Server.create ~metrics Server.default_config in
  let total = List.length texts in
  let _, elapsed_ns =
    Metrics.time (fun () ->
        List.iteri
          (fun i text ->
            let line =
              P.build_request ~id:(string_of_int i) ~schema_text:text ?budget
                ?sat_budget ?backend meth
            in
            let resp, _ = Server.handle server line in
            assert (String.length resp > 0))
          texts)
  in
  let snap = Metrics.snapshot metrics in
  let req_per_s =
    float_of_int total *. 1e9 /. float_of_int (max 1 elapsed_ns)
  in
  let backend_field =
    match backend with
    | None -> []
    | Some b ->
        let s = P.backend_to_string b in
        [ ("backend", Bench_util.json_str s) ]
  in
  let mix_field =
    match mix with
    | None -> []
    | Some m -> [ ("mix", Bench_util.json_str m) ]
  in
  Bench_util.json_obj
    (("method", Bench_util.json_str (P.meth_to_string meth))
     :: (backend_field @ mix_field)
    @ [
        ("requests", string_of_int total);
        ("cache_hits", string_of_int (Server.cache_hits server));
        ("cache_misses", string_of_int (Server.cache_misses server));
        ("elapsed_ns", string_of_int elapsed_ns);
        ("requests_per_s", Printf.sprintf "%.1f" req_per_s);
        ("p50_ns", string_of_int (Metrics.request_p50_ns snap));
        ("p95_ns", string_of_int (Metrics.request_p95_ns snap));
        ("max_ns", string_of_int snap.Metrics.request_max_ns);
        ("plan_patterns_only", string_of_int snap.Metrics.plan_patterns_only);
        ("plan_races", string_of_int snap.Metrics.plan_races);
      ])

(* Transport pricing: the same warm check mix driven through the network
   front ends over a loopback socket — NDJSON-over-TCP (one persistent
   connection) and HTTP/1.1 keep-alive — to be read against the
   [Server.handle] rows above: the delta is framing plus syscalls.  The
   serve loop runs on a thread of this process (setting
   [Server.stop_flag] from another thread is the documented stop path),
   because by the time this section runs the bechamel/parallel sections
   have spawned domains and OCaml 5 forbids forking after that.  Prefork
   sharding (--workers) is deliberately not measured: every worker would
   share the one core this artifact records in host_cores, so the row
   would price contention, not sharding — multi-worker behaviour is
   covered functionally by test/cli_regression.sh and CI. *)
let drive_transport ~server ~framing ~texts () =
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let loop =
    Thread.create
      (fun () -> Orm_net.Frontend.serve_fd ~server ~framing listen_fd)
      ()
  in
  let port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let write_all s =
    let rec go off =
      if off < String.length s then
        go (off + Unix.write_substring fd s off (String.length s - off))
    in
    go 0
  in
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let refill () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> failwith "bench server closed the connection"
    | n -> Buffer.add_subbytes buf chunk 0 n
  in
  (* one request in flight at a time, so a complete answer empties the
     buffer — no consumed-prefix bookkeeping needed *)
  let await_ndjson_line () =
    let rec go () =
      if not (String.contains (Buffer.contents buf) '\n') then begin
        refill ();
        go ()
      end
    in
    go ();
    Buffer.clear buf
  in
  let await_http_response () =
    let rec go () =
      match Orm_net.Http.parse_response (Buffer.contents buf) with
      | Ok (Some _) -> Buffer.clear buf
      | Ok None ->
          refill ();
          go ()
      | Error msg -> failwith ("bench http response: " ^ msg)
    in
    go ()
  in
  let _, elapsed_ns =
    Metrics.time (fun () ->
        List.iteri
          (fun i text ->
            match framing with
            | Orm_net.Listen.Ndjson ->
                write_all
                  (P.build_request ~id:(string_of_int i) ~schema_text:text
                     P.Check
                  ^ "\n");
                await_ndjson_line ()
            | Orm_net.Listen.Http_framing ->
                let body = P.build_params ~schema_text:text () in
                write_all
                  (Printf.sprintf
                     "POST /v1/check HTTP/1.1\r\nHost: bench\r\n\
                      Content-Length: %d\r\n\r\n%s"
                     (String.length body) body);
                await_http_response ())
          texts)
  in
  Unix.close fd;
  Atomic.set (Server.stop_flag server) true;
  Thread.join loop;
  Unix.close listen_fd;
  elapsed_ns

let run_transport_scenario ~framing ~label ~texts () =
  let metrics = Metrics.create () in
  let server = Server.create ~metrics Server.default_config in
  let total = List.length texts in
  let elapsed_ns = drive_transport ~server ~framing ~texts () in
  let snap = Metrics.snapshot metrics in
  let req_per_s =
    float_of_int total *. 1e9 /. float_of_int (max 1 elapsed_ns)
  in
  Bench_util.json_obj
    [
      ("transport", Bench_util.json_str label);
      ("method", "\"check\"");
      ("requests", string_of_int total);
      ("cache_hits", string_of_int (Server.cache_hits server));
      ("cache_misses", string_of_int (Server.cache_misses server));
      ("elapsed_ns", string_of_int elapsed_ns);
      ("requests_per_s", Printf.sprintf "%.1f" req_per_s);
      ("p50_ns", string_of_int (Metrics.request_p50_ns snap));
      ("p95_ns", string_of_int (Metrics.request_p95_ns snap));
    ]

(* Observability pricing: the same warm check mix with the operations
   layer fully on — rolling-window telemetry, a tail-sampling tracer and
   one NDJSON audit line per request — against a bare server carrying
   none of it.  Measured on two surfaces: straight through
   [Server.handle] (the worst case — a warm hit runs in tens of
   microseconds, so every microsecond of bookkeeping shows) and through
   the HTTP front end over loopback (what an operator deploys, where the
   same absolute cost sits under framing and syscalls — the <5% budget
   applies there).  The four configurations are interleaved across
   [obs_reps] passes and the fastest pass of each is kept, so the
   figures price the code path, not scheduler drift. *)
let obs_reps = 3

let run_obs_scenario ~texts () =
  let total = List.length texts in
  let audit_path = Filename.temp_file "bench_audit" ".ndjson" in
  let audit_records = ref 0 in
  let make_bare () = (Server.create Server.default_config, ignore) in
  let make_full () =
    let audit =
      match Orm_obs.Audit.create audit_path with
      | Ok a -> a
      | Error msg -> failwith msg
    in
    let server =
      Server.create ~metrics:(Metrics.create ()) ~audit Server.default_config
    in
    ( server,
      fun () ->
        Orm_obs.Audit.close audit;
        (* the fastest pass decides the timing; any pass's line count
           shows one audit record per request *)
        let ic = open_in audit_path in
        let n = ref 0 in
        (try
           while true do
             ignore (input_line ic);
             incr n
           done
         with End_of_file -> ());
        close_in ic;
        audit_records := !n;
        Unix.truncate audit_path 0 )
  in
  let drive_handle server =
    let _, elapsed_ns =
      Metrics.time (fun () ->
          List.iteri
            (fun i text ->
              let line =
                P.build_request ~id:(string_of_int i) ~schema_text:text P.Check
              in
              let resp, _ = Server.handle server line in
              assert (String.length resp > 0))
            texts)
    in
    elapsed_ns
  in
  let drive_http server =
    drive_transport ~server ~framing:Orm_net.Listen.Http_framing ~texts ()
  in
  let cells = Array.make 4 max_int in
  let cfgs =
    [| (drive_handle, make_bare); (drive_handle, make_full);
       (drive_http, make_bare); (drive_http, make_full) |]
  in
  for _ = 1 to obs_reps do
    Array.iteri
      (fun i (drive, make) ->
        let server, cleanup = make () in
        let elapsed = drive server in
        cleanup ();
        cells.(i) <- min cells.(i) elapsed)
      cfgs
  done;
  (try Sys.remove audit_path with Sys_error _ -> ());
  (try Sys.remove (audit_path ^ ".1") with Sys_error _ -> ());
  let row ~surface ~label ~elapsed_ns extra =
    Bench_util.json_obj
      ([
         ("surface", Bench_util.json_str surface);
         ("observability", Bench_util.json_str label);
         ("method", "\"check\"");
         ("requests", string_of_int total);
         ("elapsed_ns", string_of_int elapsed_ns);
         ( "requests_per_s",
           Printf.sprintf "%.1f"
             (float_of_int total *. 1e9 /. float_of_int (max 1 elapsed_ns)) );
       ]
      @ extra)
  in
  let pct on off =
    [
      ( "overhead_pct",
        Printf.sprintf "%.2f"
          (100. *. float_of_int (on - off) /. float_of_int (max 1 off)) );
    ]
  in
  [
    row ~surface:"handle" ~label:"off" ~elapsed_ns:cells.(0) [];
    row ~surface:"handle" ~label:"audit+rolling" ~elapsed_ns:cells.(1)
      (("audit_records", string_of_int !audit_records)
       :: pct cells.(1) cells.(0));
    row ~surface:"http" ~label:"off" ~elapsed_ns:cells.(2) [];
    row ~surface:"http" ~label:"audit+rolling" ~elapsed_ns:cells.(3)
      (pct cells.(3) cells.(2));
  ]

(* ---- §SAT: eager vs lazy grounding ----------------------------------- *)

(* The lazy-grounding claim, priced: the largest domain bound (fresh atoms
   per type family, [max_fresh]) each SAT route can decide within one fixed
   deadline on the same clean schema.  The eager encoder grounds the full
   candidate grid up front — O(k^2) typing/tuple clauses and O(k^3)
   acyclicity orders — so its feasible k stalls early; the CEGAR loop only
   grounds constraint instances a candidate model actually violates, so
   its feasible k is expected to be >= 4x the eager one (the acceptance
   bar the §SAT row records). *)
let sat_deadline_ms = 800
let sat_k_cap = 512

(* Acyclic + intransitive self-referencing facts: the eager encoding
   grounds two O(k^3) clause families per fact up front, while CEGAR only
   instantiates the O(k^2) families a model actually violates — the
   schema shape the lazy route exists for. *)
let sat_schema () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "schema sat_bench\n";
  for i = 1 to 4 do
    Buffer.add_string buf (Printf.sprintf "object_type T%d\n" i);
    Buffer.add_string buf
      (Printf.sprintf "fact r%d (T%d, T%d) reading \"links\"\n" i i i);
    Buffer.add_string buf (Printf.sprintf "ring ac r%d\n" i);
    Buffer.add_string buf (Printf.sprintf "ring it r%d\n" i)
  done;
  Orm_dsl.Parser.parse_exn (Buffer.contents buf)

let feasible_k solve =
  let decided k =
    let deadline_ns =
      Int64.add (Metrics.now_ns ())
        (Int64.of_int (sat_deadline_ms * 1_000_000))
    in
    let (outcome : Orm_sat.Encode.outcome), time_ns =
      Metrics.time (fun () -> solve ~max_fresh:k ~deadline_ns)
    in
    match outcome with
    | Orm_sat.Encode.Model _ | Orm_sat.Encode.No_model -> Some time_ns
    | Orm_sat.Encode.Timeout -> None
  in
  let rec grow k best =
    if k > sat_k_cap then best
    else
      match decided k with
      | Some time_ns -> grow (2 * k) (k, time_ns)
      | None -> best
  in
  grow 1 (0, 0)

let run_sat_scenario () =
  let schema = sat_schema () in
  (* a budget far above what the deadline allows, so the deadline is the
     only binding constraint — exactly the planner's admission question *)
  let budget = 1_000_000_000 in
  let eager_k, eager_ns =
    feasible_k (fun ~max_fresh ~deadline_ns ->
        Orm_sat.Encode.solve ~max_fresh ~budget ~deadline_ns schema
          Orm_sat.Encode.Strongly_satisfiable)
  in
  let lazy_k, lazy_ns =
    feasible_k (fun ~max_fresh ~deadline_ns ->
        Orm_sat.Cegar.solve ~max_fresh ~budget ~deadline_ns schema
          Orm_sat.Encode.Strongly_satisfiable)
  in
  (* the doubling search ends on a failed attempt, so re-solve at the
     feasible bound to leave its round/instantiation telemetry behind *)
  if lazy_k > 0 then
    ignore
      (Orm_sat.Cegar.solve ~max_fresh:lazy_k ~budget schema
         Orm_sat.Encode.Strongly_satisfiable);
  let stats = Orm_sat.Cegar.last_stats () in
  Bench_util.json_obj
    [
      ("deadline_ms", string_of_int sat_deadline_ms);
      ("eager_feasible_k", string_of_int eager_k);
      ("eager_time_ns_at_k", string_of_int eager_ns);
      ("lazy_feasible_k", string_of_int lazy_k);
      ("lazy_time_ns_at_k", string_of_int lazy_ns);
      ( "lazy_over_eager_k",
        Printf.sprintf "%.1f"
          (float_of_int lazy_k /. float_of_int (max 1 eager_k)) );
      ("lazy_rounds_at_k", string_of_int stats.Orm_sat.Cegar.rounds);
      ( "lazy_instantiated_clauses_at_k",
        string_of_int stats.Orm_sat.Cegar.instantiated_clauses );
      ("lazy_variables_at_k", string_of_int stats.Orm_sat.Cegar.variables);
    ]

let run ?(file = "BENCH_server.json") () =
  let cold_texts = schema_texts ~n:requests ~size:8 in
  let warm_base = schema_texts ~n:distinct ~size:8 in
  let warm_texts =
    List.init requests (fun i -> List.nth warm_base (i mod distinct))
  in
  (* every schema pattern-conclusive, every request a miss: this subset
     prices the planner's short-circuit — `reason --backend auto` must cost
     about a `check` here, because the complete backends never run *)
  let conclusive_texts =
    List.init requests (fun i ->
        Orm_dsl.Printer.to_string
          (Orm_generator.Faults.inject ~seed:(900 + i)
             (1 + (i mod 9))
             (Orm_generator.Gen.clean
                ~config:(Orm_generator.Gen.sized 8) ~seed:(900 + i) ()))
            .schema)
  in
  let rows =
    [
      run_scenario ~meth:P.Check ~texts:cold_texts ();
      run_scenario ~meth:P.Check ~texts:warm_texts ();
      run_scenario ~meth:P.Reason ~budget:2_000 ~sat_budget:200_000
        ~backend:`Both ~texts:warm_texts ();
      run_scenario ~meth:P.Reason ~budget:2_000 ~sat_budget:200_000
        ~backend:`Auto ~texts:warm_texts ();
      run_scenario ~meth:P.Check ~mix:"pattern-conclusive cold"
        ~texts:conclusive_texts ();
      run_scenario ~meth:P.Reason ~budget:2_000 ~sat_budget:200_000
        ~backend:`Auto ~mix:"pattern-conclusive cold" ~texts:conclusive_texts
        ();
    ]
  in
  let obs_rows = run_obs_scenario ~texts:warm_texts () in
  let sat_row = run_sat_scenario () in
  let registry_rows = Bench_registry.rows () in
  let transport_rows =
    [
      run_transport_scenario ~framing:Orm_net.Listen.Ndjson
        ~label:"tcp-ndjson" ~texts:warm_texts ();
      run_transport_scenario ~framing:Orm_net.Listen.Http_framing
        ~label:"http" ~texts:warm_texts ();
    ]
  in
  let doc =
    Bench_util.json_obj
      (Bench_util.host_fields
      @ [
          ("requests", string_of_int requests);
          ("distinct_schemas_warm", string_of_int distinct);
          ( "note",
            Bench_util.json_str
              "rows: check over all-distinct schemas (cold, every request a \
               miss), check over few repeated schemas (warm, hit rate \
               (requests-distinct)/requests), reason (forced both, then \
               backend auto) over the same warm mix, then check vs reason \
               auto over a cold pattern-conclusive mix — the planner \
               short-circuits there, so auto p50 must sit within a small \
               factor of check p50; p50/p95 from the telemetry \
               request-latency histogram, i.e. what `ormcheck serve \
               --stats` reports" );
          ("scenarios", Bench_util.json_arr rows);
          ( "observability_note",
            Bench_util.json_str
              "observability: the warm check mix on a bare server (no \
               telemetry, no audit) against one with the full operations \
               layer — rolling-window metrics, tail-sampling tracer and an \
               NDJSON audit line per request; fastest of three interleaved \
               passes each.  surface=handle is the in-process worst case \
               (a warm hit runs in tens of microseconds, so the absolute \
               bookkeeping cost shows as a double-digit percentage); \
               surface=http is the deployed path, where the same absolute \
               cost must stay under 5% overhead_pct" );
          ("observability", Bench_util.json_arr obs_rows);
          ( "transport_note",
            Bench_util.json_str
              "transports: the warm check mix over loopback sockets — \
               tcp-ndjson (persistent NDJSON connection) and http \
               (HTTP/1.1 keep-alive POST /v1/check); read against the \
               warm in-process row, the delta prices framing + syscalls. \
               --workers prefork sharding is not measured: host_cores \
               records the one core every worker would share" );
          ("transports", Bench_util.json_arr transport_rows);
          ( "sat_note",
            Bench_util.json_str
              "sat: the largest candidate-domain bound k (fresh atoms per \
               type family, doubling search) each complete SAT route \
               decides within one fixed deadline on the same clean \
               acyclic+intransitive ring schema.  The eager encoder \
               grounds two O(k^3) clause families per fact up front; the \
               lazy CEGAR route grounds only violated instances, so \
               lazy_feasible_k is expected to be >= 4x eager_feasible_k" );
          ("sat", sat_row);
          ("registry_note", Bench_util.json_str Bench_registry.note);
          ("registry", Bench_util.json_arr registry_rows);
        ])
  in
  Bench_util.write_doc ~file doc;
  Printf.printf "\n==== checking service (%d requests, %d distinct warm) ====\n"
    requests distinct;
  Printf.printf "wrote %s\n" file;
  List.iter
    (fun row -> Printf.printf "  %s\n" row)
    (rows @ obs_rows @ transport_rows @ [ sat_row ] @ registry_rows)
