open Orm
open Orm_semantics
module Sset = Ids.String_set
module B = Cnf_builder

type query =
  | Schema_satisfiable
  | Type_satisfiable of Ids.object_type
  | Role_satisfiable of Ids.role
  | All_populated of Ids.role list
  | Strongly_satisfiable

type outcome =
  | Model of Population.t
  | No_model
  | Timeout

let pp_outcome ppf = function
  | Model pop -> Format.fprintf ppf "@[<v2>model:@,%a@]" Population.pp pop
  | No_model -> Format.pp_print_string ppf "no model within the bound"
  | Timeout -> Format.pp_print_string ppf "solver budget exceeded"

type stats = {
  variables : int;
  clauses : int;
  decisions : int;
}

let last = ref { variables = 0; clauses = 0; decisions = 0 }
let last_stats () = !last

(* ------------------------------------------------------------------ *)
(* Candidate universe (mirrors Orm_reasoner.Finder)                     *)
(* ------------------------------------------------------------------ *)

let family g seed =
  let neighbours t =
    Sset.union
      (Sset.of_list (Subtype_graph.direct_supertypes g t))
      (Sset.of_list (Subtype_graph.direct_subtypes g t))
  in
  let rec loop frontier seen =
    if Sset.is_empty frontier then seen
    else
      let next =
        Sset.fold (fun t acc -> Sset.union acc (neighbours t)) frontier Sset.empty
      in
      let fresh = Sset.diff next seen in
      loop fresh (Sset.union seen fresh)
  in
  loop (Sset.singleton seed) (Sset.singleton seed)

let default_fresh schema =
  let from_freq =
    List.fold_left
      (fun acc (c : Constraints.t) ->
        match c.body with Frequency (_, { min; _ }) -> max acc min | _ -> acc)
      2 (Schema.constraints schema)
  in
  let from_exclusion =
    List.fold_left
      (fun acc (_, seqs) -> max acc (List.length seqs))
      from_freq
      (Schema.role_exclusions schema)
  in
  min 4 from_exclusion

(* ------------------------------------------------------------------ *)
(* The encoding                                                         *)
(* ------------------------------------------------------------------ *)

type env = {
  b : B.t;
  schema : Schema.t;
  pool : Ids.object_type -> Value.t list;  (* candidates for a type's family *)
}

let mem env t v =
  B.var env.b (Printf.sprintf "m|%s|%s" t (Value.to_string v))

let tup env fact u v =
  B.var env.b
    (Printf.sprintf "t|%s|%s|%s" fact (Value.to_string u) (Value.to_string v))

let grid env (ft : Fact_type.t) =
  List.concat_map
    (fun u -> List.map (fun v -> (u, v)) (env.pool ft.player2))
    (env.pool ft.player1)

(* plays(r, u): u occurs at role r's end of some tuple; defined once for
   every role/candidate pair by [define_plays]. *)
let plays env (r : Ids.role) u =
  B.var env.b
    (Printf.sprintf "p|%s|%d|%s" r.fact (Ids.side_index r.side) (Value.to_string u))

(* Definitions for plays variables are added once, up front. *)
let define_plays env =
  List.iter
    (fun (ft : Fact_type.t) ->
      List.iter
        (fun u ->
          let tups = List.map (fun v -> tup env ft.name u v) (env.pool ft.player2) in
          B.add_iff_or env.b (plays env (Ids.first ft.name) u) tups)
        (env.pool ft.player1);
      List.iter
        (fun v ->
          let tups = List.map (fun u -> tup env ft.name u v) (env.pool ft.player1) in
          B.add_iff_or env.b (plays env (Ids.second ft.name) v) tups)
        (env.pool ft.player2))
    (Schema.fact_types env.schema)

let rec pairs = function
  | [] -> []
  | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest

let inter_values xs ys = List.filter (fun v -> List.exists (Value.equal v) ys) xs

let encode_structure env =
  let schema = env.schema in
  let g = Schema.graph schema in
  (* Typing of tuples. *)
  List.iter
    (fun (ft : Fact_type.t) ->
      List.iter
        (fun (u, v) ->
          let t = tup env ft.name u v in
          B.add env.b [ -t; mem env ft.player1 u ];
          B.add env.b [ -t; mem env ft.player2 v ])
        (grid env ft))
    (Schema.fact_types schema);
  (* Subtype containment and strictness. *)
  List.iter
    (fun (sub, super) ->
      let pool = env.pool sub in
      List.iter
        (fun v -> B.add env.b [ -mem env sub v; mem env super v ])
        pool;
      (* Strictness: not (equal and non-empty). *)
      let nonempty = B.fresh env.b (Printf.sprintf "ne|%s" super) in
      List.iter (fun v -> B.add env.b [ -mem env super v; nonempty ]) pool;
      let eqs =
        List.map
          (fun v ->
            let eq = B.fresh env.b "eq" in
            let s = mem env sub v and t = mem env super v in
            B.add env.b [ -eq; -s; t ];
            B.add env.b [ -eq; s; -t ];
            B.add env.b [ eq; -s; -t ];
            B.add env.b [ eq; s; t ];
            eq)
          pool
      in
      B.add env.b (-nonempty :: List.map (fun e -> -e) eqs))
    (Subtype_graph.edges g);
  (* Value constraints: forbid inadmissible candidates. *)
  List.iter
    (fun t ->
      match Schema.effective_value_set schema t with
      | None -> ()
      | Some vs ->
          List.iter
            (fun v ->
              if not (Value.Constraint.mem v vs) then B.add env.b [ -mem env t v ])
            (env.pool t))
    (Schema.object_types schema);
  (* Implicit mutual exclusion of unrelated types with overlapping pools. *)
  List.iter
    (fun (a, b) ->
      if not (Subtype_graph.related g a b) then
        List.iter
          (fun v -> B.add env.b [ -mem env a v; -mem env b v ])
          (inter_values (env.pool a) (env.pool b)))
    (pairs (Schema.object_types schema))

let player_pool env (r : Ids.role) =
  match Schema.player env.schema r with Some p -> env.pool p | None -> []

(* Tuple variables with [u] at role [r]'s end. *)
let role_tuples env (r : Ids.role) u =
  match Schema.find_fact env.schema r.fact with
  | None -> []
  | Some ft -> (
      match r.side with
      | Ids.Fst -> List.map (fun v -> tup env ft.name u v) (env.pool ft.player2)
      | Ids.Snd -> List.map (fun w -> tup env ft.name w u) (env.pool ft.player1))

let encode_constraint env (c : Constraints.t) =
  let schema = env.schema in
  let b = env.b in
  let player_pool = player_pool env in
  let role_tuples = role_tuples env in
  match c.body with
  | Mandatory r ->
      Option.iter
        (fun p ->
          List.iter
            (fun u -> B.add b (-mem env p u :: role_tuples r u))
            (env.pool p))
        (Schema.player schema r)
  | Disjunctive_mandatory roles ->
      List.iter
        (fun (r : Ids.role) ->
          Option.iter
            (fun p ->
              List.iter
                (fun u ->
                  let alternatives = List.concat_map (fun r' -> role_tuples r' u) roles in
                  B.add b (-mem env p u :: alternatives))
                (env.pool p))
            (Schema.player schema r))
        roles
  | Uniqueness (Single r) ->
      List.iter (fun u -> B.at_most_one b (role_tuples r u)) (player_pool r)
  | Uniqueness (Pair _) -> ()  (* predicates are sets *)
  | External_uniqueness roles -> (
      (* For distinct joining instances x, x' and every value vector over
         the constrained roles, not all 2n tuples may hold at once. *)
      let join_type =
        match roles with
        | r :: _ -> Schema.player schema (Ids.co_role r)
        | [] -> None
      in
      match join_type with
      | None -> ()
      | Some jt ->
          let oriented (r : Ids.role) x v =
            match r.side with
            | Ids.Snd -> tup env r.fact x v  (* x on the first side *)
            | Ids.Fst -> tup env r.fact v x
          in
          let pools = List.map (fun r -> player_pool r) roles in
          let rec vectors = function
            | [] -> [ [] ]
            | p :: rest ->
                let tails = vectors rest in
                List.concat_map (fun v -> List.map (fun t -> v :: t) tails) p
          in
          let vecs = vectors pools in
          if List.length vecs * List.length (env.pool jt) <= 50_000 then
            List.iter
              (fun (x, x') ->
                List.iter
                  (fun vec ->
                    let lits =
                      List.concat
                        (List.map2
                           (fun r v -> [ -oriented r x v; -oriented r x' v ])
                           roles vec)
                    in
                    B.add b lits)
                  vecs)
              (pairs (env.pool jt)))
  | Frequency (Single r, { min; max }) ->
      List.iter
        (fun u ->
          let tups = role_tuples r u in
          (match max with Some m -> B.at_most b m tups | None -> ());
          if min > 1 then
            B.at_least ~unless:(-plays env r u) b min tups)
        (player_pool r)
  | Frequency (Pair (r1, _), { min; _ }) ->
      (* Rows of a set-valued predicate occur exactly once. *)
      if min > 1 then
        Option.iter
          (fun ft ->
            List.iter (fun (u, v) -> B.add b [ -tup env r1.fact u v ]) (grid env ft))
          (Schema.find_fact schema r1.fact)
  | Value_constraint _ -> ()  (* handled structurally via effective sets *)
  | Role_exclusion seqs ->
      List.iter
        (fun (sa, sb) ->
          match (sa, sb) with
          | Ids.Single ra, Ids.Single rb ->
              List.iter
                (fun u ->
                  B.add b [ -plays env ra u; -plays env rb u ])
                (inter_values (player_pool ra) (player_pool rb))
          | Ids.Pair (ra, _), Ids.Pair (rb, _) ->
              let fa = Option.get (Schema.find_fact schema ra.fact) in
              let fb = Option.get (Schema.find_fact schema rb.fact) in
              List.iter
                (fun (u, v) ->
                  if List.mem (u, v) (grid env fb) then
                    B.add b [ -tup env fa.name u v; -tup env fb.name u v ])
                (grid env fa)
          | Ids.Single _, Ids.Pair _ | Ids.Pair _, Ids.Single _ -> ())
        (pairs seqs)
  | Subset (sub, super) | Equality (sub, super) -> (
      let both_ways = match c.body with Equality _ -> true | _ -> false in
      let direction (a : Ids.role_seq) (bq : Ids.role_seq) =
        match (a, bq) with
        | Ids.Single ra, Ids.Single rb ->
            List.iter
              (fun u ->
                if List.exists (Value.equal u) (player_pool rb) then
                  B.add b [ -plays env ra u; plays env rb u ]
                else B.add b [ -plays env ra u ])
              (player_pool ra)
        | Ids.Pair (ra, _), Ids.Pair (rb, _) ->
            let fa = Option.get (Schema.find_fact schema ra.fact) in
            let fb = Option.get (Schema.find_fact schema rb.fact) in
            let gb = grid env fb in
            List.iter
              (fun (u, v) ->
                if List.mem (u, v) gb then
                  B.add b [ -tup env fa.name u v; tup env fb.name u v ]
                else B.add b [ -tup env fa.name u v ])
              (grid env fa)
        | Ids.Single _, Ids.Pair _ | Ids.Pair _, Ids.Single _ -> ()
      in
      direction sub super;
      if both_ways then direction super sub)
  | Type_exclusion ots ->
      List.iter
        (fun (x, y) ->
          List.iter
            (fun v -> B.add b [ -mem env x v; -mem env y v ])
            (inter_values (env.pool x) (env.pool y)))
        (pairs ots)
  | Total_subtypes (super, subs) ->
      List.iter
        (fun v ->
          let covers =
            List.filter_map
              (fun sub ->
                if List.exists (Value.equal v) (env.pool sub) then Some (mem env sub v)
                else None)
              subs
          in
          B.add b (-mem env super v :: covers))
        (env.pool super)
  | Ring (kind, fact) -> (
      match Schema.find_fact schema fact with
      | None -> ()
      | Some ft ->
          let pa = env.pool ft.player1 and pb = env.pool ft.player2 in
          let in_grid u v =
            List.exists (Value.equal u) pa && List.exists (Value.equal v) pb
          in
          let t u v = tup env fact u v in
          let shared = inter_values pa pb in
          let all = List.sort_uniq Value.compare (pa @ pb) in
          (match kind with
          | Ring.Irreflexive -> List.iter (fun v -> B.add b [ -t v v ]) shared
          | Ring.Symmetric ->
              List.iter
                (fun (u, v) ->
                  if in_grid v u then B.add b [ -t u v; t v u ]
                  else B.add b [ -t u v ])
                (grid env ft)
          | Ring.Asymmetric ->
              List.iter
                (fun (u, v) -> if in_grid v u then B.add b [ -t u v; -t v u ])
                (grid env ft);
              List.iter (fun v -> B.add b [ -t v v ]) shared
          | Ring.Antisymmetric ->
              List.iter
                (fun (u, v) ->
                  if (not (Value.equal u v)) && in_grid v u then
                    B.add b [ -t u v; -t v u ])
                (grid env ft)
          | Ring.Intransitive ->
              List.iter
                (fun (u, v) ->
                  List.iter
                    (fun w ->
                      if in_grid v w && in_grid u w then
                        B.add b [ -t u v; -t v w; -t u w ])
                    all)
                (grid env ft)
          | Ring.Acyclic ->
              (* A strict order witnesses acyclicity: tup(u,v) -> u < v. *)
              let ord u v =
                B.var env.b
                  (Printf.sprintf "o|%s|%s|%s" fact (Value.to_string u)
                     (Value.to_string v))
              in
              List.iter (fun v -> B.add b [ -ord v v ]) all;
              List.iter
                (fun u ->
                  List.iter
                    (fun v ->
                      if not (Value.equal u v) then begin
                        B.add b [ -ord u v; -ord v u ];
                        List.iter
                          (fun w ->
                            if not (Value.equal w u || Value.equal w v) then
                              B.add b [ -ord u v; -ord v w; ord u w ])
                          all
                      end)
                    all)
                all;
              List.iter (fun (u, v) -> B.add b [ -t u v; ord u v ]) (grid env ft)))

let encode_query env query =
  let schema = env.schema in
  let type_goal t =
    B.add env.b (List.map (fun v -> mem env t v) (env.pool t))
  in
  let fact_goal fact =
    match Schema.find_fact schema fact with
    | None -> B.add env.b []
    | Some ft -> B.add env.b (List.map (fun (u, v) -> tup env fact u v) (grid env ft))
  in
  match query with
  | Schema_satisfiable -> ()
  | Type_satisfiable t -> type_goal t
  | Role_satisfiable (r : Ids.role) -> fact_goal r.fact
  | All_populated roles ->
      List.iter (fun (r : Ids.role) -> fact_goal r.fact) roles
  | Strongly_satisfiable ->
      List.iter type_goal (Schema.object_types schema);
      List.iter (fun (ft : Fact_type.t) -> fact_goal ft.name) (Schema.fact_types schema)

(* ------------------------------------------------------------------ *)
(* Decoding                                                             *)
(* ------------------------------------------------------------------ *)

let decode env assignment =
  let truthy lit = assignment.(abs lit) in
  let pop = ref Population.empty in
  List.iter
    (fun t ->
      List.iter
        (fun v -> if truthy (mem env t v) then pop := Population.add_object t v !pop)
        (env.pool t))
    (Schema.object_types env.schema);
  List.iter
    (fun (ft : Fact_type.t) ->
      List.iter
        (fun (u, v) ->
          if truthy (tup env ft.name u v) then
            pop := Population.add_tuple ft.name (u, v) !pop)
        (grid env ft))
    (Schema.fact_types env.schema);
  !pop

(* Like [decode], but reads only variables the (partial) encoding has
   actually allocated — anything unallocated, or allocated after the model
   was produced, counts as false.  The CEGAR loop decodes candidate models
   of a lazily-grounded formula with this. *)
let decode_sparse env assignment =
  let truthy name =
    match B.find env.b name with
    | Some v -> v < Array.length assignment && assignment.(v)
    | None -> false
  in
  let pop = ref Population.empty in
  List.iter
    (fun t ->
      List.iter
        (fun v ->
          if truthy (Printf.sprintf "m|%s|%s" t (Value.to_string v)) then
            pop := Population.add_object t v !pop)
        (env.pool t))
    (Schema.object_types env.schema);
  List.iter
    (fun (ft : Fact_type.t) ->
      List.iter
        (fun (u, v) ->
          if
            truthy
              (Printf.sprintf "t|%s|%s|%s" ft.name (Value.to_string u)
                 (Value.to_string v))
          then pop := Population.add_tuple ft.name (u, v) !pop)
        (grid env ft))
    (Schema.fact_types env.schema);
  !pop

let make_env ?max_fresh schema =
  let max_fresh =
    match max_fresh with Some n -> n | None -> default_fresh schema
  in
  let g = Schema.graph schema in
  let pools = Hashtbl.create 8 in
  let pool t =
    let fam = family g t in
    let repr = Option.value ~default:t (Sset.min_elt_opt fam) in
    match Hashtbl.find_opt pools repr with
    | Some p -> p
    | None ->
        let value_pool =
          Sset.fold
            (fun t' acc ->
              match Schema.effective_value_set schema t' with
              | None -> acc
              | Some vs ->
                  Value.Set.union acc (Value.Set.of_list (Value.Constraint.elements vs)))
            fam Value.Set.empty
        in
        let fresh_atoms =
          List.init max_fresh (fun i -> Value.Str (Printf.sprintf "@%s#%d" repr (i + 1)))
        in
        let p = Value.Set.elements value_pool @ fresh_atoms in
        Hashtbl.add pools repr p;
        p
  in
  { b = B.create (); schema; pool }

let builder env = env.b
let env_schema env = env.schema
let env_pool env = env.pool

let solve ?max_fresh ?(budget = 2_000_000) ?deadline_ns ?cancel ?tracer schema query =
  let env = make_env ?max_fresh schema in
  Orm_trace.Trace.span tracer "sat.encode" (fun () ->
      define_plays env;
      encode_structure env;
      List.iter (encode_constraint env) (Schema.constraints schema);
      encode_query env query);
  let result = B.solve ~budget ?deadline_ns ?cancel ?tracer env.b in
  last :=
    {
      variables = B.nvars env.b;
      clauses = B.clause_count env.b;
      decisions =
        (* per-instance, not the module-level counters: a planner race may
           run this and the lazy grounder on sibling domains *)
        (let s = Dpll.Inc.stats (B.solver env.b) in
         s.Dpll.Inc.decisions + s.Dpll.Inc.propagations);
    };
  match result with
  | Dpll.Unsat -> No_model
  | Dpll.Timeout -> Timeout
  | Dpll.Sat assignment ->
      let pop = decode env assignment in
      (* Safety net: a decoded model must satisfy the schema. *)
      if Eval.satisfies schema pop then Model pop
      else
        failwith
          (Format.asprintf
             "Encode.solve: decoded population violates the schema (encoding bug):@.%a"
             Population.pp pop)
