open Orm
open Orm_semantics
module B = Cnf_builder

(* Counterexample-guided lazy grounding over the {!Encode} variable space.

   The eager encoder grounds every universal constraint over the full
   candidate grid up front — O(k²) typing clauses, O(k³) acyclicity
   transitivity, Sinz counters per player — which is why [reason] latency
   explodes with the domain size k.  Here the initial formula contains
   only the query goals; each round solves the partial formula, decodes
   the candidate model into a population, asks {!Eval.violations} (the
   ground-truth oracle) what is wrong with it, and instantiates ground
   clauses for exactly the violated instances.  Soundness rests on one
   invariant: every emitted clause is either a clause of the eager
   encoding or a definitional extension of it (plays/counter variables),
   so an UNSAT answer for the partial formula is an UNSAT answer for the
   eager one — the partial formula is a relaxation.  A SAT answer is only
   returned once {!Eval} confirms the decoded population, so it needs no
   inclusion argument at all.

   Termination: the candidate universe is bounded, so the variable space
   is finite; each refinement round adds at least one clause falsified by
   (every extension of) the candidate that triggered it, and instance
   keys are deduplicated — a round that cannot add anything new while
   violations remain indicates an extractor gap and fails loudly, exactly
   like the eager encoder's decoded-model safety net. *)

type stats = {
  rounds : int;  (** solver calls (refinement rounds + the final one) *)
  instantiated_clauses : int;  (** ground clauses added by refinement *)
  variables : int;
  clauses : int;  (** total problem clauses at the end *)
  decisions : int;  (** decisions + propagations across all rounds *)
  learned : int;  (** learned clauses retained by the incremental core *)
  restarts : int;  (** restarts across all rounds *)
}

let last =
  ref
    {
      rounds = 0;
      instantiated_clauses = 0;
      variables = 0;
      clauses = 0;
      decisions = 0;
      learned = 0;
      restarts = 0;
    }

let last_stats () = !last

(* ------------------------------------------------------------------ *)
(* Violated-instance extraction                                         *)
(* ------------------------------------------------------------------ *)

type ctx = {
  env : Encode.env;
  seen : (string, unit) Hashtbl.t;  (* instantiation keys already grounded *)
  plays_defined : (string, unit) Hashtbl.t;
}

let value_key v = Value.to_string v
let role_key (r : Ids.role) = Printf.sprintf "%s/%d" r.fact (Ids.side_index r.side)

let once ctx key f = if not (Hashtbl.mem ctx.seen key) then begin
    Hashtbl.add ctx.seen key ();
    f ()
  end

(* plays(r,u) is only meaningful under its iff-or definition; the eager
   path adds all definitions up front, the lazy path adds each one the
   first time a constraint instance needs it. *)
let ensure_plays ctx r u =
  let key = Printf.sprintf "pd|%s|%s" (role_key r) (value_key u) in
  if not (Hashtbl.mem ctx.plays_defined key) then begin
    Hashtbl.add ctx.plays_defined key ();
    B.add_iff_or
      (Encode.builder ctx.env)
      (Encode.plays ctx.env r u)
      (Encode.role_tuples ctx.env r u)
  end

let in_pool ctx t v = List.exists (Value.equal v) (Encode.env_pool ctx.env t)

let inter_pools ctx ta tb =
  List.filter (fun v -> in_pool ctx tb v) (Encode.env_pool ctx.env ta)

(* Typing clauses for a whole fact type, triggered by the first
   [Untyped_component] violation anywhere in it.  Grounding only the
   violated tuple would let the solver thrash: the binary clause pins that
   one tuple, so the next candidate just picks a different cell of the k²
   grid, and the loop walks the grid one round at a time.  The full family
   is 2k² binary clauses — the cheap part of the eager encoding — so one
   violation buys the whole grid and the thrash is structurally
   impossible.  The expensive families (Sinz counters, acyclicity orders,
   external-uniqueness joins) stay per-instance below. *)
let instantiate_typing ctx fact =
  let schema = Encode.env_schema ctx.env in
  match Schema.find_fact schema fact with
  | None -> ()
  | Some ft ->
      once ctx (Printf.sprintf "typ|%s" fact) (fun () ->
          let b = Encode.builder ctx.env in
          List.iter
            (fun u ->
              List.iter
                (fun v ->
                  let t = Encode.tup ctx.env fact u v in
                  B.add b [ -t; Encode.mem ctx.env ft.player1 u ];
                  B.add b [ -t; Encode.mem ctx.env ft.player2 v ])
                (Encode.env_pool ctx.env ft.player2))
            (Encode.env_pool ctx.env ft.player1))

(* The strictness fragment of the eager subtype encoding for one edge
   (identical clause forms to [Encode.encode_structure]). *)
let instantiate_strictness ctx sub super =
  once ctx (Printf.sprintf "strict|%s|%s" sub super) (fun () ->
      let b = Encode.builder ctx.env in
      let pool = Encode.env_pool ctx.env sub in
      let nonempty = B.fresh b (Printf.sprintf "ne|%s" super) in
      List.iter
        (fun v -> B.add b [ -Encode.mem ctx.env super v; nonempty ])
        pool;
      let eqs =
        List.map
          (fun v ->
            let eq = B.fresh b "eq" in
            let s = Encode.mem ctx.env sub v
            and t = Encode.mem ctx.env super v in
            B.add b [ -eq; -s; t ];
            B.add b [ -eq; s; -t ];
            B.add b [ eq; -s; -t ];
            B.add b [ eq; s; t ];
            eq)
          pool
      in
      B.add b (-nonempty :: List.map (fun e -> -e) eqs))

let component (r : Ids.role) (a, b) =
  match r.side with Ids.Fst -> a | Ids.Snd -> b

(* A directed cycle in the tuple list, as the list of its edges. *)
let find_cycle tuples =
  let succ x =
    List.filter_map
      (fun (a, b) -> if Value.equal a x then Some b else None)
      tuples
  in
  let rec visit path visited x =
    (* [path] is the DFS stack as (node, edge-taken-to-reach-next) pairs *)
    if List.exists (fun (n, _) -> Value.equal n x) path then
      (* found: the cycle is the path suffix from x *)
      let rec cut = function
        | [] -> []
        | (n, _) :: _ as suffix when Value.equal n x -> List.map snd suffix
        | _ :: rest -> cut rest
      in
      Some (cut (List.rev path))
    else if List.exists (Value.equal x) visited then None
    else
      let rec try_succs = function
        | [] -> None
        | y :: rest -> (
            match visit (path @ [ (x, (x, y)) ]) visited y with
            | Some c -> Some c
            | None -> try_succs rest)
      in
      try_succs (succ x)
  in
  let nodes =
    List.sort_uniq Value.compare
      (List.concat_map (fun (a, b) -> [ a; b ]) tuples)
  in
  let rec scan visited = function
    | [] -> None
    | x :: rest -> (
        match visit [] visited x with
        | Some c -> Some c
        | None -> scan (x :: visited) rest)
  in
  scan [] nodes

let instantiate_ring ctx pop kind fact =
  let schema = Encode.env_schema ctx.env in
  match Schema.find_fact schema fact with
  | None -> ()
  | Some ft ->
      let b = Encode.builder ctx.env in
      let t u v = Encode.tup ctx.env fact u v in
      let tuples = Population.tuples pop fact in
      let present u v =
        List.exists (fun (a, c) -> Value.equal a u && Value.equal c v) tuples
      in
      let in_grid u v = in_pool ctx ft.player1 u && in_pool ctx ft.player2 v in
      let grid f =
        List.iter
          (fun u ->
            List.iter
              (fun v -> f u v)
              (Encode.env_pool ctx.env ft.player2))
          (Encode.env_pool ctx.env ft.player1)
      in
      (* the binary ring families are at most k² two-literal clauses —
         ground each whole on its first violation (per-pair grounding
         thrashes: the candidate just moves the offending pair).  Only the
         O(k³) families below stay instance-lazy. *)
      (match kind with
      | Ring.Irreflexive ->
          once ctx (Printf.sprintf "ring|ir|%s" fact) (fun () ->
              List.iter
                (fun v -> B.add b [ -t v v ])
                (inter_pools ctx ft.player1 ft.player2))
      | Ring.Symmetric ->
          once ctx (Printf.sprintf "ring|sym|%s" fact) (fun () ->
              grid (fun u v ->
                  if in_grid v u then B.add b [ -t u v; t v u ]
                  else B.add b [ -t u v ]))
      | Ring.Asymmetric ->
          once ctx (Printf.sprintf "ring|as|%s" fact) (fun () ->
              List.iter
                (fun v -> B.add b [ -t v v ])
                (inter_pools ctx ft.player1 ft.player2);
              grid (fun u v ->
                  if (not (Value.equal u v)) && in_grid v u then
                    B.add b [ -t u v; -t v u ]))
      | Ring.Antisymmetric ->
          once ctx (Printf.sprintf "ring|ans|%s" fact) (fun () ->
              grid (fun u v ->
                  if (not (Value.equal u v)) && in_grid v u then
                    B.add b [ -t u v; -t v u ]))
      | Ring.Intransitive ->
          List.iter
            (fun (u, v) ->
              List.iter
                (fun (v', w) ->
                  if Value.equal v v' && present u w then
                    once ctx
                      (Printf.sprintf "it|%s|%s|%s|%s" fact (value_key u)
                         (value_key v) (value_key w))
                      (fun () -> B.add b [ -t u v; -t v w; -t u w ]))
                tuples)
            tuples
      | Ring.Acyclic -> (
          (* self-loops are length-1 cycles; the whole family is k binary
             clauses (eager: t v v -> ord v v, ¬ord v v), so ground them
             all on the first acyclicity violation instead of discovering
             them one candidate at a time *)
          once ctx (Printf.sprintf "ac0|%s" fact) (fun () ->
              List.iter
                (fun v -> B.add b [ -t v v ])
                (inter_pools ctx ft.player1 ft.player2));
          match find_cycle tuples with
          | None -> ()
          | Some edges ->
              let key =
                Printf.sprintf "ac|%s|%s" fact
                  (String.concat ";"
                     (List.map
                        (fun (u, v) ->
                          Printf.sprintf "%s>%s" (value_key u) (value_key v))
                        edges))
              in
              (* a longer cycle needs every one of its edges: block it
                 (implied by the eager strict-order encoding) *)
              once ctx key (fun () ->
                  B.add b (List.map (fun (u, v) -> -t u v) edges))))

let instantiate_constraint ctx pop (c : Constraints.t) =
  let env = ctx.env in
  let schema = Encode.env_schema env in
  let b = Encode.builder env in
  let cid = c.id in
  match c.body with
  | Constraints.Mandatory r ->
      (* whole family (k clauses, eager-identical): per-value grounding
         lets the solver move the witness to a fresh pool value each
         round instead of adding the tuple *)
      Option.iter
        (fun player ->
          once ctx (Printf.sprintf "mand|%s" cid) (fun () ->
              List.iter
                (fun u ->
                  B.add b
                    (-Encode.mem env player u :: Encode.role_tuples env r u))
                (Encode.env_pool env player)))
        (Schema.player schema r)
  | Constraints.Disjunctive_mandatory roles ->
      let players =
        List.sort_uniq String.compare
          (List.filter_map (Schema.player schema) roles)
      in
      List.iter
        (fun p ->
          once ctx (Printf.sprintf "dmand|%s|%s" cid p) (fun () ->
              List.iter
                (fun u ->
                  let alternatives =
                    List.concat_map
                      (fun r -> Encode.role_tuples env r u)
                      roles
                  in
                  B.add b (-Encode.mem env p u :: alternatives))
                (Encode.env_pool env p)))
        players
  | Constraints.Uniqueness (Ids.Single r) ->
      let column = Population.role_column pop r in
      List.iter
        (fun u ->
          if List.length (List.filter (Value.equal u) column) > 1 then
            once ctx
              (Printf.sprintf "uniq|%s|%s" cid (value_key u))
              (fun () -> B.at_most_one b (Encode.role_tuples env r u)))
        (List.sort_uniq Value.compare column)
  | Constraints.Uniqueness (Ids.Pair _) -> ()  (* predicates are sets *)
  | Constraints.External_uniqueness roles ->
      (* mirror the Eval join: for each pair of joining instances sharing
         an identifying combination, ground the one eager clause for that
         (x, x', combination) triple *)
      let values_for x (r : Ids.role) =
        List.filter_map
          (fun tuple ->
            if Value.equal (component (Ids.co_role r) tuple) x then
              Some (component r tuple)
            else None)
          (Population.tuples pop r.fact)
      in
      let entities =
        List.fold_left
          (fun acc (r : Ids.role) ->
            Value.Set.union acc
              (Population.role_population pop (Ids.co_role r)))
          Value.Set.empty roles
        |> Value.Set.elements
      in
      let rec cartesian = function
        | [] -> [ [] ]
        | vs :: rest ->
            let tails = cartesian rest in
            List.concat_map (fun v -> List.map (fun t -> v :: t) tails) vs
      in
      let combos x =
        let per_role = List.map (values_for x) roles in
        if List.exists (fun vs -> vs = []) per_role then []
        else cartesian per_role
      in
      let oriented (r : Ids.role) x v =
        match r.side with
        | Ids.Snd -> Encode.tup env r.fact x v
        | Ids.Fst -> Encode.tup env r.fact v x
      in
      let rec check_pairs = function
        | [] -> ()
        | x :: rest ->
            List.iter
              (fun y ->
                let cx = combos x in
                List.iter
                  (fun combo ->
                    if List.mem combo (combos y) then
                      once ctx
                        (Printf.sprintf "xuniq|%s|%s|%s|%s" cid (value_key x)
                           (value_key y)
                           (String.concat "," (List.map value_key combo)))
                        (fun () ->
                          let lits =
                            List.concat
                              (List.map2
                                 (fun r v ->
                                   [ -oriented r x v; -oriented r y v ])
                                 roles combo)
                          in
                          B.add b lits))
                  cx)
              rest;
            check_pairs rest
      in
      check_pairs entities
  | Constraints.Frequency (Ids.Single r, { min; max }) ->
      let column = Population.role_column pop r in
      List.iter
        (fun u ->
          let n = List.length (List.filter (Value.equal u) column) in
          let violates_min = n >= 1 && n < min in
          let violates_max = match max with Some m -> n > m | None -> false in
          if violates_min || violates_max then
            once ctx
              (Printf.sprintf "freq|%s|%s" cid (value_key u))
              (fun () ->
                let tups = Encode.role_tuples env r u in
                (match max with Some m -> B.at_most b m tups | None -> ());
                if min > 1 then begin
                  ensure_plays ctx r u;
                  B.at_least ~unless:(-Encode.plays env r u) b min tups
                end))
        (List.sort_uniq Value.compare column)
  | Constraints.Frequency (Ids.Pair (r1, _), { min; _ }) ->
      (* set-valued predicates: rows occur exactly once, so min > 1 rules
         out every present row *)
      if min > 1 then
        List.iter
          (fun (u, v) ->
            once ctx
              (Printf.sprintf "freqp|%s|%s|%s" cid (value_key u) (value_key v))
              (fun () -> B.add b [ -Encode.tup env r1.fact u v ]))
          (Population.tuples pop r1.fact)
  | Constraints.Value_constraint (ot, vs) ->
      once ctx (Printf.sprintf "val|%s" cid) (fun () ->
          List.iter
            (fun v ->
              if not (Value.Constraint.mem v vs) then
                B.add b [ -Encode.mem env ot v ])
            (Encode.env_pool env ot))
  | Constraints.Role_exclusion seqs ->
      let rec pairs = function
        | [] -> []
        | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
      in
      List.iter
        (fun (sa, sb) ->
          match (sa, sb) with
          | Ids.Single ra, Ids.Single rb ->
              let shared =
                Value.Set.inter
                  (Population.role_population pop ra)
                  (Population.role_population pop rb)
              in
              Value.Set.iter
                (fun u ->
                  once ctx
                    (Printf.sprintf "rexcl|%s|%s|%s|%s" cid (role_key ra)
                       (role_key rb) (value_key u))
                    (fun () ->
                      ensure_plays ctx ra u;
                      ensure_plays ctx rb u;
                      B.add b
                        [
                          -Encode.plays env ra u; -Encode.plays env rb u;
                        ]))
                shared
          | Ids.Pair (ra, _), Ids.Pair (rb, _) ->
              let rows_b = Population.tuples pop rb.fact in
              List.iter
                (fun (u, v) ->
                  if
                    List.exists
                      (fun (x, y) -> Value.equal x u && Value.equal y v)
                      rows_b
                  then
                    once ctx
                      (Printf.sprintf "rexclp|%s|%s|%s|%s|%s" cid ra.fact
                         rb.fact (value_key u) (value_key v))
                      (fun () ->
                        B.add b
                          [
                            -Encode.tup env ra.fact u v;
                            -Encode.tup env rb.fact u v;
                          ]))
                (Population.tuples pop ra.fact)
          | Ids.Single _, Ids.Pair _ | Ids.Pair _, Ids.Single _ -> ())
        (pairs seqs)
  | Constraints.Subset (sub, super) | Constraints.Equality (sub, super) ->
      let both_ways =
        match c.body with Constraints.Equality _ -> true | _ -> false
      in
      let direction tag (a : Ids.role_seq) (bq : Ids.role_seq) =
        match (a, bq) with
        | Ids.Single ra, Ids.Single rb ->
            let missing =
              Value.Set.diff
                (Population.role_population pop ra)
                (Population.role_population pop rb)
            in
            Value.Set.iter
              (fun u ->
                once ctx
                  (Printf.sprintf "sub%s|%s|%s" tag cid (value_key u))
                  (fun () ->
                    ensure_plays ctx ra u;
                    if in_pool ctx (Option.value ~default:"" (Schema.player schema rb)) u
                       && Schema.player schema rb <> None
                    then begin
                      ensure_plays ctx rb u;
                      B.add b
                        [ -Encode.plays env ra u; Encode.plays env rb u ]
                    end
                    else B.add b [ -Encode.plays env ra u ]))
              missing
        | Ids.Pair (ra, _), Ids.Pair (rb, _) ->
            let rows_b = Population.tuples pop rb.fact in
            List.iter
              (fun (u, v) ->
                if
                  not
                    (List.exists
                       (fun (x, y) -> Value.equal x u && Value.equal y v)
                       rows_b)
                then
                  once ctx
                    (Printf.sprintf "subp%s|%s|%s|%s" tag cid (value_key u)
                       (value_key v))
                    (fun () ->
                      let gb =
                        match Schema.find_fact schema rb.fact with
                        | Some fb ->
                            in_pool ctx fb.player1 u && in_pool ctx fb.player2 v
                        | None -> false
                      in
                      if gb then
                        B.add b
                          [
                            -Encode.tup env ra.fact u v;
                            Encode.tup env rb.fact u v;
                          ]
                      else B.add b [ -Encode.tup env ra.fact u v ]))
              (Population.tuples pop ra.fact)
        | Ids.Single _, Ids.Pair _ | Ids.Pair _, Ids.Single _ -> ()
      in
      direction "f" sub super;
      if both_ways then direction "b" super sub
  | Constraints.Type_exclusion ots ->
      let rec pairs = function
        | [] -> []
        | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
      in
      List.iter
        (fun (x, y) ->
          once ctx (Printf.sprintf "texcl|%s|%s|%s" cid x y) (fun () ->
              List.iter
                (fun v ->
                  B.add b [ -Encode.mem env x v; -Encode.mem env y v ])
                (inter_pools ctx x y)))
        (pairs ots)
  | Constraints.Total_subtypes (super, subs) ->
      once ctx (Printf.sprintf "total|%s" cid) (fun () ->
          List.iter
            (fun v ->
              let covers =
                List.filter_map
                  (fun sub ->
                    if in_pool ctx sub v then Some (Encode.mem env sub v)
                    else None)
                  subs
              in
              B.add b (-Encode.mem env super v :: covers))
            (Encode.env_pool env super))
  | Constraints.Ring (kind, fact) -> instantiate_ring ctx pop kind fact

let instantiate ctx pop violations =
  let schema = Encode.env_schema ctx.env in
  let constraint_by_id id =
    List.find_opt
      (fun (c : Constraints.t) -> String.equal c.id id)
      (Schema.constraints schema)
  in
  List.iter
    (fun viol ->
      match viol with
      | Eval.Untyped_component (r, _) -> instantiate_typing ctx r.Ids.fact
      | Eval.Subtype_not_subset (sub, super) ->
          once ctx (Printf.sprintf "subty|%s|%s" sub super) (fun () ->
              let b = Encode.builder ctx.env in
              List.iter
                (fun v ->
                  if in_pool ctx super v then
                    B.add b
                      [
                        -Encode.mem ctx.env sub v; Encode.mem ctx.env super v;
                      ]
                  else B.add b [ -Encode.mem ctx.env sub v ])
                (Encode.env_pool ctx.env sub))
      | Eval.Subtype_not_strict (sub, super) ->
          instantiate_strictness ctx sub super
      | Eval.Implicit_exclusion (a, b, _) ->
          once ctx (Printf.sprintf "impl|%s|%s" a b) (fun () ->
              let bld = Encode.builder ctx.env in
              List.iter
                (fun v ->
                  B.add bld
                    [ -Encode.mem ctx.env a v; -Encode.mem ctx.env b v ])
                (inter_pools ctx a b))
      | Eval.Broken (cid, _) ->
          Option.iter (instantiate_constraint ctx pop) (constraint_by_id cid))
    violations

(* ------------------------------------------------------------------ *)
(* The refinement loop                                                  *)
(* ------------------------------------------------------------------ *)

let solve ?max_fresh ?(budget = 2_000_000) ?deadline_ns ?cancel ?tracer schema
    query =
  let env = Encode.make_env ?max_fresh schema in
  let b = Encode.builder env in
  let ctx = { env; seen = Hashtbl.create 64; plays_defined = Hashtbl.create 64 } in
  Orm_trace.Trace.span tracer "cegar.seed" (fun () ->
      Encode.encode_query env query);
  let initial_clauses = B.clause_count b in
  let rounds = ref 0 in
  let decisions = ref 0 in
  let remaining = ref budget in
  let finish outcome =
    let s = Dpll.Inc.stats (B.solver b) in
    last :=
      {
        rounds = !rounds;
        instantiated_clauses = B.clause_count b - initial_clauses;
        variables = B.nvars b;
        clauses = B.clause_count b;
        decisions = !decisions;
        learned = s.Dpll.Inc.learned;
        restarts = s.Dpll.Inc.restarts;
      };
    outcome
  in
  let rec refine () =
    if !remaining <= 0 then finish Encode.Timeout
    else begin
      incr rounds;
      Option.iter (fun tr -> Orm_trace.Trace.counter tr "cegar.round" !rounds)
        tracer;
      let result =
        B.solve ~budget:!remaining ?deadline_ns ?cancel ?tracer b
      in
      let spent =
        (* per-instance, not the module-level counters: a planner race may
           run this and the eager encoder on sibling domains *)
        let s = Dpll.Inc.stats (B.solver b) in
        s.Dpll.Inc.decisions + s.Dpll.Inc.propagations
      in
      decisions := !decisions + spent;
      remaining := !remaining - spent;
      match result with
      | Dpll.Unsat -> finish Encode.No_model
      | Dpll.Timeout -> finish Encode.Timeout
      | Dpll.Sat model -> (
          let pop = Encode.decode_sparse env model in
          match Eval.violations schema pop with
          | [] -> finish (Encode.Model pop)
          | viols ->
              let before = B.clause_count b in
              Orm_trace.Trace.span tracer "cegar.instantiate" (fun () ->
                  instantiate ctx pop viols);
              if B.clause_count b = before then
                failwith
                  (Format.asprintf
                     "Cegar.solve: no clause instantiated for %d violation(s) \
                      (extractor gap):@.%a"
                     (List.length viols)
                     (Format.pp_print_list Eval.pp_violation)
                     viols)
              else refine ())
    end
  in
  Orm_trace.Trace.span tracer "cegar.solve" refine
