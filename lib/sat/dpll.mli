(** A conflict-driven SAT solver with an incremental interface.

    Variables are positive integers, a literal is a non-zero integer whose
    sign is its polarity (the DIMACS convention).  Built from scratch (the
    container has no SAT solver) as the engine under {!Encode} and
    {!Cegar}, the propositional route to bounded ORM satisfiability.

    The core ({!Inc}) is a persistent CDCL solver: two watched literals,
    first-UIP clause learning, phase saving, geometric restarts,
    MiniSat-style assumptions, and [push]/[pop] clause frames.  Clauses
    may be added between [solve] calls and learned clauses are retained
    across calls — the property the CEGAR refinement loop and the
    planner's repeated domain-size sweeps rely on to pay for each conflict
    only once.  The one-shot {!solve} below wraps a fresh [Inc.t] and
    keeps the historical behaviour (and validation) for existing
    callers. *)

type lit = int
(** Non-zero literal; [-v] is the negation of variable [v]. *)

type clause = lit list
type cnf = clause list

type result =
  | Sat of bool array
      (** satisfying assignment, indexed by variable (index 0 unused) *)
  | Unsat
  | Timeout  (** decision budget exhausted, deadline passed, or cancelled *)

(** The incremental solver. *)
module Inc : sig
  type t
  (** Mutable solver state.  Not thread-safe; confine to one domain. *)

  type stats = {
    decisions : int;  (** decisions of the most recent [solve] *)
    propagations : int;  (** propagations of the most recent [solve] *)
    conflicts : int;  (** conflicts of the most recent [solve] *)
    learned : int;  (** learned clauses currently retained *)
    restarts : int;  (** restarts across the solver's lifetime *)
    clauses : int;  (** problem (non-learned) clauses added so far *)
  }

  val create : unit -> t

  val nvars : t -> int
  (** Highest variable allocated so far. *)

  val new_var : t -> int
  (** Allocate and return a fresh variable. *)

  val ensure_vars : t -> int -> unit
  (** Grow the variable range to at least [n]. *)

  val add_clause : t -> clause -> unit
  (** Add a problem clause.  May be called between [solve] calls; the
      trail is rewound to the root level first.  Inside [push] frames the
      clause is guarded by the frame selectors so a later [pop] retires
      it.  The empty clause marks the instance root-unsatisfiable.
      @raise Invalid_argument on the literal 0. *)

  val push : t -> unit
  (** Open a clause frame: subsequent [add_clause] calls are retractable
      by the matching [pop]. *)

  val pop : t -> unit
  (** Retire the most recent frame's clauses (and any learned clause
      derived from them).  @raise Invalid_argument with no open frame. *)

  val level : t -> int
  (** Number of open frames. *)

  val solve :
    ?assumptions:lit list ->
    ?budget:int ->
    ?deadline_ns:int64 ->
    ?cancel:(unit -> bool) ->
    ?tracer:Orm_trace.Trace.t ->
    t ->
    result
  (** Decide satisfiability of the clauses added so far, under the given
      [assumptions] (temporary unit hypotheses for this call only).
      [budget] (default 2_000_000) bounds decisions + propagations of
      this call; [deadline_ns] / [cancel] are the same cooperative hooks
      as the one-shot {!solve}.  On [Sat m], [m] is indexed by variable
      up to {!nvars} at the time of the call.  Learned clauses persist
      into subsequent calls. *)

  val stats : t -> stats
end

val solve :
  ?budget:int ->
  ?deadline_ns:int64 ->
  ?cancel:(unit -> bool) ->
  ?tracer:Orm_trace.Trace.t ->
  nvars:int ->
  cnf ->
  result
(** [solve ~nvars cnf] decides satisfiability of [cnf] over variables
    [1..nvars] with a fresh incremental solver.  [budget] (default
    2_000_000) bounds the number of decisions + propagations;
    [deadline_ns] is an absolute {!Orm_telemetry.Metrics.now_ns} instant
    past which the search stops with [Timeout], polled every couple
    hundred steps so the per-step hot path stays clock-free.  [cancel] is
    polled at the same amortized sites: once it returns [true] the search
    stops with [Timeout] — the hook the planner's portfolio racing uses
    to abandon the losing backend.

    [tracer] records a [dpll.solve] span with instant events at every
    decision, restart and conflict, plus [dpll.decisions] /
    [propagations] / [conflicts] counter tracks sampled periodically.
    @raise Invalid_argument if a clause mentions a variable outside
    [1..nvars] or the literal 0. *)

val verify : cnf -> bool array -> bool
(** [verify cnf assignment] checks the model (used by tests and by the
    encoder as a safety net). *)

val stats_last_decisions : unit -> int
(** Decisions + propagations spent by the most recent {!solve} call (the
    quantity the budget bounds). *)

val stats_last_propagations : unit -> int
(** Unit propagations alone, for the most recent {!solve} call. *)

val stats_last_backtracks : unit -> int
(** Conflicts of the most recent {!solve} call (historically named
    backtracks). *)

val stats_last_learned : unit -> int
(** Learned clauses retained by the solver of the most recent {!solve}
    call. *)

val stats_last_restarts : unit -> int
(** Restarts performed during the most recent {!solve} call. *)
