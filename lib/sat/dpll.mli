(** A small DPLL SAT solver.

    Complete backtracking search with unit propagation over clauses in the
    usual DIMACS convention: variables are positive integers, a literal is
    a non-zero integer whose sign is its polarity.  Built from scratch (the
    container has no SAT solver) as the engine under {!Encode}, the
    propositional route to bounded ORM satisfiability.  The implementation
    favours clarity over raw speed — branching picks the first unassigned
    variable of the shortest unsatisfied clause — which is plenty for the
    bounded instances the encoder produces and keeps the worst-case
    exponential behaviour honest for the benchmarks. *)

type lit = int
(** Non-zero literal; [-v] is the negation of variable [v]. *)

type clause = lit list
type cnf = clause list

type result =
  | Sat of bool array
      (** satisfying assignment, indexed by variable (index 0 unused) *)
  | Unsat
  | Timeout  (** decision budget exhausted *)

val solve :
  ?budget:int ->
  ?deadline_ns:int64 ->
  ?cancel:(unit -> bool) ->
  ?tracer:Orm_trace.Trace.t ->
  nvars:int ->
  cnf ->
  result
(** [solve ~nvars cnf] decides satisfiability of [cnf] over variables
    [1..nvars].  [budget] (default 2_000_000) bounds the number of
    decisions + propagations; [deadline_ns] is an absolute
    {!Orm_telemetry.Metrics.now_ns} instant past which the search stops
    with [Timeout], polled every couple hundred steps so the per-step hot
    path stays clock-free.  [cancel] is polled at the same amortized sites:
    once it returns [true] the search stops with [Timeout] — the hook the
    planner's portfolio racing uses to abandon the losing backend.

    [tracer] records a [dpll.solve] span with instant events at every
    decision, backtrack and conflict, plus [dpll.decisions] /
    [propagations] / [backtracks] / [depth] counter tracks (sampled at
    decision points; this solver learns no clauses, so the decision depth
    is the quantity a blow-up shows).
    @raise Invalid_argument if a clause mentions a variable outside
    [1..nvars] or the literal 0. *)

val verify : cnf -> bool array -> bool
(** [verify cnf assignment] checks the model (used by tests and by the
    encoder as a safety net). *)

val stats_last_decisions : unit -> int
(** Decisions + propagations spent by the most recent {!solve} call (the
    quantity the budget bounds). *)

val stats_last_propagations : unit -> int
(** Unit propagations alone, for the most recent {!solve} call. *)

val stats_last_backtracks : unit -> int
(** Backtracks (failed polarities and conflicts) of the most recent
    {!solve} call. *)
