type t = {
  names : (string, int) Hashtbl.t;
  reverse : (int, string) Hashtbl.t;
  solver : Dpll.Inc.t;
  mutable acc : Dpll.clause list;  (* reverse order; mirrors the solver *)
  mutable count : int;
}

let create () =
  {
    names = Hashtbl.create 64;
    reverse = Hashtbl.create 64;
    solver = Dpll.Inc.create ();
    acc = [];
    count = 0;
  }

let alloc b name =
  let v = Dpll.Inc.new_var b.solver in
  Hashtbl.add b.reverse v name;
  v

let var b name =
  match Hashtbl.find_opt b.names name with
  | Some v -> v
  | None ->
      let v = alloc b name in
      Hashtbl.add b.names name v;
      v

let find b name = Hashtbl.find_opt b.names name

let fresh b prefix =
  alloc b (Printf.sprintf "%s#%d" prefix (Dpll.Inc.nvars b.solver + 1))

let name_of b lit = Hashtbl.find_opt b.reverse (abs lit)

let add b clause =
  b.acc <- clause :: b.acc;
  b.count <- b.count + 1;
  Dpll.Inc.add_clause b.solver clause

let add_implies b l ds = add b (-l :: ds)

let add_iff_or b x ds =
  (* x -> d1 ∨ ... ∨ dn  and  di -> x *)
  add b (-x :: ds);
  List.iter (fun d -> add b [ -d; x ]) ds

let add_iff_and b x cs =
  (* x -> ci  and  (∧ ci) -> x *)
  List.iter (fun c -> add b [ -x; c ]) cs;
  add b (x :: List.map (fun c -> -c) cs)

let at_most_one b lits =
  let rec pairs = function
    | [] -> ()
    | l :: rest ->
        List.iter (fun l' -> add b [ -l; -l' ]) rest;
        pairs rest
  in
  pairs lits

(* Sinz's sequential counter: registers s.(i).(j) meaning "at least j+1 of
   the first i+1 literals are true".  The optional [unless] guard literal is
   appended to every emitted clause, conditioning the whole constraint. *)
let at_most ?unless b k lits =
  let emit clause =
    match unless with None -> add b clause | Some g -> add b (g :: clause)
  in
  let n = List.length lits in
  if k < 0 then invalid_arg "Cnf_builder.at_most: negative bound";
  if k = 0 then List.iter (fun l -> emit [ -l ]) lits
  else if n > k then begin
    let lits = Array.of_list lits in
    let s = Array.init n (fun _ -> Array.init k (fun _ -> fresh b "seq")) in
    emit [ -lits.(0); s.(0).(0) ];
    for j = 1 to k - 1 do
      emit [ -s.(0).(j) ]
    done;
    for i = 1 to n - 1 do
      emit [ -lits.(i); s.(i).(0) ];
      emit [ -s.(i - 1).(0); s.(i).(0) ];
      for j = 1 to k - 1 do
        emit [ -lits.(i); -s.(i - 1).(j - 1); s.(i).(j) ];
        emit [ -s.(i - 1).(j); s.(i).(j) ]
      done;
      emit [ -lits.(i); -s.(i - 1).(k - 1) ]
    done
  end

let at_least ?unless b k lits =
  let emit clause =
    match unless with None -> add b clause | Some g -> add b (g :: clause)
  in
  let n = List.length lits in
  if k <= 0 then ()
  else if k > n then emit []  (* impossible *)
  else if k = 1 then emit lits
  else at_most ?unless b (n - k) (List.map (fun l -> -l) lits)

let nvars b = Dpll.Inc.nvars b.solver
let clauses b = List.rev b.acc
let clause_count b = b.count
let solver b = b.solver

let solve ?assumptions ?budget ?deadline_ns ?cancel ?tracer b =
  match Dpll.Inc.solve ?assumptions ?budget ?deadline_ns ?cancel ?tracer b.solver with
  | Dpll.Sat model ->
      (* callers index the model by any variable allocated so far *)
      let n = nvars b in
      if Array.length model >= n + 1 then Dpll.Sat model
      else Dpll.Sat (Array.init (n + 1) (fun v -> v < Array.length model && model.(v)))
  | (Dpll.Unsat | Dpll.Timeout) as r -> r
