module Trace = Orm_trace.Trace

type lit = int
type clause = lit list
type cnf = clause list

type result =
  | Sat of bool array
  | Unsat
  | Timeout

exception Give_up

let steps = ref 0
let stats_last_decisions () = !steps

let propagations = ref 0
let backtracks = ref 0
let stats_last_propagations () = !propagations
let stats_last_backtracks () = !backtracks

(* Assignment: 0 = unassigned, 1 = true, -1 = false. *)
type state = {
  assign : int array;
  clauses : int array array;
  occurs : int list array;  (* variable -> indices of clauses mentioning it *)
}

let value st lit =
  let v = st.assign.(abs lit) in
  if v = 0 then 0 else if (lit > 0) = (v > 0) then 1 else -1

(* A clause is satisfied, falsified, or has some unassigned literals; when
   exactly one literal is unassigned and the rest are false, it is a unit. *)
let clause_status st clause =
  let unassigned = ref 0 and unit_lit = ref 0 and satisfied = ref false in
  Array.iter
    (fun lit ->
      match value st lit with
      | 1 -> satisfied := true
      | 0 ->
          incr unassigned;
          unit_lit := lit
      | _ -> ())
    clause;
  if !satisfied then `Satisfied
  else if !unassigned = 0 then `Falsified
  else if !unassigned = 1 then `Unit !unit_lit
  else `Open !unassigned

exception Conflict

(* Deadline polling is amortized to one clock read every
   [deadline_poll_mask + 1] steps: propagation runs millions of steps per
   second, so reading the clock on each one would be measurable. *)
let deadline_poll_mask = 255

(* Assign [lit] true and propagate units; returns the trail of variables
   assigned (for backtracking).  Raises [Conflict] on a falsified clause. *)
let propagate ~budget ~expired st lit =
  let trail = ref [] in
  let queue = Queue.create () in
  let enqueue l =
    match value st l with
    | 1 -> ()
    | -1 -> raise Conflict
    | _ ->
        incr propagations;
        st.assign.(abs l) <- (if l > 0 then 1 else -1);
        trail := abs l :: !trail;
        Queue.add l queue
  in
  (try
     enqueue lit;
     while not (Queue.is_empty queue) do
       incr steps;
       if !steps > budget then raise Give_up;
       if !steps land deadline_poll_mask = 0 && expired () then raise Give_up;
       let l = Queue.pop queue in
       List.iter
         (fun ci ->
           match clause_status st st.clauses.(ci) with
           | `Falsified -> raise Conflict
           | `Unit u -> enqueue u
           | `Satisfied | `Open _ -> ())
         st.occurs.(abs l)
     done;
     Ok !trail
   with Conflict -> Error !trail)

let undo st trail = List.iter (fun v -> st.assign.(v) <- 0) trail

(* Branching heuristic: the first unassigned literal of a shortest
   unresolved clause (drives unit propagation fast); falls back to the
   first unassigned variable. *)
let pick_branch st =
  let best = ref None in
  Array.iter
    (fun clause ->
      match clause_status st clause with
      | `Open n -> (
          match !best with
          | Some (m, _) when m <= n -> ()
          | _ ->
              let lit =
                Array.to_list clause |> List.find (fun l -> value st l = 0)
              in
              best := Some (n, lit))
      | `Satisfied | `Falsified | `Unit _ -> ())
    st.clauses;
  match !best with
  | Some (_, lit) -> Some lit
  | None ->
      let var = ref 0 in
      (try
         for v = 1 to Array.length st.assign - 1 do
           if st.assign.(v) = 0 then begin
             var := v;
             raise Exit
           end
         done
       with Exit -> ());
      if !var = 0 then None else Some !var

let solve ?(budget = 2_000_000) ?deadline_ns ?cancel ?tracer ~nvars cnf =
  steps := 0;
  propagations := 0;
  backtracks := 0;
  let expired =
    let past_deadline =
      match deadline_ns with
      | None -> fun () -> false
      | Some d -> fun () -> Orm_telemetry.Metrics.now_ns () > d
    in
    match cancel with
    | None -> past_deadline
    | Some cancelled -> fun () -> cancelled () || past_deadline ()
  in
  List.iter
    (List.iter (fun lit ->
         if lit = 0 || abs lit > nvars then
           invalid_arg "Dpll.solve: literal out of range"))
    cnf;
  let clauses = Array.of_list (List.map Array.of_list cnf) in
  let occurs = Array.make (nvars + 1) [] in
  Array.iteri
    (fun ci clause ->
      Array.iter (fun lit -> occurs.(abs lit) <- ci :: occurs.(abs lit)) clause)
    clauses;
  let st = { assign = Array.make (nvars + 1) 0; clauses; occurs } in
  let decisions = ref 0 in
  (* Counter samples land at decision points only — once per branch, not
     per propagated literal, so tracing a 2M-step search does not drown the
     ring in counter events.  [depth] is the current decision depth (this
     DPLL learns no clauses, so depth is the backjump-relevant quantity). *)
  let sample tr depth =
    Trace.counter tr "dpll.decisions" !decisions;
    Trace.counter tr "dpll.propagations" !propagations;
    Trace.counter tr "dpll.depth" depth
  in
  (* Top-level units first. *)
  let rec search ~depth () =
    incr steps;
    if !steps > budget then raise Give_up;
    if !steps land deadline_poll_mask = 0 && expired () then raise Give_up;
    (* All clauses satisfied? *)
    let unresolved =
      Array.exists
        (fun clause ->
          match clause_status st clause with
          | `Satisfied -> false
          | `Falsified | `Unit _ | `Open _ -> true)
        st.clauses
    in
    if not unresolved then true
    else
      (* Resolve pending units (can arise from backtracking order). *)
      let pending_unit =
        Array.fold_left
          (fun acc clause ->
            match acc with
            | Some _ -> acc
            | None -> (
                match clause_status st clause with
                | `Unit u -> Some u
                | `Falsified -> raise Conflict
                | `Satisfied | `Open _ -> None))
          None st.clauses
      in
      match pending_unit with
      | Some u -> (
          match propagate ~budget ~expired st u with
          | Ok trail -> search ~depth () || (undo st trail; false)
          | Error trail ->
              undo st trail;
              false)
      | None -> (
          match pick_branch st with
          | None -> true
          | Some lit -> (
              incr decisions;
              Option.iter
                (fun tr ->
                  Trace.instant tr "dpll.decide";
                  sample tr depth)
                tracer;
              let try_polarity l =
                match propagate ~budget ~expired st l with
                | Ok trail ->
                    if search ~depth:(depth + 1) () then true
                    else begin
                      incr backtracks;
                      Option.iter
                        (fun tr ->
                          Trace.instant tr "dpll.backtrack";
                          Trace.counter tr "dpll.backtracks" !backtracks)
                        tracer;
                      undo st trail;
                      false
                    end
                | Error trail ->
                    incr backtracks;
                    Option.iter
                      (fun tr ->
                        Trace.instant tr "dpll.conflict";
                        Trace.counter tr "dpll.backtracks" !backtracks)
                      tracer;
                    undo st trail;
                    false
              in
              try_polarity lit || try_polarity (-lit)))
  in
  let search_root () =
    if expired () then raise Give_up;
    try search ~depth:0 () with Conflict -> false
  in
  match
    (match tracer with
    | None -> search_root ()
    | Some tr -> Trace.with_span tr "dpll.solve" search_root)
  with
  | true ->
      (* Unassigned variables are don't-cares; default them to false. *)
      Sat (Array.init (nvars + 1) (fun v -> v > 0 && st.assign.(v) = 1))
  | false -> Unsat
  | exception Give_up -> Timeout

let verify cnf assignment =
  List.for_all
    (fun clause ->
      List.exists
        (fun lit ->
          let v = assignment.(abs lit) in
          if lit > 0 then v else not v)
        clause)
    cnf
