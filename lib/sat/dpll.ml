module Trace = Orm_trace.Trace

type lit = int
type clause = lit list
type cnf = clause list

type result =
  | Sat of bool array
  | Unsat
  | Timeout

exception Give_up

(* Legacy per-call statistics, kept for the existing callers; they mirror
   the last [Inc.solve] (or wrapper [solve]) on this domain. *)
let steps = ref 0
let stats_last_decisions () = !steps

let propagations = ref 0
let backtracks = ref 0
let stats_last_propagations () = !propagations
let stats_last_backtracks () = !backtracks

let learned_total = ref 0
let restarts_total = ref 0
let stats_last_learned () = !learned_total
let stats_last_restarts () = !restarts_total

(* Deadline polling is amortized to one clock read every
   [deadline_poll_mask + 1] steps: propagation runs millions of steps per
   second, so reading the clock on each one would be measurable. *)
let deadline_poll_mask = 255

(* ------------------------------------------------------------------ *)
(* Growable int vectors (OCaml 5.1 has no Dynarray)                     *)
(* ------------------------------------------------------------------ *)

module Vec = struct
  type t = { mutable a : int array; mutable n : int }

  let create ?(capacity = 16) () = { a = Array.make (max 1 capacity) 0; n = 0 }

  let push v x =
    if v.n = Array.length v.a then begin
      let a' = Array.make (2 * v.n) 0 in
      Array.blit v.a 0 a' 0 v.n;
      v.a <- a'
    end;
    v.a.(v.n) <- x;
    v.n <- v.n + 1

  let get v i = v.a.(i)
  let set v i x = v.a.(i) <- x
  let size v = v.n
  let shrink v n = v.n <- n
end

(* ------------------------------------------------------------------ *)
(* The incremental solver                                               *)
(* ------------------------------------------------------------------ *)

module Inc = struct
  (* Conflict-driven clause learning with two watched literals, first-UIP
     learning, phase saving, geometric restarts and MiniSat-style
     assumptions.  Clauses and variables may be added between [solve]
     calls; learned clauses are retained across calls, which is what makes
     the CEGAR refinement loop and the planner's repeated [k] sweeps pay
     for conflicts only once.  [push]/[pop] frame clause additions with
     selector variables: a popped frame's clauses (and every learned
     clause derived from them) are permanently satisfied by a root-level
     selector unit, so they can never resurface. *)

  type stats = {
    decisions : int;
    propagations : int;
    conflicts : int;
    learned : int;  (** learned clauses currently retained *)
    restarts : int;
    clauses : int;  (** problem clauses (excludes learned) *)
  }

  type t = {
    (* clause store: literals of clause [i] are [lits[start i .. start
       (i+1) - 1]]; learned clauses are flagged for stats only *)
    lits : Vec.t;
    start : Vec.t;  (* length = clause count + 1 *)
    mutable n_clauses : int;
    mutable n_problem : int;
    mutable n_learned : int;
    (* watches.(lit_index l) = clause indices watching literal l; the two
       watched literals of a clause sit at offsets 0 and 1 *)
    mutable watches : Vec.t array;
    (* per-variable state; index 0 unused *)
    mutable assign : int array;  (* 0 unassigned, 1 true, -1 false *)
    mutable level : int array;
    mutable reason : int array;  (* clause index, or -1 for decisions *)
    mutable activity : float array;
    mutable phase : bool array;  (* saved polarity *)
    mutable seen : bool array;  (* scratch for conflict analysis *)
    (* activity-ordered max-heap of branch candidates (MiniSat's
       order_heap): heap.(0 .. heap_size-1) are vars, heap_pos maps var ->
       heap slot (-1 if absent).  pick_branch pops in O(log V) instead of
       scanning every variable, which is what keeps a solve over a huge,
       lightly-constrained variable space (the CEGAR seed formula) from
       going quadratic in decisions. *)
    mutable heap : int array;
    mutable heap_pos : int array;
    mutable heap_size : int;
    mutable nvars : int;
    trail : Vec.t;
    trail_lim : Vec.t;  (* trail length at each decision level *)
    mutable qhead : int;
    mutable var_inc : float;
    (* push/pop frames: selector variable per frame, assumed active while
       the frame is on the stack *)
    mutable frames : int list;
    mutable root_unsat : bool;
    (* per-solve counters *)
    mutable c_decisions : int;
    mutable c_propagations : int;
    mutable c_conflicts : int;
    mutable c_restarts : int;
    mutable total_restarts : int;
  }

  let create () =
    {
      lits = Vec.create ~capacity:256 ();
      start = (let v = Vec.create () in Vec.push v 0; v);
      n_clauses = 0;
      n_problem = 0;
      n_learned = 0;
      watches = Array.init 10 (fun _ -> Vec.create ~capacity:4 ());
      assign = Array.make 4 0;
      level = Array.make 4 0;
      reason = Array.make 4 (-1);
      activity = Array.make 4 0.0;
      phase = Array.make 4 false;
      seen = Array.make 4 false;
      heap = Array.make 4 0;
      heap_pos = Array.make 4 (-1);
      heap_size = 0;
      nvars = 0;
      trail = Vec.create ~capacity:64 ();
      trail_lim = Vec.create ();
      qhead = 0;
      var_inc = 1.0;
      frames = [];
      root_unsat = false;
      c_decisions = 0;
      c_propagations = 0;
      c_conflicts = 0;
      c_restarts = 0;
      total_restarts = 0;
    }

  let nvars t = t.nvars

  let lit_index l = if l > 0 then 2 * l else (-2 * l) + 1

  let grow t want =
    let cap = Array.length t.assign in
    if want >= cap then begin
      let cap' = max (2 * cap) (want + 1) in
      let grow_arr a init =
        let a' = Array.make cap' init in
        Array.blit a 0 a' 0 cap;
        a'
      in
      t.assign <- grow_arr t.assign 0;
      t.level <- grow_arr t.level 0;
      t.reason <- grow_arr t.reason (-1);
      t.activity <- grow_arr t.activity 0.0;
      t.phase <- grow_arr t.phase false;
      t.seen <- grow_arr t.seen false;
      t.heap <- grow_arr t.heap 0;
      t.heap_pos <- grow_arr t.heap_pos (-1);
      let w' = Array.init (2 * cap' + 2) (fun _ -> Vec.create ~capacity:4 ()) in
      Array.blit t.watches 0 w' 0 (Array.length t.watches);
      t.watches <- w'
    end

  (* higher activity first; ties to the lower variable index, matching the
     order the old linear scan picked *)
  let heap_lt t u v =
    t.activity.(u) > t.activity.(v)
    || (t.activity.(u) = t.activity.(v) && u < v)

  let heap_swap t i j =
    let u = t.heap.(i) and v = t.heap.(j) in
    t.heap.(i) <- v;
    t.heap.(j) <- u;
    t.heap_pos.(v) <- i;
    t.heap_pos.(u) <- j

  let rec heap_up t i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if heap_lt t t.heap.(i) t.heap.(p) then begin
        heap_swap t i p;
        heap_up t p
      end
    end

  let rec heap_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let m = ref i in
    if l < t.heap_size && heap_lt t t.heap.(l) t.heap.(!m) then m := l;
    if r < t.heap_size && heap_lt t t.heap.(r) t.heap.(!m) then m := r;
    if !m <> i then begin
      heap_swap t i !m;
      heap_down t !m
    end

  let heap_insert t v =
    if t.heap_pos.(v) < 0 then begin
      let i = t.heap_size in
      t.heap.(i) <- v;
      t.heap_pos.(v) <- i;
      t.heap_size <- t.heap_size + 1;
      heap_up t i
    end

  let heap_pop t =
    let v = t.heap.(0) in
    t.heap_size <- t.heap_size - 1;
    t.heap_pos.(v) <- -1;
    if t.heap_size > 0 then begin
      let w = t.heap.(t.heap_size) in
      t.heap.(0) <- w;
      t.heap_pos.(w) <- 0;
      heap_down t 0
    end;
    v

  let new_var t =
    let v = t.nvars + 1 in
    grow t v;
    t.nvars <- v;
    heap_insert t v;
    v

  let ensure_vars t n = while t.nvars < n do ignore (new_var t) done

  let value t l =
    let v = t.assign.(abs l) in
    if v = 0 then 0 else if (l > 0) = (v > 0) then 1 else -1

  let decision_level t = Vec.size t.trail_lim

  let enqueue t l reason =
    t.assign.(abs l) <- (if l > 0 then 1 else -1);
    t.level.(abs l) <- decision_level t;
    t.reason.(abs l) <- reason;
    Vec.push t.trail l

  (* Unassign everything above [lvl], saving phases. *)
  let cancel_until t lvl =
    if decision_level t > lvl then begin
      let keep = Vec.get t.trail_lim lvl in
      for i = Vec.size t.trail - 1 downto keep do
        let l = Vec.get t.trail i in
        let v = abs l in
        t.phase.(v) <- t.assign.(v) > 0;
        t.assign.(v) <- 0;
        t.reason.(v) <- -1;
        heap_insert t v
      done;
      Vec.shrink t.trail keep;
      Vec.shrink t.trail_lim lvl;
      t.qhead <- min t.qhead keep
    end

  let clause_begin t ci = Vec.get t.start ci
  let clause_end t ci = Vec.get t.start (ci + 1)

  (* Store a clause and set up its watches.  Must be called at decision
     level 0.  Returns false if the clause is conflicting at the root. *)
  let attach t ~learned cl =
    match cl with
    | [] ->
        t.root_unsat <- true;
        false
    | _ ->
        (* order the literals so that non-false ones come first *)
        let arr = Array.of_list cl in
        let n = Array.length arr in
        let nonfalse = ref 0 in
        for i = 0 to n - 1 do
          if value t arr.(i) <> -1 then begin
            let tmp = arr.(!nonfalse) in
            arr.(!nonfalse) <- arr.(i);
            arr.(i) <- tmp;
            incr nonfalse
          end
        done;
        if !nonfalse = 0 then begin
          t.root_unsat <- true;
          false
        end
        else begin
          let ci = t.n_clauses in
          let base = Vec.size t.lits in
          Array.iter (fun l -> Vec.push t.lits l) arr;
          Vec.push t.start (base + n);
          t.n_clauses <- ci + 1;
          if learned then t.n_learned <- t.n_learned + 1
          else t.n_problem <- t.n_problem + 1;
          if n = 1 then begin
            (* unit: no watches needed once the literal is rooted *)
            (match value t arr.(0) with
            | 0 -> enqueue t arr.(0) ci
            | 1 -> ()
            | _ -> t.root_unsat <- true);
            not t.root_unsat
          end
          else begin
            Vec.push t.watches.(lit_index arr.(0)) ci;
            Vec.push t.watches.(lit_index arr.(1)) ci;
            if !nonfalse = 1 && value t arr.(0) = 0 then enqueue t arr.(0) ci;
            true
          end
        end

  let add_clause t cl =
    cancel_until t 0;
    t.qhead <- min t.qhead (Vec.size t.trail);
    List.iter (fun l -> if l <> 0 then ensure_vars t (abs l)) cl;
    if List.exists (fun l -> l = 0) cl then
      invalid_arg "Dpll.Inc.add_clause: literal 0";
    (* frame selectors: a clause added inside push frames is guarded so a
       pop can retire it wholesale *)
    let cl =
      List.fold_left (fun acc s -> -s :: acc) cl t.frames
    in
    if not t.root_unsat then ignore (attach t ~learned:false cl)

  let push t =
    cancel_until t 0;
    let s = new_var t in
    t.frames <- s :: t.frames

  let pop t =
    cancel_until t 0;
    match t.frames with
    | [] -> invalid_arg "Dpll.Inc.pop: no frame to pop"
    | s :: rest ->
        t.frames <- rest;
        (* permanently satisfy every clause guarded by this frame (and any
           learned clause carrying the guard) *)
        if not t.root_unsat then ignore (attach t ~learned:false [ -s ])

  let level t = List.length t.frames

  (* ---- search ---------------------------------------------------- *)

  exception Conflict_found of int

  let propagate t =
    try
      while t.qhead < Vec.size t.trail do
        let p = Vec.get t.trail t.qhead in
        t.qhead <- t.qhead + 1;
        t.c_propagations <- t.c_propagations + 1;
        let false_lit = -p in
        let ws = t.watches.(lit_index false_lit) in
        let kept = ref 0 in
        let i = ref 0 in
        (try
           while !i < Vec.size ws do
             let ci = Vec.get ws !i in
             incr i;
             let b = clause_begin t ci and e = clause_end t ci in
             (* normalize: the false literal sits at offset 1 *)
             if Vec.get t.lits b = false_lit then begin
               Vec.set t.lits b (Vec.get t.lits (b + 1));
               Vec.set t.lits (b + 1) false_lit
             end;
             let first = Vec.get t.lits b in
             if value t first = 1 then begin
               Vec.set ws !kept ci;
               incr kept
             end
             else begin
               (* look for a replacement watch *)
               let found = ref false in
               let j = ref (b + 2) in
               while (not !found) && !j < e do
                 if value t (Vec.get t.lits !j) <> -1 then begin
                   Vec.set t.lits (b + 1) (Vec.get t.lits !j);
                   Vec.set t.lits !j false_lit;
                   Vec.push t.watches.(lit_index (Vec.get t.lits (b + 1))) ci;
                   found := true
                 end;
                 incr j
               done;
               if !found then ()
               else begin
                 (* unit or conflict *)
                 Vec.set ws !kept ci;
                 incr kept;
                 if value t first = -1 then begin
                   (* keep the remaining watchers before reporting *)
                   while !i < Vec.size ws do
                     Vec.set ws !kept (Vec.get ws !i);
                     incr kept;
                     incr i
                   done;
                   Vec.shrink ws !kept;
                   raise (Conflict_found ci)
                 end
                 else enqueue t first ci
               end
             end
           done;
           Vec.shrink ws !kept
         with Conflict_found _ as e -> raise e)
      done;
      -1
    with Conflict_found ci -> ci

  let var_decay = 1.0 /. 0.95
  let rescale_limit = 1e100

  let bump t v =
    t.activity.(v) <- t.activity.(v) +. t.var_inc;
    if t.activity.(v) > rescale_limit then begin
      (* uniform rescale preserves the heap order *)
      for u = 1 to t.nvars do
        t.activity.(u) <- t.activity.(u) *. 1e-100
      done;
      t.var_inc <- t.var_inc *. 1e-100
    end
    else if t.heap_pos.(v) >= 0 then heap_up t t.heap_pos.(v)

  (* First-UIP conflict analysis.  Returns the learned clause (asserting
     literal first) and the backjump level.  [p] holds the trail literal
     being resolved on (0 on the first iteration, where the whole conflict
     clause is scanned); a reason clause contains [p] itself, which must be
     skipped when scanning it. *)
  let analyze t confl =
    let learned = ref [] in
    let counter = ref 0 in
    let p = ref 0 in
    let idx = ref (Vec.size t.trail - 1) in
    let c = ref confl in
    let dl = decision_level t in
    let continue = ref true in
    while !continue do
      let b = clause_begin t !c and e = clause_end t !c in
      for k = b to e - 1 do
        let q = Vec.get t.lits k in
        if q <> !p then begin
          let v = abs q in
          if (not t.seen.(v)) && t.level.(v) > 0 then begin
            t.seen.(v) <- true;
            bump t v;
            if t.level.(v) >= dl then incr counter
            else learned := q :: !learned
          end
        end
      done;
      (* walk the trail back to the next marked literal *)
      while not t.seen.(abs (Vec.get t.trail !idx)) do
        decr idx
      done;
      p := Vec.get t.trail !idx;
      let v = abs !p in
      t.seen.(v) <- false;
      decr counter;
      decr idx;
      if !counter = 0 then continue := false
      else c := t.reason.(v)
    done;
    let cl = - !p :: !learned in
    List.iter (fun q -> t.seen.(abs q) <- false) !learned;
    let bj =
      List.fold_left (fun acc q -> max acc t.level.(abs q)) 0 !learned
    in
    (cl, bj)

  (* Attach a learned clause after backjumping: the asserting literal is
     unassigned, every other literal false, so watch positions 0 and 1
     (position 1 holding a literal from the backjump level). *)
  let attach_learned t cl =
    match cl with
    | [ l ] ->
        let ci = t.n_clauses in
        Vec.push t.lits l;
        Vec.push t.start (Vec.size t.lits);
        t.n_clauses <- ci + 1;
        t.n_learned <- t.n_learned + 1;
        enqueue t l ci
    | l :: rest ->
        (* move a deepest-level literal to position 1 *)
        let arr = Array.of_list rest in
        let best = ref 0 in
        Array.iteri
          (fun i q -> if t.level.(abs q) > t.level.(abs arr.(!best)) then best := i)
          arr;
        let tmp = arr.(0) in
        arr.(0) <- arr.(!best);
        arr.(!best) <- tmp;
        let ci = t.n_clauses in
        Vec.push t.lits l;
        Array.iter (fun q -> Vec.push t.lits q) arr;
        Vec.push t.start (Vec.size t.lits);
        t.n_clauses <- ci + 1;
        t.n_learned <- t.n_learned + 1;
        Vec.push t.watches.(lit_index l) ci;
        Vec.push t.watches.(lit_index arr.(0)) ci;
        enqueue t l ci
    | [] -> t.root_unsat <- true

  (* Pop the order heap until an unassigned variable surfaces; assigned
     entries are stale (lazy deletion — they re-enter on backtrack). *)
  let rec pick_branch t =
    if t.heap_size = 0 then None
    else
      let v = heap_pop t in
      if t.assign.(v) = 0 then Some (if t.phase.(v) then v else -v)
      else pick_branch t

  let stats t =
    {
      decisions = t.c_decisions;
      propagations = t.c_propagations;
      conflicts = t.c_conflicts;
      learned = t.n_learned;
      restarts = t.total_restarts;
      clauses = t.n_problem;
    }

  let solve ?(assumptions = []) ?(budget = 2_000_000) ?deadline_ns ?cancel
      ?tracer t =
    t.c_decisions <- 0;
    t.c_propagations <- 0;
    t.c_conflicts <- 0;
    t.c_restarts <- 0;
    let expired =
      let past_deadline =
        match deadline_ns with
        | None -> fun () -> false
        | Some d -> fun () -> Orm_telemetry.Metrics.now_ns () > d
      in
      match cancel with
      | None -> past_deadline
      | Some cancelled -> fun () -> cancelled () || past_deadline ()
    in
    let assumps =
      Array.of_list (List.rev_append (List.rev_map (fun s -> s) t.frames) assumptions)
    in
    Array.iter
      (fun l ->
        if l = 0 then invalid_arg "Dpll.Inc.solve: assumption literal 0";
        ensure_vars t (abs l))
      assumps;
    cancel_until t 0;
    t.qhead <- 0;  (* re-propagate root units against any new clauses *)
    if t.root_unsat then Unsat
    else begin
      let spent () = t.c_decisions + t.c_propagations in
      let check_budget () =
        if spent () > budget then raise Give_up;
        if spent () land deadline_poll_mask = 0 && expired () then raise Give_up
      in
      let restart_limit = ref 100 in
      let sample tr =
        Trace.counter tr "dpll.decisions" t.c_decisions;
        Trace.counter tr "dpll.propagations" t.c_propagations;
        Trace.counter tr "dpll.conflicts" t.c_conflicts
      in
      let search () =
        let result = ref None in
        while !result = None do
          check_budget ();
          let confl = propagate t in
          if confl >= 0 then begin
            t.c_conflicts <- t.c_conflicts + 1;
            Option.iter (fun tr -> Trace.instant tr "dpll.conflict") tracer;
            if decision_level t <= Array.length assumps then begin
              (* conflict depends only on the root and the assumptions *)
              if decision_level t = 0 then t.root_unsat <- true;
              result := Some Unsat
            end
            else begin
              let cl, bj = analyze t confl in
              (* never backjump into the assumption prefix deeper than the
                 conflict allows: clamping to an assumption level keeps
                 the assumed literals enqueued *)
              cancel_until t bj;
              attach_learned t cl;
              t.var_inc <- t.var_inc *. var_decay;
              if t.c_conflicts mod 1000 = 0 then
                Option.iter (fun tr -> sample tr) tracer
            end
          end
          else if t.c_conflicts >= !restart_limit
                  && decision_level t > Array.length assumps then begin
            restart_limit := !restart_limit + (!restart_limit / 2) + 100;
            t.c_restarts <- t.c_restarts + 1;
            t.total_restarts <- t.total_restarts + 1;
            Option.iter (fun tr -> Trace.instant tr "dpll.restart") tracer;
            cancel_until t (Array.length assumps)
          end
          else begin
            let dl = decision_level t in
            if dl < Array.length assumps then begin
              let a = assumps.(dl) in
              match value t a with
              | -1 -> result := Some Unsat
              | 1 ->
                  (* already implied: open an empty level so indices keep
                     lining up with the assumption array *)
                  Vec.push t.trail_lim (Vec.size t.trail)
              | _ ->
                  Vec.push t.trail_lim (Vec.size t.trail);
                  t.c_decisions <- t.c_decisions + 1;
                  enqueue t a (-1)
            end
            else
              match pick_branch t with
              | None ->
                  let model =
                    Array.init (t.nvars + 1) (fun v -> v > 0 && t.assign.(v) = 1)
                  in
                  result := Some (Sat model)
              | Some l ->
                  Vec.push t.trail_lim (Vec.size t.trail);
                  t.c_decisions <- t.c_decisions + 1;
                  Option.iter (fun tr -> Trace.instant tr "dpll.decide") tracer;
                  enqueue t l (-1)
          end
        done;
        Option.get !result
      in
      let outcome =
        match
          (match tracer with
          | None -> search ()
          | Some tr -> Trace.with_span tr "dpll.solve" search)
        with
        | r -> r
        | exception Give_up -> Timeout
      in
      cancel_until t 0;
      (* export per-call counters to the legacy stats surface *)
      steps := t.c_decisions + t.c_propagations;
      propagations := t.c_propagations;
      backtracks := t.c_conflicts;
      learned_total := t.n_learned;
      restarts_total := t.c_restarts;
      outcome
    end
end

(* ------------------------------------------------------------------ *)
(* The legacy one-shot interface                                        *)
(* ------------------------------------------------------------------ *)

let solve ?(budget = 2_000_000) ?deadline_ns ?cancel ?tracer ~nvars cnf =
  List.iter
    (List.iter (fun lit ->
         if lit = 0 || abs lit > nvars then
           invalid_arg "Dpll.solve: literal out of range"))
    cnf;
  let t = Inc.create () in
  Inc.ensure_vars t nvars;
  List.iter (Inc.add_clause t) cnf;
  match Inc.solve ~budget ?deadline_ns ?cancel ?tracer t with
  | Sat model ->
      (* the incremental core sizes its model to its own variable count;
         pad don't-cares so callers can index by [nvars] *)
      Sat (Array.init (nvars + 1) (fun v -> v < Array.length model && model.(v)))
  | (Unsat | Timeout) as r -> r

let verify cnf assignment =
  List.for_all
    (fun clause ->
      List.exists
        (fun lit ->
          let v = assignment.(abs lit) in
          if lit > 0 then v else not v)
        clause)
    cnf
