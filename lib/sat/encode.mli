(** Bounded ORM satisfiability via propositional encoding.

    The second complete route in the repository (besides
    {!Orm_reasoner.Finder}'s explicit search): a schema plus a bounded
    universe of candidate values is compiled to CNF — membership variables
    [mem(T,v)] per object type and candidate value, tuple variables
    [tup(f,u,v)] per fact type and value pair — and handed to the DPLL
    solver.  Cardinality constraints (uniqueness, frequency) use
    sequential-counter encodings; acyclicity uses an explicit strict-order
    relation with transitivity clauses.

    The candidate universe mirrors {!Orm_reasoner.Finder}: per subtype
    family, the union of the family's admissible values plus a bounded
    number of fresh atoms — so the two complete procedures decide exactly
    the same bounded question, which the test suite exploits for
    differential testing. *)

open Orm
open Orm_semantics

type query =
  | Schema_satisfiable
  | Type_satisfiable of Ids.object_type
  | Role_satisfiable of Ids.role
  | All_populated of Ids.role list
  | Strongly_satisfiable

type outcome =
  | Model of Population.t
  | No_model
  | Timeout

val pp_outcome : Format.formatter -> outcome -> unit

type stats = {
  variables : int;
  clauses : int;
  decisions : int;  (** DPLL decisions + propagations *)
}

val solve :
  ?max_fresh:int ->
  ?budget:int ->
  ?deadline_ns:int64 ->
  ?cancel:(unit -> bool) ->
  ?tracer:Orm_trace.Trace.t ->
  Schema.t ->
  query ->
  outcome
(** [solve schema query] encodes and solves.  [max_fresh] bounds the fresh
    atoms per type family (default: the same heuristic as the finder);
    [budget] bounds DPLL steps (default 2_000_000); [deadline_ns]
    (absolute, {!Orm_telemetry.Metrics.now_ns} scale) is forwarded to the
    DPLL search, which answers [Timeout] once it passes; [cancel] is the
    cooperative-cancellation hook forwarded the same way (the planner's
    race uses it to stop the losing backend).  A [Model] outcome
    is decoded back into a population and re-checked against
    {!Orm_semantics.Eval} before being returned. *)

val last_stats : unit -> stats
(** Encoding and solving statistics of the most recent {!solve} call. *)
