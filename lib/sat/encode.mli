(** Bounded ORM satisfiability via propositional encoding.

    The second complete route in the repository (besides
    {!Orm_reasoner.Finder}'s explicit search): a schema plus a bounded
    universe of candidate values is compiled to CNF — membership variables
    [mem(T,v)] per object type and candidate value, tuple variables
    [tup(f,u,v)] per fact type and value pair — and handed to the DPLL
    solver.  Cardinality constraints (uniqueness, frequency) use
    sequential-counter encodings; acyclicity uses an explicit strict-order
    relation with transitivity clauses.

    The candidate universe mirrors {!Orm_reasoner.Finder}: per subtype
    family, the union of the family's admissible values plus a bounded
    number of fresh atoms — so the two complete procedures decide exactly
    the same bounded question, which the test suite exploits for
    differential testing. *)

open Orm
open Orm_semantics

type query =
  | Schema_satisfiable
  | Type_satisfiable of Ids.object_type
  | Role_satisfiable of Ids.role
  | All_populated of Ids.role list
  | Strongly_satisfiable

type outcome =
  | Model of Population.t
  | No_model
  | Timeout

val pp_outcome : Format.formatter -> outcome -> unit

type stats = {
  variables : int;
  clauses : int;
  decisions : int;  (** DPLL decisions + propagations *)
}

val solve :
  ?max_fresh:int ->
  ?budget:int ->
  ?deadline_ns:int64 ->
  ?cancel:(unit -> bool) ->
  ?tracer:Orm_trace.Trace.t ->
  Schema.t ->
  query ->
  outcome
(** [solve schema query] encodes and solves.  [max_fresh] bounds the fresh
    atoms per type family (default: the same heuristic as the finder);
    [budget] bounds DPLL steps (default 2_000_000); [deadline_ns]
    (absolute, {!Orm_telemetry.Metrics.now_ns} scale) is forwarded to the
    DPLL search, which answers [Timeout] once it passes; [cancel] is the
    cooperative-cancellation hook forwarded the same way (the planner's
    race uses it to stop the losing backend).  A [Model] outcome
    is decoded back into a population and re-checked against
    {!Orm_semantics.Eval} before being returned. *)

val last_stats : unit -> stats
(** Encoding and solving statistics of the most recent {!solve} call. *)

(** {1 Encoding environment}

    The pieces of the eager encoder, exported so the {!Cegar} lazy
    grounder can reuse the exact same variable space, candidate pools and
    per-constraint clause forms.  Every clause the lazy path emits through
    these helpers is one the eager encoding would also contain (or a
    definitional extension of it), which is the soundness invariant the
    CEGAR loop rests on. *)

type env
(** A variable space over a schema: the candidate pools (per subtype
    family: admissible values plus fresh atoms) and the named-variable
    builder.  Variables are created on first use, so a partial encoding
    only pays for what it touches. *)

val make_env : ?max_fresh:int -> Schema.t -> env
(** Pools as in {!solve}: [max_fresh] fresh atoms per subtype family
    (default {!default_fresh}). *)

val default_fresh : Schema.t -> int
(** The fresh-atom heuristic shared with {!Orm_reasoner.Finder}. *)

val builder : env -> Cnf_builder.t
val env_schema : env -> Schema.t

val env_pool : env -> Ids.object_type -> Value.t list
(** Candidate values for an object type's subtype family. *)

val mem : env -> Ids.object_type -> Value.t -> Dpll.lit
(** Membership variable [mem(T,v)] (allocated on first use). *)

val tup : env -> Ids.fact_type -> Value.t -> Value.t -> Dpll.lit
(** Tuple variable [tup(f,u,v)]. *)

val plays : env -> Ids.role -> Value.t -> Dpll.lit
(** Role-playing variable [plays(r,u)].  Only meaningful once defined —
    eagerly by {!define_plays}, or lazily via an [iff-or] over
    {!role_tuples}. *)

val role_tuples : env -> Ids.role -> Value.t -> Dpll.lit list
(** All tuple variables with [u] at role [r]'s end (the co-player's full
    pool — allocates them). *)

val grid : env -> Fact_type.t -> (Value.t * Value.t) list
(** The full candidate pair grid of a fact type. *)

val define_plays : env -> unit
(** Adds the [plays ↔ ∨ tup] definitions for every role/candidate pair
    (the eager path does this up front). *)

val encode_structure : env -> unit
(** Typing, subtype containment/strictness, value admissibility and
    implicit exclusion over the full grid. *)

val encode_constraint : env -> Constraints.t -> unit
(** Full eager grounding of one constraint. *)

val encode_query : env -> query -> unit
(** Ground the query goals (disjunctions over the candidate pools). *)

val decode : env -> bool array -> Population.t
(** Reads a model back into a population over the full grid (eager
    path: every variable exists). *)

val decode_sparse : env -> bool array -> Population.t
(** Like {!decode} but reads only variables the partial encoding has
    allocated; unallocated variables count as false.  The CEGAR loop's
    candidate-model decoder. *)
