(** Incremental CNF construction with named variables and cardinality
    encodings.

    The builder hands out fresh propositional variables keyed by a string
    (so the encoder can ask for ["mem(Person,'a1')"] twice and get the same
    variable), accumulates clauses, and provides the standard encodings the
    ORM translation needs: implications, equivalences, pairwise at-most-one,
    and sequential-counter at-most/at-least-k (Sinz 2005).

    The builder owns a persistent {!Dpll.Inc} solver: every {!add} feeds
    the clause to the solver immediately, and {!solve} may be called any
    number of times with more clauses added in between — learned clauses
    are retained across calls, which is what the {!Cegar} refinement loop
    leans on. *)

type t

val create : unit -> t

val var : t -> string -> Dpll.lit
(** The (positive) variable registered under the name, created on first
    use. *)

val find : t -> string -> Dpll.lit option
(** The variable registered under the name, without creating it — the
    lazy-grounding decoder uses this to read only variables the partial
    encoding has actually allocated. *)

val fresh : t -> string -> Dpll.lit
(** A fresh auxiliary variable; the name is a debugging prefix. *)

val name_of : t -> Dpll.lit -> string option
(** Reverse lookup (ignores polarity). *)

val add : t -> Dpll.clause -> unit
(** Adds one clause.  An empty clause makes the formula unsatisfiable. *)

val add_implies : t -> Dpll.lit -> Dpll.lit list -> unit
(** [add_implies b l ds]: [l → d1 ∨ ... ∨ dn]. *)

val add_iff_or : t -> Dpll.lit -> Dpll.lit list -> unit
(** [add_iff_or b x ds]: [x ↔ d1 ∨ ... ∨ dn] (Tseitin). *)

val add_iff_and : t -> Dpll.lit -> Dpll.lit list -> unit
(** [add_iff_and b x cs]: [x ↔ c1 ∧ ... ∧ cn] (Tseitin). *)

val at_most_one : t -> Dpll.lit list -> unit
(** Pairwise encoding. *)

val at_most : ?unless:Dpll.lit -> t -> int -> Dpll.lit list -> unit
(** Sequential-counter encoding of [≤ k] among the literals ([k ≥ 0];
    [k = 0] forces all false).  With [?unless:g], the constraint is only
    enforced when [g] is false ([g] is added to every emitted clause) —
    used for conditional cardinalities such as "if the object plays the
    role at all, it plays it at least [min] times". *)

val at_least : ?unless:Dpll.lit -> t -> int -> Dpll.lit list -> unit
(** [≥ k] among the literals, as [≤ (n-k)] over their negations.
    Unsatisfiable (empty clause, or unit [g] with [?unless:g]) when [k]
    exceeds the list length. *)

val nvars : t -> int

val clauses : t -> Dpll.cnf
(** All problem clauses added so far, in insertion order (kept for
    {!Dpll.verify} safety nets and tests; the live copy is inside the
    solver). *)

val clause_count : t -> int

val solver : t -> Dpll.Inc.t
(** The underlying incremental solver (for [push]/[pop] framing and
    solver statistics). *)

val solve :
  ?assumptions:Dpll.lit list ->
  ?budget:int -> ?deadline_ns:int64 -> ?cancel:(unit -> bool) ->
  ?tracer:Orm_trace.Trace.t -> t -> Dpll.result
(** Solves the accumulated formula on the persistent incremental solver.
    Repeatable: clauses may be added between calls, and learned clauses
    carry over.  On [Sat m], [m] is indexed by every variable allocated
    so far. *)
