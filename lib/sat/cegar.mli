(** CEGAR-style lazy grounding for bounded ORM satisfiability.

    The counterexample-driven companion to {!Encode}: instead of grounding
    every universal constraint over the full candidate grid up front, the
    initial formula carries only the query goals.  Each round solves the
    partial formula on the persistent incremental solver
    ({!Cnf_builder}/{!Dpll.Inc}, learned clauses retained across rounds),
    decodes the candidate model into a population, asks
    {!Orm_semantics.Eval.violations} what is wrong with it, and grounds
    clauses for exactly the violated instances — a mandatory clause for
    the one object missing its tuple, an at-most-one for the one player
    breaking a uniqueness, a cycle-blocking clause for the one cycle found.

    Soundness: every emitted clause is a clause of the eager encoding (or
    a definitional extension), so the partial formula is a relaxation —
    its UNSAT answers transfer to the eager bound.  SAT answers are only
    returned once {!Orm_semantics.Eval} confirms the decoded population.
    Termination: the bounded variable space is finite and every round
    grounds at least one clause falsified by the candidate that triggered
    it; a round that cannot make progress fails loudly (extractor gap),
    mirroring the eager encoder's decoded-model safety net.

    On schemas whose hard constraints are rarely violated by candidate
    models this solves domain sizes far beyond the eager encoder within
    the same deadline (the O(k³) acyclicity orders and O(k²) typing
    grids are simply never built); see [BENCH_server.json] §SAT. *)

open Orm

type stats = {
  rounds : int;  (** solver calls (refinement rounds + the final one) *)
  instantiated_clauses : int;  (** ground clauses added by refinement *)
  variables : int;
  clauses : int;  (** total problem clauses at the end *)
  decisions : int;  (** decisions + propagations across all rounds *)
  learned : int;  (** learned clauses retained by the incremental core *)
  restarts : int;  (** restarts across all rounds *)
}

val solve :
  ?max_fresh:int ->
  ?budget:int ->
  ?deadline_ns:int64 ->
  ?cancel:(unit -> bool) ->
  ?tracer:Orm_trace.Trace.t ->
  Schema.t ->
  Encode.query ->
  Encode.outcome
(** Same contract as {!Encode.solve} — identical candidate pools
    ([max_fresh], default {!Encode.default_fresh}), so the two decide
    exactly the same bounded question and must agree in verdict (the
    differential suite enforces this).  [budget] bounds decisions +
    propagations summed across all refinement rounds; [deadline_ns] and
    [cancel] are forwarded to every solver call. *)

val last_stats : unit -> stats
(** Statistics of the most recent {!solve} call. *)
