(** The decision procedure: which complete backend(s), if any, should a
    [reason] request run after the pattern engine?

    The paper's economics drive the shape of the answer.  Patterns are
    linear-to-quadratic and {e sound}: every diagnostic is a proof of
    unsatisfiability, so when they fire there is nothing left for a
    complete backend to decide — {!Patterns_only}.  When they stay silent
    the complete procedures must run, and under a roomy deadline the best
    portfolio is to race the two cheapest admitted members: the tableau
    tends to reach [Unsat] verdicts fast, the two SAT routes (eager
    grounding for small bounds, CEGAR lazy grounding for large ones) are
    the only confirmers of strong satisfiability, and whichever answers
    definitively first wins while the loser is cancelled through the
    solvers' polling hooks.  Racing burns a core, so it is only chosen
    when the deadline budget admits at least two cost estimates (no
    deadline admits everything) — the property the fuzz suite enforces. *)

type decision =
  | Patterns_only
      (** the pattern report already proves unsatisfiability; skip the
          complete backends entirely *)
  | Backend of Cost.backend  (** run exactly one complete backend *)
  | Race of Cost.backend * Cost.backend
      (** run both on the domain pool, first definitive verdict wins *)

val decision_name : decision -> string
(** ["patterns_only"], a backend name, or ["race:<a>+<b>"] (e.g.
    ["race:dlr+sat-lazy"]) — the spelling used in server responses and
    decision logs. *)

type plan = {
  decision : decision;
  features : Features.t;
  estimates : Cost.estimate list;  (** one per {!Cost.all}, same order *)
  budget_ns : int option;
      (** deadline budget remaining at decision time; [None] = no deadline *)
  admitted : Cost.backend list;  (** estimates within the budget *)
}

val estimate_for : plan -> Cost.backend -> Cost.estimate
val admits : plan -> Cost.backend -> bool

val decide :
  ?stats:Orm_telemetry.Metrics.snapshot ->
  ?budget_ns:int ->
  patterns_conclusive:bool ->
  Features.t ->
  plan
(** [decide ~patterns_conclusive features] picks the backend strategy.
    [stats] supplies the latency histograms that refine the static cost
    estimates; [budget_ns] is the remaining deadline budget (omit for no
    deadline).  Policy: patterns conclusive → {!Patterns_only}; two or
    more estimates fit the budget → {!Race} the two cheapest; exactly one
    fits → that {!Backend}; none fits → the cheapest {!Backend} as a best
    effort (it will usually hit the deadline and surface as a timeout). *)

val to_fields : plan -> (string * Orm_json.t) list
(** The plan as JSON fields ([decision], [features], [estimates],
    [budget_ns]) — spliced into server responses and the decision log. *)
