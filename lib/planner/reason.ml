module Engine = Orm_patterns.Engine
module Engine_par = Orm_patterns.Engine_par
module Settings = Orm_patterns.Settings
module Metrics = Orm_telemetry.Metrics
module Trace = Orm_trace.Trace
module Dlr_check = Orm_dlr.Dlr_check
module Encode = Orm_sat.Encode

type backend_request = [ `Auto | `Dlr | `Sat | `Both ]

type dlr_run = {
  result : Dlr_check.result;
  time_ns : int;
  cancelled : bool;
}

type sat_run = {
  outcome : Encode.outcome;
  stats : Encode.stats;
  time_ns : int;
  cancelled : bool;
}

type t = {
  report : Engine.report;
  patterns_time_ns : int;
  plan : Planner.plan option;
  plan_time_ns : int;
  short_circuit : bool;
  dlr : dlr_run option;
  sat : sat_run option;
  winner : Cost.backend option;
  clean : bool;
  conclusive : bool;
}

let dlr_unsat t =
  match t.dlr with
  | None -> 0
  | Some { result; _ } ->
      List.length (Dlr_check.unsat_types result)
      + List.length (Dlr_check.unsat_roles result)

let sat_no_model t =
  match t.sat with Some { outcome = Encode.No_model; _ } -> true | _ -> false

(* ---- single-backend runs --------------------------------------------- *)

(* Each returns (run, definitive): definitive means the caller can act on
   the verdict without consulting the other backend.  A tableau [Sat] is
   never definitive for strong satisfiability (joint constraints and
   skipped axioms are invisible to per-element queries); an [Unsat] always
   is.  SAT is definitive either way, except on [Timeout]. *)

let run_dlr ?metrics ?tracer ?deadline_ns ?cancel ~budget schema =
  let result, time_ns =
    Metrics.time (fun () ->
        Dlr_check.check ~budget ?deadline_ns ?cancel ?tracer schema)
  in
  let definitive =
    Dlr_check.unsat_types result <> [] || Dlr_check.unsat_roles result <> []
  in
  Option.iter
    (fun m ->
      Metrics.record_backend m ~backend:(Cost.slot Cost.Dlr) ~time_ns ~definitive)
    metrics;
  ({ result; time_ns; cancelled = false }, definitive)

let run_sat ?metrics ?tracer ?deadline_ns ?cancel ?max_fresh ~sat_budget schema =
  let (outcome, stats), time_ns =
    Metrics.time (fun () ->
        let outcome =
          Encode.solve ?max_fresh ~budget:sat_budget ?deadline_ns ?cancel
            ?tracer schema Encode.Strongly_satisfiable
        in
        (* captured here, inside the same task, so a concurrent tableau (or
           a later race) can never interleave with the solver's globals *)
        (outcome, Encode.last_stats ()))
  in
  let definitive =
    match outcome with Encode.Model _ | No_model -> true | Timeout -> false
  in
  Option.iter
    (fun m ->
      Metrics.record_backend m ~backend:(Cost.slot Cost.Sat) ~time_ns ~definitive)
    metrics;
  ({ outcome; stats; time_ns; cancelled = false }, definitive)

(* ---- the race -------------------------------------------------------- *)

(* Created on first use, never at module load: a prefork server forks its
   workers at startup, and OCaml 5 forbids forking after a domain has been
   spawned.  Two domains — one per racer — reused across races for the
   lifetime of the process. *)
let race_pool = lazy (Engine_par.Pool.create 2)

type 'a slot = Pending | Done of 'a * bool | Failed of exn

let race ?metrics ?tracer ?deadline_ns ?max_fresh ~budget ~sat_budget schema =
  let pool = Lazy.force race_pool in
  let m = Mutex.create () in
  let cv = Condition.create () in
  let cancel_dlr = Atomic.make false in
  let cancel_sat = Atomic.make false in
  let dlr_slot = ref Pending in
  let sat_slot = ref Pending in
  let winner = ref None in
  let loser_cancelled = ref false in
  (* Called with [m] held after a racer stored its result: the first
     definitive finisher wins and flips the loser's cancel flag (polled at
     the solvers' amortized deadline-check sites). *)
  let settle which other_pending other_cancel =
    (match (!winner : Cost.backend option) with
    | None ->
        winner := Some which;
        if other_pending () then begin
          Atomic.set other_cancel true;
          loser_cancelled := true
        end
    | Some _ -> ());
    Condition.broadcast cv
  in
  Engine_par.Pool.submit pool (fun () ->
      let outcome =
        try
          let run, definitive =
            run_dlr ?metrics ?tracer ?deadline_ns
              ~cancel:(fun () -> Atomic.get cancel_dlr)
              ~budget schema
          in
          Done (run, definitive)
        with exn -> Failed exn
      in
      Mutex.lock m;
      dlr_slot := outcome;
      (match outcome with
      | Done (_, true) ->
          settle Cost.Dlr (fun () -> !sat_slot = Pending) cancel_sat
      | _ -> Condition.broadcast cv);
      Mutex.unlock m);
  Engine_par.Pool.submit pool (fun () ->
      let outcome =
        try
          let run, definitive =
            run_sat ?metrics ?tracer ?deadline_ns
              ~cancel:(fun () -> Atomic.get cancel_sat)
              ?max_fresh ~sat_budget schema
          in
          Done (run, definitive)
        with exn -> Failed exn
      in
      Mutex.lock m;
      sat_slot := outcome;
      (match outcome with
      | Done (_, true) ->
          settle Cost.Sat (fun () -> !dlr_slot = Pending) cancel_dlr
      | _ -> Condition.broadcast cv);
      Mutex.unlock m);
  (* Join BOTH racers before returning — the loser is cancelled, not
     abandoned, so no task ever outlives its request and the next race (or
     a sequential solve on the main domain) can't overlap the solvers'
     per-run statistics. *)
  Mutex.lock m;
  while !dlr_slot = Pending || !sat_slot = Pending do
    Condition.wait cv m
  done;
  let dlr_out = !dlr_slot and sat_out = !sat_slot in
  let w = !winner and cancelled = !loser_cancelled in
  Mutex.unlock m;
  if cancelled then
    Option.iter (fun mx -> Metrics.record_race_cancelled mx) metrics;
  let dlr_run =
    match dlr_out with
    | Done (run, _) -> { run with cancelled = Atomic.get cancel_dlr }
    | Failed exn -> raise exn
    | Pending -> assert false
  in
  let sat_run =
    match sat_out with
    | Done (run, _) -> { run with cancelled = Atomic.get cancel_sat }
    | Failed exn -> raise exn
    | Pending -> assert false
  in
  (dlr_run, sat_run, w)

(* ---- the orchestrator ------------------------------------------------ *)

let run ?(settings = Settings.default) ?metrics ?tracer ?deadline_ns
    ?(budget = 50_000) ?(sat_budget = 2_000_000) ?max_fresh ?(jobs = 1)
    ~backend schema =
  let report, patterns_time_ns =
    Metrics.time (fun () ->
        if jobs > 1 then
          Engine_par.check ~domains:jobs ~settings ?metrics ?tracer
            ?deadline_ns schema
        else Engine.check ~settings ?metrics ?tracer ?deadline_ns schema)
  in
  let patterns_conclusive = report.Engine.diagnostics <> [] in
  let plan, plan_time_ns =
    match backend with
    | `Dlr | `Sat | `Both -> (None, 0)
    | `Auto ->
        let plan, t =
          Metrics.time (fun () ->
              Trace.span tracer "planner.decide" (fun () ->
                  let stats = Option.map Metrics.snapshot metrics in
                  let budget_ns =
                    Option.map
                      (fun d ->
                        Int64.to_int (Int64.sub d (Metrics.now_ns ())))
                      deadline_ns
                  in
                  let features = Features.extract schema in
                  Planner.decide ?stats ?budget_ns ~patterns_conclusive
                    features))
        in
        Option.iter
          (fun m ->
            Metrics.record_plan m
              (match plan.Planner.decision with
              | Planner.Patterns_only -> `Patterns_only
              | Planner.Backend Cost.Dlr -> `Backend_dlr
              | Planner.Backend Cost.Sat -> `Backend_sat
              | Planner.Race _ -> `Race))
          metrics;
        (Some plan, t)
  in
  let want_dlr, want_sat, want_race =
    match backend with
    | `Dlr -> (true, false, false)
    | `Sat -> (false, true, false)
    | `Both -> (true, true, false)
    | `Auto -> (
        match (Option.get plan).Planner.decision with
        | Planner.Patterns_only -> (false, false, false)
        | Planner.Backend Cost.Dlr -> (true, false, false)
        | Planner.Backend Cost.Sat -> (false, true, false)
        | Planner.Race _ -> (false, false, true))
  in
  let dlr, sat, winner =
    if want_race then
      let d, s, w =
        Trace.span tracer "planner.race" (fun () ->
            race ?metrics ?tracer ?deadline_ns ?max_fresh ~budget ~sat_budget
              schema)
      in
      (Some d, Some s, w)
    else begin
      let dlr =
        if want_dlr then
          Some (fst (run_dlr ?metrics ?tracer ?deadline_ns ~budget schema))
        else None
      in
      let sat =
        if want_sat then
          Some
            (fst
               (run_sat ?metrics ?tracer ?deadline_ns ?max_fresh ~sat_budget
                  schema))
        else None
      in
      (dlr, sat, None)
    end
  in
  let short_circuit =
    match backend with `Auto -> patterns_conclusive | _ -> false
  in
  let t =
    {
      report;
      patterns_time_ns;
      plan;
      plan_time_ns;
      short_circuit;
      dlr;
      sat;
      winner;
      clean = false;
      conclusive = false;
    }
  in
  let clean =
    report.Engine.diagnostics = [] && dlr_unsat t = 0 && not (sat_no_model t)
  in
  let conclusive =
    patterns_conclusive
    || dlr_unsat t > 0
    || (match t.sat with
       | Some { outcome = Encode.Model _ | Encode.No_model; _ } -> true
       | _ -> false)
  in
  { t with clean; conclusive }
