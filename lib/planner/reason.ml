module Engine = Orm_patterns.Engine
module Engine_par = Orm_patterns.Engine_par
module Settings = Orm_patterns.Settings
module Metrics = Orm_telemetry.Metrics
module Trace = Orm_trace.Trace
module Dlr_check = Orm_dlr.Dlr_check
module Encode = Orm_sat.Encode
module Cegar = Orm_sat.Cegar

type backend_request = [ `Auto | `Dlr | `Sat | `SatLazy | `Both ]

type dlr_run = {
  result : Dlr_check.result;
  time_ns : int;
  cancelled : bool;
}

type sat_run = {
  outcome : Encode.outcome;
  stats : Encode.stats;
  time_ns : int;
  cancelled : bool;
}

type sat_lazy_run = {
  outcome : Encode.outcome;
  cegar_stats : Cegar.stats;
  time_ns : int;
  cancelled : bool;
}

type t = {
  report : Engine.report;
  patterns_time_ns : int;
  plan : Planner.plan option;
  plan_time_ns : int;
  short_circuit : bool;
  dlr : dlr_run option;
  sat : sat_run option;
  sat_lazy : sat_lazy_run option;
  winner : Cost.backend option;
  clean : bool;
  conclusive : bool;
}

let dlr_unsat t =
  match t.dlr with
  | None -> 0
  | Some { result; _ } ->
      List.length (Dlr_check.unsat_types result)
      + List.length (Dlr_check.unsat_roles result)

let sat_no_model t =
  match (t.sat, t.sat_lazy) with
  | Some { outcome = Encode.No_model; _ }, _ -> true
  | _, Some { outcome = Encode.No_model; _ } -> true
  | _ -> false

(* ---- single-backend runs --------------------------------------------- *)

(* Each returns (run, definitive): definitive means the caller can act on
   the verdict without consulting the other backend.  A tableau [Sat] is
   never definitive for strong satisfiability (joint constraints and
   skipped axioms are invisible to per-element queries); an [Unsat] always
   is.  The SAT routes are definitive either way, except on [Timeout]. *)

let run_dlr ?metrics ?tracer ?deadline_ns ?cancel ~budget schema =
  let result, time_ns =
    Metrics.time (fun () ->
        Dlr_check.check ~budget ?deadline_ns ?cancel ?tracer schema)
  in
  let definitive =
    Dlr_check.unsat_types result <> [] || Dlr_check.unsat_roles result <> []
  in
  Option.iter
    (fun m ->
      Metrics.record_backend m ~backend:(Cost.slot Cost.Dlr) ~time_ns ~definitive)
    metrics;
  ({ result; time_ns; cancelled = false }, definitive)

let run_sat ?metrics ?tracer ?deadline_ns ?cancel ?max_fresh ~sat_budget schema =
  let (outcome, stats), time_ns =
    Metrics.time (fun () ->
        let outcome =
          Encode.solve ?max_fresh ~budget:sat_budget ?deadline_ns ?cancel
            ?tracer schema Encode.Strongly_satisfiable
        in
        (* captured here, inside the same task, so a concurrent tableau (or
           a later race) can never interleave with the solver's globals *)
        (outcome, Encode.last_stats ()))
  in
  let definitive =
    match outcome with Encode.Model _ | No_model -> true | Timeout -> false
  in
  Option.iter
    (fun m ->
      Metrics.record_backend m ~backend:(Cost.slot Cost.Sat) ~time_ns ~definitive)
    metrics;
  ({ outcome; stats; time_ns; cancelled = false }, definitive)

let run_sat_lazy ?metrics ?tracer ?deadline_ns ?cancel ?max_fresh ~sat_budget
    schema =
  let (outcome, cegar_stats), time_ns =
    Metrics.time (fun () ->
        let outcome =
          Cegar.solve ?max_fresh ~budget:sat_budget ?deadline_ns ?cancel
            ?tracer schema Encode.Strongly_satisfiable
        in
        (outcome, Cegar.last_stats ()))
  in
  let definitive =
    match outcome with Encode.Model _ | No_model -> true | Timeout -> false
  in
  Option.iter
    (fun m ->
      Metrics.record_backend m ~backend:(Cost.slot Cost.Sat_lazy) ~time_ns
        ~definitive;
      Metrics.record_cegar m ~rounds:cegar_stats.Cegar.rounds
        ~instantiated:cegar_stats.Cegar.instantiated_clauses
        ~learned:cegar_stats.Cegar.learned
        ~restarts:cegar_stats.Cegar.restarts)
    metrics;
  ({ outcome; cegar_stats; time_ns; cancelled = false }, definitive)

(* ---- the race -------------------------------------------------------- *)

(* Created on first use, never at module load: a prefork server forks its
   workers at startup, and OCaml 5 forbids forking after a domain has been
   spawned.  Two domains — one per racer — reused across races for the
   lifetime of the process. *)
let race_pool = lazy (Engine_par.Pool.create 2)

type racer_run =
  | R_dlr of dlr_run
  | R_sat of sat_run
  | R_sat_lazy of sat_lazy_run

let mark_cancelled flag = function
  | R_dlr r -> R_dlr { r with cancelled = flag }
  | R_sat r -> R_sat { r with cancelled = flag }
  | R_sat_lazy r -> R_sat_lazy { r with cancelled = flag }

let run_backend ?metrics ?tracer ?deadline_ns ?cancel ?max_fresh ~budget
    ~sat_budget schema = function
  | Cost.Dlr ->
      let run, definitive =
        run_dlr ?metrics ?tracer ?deadline_ns ?cancel ~budget schema
      in
      (R_dlr run, definitive)
  | Cost.Sat ->
      let run, definitive =
        run_sat ?metrics ?tracer ?deadline_ns ?cancel ?max_fresh ~sat_budget
          schema
      in
      (R_sat run, definitive)
  | Cost.Sat_lazy ->
      let run, definitive =
        run_sat_lazy ?metrics ?tracer ?deadline_ns ?cancel ?max_fresh
          ~sat_budget schema
      in
      (R_sat_lazy run, definitive)

type slot = Pending | Done of racer_run * bool | Failed of exn

(* Race two arbitrary portfolio members: both are submitted to the domain
   pool, the first definitive verdict wins and the loser is cancelled
   through its solver's polling hook.  Both racers are always joined
   before returning — no task outlives its request, and the solvers'
   per-run statistics stay race-free. *)
let race ?metrics ?tracer ?deadline_ns ?max_fresh ~budget ~sat_budget schema
    (ba, bb) =
  let pool = Lazy.force race_pool in
  let m = Mutex.create () in
  let cv = Condition.create () in
  let cancel_a = Atomic.make false in
  let cancel_b = Atomic.make false in
  let slot_a = ref Pending in
  let slot_b = ref Pending in
  let winner = ref None in
  let loser_cancelled = ref false in
  (* Called with [m] held after a racer stored its result: the first
     definitive finisher wins and flips the loser's cancel flag (polled at
     the solvers' amortized deadline-check sites). *)
  let settle which other_pending other_cancel =
    (match (!winner : Cost.backend option) with
    | None ->
        winner := Some which;
        if other_pending () then begin
          Atomic.set other_cancel true;
          loser_cancelled := true
        end
    | Some _ -> ());
    Condition.broadcast cv
  in
  let submit backend my_slot my_cancel other_slot other_cancel =
    Engine_par.Pool.submit pool (fun () ->
        let outcome =
          try
            let run, definitive =
              run_backend ?metrics ?tracer ?deadline_ns
                ~cancel:(fun () -> Atomic.get my_cancel)
                ?max_fresh ~budget ~sat_budget schema backend
            in
            Done (run, definitive)
          with exn -> Failed exn
        in
        Mutex.lock m;
        my_slot := outcome;
        (match outcome with
        | Done (_, true) ->
            settle backend (fun () -> !other_slot = Pending) other_cancel
        | _ -> Condition.broadcast cv);
        Mutex.unlock m)
  in
  submit ba slot_a cancel_a slot_b cancel_b;
  submit bb slot_b cancel_b slot_a cancel_a;
  Mutex.lock m;
  while !slot_a = Pending || !slot_b = Pending do
    Condition.wait cv m
  done;
  let out_a = !slot_a and out_b = !slot_b in
  let w = !winner and cancelled = !loser_cancelled in
  Mutex.unlock m;
  if cancelled then
    Option.iter (fun mx -> Metrics.record_race_cancelled mx) metrics;
  let finish cancel = function
    | Done (run, _) -> mark_cancelled (Atomic.get cancel) run
    | Failed exn -> raise exn
    | Pending -> assert false
  in
  (finish cancel_a out_a, finish cancel_b out_b, w)

(* ---- the orchestrator ------------------------------------------------ *)

let run ?(settings = Settings.default) ?metrics ?tracer ?deadline_ns
    ?(budget = 50_000) ?(sat_budget = 2_000_000) ?max_fresh ?(jobs = 1)
    ~backend schema =
  let report, patterns_time_ns =
    Metrics.time (fun () ->
        if jobs > 1 then
          Engine_par.check ~domains:jobs ~settings ?metrics ?tracer
            ?deadline_ns schema
        else Engine.check ~settings ?metrics ?tracer ?deadline_ns schema)
  in
  let patterns_conclusive = report.Engine.diagnostics <> [] in
  let plan, plan_time_ns =
    match backend with
    | `Dlr | `Sat | `SatLazy | `Both -> (None, 0)
    | `Auto ->
        let plan, t =
          Metrics.time (fun () ->
              Trace.span tracer "planner.decide" (fun () ->
                  let stats = Option.map Metrics.snapshot metrics in
                  let budget_ns =
                    Option.map
                      (fun d ->
                        Int64.to_int (Int64.sub d (Metrics.now_ns ())))
                      deadline_ns
                  in
                  let features = Features.extract schema in
                  Planner.decide ?stats ?budget_ns ~patterns_conclusive
                    features))
        in
        Option.iter
          (fun m ->
            Metrics.record_plan m
              (match plan.Planner.decision with
              | Planner.Patterns_only -> `Patterns_only
              | Planner.Backend Cost.Dlr -> `Backend_dlr
              | Planner.Backend Cost.Sat -> `Backend_sat
              | Planner.Backend Cost.Sat_lazy -> `Backend_sat_lazy
              | Planner.Race _ -> `Race))
          metrics;
        (Some plan, t)
  in
  (* what to run: [`Single bs] runs each backend in [bs] sequentially on
     this domain; [`Race (a, b)] races the pair on the pool. *)
  let strategy =
    match backend with
    | `Dlr -> `Single [ Cost.Dlr ]
    | `Sat -> `Single [ Cost.Sat ]
    | `SatLazy -> `Single [ Cost.Sat_lazy ]
    | `Both -> `Single [ Cost.Dlr; Cost.Sat ]
    | `Auto -> (
        match (Option.get plan).Planner.decision with
        | Planner.Patterns_only -> `Single []
        | Planner.Backend b -> `Single [ b ]
        | Planner.Race (a, b) -> `Race (a, b))
  in
  let runs, winner =
    match strategy with
    | `Race pair ->
        let a, b, w =
          Trace.span tracer "planner.race" (fun () ->
              race ?metrics ?tracer ?deadline_ns ?max_fresh ~budget
                ~sat_budget schema pair)
        in
        ([ a; b ], w)
    | `Single bs ->
        ( List.map
            (fun b ->
              fst
                (run_backend ?metrics ?tracer ?deadline_ns ?max_fresh ~budget
                   ~sat_budget schema b))
            bs,
          None )
  in
  let dlr =
    List.find_map (function R_dlr r -> Some r | _ -> None) runs
  in
  let sat =
    List.find_map (function R_sat r -> Some r | _ -> None) runs
  in
  let sat_lazy =
    List.find_map (function R_sat_lazy r -> Some r | _ -> None) runs
  in
  let short_circuit =
    match backend with `Auto -> patterns_conclusive | _ -> false
  in
  let t =
    {
      report;
      patterns_time_ns;
      plan;
      plan_time_ns;
      short_circuit;
      dlr;
      sat;
      sat_lazy;
      winner;
      clean = false;
      conclusive = false;
    }
  in
  let sat_definitive =
    List.exists
      (function
        | Some (Encode.Model _ | Encode.No_model) -> true
        | Some Encode.Timeout | None -> false)
      [
        Option.map (fun (r : sat_run) -> r.outcome) t.sat;
        Option.map (fun (r : sat_lazy_run) -> r.outcome) t.sat_lazy;
      ]
  in
  let clean =
    report.Engine.diagnostics = [] && dlr_unsat t = 0 && not (sat_no_model t)
  in
  let conclusive = patterns_conclusive || dlr_unsat t > 0 || sat_definitive in
  { t with clean; conclusive }
