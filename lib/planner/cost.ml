module Metrics = Orm_telemetry.Metrics

type backend = Dlr | Sat | Sat_lazy

let all = [ Dlr; Sat; Sat_lazy ]
let slot = function Dlr -> 1 | Sat -> 2 | Sat_lazy -> 3
let name = function Dlr -> "dlr" | Sat -> "sat" | Sat_lazy -> "sat-lazy"

let of_name = function
  | "dlr" -> Some Dlr
  | "sat" -> Some Sat
  | "sat-lazy" -> Some Sat_lazy
  | _ -> None

type estimate = {
  backend : backend;
  static_ns : int;
  observed_p95_ns : int option;
  cost_ns : int;
}

(* Static polynomials, calibrated against the bench corpus (sizes 2–16):
   the tableau answers one query per object type and per role, each roughly
   linear in the translated axiom count; the SAT route pays one encoding
   over the value-pool grid plus a DPLL search whose practical cost on
   these bounded instances tracks variables x clauses.  Both lean
   pessimistic — over-estimating keeps hopeless backends out of tight
   deadlines, and racing covers the slack when the budget is roomy. *)
let static_ns (f : Features.t) = function
  | Dlr ->
      let queries = f.object_types + f.roles in
      let axioms = 1 + f.constraints + f.subtype_edges in
      50_000 + (3_000 * queries * axioms)
  | Sat ->
      let atoms = 1 + f.object_types + (2 * f.fact_types) in
      let clauses = 1 + f.constraints + (2 * f.fact_types) in
      200_000 + (40_000 * atoms * clauses)
  | Sat_lazy ->
      (* lazy grounding never builds the full grid: its cost tracks the
         number of refinement rounds (roughly the constraint count) times
         a per-round solve over the clauses grounded so far — additive in
         the schema dimensions where the eager route is multiplicative.
         The higher constant (seeding, Eval round trips) makes the eager
         encoder the cheaper pick on tiny schemas, exactly as measured. *)
      let atoms = 1 + f.object_types + (2 * f.fact_types) in
      let clauses = 1 + f.constraints + (2 * f.fact_types) in
      400_000 + (60_000 * (atoms + clauses))

let min_observations = 5

let observed_p95 stats b =
  match stats with
  | None -> None
  | Some (s : Metrics.snapshot) -> (
      match
        List.find_opt
          (fun (row : Metrics.pattern_stat) -> row.pattern = slot b)
          s.backends
      with
      | Some row when row.runs >= min_observations -> Some (Metrics.p95_ns row)
      | Some _ | None -> None)

let estimate ?stats f b =
  let static_ns = static_ns f b in
  let observed_p95_ns = observed_p95 stats b in
  let cost_ns =
    match observed_p95_ns with
    | Some p95 -> (static_ns + (3 * p95)) / 4
    | None -> static_ns
  in
  { backend = b; static_ns; observed_p95_ns; cost_ns }

let pp ppf e =
  Format.fprintf ppf "%s: %d ns static%a -> %d ns" (name e.backend) e.static_ns
    (fun ppf -> function
      | None -> ()
      | Some p95 -> Format.fprintf ppf ", %d ns observed p95" p95)
    e.observed_p95_ns e.cost_ns
