(** The shared [reason] orchestrator: patterns first, then whatever
    complete backends the request (or the planner) calls for.

    This is the single implementation behind the CLI's [ormcheck reason],
    the checking service's [reason] method and the differential test
    suite, so all three agree on verdict semantics: [clean] means the
    patterns found nothing, no tableau element came back unsatisfiable and
    SAT did not refute strong satisfiability.

    In [`Auto] mode the {!Planner} picks the strategy.  A {!Planner.Race}
    submits the two chosen backends to a lazily-created two-domain pool
    (lazy because prefork servers must not spawn domains before forking);
    the first {e definitive} verdict — tableau [Unsat], SAT [Model] or
    [No_model] — wins, and the loser is cancelled through the solvers'
    [?cancel] polling hooks.  The race always joins both tasks before
    returning: that keeps the solvers' per-run statistics race-free and
    guarantees no task outlives the request that spawned it. *)

module Engine := Orm_patterns.Engine

type backend_request = [ `Auto | `Dlr | `Sat | `SatLazy | `Both ]

type dlr_run = {
  result : Orm_dlr.Dlr_check.result;
  time_ns : int;
  cancelled : bool;  (** lost a race and was actively cancelled *)
}

type sat_run = {
  outcome : Orm_sat.Encode.outcome;
  stats : Orm_sat.Encode.stats;
  time_ns : int;
  cancelled : bool;
}

type sat_lazy_run = {
  outcome : Orm_sat.Encode.outcome;
  cegar_stats : Orm_sat.Cegar.stats;
      (** refinement rounds, instantiated clauses, learned clauses,
          restarts — surfaced in server responses and [/metrics] *)
  time_ns : int;
  cancelled : bool;
}

type t = {
  report : Engine.report;  (** the pattern engine's verdicts *)
  patterns_time_ns : int;
  plan : Planner.plan option;  (** [Some] iff the request was [`Auto] *)
  plan_time_ns : int;
  short_circuit : bool;
      (** the planner skipped the complete backends because the pattern
          report already proves unsatisfiability *)
  dlr : dlr_run option;
  sat : sat_run option;
  sat_lazy : sat_lazy_run option;
  winner : Cost.backend option;
      (** in a race: who produced the first definitive verdict *)
  clean : bool;
  conclusive : bool;
      (** some definitive evidence exists: a pattern diagnostic, a tableau
          [Unsat], or a SAT [Model]/[No_model] from either grounding *)
}

val dlr_unsat : t -> int
(** Elements the tableau proved unsatisfiable (0 when DLR did not run). *)

val sat_no_model : t -> bool

val run :
  ?settings:Orm_patterns.Settings.t ->
  ?metrics:Orm_telemetry.Metrics.t ->
  ?tracer:Orm_trace.Trace.t ->
  ?deadline_ns:int64 ->
  ?budget:int ->
  ?sat_budget:int ->
  ?max_fresh:int ->
  ?jobs:int ->
  backend:backend_request ->
  Orm.Schema.t ->
  t
(** [run ~backend schema] is the whole reasoning pipeline.  [budget]
    (default 50_000) bounds each tableau query, [sat_budget] (default
    2_000_000) the CDCL search (decisions + propagations — summed across
    refinement rounds for [`SatLazy]); [jobs > 1] fans the pattern engine
    across that many domains first.  Forced backends ([`Dlr] / [`Sat] /
    [`SatLazy] / [`Both]) run unconditionally — even when patterns already
    fired — preserving the side-by-side comparison semantics; only
    [`Auto] short-circuits.  [metrics] receives per-backend latencies
    ({!Orm_telemetry.Metrics.record_backend}) in every mode, CEGAR
    refinement counters for lazy runs, and planner decision counters in
    [`Auto] mode. *)
