open Orm

type t = {
  object_types : int;
  fact_types : int;
  roles : int;
  constraints : int;
  subtype_edges : int;
  subtype_depth : int;
  uniqueness : int;
  mandatory : int;
  frequency : int;
  set_comparisons : int;
  exclusions : int;
  total_subtypes : int;
  rings : int;
  value_constraints : int;
}

(* Longest subtype chain by iterated relaxation over the edge list.  A DAG
   converges in at most [n] rounds; a cycle would relax forever, so rounds
   are capped at [n + 1], which bounds the reported depth instead of
   looping and keeps the extractor total.  Adding edges or types can only
   raise heights (more relaxations, higher cap), so the feature stays
   monotone under growth. *)
let subtype_depth g ~n_types =
  let edges = Subtype_graph.edges g in
  if edges = [] then 0
  else begin
    let h = Hashtbl.create 16 in
    let height t = Option.value ~default:0 (Hashtbl.find_opt h t) in
    let changed = ref true in
    let rounds = ref 0 in
    while !changed && !rounds <= n_types do
      changed := false;
      incr rounds;
      List.iter
        (fun (sub, super) ->
          let d = height super + 1 in
          if d > height sub then begin
            Hashtbl.replace h sub d;
            changed := true
          end)
        edges
    done;
    Hashtbl.fold (fun _ d acc -> max acc d) h 0
  end

let extract schema =
  let uniqueness = ref 0
  and mandatory = ref 0
  and frequency = ref 0
  and set_comparisons = ref 0
  and exclusions = ref 0
  and total_subtypes = ref 0
  and rings = ref 0
  and value_constraints = ref 0 in
  List.iter
    (fun (c : Constraints.t) ->
      match c.body with
      | Mandatory _ | Disjunctive_mandatory _ -> incr mandatory
      | Uniqueness _ | External_uniqueness _ -> incr uniqueness
      | Frequency _ -> incr frequency
      | Subset _ | Equality _ -> incr set_comparisons
      | Role_exclusion _ | Type_exclusion _ -> incr exclusions
      | Total_subtypes _ -> incr total_subtypes
      | Ring _ -> incr rings
      | Value_constraint _ -> incr value_constraints)
    (Schema.constraints schema);
  let g = Schema.graph schema in
  let object_types = List.length (Schema.object_types schema) in
  {
    object_types;
    fact_types = List.length (Schema.fact_types schema);
    roles = List.length (Schema.all_roles schema);
    constraints = List.length (Schema.constraints schema);
    subtype_edges = List.length (Subtype_graph.edges g);
    subtype_depth = subtype_depth g ~n_types:object_types;
    uniqueness = !uniqueness;
    mandatory = !mandatory;
    frequency = !frequency;
    set_comparisons = !set_comparisons;
    exclusions = !exclusions;
    total_subtypes = !total_subtypes;
    rings = !rings;
    value_constraints = !value_constraints;
  }

let non_dlr f = f.rings + f.value_constraints
let size f = f.object_types + f.fact_types + f.constraints

let to_fields f =
  [
    ("object_types", f.object_types);
    ("fact_types", f.fact_types);
    ("roles", f.roles);
    ("constraints", f.constraints);
    ("subtype_edges", f.subtype_edges);
    ("subtype_depth", f.subtype_depth);
    ("uniqueness", f.uniqueness);
    ("mandatory", f.mandatory);
    ("frequency", f.frequency);
    ("set_comparisons", f.set_comparisons);
    ("exclusions", f.exclusions);
    ("total_subtypes", f.total_subtypes);
    ("rings", f.rings);
    ("value_constraints", f.value_constraints);
  ]

let pp ppf f =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf (k, v) -> Format.fprintf ppf "%s=%d" k v))
    (to_fields f)
