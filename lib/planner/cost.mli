(** The planner's cost model: how long is each complete backend likely to
    take on a schema with these features?

    Estimates start from a static polynomial in the feature counts
    (documented in [docs/PLANNER.md]) and are refined online: once a
    backend has enough recorded runs in the {!Orm_telemetry.Metrics}
    per-backend latency histograms, the observed p95 is blended in with
    three times the weight of the static guess.  The estimates only need to
    be right about {e admission} — "does this backend fit in the remaining
    deadline budget?" — not about absolute wall time. *)

type backend = Dlr | Sat | Sat_lazy

val all : backend list

val slot : backend -> int
(** The backend's {!Orm_telemetry.Metrics.record_backend} slot. *)

val name : backend -> string
(** ["dlr"] / ["sat"] / ["sat-lazy"] — the wire and CLI spelling. *)

val of_name : string -> backend option

type estimate = {
  backend : backend;
  static_ns : int;  (** the polynomial alone *)
  observed_p95_ns : int option;
      (** p95 of recorded runs, once at least {!min_observations} exist *)
  cost_ns : int;  (** the blend — what admission decisions use *)
}

val min_observations : int
(** Recorded runs a backend needs before its histogram outvotes the static
    model (5). *)

val estimate :
  ?stats:Orm_telemetry.Metrics.snapshot -> Features.t -> backend -> estimate

val pp : Format.formatter -> estimate -> unit
