(** Schema features the planner's cost model is built from.

    Every field is a non-negative count, and every field is monotone under
    schema growth: adding an object type, fact type, subtype edge or
    constraint to a schema never decreases any feature (the property/fuzz
    suite enforces this).  Extraction is total — it never raises, whatever
    the generator produces — because a planner that crashes on exotic input
    is worse than one that mispredicts. *)

open Orm

type t = {
  object_types : int;
  fact_types : int;  (** all binary, per the paper's restriction *)
  roles : int;  (** 2 x fact types — the tableau queries each one *)
  constraints : int;  (** total constraint count, all kinds *)
  subtype_edges : int;
  subtype_depth : int;
      (** longest subtype chain (edges); cycles are counted capped at the
          number of object types rather than looping *)
  uniqueness : int;  (** internal + external uniqueness *)
  mandatory : int;  (** simple + disjunctive mandatory *)
  frequency : int;
  set_comparisons : int;  (** subset + equality *)
  exclusions : int;  (** role + type exclusions *)
  total_subtypes : int;
  rings : int;  (** outside the DLR fragment *)
  value_constraints : int;  (** nominals — outside the DLR fragment *)
}

val extract : Schema.t -> t

val non_dlr : t -> int
(** [rings + value_constraints]: constructs the DLR mapping skips, so a
    positive count means tableau [Sat] verdicts are only relative to the
    translated fragment. *)

val size : t -> int
(** [object_types + fact_types + constraints] — the coarse schema size the
    monotonicity property is stated against. *)

val to_fields : t -> (string * int) list
(** Field-name/value pairs, in declaration order (for JSON and logs). *)

val pp : Format.formatter -> t -> unit
