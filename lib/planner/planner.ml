module J = Orm_json

type decision =
  | Patterns_only
  | Backend of Cost.backend
  | Race of Cost.backend * Cost.backend

let decision_name = function
  | Patterns_only -> "patterns_only"
  | Backend b -> Cost.name b
  | Race (a, b) -> Printf.sprintf "race:%s+%s" (Cost.name a) (Cost.name b)

type plan = {
  decision : decision;
  features : Features.t;
  dlr : Cost.estimate;
  sat : Cost.estimate;
  budget_ns : int option;
  admits_dlr : bool;
  admits_sat : bool;
}

let admits budget cost =
  match budget with None -> true | Some b -> cost <= b

let decide ?stats ?budget_ns ~patterns_conclusive features =
  let dlr = Cost.estimate ?stats features Cost.Dlr in
  let sat = Cost.estimate ?stats features Cost.Sat in
  let admits_dlr = admits budget_ns dlr.cost_ns in
  let admits_sat = admits budget_ns sat.cost_ns in
  let decision =
    if patterns_conclusive then Patterns_only
    else if admits_dlr && admits_sat then Race (Cost.Dlr, Cost.Sat)
    else if admits_sat then Backend Cost.Sat
    else if admits_dlr then Backend Cost.Dlr
    else Backend (if dlr.cost_ns <= sat.cost_ns then Cost.Dlr else Cost.Sat)
  in
  { decision; features; dlr; sat; budget_ns; admits_dlr; admits_sat }

let estimate_fields (e : Cost.estimate) =
  J.Obj
    ([ ("static_ns", J.Int e.static_ns) ]
    @ (match e.observed_p95_ns with
      | Some p95 -> [ ("observed_p95_ns", J.Int p95) ]
      | None -> [])
    @ [ ("cost_ns", J.Int e.cost_ns) ])

let to_fields plan =
  [
    ("decision", J.String (decision_name plan.decision));
    ( "features",
      J.Obj (List.map (fun (k, v) -> (k, J.Int v)) (Features.to_fields plan.features))
    );
    ( "estimates",
      J.Obj
        [
          ("dlr", estimate_fields plan.dlr); ("sat", estimate_fields plan.sat);
        ] );
    ( "budget_ns",
      match plan.budget_ns with Some b -> J.Int b | None -> J.Null );
    ("admits_dlr", J.Bool plan.admits_dlr);
    ("admits_sat", J.Bool plan.admits_sat);
  ]
