module J = Orm_json

type decision =
  | Patterns_only
  | Backend of Cost.backend
  | Race of Cost.backend * Cost.backend

let decision_name = function
  | Patterns_only -> "patterns_only"
  | Backend b -> Cost.name b
  | Race (a, b) -> Printf.sprintf "race:%s+%s" (Cost.name a) (Cost.name b)

type plan = {
  decision : decision;
  features : Features.t;
  estimates : Cost.estimate list;  (** one per {!Cost.all}, same order *)
  budget_ns : int option;
  admitted : Cost.backend list;  (** estimates within the budget *)
}

let estimate_for plan b =
  List.find (fun (e : Cost.estimate) -> e.backend = b) plan.estimates

let admits plan b = List.mem b plan.admitted

let admitted_by budget (e : Cost.estimate) =
  match budget with None -> true | Some b -> e.cost_ns <= b

(* The decision rule, generalized from two backends to the whole
   portfolio: race the two cheapest backends the budget admits; with one
   admitted run it alone; with none, run the cheapest overall — a verdict
   after the deadline still beats no verdict. *)
let decide ?stats ?budget_ns ~patterns_conclusive features =
  let estimates = List.map (Cost.estimate ?stats features) Cost.all in
  let admitted_estimates = List.filter (admitted_by budget_ns) estimates in
  let admitted = List.map (fun (e : Cost.estimate) -> e.backend) admitted_estimates in
  let by_cost es =
    List.sort
      (fun (a : Cost.estimate) (b : Cost.estimate) ->
        compare (a.cost_ns, Cost.slot a.backend) (b.cost_ns, Cost.slot b.backend))
      es
  in
  let decision =
    if patterns_conclusive then Patterns_only
    else
      match by_cost admitted_estimates with
      | a :: b :: _ -> Race (a.backend, b.backend)
      | [ a ] -> Backend a.backend
      | [] -> Backend (List.hd (by_cost estimates)).backend
  in
  { decision; features; estimates; budget_ns; admitted }

let estimate_fields (e : Cost.estimate) =
  J.Obj
    ([ ("static_ns", J.Int e.static_ns) ]
    @ (match e.observed_p95_ns with
      | Some p95 -> [ ("observed_p95_ns", J.Int p95) ]
      | None -> [])
    @ [ ("cost_ns", J.Int e.cost_ns) ])

let to_fields plan =
  [
    ("decision", J.String (decision_name plan.decision));
    ( "features",
      J.Obj (List.map (fun (k, v) -> (k, J.Int v)) (Features.to_fields plan.features))
    );
    ( "estimates",
      J.Obj
        (List.map
           (fun (e : Cost.estimate) -> (Cost.name e.backend, estimate_fields e))
           plan.estimates) );
    ( "budget_ns",
      match plan.budget_ns with Some b -> J.Int b | None -> J.Null );
    ( "admitted",
      J.List (List.map (fun b -> J.String (Cost.name b)) plan.admitted) );
  ]
