open Orm

type element_verdict = {
  element : [ `Type of Ids.object_type | `Role of Ids.role ];
  verdict : Tableau.verdict;
}

type result = {
  mapping : Mapping.t;
  verdicts : element_verdict list;
  complete : bool;
}

module Trace = Orm_trace.Trace

let check ?budget ?deadline_ns ?cancel ?tracer schema =
  let mapping =
    Trace.span tracer "dlr.translate" (fun () -> Mapping.translate schema)
  in
  let sat c =
    Tableau.satisfiable ?budget ?deadline_ns ?cancel ?tracer mapping.tbox c
  in
  let type_verdicts =
    List.map
      (fun t ->
        Trace.span tracer "dlr.query.type" (fun () ->
            { element = `Type t; verdict = sat (Mapping.concept_of_type t) }))
      (Schema.object_types schema)
  in
  let role_verdicts =
    List.map
      (fun r ->
        Trace.span tracer "dlr.query.role" (fun () ->
            { element = `Role r; verdict = sat (Mapping.plays r) }))
      (Schema.all_roles schema)
  in
  {
    mapping;
    verdicts = type_verdicts @ role_verdicts;
    complete = mapping.skipped = [];
  }

let unsat_types result =
  List.filter_map
    (fun v ->
      match (v.element, v.verdict) with
      | `Type t, Tableau.Unsat -> Some t
      | _ -> None)
    result.verdicts

let unsat_roles result =
  List.filter_map
    (fun v ->
      match (v.element, v.verdict) with
      | `Role r, Tableau.Unsat -> Some r
      | _ -> None)
    result.verdicts

let pp ppf result =
  Format.fprintf ppf "@[<v>translation %s (%d axioms, %d skipped)@,"
    (if result.complete then "complete" else "partial")
    (List.length result.mapping.tbox)
    (List.length result.mapping.skipped);
  List.iter
    (fun v ->
      let name =
        match v.element with
        | `Type t -> "type " ^ t
        | `Role r -> "role " ^ Ids.role_to_string r
      in
      Format.fprintf ppf "%s: %a@," name Tableau.pp_verdict v.verdict)
    result.verdicts;
  Format.fprintf ppf "@]"
