(** A tableau-based concept-satisfiability checker for ALCIN TBoxes.

    This plays the part RACER plays in the paper's Section 4: a complete
    (for the mapped fragment) but worst-case exponential decision procedure
    against which the pattern engine's speed is compared.  Standard
    completion rules for ⊓, ⊔, ∃, ∀ and unqualified ≥/≤ restrictions, with
    GCIs internalized as universal constraints, role-inclusion closure on
    edges, and pairwise blocking (required in the presence of both inverse
    roles and number restrictions).  A node budget bounds pathological
    inputs; exceeding it yields [Unknown] rather than a wrong answer. *)

type verdict = Sat | Unsat | Unknown

val pp_verdict : Format.formatter -> verdict -> unit

val satisfiable :
  ?budget:int ->
  ?deadline_ns:int64 ->
  ?cancel:(unit -> bool) ->
  ?tracer:Orm_trace.Trace.t ->
  Syntax.tbox ->
  Syntax.concept ->
  verdict
(** [satisfiable tbox c] decides whether some model of [tbox] gives [c] a
    non-empty extension.  [budget] (default 50_000) bounds rule
    applications; [deadline_ns] is an absolute
    {!Orm_telemetry.Metrics.now_ns} instant past which the search gives up
    with [Unknown], polled every few dozen rule applications — the
    mechanism that lets a serving process abandon a worst-case-exponential
    query without killing anything.  [cancel], polled at the same sites,
    gives up with [Unknown] too once it returns [true] — how the planner's
    portfolio race stops a tableau that lost to the SAT backend.

    [tracer] records a [tableau.satisfiable] span enclosing one span per
    expansion phase ([tableau.conj] / [disj] / [atmost] / [forall] /
    [exists] / [atleast]), instant events at every branch point and clash,
    and [tableau.nodes] / [branches] / [clashes] counter tracks — the
    paper's worst-case-exponential half made visible step by step. *)

val stats_last_rules : unit -> int
(** Rule applications used by the most recent {!satisfiable} call. *)
