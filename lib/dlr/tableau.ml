open Syntax
module Trace = Orm_trace.Trace
module Log = Orm_trace.Log

type verdict = Sat | Unsat | Unknown

let pp_verdict ppf = function
  | Sat -> Format.pp_print_string ppf "satisfiable"
  | Unsat -> Format.pp_print_string ppf "unsatisfiable"
  | Unknown -> Format.pp_print_string ppf "unknown (budget exceeded)"

exception Give_up

module Imap = Map.Make (Int)

type state = {
  labels : concept list Imap.t;  (* node -> NNF concepts *)
  edges : (int * role * int) list;  (* creation-directed edges *)
  parent : int Imap.t;  (* tree parent of non-root nodes *)
  distinct : (int * int) list;  (* pairwise-distinct node pairs *)
  next : int;
}

let rules_used = ref 0
let stats_last_rules () = !rules_used

let label st x = Option.value ~default:[] (Imap.find_opt x st.labels)
let mem_concept st x c = List.exists (fun d -> compare_concept c d = 0) (label st x)

let add_concepts st x cs =
  let fresh = List.filter (fun c -> not (mem_concept st x c)) cs in
  if fresh = [] then None
  else Some { st with labels = Imap.add x (fresh @ label st x) st.labels }

let are_distinct st a b =
  List.mem (a, b) st.distinct || List.mem (b, a) st.distinct

(* Role-inclusion closure: all super-roles of [r], including [r] itself.
   An inclusion r ⊑ s also closes r⁻ ⊑ s⁻. *)
let super_roles inclusions r =
  let step r =
    List.filter_map
      (fun (sub, super) ->
        if equal_role sub r then Some super
        else if equal_role (inv sub) r then Some (inv super)
        else None)
      inclusions
  in
  let rec closure frontier seen =
    match frontier with
    | [] -> seen
    | x :: rest ->
        let fresh =
          List.filter (fun s -> not (List.exists (equal_role s) seen)) (step x)
        in
        closure (fresh @ rest) (fresh @ seen)
  in
  closure [ r ] [ r ]

(* Neighbours of [x] for role [r]: successors created under a sub-role of
   [r], and predecessors created under a sub-role of [r⁻]. *)
let neighbours inclusions st r x =
  List.filter_map
    (fun (a, s, b) ->
      if a = x && List.exists (equal_role r) (super_roles inclusions s) then Some b
      else if b = x && List.exists (equal_role r) (super_roles inclusions (inv s))
      then Some a
      else None)
    st.edges
  |> List.sort_uniq Int.compare

let ancestors st x =
  let rec loop x acc =
    match Imap.find_opt x st.parent with
    | None -> List.rev acc
    | Some p -> loop p (p :: acc)
  in
  loop x []

let same_label st a b =
  let la = List.sort_uniq compare_concept (label st a) in
  let lb = List.sort_uniq compare_concept (label st b) in
  la = lb

let edge_role st x =
  (* The role under which tree node [x] was created. *)
  List.find_map
    (fun (a, r, b) ->
      if b = x && Imap.find_opt x st.parent = Some a then Some r else None)
    st.edges

(* Pairwise blocking: x (with tree predecessor x') is blocked by an
   ancestor y (with predecessor y') when the labels of x/y and x'/y' agree
   and both were reached under the same role. *)
let directly_blocked st x =
  match Imap.find_opt x st.parent with
  | None -> false
  | Some x' ->
      List.exists
        (fun y ->
          match Imap.find_opt y st.parent with
          | None -> false
          | Some y' ->
              y <> x && same_label st x y && same_label st x' y'
              && (match (edge_role st x, edge_role st y) with
                 | Some r1, Some r2 -> equal_role r1 r2
                 | _ -> false))
        (ancestors st x)

let blocked st x =
  directly_blocked st x || List.exists (directly_blocked st) (ancestors st x)

(* Does [x] have [n] pairwise-distinct members among [nodes]? *)
let has_n_distinct st n nodes =
  let rec pick chosen = function
    | _ when List.length chosen = n -> true
    | [] -> false
    | y :: rest ->
        (if List.for_all (fun z -> are_distinct st y z) chosen then
           pick (y :: chosen) rest
         else false)
        || pick chosen rest
  in
  if n = 0 then true else pick [] nodes

let has_clash st x =
  List.exists
    (fun c ->
      match c with
      | Bottom -> true
      | Not (Atomic a) -> mem_concept st x (Atomic a)
      | _ -> false)
    (label st x)

(* Merge node [y] into [z]: [z] inherits the label and edges of [y]. *)
let merge st y z =
  let rename n = if n = y then z else n in
  {
    st with
    labels = Imap.add z (label st z @ label st y) (Imap.remove y st.labels);
    edges =
      List.filter_map
        (fun (a, r, b) ->
          let a = rename a and b = rename b in
          if a = z && b = z then None else Some (a, r, b))
        st.edges;
    parent =
      Imap.fold
        (fun n p acc -> if n = y then acc else Imap.add n (rename p) acc)
        st.parent Imap.empty;
    distinct = List.map (fun (a, b) -> (rename a, rename b)) st.distinct;
  }

let fresh_node st concepts parent via =
  let x = st.next in
  ( x,
    {
      st with
      labels = Imap.add x concepts st.labels;
      edges = (parent, via, x) :: st.edges;
      parent = Imap.add x parent st.parent;
      next = x + 1;
    } )

type step =
  | Done  (* no rule applies *)
  | Clash
  | Next of state
  | Branch of state list

let nodes_of st = List.map fst (Imap.bindings st.labels)

let find_step ?tracer universal inclusions st =
  (* Each expansion phase (one rule family) gets its own span so a trace
     shows where a blow-up spends its time — the ≤-rule's merge search and
     the blocking test inside the generating rules are the usual suspects. *)
  let phase name rule =
    match tracer with None -> rule () | Some tr -> Trace.with_span tr name rule
  in
  let try_node x =
    if has_clash st x then Some Clash
    else
      let lbl = label st x in
      (* ⊓-rule *)
      let conj_rule () =
        List.find_map
          (fun c ->
            match c with
            | And cs -> Option.map (fun st -> Next st) (add_concepts st x cs)
            | _ -> None)
          lbl
      in
      let disj_rule () =
        List.find_map
          (fun c ->
            match c with
            | Or cs when not (List.exists (mem_concept st x) cs) ->
                Some
                  (Branch
                     (List.filter_map (fun d -> add_concepts st x [ d ]) cs))
            | _ -> None)
          lbl
      in
      (* ≤-rule: merge two non-distinct neighbours, or clash. *)
      let atmost_rule () =
        List.find_map
          (fun c ->
            match c with
            | At_most (n, r) ->
                let ns = neighbours inclusions st r x in
                if List.length ns <= n then None
                else if has_n_distinct st (n + 1) ns then Some Clash
                else
                  let merges =
                    List.concat_map
                      (fun y ->
                        List.filter_map
                          (fun z ->
                            if y < z && not (are_distinct st y z) then
                              Some (merge st z y)
                            else None)
                          ns)
                      ns
                  in
                  if merges = [] then Some Clash else Some (Branch merges)
            | _ -> None)
          lbl
      in
      (* ∀-rule *)
      let forall_rule () =
        List.find_map
          (fun c ->
            match c with
            | Forall (r, d) ->
                List.find_map
                  (fun y -> Option.map (fun st -> Next st) (add_concepts st y [ d ]))
                  (neighbours inclusions st r x)
            | _ -> None)
          lbl
      in
      (* ∃-rule (generating; skipped when blocked) *)
      let exists_rule () =
        if blocked st x then None
        else
          List.find_map
            (fun c ->
              match c with
              | Exists (r, d) ->
                  let ns = neighbours inclusions st r x in
                  if List.exists (fun y -> mem_concept st y d) ns then None
                  else
                    let _, st = fresh_node st (d :: universal) x r in
                    Some (Next st)
              | _ -> None)
            lbl
      in
      (* ≥-rule (generating; skipped when blocked) *)
      let atleast_rule () =
        if blocked st x then None
        else
          List.find_map
            (fun c ->
              match c with
              | At_least (n, r) ->
                  let ns = neighbours inclusions st r x in
                  if has_n_distinct st n ns then None
                  else
                    let rec spawn k st created =
                      if k = 0 then (st, created)
                      else
                        let y, st = fresh_node st (Top :: universal) x r in
                        spawn (k - 1) st (y :: created)
                    in
                    let st, created = spawn n st [] in
                    let distinct =
                      List.concat_map
                        (fun y -> List.filter_map (fun z -> if y < z then Some (y, z) else None) created)
                        created
                    in
                    Some (Next { st with distinct = distinct @ st.distinct })
              | _ -> None)
            lbl
      in
      match phase "tableau.conj" conj_rule with
      | Some s -> Some s
      | None -> (
          match phase "tableau.disj" disj_rule with
          | Some s -> Some s
          | None -> (
              match phase "tableau.atmost" atmost_rule with
              | Some s -> Some s
              | None -> (
                  match phase "tableau.forall" forall_rule with
                  | Some s -> Some s
                  | None -> (
                      match phase "tableau.exists" exists_rule with
                      | Some s -> Some s
                      | None -> phase "tableau.atleast" atleast_rule))))
  in
  let rec scan = function
    | [] -> Done
    | x :: rest -> ( match try_node x with Some s -> s | None -> scan rest)
  in
  scan (nodes_of st)

(* Deadline polling is amortized: one monotonic-clock read every
   [deadline_poll_mask + 1] rule applications, so a deadline costs nothing
   measurable on the per-rule hot path. *)
let deadline_poll_mask = 127

let satisfiable ?(budget = 50_000) ?deadline_ns ?cancel ?tracer tbox c =
  rules_used := 0;
  let expired =
    let past_deadline =
      match deadline_ns with
      | None -> fun () -> false
      | Some d -> fun () -> Orm_telemetry.Metrics.now_ns () > d
    in
    match cancel with
    | None -> past_deadline
    | Some cancelled -> fun () -> cancelled () || past_deadline ()
  in
  let universal =
    List.filter_map
      (function
        | Subsumes (lhs, rhs) -> Some (nnf (Or [ neg lhs; rhs ]))
        | Role_subsumes _ -> None)
      tbox
  in
  let inclusions =
    List.filter_map
      (function Role_subsumes (r, s) -> Some (r, s) | Subsumes _ -> None)
      tbox
  in
  let root_label = nnf c :: universal in
  let init =
    {
      labels = Imap.singleton 0 root_label;
      edges = [];
      parent = Imap.empty;
      distinct = [];
      next = 1;
    }
  in
  let branches = ref 0 and clashes = ref 0 in
  let rec expand st =
    incr rules_used;
    if !rules_used > budget then raise Give_up;
    if !rules_used land deadline_poll_mask = 0 && expired () then raise Give_up;
    Option.iter (fun tr -> Trace.counter tr "tableau.nodes" st.next) tracer;
    match find_step ?tracer universal inclusions st with
    | Done -> Sat
    | Clash ->
        incr clashes;
        Option.iter
          (fun tr ->
            Trace.instant tr "tableau.clash";
            Trace.counter tr "tableau.clashes" !clashes)
          tracer;
        Unsat
    | Next st -> expand st
    | Branch alternatives ->
        incr branches;
        Option.iter
          (fun tr ->
            Trace.instant tr "tableau.branch";
            Trace.counter tr "tableau.branches" !branches)
          tracer;
        let rec try_all = function
          | [] -> Unsat
          | st :: rest -> ( match expand st with Sat -> Sat | Unsat | Unknown -> try_all rest)
        in
        try_all alternatives
  in
  let run () =
    try if expired () then Unknown else expand init with Give_up -> Unknown
  in
  match tracer with
  | None -> run ()
  | Some tr ->
      let verdict = Trace.with_span tr "tableau.satisfiable" run in
      if verdict = Unknown then
        Log.warn "tableau: budget of %d rule applications exceeded" budget;
      verdict
