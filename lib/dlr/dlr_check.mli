(** End-to-end DL route: translate an ORM schema and decide concept/role
    satisfiability with the tableau — the paper's "complete procedure"
    pipeline (ORM → DLR → DL reasoner), with the same caveats the paper
    states: constructs outside the mapped fragment are skipped, so the
    verdicts are complete only relative to the translated axioms. *)

open Orm

type element_verdict = {
  element : [ `Type of Ids.object_type | `Role of Ids.role ];
  verdict : Tableau.verdict;
}

type result = {
  mapping : Mapping.t;
  verdicts : element_verdict list;
  complete : bool;
      (** [false] when some constraint could not be translated — an [Unsat]
          is then still definitive, but a [Sat] is only relative to the
          translated fragment *)
}

val check :
  ?budget:int ->
  ?deadline_ns:int64 ->
  ?cancel:(unit -> bool) ->
  ?tracer:Orm_trace.Trace.t ->
  Schema.t ->
  result
(** Translates the schema and queries the tableau for every object type
    ([Atomic t]) and every role ([∃f.⊤] / [∃f⁻.⊤]).  [deadline_ns]
    (absolute, {!Orm_telemetry.Metrics.now_ns} scale) is forwarded to every
    tableau query: once it passes, the remaining queries all come back
    [Unknown] almost immediately, so a caller under a deadline gets a
    partial-but-honest result instead of a stuck process.  [cancel] works
    the same way through the tableau's poll sites — once it flips, every
    remaining query returns [Unknown] at its first poll, which is what lets
    the planner's race abandon a losing DLR run mid-schema.  [tracer] wraps
    the translation in a [dlr.translate] span and each query in a
    [dlr.query.type] / [dlr.query.role] span, with the tableau's own spans
    and counters nested inside. *)

val unsat_types : result -> Ids.object_type list
val unsat_roles : result -> Ids.role list
val pp : Format.formatter -> result -> unit
