(** An interactive modeling session with incremental re-validation.

    The session keeps one diagnostic cache per pattern; applying an edit
    re-runs only the patterns {!Edit.affected_patterns} names and reuses the
    cached diagnostics of the rest, then recomputes the (cheap) propagation
    closure.  The test suite verifies that an incrementally maintained
    report always coincides with a from-scratch {!Orm_patterns.Engine.check}
    — and the benchmark harness measures the latency gap, which is what
    makes the paper's "interactive modeling" use case viable on large
    schemas. *)

open Orm

type t

val create :
  ?settings:Orm_patterns.Settings.t ->
  ?metrics:Orm_telemetry.Metrics.t ->
  ?tracer:Orm_trace.Trace.t ->
  Schema.t ->
  t
(** Fresh session; performs one full check.  When [metrics] is given, every
    subsequent {!apply} records which pattern results were served from the
    cache ([record_cache_hit]) versus recomputed ([record_cache_miss]), on
    top of the engine's own per-pattern timers; the initial full check
    counts as all misses.  When [tracer] is given, the session records
    [session.create] / [session.apply] spans and per-edit
    [session.cache_hits] / [session.cache_misses] counter samples. *)

val schema : t -> Schema.t
val settings : t -> Orm_patterns.Settings.t

val report : t -> Orm_patterns.Engine.report
(** The current diagnostics (always up to date after {!apply}). *)

val apply : Edit.t -> t -> t
(** Applies the edit and incrementally re-validates. *)

val undo : t -> t option
(** Reverts the most recent edit ([None] on a fresh session). *)

val history : t -> Edit.t list
(** Edits applied so far, oldest first. *)

val last_rechecked : t -> int list
(** The patterns the most recent {!apply} re-ran (diagnostics for the
    others came from the cache). *)

val is_clean : t -> bool
(** No diagnostics outstanding. *)
