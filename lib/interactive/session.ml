open Orm
module Engine = Orm_patterns.Engine
module Settings = Orm_patterns.Settings
module Diagnostic = Orm_patterns.Diagnostic
module Metrics = Orm_telemetry.Metrics

module Imap = Map.Make (Int)

type t = {
  schema : Schema.t;
  session_settings : Settings.t;
  metrics : Metrics.t option;
  cache : Diagnostic.t list Imap.t;  (* pattern number -> its diagnostics *)
  report : Engine.report;
  past : (Edit.t * t) list;  (* newest first: edit together with the state before it *)
  last_rechecked : int list;
}

let enabled settings = List.sort_uniq Int.compare settings.Settings.enabled

let rebuild_report ?metrics settings schema cache =
  let diagnostics = List.concat_map snd (Imap.bindings cache) in
  Engine.assemble ~settings ?metrics schema diagnostics

let full_cache ?metrics settings schema =
  List.fold_left
    (fun cache n -> Imap.add n (Engine.run_pattern n ~settings ?metrics schema) cache)
    Imap.empty (enabled settings)

let create ?(settings = Settings.default) ?metrics schema =
  let cache = full_cache ?metrics settings schema in
  Option.iter
    (fun m -> Metrics.record_cache_miss m (List.length (enabled settings)))
    metrics;
  {
    schema;
    session_settings = settings;
    metrics;
    cache;
    report = rebuild_report ?metrics settings schema cache;
    past = [];
    last_rechecked = enabled settings;
  }

let schema t = t.schema
let settings t = t.session_settings
let report t = t.report

let apply edit t =
  let affected =
    List.filter
      (fun n -> List.mem n (enabled t.session_settings))
      (Edit.affected_patterns t.schema edit)
  in
  Option.iter
    (fun m ->
      Metrics.record_cache_miss m (List.length affected);
      Metrics.record_cache_hit m
        (List.length (enabled t.session_settings) - List.length affected))
    t.metrics;
  let schema = Edit.apply edit t.schema in
  let cache =
    List.fold_left
      (fun cache n ->
        Imap.add n
          (Engine.run_pattern n ~settings:t.session_settings ?metrics:t.metrics schema)
          cache)
      t.cache affected
  in
  {
    schema;
    session_settings = t.session_settings;
    metrics = t.metrics;
    cache;
    report = rebuild_report ?metrics:t.metrics t.session_settings schema cache;
    past = (edit, t) :: t.past;
    last_rechecked = affected;
  }

let undo t = match t.past with [] -> None | (_, before) :: _ -> Some before

let history t = List.rev_map fst t.past

let last_rechecked t = t.last_rechecked

let is_clean t = t.report.diagnostics = []
