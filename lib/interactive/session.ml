open Orm
module Engine = Orm_patterns.Engine
module Settings = Orm_patterns.Settings
module Diagnostic = Orm_patterns.Diagnostic
module Metrics = Orm_telemetry.Metrics
module Trace = Orm_trace.Trace
module Log = Orm_trace.Log

module Imap = Map.Make (Int)

type t = {
  schema : Schema.t;
  session_settings : Settings.t;
  metrics : Metrics.t option;
  tracer : Trace.t option;
  cache : Diagnostic.t list Imap.t;  (* pattern number -> its diagnostics *)
  report : Engine.report;
  past : (Edit.t * t) list;  (* newest first: edit together with the state before it *)
  last_rechecked : int list;
}

let enabled settings = List.sort_uniq Int.compare settings.Settings.enabled

let rebuild_report ?metrics ?tracer settings schema cache =
  let diagnostics = List.concat_map snd (Imap.bindings cache) in
  Engine.assemble ~settings ?metrics ?tracer schema diagnostics

let full_cache ?metrics ?tracer settings schema =
  List.fold_left
    (fun cache n ->
      Imap.add n (Engine.run_pattern n ~settings ?metrics ?tracer schema) cache)
    Imap.empty (enabled settings)

let create ?(settings = Settings.default) ?metrics ?tracer schema =
  Option.iter (fun tr -> Trace.begin_span tr "session.create") tracer;
  let cache = full_cache ?metrics ?tracer settings schema in
  Option.iter
    (fun m -> Metrics.record_cache_miss m (List.length (enabled settings)))
    metrics;
  let t =
    {
      schema;
      session_settings = settings;
      metrics;
      tracer;
      cache;
      report = rebuild_report ?metrics ?tracer settings schema cache;
      past = [];
      last_rechecked = enabled settings;
    }
  in
  Option.iter (fun tr -> Trace.end_span tr "session.create") tracer;
  t

let schema t = t.schema
let settings t = t.session_settings
let report t = t.report

let apply edit t =
  Option.iter (fun tr -> Trace.begin_span tr "session.apply") t.tracer;
  let affected =
    List.filter
      (fun n -> List.mem n (enabled t.session_settings))
      (Edit.affected_patterns t.schema edit)
  in
  let hits = List.length (enabled t.session_settings) - List.length affected in
  Option.iter
    (fun m ->
      Metrics.record_cache_miss m (List.length affected);
      Metrics.record_cache_hit m hits)
    t.metrics;
  Option.iter
    (fun tr ->
      Trace.counter tr "session.cache_hits" hits;
      Trace.counter tr "session.cache_misses" (List.length affected))
    t.tracer;
  Log.debug "session: edit re-checks %d pattern(s), %d cached"
    (List.length affected) hits;
  let schema = Edit.apply edit t.schema in
  let cache =
    List.fold_left
      (fun cache n ->
        Imap.add n
          (Engine.run_pattern n ~settings:t.session_settings ?metrics:t.metrics
             ?tracer:t.tracer schema)
          cache)
      t.cache affected
  in
  let t' =
    {
      schema;
      session_settings = t.session_settings;
      metrics = t.metrics;
      tracer = t.tracer;
      cache;
      report =
        rebuild_report ?metrics:t.metrics ?tracer:t.tracer t.session_settings schema
          cache;
      past = (edit, t) :: t.past;
      last_rechecked = affected;
    }
  in
  Option.iter (fun tr -> Trace.end_span tr "session.apply") t.tracer;
  t'

let undo t = match t.past with [] -> None | (_, before) :: _ -> Some before

let history t = List.rev_map fst t.past

let last_rechecked t = t.last_rechecked

let is_clean t = t.report.diagnostics = []
