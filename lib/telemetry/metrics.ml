let now_ns = Monotonic_clock.now

let time f =
  let t0 = now_ns () in
  let v = f () in
  let t1 = now_ns () in
  (v, Int64.to_int (Int64.sub t1 t0))

let max_pattern = 12

(* Complete-backend slots for the planner's cost model: 1 = the DLR tableau
   route, 2 = the bounded SAT route (eager grounding), 3 = the CEGAR
   lazy-grounding SAT route.  Slot 0 collects out-of-range indices,
   mirroring the pattern convention. *)
let max_backend = 3

let backend_name = function
  | 1 -> "dlr"
  | 2 -> "sat"
  | 3 -> "sat-lazy"
  | _ -> "other"

(* Log-scale latency histogram: bucket [i] counts runs whose wall time fell
   in [2^i, 2^(i+1)) ns (bucket 0 additionally catches 0 and 1 ns).  40
   buckets reach ~18 minutes, far beyond any single pattern run. *)
let hist_buckets = 40

let bucket_of_ns ns =
  if ns <= 1 then 0
  else begin
    let b = ref 0 and v = ref ns in
    while !v > 1 && !b < hist_buckets - 1 do
      v := !v lsr 1;
      incr b
    done;
    !b
  end

(* Midpoint of the bucket, used as the representative when reading
   quantiles back out: 1.5 * 2^i. *)
let bucket_mid_ns i = if i = 0 then 1 else (1 lsl i) + (1 lsl (i - 1))

(* Exclusive upper bound of bucket [i]; the last bucket is open-ended
   (bucket_of_ns clamps into it), reported as [None] (+Inf). *)
let bucket_upper_ns i = if i >= hist_buckets - 1 then None else Some (1 lsl (i + 1))

(* Rolling-window ring: one slot per monotonic minute, [rolling_slots]
   minutes deep, so recent rates and quantiles (1m/5m/15m) can be read
   without resetting the lifetime counters.  CLOCK_MONOTONIC is
   system-wide on Linux, so minute indices from prefork workers on one
   host fold correctly. *)
let rolling_slots = 60
let minute_ns = 60_000_000_000L
let minute_of_ns ns = Int64.to_int (Int64.div ns minute_ns)

(* Slot 0 collects out-of-range pattern numbers: telemetry must never turn a
   successful check into an exception. *)
type t = {
  pattern_runs : int Atomic.t array;  (* length max_pattern + 1 *)
  pattern_fires : int Atomic.t array;
  pattern_time_ns : int Atomic.t array;
  pattern_hist : int Atomic.t array array;  (* per pattern, hist_buckets wide *)
  pattern_max_ns : int Atomic.t array;
  checks : int Atomic.t;
  check_time_ns : int Atomic.t;
  propagation_runs : int Atomic.t;
  propagation_time_ns : int Atomic.t;
  propagation_derived : int Atomic.t;
  cache_hits : int Atomic.t;
  cache_misses : int Atomic.t;
  disk_hits : int Atomic.t;
  disk_misses : int Atomic.t;
  (* the structural tier: requests answered through the canonical digest
     (an isomorphic clone of a cached schema), vs. canonicalizations that
     found nothing and had to compute *)
  canon_hits : int Atomic.t;
  canon_misses : int Atomic.t;
  (* the registry store *)
  registry_ingested : int Atomic.t;
  registry_duplicates : int Atomic.t;
  registry_queries : int Atomic.t;
  batches : int Atomic.t;
  batch_schemas : int Atomic.t;
  batch_domains : int Atomic.t;
  batch_time_ns : int Atomic.t;
  (* the serving layer: one entry per request answered by [ormcheck serve],
     with the same log-scale latency histogram the patterns get *)
  requests : int Atomic.t;
  request_time_ns : int Atomic.t;
  request_hist : int Atomic.t array;  (* hist_buckets wide *)
  request_max_ns : int Atomic.t;
  timeouts : int Atomic.t;
  overloads : int Atomic.t;
  internal_errors : int Atomic.t;
  (* the rolling ring: slot [m mod rolling_slots] holds minute [m]'s server
     counters; a slot is re-stamped (and zeroed) the first time a newer
     minute lands on it.  The stamp/zero race between domains can at worst
     lose a handful of events from a minute boundary — acceptable for
     telemetry, which must never slow or break a request. *)
  ring_minute : int Atomic.t array;  (* rolling_slots wide; -1 = never used *)
  ring_requests : int Atomic.t array;
  ring_time_ns : int Atomic.t array;
  ring_timeouts : int Atomic.t array;
  ring_overloads : int Atomic.t array;
  ring_internal_errors : int Atomic.t array;
  ring_hist : int Atomic.t array array;  (* per slot, hist_buckets wide *)
  (* the planner: complete-backend latency histograms (the online feedback
     refining the static cost model) and decision counters *)
  backend_runs : int Atomic.t array;  (* length max_backend + 1 *)
  backend_definitive : int Atomic.t array;
  backend_time_ns : int Atomic.t array;
  backend_hist : int Atomic.t array array;  (* per backend, hist_buckets wide *)
  backend_max_ns : int Atomic.t array;
  plan_patterns_only : int Atomic.t;
  plan_backend_dlr : int Atomic.t;
  plan_backend_sat : int Atomic.t;
  plan_backend_sat_lazy : int Atomic.t;
  plan_races : int Atomic.t;
  plan_cancelled : int Atomic.t;
  (* the CEGAR lazy grounder's refinement telemetry, accumulated across
     sat-lazy runs *)
  cegar_rounds : int Atomic.t;
  cegar_instantiated : int Atomic.t;
  cegar_learned : int Atomic.t;
  cegar_restarts : int Atomic.t;
}

let atomic_array () = Array.init (max_pattern + 1) (fun _ -> Atomic.make 0)
let backend_array () = Array.init (max_backend + 1) (fun _ -> Atomic.make 0)
let ring_array ?(init = 0) () =
  Array.init rolling_slots (fun _ -> Atomic.make init)

let create () =
  {
    pattern_runs = atomic_array ();
    pattern_fires = atomic_array ();
    pattern_time_ns = atomic_array ();
    pattern_hist =
      Array.init (max_pattern + 1) (fun _ ->
          Array.init hist_buckets (fun _ -> Atomic.make 0));
    pattern_max_ns = atomic_array ();
    checks = Atomic.make 0;
    check_time_ns = Atomic.make 0;
    propagation_runs = Atomic.make 0;
    propagation_time_ns = Atomic.make 0;
    propagation_derived = Atomic.make 0;
    cache_hits = Atomic.make 0;
    cache_misses = Atomic.make 0;
    disk_hits = Atomic.make 0;
    disk_misses = Atomic.make 0;
    canon_hits = Atomic.make 0;
    canon_misses = Atomic.make 0;
    registry_ingested = Atomic.make 0;
    registry_duplicates = Atomic.make 0;
    registry_queries = Atomic.make 0;
    batches = Atomic.make 0;
    batch_schemas = Atomic.make 0;
    batch_domains = Atomic.make 0;
    batch_time_ns = Atomic.make 0;
    requests = Atomic.make 0;
    request_time_ns = Atomic.make 0;
    request_hist = Array.init hist_buckets (fun _ -> Atomic.make 0);
    request_max_ns = Atomic.make 0;
    timeouts = Atomic.make 0;
    overloads = Atomic.make 0;
    internal_errors = Atomic.make 0;
    ring_minute = ring_array ~init:(-1) ();
    ring_requests = ring_array ();
    ring_time_ns = ring_array ();
    ring_timeouts = ring_array ();
    ring_overloads = ring_array ();
    ring_internal_errors = ring_array ();
    ring_hist =
      Array.init rolling_slots (fun _ ->
          Array.init hist_buckets (fun _ -> Atomic.make 0));
    backend_runs = backend_array ();
    backend_definitive = backend_array ();
    backend_time_ns = backend_array ();
    backend_hist =
      Array.init (max_backend + 1) (fun _ ->
          Array.init hist_buckets (fun _ -> Atomic.make 0));
    backend_max_ns = backend_array ();
    plan_patterns_only = Atomic.make 0;
    plan_backend_dlr = Atomic.make 0;
    plan_backend_sat = Atomic.make 0;
    plan_backend_sat_lazy = Atomic.make 0;
    plan_races = Atomic.make 0;
    plan_cancelled = Atomic.make 0;
    cegar_rounds = Atomic.make 0;
    cegar_instantiated = Atomic.make 0;
    cegar_learned = Atomic.make 0;
    cegar_restarts = Atomic.make 0;
  }

let reset t =
  let zero a = Atomic.set a 0 in
  Array.iter zero t.pattern_runs;
  Array.iter zero t.pattern_fires;
  Array.iter zero t.pattern_time_ns;
  Array.iter (Array.iter zero) t.pattern_hist;
  Array.iter zero t.pattern_max_ns;
  Array.iter zero t.request_hist;
  Array.iter zero t.backend_runs;
  Array.iter zero t.backend_definitive;
  Array.iter zero t.backend_time_ns;
  Array.iter (Array.iter zero) t.backend_hist;
  Array.iter zero t.backend_max_ns;
  Array.iter (fun a -> Atomic.set a (-1)) t.ring_minute;
  Array.iter zero t.ring_requests;
  Array.iter zero t.ring_time_ns;
  Array.iter zero t.ring_timeouts;
  Array.iter zero t.ring_overloads;
  Array.iter zero t.ring_internal_errors;
  Array.iter (Array.iter zero) t.ring_hist;
  List.iter zero
    [
      t.checks; t.check_time_ns; t.propagation_runs; t.propagation_time_ns;
      t.propagation_derived; t.cache_hits; t.cache_misses; t.disk_hits;
      t.disk_misses; t.canon_hits; t.canon_misses; t.registry_ingested;
      t.registry_duplicates; t.registry_queries; t.batches;
      t.batch_schemas; t.batch_domains; t.batch_time_ns; t.requests;
      t.request_time_ns; t.request_max_ns; t.timeouts; t.overloads;
      t.internal_errors;
      t.plan_patterns_only; t.plan_backend_dlr; t.plan_backend_sat;
      t.plan_backend_sat_lazy; t.plan_races; t.plan_cancelled;
      t.cegar_rounds; t.cegar_instantiated; t.cegar_learned;
      t.cegar_restarts;
    ]

let bump a n = ignore (Atomic.fetch_and_add a n)

let rec bump_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then bump_max a v

let record_pattern t ~pattern ~time_ns ~fired =
  let p = if pattern >= 1 && pattern <= max_pattern then pattern else 0 in
  bump t.pattern_runs.(p) 1;
  bump t.pattern_fires.(p) fired;
  bump t.pattern_time_ns.(p) time_ns;
  bump t.pattern_hist.(p).(bucket_of_ns time_ns) 1;
  bump_max t.pattern_max_ns.(p) time_ns

let record_check t ~time_ns =
  bump t.checks 1;
  bump t.check_time_ns time_ns

let record_propagation t ~time_ns ~derived =
  bump t.propagation_runs 1;
  bump t.propagation_time_ns time_ns;
  bump t.propagation_derived derived

let record_cache_hit t n = bump t.cache_hits n
let record_cache_miss t n = bump t.cache_misses n
let record_disk_hit t n = bump t.disk_hits n
let record_disk_miss t n = bump t.disk_misses n
let record_canon_hit t n = bump t.canon_hits n
let record_canon_miss t n = bump t.canon_misses n

let record_registry_ingest t ~ingested ~duplicates =
  bump t.registry_ingested ingested;
  bump t.registry_duplicates duplicates

let record_registry_query t = bump t.registry_queries 1

let record_batch t ~schemas ~domains ~time_ns =
  bump t.batches 1;
  bump t.batch_schemas schemas;
  Atomic.set t.batch_domains domains;
  bump t.batch_time_ns time_ns

(* Claim the ring slot for [minute]: if the slot still holds an older
   minute, the winning CAS zeroes it before anyone accumulates into the
   new minute.  Returns the slot index. *)
let ring_slot t minute =
  let slot = ((minute mod rolling_slots) + rolling_slots) mod rolling_slots in
  let cur = Atomic.get t.ring_minute.(slot) in
  if cur <> minute && Atomic.compare_and_set t.ring_minute.(slot) cur minute
  then begin
    Atomic.set t.ring_requests.(slot) 0;
    Atomic.set t.ring_time_ns.(slot) 0;
    Atomic.set t.ring_timeouts.(slot) 0;
    Atomic.set t.ring_overloads.(slot) 0;
    Atomic.set t.ring_internal_errors.(slot) 0;
    Array.iter (fun a -> Atomic.set a 0) t.ring_hist.(slot)
  end;
  slot

let ring_now = function Some ns -> ns | None -> now_ns ()

let record_request ?now_ns:stamp t ~time_ns =
  bump t.requests 1;
  bump t.request_time_ns time_ns;
  bump t.request_hist.(bucket_of_ns time_ns) 1;
  bump_max t.request_max_ns time_ns;
  let slot = ring_slot t (minute_of_ns (ring_now stamp)) in
  bump t.ring_requests.(slot) 1;
  bump t.ring_time_ns.(slot) time_ns;
  bump t.ring_hist.(slot).(bucket_of_ns time_ns) 1

let record_timeout ?now_ns:stamp t =
  bump t.timeouts 1;
  bump t.ring_timeouts.(ring_slot t (minute_of_ns (ring_now stamp))) 1

let record_overload ?now_ns:stamp t =
  bump t.overloads 1;
  bump t.ring_overloads.(ring_slot t (minute_of_ns (ring_now stamp))) 1

let record_internal_error ?now_ns:stamp t =
  bump t.internal_errors 1;
  bump t.ring_internal_errors.(ring_slot t (minute_of_ns (ring_now stamp))) 1

let record_backend t ~backend ~time_ns ~definitive =
  let b = if backend >= 1 && backend <= max_backend then backend else 0 in
  bump t.backend_runs.(b) 1;
  if definitive then bump t.backend_definitive.(b) 1;
  bump t.backend_time_ns.(b) time_ns;
  bump t.backend_hist.(b).(bucket_of_ns time_ns) 1;
  bump_max t.backend_max_ns.(b) time_ns

let record_plan t decision =
  bump
    (match decision with
    | `Patterns_only -> t.plan_patterns_only
    | `Backend_dlr -> t.plan_backend_dlr
    | `Backend_sat -> t.plan_backend_sat
    | `Backend_sat_lazy -> t.plan_backend_sat_lazy
    | `Race -> t.plan_races)
    1

let record_race_cancelled t = bump t.plan_cancelled 1

let record_cegar t ~rounds ~instantiated ~learned ~restarts =
  bump t.cegar_rounds rounds;
  bump t.cegar_instantiated instantiated;
  bump t.cegar_learned learned;
  bump t.cegar_restarts restarts

type pattern_stat = {
  pattern : int;
  runs : int;
  fires : int;
  time_ns : int;
  hist : int array;  (* hist_buckets wide; all zeros when never recorded *)
  max_ns : int;
}

let empty_hist () = Array.make hist_buckets 0

(* Quantiles read off a log-scale histogram; resolution is the bucket
   width (a factor of two), which is plenty to tell a 2 us median from a
   2 ms tail. *)
let hist_quantile_ns ~hist ~max_ns q =
  let total = Array.fold_left ( + ) 0 hist in
  if total = 0 then 0
  else begin
    let target = max 1 (int_of_float (Float.round (q *. float_of_int total))) in
    let seen = ref 0 and result = ref 0 in
    (try
       Array.iteri
         (fun i c ->
           seen := !seen + c;
           if !seen >= target then begin
             let mid = bucket_mid_ns i in
             (* never report past the observed maximum (when we have one:
                snapshots parsed from pre-histogram JSON carry max_ns = 0) *)
             result := (if max_ns > 0 then min mid max_ns else mid);
             raise Exit
           end)
         hist
     with Exit -> ());
    !result
  end

let quantile_ns stat q = hist_quantile_ns ~hist:stat.hist ~max_ns:stat.max_ns q
let p50_ns stat = quantile_ns stat 0.50
let p95_ns stat = quantile_ns stat 0.95

type minute_stat = {
  minute : int;  (* monotonic minute index, [minute_of_ns (now_ns ())] *)
  m_requests : int;
  m_time_ns : int;
  m_timeouts : int;
  m_overloads : int;
  m_internal_errors : int;
  m_hist : int array;  (* hist_buckets wide *)
}

type snapshot = {
  patterns : pattern_stat list;
  backends : pattern_stat list;
      (* complete-backend rows reusing the pattern_stat shape: [pattern] is
         the backend index, [fires] counts definitive verdicts *)
  plan_patterns_only : int;
  plan_backend_dlr : int;
  plan_backend_sat : int;
  plan_backend_sat_lazy : int;
  plan_races : int;
  plan_cancelled : int;
  cegar_rounds : int;
  cegar_instantiated : int;
  cegar_learned : int;
  cegar_restarts : int;
  checks : int;
  check_time_ns : int;
  propagation_runs : int;
  propagation_time_ns : int;
  propagation_derived : int;
  cache_hits : int;
  cache_misses : int;
  disk_hits : int;
  disk_misses : int;
  canon_hits : int;
  canon_misses : int;
  registry_ingested : int;
  registry_duplicates : int;
  registry_queries : int;
  batches : int;
  batch_schemas : int;
  batch_domains : int;
  batch_time_ns : int;
  requests : int;
  request_time_ns : int;
  request_hist : int array;
  request_max_ns : int;
  timeouts : int;
  overloads : int;
  internal_errors : int;
  rolling : minute_stat list;  (* ascending by minute; only non-empty slots *)
}

let request_p50_ns s = hist_quantile_ns ~hist:s.request_hist ~max_ns:s.request_max_ns 0.50
let request_p95_ns s = hist_quantile_ns ~hist:s.request_hist ~max_ns:s.request_max_ns 0.95

(* ---- rolling windows ------------------------------------------------- *)

type window_stat = {
  w_minutes : int;
  w_requests : int;
  w_time_ns : int;
  w_timeouts : int;
  w_overloads : int;
  w_internal_errors : int;
  w_rate : float;  (* requests per second over the window *)
  w_p50_ns : int;
  w_p95_ns : int;
}

let window s ~now_ns:stamp ~minutes =
  let now_minute = minute_of_ns stamp in
  let lo = now_minute - minutes + 1 in
  let hist = empty_hist () in
  let acc =
    List.fold_left
      (fun acc m ->
        if m.minute >= lo && m.minute <= now_minute then begin
          Array.iteri (fun i c -> hist.(i) <- hist.(i) + c) m.m_hist;
          {
            acc with
            w_requests = acc.w_requests + m.m_requests;
            w_time_ns = acc.w_time_ns + m.m_time_ns;
            w_timeouts = acc.w_timeouts + m.m_timeouts;
            w_overloads = acc.w_overloads + m.m_overloads;
            w_internal_errors = acc.w_internal_errors + m.m_internal_errors;
          }
        end
        else acc)
      {
        w_minutes = minutes;
        w_requests = 0;
        w_time_ns = 0;
        w_timeouts = 0;
        w_overloads = 0;
        w_internal_errors = 0;
        w_rate = 0.0;
        w_p50_ns = 0;
        w_p95_ns = 0;
      }
      s.rolling
  in
  {
    acc with
    w_rate = float_of_int acc.w_requests /. (float_of_int minutes *. 60.0);
    w_p50_ns = hist_quantile_ns ~hist ~max_ns:0 0.50;
    w_p95_ns = hist_quantile_ns ~hist ~max_ns:0 0.95;
  }

let snapshot t =
  let patterns = ref [] in
  for p = max_pattern downto 0 do
    let runs = Atomic.get t.pattern_runs.(p) in
    if runs > 0 then
      patterns :=
        {
          pattern = p;
          runs;
          fires = Atomic.get t.pattern_fires.(p);
          time_ns = Atomic.get t.pattern_time_ns.(p);
          hist = Array.map Atomic.get t.pattern_hist.(p);
          max_ns = Atomic.get t.pattern_max_ns.(p);
        }
        :: !patterns
  done;
  let backends = ref [] in
  for b = max_backend downto 0 do
    let runs = Atomic.get t.backend_runs.(b) in
    if runs > 0 then
      backends :=
        {
          pattern = b;
          runs;
          fires = Atomic.get t.backend_definitive.(b);
          time_ns = Atomic.get t.backend_time_ns.(b);
          hist = Array.map Atomic.get t.backend_hist.(b);
          max_ns = Atomic.get t.backend_max_ns.(b);
        }
        :: !backends
  done;
  let rolling = ref [] in
  for slot = 0 to rolling_slots - 1 do
    let minute = Atomic.get t.ring_minute.(slot) in
    if minute >= 0 then begin
      let m =
        {
          minute;
          m_requests = Atomic.get t.ring_requests.(slot);
          m_time_ns = Atomic.get t.ring_time_ns.(slot);
          m_timeouts = Atomic.get t.ring_timeouts.(slot);
          m_overloads = Atomic.get t.ring_overloads.(slot);
          m_internal_errors = Atomic.get t.ring_internal_errors.(slot);
          m_hist = Array.map Atomic.get t.ring_hist.(slot);
        }
      in
      if
        m.m_requests + m.m_timeouts + m.m_overloads + m.m_internal_errors > 0
      then rolling := m :: !rolling
    end
  done;
  let rolling =
    List.sort (fun a b -> compare a.minute b.minute) !rolling
  in
  {
    patterns = !patterns;
    backends = !backends;
    rolling;
    plan_patterns_only = Atomic.get t.plan_patterns_only;
    plan_backend_dlr = Atomic.get t.plan_backend_dlr;
    plan_backend_sat = Atomic.get t.plan_backend_sat;
    plan_backend_sat_lazy = Atomic.get t.plan_backend_sat_lazy;
    plan_races = Atomic.get t.plan_races;
    plan_cancelled = Atomic.get t.plan_cancelled;
    cegar_rounds = Atomic.get t.cegar_rounds;
    cegar_instantiated = Atomic.get t.cegar_instantiated;
    cegar_learned = Atomic.get t.cegar_learned;
    cegar_restarts = Atomic.get t.cegar_restarts;
    checks = Atomic.get t.checks;
    check_time_ns = Atomic.get t.check_time_ns;
    propagation_runs = Atomic.get t.propagation_runs;
    propagation_time_ns = Atomic.get t.propagation_time_ns;
    propagation_derived = Atomic.get t.propagation_derived;
    cache_hits = Atomic.get t.cache_hits;
    cache_misses = Atomic.get t.cache_misses;
    disk_hits = Atomic.get t.disk_hits;
    disk_misses = Atomic.get t.disk_misses;
    canon_hits = Atomic.get t.canon_hits;
    canon_misses = Atomic.get t.canon_misses;
    registry_ingested = Atomic.get t.registry_ingested;
    registry_duplicates = Atomic.get t.registry_duplicates;
    registry_queries = Atomic.get t.registry_queries;
    batches = Atomic.get t.batches;
    batch_schemas = Atomic.get t.batch_schemas;
    batch_domains = Atomic.get t.batch_domains;
    batch_time_ns = Atomic.get t.batch_time_ns;
    requests = Atomic.get t.requests;
    request_time_ns = Atomic.get t.request_time_ns;
    request_hist = Array.map Atomic.get t.request_hist;
    request_max_ns = Atomic.get t.request_max_ns;
    timeouts = Atomic.get t.timeouts;
    overloads = Atomic.get t.overloads;
    internal_errors = Atomic.get t.internal_errors;
  }

let zero =
  {
    patterns = [];
    backends = [];
    rolling = [];
    plan_patterns_only = 0;
    plan_backend_dlr = 0;
    plan_backend_sat = 0;
    plan_backend_sat_lazy = 0;
    plan_races = 0;
    plan_cancelled = 0;
    cegar_rounds = 0;
    cegar_instantiated = 0;
    cegar_learned = 0;
    cegar_restarts = 0;
    checks = 0;
    check_time_ns = 0;
    propagation_runs = 0;
    propagation_time_ns = 0;
    propagation_derived = 0;
    cache_hits = 0;
    cache_misses = 0;
    disk_hits = 0;
    disk_misses = 0;
    canon_hits = 0;
    canon_misses = 0;
    registry_ingested = 0;
    registry_duplicates = 0;
    registry_queries = 0;
    batches = 0;
    batch_schemas = 0;
    batch_domains = 0;
    batch_time_ns = 0;
    requests = 0;
    request_time_ns = 0;
    request_hist = empty_hist ();
    request_max_ns = 0;
    timeouts = 0;
    overloads = 0;
    internal_errors = 0;
  }

let merge_rolling ra rb =
  let tbl = Hashtbl.create 16 in
  let feed m =
    match Hashtbl.find_opt tbl m.minute with
    | None -> Hashtbl.replace tbl m.minute m
    | Some prev ->
        Hashtbl.replace tbl m.minute
          {
            minute = m.minute;
            m_requests = prev.m_requests + m.m_requests;
            m_time_ns = prev.m_time_ns + m.m_time_ns;
            m_timeouts = prev.m_timeouts + m.m_timeouts;
            m_overloads = prev.m_overloads + m.m_overloads;
            m_internal_errors = prev.m_internal_errors + m.m_internal_errors;
            m_hist = Array.mapi (fun i c -> c + m.m_hist.(i)) prev.m_hist;
          }
  in
  List.iter feed ra;
  List.iter feed rb;
  Hashtbl.fold (fun _ m acc -> m :: acc) tbl []
  |> List.sort (fun a b -> compare a.minute b.minute)

let add a b =
  let merge_patterns pa pb =
    let tbl = Hashtbl.create 16 in
    let feed { pattern; runs; fires; time_ns; hist; max_ns } =
      let prev =
        Option.value
          ~default:
            {
              pattern;
              runs = 0;
              fires = 0;
              time_ns = 0;
              hist = empty_hist ();
              max_ns = 0;
            }
          (Hashtbl.find_opt tbl pattern)
      in
      Hashtbl.replace tbl pattern
        {
          pattern;
          runs = prev.runs + runs;
          fires = prev.fires + fires;
          time_ns = prev.time_ns + time_ns;
          hist = Array.mapi (fun i c -> c + hist.(i)) prev.hist;
          max_ns = max prev.max_ns max_ns;
        }
    in
    List.iter feed pa;
    List.iter feed pb;
    Hashtbl.fold (fun _ s acc -> s :: acc) tbl []
    |> List.sort (fun a b -> compare a.pattern b.pattern)
  in
  {
    patterns = merge_patterns a.patterns b.patterns;
    backends = merge_patterns a.backends b.backends;
    rolling = merge_rolling a.rolling b.rolling;
    plan_patterns_only = a.plan_patterns_only + b.plan_patterns_only;
    plan_backend_dlr = a.plan_backend_dlr + b.plan_backend_dlr;
    plan_backend_sat = a.plan_backend_sat + b.plan_backend_sat;
    plan_backend_sat_lazy = a.plan_backend_sat_lazy + b.plan_backend_sat_lazy;
    plan_races = a.plan_races + b.plan_races;
    plan_cancelled = a.plan_cancelled + b.plan_cancelled;
    cegar_rounds = a.cegar_rounds + b.cegar_rounds;
    cegar_instantiated = a.cegar_instantiated + b.cegar_instantiated;
    cegar_learned = a.cegar_learned + b.cegar_learned;
    cegar_restarts = a.cegar_restarts + b.cegar_restarts;
    checks = a.checks + b.checks;
    check_time_ns = a.check_time_ns + b.check_time_ns;
    propagation_runs = a.propagation_runs + b.propagation_runs;
    propagation_time_ns = a.propagation_time_ns + b.propagation_time_ns;
    propagation_derived = a.propagation_derived + b.propagation_derived;
    cache_hits = a.cache_hits + b.cache_hits;
    cache_misses = a.cache_misses + b.cache_misses;
    disk_hits = a.disk_hits + b.disk_hits;
    disk_misses = a.disk_misses + b.disk_misses;
    canon_hits = a.canon_hits + b.canon_hits;
    canon_misses = a.canon_misses + b.canon_misses;
    registry_ingested = a.registry_ingested + b.registry_ingested;
    registry_duplicates = a.registry_duplicates + b.registry_duplicates;
    registry_queries = a.registry_queries + b.registry_queries;
    batches = a.batches + b.batches;
    batch_schemas = a.batch_schemas + b.batch_schemas;
    batch_domains = (if b.batches > 0 then b.batch_domains else a.batch_domains);
    batch_time_ns = a.batch_time_ns + b.batch_time_ns;
    requests = a.requests + b.requests;
    request_time_ns = a.request_time_ns + b.request_time_ns;
    request_hist = Array.mapi (fun i c -> c + b.request_hist.(i)) a.request_hist;
    request_max_ns = max a.request_max_ns b.request_max_ns;
    timeouts = a.timeouts + b.timeouts;
    overloads = a.overloads + b.overloads;
    internal_errors = a.internal_errors + b.internal_errors;
  }

let equal (a : snapshot) (b : snapshot) = a = b

let total_pattern_time_ns s =
  List.fold_left (fun acc p -> acc + p.time_ns) 0 s.patterns

let pp_ns ppf ns =
  let f = float_of_int ns in
  if f >= 1e9 then Format.fprintf ppf "%.2f s" (f /. 1e9)
  else if f >= 1e6 then Format.fprintf ppf "%.2f ms" (f /. 1e6)
  else if f >= 1e3 then Format.fprintf ppf "%.2f us" (f /. 1e3)
  else Format.fprintf ppf "%d ns" ns

let pp ppf s =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "checks: %d (" s.checks;
  pp_ns ppf s.check_time_ns;
  Format.fprintf ppf " total)@,";
  if s.patterns <> [] then begin
    Format.fprintf ppf "%-10s %8s %8s %12s %10s %10s %10s@," "pattern" "runs" "fires"
      "time" "p50" "p95" "max";
    List.iter
      (fun p ->
        Format.fprintf ppf "%-10d %8d %8d %12s %10s %10s %10s@," p.pattern p.runs
          p.fires
          (Format.asprintf "%a" pp_ns p.time_ns)
          (Format.asprintf "%a" pp_ns (p50_ns p))
          (Format.asprintf "%a" pp_ns (p95_ns p))
          (Format.asprintf "%a" pp_ns p.max_ns))
      s.patterns
  end;
  if s.propagation_runs > 0 then begin
    Format.fprintf ppf "propagation: %d run(s), %d derived diagnostic(s), "
      s.propagation_runs s.propagation_derived;
    pp_ns ppf s.propagation_time_ns;
    Format.fprintf ppf "@,"
  end;
  if s.cache_hits + s.cache_misses > 0 then
    Format.fprintf ppf "session cache: %d hit(s), %d miss(es)@," s.cache_hits
      s.cache_misses;
  if s.disk_hits + s.disk_misses > 0 then
    Format.fprintf ppf "disk cache: %d hit(s), %d miss(es)@," s.disk_hits
      s.disk_misses;
  if s.canon_hits + s.canon_misses > 0 then
    Format.fprintf ppf "canonical tier: %d hit(s), %d miss(es)@," s.canon_hits
      s.canon_misses;
  if s.registry_ingested + s.registry_duplicates + s.registry_queries > 0 then
    Format.fprintf ppf
      "registry: %d ingested, %d duplicate(s), %d quer(y/ies)@,"
      s.registry_ingested s.registry_duplicates s.registry_queries;
  if s.batches > 0 then begin
    Format.fprintf ppf "batches: %d (%d schema(s), %d domain(s), " s.batches
      s.batch_schemas s.batch_domains;
    pp_ns ppf s.batch_time_ns;
    Format.fprintf ppf ")@,"
  end;
  if s.backends <> [] then begin
    Format.fprintf ppf "%-10s %8s %8s %12s %10s %10s %10s@," "backend" "runs"
      "definite" "time" "p50" "p95" "max";
    List.iter
      (fun b ->
        Format.fprintf ppf "%-10s %8d %8d %12s %10s %10s %10s@,"
          (backend_name b.pattern) b.runs b.fires
          (Format.asprintf "%a" pp_ns b.time_ns)
          (Format.asprintf "%a" pp_ns (p50_ns b))
          (Format.asprintf "%a" pp_ns (p95_ns b))
          (Format.asprintf "%a" pp_ns b.max_ns))
      s.backends
  end;
  if
    s.plan_patterns_only + s.plan_backend_dlr + s.plan_backend_sat
    + s.plan_backend_sat_lazy + s.plan_races > 0
  then
    Format.fprintf ppf
      "planner: %d patterns-only, %d dlr, %d sat, %d sat-lazy, %d race(s) \
       (%d loser(s) cancelled)@,"
      s.plan_patterns_only s.plan_backend_dlr s.plan_backend_sat
      s.plan_backend_sat_lazy s.plan_races s.plan_cancelled;
  if s.cegar_rounds > 0 then
    Format.fprintf ppf
      "cegar: %d refinement round(s), %d instantiated clause(s), %d learned, \
       %d restart(s)@,"
      s.cegar_rounds s.cegar_instantiated s.cegar_learned s.cegar_restarts;
  if s.requests + s.timeouts + s.overloads + s.internal_errors > 0 then begin
    Format.fprintf ppf "server: %d request(s) (" s.requests;
    pp_ns ppf s.request_time_ns;
    Format.fprintf ppf
      " total, p50 %s, p95 %s, max %s), %d timeout(s), %d overload(s), %d \
       internal error(s)@,"
      (Format.asprintf "%a" pp_ns (request_p50_ns s))
      (Format.asprintf "%a" pp_ns (request_p95_ns s))
      (Format.asprintf "%a" pp_ns s.request_max_ns)
      s.timeouts s.overloads s.internal_errors
  end;
  Format.fprintf ppf "@]"

(* ---- JSON ------------------------------------------------------------ *)

module J = Orm_json

(* Histograms are emitted trimmed to their last non-empty bucket;
   [of_value] pads back to [hist_buckets]. *)
let trimmed_hist h =
  let last =
    let i = ref (Array.length h - 1) in
    while !i >= 0 && h.(!i) = 0 do decr i done;
    !i
  in
  J.List (List.init (last + 1) (fun i -> J.Int h.(i)))

let to_value s =
  J.Obj
    [
      ("checks", J.Int s.checks);
      ("check_time_ns", J.Int s.check_time_ns);
      ("propagation_runs", J.Int s.propagation_runs);
      ("propagation_time_ns", J.Int s.propagation_time_ns);
      ("propagation_derived", J.Int s.propagation_derived);
      ("cache_hits", J.Int s.cache_hits);
      ("cache_misses", J.Int s.cache_misses);
      ("disk_hits", J.Int s.disk_hits);
      ("disk_misses", J.Int s.disk_misses);
      ("canon_hits", J.Int s.canon_hits);
      ("canon_misses", J.Int s.canon_misses);
      ("registry_ingested", J.Int s.registry_ingested);
      ("registry_duplicates", J.Int s.registry_duplicates);
      ("registry_queries", J.Int s.registry_queries);
      ("batches", J.Int s.batches);
      ("batch_schemas", J.Int s.batch_schemas);
      ("batch_domains", J.Int s.batch_domains);
      ("batch_time_ns", J.Int s.batch_time_ns);
      ("requests", J.Int s.requests);
      ("request_time_ns", J.Int s.request_time_ns);
      ("request_max_ns", J.Int s.request_max_ns);
      ("timeouts", J.Int s.timeouts);
      ("overloads", J.Int s.overloads);
      ("internal_errors", J.Int s.internal_errors);
      ("plan_patterns_only", J.Int s.plan_patterns_only);
      ("plan_backend_dlr", J.Int s.plan_backend_dlr);
      ("plan_backend_sat", J.Int s.plan_backend_sat);
      ("plan_backend_sat_lazy", J.Int s.plan_backend_sat_lazy);
      ("plan_races", J.Int s.plan_races);
      ("plan_cancelled", J.Int s.plan_cancelled);
      ("cegar_rounds", J.Int s.cegar_rounds);
      ("cegar_instantiated", J.Int s.cegar_instantiated);
      ("cegar_learned", J.Int s.cegar_learned);
      ("cegar_restarts", J.Int s.cegar_restarts);
      ("request_hist", trimmed_hist s.request_hist);
      ( "patterns",
        J.List
          (List.map
             (fun p ->
               J.Obj
                 [
                   ("pattern", J.Int p.pattern);
                   ("runs", J.Int p.runs);
                   ("fires", J.Int p.fires);
                   ("time_ns", J.Int p.time_ns);
                   ("max_ns", J.Int p.max_ns);
                   ("hist", trimmed_hist p.hist);
                 ])
             s.patterns) );
      ( "backends",
        J.List
          (List.map
             (fun b ->
               J.Obj
                 [
                   ("backend", J.Int b.pattern);
                   ("runs", J.Int b.runs);
                   ("definitive", J.Int b.fires);
                   ("time_ns", J.Int b.time_ns);
                   ("max_ns", J.Int b.max_ns);
                   ("hist", trimmed_hist b.hist);
                 ])
             s.backends) );
      ( "rolling",
        J.List
          (List.map
             (fun m ->
               J.Obj
                 [
                   ("minute", J.Int m.minute);
                   ("requests", J.Int m.m_requests);
                   ("time_ns", J.Int m.m_time_ns);
                   ("timeouts", J.Int m.m_timeouts);
                   ("overloads", J.Int m.m_overloads);
                   ("internal_errors", J.Int m.m_internal_errors);
                   ("hist", trimmed_hist m.m_hist);
                 ])
             s.rolling) );
    ]

let to_json s = J.to_string (to_value s)

exception Bad of string

let of_value v =
  try
    match v with
    | J.Obj fields ->
        let int k default =
          match List.assoc_opt k fields with
          | Some (J.Int n) -> n
          | Some _ -> raise (Bad (k ^ ": expected integer"))
          | None -> default
        in
        let hist_of name counts =
          let h = empty_hist () in
          (match counts with
          | None -> ()
          | Some (J.List counts) ->
              List.iteri
                (fun i c ->
                  match c with
                  | J.Int n when i < hist_buckets -> h.(i) <- n
                  | J.Int _ -> raise (Bad (name ^ ": too many buckets"))
                  | _ -> raise (Bad (name ^ ": expected integers")))
                counts
          | Some _ -> raise (Bad (name ^ ": expected array")));
          h
        in
        let patterns =
          match List.assoc_opt "patterns" fields with
          | None -> []
          | Some (J.List items) ->
              List.map
                (function
                  | J.Obj pf ->
                      let pint k =
                        match List.assoc_opt k pf with
                        | Some (J.Int n) -> n
                        | _ -> raise (Bad ("patterns." ^ k ^ ": expected integer"))
                      in
                      (* hist and max_ns arrived with the latency-histogram
                         extension; snapshots written before it parse with
                         empty histograms *)
                      let pint_opt k default =
                        match List.assoc_opt k pf with
                        | Some (J.Int n) -> n
                        | Some _ -> raise (Bad ("patterns." ^ k ^ ": expected integer"))
                        | None -> default
                      in
                      {
                        pattern = pint "pattern";
                        runs = pint "runs";
                        fires = pint "fires";
                        time_ns = pint "time_ns";
                        hist = hist_of "patterns.hist" (List.assoc_opt "hist" pf);
                        max_ns = pint_opt "max_ns" 0;
                      }
                  | _ -> raise (Bad "patterns: expected objects"))
                items
          | Some _ -> raise (Bad "patterns: expected array")
        in
        (* the planner section arrived with `--backend auto`; snapshots
           written before it parse with no backend rows and zero plans *)
        let backends =
          match List.assoc_opt "backends" fields with
          | None -> []
          | Some (J.List items) ->
              List.map
                (function
                  | J.Obj bf ->
                      let bint k =
                        match List.assoc_opt k bf with
                        | Some (J.Int n) -> n
                        | Some _ ->
                            raise (Bad ("backends." ^ k ^ ": expected integer"))
                        | None -> 0
                      in
                      {
                        pattern = bint "backend";
                        runs = bint "runs";
                        fires = bint "definitive";
                        time_ns = bint "time_ns";
                        hist = hist_of "backends.hist" (List.assoc_opt "hist" bf);
                        max_ns = bint "max_ns";
                      }
                  | _ -> raise (Bad "backends: expected objects"))
                items
          | Some _ -> raise (Bad "backends: expected array")
        in
        (* the rolling ring arrived with the operations layer; snapshots
           written before it parse with no recent-window data *)
        let rolling =
          match List.assoc_opt "rolling" fields with
          | None -> []
          | Some (J.List items) ->
              List.map
                (function
                  | J.Obj mf ->
                      let mint k =
                        match List.assoc_opt k mf with
                        | Some (J.Int n) -> n
                        | Some _ ->
                            raise (Bad ("rolling." ^ k ^ ": expected integer"))
                        | None -> 0
                      in
                      {
                        minute = mint "minute";
                        m_requests = mint "requests";
                        m_time_ns = mint "time_ns";
                        m_timeouts = mint "timeouts";
                        m_overloads = mint "overloads";
                        m_internal_errors = mint "internal_errors";
                        m_hist = hist_of "rolling.hist" (List.assoc_opt "hist" mf);
                      }
                  | _ -> raise (Bad "rolling: expected objects"))
                items
          | Some _ -> raise (Bad "rolling: expected array")
        in
        Ok
          {
            patterns;
            backends;
            rolling;
            plan_patterns_only = int "plan_patterns_only" 0;
            plan_backend_dlr = int "plan_backend_dlr" 0;
            plan_backend_sat = int "plan_backend_sat" 0;
            (* the lazy-grounding backend and its CEGAR counters arrived
               together; snapshots written before them parse as zero *)
            plan_backend_sat_lazy = int "plan_backend_sat_lazy" 0;
            plan_races = int "plan_races" 0;
            plan_cancelled = int "plan_cancelled" 0;
            cegar_rounds = int "cegar_rounds" 0;
            cegar_instantiated = int "cegar_instantiated" 0;
            cegar_learned = int "cegar_learned" 0;
            cegar_restarts = int "cegar_restarts" 0;
            checks = int "checks" 0;
            check_time_ns = int "check_time_ns" 0;
            propagation_runs = int "propagation_runs" 0;
            propagation_time_ns = int "propagation_time_ns" 0;
            propagation_derived = int "propagation_derived" 0;
            cache_hits = int "cache_hits" 0;
            cache_misses = int "cache_misses" 0;
            (* the disk-tier counters arrived with the persistent store;
               snapshots written before it parse as zero *)
            disk_hits = int "disk_hits" 0;
            disk_misses = int "disk_misses" 0;
            (* the canonical tier and the registry arrived together;
               snapshots written before them parse as zero *)
            canon_hits = int "canon_hits" 0;
            canon_misses = int "canon_misses" 0;
            registry_ingested = int "registry_ingested" 0;
            registry_duplicates = int "registry_duplicates" 0;
            registry_queries = int "registry_queries" 0;
            batches = int "batches" 0;
            batch_schemas = int "batch_schemas" 0;
            batch_domains = int "batch_domains" 0;
            batch_time_ns = int "batch_time_ns" 0;
            (* the server section arrived with `ormcheck serve`; snapshots
               written before it parse as all-zero *)
            requests = int "requests" 0;
            request_time_ns = int "request_time_ns" 0;
            request_hist = hist_of "request_hist" (List.assoc_opt "request_hist" fields);
            request_max_ns = int "request_max_ns" 0;
            timeouts = int "timeouts" 0;
            overloads = int "overloads" 0;
            internal_errors = int "internal_errors" 0;
          }
    | _ -> Error "expected a JSON object"
  with Bad msg -> Error msg

let of_json src =
  match J.of_string src with
  | Error msg -> Error msg
  | Ok v -> of_value v
