(** Engine telemetry: monotonic-clock timers and lock-free counters.

    A {!t} is a bundle of [Atomic] counters shared by every domain that
    participates in a check, so per-pattern wall time, fire counts and the
    interactive session's cache statistics aggregate correctly under the
    parallel batch engine without locks.  The counters are recorded through
    an optional [?metrics] argument on the engine entry points; when absent
    the hot path performs no timing and no allocation.

    {!snapshot} freezes the counters into plain data, printable as a table
    ({!pp}) or exportable as JSON ({!to_json} / {!of_json}) for the CLI's
    [--stats-json] and the benchmark harness. *)

val now_ns : unit -> int64
(** Monotonic clock reading in nanoseconds ([CLOCK_MONOTONIC]; never goes
    backwards, unaffected by wall-clock adjustments). *)

val time : (unit -> 'a) -> 'a * int
(** [time f] runs [f ()] and returns its result with the elapsed monotonic
    nanoseconds. *)

type t
(** A live counter bundle.  Safe to share across domains. *)

val create : unit -> t
(** Fresh bundle, all counters zero. *)

val reset : t -> unit

val max_pattern : int
(** Highest pattern number tracked (12: the paper's nine plus the three
    extension patterns). *)

(** {1 Recording} *)

val record_pattern : t -> pattern:int -> time_ns:int -> fired:int -> unit
(** One run of pattern [pattern] that took [time_ns] and produced [fired]
    diagnostics.  Out-of-range pattern numbers are counted under pattern 0
    rather than raising (telemetry must never break a check). *)

val record_check : t -> time_ns:int -> unit
(** One whole-schema check. *)

val record_propagation : t -> time_ns:int -> derived:int -> unit
(** One propagation phase deriving [derived] extra diagnostics. *)

val record_cache_hit : t -> int -> unit
(** [n] pattern results served from the interactive session's cache. *)

val record_cache_miss : t -> int -> unit
(** [n] pattern results the session had to recompute. *)

val record_disk_hit : t -> int -> unit
(** [n] results the checking service found in the persistent on-disk
    store (after missing the in-memory LRU). *)

val record_disk_miss : t -> int -> unit
(** [n] results absent from the on-disk store too — fully computed. *)

val record_canon_hit : t -> int -> unit
(** [n] requests answered from the canonical (structural) cache tier: the
    schema's byte digest missed but its canonical digest — shared by every
    isomorphic clone — hit the LRU or the disk store. *)

val record_canon_miss : t -> int -> unit
(** [n] canonicalizations that found nothing under the canonical digest
    either, so the result was fully computed. *)

val record_registry_ingest : t -> ingested:int -> duplicates:int -> unit
(** One registry ingest step: [ingested] new entries recorded, [duplicates]
    schemas whose canonical digest was already present. *)

val record_registry_query : t -> unit
(** One covering-index query answered by the registry. *)

val record_batch : t -> schemas:int -> domains:int -> time_ns:int -> unit
(** One parallel batch: [schemas] checked on [domains] domains in
    [time_ns] wall nanoseconds. *)

val record_request : ?now_ns:int64 -> t -> time_ns:int -> unit
(** One request answered by the checking service ([ormcheck serve]),
    whatever its status; the wall time also lands in the request latency
    histogram and in the current minute's rolling-window slot.  [?now_ns]
    overrides the ring's notion of "now" (monotonic nanoseconds) — tests
    use it to span minutes without sleeping. *)

val record_timeout : ?now_ns:int64 -> t -> unit
(** One request abandoned because its deadline expired. *)

val record_overload : ?now_ns:int64 -> t -> unit
(** One request rejected by admission control (pending queue full). *)

val record_internal_error : ?now_ns:int64 -> t -> unit
(** One request that raised inside the server (answered with a generic
    internal-error envelope, details only in the server log). *)

val max_backend : int
(** Highest complete-backend slot tracked (3: 1 = DLR tableau, 2 = bounded
    SAT with eager grounding, 3 = CEGAR lazy-grounding SAT). *)

val backend_name : int -> string
(** ["dlr"], ["sat"], ["sat-lazy"], or ["other"] for out-of-range slots. *)

val record_backend : t -> backend:int -> time_ns:int -> definitive:bool -> unit
(** One whole run of complete backend [backend] (a {!max_backend} slot)
    that took [time_ns] and produced ([definitive]) a verdict the caller
    could act on without consulting the other backend.  These latency
    histograms are the online feedback that refines the planner's static
    cost estimates.  Out-of-range slots land under 0 rather than raising. *)

val record_plan :
  t ->
  [ `Patterns_only | `Backend_dlr | `Backend_sat | `Backend_sat_lazy | `Race ] ->
  unit
(** One planner decision of the given shape. *)

val record_race_cancelled : t -> unit
(** One race whose losing backend was actively cancelled (as opposed to
    finishing on its own just after the winner). *)

val record_cegar :
  t -> rounds:int -> instantiated:int -> learned:int -> restarts:int -> unit
(** The refinement telemetry of one CEGAR lazy-grounding run: solver
    rounds, ground clauses instantiated by refinement, learned clauses
    retained, and solver restarts.  Accumulated across runs. *)

(** {1 Snapshots} *)

val hist_buckets : int
(** Width of the per-pattern latency histograms: bucket [i] counts runs
    whose wall time fell in [2^i, 2^(i+1)) nanoseconds. *)

val bucket_upper_ns : int -> int option
(** Exclusive upper bound of histogram bucket [i] in nanoseconds; [None]
    for the open-ended last bucket (rendered as +Inf by the Prometheus
    exposition). *)

val rolling_slots : int
(** Depth of the per-minute rolling ring (60: a quarter hour of 1-minute
    slots with room to spare for the 15m window). *)

val minute_of_ns : int64 -> int
(** Monotonic minute index of a {!now_ns} reading — the key the rolling
    ring slots are stamped with. *)

type pattern_stat = {
  pattern : int;
  runs : int;  (** times the pattern was executed *)
  fires : int;  (** diagnostics it produced, summed over runs *)
  time_ns : int;  (** wall time spent in it, summed over runs *)
  hist : int array;
      (** log-scale latency histogram, [hist_buckets] wide; all zeros on
          snapshots parsed from pre-histogram JSON *)
  max_ns : int;  (** slowest single run; 0 on pre-histogram snapshots *)
}

val quantile_ns : pattern_stat -> float -> int
(** [quantile_ns stat q] reads the [q]-quantile (0 < q <= 1) of the run
    latency off the histogram.  Resolution is the bucket width (a factor
    of 2): the bucket midpoint is reported, clamped to [max_ns].  0 when
    the histogram is empty. *)

val p50_ns : pattern_stat -> int
val p95_ns : pattern_stat -> int

type minute_stat = {
  minute : int;  (** monotonic minute index ({!minute_of_ns}) *)
  m_requests : int;
  m_time_ns : int;
  m_timeouts : int;
  m_overloads : int;
  m_internal_errors : int;
  m_hist : int array;  (** request latency histogram, [hist_buckets] wide *)
}

type snapshot = {
  patterns : pattern_stat list;  (** only patterns with [runs > 0], ascending *)
  backends : pattern_stat list;
      (** complete-backend rows reusing the [pattern_stat] shape:
          [pattern] is the backend slot ({!backend_name}), [fires] counts
          definitive verdicts; empty on snapshots written before the
          planner existed *)
  plan_patterns_only : int;  (** planner answered from patterns alone *)
  plan_backend_dlr : int;  (** planner picked the tableau outright *)
  plan_backend_sat : int;  (** planner picked eager bounded SAT outright *)
  plan_backend_sat_lazy : int;  (** planner picked lazy-grounding SAT outright *)
  plan_races : int;  (** planner raced two complete backends *)
  plan_cancelled : int;  (** races whose loser was actively cancelled *)
  cegar_rounds : int;  (** lazy-grounding refinement rounds, summed *)
  cegar_instantiated : int;  (** ground clauses added by refinement, summed *)
  cegar_learned : int;  (** learned clauses retained, summed *)
  cegar_restarts : int;  (** solver restarts in lazy runs, summed *)
  checks : int;
  check_time_ns : int;
  propagation_runs : int;
  propagation_time_ns : int;
  propagation_derived : int;
  cache_hits : int;
  cache_misses : int;
  disk_hits : int;
      (** results served from the persistent on-disk store; 0 on snapshots
          written before the disk tier existed *)
  disk_misses : int;
  canon_hits : int;
      (** requests answered through the canonical digest (an isomorphic
          clone of a cached schema); 0 on snapshots written before the
          structural tier existed *)
  canon_misses : int;
  registry_ingested : int;  (** new entries added to the registry store *)
  registry_duplicates : int;  (** ingests deduplicated by canonical digest *)
  registry_queries : int;  (** covering-index queries answered *)
  batches : int;
  batch_schemas : int;
  batch_domains : int;  (** domains of the most recent batch *)
  batch_time_ns : int;
  requests : int;  (** requests answered by the checking service *)
  request_time_ns : int;
  request_hist : int array;
      (** request latency histogram, [hist_buckets] wide, same log scale as
          the per-pattern histograms; all zeros on pre-server snapshots *)
  request_max_ns : int;
  timeouts : int;  (** requests whose deadline expired *)
  overloads : int;  (** requests rejected by admission control *)
  internal_errors : int;  (** requests that raised inside the server *)
  rolling : minute_stat list;
      (** per-minute server counters, ascending by minute, only minutes
          with activity; at most {!rolling_slots} entries; empty on
          snapshots written before the operations layer *)
}

val request_p50_ns : snapshot -> int
val request_p95_ns : snapshot -> int
(** Request latency quantiles read off [request_hist], with the same
    bucket-width resolution as {!quantile_ns}. *)

type window_stat = {
  w_minutes : int;  (** window width the stat was computed over *)
  w_requests : int;
  w_time_ns : int;
  w_timeouts : int;
  w_overloads : int;
  w_internal_errors : int;
  w_rate : float;  (** requests per second over the window *)
  w_p50_ns : int;
  w_p95_ns : int;
}

val window : snapshot -> now_ns:int64 -> minutes:int -> window_stat
(** Folds the rolling slots covering the last [minutes] minutes (current
    minute included) into one window view.  [now_ns] is a {!now_ns}
    reading; quantiles come off the summed per-minute histograms. *)

val snapshot : t -> snapshot

val zero : snapshot
(** What {!snapshot} returns on a fresh bundle. *)

val add : snapshot -> snapshot -> snapshot
(** Counter-wise sum (pattern rows merged by number; [batch_domains] takes
    the right operand's when it has batches). *)

val equal : snapshot -> snapshot -> bool

val total_pattern_time_ns : snapshot -> int

val pp : Format.formatter -> snapshot -> unit
(** Human-readable table (the CLI's [--stats] output). *)

val to_value : snapshot -> Orm_json.t
(** The snapshot as a JSON value (histograms trimmed to their last
    non-empty bucket) — the checking service splices it into [stats]
    responses. *)

val to_json : snapshot -> string
(** {!to_value} compactly printed: a single-line JSON object. *)

val of_value : Orm_json.t -> (snapshot, string) result
(** Reads what {!to_value} built (and any JSON object with the same
    fields; unknown fields are ignored, missing ones default to zero so
    snapshots from older builds still parse). *)

val of_json : string -> (snapshot, string) result
(** {!Orm_json.of_string} + {!of_value}.  [Error] describes the first
    offending byte offset. *)
