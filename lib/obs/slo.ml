(* Rolling-window SLO evaluation over the telemetry ring.

   The service-level objective is stated as "goal fraction of requests
   good", where a request is bad when it timed out, was shed by admission
   control, or died on an internal error.  The error budget of a window is
   the allowed bad fraction (1 - goal); what remains is reported as a
   0..1 gauge so an operator can alert on budget exhaustion rather than on
   instantaneous spikes.  A separate latency target (p95 <= target_p95_ms)
   is evaluated per window against the ring's histogram quantile. *)

module Metrics = Orm_telemetry.Metrics
module J = Orm_json

type config = {
  target_p95_ms : int;  (* recent p95 must sit at or below this *)
  goal : float;  (* fraction of requests that must be good, e.g. 0.99 *)
}

let default = { target_p95_ms = 250; goal = 0.99 }

type window_report = {
  minutes : int;
  requests : int;
  rate : float;  (* requests per second *)
  p50_ns : int;
  p95_ns : int;
  timeouts : int;
  overloads : int;
  internal_errors : int;
  deadline_miss_ratio : float;
  overload_ratio : float;
  error_budget_remaining : float;  (* 0..1; 1 = untouched budget *)
  p95_ok : bool;
}

type report = { config : config; windows : window_report list }

let windows_minutes = [ 1; 5; 15 ]

let ratio num den = if den <= 0 then 0.0 else float_of_int num /. float_of_int den

let window_report config ~minutes (w : Metrics.window_stat) =
  let bad = w.Metrics.w_timeouts + w.Metrics.w_overloads + w.Metrics.w_internal_errors in
  (* overloads are rejected before being counted as requests, so the
     denominator is every admission decision, not just answered requests *)
  let total = w.Metrics.w_requests + w.Metrics.w_overloads in
  let bad_ratio = ratio bad total in
  let budget = 1.0 -. config.goal in
  let remaining =
    if budget <= 0.0 then (if bad > 0 then 0.0 else 1.0)
    else Float.max 0.0 (1.0 -. (bad_ratio /. budget))
  in
  {
    minutes;
    requests = w.Metrics.w_requests;
    rate = w.Metrics.w_rate;
    p50_ns = w.Metrics.w_p50_ns;
    p95_ns = w.Metrics.w_p95_ns;
    timeouts = w.Metrics.w_timeouts;
    overloads = w.Metrics.w_overloads;
    internal_errors = w.Metrics.w_internal_errors;
    deadline_miss_ratio = ratio w.Metrics.w_timeouts total;
    overload_ratio = ratio w.Metrics.w_overloads total;
    error_budget_remaining = remaining;
    p95_ok = w.Metrics.w_p95_ns <= config.target_p95_ms * 1_000_000;
  }

let evaluate config ~now_ns snapshot =
  {
    config;
    windows =
      List.map
        (fun minutes ->
          window_report config ~minutes
            (Metrics.window snapshot ~now_ns ~minutes))
        windows_minutes;
  }

let window_label minutes = string_of_int minutes ^ "m"

let to_value r =
  J.Obj
    [
      ("target_p95_ms", J.Int r.config.target_p95_ms);
      ("goal", J.Float r.config.goal);
      ( "windows",
        J.List
          (List.map
             (fun w ->
               J.Obj
                 [
                   ("window", J.String (window_label w.minutes));
                   ("requests", J.Int w.requests);
                   ("rate_per_s", J.Float w.rate);
                   ("p50_ns", J.Int w.p50_ns);
                   ("p95_ns", J.Int w.p95_ns);
                   ("timeouts", J.Int w.timeouts);
                   ("overloads", J.Int w.overloads);
                   ("internal_errors", J.Int w.internal_errors);
                   ("deadline_miss_ratio", J.Float w.deadline_miss_ratio);
                   ("overload_ratio", J.Float w.overload_ratio);
                   ("error_budget_remaining", J.Float w.error_budget_remaining);
                   ("p95_ok", J.Bool w.p95_ok);
                 ])
             r.windows) );
    ]
