(** Per-request NDJSON audit log with size-based rotation and tail-sampled
    trace dumps.

    One {!record} per request.  Records are buffered as complete lines
    and flushed as a single [write(2)] on an [O_APPEND] descriptor —
    when the buffer passes a few KiB or about a second has elapsed, and
    always on {!flush} and {!close} — so prefork workers can share one
    path without interleaving lines while the steady-state cost per
    record stays a buffer append.  When the file would exceed
    [max_bytes] it is renamed to [path ^ ".1"] and reopened (one
    rotation generation is kept); the writer follows rotations performed
    by sibling workers by re-checking the inode periodically.  Write
    errors disable the log for the rest of the process instead of
    failing requests.

    [ormcheck audit FILE] reads the log back through {!summarize}. *)

type t

val default_max_bytes : int
(** 64 MiB. *)

val create : ?max_bytes:int -> string -> (t, string) result
(** Open (or create) the audit log at the given path. *)

val path : t -> string

val flush : t -> unit
(** Pushes buffered lines to the file now. *)

val close : t -> unit
(** Flushes, then closes the descriptor; further writes are dropped. *)

type record = {
  ts : float;  (** wall-clock unix seconds (for log correlation) *)
  id : string option;  (** client-supplied request id *)
  meth : string;
  digest : string option;  (** schema digest (the cache key's subject) *)
  status : string;  (** ok | error | timeout | overloaded *)
  cached : bool;
  tier : string;  (** which cache tier answered: memory | disk | none *)
  planner : Orm_json.t option;  (** the response's planner object, verbatim *)
  phases : (string * int) list;  (** per-phase wall ns (parse, compute, ...) *)
  elapsed_ns : int;
  deadline_ms : int option;
  deadline_slack_ms : int option;  (** deadline - elapsed; negative = missed *)
  worker_pid : int;
  trace : Orm_trace.Trace.event list option;
      (** tail-sampled span dump: present when the request ran slower than
          the rolling p95 or timed out *)
}

val trace_value : Orm_trace.Trace.event list -> Orm_json.t
val record_to_value : record -> Orm_json.t
val write : t -> record -> unit

(** {1 Summarizing} *)

type digest_row = {
  d_digest : string;
  d_count : int;
  d_max_ns : int;
  d_total_ns : int;
}

type summary = {
  records : int;
  malformed : int;
  statuses : (string * int) list;  (** descending by count *)
  tiers : (string * int) list;
  decisions : (string * int) list;  (** planner decision mix *)
  s_p50_ns : int;  (** exact quantiles over every record's elapsed_ns *)
  s_p95_ns : int;
  s_max_ns : int;
  slow_digests : digest_row list;  (** descending by max elapsed *)
  sampled_traces : int;
  deadline_misses : int;
  slo_attained : float option;
      (** fraction of records at or under [target_p95_ms], when given *)
}

val summarize :
  ?target_p95_ms:int -> ?top:int -> string -> (summary, string) result
(** Reads an audit file back.  Malformed lines are counted, not fatal
    (a crash mid-write truncates at most one line).  [top] bounds
    [slow_digests] (default 10). *)

val pp_summary : Format.formatter -> summary -> unit
