(* Prometheus text exposition format 0.0.4 over a telemetry snapshot.

   The renderer is deliberately dependency-free: families are written in a
   fixed order with # HELP/# TYPE headers, the log-scale latency
   histograms are re-read as cumulative `_bucket` series (le in seconds,
   the open-ended last bucket as +Inf), and label values are escaped per
   the format (backslash, double-quote, newline).  [lint] is the matching
   hand-rolled `promtool check metrics` stand-in used by the tests and the
   CI smoke step, so the scrape is validated even where promtool is not
   installed. *)

module Metrics = Orm_telemetry.Metrics

let content_type = "text/plain; version=0.0.4; charset=utf-8"

let escape_label v =
  let buf = Buffer.create (String.length v + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let escape_help v =
  let buf = Buffer.create (String.length v + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> k ^ "=\"" ^ escape_label v ^ "\"") labels)
      ^ "}"

let sample ~name ?(labels = []) value =
  name ^ render_labels labels ^ " " ^ value

(* Go's strconv.ParseFloat accepts both; %.10g keeps sub-bucket precision
   (2^-30 s) while printing small integers exactly. *)
let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.10g" f

let seconds_of_ns ns = float_of_int ns /. 1e9

type family = {
  f_name : string;
  f_typ : string;  (* "counter" | "gauge" | "histogram" *)
  f_help : string;
  f_samples : (string * (string * string) list * string) list;
      (* suffix ("" or "_bucket"/"_sum"/"_count"), labels, value *)
}

let family ~name ~typ ~help samples =
  {
    f_name = name;
    f_typ = typ;
    f_help = help;
    f_samples = List.map (fun (labels, v) -> ("", labels, v)) samples;
  }

(* One histogram series under [labels]: cumulative buckets, then sum and
   count.  [hist] is a telemetry log-scale histogram (per-bucket counts). *)
let histogram_samples ~labels ~hist ~sum_ns =
  let running = ref 0 in
  let buckets =
    List.init (Array.length hist) (fun i ->
        running := !running + hist.(i);
        let le =
          match Metrics.bucket_upper_ns i with
          | None -> "+Inf"
          | Some ns -> fmt_float (seconds_of_ns ns)
        in
        ("_bucket", labels @ [ ("le", le) ], string_of_int !running))
  in
  buckets
  @ [
      ("_sum", labels, fmt_float (seconds_of_ns sum_ns));
      ("_count", labels, string_of_int !running);
    ]

let histogram_family ~name ~help series =
  {
    f_name = name;
    f_typ = "histogram";
    f_help = help;
    f_samples =
      List.concat_map
        (fun (labels, hist, sum_ns) -> histogram_samples ~labels ~hist ~sum_ns)
        series;
  }

let print_family buf f =
  Buffer.add_string buf ("# HELP " ^ f.f_name ^ " " ^ escape_help f.f_help ^ "\n");
  Buffer.add_string buf ("# TYPE " ^ f.f_name ^ " " ^ f.f_typ ^ "\n");
  List.iter
    (fun (suffix, labels, value) ->
      Buffer.add_string buf (sample ~name:(f.f_name ^ suffix) ~labels value);
      Buffer.add_char buf '\n')
    f.f_samples

let pattern_stat_rows key stats name_of =
  List.concat_map
    (fun (p : Metrics.pattern_stat) -> [ ([ (key, name_of p.Metrics.pattern) ], p) ])
    stats

let int_sample v = string_of_int v

let render ?workers ?uptime_s ?slo (s : Metrics.snapshot) =
  let gauges_prefix =
    (match uptime_s with
    | None -> []
    | Some up ->
        [
          family ~name:"ormcheck_uptime_seconds" ~typ:"gauge"
            ~help:"Seconds since this server process started."
            [ ([], fmt_float up) ];
        ])
    @
    match workers with
    | None -> []
    | Some w ->
        [
          family ~name:"ormcheck_workers" ~typ:"gauge"
            ~help:"Prefork worker processes serving this endpoint."
            [ ([], int_sample w) ];
        ]
  in
  let backend_rows = pattern_stat_rows "backend" s.Metrics.backends Metrics.backend_name in
  let pattern_rows =
    pattern_stat_rows "pattern" s.Metrics.patterns string_of_int
  in
  let families =
    gauges_prefix
    @ [
        family ~name:"ormcheck_requests_total" ~typ:"counter"
          ~help:"Protocol requests answered by the checking service."
          [ ([], int_sample s.Metrics.requests) ];
        histogram_family ~name:"ormcheck_request_seconds"
          ~help:"Request wall time (log-scale telemetry histogram)."
          [ ([], s.Metrics.request_hist, s.Metrics.request_time_ns) ];
        family ~name:"ormcheck_timeouts_total" ~typ:"counter"
          ~help:"Requests abandoned because their deadline expired."
          [ ([], int_sample s.Metrics.timeouts) ];
        family ~name:"ormcheck_overloads_total" ~typ:"counter"
          ~help:"Requests rejected by admission control."
          [ ([], int_sample s.Metrics.overloads) ];
        family ~name:"ormcheck_internal_errors_total" ~typ:"counter"
          ~help:"Requests answered with a generic internal error."
          [ ([], int_sample s.Metrics.internal_errors) ];
        family ~name:"ormcheck_checks_total" ~typ:"counter"
          ~help:"Whole-schema checks executed by the engine."
          [ ([], int_sample s.Metrics.checks) ];
        family ~name:"ormcheck_batches_total" ~typ:"counter"
          ~help:"Parallel batch requests executed."
          [ ([], int_sample s.Metrics.batches) ];
        family ~name:"ormcheck_cache_hits_total" ~typ:"counter"
          ~help:"Result-cache hits by tier."
          [
            ([ ("tier", "memory") ], int_sample s.Metrics.cache_hits);
            ([ ("tier", "disk") ], int_sample s.Metrics.disk_hits);
            ([ ("tier", "canon") ], int_sample s.Metrics.canon_hits);
          ];
        family ~name:"ormcheck_cache_misses_total" ~typ:"counter"
          ~help:"Result-cache misses by tier."
          [
            ([ ("tier", "memory") ], int_sample s.Metrics.cache_misses);
            ([ ("tier", "disk") ], int_sample s.Metrics.disk_misses);
            ([ ("tier", "canon") ], int_sample s.Metrics.canon_misses);
          ];
        family ~name:"ormcheck_registry_ingested_total" ~typ:"counter"
          ~help:"New entries added to the registry store."
          [ ([], int_sample s.Metrics.registry_ingested) ];
        family ~name:"ormcheck_registry_duplicates_total" ~typ:"counter"
          ~help:"Registry ingests deduplicated by canonical digest."
          [ ([], int_sample s.Metrics.registry_duplicates) ];
        family ~name:"ormcheck_registry_queries_total" ~typ:"counter"
          ~help:"Covering-index queries answered by the registry."
          [ ([], int_sample s.Metrics.registry_queries) ];
        family ~name:"ormcheck_plan_decisions_total" ~typ:"counter"
          ~help:"Backend-planner decisions by shape."
          [
            ([ ("decision", "patterns_only") ], int_sample s.Metrics.plan_patterns_only);
            ([ ("decision", "dlr") ], int_sample s.Metrics.plan_backend_dlr);
            ([ ("decision", "sat") ], int_sample s.Metrics.plan_backend_sat);
            ([ ("decision", "sat_lazy") ], int_sample s.Metrics.plan_backend_sat_lazy);
            ([ ("decision", "race") ], int_sample s.Metrics.plan_races);
          ];
        family ~name:"ormcheck_plan_cancelled_total" ~typ:"counter"
          ~help:"Races whose losing backend was actively cancelled."
          [ ([], int_sample s.Metrics.plan_cancelled) ];
        family ~name:"ormcheck_cegar_rounds_total" ~typ:"counter"
          ~help:"CEGAR refinement rounds across lazy-grounding solves."
          [ ([], int_sample s.Metrics.cegar_rounds) ];
        family ~name:"ormcheck_cegar_instantiated_clauses_total" ~typ:"counter"
          ~help:"Constraint instances grounded on demand by the CEGAR loop."
          [ ([], int_sample s.Metrics.cegar_instantiated) ];
        family ~name:"ormcheck_cegar_learned_clauses_total" ~typ:"counter"
          ~help:"Conflict clauses learned by the incremental SAT core."
          [ ([], int_sample s.Metrics.cegar_learned) ];
        family ~name:"ormcheck_cegar_restarts_total" ~typ:"counter"
          ~help:"Search restarts performed by the incremental SAT core."
          [ ([], int_sample s.Metrics.cegar_restarts) ];
      ]
    @ (if backend_rows = [] then []
       else
         [
           family ~name:"ormcheck_backend_runs_total" ~typ:"counter"
             ~help:"Complete-backend runs."
             (List.map
                (fun (l, (p : Metrics.pattern_stat)) -> (l, int_sample p.Metrics.runs))
                backend_rows);
           family ~name:"ormcheck_backend_definitive_total" ~typ:"counter"
             ~help:"Complete-backend runs that produced a definitive verdict."
             (List.map
                (fun (l, (p : Metrics.pattern_stat)) -> (l, int_sample p.Metrics.fires))
                backend_rows);
           histogram_family ~name:"ormcheck_backend_seconds"
             ~help:"Complete-backend wall time by backend."
             (List.map
                (fun (l, (p : Metrics.pattern_stat)) ->
                  (l, p.Metrics.hist, p.Metrics.time_ns))
                backend_rows);
         ])
    @ (if pattern_rows = [] then []
       else
         [
           family ~name:"ormcheck_pattern_runs_total" ~typ:"counter"
             ~help:"Unsatisfiability-pattern executions by pattern number."
             (List.map
                (fun (l, (p : Metrics.pattern_stat)) -> (l, int_sample p.Metrics.runs))
                pattern_rows);
           family ~name:"ormcheck_pattern_fires_total" ~typ:"counter"
             ~help:"Diagnostics produced by pattern number."
             (List.map
                (fun (l, (p : Metrics.pattern_stat)) -> (l, int_sample p.Metrics.fires))
                pattern_rows);
           family ~name:"ormcheck_pattern_seconds_total" ~typ:"counter"
             ~help:"Wall seconds spent in each pattern."
             (List.map
                (fun (l, (p : Metrics.pattern_stat)) ->
                  (l, fmt_float (seconds_of_ns p.Metrics.time_ns)))
                pattern_rows);
         ])
    @
    match slo with
    | None -> []
    | Some (r : Slo.report) ->
        let per_window f =
          List.map
            (fun (w : Slo.window_report) ->
              ([ ("window", Slo.window_label w.Slo.minutes) ], f w))
            r.Slo.windows
        in
        [
          family ~name:"ormcheck_request_rate" ~typ:"gauge"
            ~help:"Recent request rate (requests per second)."
            (per_window (fun w -> fmt_float w.Slo.rate));
          family ~name:"ormcheck_request_recent_p50_seconds" ~typ:"gauge"
            ~help:"Recent request latency p50 from the rolling ring."
            (per_window (fun w -> fmt_float (seconds_of_ns w.Slo.p50_ns)));
          family ~name:"ormcheck_request_recent_p95_seconds" ~typ:"gauge"
            ~help:"Recent request latency p95 from the rolling ring."
            (per_window (fun w -> fmt_float (seconds_of_ns w.Slo.p95_ns)));
          family ~name:"ormcheck_deadline_miss_ratio" ~typ:"gauge"
            ~help:"Recent fraction of requests whose deadline expired."
            (per_window (fun w -> fmt_float w.Slo.deadline_miss_ratio));
          family ~name:"ormcheck_overload_ratio" ~typ:"gauge"
            ~help:"Recent fraction of requests shed by admission control."
            (per_window (fun w -> fmt_float w.Slo.overload_ratio));
          family ~name:"ormcheck_slo_error_budget_remaining" ~typ:"gauge"
            ~help:"Remaining error budget in the window (1 = untouched)."
            (per_window (fun w -> fmt_float w.Slo.error_budget_remaining));
          family ~name:"ormcheck_slo_target_p95_seconds" ~typ:"gauge"
            ~help:"Configured p95 latency target."
            [
              ( [],
                fmt_float
                  (float_of_int r.Slo.config.Slo.target_p95_ms /. 1e3) );
            ];
          family ~name:"ormcheck_slo_goal_ratio" ~typ:"gauge"
            ~help:"Configured fraction of requests that must be good."
            [ ([], fmt_float r.Slo.config.Slo.goal) ];
        ]
  in
  let buf = Buffer.create 8192 in
  List.iter (print_family buf) families;
  Buffer.contents buf

(* ---- lint -------------------------------------------------------------- *)

(* A promtool-flavoured validator for the text format: metric/label name
   grammar, label-value quoting and escapes, float-parsable sample values,
   TYPE-before-sample and single-TYPE-per-name, no duplicate series, and
   histogram shape (cumulative buckets nondecreasing in le, +Inf bucket
   present and equal to _count). *)

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let valid_name s =
  String.length s > 0
  && is_name_start s.[0]
  && String.for_all is_name_char s

let base_name name =
  let strip suffix =
    let n = String.length name and k = String.length suffix in
    if n > k && String.sub name (n - k) k = suffix then
      Some (String.sub name 0 (n - k))
    else None
  in
  match strip "_bucket" with
  | Some b -> b
  | None -> (
      match strip "_sum" with
      | Some b -> b
      | None -> ( match strip "_count" with Some b -> b | None -> name))

exception Lint of string

(* Parses `name{k="v",...} value` into (name, labels, value).  Positions
   are byte offsets into [line]. *)
let parse_sample ~lineno line =
  let fail msg = raise (Lint (Printf.sprintf "line %d: %s" lineno msg)) in
  let n = String.length line in
  let i = ref 0 in
  while !i < n && is_name_char line.[!i] do incr i done;
  let name = String.sub line 0 !i in
  if not (valid_name name) then fail ("invalid metric name " ^ String.escaped name);
  let labels = ref [] in
  if !i < n && line.[!i] = '{' then begin
    incr i;
    let parsing = ref true in
    while !parsing do
      if !i >= n then fail "unterminated label set";
      if line.[!i] = '}' then begin
        incr i;
        parsing := false
      end
      else begin
        let start = !i in
        while !i < n && is_name_char line.[!i] do incr i done;
        let lname = String.sub line start (!i - start) in
        if not (valid_name lname) then fail ("invalid label name " ^ String.escaped lname);
        if !i >= n || line.[!i] <> '=' then fail "expected = after label name";
        incr i;
        if !i >= n || line.[!i] <> '"' then fail "expected quoted label value";
        incr i;
        let v = Buffer.create 16 in
        let in_value = ref true in
        while !in_value do
          if !i >= n then fail "unterminated label value";
          (match line.[!i] with
          | '"' -> in_value := false
          | '\\' ->
              if !i + 1 >= n then fail "dangling backslash in label value";
              (match line.[!i + 1] with
              | '\\' -> Buffer.add_char v '\\'
              | '"' -> Buffer.add_char v '"'
              | 'n' -> Buffer.add_char v '\n'
              | c -> fail (Printf.sprintf "bad escape \\%c in label value" c));
              incr i
          | c -> Buffer.add_char v c);
          incr i
        done;
        labels := (lname, Buffer.contents v) :: !labels;
        if !i < n && line.[!i] = ',' then incr i
        else if !i >= n || line.[!i] <> '}' then fail "expected , or } in label set"
      end
    done
  end;
  if !i >= n || line.[!i] <> ' ' then fail "expected space before sample value";
  while !i < n && line.[!i] = ' ' do incr i done;
  let rest = String.sub line !i (n - !i) in
  let value =
    match String.index_opt rest ' ' with
    | None -> rest
    | Some sp -> String.sub rest 0 sp  (* optional timestamp follows *)
  in
  (match value with
  | "+Inf" | "-Inf" | "NaN" -> ()
  | v -> (
      match float_of_string_opt v with
      | Some _ -> ()
      | None -> fail ("unparsable sample value " ^ String.escaped v)));
  (name, List.rev !labels, value)

let lint text =
  let types : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let sampled : (string, unit) Hashtbl.t = Hashtbl.create 64 in
  (* histogram bookkeeping: (base, non-le labels) -> le buckets in order,
     and the matching _count values *)
  let buckets : (string * (string * string) list, (float * float) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let counts : (string * (string * string) list, float) Hashtbl.t = Hashtbl.create 16 in
  try
    List.iteri
      (fun idx line ->
        let lineno = idx + 1 in
        let fail msg = raise (Lint (Printf.sprintf "line %d: %s" lineno msg)) in
        if line = "" then ()
        else if String.length line >= 1 && line.[0] = '#' then begin
          match String.split_on_char ' ' line with
          | "#" :: "TYPE" :: name :: [ typ ] ->
              if not (valid_name name) then fail ("invalid TYPE name " ^ name);
              (match typ with
              | "counter" | "gauge" | "histogram" | "summary" | "untyped" -> ()
              | t -> fail ("unknown TYPE " ^ t));
              if Hashtbl.mem types name then fail ("duplicate TYPE for " ^ name);
              if Hashtbl.mem sampled name then
                fail ("TYPE for " ^ name ^ " after its samples");
              Hashtbl.replace types name typ
          | "#" :: "TYPE" :: _ -> fail "malformed TYPE comment"
          | "#" :: "HELP" :: name :: _ ->
              if not (valid_name name) then fail ("invalid HELP name " ^ name)
          | _ -> ()  (* free-form comment *)
        end
        else begin
          let name, labels, value = parse_sample ~lineno line in
          let base = base_name name in
          Hashtbl.replace sampled base ();
          let series_key =
            name ^ render_labels (List.sort compare labels)
          in
          if Hashtbl.mem sampled ("series:" ^ series_key) then
            fail ("duplicate sample " ^ series_key);
          Hashtbl.replace sampled ("series:" ^ series_key) ();
          match Hashtbl.find_opt types base with
          | Some "histogram" ->
              let non_le = List.filter (fun (k, _) -> k <> "le") labels in
              let key = (base, List.sort compare non_le) in
              let fvalue =
                match value with
                | "+Inf" -> infinity
                | "-Inf" -> neg_infinity
                | "NaN" -> nan
                | v -> float_of_string v
              in
              if name = base ^ "_bucket" then begin
                let le =
                  match List.assoc_opt "le" labels with
                  | None -> fail (base ^ "_bucket without le label")
                  | Some "+Inf" -> infinity
                  | Some le -> (
                      match float_of_string_opt le with
                      | Some f -> f
                      | None -> fail ("unparsable le " ^ le))
                in
                match Hashtbl.find_opt buckets key with
                | Some r -> r := (le, fvalue) :: !r
                | None -> Hashtbl.replace buckets key (ref [ (le, fvalue) ])
              end
              else if name = base ^ "_count" then
                Hashtbl.replace counts key fvalue
              else if name = base then
                fail ("histogram " ^ base ^ " has a bare sample")
          | Some _ when name <> base ->
              fail (name ^ " conflicts with TYPE of " ^ base)
          | Some _ | None ->
              if not (Hashtbl.mem types name) then
                fail ("sample " ^ name ^ " without preceding TYPE")
        end)
      (String.split_on_char '\n' text);
    (* histogram shape checks *)
    Hashtbl.iter
      (fun (base, labels) r ->
        let bs = List.rev !r in
        let sorted = List.sort (fun (a, _) (b, _) -> compare a b) bs in
        if bs <> sorted then
          raise (Lint (base ^ ": buckets out of le order"));
        let rec monotone = function
          | (_, a) :: ((_, b) :: _ as rest) ->
              if b < a then
                raise (Lint (base ^ ": bucket counts decrease with le"));
              monotone rest
          | _ -> ()
        in
        monotone bs;
        (match List.rev bs with
        | (le, last) :: _ ->
            if le <> infinity then raise (Lint (base ^ ": missing +Inf bucket"));
            (match Hashtbl.find_opt counts (base, labels) with
            | Some c when c <> last ->
                raise (Lint (base ^ ": _count differs from +Inf bucket"))
            | Some _ -> ()
            | None -> raise (Lint (base ^ ": missing _count")))
        | [] -> raise (Lint (base ^ ": empty histogram"))))
      buckets;
    Ok ()
  with Lint msg -> Error msg
