(** Rolling-window SLO evaluation over the telemetry per-minute ring.

    A request is {e bad} when it timed out, was shed by admission control,
    or raised inside the server; the objective says at least [goal] of
    all admission decisions in a window must be good, and the recent p95
    must sit at or below [target_p95_ms].  {!evaluate} folds the ring
    into 1m/5m/15m {!window_report}s; the [error_budget_remaining] gauge
    is 1 with an untouched budget and 0 when the window's bad fraction
    has consumed the whole allowance (1 - goal). *)

type config = {
  target_p95_ms : int;
  goal : float;  (** fraction of requests that must be good, e.g. 0.99 *)
}

val default : config
(** 250 ms p95 target, 0.99 goal — overridden by the [slo_p95_ms] /
    [slo_goal] server-config keys. *)

type window_report = {
  minutes : int;
  requests : int;
  rate : float;  (** requests per second over the window *)
  p50_ns : int;
  p95_ns : int;
  timeouts : int;
  overloads : int;
  internal_errors : int;
  deadline_miss_ratio : float;
  overload_ratio : float;
  error_budget_remaining : float;  (** 0..1 *)
  p95_ok : bool;
}

type report = { config : config; windows : window_report list }

val windows_minutes : int list
(** The windows {!evaluate} reports: [1; 5; 15]. *)

val window_label : int -> string
(** ["1m"], ["5m"], ["15m"] — the [window] label value used by both the
    [slo] stats section and the Prometheus gauges. *)

val evaluate :
  config -> now_ns:int64 -> Orm_telemetry.Metrics.snapshot -> report

val to_value : report -> Orm_json.t
(** The [slo] section of a [stats] response. *)
