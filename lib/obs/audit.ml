(* Per-request audit log: one NDJSON line per request, with size-based
   rotation and tail-sampled trace dumps.

   The writer opens the file with O_APPEND and batches whole lines in a
   buffer, flushed as a single write(2) when the buffer passes
   [flush_bytes] or [flush_interval_ns] has elapsed — so prefork workers
   can share one path without interleaving lines (O_APPEND keeps each
   flush contiguous), and the steady-state cost per record is a buffer
   append, not a syscall.  Rotation renames the live file to
   [path ^ ".1"] and reopens; because a sibling worker may have rotated
   underneath us, the writer re-checks the inode every few flushes and
   follows the rename.  A failed write disables the log (sticky) rather
   than failing requests: auditing must never take the service down. *)

module J = Orm_json
module Trace = Orm_trace.Trace

type t = {
  path : string;
  max_bytes : int;
  mutable fd : Unix.file_descr option;  (* None once disabled by an error *)
  mutable flushes : int;
  mutable file_bytes : int;  (* our view of the live file's size *)
  mutable last_flush_ns : int64;
  buf : Buffer.t;  (* complete lines not yet written *)
  scratch : Buffer.t;  (* one record being serialized (reused) *)
  mutex : Mutex.t;
}

let default_max_bytes = 64 * 1024 * 1024
let flush_bytes = 8 * 1024
let flush_interval_ns = 1_000_000_000L

let open_append path =
  Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644

let create ?(max_bytes = default_max_bytes) path =
  match open_append path with
  | fd ->
      Ok
        {
          path;
          max_bytes;
          fd = Some fd;
          flushes = 0;
          file_bytes = (Unix.fstat fd).Unix.st_size;
          last_flush_ns = 0L;
          buf = Buffer.create flush_bytes;
          scratch = Buffer.create 512;
          mutex = Mutex.create ();
        }
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e))

let path t = t.path

(* With [t.mutex] held: push the buffered lines out in one write. *)
let flush_locked t fd =
  let n = Buffer.length t.buf in
  if n > 0 then begin
    let s = Buffer.contents t.buf in
    Buffer.clear t.buf;
    if Unix.write_substring fd s 0 n <> n then begin
      t.fd <- None;
      try Unix.close fd with Unix.Unix_error _ -> ()
    end
    else t.file_bytes <- t.file_bytes + n
  end;
  t.last_flush_ns <- Orm_telemetry.Metrics.now_ns ()

let flush t =
  Mutex.lock t.mutex;
  (match t.fd with
  | None -> ()
  | Some fd -> ( try flush_locked t fd with Unix.Unix_error _ -> t.fd <- None));
  Mutex.unlock t.mutex

let close t =
  flush t;
  Mutex.lock t.mutex;
  (match t.fd with
  | Some fd ->
      t.fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  Mutex.unlock t.mutex

(* With [t.mutex] held. *)
let rotate_locked t fd =
  (try Unix.rename t.path (t.path ^ ".1") with Unix.Unix_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let fd = open_append t.path in
  t.fd <- Some fd;
  t.file_bytes <- (Unix.fstat fd).Unix.st_size;
  fd

(* With [t.mutex] held: follow a sibling worker's rotation, and re-sync
   our size estimate with what siblings have appended meanwhile. *)
let refresh_locked t fd =
  match (Unix.fstat fd, Unix.stat t.path) with
  | cur, live when cur.Unix.st_ino <> live.Unix.st_ino ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      let fd = open_append t.path in
      t.fd <- Some fd;
      t.file_bytes <- (Unix.fstat fd).Unix.st_size;
      fd
  | cur, _ ->
      t.file_bytes <- cur.Unix.st_size;
      fd
  | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
      (* someone rotated but nobody reopened yet *)
      (try Unix.close fd with Unix.Unix_error _ -> ());
      let fd = open_append t.path in
      t.fd <- Some fd;
      t.file_bytes <- (Unix.fstat fd).Unix.st_size;
      fd

(* With [t.mutex] held: the serialized line sits in [t.scratch]; queue
   it, rotating when the live file would pass [max_bytes] and flushing
   when the buffer is full or stale. *)
let queue_scratch_locked t fd =
  let len = Buffer.length t.scratch in
  let pending = t.file_bytes + Buffer.length t.buf in
  let fd =
    if pending > 0 && pending + len > t.max_bytes then begin
      flush_locked t fd;
      rotate_locked t fd
    end
    else fd
  in
  Buffer.add_buffer t.buf t.scratch;
  let now = Orm_telemetry.Metrics.now_ns () in
  if
    Buffer.length t.buf >= flush_bytes
    || Int64.sub now t.last_flush_ns > flush_interval_ns
  then begin
    t.flushes <- t.flushes + 1;
    let fd = if t.flushes mod 32 = 0 then refresh_locked t fd else fd in
    match t.fd with
    | Some _ -> flush_locked t fd
    | None -> ()
  end

(* ---- records ----------------------------------------------------------- *)

type record = {
  ts : float;  (* wall clock, unix seconds: operators correlate with logs *)
  id : string option;
  meth : string;
  digest : string option;
  status : string;
  cached : bool;
  tier : string;  (* "memory" | "disk" | "none" *)
  planner : J.t option;  (* the response's planner object, verbatim *)
  phases : (string * int) list;  (* phase name -> wall ns *)
  elapsed_ns : int;
  deadline_ms : int option;
  deadline_slack_ms : int option;  (* deadline - elapsed; negative = missed *)
  worker_pid : int;
  trace : Trace.event list option;  (* tail-sampled span dump *)
}

let phase_char = function
  | Trace.Begin -> "B"
  | Trace.End -> "E"
  | Trace.Instant -> "i"
  | Trace.Counter -> "C"

let trace_value events =
  J.List
    (List.map
       (fun (e : Trace.event) ->
         J.Obj
           ([
              ("ph", J.String (phase_char e.Trace.phase));
              ("name", J.String e.Trace.name);
              ("ts_ns", J.Int e.Trace.ts_ns);
              ("dom", J.Int e.Trace.domain);
            ]
           @
           match e.Trace.phase with
           | Trace.Counter -> [ ("value", J.Int e.Trace.value) ]
           | _ -> []))
       events)

let record_to_value r =
  J.obj
    (J.field "ts" (J.Float r.ts)
    @ J.field_opt "id" (Option.map (fun s -> J.String s) r.id)
    @ J.field "method" (J.String r.meth)
    @ J.field_opt "digest" (Option.map (fun s -> J.String s) r.digest)
    @ J.field "status" (J.String r.status)
    @ J.field "cached" (J.Bool r.cached)
    @ J.field "tier" (J.String r.tier)
    @ J.field_opt "planner" r.planner
    @ J.field "phases"
        (J.Obj (List.map (fun (k, ns) -> (k, J.Int ns)) r.phases))
    @ J.field "elapsed_ns" (J.Int r.elapsed_ns)
    @ J.field_opt "deadline_ms" (Option.map (fun n -> J.Int n) r.deadline_ms)
    @ J.field_opt "deadline_slack_ms"
        (Option.map (fun n -> J.Int n) r.deadline_slack_ms)
    @ J.field "pid" (J.Int r.worker_pid)
    @ J.field_opt "trace" (Option.map trace_value r.trace))

(* The hot path serializes by hand into a buffer rather than building a
   {!J.t} tree per request: the shape is flat and fixed, and the generic
   printer costs several microseconds the audit budget doesn't have.
   [record_to_value] remains the reference shape — the two must agree
   field for field (the parser in [summarize] reads either). *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let emit_record buf r =
  let str_field name v =
    Buffer.add_char buf ',';
    Buffer.add_string buf name;
    Buffer.add_char buf ':';
    add_json_string buf v
  and int_field name v =
    Buffer.add_char buf ',';
    Buffer.add_string buf name;
    Buffer.add_char buf ':';
    Buffer.add_string buf (string_of_int v)
  in
  Buffer.add_string buf "{\"ts\":";
  (* unix seconds at microsecond precision, without the cost of float
     formatting *)
  let sec = int_of_float r.ts in
  let usec = int_of_float (((r.ts -. float_of_int sec) *. 1e6) +. 0.5) in
  let sec, usec = if usec >= 1_000_000 then (sec + 1, 0) else (sec, usec) in
  Buffer.add_string buf (string_of_int sec);
  Buffer.add_char buf '.';
  let u = string_of_int usec in
  for _ = String.length u to 5 do
    Buffer.add_char buf '0'
  done;
  Buffer.add_string buf u;
  (match r.id with None -> () | Some id -> str_field "\"id\"" id);
  str_field "\"method\"" r.meth;
  (match r.digest with None -> () | Some d -> str_field "\"digest\"" d);
  str_field "\"status\"" r.status;
  Buffer.add_string buf ",\"cached\":";
  Buffer.add_string buf (if r.cached then "true" else "false");
  str_field "\"tier\"" r.tier;
  (match r.planner with
  | None -> ()
  | Some p ->
      Buffer.add_string buf ",\"planner\":";
      Buffer.add_string buf (J.to_string p));
  Buffer.add_string buf ",\"phases\":{";
  List.iteri
    (fun i (k, ns) ->
      if i > 0 then Buffer.add_char buf ',';
      add_json_string buf k;
      Buffer.add_char buf ':';
      Buffer.add_string buf (string_of_int ns))
    r.phases;
  Buffer.add_char buf '}';
  int_field "\"elapsed_ns\"" r.elapsed_ns;
  (match r.deadline_ms with
  | None -> ()
  | Some d -> int_field "\"deadline_ms\"" d);
  (match r.deadline_slack_ms with
  | None -> ()
  | Some d -> int_field "\"deadline_slack_ms\"" d);
  int_field "\"pid\"" r.worker_pid;
  (match r.trace with
  | None -> ()
  | Some events ->
      Buffer.add_string buf ",\"trace\":";
      Buffer.add_string buf (J.to_string (trace_value events)));
  Buffer.add_string buf "}\n"

let write t r =
  Mutex.lock t.mutex;
  (match t.fd with
  | None -> ()
  | Some fd -> (
      try
        Buffer.clear t.scratch;
        emit_record t.scratch r;
        queue_scratch_locked t fd
      with Unix.Unix_error _ -> t.fd <- None));
  Mutex.unlock t.mutex

(* ---- summarizing ------------------------------------------------------- *)

type digest_row = {
  d_digest : string;
  d_count : int;
  d_max_ns : int;
  d_total_ns : int;
}

type summary = {
  records : int;
  malformed : int;
  statuses : (string * int) list;  (* descending by count *)
  tiers : (string * int) list;
  decisions : (string * int) list;  (* planner decision mix *)
  s_p50_ns : int;  (* exact quantiles over all records *)
  s_p95_ns : int;
  s_max_ns : int;
  slow_digests : digest_row list;  (* descending by max elapsed *)
  sampled_traces : int;
  deadline_misses : int;
  slo_attained : float option;  (* fraction under target, when given *)
}

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let sorted_counts tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (ka, a) (kb, b) -> compare (b, ka) (a, kb))

let summarize ?target_p95_ms ?(top = 10) path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let statuses = Hashtbl.create 8 in
      let tiers = Hashtbl.create 8 in
      let decisions = Hashtbl.create 8 in
      let digests : (string, digest_row) Hashtbl.t = Hashtbl.create 64 in
      let elapsed = ref [] in
      let records = ref 0 and malformed = ref 0 in
      let sampled = ref 0 and misses = ref 0 and under_target = ref 0 in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             match J.of_string line with
             | Error _ -> incr malformed
             | Ok v ->
                 incr records;
                 let status =
                   Option.value ~default:"?" (J.string_member "status" v)
                 in
                 bump statuses status;
                 bump tiers (Option.value ~default:"none" (J.string_member "tier" v));
                 (match Option.bind (J.member "planner" v) (J.string_member "decision") with
                 | Some d -> bump decisions d
                 | None -> ());
                 let ns =
                   Option.value ~default:0 (J.int_member "elapsed_ns" v)
                 in
                 elapsed := ns :: !elapsed;
                 (match target_p95_ms with
                 | Some t when ns <= t * 1_000_000 -> incr under_target
                 | _ -> ());
                 (* one miss per record, however it shows: negative slack
                    and a timeout verdict usually arrive together *)
                 let missed =
                   (match J.int_member "deadline_slack_ms" v with
                   | Some s -> s < 0
                   | None -> false)
                   || status = "timeout"
                 in
                 if missed then incr misses;
                 if J.member "trace" v <> None then incr sampled;
                 (match J.string_member "digest" v with
                 | None -> ()
                 | Some d ->
                     let prev =
                       Option.value
                         ~default:
                           { d_digest = d; d_count = 0; d_max_ns = 0; d_total_ns = 0 }
                         (Hashtbl.find_opt digests d)
                     in
                     Hashtbl.replace digests d
                       {
                         d_digest = d;
                         d_count = prev.d_count + 1;
                         d_max_ns = max prev.d_max_ns ns;
                         d_total_ns = prev.d_total_ns + ns;
                       })
         done
       with End_of_file -> ());
      close_in ic;
      let xs = Array.of_list !elapsed in
      Array.sort compare xs;
      let n = Array.length xs in
      let pct p = if n = 0 then 0 else xs.(min (n - 1) (p * n / 100)) in
      let slow =
        Hashtbl.fold (fun _ r acc -> r :: acc) digests []
        |> List.sort (fun a b -> compare (b.d_max_ns, a.d_digest) (a.d_max_ns, b.d_digest))
        |> List.filteri (fun i _ -> i < top)
      in
      Ok
        {
          records = !records;
          malformed = !malformed;
          statuses = sorted_counts statuses;
          tiers = sorted_counts tiers;
          decisions = sorted_counts decisions;
          s_p50_ns = pct 50;
          s_p95_ns = pct 95;
          s_max_ns = (if n = 0 then 0 else xs.(n - 1));
          slow_digests = slow;
          sampled_traces = !sampled;
          deadline_misses = !misses;
          slo_attained =
            (match target_p95_ms with
            | None -> None
            | Some _ when !records = 0 -> None
            | Some _ -> Some (float_of_int !under_target /. float_of_int !records));
        }

let pp_ns ppf ns =
  let f = float_of_int ns in
  if f >= 1e9 then Format.fprintf ppf "%.2f s" (f /. 1e9)
  else if f >= 1e6 then Format.fprintf ppf "%.2f ms" (f /. 1e6)
  else if f >= 1e3 then Format.fprintf ppf "%.2f us" (f /. 1e3)
  else Format.fprintf ppf "%d ns" ns

let pp_summary ppf s =
  Format.fprintf ppf "@[<v>%d record(s)" s.records;
  if s.malformed > 0 then Format.fprintf ppf " (%d malformed line(s) skipped)" s.malformed;
  Format.fprintf ppf "@,";
  Format.fprintf ppf "latency: p50 %a, p95 %a, max %a@," pp_ns s.s_p50_ns pp_ns
    s.s_p95_ns pp_ns s.s_max_ns;
  Format.fprintf ppf "deadline misses: %d; sampled traces: %d@," s.deadline_misses
    s.sampled_traces;
  (match s.slo_attained with
  | Some f -> Format.fprintf ppf "SLO attainment (under target): %.2f%%@," (100. *. f)
  | None -> ());
  let counts label rows =
    if rows <> [] then begin
      Format.fprintf ppf "%s:" label;
      List.iter (fun (k, v) -> Format.fprintf ppf " %s=%d" k v) rows;
      Format.fprintf ppf "@,"
    end
  in
  counts "status" s.statuses;
  counts "cache tier" s.tiers;
  counts "planner decision" s.decisions;
  if s.slow_digests <> [] then begin
    Format.fprintf ppf "%-18s %8s %12s %12s@," "slowest digests" "count" "max" "total";
    List.iter
      (fun r ->
        Format.fprintf ppf "%-18s %8d %12s %12s@,"
          (if String.length r.d_digest > 16 then String.sub r.d_digest 0 16
           else r.d_digest)
          r.d_count
          (Format.asprintf "%a" pp_ns r.d_max_ns)
          (Format.asprintf "%a" pp_ns r.d_total_ns))
      s.slow_digests
  end;
  Format.fprintf ppf "@]"
