(** Prometheus text exposition (format 0.0.4) over a telemetry snapshot,
    plus a hand-rolled [promtool check metrics]-style linter.

    {!render} writes every family with [# HELP]/[# TYPE] headers; the
    telemetry log-scale latency histograms come out as cumulative
    [_bucket]/[_sum]/[_count] series with [le] in seconds and the
    open-ended last bucket as [+Inf].  In prefork mode the caller folds
    the per-worker snapshots with [Metrics.add] first, so one scrape sees
    the cluster. *)

val content_type : string

val escape_label : string -> string
(** Label-value escaping: backslash doubles, double-quote and newline are
    escaped. *)

val escape_help : string -> string
(** HELP-text escaping: backslash doubles, newline is escaped. *)

val sample : name:string -> ?labels:(string * string) list -> string -> string
(** One exposition line (no trailing newline): name, then the label set
    in braces when non-empty, then a space and the value. *)

val render :
  ?workers:int ->
  ?uptime_s:float ->
  ?slo:Slo.report ->
  Orm_telemetry.Metrics.snapshot ->
  string
(** The full scrape body.  [workers] and [uptime_s] become gauges when
    given; [slo] adds the rolling-window gauges (rate, recent quantiles,
    miss/overload ratios, remaining error budget) per window. *)

val lint : string -> (unit, string) result
(** Validates an exposition body: name and label grammar, quoting and
    escapes, float-parsable values, TYPE-before-sample, no duplicate
    series, histogram buckets cumulative and nondecreasing in [le] with a
    [+Inf] bucket equal to [_count].  [Error] carries the first offence
    with its line number. *)
