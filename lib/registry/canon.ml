open Orm
module Smap = Ids.String_map

type rename = {
  schema_name : string * string;
  types : (string * string) list;
  facts : (string * string) list;
  constraint_ids : (string * string) list;
}

type result = {
  schema : Schema.t;
  text : string;
  digest : string;
  rename : rename;
}

(* Cap on refinement rounds spent exploring symmetry-breaking branches.
   Within the budget the individualization search is exhaustive (every
   member of the first ambiguous cell is tried, lexicographically smallest
   serialization wins), which is what makes the digest invariant under
   renaming even for schemas whose structure the coloring alone cannot
   split — e.g. a 3-cycle and a 6-cycle of otherwise identical subtypes.
   Past the budget the search degrades to a greedy first-member choice:
   still sound (equal digests still mean isomorphic schemas — the digest
   hashes a full serialization), but two clones of a pathologically
   symmetric schema may then land on different representatives. *)
let work_budget = 4096

(* ---- partition refinement --------------------------------------------

   Nodes are the object types and fact types; colors are dense integers.
   Each round recolors every node by a signature string built from its old
   color and the colors of its neighbors: subtype edges, role players, and
   every constraint it participates in (with the position it occupies
   there).  Signatures never mention original names, so a renamed clone
   refines to the identical partition; they do include readings, value
   sets, frequencies and ring kinds, which are content rather than names. *)

type node = N_ot of string | N_ft of string

type coloring = {
  ot : int Smap.t;
  ft : int Smap.t;
  count : int;  (* number of distinct colors in use *)
}

let ot_color c t = Smap.find t c.ot
let ft_color c f = Smap.find f c.ft

let initial schema =
  let ot =
    List.fold_left
      (fun m t -> Smap.add t 0 m)
      Smap.empty (Schema.object_types schema)
  in
  let ft =
    List.fold_left
      (fun m (f : Fact_type.t) -> Smap.add f.name 1 m)
      Smap.empty (Schema.fact_types schema)
  in
  { ot; ft; count = 2 }

let joins = String.concat ","
let sorted l = List.sort String.compare l

let role_sig c (r : Ids.role) =
  Printf.sprintf "r%d.%d" (ft_color c r.fact) (Ids.side_index r.side)

let seq_sig c = function
  | Ids.Single r -> "s" ^ role_sig c r
  | Ids.Pair (r1, r2) ->
      Printf.sprintf "p(%s,%s)" (role_sig c r1) (role_sig c r2)

let value_sig vs =
  joins (List.map Value.to_string (Value.Constraint.elements vs))

let freq_sig (f : Constraints.frequency) =
  match f.max with
  | Some m -> Printf.sprintf "%d-%d" f.min m
  | None -> Printf.sprintf "%d-" f.min

let tcolor c t = Printf.sprintf "t%d" (ot_color c t)

let body_sig c : Constraints.body -> string = function
  | Mandatory r -> "M(" ^ role_sig c r ^ ")"
  | Disjunctive_mandatory rs ->
      "DM{" ^ joins (sorted (List.map (role_sig c) rs)) ^ "}"
  | Uniqueness s -> "U(" ^ seq_sig c s ^ ")"
  | External_uniqueness rs ->
      "EU{" ^ joins (sorted (List.map (role_sig c) rs)) ^ "}"
  | Frequency (s, f) -> "FQ(" ^ seq_sig c s ^ ";" ^ freq_sig f ^ ")"
  | Value_constraint (t, vs) ->
      Printf.sprintf "VC(%s;%s)" (tcolor c t) (value_sig vs)
  | Role_exclusion seqs ->
      "RX{" ^ joins (sorted (List.map (seq_sig c) seqs)) ^ "}"
  | Subset (a, b) -> "SS(" ^ seq_sig c a ^ "<=" ^ seq_sig c b ^ ")"
  | Equality (a, b) -> "EQ(" ^ seq_sig c a ^ "=" ^ seq_sig c b ^ ")"
  | Type_exclusion ts ->
      "TX{" ^ joins (sorted (List.map (tcolor c) ts)) ^ "}"
  | Total_subtypes (super, subs) ->
      Printf.sprintf "TS(%s={%s})" (tcolor c super)
        (joins (sorted (List.map (tcolor c) subs)))
  | Ring (k, f) -> Printf.sprintf "RG(%s;f%d)" (Ring.abbrev k) (ft_color c f)

(* Which nodes a constraint touches, tagged with the position they occupy
   in it — a role's side, a subset's direction, a total-subtype's end. *)
let occurrences (body : Constraints.body) =
  let ot t tag = (N_ot t, tag) in
  let role (r : Ids.role) tag =
    (N_ft r.fact, Printf.sprintf "%s%d" tag (Ids.side_index r.side))
  in
  match body with
  | Mandatory r -> [ role r "m" ]
  | Disjunctive_mandatory rs -> List.map (fun r -> role r "dm") rs
  | Uniqueness s -> List.map (fun r -> role r "u") (Ids.seq_roles s)
  | External_uniqueness rs -> List.map (fun r -> role r "eu") rs
  | Frequency (s, _) -> List.map (fun r -> role r "fq") (Ids.seq_roles s)
  | Value_constraint (t, _) -> [ ot t "vc" ]
  | Role_exclusion seqs ->
      List.concat_map
        (fun s -> List.map (fun r -> role r "rx") (Ids.seq_roles s))
        seqs
  | Subset (a, b) ->
      List.map (fun r -> role r "ssa") (Ids.seq_roles a)
      @ List.map (fun r -> role r "ssb") (Ids.seq_roles b)
  | Equality (a, b) ->
      List.map (fun r -> role r "eqa") (Ids.seq_roles a)
      @ List.map (fun r -> role r "eqb") (Ids.seq_roles b)
  | Type_exclusion ts -> List.map (fun t -> ot t "tx") ts
  | Total_subtypes (super, subs) ->
      ot super "tss" :: List.map (fun t -> ot t "tsb") subs
  | Ring (_, f) -> [ (N_ft f, "rg") ]

let recolor schema c =
  let graph = Schema.graph schema in
  let facts = Schema.fact_types schema in
  let occ : (node, string list) Hashtbl.t = Hashtbl.create 64 in
  let push key s =
    Hashtbl.replace occ key
      (s :: (match Hashtbl.find_opt occ key with Some l -> l | None -> []))
  in
  List.iter
    (fun (cstr : Constraints.t) ->
      let bs = body_sig c cstr.body in
      List.iter
        (fun (node, tag) -> push node (bs ^ "@" ^ tag))
        (occurrences cstr.body))
    (Schema.constraints schema);
  let occ_sig key =
    joins
      (sorted (match Hashtbl.find_opt occ key with Some l -> l | None -> []))
  in
  let ot_sig t =
    let col l = sorted (List.map (fun s -> string_of_int (ot_color c s)) l) in
    let plays side =
      sorted
        (List.filter_map
           (fun (ft : Fact_type.t) ->
             if Fact_type.player ft side = t then
               Some (string_of_int (ft_color c ft.name))
             else None)
           facts)
    in
    Printf.sprintf "O%d|up{%s}|dn{%s}|f1{%s}|f2{%s}|c{%s}" (ot_color c t)
      (joins (col (Subtype_graph.direct_supertypes graph t)))
      (joins (col (Subtype_graph.direct_subtypes graph t)))
      (joins (plays Ids.Fst))
      (joins (plays Ids.Snd))
      (occ_sig (N_ot t))
  in
  let ft_sig (ft : Fact_type.t) =
    Printf.sprintf "F%d|p1:%d|p2:%d|rd:%s|c{%s}" (ft_color c ft.name)
      (ot_color c ft.player1) (ot_color c ft.player2)
      (match ft.reading with None -> "" | Some r -> String.escaped r)
      (occ_sig (N_ft ft.name))
  in
  let pairs =
    List.map (fun t -> (N_ot t, ot_sig t)) (Schema.object_types schema)
    @ List.map (fun (ft : Fact_type.t) -> (N_ft ft.name, ft_sig ft)) facts
  in
  let sigs = List.sort_uniq String.compare (List.map snd pairs) in
  let index = Hashtbl.create (List.length sigs) in
  List.iteri (fun i s -> Hashtbl.replace index s i) sigs;
  List.fold_left
    (fun acc (node, s) ->
      let col = Hashtbl.find index s in
      match node with
      | N_ot t -> { acc with ot = Smap.add t col acc.ot }
      | N_ft f -> { acc with ft = Smap.add f col acc.ft })
    { ot = Smap.empty; ft = Smap.empty; count = List.length sigs }
    pairs

let rec fix budget schema c =
  decr budget;
  let c' = recolor schema c in
  if c'.count = c.count then c' else fix budget schema c'

(* Non-singleton color cells, members in deterministic (name) order,
   smallest color first. *)
let first_ambiguous_cell schema c =
  let by_color = Hashtbl.create 16 in
  let add col node =
    Hashtbl.replace by_color col
      (node
      :: (match Hashtbl.find_opt by_color col with Some l -> l | None -> []))
  in
  List.iter (fun t -> add (ot_color c t) (N_ot t)) (Schema.object_types schema);
  List.iter
    (fun (ft : Fact_type.t) -> add (ft_color c ft.name) (N_ft ft.name))
    (Schema.fact_types schema);
  let cells =
    Hashtbl.fold
      (fun col members acc ->
        if List.length members > 1 then (col, List.rev members) :: acc else acc)
      by_color []
  in
  match List.sort (fun (a, _) (b, _) -> compare a b) cells with
  | [] -> None
  | (_, members) :: _ -> Some members

let individualize c node =
  match node with
  | N_ot t -> { c with ot = Smap.add t c.count c.ot; count = c.count + 1 }
  | N_ft f -> { c with ft = Smap.add f c.count c.ft; count = c.count + 1 }

(* ---- building the canonical representative --------------------------- *)

let printed_body b = Format.asprintf "%a" Constraints.pp_body b

(* A discrete coloring names the nodes: object types become T0,T1,… and
   fact types F0,F1,… in color order.  The canonical name strings are
   allocated once and handed out through the mapping tables, so every
   occurrence across the rebuilt schema is physically shared; roles and
   role sequences are interned the same way while constraint bodies are
   normalized. *)
let build schema c =
  let rank_names names color =
    let ranked =
      List.sort
        (fun a b -> compare (color a) (color b))
        names
    in
    ranked
  in
  let ot_tbl = Hashtbl.create 16 and ft_tbl = Hashtbl.create 16 in
  List.iteri
    (fun i t -> Hashtbl.replace ot_tbl t ("T" ^ string_of_int i))
    (rank_names (Schema.object_types schema) (ot_color c));
  List.iteri
    (fun i f -> Hashtbl.replace ft_tbl f ("F" ^ string_of_int i))
    (rank_names
       (List.map (fun (ft : Fact_type.t) -> ft.name) (Schema.fact_types schema))
       (ft_color c));
  let renamed =
    Schema.rename ~schema_name:"S0"
      ~object_type:(Hashtbl.find ot_tbl)
      ~fact_type:(Hashtbl.find ft_tbl)
      schema
  in
  (* hash-consing: one physical representative per role / role sequence *)
  let role_tbl : (Ids.role, Ids.role) Hashtbl.t = Hashtbl.create 32 in
  let seq_tbl : (Ids.role_seq, Ids.role_seq) Hashtbl.t = Hashtbl.create 32 in
  let ir r =
    match Hashtbl.find_opt role_tbl r with
    | Some r -> r
    | None ->
        Hashtbl.add role_tbl r r;
        r
  in
  let is s =
    let s =
      match s with
      | Ids.Single r -> Ids.Single (ir r)
      | Ids.Pair (r1, r2) -> Ids.Pair (ir r1, ir r2)
    in
    match Hashtbl.find_opt seq_tbl s with
    | Some s -> s
    | None ->
        Hashtbl.add seq_tbl s s;
        s
  in
  let norm : Constraints.body -> Constraints.body = function
    | Mandatory r -> Mandatory (ir r)
    | Disjunctive_mandatory rs ->
        Disjunctive_mandatory (List.sort Ids.compare_role (List.map ir rs))
    | Uniqueness s -> Uniqueness (is s)
    | External_uniqueness rs ->
        External_uniqueness (List.sort Ids.compare_role (List.map ir rs))
    | Frequency (s, f) -> Frequency (is s, f)
    | Value_constraint (t, vs) -> Value_constraint (t, vs)
    | Role_exclusion seqs ->
        Role_exclusion (List.sort Ids.compare_seq (List.map is seqs))
    | Subset (a, b) -> Subset (is a, is b)
    | Equality (a, b) -> Equality (is a, is b)
    | Type_exclusion ts -> Type_exclusion (List.sort String.compare ts)
    | Total_subtypes (super, subs) ->
        Total_subtypes (super, List.sort String.compare subs)
    | Ring (k, f) -> Ring (k, f)
  in
  let cstrs =
    List.map
      (fun (cstr : Constraints.t) ->
        let body = norm cstr.body in
        (printed_body body, body, cstr.id))
      (Schema.constraints renamed)
  in
  let cstrs =
    List.stable_sort (fun (a, _, _) (b, _, _) -> String.compare a b) cstrs
  in
  let base = Schema.empty "S0" in
  let base =
    List.fold_left
      (fun s t -> Schema.add_object_type t s)
      base (Schema.object_types renamed)
  in
  let base =
    List.fold_left
      (fun s (sub, super) -> Schema.add_subtype ~sub ~super s)
      base
      (Subtype_graph.edges (Schema.graph renamed))
  in
  let base =
    List.fold_left
      (fun s ft -> Schema.add_fact ft s)
      base (Schema.fact_types renamed)
  in
  let canon, id_pairs, _ =
    List.fold_left
      (fun (s, pairs, i) (_, body, orig_id) ->
        let cid = "c" ^ string_of_int i in
        ( Schema.add_constraint (Constraints.make cid body) s,
          (cid, orig_id) :: pairs,
          i + 1 ))
      (base, [], 0) cstrs
  in
  let pairs_of tbl =
    Hashtbl.fold (fun orig canon acc -> (canon, orig) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let rename =
    {
      schema_name = ("S0", Schema.name schema);
      types = pairs_of ot_tbl;
      facts = pairs_of ft_tbl;
      constraint_ids = List.rev id_pairs;
    }
  in
  let text = Orm_dsl.Printer.to_string canon in
  { schema = canon; text; digest = Digest.to_hex (Digest.string text); rename }

let canonicalize schema =
  let budget = ref work_budget in
  let rec solve c =
    match first_ambiguous_cell schema c with
    | None -> build schema c
    | Some members ->
        let branch m = solve (fix budget schema (individualize c m)) in
        if !budget <= 0 then branch (List.hd members)
        else
          List.fold_left
            (fun best m ->
              let cand = branch m in
              match best with
              | Some b when String.compare b.text cand.text <= 0 -> best
              | _ -> Some cand)
            None members
          |> Option.get
  in
  solve (fix budget schema (initial schema))

let digest schema = (canonicalize schema).digest

(* ---- renaming response bodies back ------------------------------------ *)

let is_ident_char ch =
  (ch >= 'A' && ch <= 'Z')
  || (ch >= 'a' && ch <= 'z')
  || (ch >= '0' && ch <= '9')
  || ch = '_'

let rename_string tbl s =
  let n = String.length s in
  (* fast path: strings without any mapped token are the common case *)
  let rec scan i changed acc =
    if i >= n then (changed, acc)
    else if is_ident_char s.[i] then begin
      let j = ref i in
      while !j < n && is_ident_char s.[!j] do
        incr j
      done;
      let tok = String.sub s i (!j - i) in
      match Hashtbl.find_opt tbl tok with
      | Some orig -> scan !j true (acc @ [ (i, !j, orig) ])
      | None -> scan !j changed acc
    end
    else scan (i + 1) changed acc
  in
  match scan 0 false [] with
  | false, _ -> s
  | true, repls ->
      let buf = Buffer.create (n + 16) in
      let pos =
        List.fold_left
          (fun pos (i, j, orig) ->
            Buffer.add_substring buf s pos (i - pos);
            Buffer.add_string buf orig;
            j)
          0 repls
      in
      Buffer.add_substring buf s pos (n - pos);
      Buffer.contents buf

let rename_value r v =
  let tbl = Hashtbl.create 64 in
  let addp (canon, orig) = Hashtbl.replace tbl canon orig in
  addp r.schema_name;
  List.iter addp r.types;
  List.iter addp r.facts;
  List.iter addp r.constraint_ids;
  let rec go = function
    | Orm_json.String s ->
        let s' = rename_string tbl s in
        if s' == s then Orm_json.String s else Orm_json.String s'
    | Orm_json.List l -> Orm_json.List (List.map go l)
    | Orm_json.Obj fields -> Orm_json.Obj (List.map (fun (k, v) -> (k, go v)) fields)
    | v -> v
  in
  go v
