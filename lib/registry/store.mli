(** The registry store: a persistent, append-friendly corpus of checked
    schemas, content-addressed by canonical digest ({!Canon.digest}).

    Layout under the store directory:

    - [index.ndjson] — one JSON record per ingest, appended with a single
      [O_APPEND] write so concurrent workers interleave whole lines: a
      full record for a new digest (digest, schema name, verdict, pattern
      bitmap, diagnostic count), or a tiny [{"dup":…}] marker when the
      digest was already present.  The in-memory covering index is a
      replay of this log; {!refresh} consumes whatever other workers have
      appended since the last read, so every worker answers queries over
      the whole corpus.
    - [entries/<2 hex>/<digest>.json] — the full per-entry record: the
      canonical schema text plus the stored verdict body (diagnostics,
      pattern bitmap), written atomically (temp + rename) before the index
      line that references it.

    Every record carries the cache-key format version; records written by
    a build with a different {!Cache_key.format_version} are skipped on
    replay, so a format bump invalidates the registry in the same breath
    as the LRU and disk cache tiers. *)

type entry = {
  digest : string;
  name : string;  (** schema name of the first ingest of this digest *)
  verdict : string;  (** ["unsat"] or ["clean"] *)
  patterns : int;  (** bitmap: bit [n] set iff pattern [n] fired *)
  diagnostics : int;
}

type t

val create : format_version:int -> dir:string -> t
(** Opens (creating directories as needed) and replays the index. *)

val dir : t -> string

val refresh : t -> unit
(** Replays index records appended since the last read (by this or any
    other worker).  Cheap when nothing changed: one [stat]. *)

val find : t -> string -> entry option
(** Covering-index lookup by digest (no [refresh] implied). *)

val ingest :
  t ->
  digest:string ->
  name:string ->
  verdict:string ->
  patterns:int ->
  diagnostics:int ->
  entry_body:Orm_json.t ->
  [ `New | `Dup ]
(** Records one checked schema.  A digest already present (here or in
    another worker's appended records — {!refresh} runs first) is counted
    as a duplicate and its entry left untouched; otherwise the entry file
    is written and the index line appended.  Counters are derived from the
    log replay only, so they agree across workers. *)

val size : t -> int
(** Distinct digests in the covering index. *)

val ingested : t -> int
(** New-entry records replayed from the log (cluster-wide). *)

val duplicates : t -> int
(** Duplicate ingests replayed from the log (cluster-wide). *)

val query : t -> ?limit:int -> string -> (entry list * int, string) result
(** [query t q] evaluates the conjunctive query [q] over the covering
    index without re-checking anything: whitespace-separated terms
    [pattern:N] (pattern [N] fired) and [verdict:unsat]/[verdict:clean].
    Returns the first [limit] matches (default 50, ordered by digest) and
    the total match count.  [Error] on a malformed term. *)

val load_entry : t -> string -> Orm_json.t option
(** The full stored record for a digest ([None] if missing/corrupt). *)

val stats : t -> Orm_json.t
(** Aggregates: entry/ingest/duplicate counts, dedup ratio, verdict
    counts, and the per-pattern leaderboard. *)

val pattern_bit : int -> int
(** [pattern_bit n] is the bitmap bit for pattern [n]. *)

val patterns_of_bitmap : int -> int list
(** Ascending pattern numbers set in a bitmap. *)

val bitmap_of_patterns : int list -> int
