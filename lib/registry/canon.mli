(** Structural canonicalization of ORM schemas.

    Two schemas that differ only in the names of their object types, fact
    types and constraint identifiers (and in the declaration order of fact
    types and constraints, or the member order of set-like constraint
    arguments) describe the same conceptual structure; the paper's
    satisfiability notions are invariant under such renamings.  This module
    computes a canonical representative of that equivalence class:

    - object types become [T0], [T1], … and fact types [F0], [F1], …, the
      indices chosen by partition-refinement coloring over the schema's
      structure (subtype edges, role players, constraint incidences),
      residual symmetry broken by backtracking individualization that keeps
      the lexicographically smallest serialization;
    - the schema name becomes [S0] and constraints are renumbered [c0], … in
      sorted body order; set-like constraint arguments (disjunctive
      mandatory, external uniqueness, exclusions, total-subtype lists) are
      sorted;
    - repeated subterms of the canonical schema are hash-consed: every
      occurrence of a canonical name, role or role sequence is physically
      shared.

    Readings and value sets are content, not names: they are preserved
    verbatim and participate in the digest, so schemas that differ in them
    do not collide.  {!digest} of the canonical serialization is the
    content address used by the server's canonical cache tier and by the
    registry store. *)

type rename = {
  schema_name : string * string;  (** canonical name, original name *)
  types : (string * string) list;  (** canonical -> original, per object type *)
  facts : (string * string) list;
  constraint_ids : (string * string) list;
}
(** The bijection back from canonical names to the input schema's names.
    [types]/[facts]/[constraint_ids] are sorted by canonical name. *)

type result = {
  schema : Orm.Schema.t;  (** the canonical representative *)
  text : string;  (** its DSL serialization (parseable) *)
  digest : string;  (** hex MD5 of [text] — the content address *)
  rename : rename;
}

val canonicalize : Orm.Schema.t -> result
(** Canonical form of a validated schema.  Invariant under bijective
    renaming of types/facts/constraint ids and under permutation of fact
    and constraint declarations (guaranteed within {!val-work_budget}
    refinement steps; beyond it, tie-breaking degrades to a greedy choice
    that is still sound — equal digests still imply isomorphic schemas —
    but may miss sharing between extremely symmetric schemas). *)

val digest : Orm.Schema.t -> string
(** [digest s] = [(canonicalize s).digest]. *)

val work_budget : int
(** Cap on partition-refinement rounds spent breaking symmetry per schema. *)

val rename_value : rename -> Orm_json.t -> Orm_json.t
(** [rename_value r v] rewrites every canonical name occurring in the
    string leaves of [v] back to the original name, on identifier-token
    boundaries ([A-Za-z0-9_] runs), leaving object keys untouched.  This is
    how the server serves a response body computed on the canonical schema
    to the client that sent the original names: diagnostics messages, role
    references like ["F2.1"], culprit lists and type lists all read as if
    the check had run on the client's schema.  (A string {e value literal}
    that happens to equal a canonical name token, e.g. a value ["T0"]
    quoted inside a diagnostic message, is renamed too — the one known
    caveat of the textual mapping.) *)
