module J = Orm_json

type entry = {
  digest : string;
  name : string;
  verdict : string;
  patterns : int;
  diagnostics : int;
}

type t = {
  format_version : int;
  dir : string;
  index_path : string;
  entries : (string, entry) Hashtbl.t;
  (* posting lists (digest sets) keyed by pattern number / verdict, so a
     query touches the smallest matching list instead of scanning every
     entry.  Entries are insert-only, so maintenance is a single point:
     [apply], which both replay and ingest funnel through. *)
  by_pattern : (int, (string, unit) Hashtbl.t) Hashtbl.t;
  by_verdict : (string, (string, unit) Hashtbl.t) Hashtbl.t;
  mutable offset : int;  (* bytes of index.ndjson already replayed *)
  mutable ingested : int;
  mutable duplicates : int;
}

let pattern_bit n = 1 lsl n

let patterns_of_bitmap bm =
  let rec go n acc =
    if n < 0 then acc
    else go (n - 1) (if bm land pattern_bit n <> 0 then n :: acc else acc)
  in
  go 62 []

let bitmap_of_patterns ns =
  List.fold_left (fun bm n -> bm lor pattern_bit n) 0 ns

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let posting tbl key =
  match Hashtbl.find_opt tbl key with
  | Some set -> set
  | None ->
      let set = Hashtbl.create 16 in
      Hashtbl.replace tbl key set;
      set

let index_entry t e =
  Hashtbl.replace (posting t.by_verdict e.verdict) e.digest ();
  List.iter
    (fun n -> Hashtbl.replace (posting t.by_pattern n) e.digest ())
    (patterns_of_bitmap e.patterns)

(* ---- index replay ------------------------------------------------------ *)

(* One index record.  A replayed "new" record whose digest is already
   present (two workers raced the same schema) folds into a duplicate, so
   the covering index and the counters converge to the same state in every
   worker whatever the interleaving. *)
let apply t line =
  match J.of_string line with
  | Error _ -> ()
  | Ok record -> (
      let fv = Option.value ~default:(-1) (J.int_member "fv" record) in
      if fv <> t.format_version then ()
      else
        match J.string_member "dup" record with
        | Some _ -> t.duplicates <- t.duplicates + 1
        | None -> (
            match
              ( J.string_member "digest" record,
                J.string_member "verdict" record )
            with
            | Some digest, Some verdict ->
                if Hashtbl.mem t.entries digest then
                  t.duplicates <- t.duplicates + 1
                else begin
                  let e =
                    {
                      digest;
                      name =
                        Option.value ~default:""
                          (J.string_member "name" record);
                      verdict;
                      patterns =
                        Option.value ~default:0
                          (J.int_member "patterns" record);
                      diagnostics =
                        Option.value ~default:0
                          (J.int_member "diagnostics" record);
                    }
                  in
                  Hashtbl.replace t.entries digest e;
                  index_entry t e;
                  t.ingested <- t.ingested + 1
                end
            | _ -> ()))

let refresh t =
  let size =
    match Unix.stat t.index_path with
    | exception Unix.Unix_error _ -> 0
    | st -> st.Unix.st_size
  in
  if size > t.offset then begin
    match Unix.openfile t.index_path [ Unix.O_RDONLY ] 0 with
    | exception Unix.Unix_error _ -> ()
    | fd ->
        Fun.protect
          ~finally:(fun () ->
            try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            ignore (Unix.lseek fd t.offset Unix.SEEK_SET);
            let want = size - t.offset in
            let buf = Bytes.create want in
            let rec read_all off =
              if off < want then
                match Unix.read fd buf off (want - off) with
                | 0 -> off
                | n -> read_all (off + n)
              else off
            in
            let got = read_all 0 in
            let s = Bytes.sub_string buf 0 got in
            (* consume only complete lines: a concurrent writer's partial
               line stays for the next refresh *)
            match String.rindex_opt s '\n' with
            | None -> ()
            | Some last ->
                String.split_on_char '\n' (String.sub s 0 last)
                |> List.iter (fun line ->
                       if String.trim line <> "" then apply t line);
                t.offset <- t.offset + last + 1)
  end

let create ~format_version ~dir =
  mkdir_p (Filename.concat dir "entries");
  let t =
    {
      format_version;
      dir;
      index_path = Filename.concat dir "index.ndjson";
      entries = Hashtbl.create 256;
      by_pattern = Hashtbl.create 16;
      by_verdict = Hashtbl.create 4;
      offset = 0;
      ingested = 0;
      duplicates = 0;
    }
  in
  refresh t;
  t

let dir t = t.dir
let find t digest = Hashtbl.find_opt t.entries digest
let size t = Hashtbl.length t.entries
let ingested t = t.ingested
let duplicates t = t.duplicates

(* ---- ingest ------------------------------------------------------------ *)

let entry_path t digest =
  let shard = if String.length digest >= 2 then String.sub digest 0 2 else "xx" in
  Filename.concat (Filename.concat t.dir "entries") (Filename.concat shard (digest ^ ".json"))

let write_entry_file t digest body =
  let path = entry_path t digest in
  mkdir_p (Filename.dirname path);
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  try
    Out_channel.with_open_bin tmp (fun oc ->
        Out_channel.output_string oc (J.to_string body));
    Unix.rename tmp path
  with Sys_error _ | Unix.Unix_error _ -> (
    try Unix.unlink tmp with Unix.Unix_error _ | Sys_error _ -> ())

let append_index t record =
  let line = J.to_string record ^ "\n" in
  match
    Unix.openfile t.index_path
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
      0o644
  with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* one write: whole lines interleave cleanly across workers *)
          ignore (Unix.write_substring fd line 0 (String.length line)))

let ingest t ~digest ~name ~verdict ~patterns ~diagnostics ~entry_body =
  refresh t;
  let verdict_of_existing = Hashtbl.mem t.entries digest in
  if verdict_of_existing then begin
    append_index t
      (J.Obj [ ("dup", J.String digest); ("fv", J.Int t.format_version) ]);
    refresh t;
    `Dup
  end
  else begin
    write_entry_file t digest
      (J.Obj
         ([
            ("digest", J.String digest);
            ("fv", J.Int t.format_version);
            ("name", J.String name);
            ("verdict", J.String verdict);
            ("patterns", J.Int patterns);
            ("diagnostics", J.Int diagnostics);
          ]
         @ match entry_body with J.Null -> [] | b -> [ ("entry", b) ]));
    append_index t
      (J.Obj
         [
           ("digest", J.String digest);
           ("name", J.String name);
           ("verdict", J.String verdict);
           ("patterns", J.Int patterns);
           ("diagnostics", J.Int diagnostics);
           ("fv", J.Int t.format_version);
         ]);
    refresh t;
    `New
  end

let load_entry t digest =
  match
    In_channel.with_open_bin (entry_path t digest) In_channel.input_all
  with
  | exception Sys_error _ -> None
  | content -> ( match J.of_string content with Ok v -> Some v | Error _ -> None)

(* ---- queries ----------------------------------------------------------- *)

type term = T_pattern of int | T_verdict of string

let parse_term tok =
  match String.index_opt tok ':' with
  | None -> Error (Printf.sprintf "bad query term %S (expected key:value)" tok)
  | Some i -> (
      let key = String.sub tok 0 i in
      let v = String.sub tok (i + 1) (String.length tok - i - 1) in
      match key with
      | "pattern" -> (
          match int_of_string_opt v with
          | Some n when n >= 1 && n <= 62 -> Ok (T_pattern n)
          | _ -> Error (Printf.sprintf "bad pattern number %S" v))
      | "verdict" ->
          if v = "unsat" || v = "clean" then Ok (T_verdict v)
          else Error (Printf.sprintf "bad verdict %S (unsat or clean)" v)
      | _ -> Error (Printf.sprintf "unknown query key %S" key))

let parse_query q =
  let toks =
    String.split_on_char ' ' q
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  in
  List.fold_left
    (fun acc tok ->
      match (acc, parse_term tok) with
      | Error _, _ -> acc
      | _, Error e -> Error e
      | Ok terms, Ok t -> Ok (t :: terms))
    (Ok []) toks
  |> Result.map List.rev

let matches entry = function
  | T_pattern n -> entry.patterns land pattern_bit n <> 0
  | T_verdict v -> entry.verdict = v

let posting_for t = function
  | T_pattern n -> Hashtbl.find_opt t.by_pattern n
  | T_verdict v -> Hashtbl.find_opt t.by_verdict v

let query t ?(limit = 50) q =
  match parse_query q with
  | Error e -> Error e
  | Ok [] ->
      (* no terms: every entry matches, so the full scan is the answer *)
      let all =
        Hashtbl.fold (fun _ e acc -> e :: acc) t.entries []
        |> List.sort (fun a b -> String.compare a.digest b.digest)
      in
      let total = List.length all in
      Ok (List.filteri (fun i _ -> i < limit) all, total)
  | Ok terms -> (
      (* drive from the smallest posting list and check the remaining terms
         per candidate: O(min posting) instead of O(entries) *)
      let postings = List.map (posting_for t) terms in
      if List.exists Option.is_none postings then Ok ([], 0)
      else
        match List.filter_map Fun.id postings with
        | [] -> Ok ([], 0)
        | p :: ps ->
            let smallest =
              List.fold_left
                (fun a b ->
                  if Hashtbl.length b < Hashtbl.length a then b else a)
                p ps
            in
            let all =
              Hashtbl.fold
                (fun digest () acc ->
                  match Hashtbl.find_opt t.entries digest with
                  | Some e when List.for_all (matches e) terms -> e :: acc
                  | _ -> acc)
                smallest []
              |> List.sort (fun a b -> String.compare a.digest b.digest)
            in
            let total = List.length all in
            Ok (List.filteri (fun i _ -> i < limit) all, total))

(* ---- aggregates -------------------------------------------------------- *)

let stats t =
  let verdicts = Hashtbl.create 4 in
  let pattern_counts = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ e ->
      Hashtbl.replace verdicts e.verdict
        (1 + Option.value ~default:0 (Hashtbl.find_opt verdicts e.verdict));
      List.iter
        (fun n ->
          Hashtbl.replace pattern_counts n
            (1 + Option.value ~default:0 (Hashtbl.find_opt pattern_counts n)))
        (patterns_of_bitmap e.patterns))
    t.entries;
  let leaderboard =
    Hashtbl.fold (fun n count acc -> (n, count) :: acc) pattern_counts []
    |> List.sort (fun (na, ca) (nb, cb) ->
           if ca <> cb then compare cb ca else compare na nb)
    |> List.map (fun (n, count) ->
           J.Obj [ ("pattern", J.Int n); ("entries", J.Int count) ])
  in
  let verdict_fields =
    Hashtbl.fold (fun v count acc -> (v, J.Int count) :: acc) verdicts []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let total = t.ingested + t.duplicates in
  J.Obj
    [
      ("entries", J.Int (size t));
      ("ingested", J.Int t.ingested);
      ("duplicates", J.Int t.duplicates);
      ( "dedup_ratio",
        if total = 0 then J.Float 0.0
        else J.Float (float_of_int t.duplicates /. float_of_int total) );
      ("verdicts", J.Obj verdict_fields);
      ("patterns", J.List leaderboard);
    ]
