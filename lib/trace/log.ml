type level = Off | Error | Warn | Info | Debug

let severity = function Off -> 0 | Error -> 1 | Warn -> 2 | Info -> 3 | Debug -> 4

let level_to_string = function
  | Off -> "off"
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "off" | "none" | "quiet" -> Ok Off
  | "error" -> Ok Error
  | "warn" | "warning" -> Ok Warn
  | "info" -> Ok Info
  | "debug" -> Ok Debug
  | other -> Error (Printf.sprintf "unknown log level %S (off|error|warn|info|debug)" other)

let default_level () =
  match Sys.getenv_opt "ORMCHECK_LOG" with
  | None -> Warn
  | Some s -> ( match level_of_string s with Ok l -> l | Error _ -> Warn)

(* -1 = not yet initialized from the environment *)
let current = Atomic.make (-1)

let level () =
  match Atomic.get current with
  | -1 ->
      let l = default_level () in
      (* another domain may have raced us; keep whichever landed first *)
      ignore (Atomic.compare_and_set current (-1) (severity l));
      (match Atomic.get current with
      | 0 -> Off
      | 1 -> Error
      | 2 -> Warn
      | 3 -> Info
      | _ -> Debug)
  | 0 -> Off
  | 1 -> Error
  | 2 -> Warn
  | 3 -> Info
  | _ -> Debug

let set_level l = Atomic.set current (severity l)

let enabled l = severity l <= severity (level ()) && l <> Off

let epoch = Monotonic_clock.now ()

let logf l fmt =
  if enabled l then begin
    let ms =
      Int64.to_int (Int64.div (Int64.sub (Monotonic_clock.now ()) epoch) 1_000_000L)
    in
    Format.kfprintf
      (fun ppf -> Format.pp_print_newline ppf ())
      Format.err_formatter
      ("ormcheck %s ts=%dms " ^^ fmt)
      (level_to_string l) ms
  end
  else Format.ifprintf Format.err_formatter fmt

let err fmt = logf Error fmt
let warn fmt = logf Warn fmt
let info fmt = logf Info fmt
let debug fmt = logf Debug fmt
