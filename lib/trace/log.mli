(** Leveled structured logging to stderr.

    One global level, settable programmatically ({!set_level}), from the
    [ORMCHECK_LOG] environment variable (read once, on first use) or from
    the CLI's [--log-level].  Disabled messages cost one atomic load and no
    formatting ({!logf} routes them through [Format.ifprintf]).

    Lines are written to stderr as
    [ormcheck <level> ts=<ms since logger init> <message>] so they
    interleave recognizably with diagnostic output and are trivially
    greppable by level. *)

type level = Off | Error | Warn | Info | Debug

val level_of_string : string -> (level, string) result
(** Accepts [off], [error], [warn] (or [warning]), [info], [debug],
    case-insensitively. *)

val level_to_string : level -> string

val set_level : level -> unit

val level : unit -> level
(** Current level; defaults to [ORMCHECK_LOG] when set and parseable,
    [Warn] otherwise. *)

val enabled : level -> bool
(** Would a message at this level be printed? *)

val logf : level -> ('a, Format.formatter, unit) format -> 'a
(** [logf lvl fmt ...] prints one line on stderr when [lvl] is enabled. *)

val err : ('a, Format.formatter, unit) format -> 'a
val warn : ('a, Format.formatter, unit) format -> 'a
val info : ('a, Format.formatter, unit) format -> 'a
val debug : ('a, Format.formatter, unit) format -> 'a
