(** Span-based tracing with per-domain lock-free ring buffers.

    A {!t} collects begin/end/instant/counter events with monotonic
    timestamps.  Each domain writes into its own ring buffer, discovered
    through domain-local storage, so the hot recording path takes no lock
    and never contends: registration of a new domain's buffer (once per
    domain per tracer) is the only synchronized operation.  When a buffer
    fills up the ring wraps and the oldest events are dropped, counted in
    {!dropped} — tracing bounds its own memory instead of perturbing the
    workload it observes.

    Like [?metrics], the tracer is threaded as an optional argument through
    the engine entry points; when absent the instrumented code runs its
    original, allocation-free path (enforced by the test suite with a
    [Gc.minor_words] guard).

    Two exporters: {!to_chrome_json} emits the Chrome trace-event format
    (load the file in Perfetto or [chrome://tracing]; one track per domain)
    and {!summary} folds the spans into per-name count/total/p50/p95/max
    rows — the [ormcheck profile] subcommand applies the same fold to a
    previously written trace file via {!of_chrome_json}.

    Buffers may be inspected ({!events}, {!summary}, exporters) only after
    the traced work has finished; reading while another domain still
    records is a benign race but can observe half-written rings. *)

type t

type phase = Begin | End | Instant | Counter

type event = {
  phase : phase;
  name : string;
  ts_ns : int;  (** nanoseconds since the tracer was created *)
  domain : int;  (** numeric id of the recording domain *)
  value : int;  (** counter value; 0 for the other phases *)
}

val create : ?capacity:int -> unit -> t
(** Fresh tracer.  [capacity] (default 65536) is the ring size {e per
    domain}, in events. *)

(** {1 Recording}

    All recording entry points take the tracer directly (not an option):
    instrumented code is expected to branch on the option itself so the
    disabled path stays free of closures and timestamps. *)

val begin_span : t -> string -> unit
val end_span : t -> string -> unit
(** [begin_span]/[end_span] must nest properly per domain (the name of an
    [end_span] is expected to match the innermost open span). *)

val instant : t -> string -> unit
(** A point event (branch taken, clash found, chunk submitted...). *)

val counter : t -> string -> int -> unit
(** A sampled counter value, rendered as its own track by trace viewers. *)

val with_span : t -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] wraps [f] in a span; the span is closed on
    exceptions too. *)

val span : t option -> string -> (unit -> 'a) -> 'a
(** Convenience for cold paths: [span None name f] is [f ()].  Do not use
    on hot paths — building the closure allocates even when the tracer is
    [None]. *)

(** {1 Inspection and export} *)

val events : t -> event list
(** All recorded events, grouped by domain, chronological within each
    domain. *)

type mark
(** A cut point in the event stream: each registered buffer's count of
    events written so far. *)

val mark : t -> mark
(** Freeze the current position.  Cheap (no copying). *)

val events_since : t -> mark -> event list
(** Events recorded after [mark] was taken, grouped by domain,
    chronological within each domain.  Events that wrapped off a ring in
    the meantime are silently missing (same policy as {!events}); buffers
    first registered after the mark contribute all their events.  The
    tail-sampled audit log uses this to attach just the slow request's
    spans instead of the whole ring. *)

val dropped : t -> int
(** Events lost to ring wrap-around, summed over domains. *)

val domain_count : t -> int
(** Distinct domains that recorded into this tracer. *)

val to_chrome_json : t -> string
(** The trace in Chrome trace-event JSON ([ph] B/E/i/C, [tid] = domain id,
    [ts] in microseconds with nanosecond precision). *)

val write_chrome : t -> string -> unit
(** [write_chrome t file] writes {!to_chrome_json} to [file].
    @raise Sys_error when the file cannot be written. *)

val of_chrome_json : string -> (event list, string) result
(** Parses a trace produced by {!to_chrome_json} back into events (also
    accepts a bare JSON array of event objects, and skips event records
    whose [ph] this module never emits).  Timestamps are restored exactly:
    the printer keeps nanosecond precision. *)

(** {1 Self-profile summary} *)

type span_stat = {
  span : string;
  count : int;
  total_ns : int;
  p50_ns : int;  (** median span duration *)
  p95_ns : int;
  max_ns : int;
}

type summary = {
  spans : span_stat list;  (** sorted by [total_ns], descending *)
  instants : (string * int) list;  (** instant name -> occurrences *)
  counters : (string * int) list;  (** counter name -> last sampled value *)
  total_events : int;
  dropped_events : int;
  domains : int;
}

val summary : t -> summary

val summary_of_events : ?dropped:int -> event list -> summary
(** The fold behind {!summary}, reusable on parsed traces.  Unbalanced
    spans (begins whose end was dropped by ring wrap-around, or vice versa)
    are ignored rather than guessed at. *)

val pp_summary : Format.formatter -> summary -> unit
