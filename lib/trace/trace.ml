let now_ns = Monotonic_clock.now

type phase = Begin | End | Instant | Counter

type event = {
  phase : phase;
  name : string;
  ts_ns : int;
  domain : int;
  value : int;
}

let dummy_event = { phase = Instant; name = ""; ts_ns = 0; domain = 0; value = 0 }

(* One ring per domain; [n] counts every event ever written, so the live
   window is the last [min n capacity] slots and [n - capacity] is the drop
   count.  Only the owning domain writes, so no synchronization is needed
   on the hot path. *)
type buf = {
  dom : int;
  ring : event array;
  mutable n : int;
}

type t = {
  id : int;
  capacity : int;
  epoch : int64;
  mutable bufs : buf list;  (* registration order; guarded by [reg] *)
  reg : Mutex.t;
}

let next_id = Atomic.make 0

let default_capacity = 1 lsl 16

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  {
    id = Atomic.fetch_and_add next_id 1;
    capacity;
    epoch = now_ns ();
    bufs = [];
    reg = Mutex.create ();
  }

(* Domain-local map from tracer id to that domain's buffer.  A domain's
   first event on a given tracer allocates the ring and registers it (the
   only locked step); every later event is a plain array store. *)
let dls : (int * buf) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let buf_for t =
  let r = Domain.DLS.get dls in
  match List.assq_opt t.id !r with
  | Some b -> b
  | None ->
      let b =
        { dom = (Domain.self () :> int); ring = Array.make t.capacity dummy_event; n = 0 }
      in
      Mutex.lock t.reg;
      t.bufs <- b :: t.bufs;
      Mutex.unlock t.reg;
      r := (t.id, b) :: !r;
      b

let elapsed t = Int64.to_int (Int64.sub (now_ns ()) t.epoch)

let record t phase name value =
  let b = buf_for t in
  b.ring.(b.n mod t.capacity) <-
    { phase; name; ts_ns = elapsed t; domain = b.dom; value };
  b.n <- b.n + 1

let begin_span t name = record t Begin name 0
let end_span t name = record t End name 0
let instant t name = record t Instant name 0
let counter t name value = record t Counter name value

let with_span t name f =
  begin_span t name;
  match f () with
  | v ->
      end_span t name;
      v
  | exception e ->
      end_span t name;
      raise e

let span opt name f = match opt with None -> f () | Some t -> with_span t name f

(* ---- inspection ------------------------------------------------------- *)

let live_bufs t =
  Mutex.lock t.reg;
  let bufs = List.rev t.bufs in
  Mutex.unlock t.reg;
  bufs

let buf_events t b =
  let k = min b.n t.capacity in
  let first = b.n - k in
  List.init k (fun i -> b.ring.((first + i) mod t.capacity))

let events t = List.concat_map (buf_events t) (live_bufs t)

(* ---- incremental reads (tail sampling) --------------------------------- *)

(* A mark freezes each registered buffer's total-written counter [n]; the
   events recorded since are the slots with index >= that counter, clipped
   to what survived ring wrap-around.  Buffers registered after the mark
   contribute everything they hold. *)
type mark = (buf * int) list

let mark t = List.map (fun b -> (b, b.n)) (live_bufs t)

let events_since t m =
  List.concat_map
    (fun b ->
      let since =
        match List.assq_opt b m with Some n -> n | None -> 0
      in
      let first = max since (b.n - t.capacity) in
      List.init
        (max 0 (b.n - first))
        (fun i -> b.ring.((first + i) mod t.capacity)))
    (live_bufs t)

let dropped t =
  List.fold_left (fun acc b -> acc + max 0 (b.n - t.capacity)) 0 (live_bufs t)

let domain_count t = List.length (live_bufs t)

(* ---- Chrome trace-event export ---------------------------------------- *)

module J = Orm_json

let ph_char = function Begin -> 'B' | End -> 'E' | Instant -> 'i' | Counter -> 'C'

(* ts is microseconds in the trace-event format.  Exported as a float of
   the exact nanosecond count / 1000: the quotient has at most ~0.5 ulp of
   error and the importer rounds back, so of_chrome_json restores ts_ns
   losslessly for any timestamp a 63-bit clock can produce. *)
let event_value e =
  J.Obj
    ([
       ("name", J.String e.name);
       ("ph", J.String (String.make 1 (ph_char e.phase)));
       ("ts", J.Float (float_of_int e.ts_ns /. 1000.));
       ("pid", J.Int 0);
       ("tid", J.Int e.domain);
     ]
    @
    match e.phase with
    | Instant -> [ ("s", J.String "t") ]
    | Counter -> [ ("args", J.Obj [ ("value", J.Int e.value) ]) ]
    | Begin | End -> [])

let to_value t =
  J.Obj
    [
      ("displayTimeUnit", J.String "ns");
      ("otherData", J.Obj [ ("dropped", J.Int (dropped t)) ]);
      ("traceEvents", J.List (List.map event_value (events t)));
    ]

let to_chrome_json t = J.to_string (to_value t)

let write_chrome t file =
  let oc = open_out file in
  output_string oc (to_chrome_json t);
  output_char oc '\n';
  close_out oc

(* ---- Chrome trace-event import ---------------------------------------- *)

let event_of_value v =
  match (J.string_member "name" v, J.string_member "ph" v, J.float_member "ts" v) with
  | Some name, Some ph, Some ts ->
      let phase =
        match ph with
        | "B" -> Some Begin
        | "E" -> Some End
        | "i" | "I" -> Some Instant
        | "C" -> Some Counter
        | _ -> None
      in
      Option.map
        (fun phase ->
          let value =
            match Option.bind (J.member "args" v) (J.int_member "value") with
            | Some n -> n
            | None -> 0
          in
          let domain = Option.value (J.int_member "tid" v) ~default:0 in
          {
            phase;
            name;
            ts_ns = int_of_float (Float.round (ts *. 1000.));
            domain;
            value;
          })
        phase
  | _ -> None

let of_chrome_json src =
  match J.of_string src with
  | Error msg -> Error msg
  | Ok v ->
      let arr =
        match v with
        | J.List items -> Ok items
        | J.Obj _ -> (
            match J.member "traceEvents" v with
            | Some (J.List items) -> Ok items
            | Some _ -> Error "traceEvents: expected an array"
            | None -> Error "missing traceEvents field")
        | _ -> Error "expected a JSON object or array"
      in
      Result.map
        (List.filter_map (fun item ->
             match item with J.Obj _ -> event_of_value item | _ -> None))
        arr

(* ---- summary ---------------------------------------------------------- *)

type span_stat = {
  span : string;
  count : int;
  total_ns : int;
  p50_ns : int;
  p95_ns : int;
  max_ns : int;
}

type summary = {
  spans : span_stat list;
  instants : (string * int) list;
  counters : (string * int) list;
  total_events : int;
  dropped_events : int;
  domains : int;
}

let summary_of_events ?(dropped = 0) evs =
  let durations : (string, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let instants : (string, int ref) Hashtbl.t = Hashtbl.create 16 in
  let counters : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let domains = Hashtbl.create 8 in
  let stacks : (int, (string * int) list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack dom =
    match Hashtbl.find_opt stacks dom with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks dom s;
        s
  in
  let push tbl k v =
    match Hashtbl.find_opt tbl k with
    | Some r -> r := v :: !r
    | None -> Hashtbl.add tbl k (ref [ v ])
  in
  (* Events arrive grouped by domain and chronological within each group
     (both [events] and the export preserve buffer order), so a per-domain
     stack pairs each End with the innermost open Begin.  An End whose
     Begin fell off the ring has no match on the stack and is skipped. *)
  List.iter
    (fun e ->
      Hashtbl.replace domains e.domain ();
      match e.phase with
      | Begin ->
          let s = stack e.domain in
          s := (e.name, e.ts_ns) :: !s
      | End -> (
          (* pop the innermost matching begin; anything stacked above it is
             an unclosed inner span, abandoned rather than guessed at *)
          let s = stack e.domain in
          let rec pop = function
            | [] -> None
            | (n, t0) :: rest when n = e.name -> Some (t0, rest)
            | _ :: rest -> pop rest
          in
          match pop !s with
          | Some (t0, rest) ->
              s := rest;
              push durations e.name (e.ts_ns - t0)
          | None -> ())
      | Instant -> (
          match Hashtbl.find_opt instants e.name with
          | Some r -> incr r
          | None -> Hashtbl.add instants e.name (ref 1))
      | Counter -> Hashtbl.replace counters e.name e.value)
    evs;
  let spans =
    Hashtbl.fold
      (fun name times acc ->
        let xs = Array.of_list !times in
        Array.sort compare xs;
        let n = Array.length xs in
        let pct p = xs.(min (n - 1) (p * n / 100)) in
        {
          span = name;
          count = n;
          total_ns = Array.fold_left ( + ) 0 xs;
          p50_ns = pct 50;
          p95_ns = pct 95;
          max_ns = xs.(n - 1);
        }
        :: acc)
      durations []
    |> List.sort (fun a b -> compare (b.total_ns, a.span) (a.total_ns, b.span))
  in
  {
    spans;
    instants =
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) instants []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    counters =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) counters []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b);
    total_events = List.length evs;
    dropped_events = dropped;
    domains = Hashtbl.length domains;
  }

let summary t = summary_of_events ~dropped:(dropped t) (events t)

let pp_ns ppf ns =
  let f = float_of_int ns in
  if f >= 1e9 then Format.fprintf ppf "%.2f s" (f /. 1e9)
  else if f >= 1e6 then Format.fprintf ppf "%.2f ms" (f /. 1e6)
  else if f >= 1e3 then Format.fprintf ppf "%.2f us" (f /. 1e3)
  else Format.fprintf ppf "%d ns" ns

let pp_summary ppf s =
  Format.fprintf ppf "@[<v>%d event(s) on %d domain(s)" s.total_events s.domains;
  if s.dropped_events > 0 then Format.fprintf ppf " (%d dropped)" s.dropped_events;
  Format.fprintf ppf "@,";
  if s.spans <> [] then begin
    Format.fprintf ppf "%-24s %8s %12s %12s %12s %12s@," "span" "count" "total" "p50"
      "p95" "max";
    List.iter
      (fun st ->
        Format.fprintf ppf "%-24s %8d %12s %12s %12s %12s@," st.span st.count
          (Format.asprintf "%a" pp_ns st.total_ns)
          (Format.asprintf "%a" pp_ns st.p50_ns)
          (Format.asprintf "%a" pp_ns st.p95_ns)
          (Format.asprintf "%a" pp_ns st.max_ns))
      s.spans
  end;
  List.iter
    (fun (name, n) -> Format.fprintf ppf "instant %-24s %8d@," name n)
    s.instants;
  List.iter
    (fun (name, v) -> Format.fprintf ppf "counter %-24s %8d (last)@," name v)
    s.counters;
  Format.fprintf ppf "@]"
