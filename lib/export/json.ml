open Orm
module J = Orm_json

(* A thin schema→value mapping over the shared JSON core: this module
   decides the shape of the export, Orm_json does all printing/escaping. *)

let escape_string = J.escape_string
let str s = J.String s
let arr items = J.List items
let obj fields = J.Obj fields

let of_value = function
  | Value.Str s -> str s
  | Value.Int i -> J.Int i

let of_role (r : Ids.role) =
  obj [ ("fact", str r.fact); ("side", J.Int (Ids.side_index r.side)) ]

let of_seq = function
  | Ids.Single r -> obj [ ("kind", str "role"); ("role", of_role r) ]
  | Ids.Pair (r1, r2) ->
      obj [ ("kind", str "pair"); ("roles", arr [ of_role r1; of_role r2 ]) ]

let of_frequency (f : Constraints.frequency) =
  obj
    (("min", J.Int f.min)
    :: (match f.max with Some m -> [ ("max", J.Int m) ] | None -> []))

let of_body = function
  | Constraints.Mandatory r -> obj [ ("kind", str "mandatory"); ("role", of_role r) ]
  | Constraints.Disjunctive_mandatory roles ->
      obj [ ("kind", str "disjunctive_mandatory"); ("roles", arr (List.map of_role roles)) ]
  | Constraints.Uniqueness seq -> obj [ ("kind", str "uniqueness"); ("seq", of_seq seq) ]
  | Constraints.External_uniqueness roles ->
      obj
        [ ("kind", str "external_uniqueness"); ("roles", arr (List.map of_role roles)) ]
  | Constraints.Frequency (seq, f) ->
      obj [ ("kind", str "frequency"); ("seq", of_seq seq); ("range", of_frequency f) ]
  | Constraints.Value_constraint (t, vs) ->
      obj
        [
          ("kind", str "value");
          ("type", str t);
          ("values", arr (List.map of_value (Value.Constraint.elements vs)));
        ]
  | Constraints.Role_exclusion seqs ->
      obj [ ("kind", str "role_exclusion"); ("seqs", arr (List.map of_seq seqs)) ]
  | Constraints.Subset (a, b) ->
      obj [ ("kind", str "subset"); ("sub", of_seq a); ("super", of_seq b) ]
  | Constraints.Equality (a, b) ->
      obj [ ("kind", str "equality"); ("left", of_seq a); ("right", of_seq b) ]
  | Constraints.Type_exclusion ots ->
      obj [ ("kind", str "type_exclusion"); ("types", J.strings ots) ]
  | Constraints.Total_subtypes (super, subs) ->
      obj
        [
          ("kind", str "total_subtypes");
          ("super", str super);
          ("subs", J.strings subs);
        ]
  | Constraints.Ring (k, fact) ->
      obj [ ("kind", str "ring"); ("ring", str (Ring.abbrev k)); ("fact", str fact) ]

let schema_value schema =
  obj
    [
      ("name", str (Schema.name schema));
      ("object_types", J.strings (Schema.object_types schema));
      ( "subtypes",
        arr
          (List.map
             (fun (sub, super) -> obj [ ("sub", str sub); ("super", str super) ])
             (Subtype_graph.edges (Schema.graph schema))) );
      ( "facts",
        arr
          (List.map
             (fun (ft : Fact_type.t) ->
               obj
                 ([
                    ("name", str ft.name);
                    ("player1", str ft.player1);
                    ("player2", str ft.player2);
                  ]
                 @
                 match ft.reading with
                 | Some r -> [ ("reading", str r) ]
                 | None -> []))
             (Schema.fact_types schema)) );
      ( "constraints",
        arr
          (List.map
             (fun (c : Constraints.t) ->
               obj [ ("id", str c.id); ("body", of_body c.body) ])
             (Schema.constraints schema)) );
    ]

let of_element = function
  | Orm_patterns.Diagnostic.Object_type t ->
      obj [ ("kind", str "object_type"); ("name", str t) ]
  | Orm_patterns.Diagnostic.Role r -> obj [ ("kind", str "role"); ("role", of_role r) ]
  | Orm_patterns.Diagnostic.Fact f -> obj [ ("kind", str "fact"); ("name", str f) ]

let of_diagnostic (d : Orm_patterns.Diagnostic.t) =
  let origin =
    match d.origin with
    | Pattern n -> obj [ ("kind", str "pattern"); ("number", J.Int n) ]
    | Propagation e -> obj [ ("kind", str "propagation"); ("from", of_element e) ]
  in
  obj
    [
      ("origin", origin);
      ( "certainty",
        str
          (match d.certainty with
          | Element_unsatisfiable -> "element"
          | Jointly_unsatisfiable -> "joint") );
      ("affected", arr (List.map of_element d.affected));
      ("culprits", J.strings d.culprits);
      ("message", str d.message);
    ]

let report_value (r : Orm_patterns.Engine.report) =
  obj
    [
      ("diagnostics", arr (List.map of_diagnostic r.diagnostics));
      ("unsat_types", J.strings (Ids.String_set.elements r.unsat_types));
      ( "unsat_roles",
        arr (List.map of_role (Ids.Role_set.elements r.unsat_roles)) );
      ( "joint",
        arr
          (List.map
             (fun group -> arr (List.map of_role (Ids.Role_set.elements group)))
             r.joint) );
    ]

let of_schema schema = J.to_string (schema_value schema)
let of_report r = J.to_string (report_value r)
