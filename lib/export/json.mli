(** JSON export of schemas and diagnostic reports.

    A thin schema→value mapping over the repository's shared JSON core
    ({!Orm_json}) for integrating the checker with external tooling —
    e.g. an editor plugin consuming diagnostics, the use case behind the
    paper's footnote about re-implementing the patterns in Protégé. *)

open Orm

val schema_value : Schema.t -> Orm_json.t
(** The schema as a JSON value: [{name, object_types, subtypes, facts,
    constraints}] with constraints rendered structurally. *)

val report_value : Orm_patterns.Engine.report -> Orm_json.t
(** The engine report: diagnostics with origin/certainty/affected/culprits,
    plus the aggregated unsatisfiable element lists.  The checking
    service splices this value into its response bodies. *)

val of_schema : Schema.t -> string
(** [schema_value] compactly printed. *)

val of_report : Orm_patterns.Engine.report -> string
(** [report_value] compactly printed. *)

val escape_string : string -> string
(** {!Orm_json.escape_string} (exposed for tests). *)
