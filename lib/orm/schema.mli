(** ORM schemas.

    A schema is the unit over which the paper's satisfiability notions are
    defined: a set of object types, a subtype graph, binary fact types, and
    constraint occurrences.  This module provides construction, editing
    (used by the interactive library), well-formedness validation — which is
    distinct from satisfiability: a well-formed schema may still contain
    contradictory constraints — and the derived queries the nine patterns
    rely on. *)

type t

(** {1 Construction and editing} *)

val empty : string -> t
(** [empty name] is a schema with no elements. *)

val name : t -> string

val add_object_type : Ids.object_type -> t -> t
(** Declares an object type (idempotent). *)

val add_subtype : sub:Ids.object_type -> super:Ids.object_type -> t -> t
(** Declares [sub] to be a direct subtype of [super]; both endpoints are
    implicitly declared as object types. *)

val add_fact : Fact_type.t -> t -> t
(** Declares a fact type; its players are implicitly declared.  Replaces any
    previous fact type with the same name. *)

val add_constraint : Constraints.t -> t -> t
(** Appends a constraint occurrence. *)

val add : Constraints.body -> t -> t
(** [add body s] appends [body] under a fresh identifier ["c<n>"]. *)

val remove_constraint : Constraints.id -> t -> t
val remove_fact : Ids.fact_type -> t -> t
(** Removes the fact type and every constraint mentioning its roles. *)

val rename :
  ?schema_name:string ->
  ?object_type:(Ids.object_type -> Ids.object_type) ->
  ?fact_type:(Ids.fact_type -> Ids.fact_type) ->
  ?constraint_id:(Constraints.id -> Constraints.id) ->
  t ->
  t
(** [rename s] applies the given name mappings everywhere a name occurs:
    the type set, fact-type names and players, subtype edges, constraint
    identifiers and every role/type reference inside constraint bodies.
    The mappings are expected to be injective on the names actually used;
    readings and value sets are untouched.  Declaration order is
    preserved.  This is the substitution the registry's canonicalizer is
    built on, and what the property tests use to generate isomorphic
    clones. *)

val remove_subtype : sub:Ids.object_type -> super:Ids.object_type -> t -> t
val remove_object_type : Ids.object_type -> t -> t
(** Removes the type, its subtype edges, every fact type it plays in, and
    every constraint mentioning it. *)

(** {1 Access} *)

val object_types : t -> Ids.object_type list
val has_object_type : t -> Ids.object_type -> bool
val fact_types : t -> Fact_type.t list
val find_fact : t -> Ids.fact_type -> Fact_type.t option
val constraints : t -> Constraints.t list
val find_constraint : t -> Constraints.id -> Constraints.t option
val graph : t -> Subtype_graph.t
val all_roles : t -> Ids.role list

val player : t -> Ids.role -> Ids.object_type option
(** The object type playing a role. *)

val player_exn : t -> Ids.role -> Ids.object_type
(** @raise Not_found if the role's fact type is not declared. *)

val roles_played_by : t -> Ids.object_type -> Ids.role list
(** Roles directly attached to the type (not inherited from supertypes). *)

(** {1 Derived queries used by the patterns} *)

val is_mandatory : t -> Ids.role -> bool
val mandatory_constraints_on : t -> Ids.role -> Constraints.t list
val uniqueness_on : t -> Ids.role_seq -> Constraints.t list
val has_uniqueness : t -> Ids.role_seq -> bool
val frequencies_on : t -> Ids.role_seq -> (Constraints.t * Constraints.frequency) list
val min_frequency : t -> Ids.role -> int
(** Minimum of the frequency constraints on the single role, defaulting to 1
    when unconstrained (the paper's [fi] in pattern 5). *)

val value_constraint : t -> Ids.object_type -> (Constraints.t * Value.Constraint.t) option
(** The value constraint declared directly on the type (if several are
    declared, their intersection). *)

val effective_value_set : t -> Ids.object_type -> Value.Constraint.t option
(** The intersection of the value constraints of the type and all its
    supertypes — the tightest admissible-value bound (a refinement over the
    paper, which reads only the direct constraint). *)

val role_exclusions : t -> (Constraints.t * Ids.role_seq list) list
val type_exclusions : t -> (Constraints.t * Ids.object_type list) list
val set_comparisons : t -> (Constraints.t * [ `Subset | `Equality ] * Ids.role_seq * Ids.role_seq) list
val rings_on : t -> Ids.fact_type -> (Constraints.t * Ring.kind) list

(** {1 Well-formedness} *)

type error =
  | Undeclared_object_type of Ids.object_type * string
      (** type, context description *)
  | Undeclared_fact_type of Ids.fact_type * string
  | Invalid_pair of Constraints.id * Ids.role_seq
      (** a [Pair] whose roles are not the two sides of one fact type *)
  | Arity_mismatch of Constraints.id
      (** set-comparison or exclusion over sequences of different arity *)
  | Exclusion_too_small of Constraints.id  (** fewer than two sequences *)
  | Empty_value_set of Constraints.id
  | Bad_frequency of Constraints.id  (** minimum below 1 *)
  | Ring_players_unrelated of Constraints.id * Ids.fact_type
      (** ring constraint whose two players share no common supertype *)
  | External_uniqueness_misaligned of Constraints.id
      (** external uniqueness whose roles are not at least two roles of
          distinct fact types with a common co-role player (the join
          type) *)
  | Duplicate_constraint_id of Constraints.id

val pp_error : Format.formatter -> error -> unit

val validate : t -> error list
(** Structural well-formedness; [[]] means well-formed.  All satisfiability
    machinery assumes a validated schema. *)

val stats : t -> (string * int) list
(** Element counts for reporting: object types, subtype edges, fact types,
    constraints by kind. *)

val pp : Format.formatter -> t -> unit
(** A compact textual dump (the DSL printer offers the parseable form). *)
