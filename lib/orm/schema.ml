module Sset = Ids.String_set
module Smap = Ids.String_map

type t = {
  schema_name : string;
  types : Sset.t;
  facts : Fact_type.t Smap.t;
  graph : Subtype_graph.t;
  cstrs : Constraints.t list;  (* reverse declaration order *)
  next_id : int;
}

let empty schema_name =
  { schema_name; types = Sset.empty; facts = Smap.empty; graph = Subtype_graph.empty;
    cstrs = []; next_id = 1 }

let name s = s.schema_name

let add_object_type ot s = { s with types = Sset.add ot s.types }

let add_subtype ~sub ~super s =
  let s = add_object_type sub (add_object_type super s) in
  { s with graph = Subtype_graph.add_edge ~sub ~super s.graph }

let add_fact (ft : Fact_type.t) s =
  let s = add_object_type ft.player1 (add_object_type ft.player2 s) in
  { s with facts = Smap.add ft.name ft s.facts }

let add_constraint c s = { s with cstrs = c :: s.cstrs }

let add body s =
  let id = Printf.sprintf "c%d" s.next_id in
  { (add_constraint (Constraints.make id body) s) with next_id = s.next_id + 1 }

let remove_constraint id s =
  { s with cstrs = List.filter (fun (c : Constraints.t) -> c.id <> id) s.cstrs }

let mentions_fact fact (c : Constraints.t) =
  List.exists (fun (r : Ids.role) -> r.fact = fact) (Constraints.roles_of c.body)

let remove_fact fact s =
  {
    s with
    facts = Smap.remove fact s.facts;
    cstrs = List.filter (fun c -> not (mentions_fact fact c)) s.cstrs;
  }

let remove_subtype ~sub ~super s =
  let edges =
    List.filter (fun e -> e <> (sub, super)) (Subtype_graph.edges s.graph)
  in
  { s with graph = Subtype_graph.of_edges edges }

let remove_object_type ot s =
  let facts_of_ot =
    Smap.fold
      (fun fname (ft : Fact_type.t) acc ->
        if ft.player1 = ot || ft.player2 = ot then fname :: acc else acc)
      s.facts []
  in
  let s = List.fold_left (fun s f -> remove_fact f s) s facts_of_ot in
  let edges =
    List.filter
      (fun (a, b) -> a <> ot && b <> ot)
      (Subtype_graph.edges s.graph)
  in
  {
    s with
    types = Sset.remove ot s.types;
    graph = Subtype_graph.of_edges edges;
    cstrs =
      List.filter
        (fun (c : Constraints.t) ->
          not (List.mem ot (Constraints.object_types_of c.body)))
        s.cstrs;
  }

let object_types s = Sset.elements s.types
let has_object_type s ot = Sset.mem ot s.types
let fact_types s = List.map snd (Smap.bindings s.facts)
let find_fact s f = Smap.find_opt f s.facts
let constraints s = List.rev s.cstrs

let find_constraint s id =
  List.find_opt (fun (c : Constraints.t) -> c.id = id) s.cstrs

let graph s = s.graph

let all_roles s =
  Smap.fold
    (fun fname _ acc -> Ids.second fname :: Ids.first fname :: acc)
    s.facts []
  |> List.rev

let player s (r : Ids.role) =
  Option.map (fun ft -> Fact_type.player ft r.side) (find_fact s r.fact)

let player_exn s r =
  match player s r with Some p -> p | None -> raise Not_found

let roles_played_by s ot =
  List.filter (fun r -> player s r = Some ot) (all_roles s)

(* --- Derived constraint queries ------------------------------------- *)

let fold_constraints f s = List.fold_left (fun acc c -> f acc c) [] (constraints s)

let mandatory_constraints_on s role =
  fold_constraints
    (fun acc (c : Constraints.t) ->
      match c.body with
      | Mandatory r when Ids.equal_role r role -> c :: acc
      | _ -> acc)
    s
  |> List.rev

let is_mandatory s role = mandatory_constraints_on s role <> []

let uniqueness_on s seq =
  fold_constraints
    (fun acc (c : Constraints.t) ->
      match c.body with
      | Uniqueness q when Ids.equal_seq q seq -> c :: acc
      | _ -> acc)
    s
  |> List.rev

let has_uniqueness s seq = uniqueness_on s seq <> []

let frequencies_on s seq =
  fold_constraints
    (fun acc (c : Constraints.t) ->
      match c.body with
      | Frequency (q, f) when Ids.equal_seq q seq -> (c, f) :: acc
      | _ -> acc)
    s
  |> List.rev

let min_frequency s role =
  match frequencies_on s (Ids.Single role) with
  | [] -> 1
  | fs -> List.fold_left (fun acc (_, (f : Constraints.frequency)) -> max acc f.min) 1 fs

let value_constraint s ot =
  let vcs =
    fold_constraints
      (fun acc (c : Constraints.t) ->
        match c.body with
        | Value_constraint (t, vs) when t = ot -> (c, vs) :: acc
        | _ -> acc)
      s
  in
  match List.rev vcs with
  | [] -> None
  | (c, vs) :: rest ->
      Some (c, List.fold_left (fun acc (_, vs') -> Value.Constraint.inter acc vs') vs rest)

let effective_value_set s ot =
  let ancestors = Sset.elements (Subtype_graph.supertypes_with_self s.graph ot) in
  let sets = List.filter_map (fun t -> Option.map snd (value_constraint s t)) ancestors in
  match sets with
  | [] -> None
  | hd :: tl -> Some (List.fold_left Value.Constraint.inter hd tl)

let role_exclusions s =
  fold_constraints
    (fun acc (c : Constraints.t) ->
      match c.body with Role_exclusion seqs -> (c, seqs) :: acc | _ -> acc)
    s
  |> List.rev

let type_exclusions s =
  fold_constraints
    (fun acc (c : Constraints.t) ->
      match c.body with Type_exclusion ots -> (c, ots) :: acc | _ -> acc)
    s
  |> List.rev

let set_comparisons s =
  fold_constraints
    (fun acc (c : Constraints.t) ->
      match c.body with
      | Subset (a, b) -> (c, `Subset, a, b) :: acc
      | Equality (a, b) -> (c, `Equality, a, b) :: acc
      | _ -> acc)
    s
  |> List.rev

let rings_on s fact =
  fold_constraints
    (fun acc (c : Constraints.t) ->
      match c.body with
      | Ring (k, f) when f = fact -> (c, k) :: acc
      | _ -> acc)
    s
  |> List.rev

(* --- Renaming --------------------------------------------------------- *)

let rename_role fact_type (r : Ids.role) = { r with Ids.fact = fact_type r.fact }

let rename_seq fact_type = function
  | Ids.Single r -> Ids.Single (rename_role fact_type r)
  | Ids.Pair (r1, r2) ->
      Ids.Pair (rename_role fact_type r1, rename_role fact_type r2)

let rename_body ~object_type ~fact_type (body : Constraints.body) :
    Constraints.body =
  match body with
  | Mandatory r -> Mandatory (rename_role fact_type r)
  | Disjunctive_mandatory roles ->
      Disjunctive_mandatory (List.map (rename_role fact_type) roles)
  | Uniqueness seq -> Uniqueness (rename_seq fact_type seq)
  | External_uniqueness roles ->
      External_uniqueness (List.map (rename_role fact_type) roles)
  | Frequency (seq, f) -> Frequency (rename_seq fact_type seq, f)
  | Value_constraint (ot, vs) -> Value_constraint (object_type ot, vs)
  | Role_exclusion seqs -> Role_exclusion (List.map (rename_seq fact_type) seqs)
  | Subset (a, b) -> Subset (rename_seq fact_type a, rename_seq fact_type b)
  | Equality (a, b) -> Equality (rename_seq fact_type a, rename_seq fact_type b)
  | Type_exclusion ots -> Type_exclusion (List.map object_type ots)
  | Total_subtypes (super, subs) ->
      Total_subtypes (object_type super, List.map object_type subs)
  | Ring (k, fact) -> Ring (k, fact_type fact)

let id x = x

let rename ?schema_name ?(object_type = id) ?(fact_type = id)
    ?(constraint_id = id) s =
  {
    schema_name = Option.value ~default:s.schema_name schema_name;
    types = Sset.map object_type s.types;
    facts =
      Smap.fold
        (fun _ (ft : Fact_type.t) acc ->
          let ft' =
            {
              ft with
              Fact_type.name = fact_type ft.name;
              player1 = object_type ft.player1;
              player2 = object_type ft.player2;
            }
          in
          Smap.add ft'.Fact_type.name ft' acc)
        s.facts Smap.empty;
    graph =
      Subtype_graph.of_edges
        (List.map
           (fun (sub, super) -> (object_type sub, object_type super))
           (Subtype_graph.edges s.graph));
    cstrs =
      List.map
        (fun (c : Constraints.t) ->
          Constraints.make (constraint_id c.id)
            (rename_body ~object_type ~fact_type c.body))
        s.cstrs;
    next_id = s.next_id;
  }

(* --- Well-formedness -------------------------------------------------- *)

type error =
  | Undeclared_object_type of Ids.object_type * string
  | Undeclared_fact_type of Ids.fact_type * string
  | Invalid_pair of Constraints.id * Ids.role_seq
  | Arity_mismatch of Constraints.id
  | Exclusion_too_small of Constraints.id
  | Empty_value_set of Constraints.id
  | Bad_frequency of Constraints.id
  | Ring_players_unrelated of Constraints.id * Ids.fact_type
  | External_uniqueness_misaligned of Constraints.id
  | Duplicate_constraint_id of Constraints.id

let pp_error ppf = function
  | Undeclared_object_type (ot, ctx) ->
      Format.fprintf ppf "object type %s is not declared (%s)" ot ctx
  | Undeclared_fact_type (f, ctx) ->
      Format.fprintf ppf "fact type %s is not declared (%s)" f ctx
  | Invalid_pair (id, seq) ->
      Format.fprintf ppf "constraint %s: %a is not a valid role pair" id Ids.pp_seq seq
  | Arity_mismatch id ->
      Format.fprintf ppf "constraint %s: role sequences have different arities" id
  | Exclusion_too_small id ->
      Format.fprintf ppf "constraint %s: an exclusion needs at least two sequences" id
  | Empty_value_set id -> Format.fprintf ppf "constraint %s: empty value set" id
  | Bad_frequency id ->
      Format.fprintf ppf "constraint %s: frequency minimum must be at least 1" id
  | Ring_players_unrelated (id, f) ->
      Format.fprintf ppf
        "constraint %s: ring constraint on %s whose players share no common supertype"
        id f
  | External_uniqueness_misaligned id ->
      Format.fprintf ppf
        "constraint %s: an external uniqueness needs at least two roles of \
         distinct fact types whose co-roles share one player"
        id
  | Duplicate_constraint_id id ->
      Format.fprintf ppf "duplicate constraint identifier %s" id

let seq_arity = function Ids.Single _ -> 1 | Ids.Pair _ -> 2

let validate s =
  let errs = ref [] in
  let err e = errs := e :: !errs in
  let check_type ctx ot = if not (Sset.mem ot s.types) then err (Undeclared_object_type (ot, ctx)) in
  let check_role ctx (r : Ids.role) =
    if not (Smap.mem r.fact s.facts) then err (Undeclared_fact_type (r.fact, ctx))
  in
  let check_seq id seq =
    List.iter (check_role (Printf.sprintf "constraint %s" id)) (Ids.seq_roles seq);
    match seq with
    | Ids.Single _ -> ()
    | Ids.Pair (r1, r2) ->
        if r1.fact <> r2.fact || r1.side = r2.side then err (Invalid_pair (id, seq))
  in
  Smap.iter
    (fun fname (ft : Fact_type.t) ->
      check_type (Printf.sprintf "fact type %s" fname) ft.player1;
      check_type (Printf.sprintf "fact type %s" fname) ft.player2)
    s.facts;
  List.iter
    (fun (sub, super) ->
      check_type "subtype edge" sub;
      check_type "subtype edge" super)
    (Subtype_graph.edges s.graph);
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (c : Constraints.t) ->
      if Hashtbl.mem seen c.id then err (Duplicate_constraint_id c.id)
      else Hashtbl.add seen c.id ();
      match c.body with
      | Mandatory r -> check_role (Printf.sprintf "constraint %s" c.id) r
      | Disjunctive_mandatory roles ->
          List.iter (check_role (Printf.sprintf "constraint %s" c.id)) roles;
          if roles = [] then err (Exclusion_too_small c.id)
      | Uniqueness seq -> check_seq c.id seq
      | External_uniqueness roles -> (
          List.iter (check_role (Printf.sprintf "constraint %s" c.id)) roles;
          let facts_of = List.map (fun (r : Ids.role) -> r.fact) roles in
          let co_players =
            List.filter_map (fun r -> player s (Ids.co_role r)) roles
          in
          let aligned =
            List.length roles >= 2
            && List.length (List.sort_uniq String.compare facts_of)
               = List.length roles
            && (match List.sort_uniq String.compare co_players with
               | [ _ ] -> List.length co_players = List.length roles
               | _ -> false)
          in
          if not aligned then err (External_uniqueness_misaligned c.id))
      | Frequency (seq, f) ->
          check_seq c.id seq;
          if f.min < 1 then err (Bad_frequency c.id)
      | Value_constraint (ot, vs) ->
          check_type (Printf.sprintf "constraint %s" c.id) ot;
          if Value.Constraint.is_empty vs then err (Empty_value_set c.id)
      | Role_exclusion seqs ->
          List.iter (check_seq c.id) seqs;
          if List.length seqs < 2 then err (Exclusion_too_small c.id);
          (match seqs with
          | first :: rest ->
              if List.exists (fun q -> seq_arity q <> seq_arity first) rest then
                err (Arity_mismatch c.id)
          | [] -> ())
      | Subset (a, b) | Equality (a, b) ->
          check_seq c.id a;
          check_seq c.id b;
          if seq_arity a <> seq_arity b then err (Arity_mismatch c.id)
      | Type_exclusion ots ->
          List.iter (check_type (Printf.sprintf "constraint %s" c.id)) ots;
          if List.length ots < 2 then err (Exclusion_too_small c.id)
      | Total_subtypes (super, subs) ->
          check_type (Printf.sprintf "constraint %s" c.id) super;
          List.iter (check_type (Printf.sprintf "constraint %s" c.id)) subs
      | Ring (_, fact) -> (
          match Smap.find_opt fact s.facts with
          | None -> err (Undeclared_fact_type (fact, Printf.sprintf "constraint %s" c.id))
          | Some ft ->
              if not (Subtype_graph.related s.graph ft.player1 ft.player2) then
                err (Ring_players_unrelated (c.id, fact))))
    (constraints s);
  List.rev !errs

let stats s =
  let by_kind = Hashtbl.create 16 in
  List.iter
    (fun (c : Constraints.t) ->
      let k = Constraints.kind_name c.body in
      Hashtbl.replace by_kind k (1 + Option.value ~default:0 (Hashtbl.find_opt by_kind k)))
    s.cstrs;
  let kind_counts =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_kind []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  [
    ("object-types", Sset.cardinal s.types);
    ("subtype-edges", List.length (Subtype_graph.edges s.graph));
    ("fact-types", Smap.cardinal s.facts);
    ("constraints", List.length s.cstrs);
  ]
  @ kind_counts

let pp ppf s =
  Format.fprintf ppf "@[<v>schema %s@," s.schema_name;
  List.iter (fun ot -> Format.fprintf ppf "  object type %s@," ot) (object_types s);
  List.iter
    (fun (sub, super) -> Format.fprintf ppf "  %s < %s@," sub super)
    (Subtype_graph.edges s.graph);
  List.iter (fun ft -> Format.fprintf ppf "  fact %a@," Fact_type.pp ft) (fact_types s);
  List.iter (fun c -> Format.fprintf ppf "  %a@," Constraints.pp c) (constraints s);
  Format.fprintf ppf "@]"
