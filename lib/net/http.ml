module P = Orm_server.Protocol

type request = {
  meth : string;
  path : string;
  headers : (string * string) list;
  body : string;
  keep_alive : bool;
}

let default_max_body = 8 * 1024 * 1024
let max_head = 8 * 1024

type parsed =
  | Incomplete
  | Request of request * int
  | Reject of { code : int; reason : string; close : bool; consumed : int }

(* End of the header block: CRLFCRLF per the RFC, bare LFLF tolerated.
   Returns (first byte past the blank line). *)
let head_end s =
  let n = String.length s in
  let rec go i =
    if i >= n then None
    else if s.[i] <> '\n' then go (i + 1)
    else if i + 1 < n && s.[i + 1] = '\n' then Some (i + 2)
    else if i + 2 < n && s.[i + 1] = '\r' && s.[i + 2] = '\n' then Some (i + 3)
    else go (i + 1)
  in
  go 0

let split_lines head =
  String.split_on_char '\n' head
  |> List.map (fun l ->
         let n = String.length l in
         if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l)
  |> List.filter (fun l -> l <> "")

let parse ?(max_body = default_max_body) s =
  match head_end s with
  | None ->
      if String.length s > max_head then
        Reject
          {
            code = 431;
            reason = "request header block too large";
            close = true;
            consumed = String.length s;
          }
      else Incomplete
  | Some body_start when body_start > max_head ->
      (* the bound holds even when the whole head arrives in one read —
         the buffering path above only catches heads still growing *)
      Reject
        {
          code = 431;
          reason = "request header block too large";
          close = true;
          consumed = body_start;
        }
  | Some body_start -> (
      let head = String.sub s 0 body_start in
      match split_lines head with
      | [] ->
          Reject
            { code = 400; reason = "empty request"; close = true; consumed = body_start }
      | request_line :: header_lines -> (
          match String.split_on_char ' ' request_line with
          | [ meth; path; version ]
            when String.length version >= 7 && String.sub version 0 7 = "HTTP/1." -> (
              let headers =
                List.filter_map
                  (fun line ->
                    match String.index_opt line ':' with
                    | None -> None
                    | Some i ->
                        Some
                          ( String.lowercase_ascii (String.sub line 0 i),
                            String.trim
                              (String.sub line (i + 1) (String.length line - i - 1)) ))
                  header_lines
              in
              let header name = List.assoc_opt name headers in
              let keep_alive =
                match Option.map String.lowercase_ascii (header "connection") with
                | Some "close" -> false
                | Some "keep-alive" -> true
                | _ -> version <> "HTTP/1.0"
              in
              if header "transfer-encoding" <> None then
                Reject
                  {
                    code = 501;
                    reason = "chunked transfer encoding is not supported";
                    close = true;
                    consumed = String.length s;
                  }
              else
                match
                  match header "content-length" with
                  | None -> Some 0
                  | Some v -> (
                      match int_of_string_opt (String.trim v) with
                      | Some n when n >= 0 -> Some n
                      | _ -> None)
                with
                | None ->
                    Reject
                      {
                        code = 400;
                        reason = "malformed Content-Length";
                        close = true;
                        consumed = String.length s;
                      }
                | Some len when len > max_body ->
                    Reject
                      {
                        code = 413;
                        reason =
                          Printf.sprintf "request body exceeds %d bytes" max_body;
                        close = true;
                        consumed = String.length s;
                      }
                | Some len ->
                    if String.length s - body_start < len then Incomplete
                    else
                      Request
                        ( {
                            meth;
                            path;
                            headers;
                            body = String.sub s body_start len;
                            keep_alive;
                          },
                          body_start + len ))
          | [ _; _; _ ] ->
              Reject
                {
                  code = 505;
                  reason = "only HTTP/1.x is supported";
                  close = true;
                  consumed = String.length s;
                }
          | _ ->
              Reject
                {
                  code = 400;
                  reason = "malformed request line";
                  close = true;
                  consumed = String.length s;
                }))

(* ---- envelope mapping -------------------------------------------------- *)

let meth_of_path path =
  match path with
  | "/v1/check" -> Some "check"
  | "/v1/batch" -> Some "batch"
  | "/v1/reason" -> Some "reason"
  | "/v1/lint" -> Some "lint"
  | "/v1/stats" -> Some "stats"
  | "/v1/ping" -> Some "ping"
  | "/v1/shutdown" -> Some "shutdown"
  | "/v1/ingest" -> Some "ingest"
  | "/v1/query" -> Some "query"
  | "/v1/registry-stats" -> Some "registry-stats"
  | _ -> None

let envelope_of_request (r : request) =
  match meth_of_path r.path with
  | None -> Error (404, Printf.sprintf "unknown path %S" r.path)
  | Some meth -> (
      let verb_ok =
        match r.meth with
        | "POST" -> true
        | "GET" -> meth = "ping" || meth = "stats" || meth = "registry-stats"
        | _ -> false
      in
      if not verb_ok then
        Error
          (405, Printf.sprintf "method %s is not allowed on %s" r.meth r.path)
      else
        (* the body must parse as a JSON object before it is spliced in as
           [params]: anything else could smuggle extra envelope fields *)
        let params =
          if String.trim r.body = "" then Ok None
          else
            match P.json_of_string r.body with
            | Ok (P.Obj _ as o) -> Ok (Some o)
            | Ok _ -> Error "request body must be a JSON object"
            | Error msg -> Error ("request body is not valid JSON: " ^ msg)
        in
        match params with
        | Error msg -> Error (400, msg)
        | Ok params ->
            let id =
              match List.assoc_opt "x-request-id" r.headers with
              | Some v when v <> "" -> [ ("id", P.String v) ]
              | _ -> []
            in
            Ok
              (P.json_to_string
                 (P.Obj
                    ([ ("ormcheck", P.Int P.version) ]
                    @ id
                    @ [ ("method", P.String meth) ]
                    @
                    match params with
                    | Some o -> [ ("params", o) ]
                    | None -> []))))

let code_of_response line =
  match P.json_of_string line with
  | Ok (P.Obj _ as o) -> (
      match P.member "status" o with
      | Some (P.String "ok") -> 200
      | Some (P.String "error") -> 400
      | Some (P.String "timeout") -> 408
      | Some (P.String "overloaded") -> 429
      | _ -> 500)
  | _ -> 500

let reason_phrase = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Content Too Large"
  | 429 -> "Too Many Requests"
  | 431 -> "Request Header Fields Too Large"
  | 501 -> "Not Implemented"
  | 503 -> "Service Unavailable"
  | 505 -> "HTTP Version Not Supported"
  | _ -> "Internal Server Error"

let serialize ?(content_type = "application/json") ~keep_alive ~code body =
  (* responses end in exactly one newline, whatever the caller passed *)
  let body =
    if String.length body > 0 && body.[String.length body - 1] = '\n' then body
    else body ^ "\n"
  in
  Printf.sprintf
    "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: \
     %d\r\nConnection: %s\r\n\r\n%s"
    code (reason_phrase code) content_type (String.length body)
    (if keep_alive then "keep-alive" else "close")
    body

let error_body msg = P.error_response ~id:None msg

(* ---- client ------------------------------------------------------------ *)

let client_request ~path ?id ~body () =
  let id_header =
    match id with Some i -> Printf.sprintf "X-Request-Id: %s\r\n" i | None -> ""
  in
  Printf.sprintf
    "POST %s HTTP/1.1\r\nHost: ormcheck\r\nContent-Type: \
     application/json\r\n%sContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    path id_header (String.length body) body

(* [(code, body)] once the buffer holds a complete response; [None] while
   it does not.  Requires Content-Length, which {!serialize} always
   writes. *)
let parse_response s =
  match head_end s with
  | None -> Ok None
  | Some body_start -> (
      match split_lines (String.sub s 0 body_start) with
      | [] -> Error "empty response"
      | status_line :: header_lines -> (
          let code =
            match String.split_on_char ' ' status_line with
            | version :: code :: _
              when String.length version >= 7 && String.sub version 0 7 = "HTTP/1."
              ->
                int_of_string_opt code
            | _ -> None
          in
          match code with
          | None -> Error ("malformed status line: " ^ status_line)
          | Some code -> (
              let content_length =
                List.find_map
                  (fun line ->
                    match String.index_opt line ':' with
                    | Some i
                      when String.lowercase_ascii (String.sub line 0 i)
                           = "content-length" ->
                        int_of_string_opt
                          (String.trim
                             (String.sub line (i + 1) (String.length line - i - 1)))
                    | _ -> None)
                  header_lines
              in
              match content_length with
              | None -> Error "response carries no Content-Length"
              | Some len ->
                  if String.length s - body_start < len then Ok None
                  else Ok (Some (code, String.sub s body_start len)))))

let read_response fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec fill () =
    match parse_response (Buffer.contents buf) with
    | Error _ as e -> e
    | Ok (Some (code, body)) -> Ok (code, body)
    | Ok None -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> Error "connection closed before a full response arrived"
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            fill ()
        | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
  in
  fill ()
