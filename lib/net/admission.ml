type t = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let create ~slots =
  if slots < 1 then invalid_arg "Admission.create: slots must be >= 1";
  (* an unlinked temp file backs the shared mapping: the page lives only
     as long as the processes that inherited it, and a crashed fleet
     leaves nothing behind on disk *)
  let path = Filename.temp_file "ormcheck-admission" ".page" in
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
  let page =
    Bigarray.array1_of_genarray
      (Unix.map_file fd Bigarray.int Bigarray.c_layout true [| slots |])
  in
  Unix.close fd;
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Bigarray.Array1.fill page 0;
  page

let slots = Bigarray.Array1.dim

let set page ~slot n =
  if slot >= 0 && slot < Bigarray.Array1.dim page then
    page.{slot} <- (if n < 0 then 0 else n)

let total page =
  let sum = ref 0 in
  for i = 0 to Bigarray.Array1.dim page - 1 do
    sum := !sum + page.{i}
  done;
  !sum
