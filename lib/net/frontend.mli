(** The network front end: one select loop serving a bound socket with
    either NDJSON or HTTP/1.1 framing, and a prefork supervisor that
    shards that loop across worker processes.

    The loop reuses the transport-agnostic pieces of
    {!Orm_server.Server} — [handle] for dispatch, [overloaded] for
    admission control, [stop_flag] for drain — so every behaviour the
    Unix-socket service already has (bounded pending queue, per-request
    deadlines, graceful drain on SIGINT/SIGTERM or a [shutdown] request)
    holds identically over TCP and HTTP.  Framing differences live
    entirely here:

    {ul
    {- {e NDJSON} connections carry one envelope per line, answered by
       one response line, exactly like the built-in loop;}
    {- {e HTTP} connections are parsed by {!Http} (keep-alive,
       pipelining, [Content-Length]); each request maps to an envelope,
       each response line is wrapped with the status mapping 200 [ok] /
       400 [error] / 408 [timeout] / 429 [overloaded], and a draining
       server answers 503 to requests that arrive after the drain
       started.  A transport-level violation (oversized body, malformed
       head) is answered on the spot and, when framing is lost, the
       connection is closed — other connections keep being served.}}

    HTTP listeners additionally answer the operational endpoints before
    the envelope mapping (so probes and scrapes never count as protocol
    requests): [GET /metrics] is the Prometheus exposition
    ({!Orm_server.Server.metrics_body} — cluster-folded under prefork),
    [GET /healthz] unconditional liveness, [GET /readyz] routability
    ({!Orm_server.Server.readiness}; 503 while draining, at the admission
    bound, or with an unwritable cache directory).  When the server
    config's [drain_linger_ms] is positive, a draining worker keeps its
    listener open for that long — answering 503 on [/readyz] and to new
    protocol requests — so load balancers observe the drain before the
    port goes away.  Drain deadlines are measured on the monotonic
    clock. *)

val serve_fd :
  ?max_body:int ->
  ?config_file:string ->
  ?admission:Admission.t * int ->
  server:Orm_server.Server.t ->
  framing:Listen.framing ->
  Unix.file_descr ->
  unit
(** Runs the loop on a listening socket until drained: SIGTERM/SIGINT
    (handlers installed for the duration), a [shutdown] request, or
    another thread setting {!Orm_server.Server.stop_flag}.  A SIGHUP
    re-reads [config_file] between requests (hot reload, same semantics
    as {!Orm_server.Server.serve}); without a [config_file] the signal
    is logged and ignored.  The caller owns the socket — {!serve_fd}
    does not close it, so prefork workers can share one bound
    descriptor.

    [admission] is this worker's [(page, slot)] in the fleet's shared
    {!Admission} counter: the worker publishes its pending-queue length
    into its slot and decides admission (and [/readyz]) against the sum
    over every slot, so [max_pending] bounds the whole fleet.  Without it
    the local queue is the whole fleet. *)

val run :
  ?workers:int ->
  ?max_body:int ->
  ?config_file:string ->
  make_server:(unit -> Orm_server.Server.t) ->
  Listen.spec ->
  (unit, string) result
(** Binds the spec and serves it.

    [workers <= 1] (default): {!serve_fd} in this process.

    [workers > 1]: prefork sharding — forks [workers] children that each
    build their own server ([make_server] runs {e in the child}, so
    caches, metrics and disk-cache handles are per-worker) and accept on
    the shared socket.  An {!Admission} page mapped before the fork makes
    [max_pending] a fleet-wide bound: each worker publishes its pending
    count into its slot and admits against the sum.  The parent only supervises: SIGTERM/SIGINT fan
    out to the children (which drain and exit 0), a crashed child is
    respawned (bounded, so a deterministic crash loop terminates the
    fleet instead of spinning), a SIGHUP fans out to every live worker
    (each re-reads [config_file] itself — the supervisor holds no server
    state), and a child exiting 0 voluntarily — a [shutdown] request —
    drains the whole fleet.  Returns once the socket is closed (and, for
    [unix:] specs, unlinked).

    [Error] is a bind failure; everything after binding is handled. *)
