(** Cluster-wide admission counter for the prefork front end.

    With [--workers N] every worker runs its own select loop and pending
    queue, so a per-worker [max_pending] bound would multiply by [N]: the
    fleet could hold [N * max_pending] requests while each worker believes
    itself under the limit.  This module shares the pending counts through
    one page of memory mapped [MAP_SHARED] before the fork (an unlinked
    temp file backs it, so nothing persists past the fleet): one word per
    worker slot, each worker the single writer of its own slot, every
    worker summing all slots when it decides admission.

    Lock-free by construction — a word-sized aligned store is atomic on
    every platform OCaml targets, and the readers tolerate staleness: the
    sum is a bound-enforcement heuristic, not an invariant, so a race can
    at worst admit or reject one request near the boundary.  [overloaded]
    {e accounting} stays per-worker (each worker counts the rejections it
    answered); only the {e decision} reads the shared page. *)

type t
(** The shared page.  Created before the fork; inherited by every
    worker. *)

val create : slots:int -> t
(** [create ~slots] maps a fresh zeroed page with one counter per worker
    slot.  Raises [Invalid_argument] when [slots < 1]. *)

val slots : t -> int

val set : t -> slot:int -> int -> unit
(** [set page ~slot n] publishes worker [slot]'s pending-queue length.
    The worker owning [slot] must be the only caller for that slot.
    Out-of-range slots are ignored; negative [n] is clamped to 0. *)

val total : t -> int
(** Sum over every slot — the fleet-wide pending count the admission
    decision compares against [max_pending]. *)
