(** Listen/connect address specs of the network front end.

    One textual syntax serves [ormcheck serve --listen] and
    [ormcheck client --connect]:

    {v
    unix:PATH        Unix-domain socket, NDJSON framing
    tcp:HOST:PORT    TCP socket, NDJSON framing
    http:HOST:PORT   TCP socket, HTTP/1.1 framing (see {!Http})
    v}

    The spec decides both the address family and the connection framing:
    [unix:] and [tcp:] speak the newline-delimited {!Orm_server.Protocol}
    envelopes verbatim, [http:] wraps the same envelopes in HTTP/1.1
    request/response messages. *)

type spec =
  | Unix_sock of string  (** [unix:PATH] *)
  | Tcp of string * int  (** [tcp:HOST:PORT] *)
  | Http of string * int  (** [http:HOST:PORT] *)

val parse : string -> (spec, string) result
(** Parses the [--listen]/[--connect] syntax above.  [Error] carries a
    usage message naming the three accepted forms. *)

val describe : spec -> string
(** The spec back in its textual syntax (for logs and errors). *)

type framing = Ndjson | Http_framing

val framing : spec -> framing

val bind : spec -> (Unix.file_descr, string) result
(** Binds and listens (backlog 64), returning a non-blocking listening
    socket ready for {!Frontend.serve_fd}.  A Unix-domain spec replaces
    any existing file at its path; TCP/HTTP sockets set [SO_REUSEADDR]
    and resolve [HOST] via [getaddrinfo] (so [localhost], [0.0.0.0] and
    names all work).  [Error] carries the failing address and reason. *)

val connect : spec -> (Unix.file_descr, string) result
(** Client side of {!bind}: a connected (blocking) socket. *)

val cleanup : spec -> unit
(** Removes the socket file of a [Unix_sock] spec; a no-op otherwise.
    Call after closing the listening socket. *)
