module P = Orm_server.Protocol
module Server = Orm_server.Server
module Log = Orm_trace.Log
module Metrics = Orm_telemetry.Metrics

(* ---- connections ------------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  framing : Listen.framing;
  inbuf : Buffer.t;
  mutable out : string;  (* bytes accepted but not yet written *)
  mutable eof : bool;
  mutable dead : bool;  (* write side failed; drop after cleanup *)
  mutable close_after : bool;  (* close once [out] drains (HTTP) *)
}

let make_conn ~framing fd =
  {
    fd;
    framing;
    inbuf = Buffer.create 4096;
    out = "";
    eof = false;
    dead = false;
    close_after = false;
  }

(* One admitted request: the envelope line to dispatch plus how to frame
   its response.  [http_keep_alive = None] marks an NDJSON request. *)
type pending_item = {
  conn : conn;
  line : string;
  http_keep_alive : bool option;
}

let send conn bytes = conn.out <- conn.out ^ bytes

let send_http ?content_type conn ~keep_alive ~code body =
  send conn (Http.serialize ?content_type ~keep_alive ~code body);
  if not keep_alive then conn.close_after <- true

let flush_conn conn =
  if conn.out <> "" && not conn.dead then
    match Unix.write_substring conn.fd conn.out 0 (String.length conn.out) with
    | n -> conn.out <- String.sub conn.out n (String.length conn.out - n)
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
        conn.dead <- true

let close_conn conn =
  try Unix.close conn.fd with Unix.Unix_error _ -> ()

(* ---- admission --------------------------------------------------------- *)

(* NDJSON framing: split complete lines off the input buffer, admitting
   each into the bounded queue (or answering [overloaded] on the spot).
   [over] is the admission decision — against the fleet-wide pending
   count when an {!Admission} page is attached, else the local queue. *)
let admit_ndjson server pending ~over conn =
  let s = Buffer.contents conn.inbuf in
  let n = String.length s in
  let consumed = ref 0 in
  let rec go start =
    match String.index_from_opt s start '\n' with
    | None -> ()
    | Some i ->
        let line = String.sub s start (i - start) in
        consumed := i + 1;
        if String.trim line <> "" then begin
          if over () then send conn (Server.overloaded server line ^ "\n")
          else Queue.add { conn; line; http_keep_alive = None } pending
        end;
        go (i + 1)
  in
  go 0;
  if !consumed > 0 then begin
    Buffer.clear conn.inbuf;
    Buffer.add_substring conn.inbuf s !consumed (n - !consumed)
  end

(* Operational endpoints, answered before the envelope mapping so a scrape
   never counts as a protocol request.  [/healthz] is pure liveness (the
   loop is running), [/readyz] is routability, [/metrics] the Prometheus
   exposition over the (cluster-folded) telemetry.  All three keep
   answering while the front end drains — that window is exactly when a
   load balancer needs [/readyz] to say 503. *)
let text_plain = "text/plain; charset=utf-8"

let ops_response ~draining ~pending server (req : Http.request) =
  match (req.Http.meth, req.Http.path) with
  | "GET", "/metrics" ->
      Some (200, Orm_obs.Prometheus.content_type, Server.metrics_body server)
  | "GET", "/healthz" -> Some (200, text_plain, "ok")
  | "GET", "/readyz" -> (
      match Server.readiness server ~draining ~pending with
      | Ok () -> Some (200, text_plain, "ready")
      | Error reason -> Some (503, text_plain, "not ready: " ^ reason))
  | _, ("/metrics" | "/healthz" | "/readyz") ->
      Some (405, text_plain, "method not allowed")
  | _ -> None

(* HTTP framing: drain every complete (possibly pipelined) request off
   the buffer.  Transport-level rejects are answered immediately; a
   reject that loses framing closes the connection after the flush.
   Once draining, everything newly parsed is answered 503 — the admitted
   requests ahead of it still get their real answers. *)
let admit_http ~max_body ~draining server pending ~over ~pending_total conn =
  let progress = ref true in
  while !progress && not conn.close_after do
    progress := false;
    let s = Buffer.contents conn.inbuf in
    match Http.parse ~max_body s with
    | Http.Incomplete -> ()
    | Http.Reject { code; reason; close; consumed } ->
        Buffer.clear conn.inbuf;
        Buffer.add_substring conn.inbuf s consumed (String.length s - consumed);
        send_http conn ~keep_alive:(not close) ~code (Http.error_body reason);
        progress := not close
    | Http.Request (req, consumed) -> (
        Buffer.clear conn.inbuf;
        Buffer.add_substring conn.inbuf s consumed (String.length s - consumed);
        progress := true;
        match
          ops_response ~draining:(draining ()) ~pending:(pending_total ())
            server req
        with
        | Some (code, content_type, body) ->
            send_http conn ~content_type ~keep_alive:req.Http.keep_alive ~code
              body
        | None -> (
        if draining () then
          send_http conn ~keep_alive:false ~code:503
            (Http.error_body "server is draining")
        else
          match Http.envelope_of_request req with
          | Error (code, reason) ->
              send_http conn ~keep_alive:req.Http.keep_alive ~code
                (Http.error_body reason)
          | Ok line ->
              if over () then
                let resp = Server.overloaded server line in
                send_http conn ~keep_alive:req.Http.keep_alive
                  ~code:(Http.code_of_response resp) resp
              else
                Queue.add
                  { conn; line; http_keep_alive = Some req.Http.keep_alive }
                  pending))
  done

let read_conn ~max_body ~draining server pending ~over ~pending_total conn =
  let buf = Bytes.create 65536 in
  match Unix.read conn.fd buf 0 (Bytes.length buf) with
  | 0 -> conn.eof <- true
  | n -> (
      Buffer.add_subbytes conn.inbuf buf 0 n;
      match conn.framing with
      | Listen.Ndjson -> admit_ndjson server pending ~over conn
      | Listen.Http_framing ->
          admit_http ~max_body ~draining server pending ~over ~pending_total
            conn)
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EBADF), _, _) ->
      conn.eof <- true;
      conn.dead <- true

(* ---- the loop ---------------------------------------------------------- *)

(* Bounded drain, as in [Server.serve]: a client that never reads its
   responses cannot hold shutdown hostage. *)
let drain_grace_s = 5.0

let serve_fd ?(max_body = Http.default_max_body) ?config_file ?admission
    ~server ~framing listen_fd =
  let stop = Server.stop_flag server in
  let reload = Server.reload_flag server in
  let old_term =
    Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set stop true))
  in
  let old_int =
    Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> Atomic.set stop true))
  in
  let old_hup =
    Sys.signal Sys.sighup (Sys.Signal_handle (fun _ -> Atomic.set reload true))
  in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let restore () =
    Sys.set_signal Sys.sigterm old_term;
    Sys.set_signal Sys.sigint old_int;
    Sys.set_signal Sys.sighup old_hup;
    Sys.set_signal Sys.sigpipe old_pipe
  in
  let maybe_reload () =
    if Atomic.get reload then begin
      Atomic.set reload false;
      match config_file with
      | Some path -> Server.reload_config_file server path
      | None -> Log.info "net: SIGHUP ignored (no --config file to reload)"
    end
  in
  (* re-read per iteration: a SIGHUP reload can change the bound *)
  let max_pending () = (Server.config server).Server.max_pending in
  let conns = ref [] in
  let pending : pending_item Queue.t = Queue.create () in
  (* cluster-wide admission: publish this worker's queue length into its
     shared-page slot and decide against the sum over every worker, so
     [max_pending] bounds the fleet, not each worker separately.  Without
     a page (single worker) both collapse to the local queue. *)
  let publish_pending () =
    match admission with
    | Some (page, slot) -> Admission.set page ~slot (Queue.length pending)
    | None -> ()
  in
  let pending_total () =
    match admission with
    | Some (page, _) -> Admission.total page
    | None -> Queue.length pending
  in
  let over () =
    publish_pending ();
    pending_total () >= max_pending ()
  in
  let draining = ref false in
  (* monotonic, not wall clock: an NTP step mid-drain must neither cut
     the grace short nor extend it *)
  let drain_deadline = ref Int64.max_int in
  let accept_deadline = ref Int64.max_int in
  let start_drain reason =
    if not !draining then begin
      draining := true;
      let now = Metrics.now_ns () in
      (* [drain_linger_ms] keeps the listeners open (answering 503 on
         /readyz) so load balancers observe the drain before the port
         goes away *)
      let linger_ns =
        Int64.mul
          (Int64.of_int (Server.config server).Server.drain_linger_ms)
          1_000_000L
      in
      accept_deadline := Int64.add now linger_ns;
      drain_deadline :=
        Int64.add now
          (Int64.max (Int64.of_float (drain_grace_s *. 1e9)) linger_ns);
      Log.info "net: draining (%s): %d pending request(s)" reason
        (Queue.length pending)
    end
  in
  let accepting () =
    (not !draining) || Metrics.now_ns () < !accept_deadline
  in
  let is_draining () = !draining in
  let finished = ref false in
  while not !finished do
    if Atomic.get stop then start_drain "signal";
    maybe_reload ();
    (* answer everything already admitted *)
    let answered = not (Queue.is_empty pending) in
    while not (Queue.is_empty pending) do
      let item = Queue.pop pending in
      let resp, verdict = Server.handle server item.line in
      (match item.http_keep_alive with
      | None -> send item.conn (resp ^ "\n")
      | Some keep_alive ->
          send_http item.conn ~keep_alive ~code:(Http.code_of_response resp)
            resp);
      if verdict = `Shutdown then start_drain "shutdown request"
    done;
    publish_pending ();
    (* keep the stats fan-in fresh for prefork siblings (no-op without a
       sink); once per processed batch, not per request *)
    if answered then Server.flush_stats server;
    List.iter flush_conn !conns;
    (* reap finished connections *)
    conns :=
      List.filter
        (fun c ->
          let gone = c.dead || ((c.eof || c.close_after) && c.out = "") in
          if gone then close_conn c;
          not gone)
        !conns;
    let all_flushed = List.for_all (fun c -> c.out = "" || c.dead) !conns in
    if
      !draining
      && ((all_flushed && not (accepting ()))
         || Metrics.now_ns () > !drain_deadline)
    then finished := true
    else begin
      (* while draining: no accepts, no NDJSON reads (their queued lines
         were already admitted), but HTTP conns are still read so late
         pipelined requests get their 503 instead of a silent close *)
      let readable c =
        (not (c.eof || c.dead || c.close_after))
        && ((not !draining) || c.framing = Listen.Http_framing)
      in
      let read_fds =
        (if accepting () then [ listen_fd ] else [])
        @ List.filter_map
            (fun c -> if readable c then Some c.fd else None)
            !conns
      in
      let write_fds =
        List.filter_map
          (fun c -> if c.out <> "" && not c.dead then Some c.fd else None)
          !conns
      in
      match Unix.select read_fds write_fds [] 0.2 with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | ready_r, ready_w, _ ->
          if accepting () && List.mem listen_fd ready_r then begin
            let rec accept_all () =
              match Unix.accept listen_fd with
              | client, _ ->
                  Unix.set_nonblock client;
                  conns := make_conn ~framing client :: !conns;
                  accept_all ()
              | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
              | exception Unix.Unix_error (EINTR, _, _) -> ()
            in
            accept_all ()
          end;
          List.iter
            (fun c ->
              if List.mem c.fd ready_r then
                read_conn ~max_body ~draining:is_draining server pending ~over
                  ~pending_total c)
            !conns;
          publish_pending ();
          List.iter (fun c -> if List.mem c.fd ready_w then flush_conn c) !conns
    end
  done;
  List.iter
    (fun c ->
      flush_conn c;
      close_conn c)
    !conns;
  publish_pending ();
  Server.flush_stats server;
  Log.info "net: worker stopped after %d request(s) (%d timeout(s), %d \
            overload(s))"
    (Server.requests_served server)
    (Server.timeouts_total server)
    (Server.overloads_total server);
  restore ()

(* ---- prefork supervisor ------------------------------------------------ *)

(* A deterministic crash-on-first-request bug must terminate the fleet,
   not respawn forever; the bound is generous enough that sporadic
   crashes under load still heal. *)
let max_respawns = 64

let supervise ~spawn ~workers =
  let children = Hashtbl.create workers in
  let stopping = ref false in
  let hup = ref false in
  let handle _ = stopping := true in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle handle) in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle handle) in
  let old_hup = Sys.signal Sys.sighup (Sys.Signal_handle (fun _ -> hup := true)) in
  for slot = 0 to workers - 1 do
    Hashtbl.replace children (spawn slot) slot
  done;
  let forwarded = ref false in
  let forward () =
    if not !forwarded then begin
      forwarded := true;
      Hashtbl.iter
        (fun pid _ -> try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
        children
    end
  in
  (* hot config reload fans out through the existing signal path: every
     worker re-reads its own config file (the supervisor holds no server) *)
  let forward_hup () =
    if !hup then begin
      hup := false;
      Log.info "net: forwarding SIGHUP to %d worker(s)" (Hashtbl.length children);
      Hashtbl.iter
        (fun pid _ -> try Unix.kill pid Sys.sighup with Unix.Unix_error _ -> ())
        children
    end
  in
  let respawns = ref 0 in
  while Hashtbl.length children > 0 do
    if !stopping then forward ();
    forward_hup ();
    match Unix.waitpid [] (-1) with
    | exception Unix.Unix_error (EINTR, _, _) -> ()
    | exception Unix.Unix_error (ECHILD, _, _) -> Hashtbl.reset children
    | pid, status -> (
        match Hashtbl.find_opt children pid with
        | None -> ()
        | Some slot -> (
            Hashtbl.remove children pid;
            match status with
            | _ when !stopping -> ()
            | Unix.WEXITED 0 ->
                (* voluntary exit — a shutdown request reached this
                   worker; drain the rest of the fleet too *)
                Log.info "net: worker %d shut down; stopping the fleet" pid;
                stopping := true;
                forward ()
            | status ->
                let signal_name s =
                  (* OCaml's Sys signal numbers are negative internals *)
                  if s = Sys.sigkill then "SIGKILL"
                  else if s = Sys.sigsegv then "SIGSEGV"
                  else if s = Sys.sigterm then "SIGTERM"
                  else if s = Sys.sigint then "SIGINT"
                  else if s = Sys.sigabrt then "SIGABRT"
                  else Printf.sprintf "signal %d" s
                in
                let describe = function
                  | Unix.WEXITED n -> Printf.sprintf "exited %d" n
                  | Unix.WSIGNALED s ->
                      Printf.sprintf "killed by %s" (signal_name s)
                  | Unix.WSTOPPED s ->
                      Printf.sprintf "stopped by %s" (signal_name s)
                in
                if !respawns >= max_respawns then begin
                  Log.err
                    "net: worker %d %s; respawn budget exhausted, stopping"
                    pid (describe status);
                  stopping := true;
                  forward ()
                end
                else begin
                  incr respawns;
                  Log.warn "net: worker %d %s; respawning (%d/%d)" pid
                    (describe status) !respawns max_respawns;
                  Hashtbl.replace children (spawn slot) slot
                end))
  done;
  Sys.set_signal Sys.sigterm old_term;
  Sys.set_signal Sys.sigint old_int;
  Sys.set_signal Sys.sighup old_hup

let run ?(workers = 1) ?max_body ?config_file ~make_server spec =
  match Listen.bind spec with
  | Error _ as e -> e
  | Ok listen_fd ->
      let framing = Listen.framing spec in
      Log.info "net: listening on %s (%d worker(s))" (Listen.describe spec)
        (max 1 workers);
      if workers <= 1 then
        serve_fd ?max_body ?config_file ~server:(make_server ()) ~framing
          listen_fd
      else begin
        (* the shared admission page must exist before the fork so every
           worker inherits the same mapping; a respawned worker reuses
           its slot *)
        let page = Admission.create ~slots:workers in
        supervise ~workers ~spawn:(fun slot ->
            match Unix.fork () with
            | 0 ->
                (* the child builds its own server: caches, metrics and
                   disk-cache handles must not be shared through fork *)
                (try
                   serve_fd ?max_body ?config_file ~admission:(page, slot)
                     ~server:(make_server ()) ~framing listen_fd
                 with exn ->
                   Log.err "net: worker crashed: %s" (Printexc.to_string exn);
                   exit 1);
                exit 0
            | pid -> pid)
      end;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      Listen.cleanup spec;
      Ok ()
