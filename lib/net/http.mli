(** Minimal hand-rolled HTTP/1.1 adapter over the NDJSON protocol.

    The service's native wire format is one {!Orm_server.Protocol}
    envelope per line; this module maps HTTP messages onto exactly those
    envelopes so the HTTP front end reuses {!Orm_server.Server.handle}
    unchanged:

    {v
    POST /v1/check HTTP/1.1          {"ormcheck":1,"method":"check",
    Content-Length: 27          ->    "params":{"schema":"..."}}
    {"schema":"..."}
    v}

    The request body {e is} the envelope's [params] object (validated to
    be a JSON object before splicing, so a hostile body cannot smuggle
    extra envelope fields); the response body is the response envelope
    line verbatim, with the HTTP status derived from its [status] field:
    [ok] 200, [error] 400, [timeout] 408, [overloaded] 429.  A draining
    server answers 503.  Methods: [POST /v1/check|batch|reason|lint|
    stats|ping|shutdown|ingest|query|registry-stats]; [GET] is
    additionally accepted for [/v1/ping], [/v1/stats] and
    [/v1/registry-stats] (probes).  An [X-Request-Id] header becomes the
    envelope [id].

    Supported framing: [Content-Length] bodies, HTTP/1.1 keep-alive and
    pipelining, [Connection: close].  Deliberately rejected: chunked
    transfer encoding (501), bodies over {!default_max_body} (413),
    heads over 8 KiB (431), non-1.x versions (505). *)

type request = {
  meth : string;  (** upper-case verb as sent *)
  path : string;
  headers : (string * string) list;  (** names lower-cased *)
  body : string;
  keep_alive : bool;  (** version default adjusted by [Connection] *)
}

val default_max_body : int
(** 8 MiB. *)

type parsed =
  | Incomplete  (** need more bytes; nothing consumed *)
  | Request of request * int  (** one full message; [int] bytes consumed *)
  | Reject of { code : int; reason : string; close : bool; consumed : int }
      (** an answerable protocol violation; [close] when framing is lost
          and the connection cannot be reused *)

val parse : ?max_body:int -> string -> parsed
(** Parses one request from the front of the buffer.  Call repeatedly to
    drain pipelined requests. *)

val envelope_of_request : request -> (string, int * string) result
(** The NDJSON envelope line for a parsed request, or [(status, reason)]
    for routing/body errors (404 unknown path, 405 verb, 400 non-object
    body). *)

val code_of_response : string -> int
(** HTTP status for a response envelope line, from its [status] field. *)

val serialize :
  ?content_type:string -> keep_alive:bool -> code:int -> string -> string
(** One HTTP/1.1 response carrying [body] (newline-terminated; one is
    added when missing and counted) with an exact [Content-Length].
    [content_type] defaults to [application/json] — the operational
    endpoints pass the Prometheus text type and [text/plain]. *)

val error_body : string -> string
(** A response-envelope [error] line for transport-level rejects, so
    HTTP errors carry the same JSON shape as protocol errors. *)

(** {1 Client side} (the bundled [ormcheck client] and the tests) *)

val client_request : path:string -> ?id:string -> body:string -> unit -> string
(** A serialized [POST] ([Connection: close]) for [body]. *)

val parse_response : string -> ((int * string) option, string) result
(** [(status, body)] once the buffer holds one complete response,
    [None] while it does not (read more) — the incremental core of
    {!read_response}, exposed for pipelined readers and the tests.
    Requires [Content-Length] (which {!serialize} always writes). *)

val read_response : Unix.file_descr -> (int * string, string) result
(** Reads one complete response off a blocking socket: [(status, body)]. *)
