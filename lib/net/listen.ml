type spec =
  | Unix_sock of string
  | Tcp of string * int
  | Http of string * int

let usage =
  "expected unix:PATH, tcp:HOST:PORT or http:HOST:PORT"

let parse s =
  match String.index_opt s ':' with
  | None -> Error usage
  | Some i -> (
      let scheme = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match scheme with
      | "unix" -> if rest = "" then Error usage else Ok (Unix_sock rest)
      | "tcp" | "http" -> (
          (* HOST:PORT — split on the last colon so a future bracketed
             IPv6 host keeps parsing; the port must be all digits *)
          match String.rindex_opt rest ':' with
          | None -> Error usage
          | Some j -> (
              let host = String.sub rest 0 j in
              let port = String.sub rest (j + 1) (String.length rest - j - 1) in
              match int_of_string_opt port with
              | Some p when p > 0 && p < 65536 && host <> "" ->
                  Ok (if scheme = "tcp" then Tcp (host, p) else Http (host, p))
              | _ -> Error usage))
      | _ -> Error usage)

let describe = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p
  | Http (h, p) -> Printf.sprintf "http:%s:%d" h p

type framing = Ndjson | Http_framing

let framing = function
  | Unix_sock _ | Tcp _ -> Ndjson
  | Http _ -> Http_framing

let resolve host port =
  match
    Unix.getaddrinfo host (string_of_int port)
      [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
  with
  | [] -> Error (Printf.sprintf "cannot resolve %s:%d" host port)
  | ai :: _ -> Ok ai

let with_socket_errors f spec =
  match f () with
  | fd -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "%s: %s" (describe spec) (Unix.error_message e))

let bind spec =
  match spec with
  | Unix_sock path ->
      with_socket_errors
        (fun () ->
          (try Unix.unlink path with Unix.Unix_error _ -> ());
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          (try
             Unix.bind fd (Unix.ADDR_UNIX path);
             Unix.listen fd 64;
             Unix.set_nonblock fd
           with exn ->
             (try Unix.close fd with Unix.Unix_error _ -> ());
             raise exn);
          fd)
        spec
  | Tcp (host, port) | Http (host, port) -> (
      match resolve host port with
      | Error _ as e -> e
      | Ok ai ->
          with_socket_errors
            (fun () ->
              let fd = Unix.socket ai.Unix.ai_family ai.Unix.ai_socktype 0 in
              (try
                 Unix.setsockopt fd Unix.SO_REUSEADDR true;
                 Unix.bind fd ai.Unix.ai_addr;
                 Unix.listen fd 64;
                 Unix.set_nonblock fd
               with exn ->
                 (try Unix.close fd with Unix.Unix_error _ -> ());
                 raise exn);
              fd)
            spec)

let connect spec =
  match spec with
  | Unix_sock path ->
      with_socket_errors
        (fun () ->
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          (try Unix.connect fd (Unix.ADDR_UNIX path)
           with exn ->
             (try Unix.close fd with Unix.Unix_error _ -> ());
             raise exn);
          fd)
        spec
  | Tcp (host, port) | Http (host, port) -> (
      match resolve host port with
      | Error _ as e -> e
      | Ok ai ->
          with_socket_errors
            (fun () ->
              let fd = Unix.socket ai.Unix.ai_family ai.Unix.ai_socktype 0 in
              (try Unix.connect fd ai.Unix.ai_addr
               with exn ->
                 (try Unix.close fd with Unix.Unix_error _ -> ());
                 raise exn);
              fd)
            spec)

let cleanup = function
  | Unix_sock path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ | Http _ -> ()
