open Orm

(* For two excluded sequences, the SetPaths that contradict the exclusion:
   between the sequences themselves and — for same-position single-role
   exclusions — between the enclosing predicates.  A role exclusion only
   implies a predicate exclusion when both roles sit at the same position:
   a tuple shared by the two predicates puts one element in both
   position-k roles, but says nothing about roles at different positions
   (pop(F.1) and pop(G.2) of a shared tuple are different elements). *)
let contradicting_paths g a b =
  let seq_level = [ (a, b, Setcomp.set_path g a b); (b, a, Setcomp.set_path g b a) ] in
  let pred_level =
    match (a, b) with
    | Ids.Single ra, Ids.Single rb when ra.fact <> rb.fact && ra.side = rb.side ->
        let pa = Ids.whole_predicate ra.fact and pb = Ids.whole_predicate rb.fact in
        [ (a, b, Setcomp.set_path g pa pb); (b, a, Setcomp.set_path g pb pa) ]
    | _ -> []
  in
  List.filter_map
    (fun (src, dst, path) -> Option.map (fun ids -> (src, dst, ids)) path)
    (seq_level @ pred_level)

let check (settings : Settings.t) schema =
  let g = Setcomp.build schema in
  List.concat_map
    (fun ((c : Constraints.t), seqs) ->
      List.concat_map
        (fun (a, b) ->
          match contradicting_paths g a b with
          | [] -> []
          | paths ->
              let path_ids =
                List.sort_uniq String.compare (List.concat_map (fun (_, _, ids) -> ids) paths)
              in
              (* Only the subset side of each path is provably empty in every
                 model; the paper's algorithm additionally declares the
                 superset side unpopulatable, which we report as a joint
                 verdict in paper-faithful mode. *)
              let provable =
                List.sort_uniq Diagnostic.compare_element
                  (List.map (fun (src, _, _) -> Diagnostic.Fact (Ids.seq_fact src)) paths)
              in
              let both =
                List.sort_uniq Diagnostic.compare_element
                  [ Diagnostic.Fact (Ids.seq_fact a); Diagnostic.Fact (Ids.seq_fact b) ]
              in
              let certainty =
                if settings.paper_faithful && List.length provable < List.length both
                then Diagnostic.Jointly_unsatisfiable
                else Diagnostic.Element_unsatisfiable
              in
              let affected = if settings.paper_faithful then both else provable in
              let joint_extra =
                (* Even in paper-faithful mode the provable side stays an
                   element-level verdict. *)
                if certainty = Diagnostic.Jointly_unsatisfiable then
                  [
                    Diagnostic.msg (Pattern 6) provable (c.id :: path_ids)
                      "The population of %s is provably empty: the exclusion \
                       constraint %s forces it to be disjoint from a sequence \
                       that the subset/equality constraints %s make it part of."
                      (String.concat ", "
                         (List.map
                            (Format.asprintf "%a" Diagnostic.pp_element)
                            provable))
                      c.id
                      (String.concat ", " path_ids);
                  ]
                else []
              in
              Diagnostic.msg ~certainty (Pattern 6) affected (c.id :: path_ids)
                "The exclusion constraint %s between %s and %s contradicts \
                 the subset/equality constraints %s: the excluded populations \
                 are forced to overlap, so the predicates cannot be populated."
                c.id (Ids.seq_to_string a) (Ids.seq_to_string b)
                (String.concat ", " path_ids)
              :: joint_extra)
        (Pattern_util.pairs seqs))
    (Schema.role_exclusions schema)
