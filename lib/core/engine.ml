open Orm

type report = {
  diagnostics : Diagnostic.t list;
  unsat_types : Ids.String_set.t;
  unsat_roles : Ids.Role_set.t;
  joint : Ids.Role_set.t list;
}

let pattern_check = function
  | 1 -> P1_common_supertype.check
  | 2 -> P2_exclusive_types.check
  | 3 -> P3_exclusion_mandatory.check
  | 4 -> P4_frequency_value.check
  | 5 -> P5_value_exclusion_frequency.check
  | 6 -> P6_set_comparison.check
  | 7 -> P7_uniqueness_frequency.check
  | 8 -> P8_ring.check
  | 9 -> P9_subtype_loop.check
  | 10 -> P10_empty_value.check
  | 11 -> P11_ring_value.check
  | 12 -> P12_acyclic_mandatory.check
  | n -> invalid_arg (Printf.sprintf "Engine.run_pattern: no pattern %d" n)

module Metrics = Orm_telemetry.Metrics
module Trace = Orm_trace.Trace

(* Span names are preallocated so the instrumented path does not build a
   string per pattern run. *)
let pattern_span =
  Array.init (Metrics.max_pattern + 1) (fun i -> "pattern." ^ string_of_int i)

let span_of_pattern n =
  if n >= 0 && n <= Metrics.max_pattern then pattern_span.(n) else "pattern.?"

let run_pattern n ?(settings = Settings.default) ?metrics ?tracer schema =
  match (metrics, tracer) with
  | None, None -> pattern_check n settings schema
  | _ ->
      Option.iter (fun tr -> Trace.begin_span tr (span_of_pattern n)) tracer;
      let diagnostics, time_ns = Metrics.time (fun () -> pattern_check n settings schema) in
      Option.iter
        (fun m ->
          Metrics.record_pattern m ~pattern:n ~time_ns ~fired:(List.length diagnostics))
        metrics;
      Option.iter (fun tr -> Trace.end_span tr (span_of_pattern n)) tracer;
      diagnostics

(* Downward propagation (a refinement over the paper): an unsatisfiable
   object type empties its strict subtypes and the roles it plays; an
   unsatisfiable role empties its fact type, hence its co-role; a mandatory
   unsatisfiable role empties its player. *)
let propagate schema (types, roles) =
  let g = Schema.graph schema in
  let derived = ref [] in
  let types = ref types and roles = ref roles in
  let add_type src t =
    if not (Ids.String_set.mem t !types) then begin
      types := Ids.String_set.add t !types;
      derived :=
        Diagnostic.msg (Propagation src)
          [ Object_type t ]
          []
          "The object type %s cannot be populated as a consequence of %s."
          t
          (Format.asprintf "%a" Diagnostic.pp_element src)
        :: !derived
    end
  in
  let add_role src r =
    if not (Ids.Role_set.mem r !roles) then begin
      roles := Ids.Role_set.add r !roles;
      derived :=
        Diagnostic.msg (Propagation src)
          [ Role r ]
          []
          "The role %s cannot be populated as a consequence of %s."
          (Ids.role_to_string r)
          (Format.asprintf "%a" Diagnostic.pp_element src)
        :: !derived
    end
  in
  let changed = ref true in
  while !changed do
    changed := false;
    let before = (Ids.String_set.cardinal !types, Ids.Role_set.cardinal !roles) in
    Ids.String_set.iter
      (fun t ->
        let src = Diagnostic.Object_type t in
        Ids.String_set.iter (add_type src) (Subtype_graph.subtypes g t);
        List.iter (add_role src) (Schema.roles_played_by schema t))
      !types;
    Ids.Role_set.iter
      (fun r ->
        let src = Diagnostic.Role r in
        add_role src (Ids.co_role r);
        if Schema.is_mandatory schema r then
          Option.iter (add_type src) (Schema.player schema r))
      !roles;
    let after = (Ids.String_set.cardinal !types, Ids.Role_set.cardinal !roles) in
    if before <> after then changed := true
  done;
  (!types, !roles, List.rev !derived)

let aggregate diagnostics =
  (Diagnostic.affected_types diagnostics, Diagnostic.affected_roles diagnostics)

let assemble ?(settings = Settings.default) ?metrics ?tracer schema diagnostics =
  let types, roles = aggregate diagnostics in
  let joint = Diagnostic.joint_groups diagnostics in
  if not settings.propagate then
    { diagnostics; unsat_types = types; unsat_roles = roles; joint }
  else begin
    match (metrics, tracer) with
    | None, None ->
        let types, roles, derived = propagate schema (types, roles) in
        { diagnostics = diagnostics @ derived; unsat_types = types; unsat_roles = roles; joint }
    | _ ->
        Option.iter (fun tr -> Trace.begin_span tr "engine.propagate") tracer;
        let (types, roles, derived), time_ns =
          Metrics.time (fun () -> propagate schema (types, roles))
        in
        Option.iter
          (fun m -> Metrics.record_propagation m ~time_ns ~derived:(List.length derived))
          metrics;
        Option.iter (fun tr -> Trace.end_span tr "engine.propagate") tracer;
        { diagnostics = diagnostics @ derived; unsat_types = types; unsat_roles = roles; joint }
  end

let enabled_patterns settings =
  List.sort_uniq Int.compare settings.Settings.enabled

(* The deadline is polled between pattern runs: a request whose deadline
   has passed stops burning CPU after the pattern currently running, not
   after the whole loop.  The report is then partial (possibly empty) —
   callers that forward deadlines (the checking service) detect the
   expiry themselves and answer [timeout] instead of trusting it. *)
let deadline_expired = function
  | None -> false
  | Some d -> Metrics.now_ns () > d

let run_enabled ~settings ?tracer ~deadline_ns f =
  let rec go acc = function
    | [] -> List.concat (List.rev acc)
    | n :: rest ->
        if deadline_expired deadline_ns then begin
          Option.iter (fun tr -> Trace.instant tr "engine.deadline") tracer;
          List.concat (List.rev acc)
        end
        else go (f n :: acc) rest
  in
  go [] (enabled_patterns settings)

let check ?(settings = Settings.default) ?metrics ?tracer ?deadline_ns schema =
  match (metrics, tracer) with
  | None, None ->
      let diagnostics =
        run_enabled ~settings ~deadline_ns (fun n ->
            pattern_check n settings schema)
      in
      assemble ~settings schema diagnostics
  | _ ->
      Option.iter (fun tr -> Trace.begin_span tr "engine.check") tracer;
      let report, time_ns =
        Metrics.time (fun () ->
            let diagnostics =
              run_enabled ~settings ?tracer ~deadline_ns (fun n ->
                  run_pattern n ~settings ?metrics ?tracer schema)
            in
            assemble ~settings ?metrics ?tracer schema diagnostics)
      in
      Option.iter (fun m -> Metrics.record_check m ~time_ns) metrics;
      Option.iter (fun tr -> Trace.end_span tr "engine.check") tracer;
      report

let is_strongly_satisfiable_candidate ?settings schema =
  (check ?settings schema).diagnostics = []

let pp_report ppf r =
  if r.diagnostics = [] then Format.fprintf ppf "no unsatisfiability pattern fires"
  else begin
    Format.fprintf ppf "@[<v>%d diagnostic(s):@," (List.length r.diagnostics);
    List.iter (fun d -> Format.fprintf ppf "%a@," Diagnostic.pp d) r.diagnostics;
    Format.fprintf ppf "unsatisfiable object types: %s@,"
      (String.concat ", " (Ids.String_set.elements r.unsat_types));
    Format.fprintf ppf "unsatisfiable roles: %s@,"
      (String.concat ", "
         (List.map Ids.role_to_string (Ids.Role_set.elements r.unsat_roles)));
    List.iter
      (fun group ->
        Format.fprintf ppf "jointly unpopulatable: %s@,"
          (String.concat ", "
             (List.map Ids.role_to_string (Ids.Role_set.elements group))))
      r.joint;
    Format.fprintf ppf "@]"
  end
