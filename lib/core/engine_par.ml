module Metrics = Orm_telemetry.Metrics
module Trace = Orm_trace.Trace
module Log = Orm_trace.Log

let default_domains () = Domain.recommended_domain_count ()

module Pool = struct
  type t = {
    queue : (unit -> unit) Queue.t;
    mutex : Mutex.t;
    wakeup : Condition.t;
    mutable closed : bool;
    mutable workers : unit Domain.t list;
  }

  let worker t =
    let rec next () =
      (* called with t.mutex held *)
      match Queue.take_opt t.queue with
      | Some task -> Some task
      | None ->
          if t.closed then None
          else begin
            Condition.wait t.wakeup t.mutex;
            next ()
          end
    in
    let rec loop () =
      Mutex.lock t.mutex;
      let task = next () in
      Mutex.unlock t.mutex;
      match task with
      | None -> ()
      | Some task ->
          task ();
          loop ()
    in
    loop ()

  let create n =
    if n < 1 then invalid_arg "Engine_par.Pool.create: need at least 1 domain";
    let t =
      {
        queue = Queue.create ();
        mutex = Mutex.create ();
        wakeup = Condition.create ();
        closed = false;
        workers = [];
      }
    in
    t.workers <- List.init n (fun _ -> Domain.spawn (fun () -> worker t));
    t

  let submit t task =
    Mutex.lock t.mutex;
    if t.closed then begin
      Mutex.unlock t.mutex;
      invalid_arg "Engine_par.Pool.submit: pool is shut down"
    end;
    Queue.push task t.queue;
    Condition.signal t.wakeup;
    Mutex.unlock t.mutex

  let shutdown t =
    Mutex.lock t.mutex;
    t.closed <- true;
    Condition.broadcast t.wakeup;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.workers;
    t.workers <- []
end

(* Runs [f] over every element, either inline or on a pool, and returns the
   results in input order.  Work is enqueued in contiguous chunks (a few
   per domain) rather than one item at a time, so queue and wakeup traffic
   stays negligible even when the individual checks are microsecond-sized.
   The first exception (in input order) is re-raised after all tasks
   finished, so a failing schema cannot leave detached domains behind. *)
let ordered_map ~domains ?tracer f inputs =
  let n = Array.length inputs in
  let out = Array.make n None in
  let run i =
    out.(i) <-
      Some
        (match f inputs.(i) with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ()))
  in
  let domains = min domains n in
  if domains <= 1 then
    for i = 0 to n - 1 do
      run i
    done
  else begin
    Log.debug "pool: spawning %d domain(s) for %d item(s)" domains n;
    let pool = Pool.create domains in
    (* 4 chunks per domain balances load without fine-grained contention *)
    let chunk = max 1 ((n + (domains * 4) - 1) / (domains * 4)) in
    let i = ref 0 in
    while !i < n do
      let lo = !i and hi = min n (!i + chunk) - 1 in
      (* The submit instant lands on the caller's track and the chunk span
         on whichever worker picked it up, so a trace viewer shows the
         pool's scheduling: queueing delay, imbalance, idle domains. *)
      Option.iter (fun tr -> Trace.instant tr "pool.submit") tracer;
      Pool.submit pool (fun () ->
          Option.iter (fun tr -> Trace.begin_span tr "pool.chunk") tracer;
          for j = lo to hi do
            run j
          done;
          Option.iter (fun tr -> Trace.end_span tr "pool.chunk") tracer);
      i := hi + 1
    done;
    Pool.shutdown pool
  end;
  Array.map
    (function
      | Some (Ok v) -> v
      | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
      | None -> assert false)
    out

let check_batch ?domains ?settings ?metrics ?tracer ?deadline_ns schemas =
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  let inputs = Array.of_list schemas in
  Option.iter (fun tr -> Trace.begin_span tr "engine.batch") tracer;
  let reports, time_ns =
    Metrics.time (fun () ->
        ordered_map ~domains ?tracer
          (Engine.check ?settings ?metrics ?tracer ?deadline_ns)
          inputs)
  in
  Option.iter
    (fun m ->
      Metrics.record_batch m ~schemas:(Array.length inputs) ~domains ~time_ns)
    metrics;
  Option.iter (fun tr -> Trace.end_span tr "engine.batch") tracer;
  Array.to_list reports

let check ?domains ?settings ?metrics ?tracer ?deadline_ns schema =
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  let settings = Option.value ~default:Settings.default settings in
  let patterns = Array.of_list (Engine.enabled_patterns settings) in
  let expired () =
    match deadline_ns with
    | None -> false
    | Some d -> Metrics.now_ns () > d
  in
  let run () =
    let per_pattern =
      ordered_map ~domains ?tracer
        (fun n ->
          (* polled per pattern, exactly like the sequential loop: an
             expired deadline turns the remaining fan-out items into
             no-ops instead of letting them finish on other domains *)
          if expired () then []
          else Engine.run_pattern n ~settings ?metrics ?tracer schema)
        patterns
    in
    let diagnostics = List.concat (Array.to_list per_pattern) in
    Engine.assemble ~settings ?metrics ?tracer schema diagnostics
  in
  match (metrics, tracer) with
  | None, None -> run ()
  | _ ->
      Option.iter (fun tr -> Trace.begin_span tr "engine.check.fan") tracer;
      let report, time_ns = Metrics.time run in
      Option.iter (fun m -> Metrics.record_check m ~time_ns) metrics;
      Option.iter (fun tr -> Trace.end_span tr "engine.check.fan") tracer;
      report
