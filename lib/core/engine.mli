(** The pattern engine: runs the enabled unsatisfiability patterns over a
    schema and (optionally) closes the verdicts under downward propagation.

    This is the library counterpart of DogmaModeler's validator (paper
    Section 4): fast, incomplete by design — there exist schemas that pass
    every pattern yet are not strongly satisfiable — but catching the common
    modeling mistakes in time linear-to-quadratic in the schema size. *)

open Orm

type report = {
  diagnostics : Diagnostic.t list;
  unsat_types : Ids.String_set.t;
      (** object types that can never be populated *)
  unsat_roles : Ids.Role_set.t;  (** roles that can never be played *)
  joint : Ids.Role_set.t list;
      (** role groups that can never be populated together in one model
          (each breaks strong satisfiability without making any single
          member unsatisfiable) *)
}

val check :
  ?settings:Settings.t ->
  ?metrics:Orm_telemetry.Metrics.t ->
  ?tracer:Orm_trace.Trace.t ->
  ?deadline_ns:int64 ->
  Schema.t ->
  report
(** Runs the enabled patterns (then propagation if
    {!Settings.t.propagate}) and aggregates the verdicts.

    When [metrics] is given, per-pattern wall time and fire counts, the
    propagation phase and the whole check are recorded into it; [tracer]
    additionally records an [engine.check] span enclosing one
    [pattern.N] span per pattern and an [engine.propagate] span.  The
    report itself is unaffected either way.  With both absent the engine
    performs no timing and allocates nothing for observability.

    [deadline_ns] is an absolute {!Orm_telemetry.Metrics.now_ns} instant,
    polled between pattern runs: once it has passed, the remaining
    patterns are skipped and the report is {e partial} (the checking
    service detects the expiry and answers [timeout] rather than serving
    it).  Without a deadline the report is always complete. *)

val assemble :
  ?settings:Settings.t ->
  ?metrics:Orm_telemetry.Metrics.t ->
  ?tracer:Orm_trace.Trace.t ->
  Schema.t ->
  Diagnostic.t list ->
  report
(** Aggregates pattern diagnostics into a report, applying the propagation
    phase when enabled.  [check] is [assemble] over the output of the
    enabled patterns; incremental callers (the interactive session) use it
    to combine cached per-pattern diagnostics. *)

val run_pattern :
  int ->
  ?settings:Settings.t ->
  ?metrics:Orm_telemetry.Metrics.t ->
  ?tracer:Orm_trace.Trace.t ->
  Schema.t ->
  Diagnostic.t list
(** Runs a single pattern regardless of the enabled set: 1–9 are the
    paper's patterns, 10–12 the {!Settings.extension_patterns}.
    @raise Invalid_argument for other numbers. *)

val enabled_patterns : Settings.t -> int list
(** The enabled pattern numbers, deduplicated and ascending — the order
    [check] runs them in. *)

val is_strongly_satisfiable_candidate : ?settings:Settings.t -> Schema.t -> bool
(** [true] when no pattern fires — a {e candidate} because the patterns are
    incomplete; a [false] verdict is definitive (some role or concept is
    provably unsatisfiable). *)

val pp_report : Format.formatter -> report -> unit
