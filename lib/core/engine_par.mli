(** Parallel batch checking on OCaml 5 domains.

    The pattern engine is the {e fast} half of the paper's fast-vs-complete
    pair, meant to run on every edit; serving many schemas (or one huge
    schema) under load additionally wants the hardware's cores.  This module
    runs {!Engine.check} over a batch of schemas on a small fixed-size
    domain pool fed by a work queue, and can alternatively fan the enabled
    patterns of a {e single} schema across the pool.

    Reports are bit-for-bit identical to the sequential engine's: each
    schema is still checked by the unmodified [Engine.check] (batch mode),
    or its per-pattern diagnostics are reassembled in pattern order before
    {!Engine.assemble} (fan mode), so diagnostic order, propagation and
    joint verdicts never depend on domain scheduling.  The differential
    test suite ([test/test_parallel_diff.ml]) enforces this across settings
    and domain counts.

    Schemas are immutable and the pattern checks are pure, so sharing one
    schema between domains is safe. *)

open Orm

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] — the pool size used when
    [?domains] is omitted. *)

val check_batch :
  ?domains:int ->
  ?settings:Settings.t ->
  ?metrics:Orm_telemetry.Metrics.t ->
  ?tracer:Orm_trace.Trace.t ->
  ?deadline_ns:int64 ->
  Schema.t list ->
  Engine.report list
(** [check_batch schemas] checks every schema and returns the reports in
    input order.  [domains] bounds the pool size (clamped to at least 1 and
    at most the batch size); [domains <= 1] degrades to a plain sequential
    loop with no domain spawned.  [metrics] is shared by all workers — its
    counters are atomic, so per-pattern totals aggregate correctly — and
    additionally receives one {!Orm_telemetry.Metrics.record_batch} entry
    with the batch wall time.

    An exception raised by any check is re-raised in the caller after the
    pool has drained.

    When [tracer] is given, each worker domain records its spans into its
    own track ([pool.chunk] around every work chunk, the per-schema
    [engine.check] spans inside), while the caller's track carries the
    enclosing [engine.batch] span and one [pool.submit] instant per chunk
    — opening the trace in Perfetto shows the pool's actual schedule.

    [deadline_ns] is forwarded into every {!Engine.check}: once it has
    passed, not-yet-run patterns (and hence entire remaining schemas)
    are skipped and the corresponding reports are partial. *)

val check :
  ?domains:int ->
  ?settings:Settings.t ->
  ?metrics:Orm_telemetry.Metrics.t ->
  ?tracer:Orm_trace.Trace.t ->
  ?deadline_ns:int64 ->
  Schema.t ->
  Engine.report
(** Fans the enabled patterns of one schema across the pool, then assembles
    exactly as the sequential engine would.  Worth it only when individual
    patterns are expensive (large schemas); for small schemas the pool
    overhead dominates.  [deadline_ns] is polled per fanned pattern, as in
    {!Engine.check}. *)

(** The underlying fixed-size domain pool, exposed for reuse by later
    scaling work (sharded stores, concurrent sessions).  Work items are
    thunks; the pool is not reusable after {!Pool.shutdown}. *)
module Pool : sig
  type t

  val create : int -> t
  (** [create n] spawns [n] worker domains ([n >= 1]). *)

  val submit : t -> (unit -> unit) -> unit
  (** Enqueues a task.  Tasks must not raise (wrap them).
      @raise Invalid_argument after {!shutdown}. *)

  val shutdown : t -> unit
  (** Drains the queue, waits for running tasks and joins the workers. *)
end
