open Orm
open Orm_semantics
module Sset = Ids.String_set

type query =
  | Schema_satisfiable
  | Type_satisfiable of Ids.object_type
  | Role_satisfiable of Ids.role
  | All_populated of Ids.role list
  | Strongly_satisfiable

type outcome =
  | Model of Population.t
  | No_model
  | Budget_exceeded

let pp_outcome ppf = function
  | Model pop -> Format.fprintf ppf "@[<v2>model:@,%a@]" Population.pp pop
  | No_model -> Format.pp_print_string ppf "no model within the bound"
  | Budget_exceeded -> Format.pp_print_string ppf "search budget exceeded"

exception Found of Population.t
exception Out_of_budget

let nodes_explored = ref 0
let stats_last_nodes () = !nodes_explored

(* ------------------------------------------------------------------ *)
(* Candidate pools                                                     *)
(* ------------------------------------------------------------------ *)

(* Undirected connected component of a type in the subtype graph: the
   family within which populations may legally overlap. *)
let family g seed =
  let neighbours t =
    Sset.union
      (Sset.of_list (Subtype_graph.direct_supertypes g t))
      (Sset.of_list (Subtype_graph.direct_subtypes g t))
  in
  let rec loop frontier seen =
    if Sset.is_empty frontier then seen
    else
      let next =
        Sset.fold (fun t acc -> Sset.union acc (neighbours t)) frontier Sset.empty
      in
      let fresh = Sset.diff next seen in
      loop fresh (Sset.union seen fresh)
  in
  loop (Sset.singleton seed) (Sset.singleton seed)

(* A sensible default for the number of fresh atoms: enough for the largest
   frequency minimum and the widest single-role exclusion, capped to keep
   the search bounded. *)
let default_fresh schema =
  let from_freq =
    List.fold_left
      (fun acc (c : Constraints.t) ->
        match c.body with Frequency (_, { min; _ }) -> max acc min | _ -> acc)
      2 (Schema.constraints schema)
  in
  let from_exclusion =
    List.fold_left
      (fun acc (_, seqs) -> max acc (List.length seqs))
      from_freq
      (Schema.role_exclusions schema)
  in
  min 4 from_exclusion

let pool_of_family schema fam ~max_fresh =
  let value_pool =
    Sset.fold
      (fun t acc ->
        match Schema.effective_value_set schema t with
        | None -> acc
        | Some vs -> Value.Set.union acc (Value.Set.of_list (Value.Constraint.elements vs)))
      fam Value.Set.empty
  in
  let repr = match Sset.min_elt_opt fam with Some t -> t | None -> "?" in
  let fresh =
    List.init max_fresh (fun i -> Value.Str (Printf.sprintf "@%s#%d" repr (i + 1)))
  in
  Value.Set.elements value_pool @ fresh

(* ------------------------------------------------------------------ *)
(* Readiness: which constraints can be fully evaluated at each stage    *)
(* ------------------------------------------------------------------ *)

(* A constraint is ready once every fact type it mentions is assigned and
   every object type it names directly is assigned. *)
let ready_after c ~type_rank ~fact_rank ~n_types =
  let body = (c : Constraints.t).body in
  let type_stage =
    List.fold_left
      (fun acc ot -> max acc (type_rank ot))
      0 (Constraints.object_types_of body)
  in
  let fact_stage =
    List.fold_left
      (fun acc (r : Ids.role) -> max acc (n_types + fact_rank r.fact))
      0 (Constraints.roles_of body)
  in
  max type_stage fact_stage

(* ------------------------------------------------------------------ *)
(* Subset enumeration                                                   *)
(* ------------------------------------------------------------------ *)

(* Lazily enumerate the subsets of [elems], invoking [k] on each candidate.
   Materializing all 2^n subsets would exhaust memory long before the node
   budget fires; the recursion keeps memory linear in [n] and lets the
   budget exception abort the whole search.  [large_first] controls whether
   each element is first included or first excluded, which approximates
   largest-first (useful when hunting strong witnesses) vs smallest-first
   (weak satisfiability) order. *)
let iter_subsets ~large_first elems k =
  let rec go elems acc =
    match elems with
    | [] -> k (List.rev acc)
    | x :: rest ->
        if large_first then begin
          go rest (x :: acc);
          go rest acc
        end
        else begin
          go rest acc;
          go rest (x :: acc)
        end
  in
  go elems []

(* ------------------------------------------------------------------ *)
(* Search                                                               *)
(* ------------------------------------------------------------------ *)

(* Deadline/cancel polling is amortized like the tableau's: one check every
   [poll_mask + 1] search nodes. *)
let poll_mask = 127

let solve ?(config = Eval.default_config) ?max_fresh ?(budget = 200_000)
    ?deadline_ns ?cancel schema query =
  nodes_explored := 0;
  let stop =
    let past_deadline =
      match deadline_ns with
      | None -> fun () -> false
      | Some d -> fun () -> Orm_telemetry.Metrics.now_ns () > d
    in
    match cancel with
    | None -> past_deadline
    | Some cancelled -> fun () -> cancelled () || past_deadline ()
  in
  let max_fresh =
    match max_fresh with Some n -> n | None -> default_fresh schema
  in
  let g = Schema.graph schema in
  let types =
    List.sort (Subtype_graph.compare_height g) (Schema.object_types schema)
  in
  let facts = Schema.fact_types schema in
  let n_types = List.length types in
  let type_rank =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun i t -> Hashtbl.add tbl t (i + 1)) types;
    fun t -> Option.value ~default:0 (Hashtbl.find_opt tbl t)
  in
  let fact_rank =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun i (ft : Fact_type.t) -> Hashtbl.add tbl ft.name (i + 1)) facts;
    fun f -> Option.value ~default:0 (Hashtbl.find_opt tbl f)
  in
  (* ready.(stage) = constraints first evaluable after that stage, where
     stage 1..n_types are type assignments and n_types+1.. are facts. *)
  let n_stages = n_types + List.length facts in
  let ready = Array.make (n_stages + 1) [] in
  List.iter
    (fun c ->
      let stage = ready_after c ~type_rank ~fact_rank ~n_types in
      ready.(stage) <- c :: ready.(stage))
    (Schema.constraints schema);
  (* Base schema: types and subtype edges only; facts and constraints are
     added as the corresponding stage is reached. *)
  let base =
    let s =
      List.fold_left (fun s t -> Schema.add_object_type t s) (Schema.empty "search") types
    in
    List.fold_left
      (fun s (sub, super) -> Schema.add_subtype ~sub ~super s)
      s
      (Subtype_graph.edges g)
  in
  let pools = Hashtbl.create 8 in
  let pool_of t =
    let fam = family g t in
    let repr = Option.value ~default:t (Sset.min_elt_opt fam) in
    match Hashtbl.find_opt pools repr with
    | Some pool -> pool
    | None ->
        let pool = pool_of_family schema fam ~max_fresh in
        Hashtbl.add pools repr pool;
        pool
  in
  let large_first =
    match query with
    | Strongly_satisfiable | All_populated _ -> true
    | Schema_satisfiable | Type_satisfiable _ | Role_satisfiable _ -> false
  in
  let tick () =
    incr nodes_explored;
    if !nodes_explored > budget then raise Out_of_budget;
    if !nodes_explored land poll_mask = 0 && stop () then raise Out_of_budget
  in
  let goal pop =
    match query with
    | Schema_satisfiable -> true
    | Type_satisfiable t -> Eval.populates_type pop t
    | Role_satisfiable r -> Eval.populates_role pop r
    | All_populated rs -> List.for_all (Eval.populates_role pop) rs
    | Strongly_satisfiable ->
        List.for_all (Eval.populates_type pop) types
        && List.for_all (Eval.populates_role pop) (Schema.all_roles schema)
  in
  let stage_schema current stage new_fact =
    let s = match new_fact with None -> current | Some ft -> Schema.add_fact ft current in
    List.fold_left (fun s c -> Schema.add_constraint c s) s ready.(stage)
  in
  let consistent s pop = Eval.violations ~config s pop = [] in
  (* Assign object types, then facts, depth-first with pruning. *)
  let rec assign_types remaining stage current pop =
    match remaining with
    | [] -> assign_facts facts stage current pop
    | t :: rest ->
        let allowed =
          let from_supers =
            List.fold_left
              (fun acc super ->
                match acc with
                | None -> Some (Population.extension pop super)
                | Some set -> Some (Value.Set.inter set (Population.extension pop super)))
              None
              (Subtype_graph.direct_supertypes g t)
          in
          match from_supers with
          | Some set -> Value.Set.elements set
          | None -> pool_of t
        in
        iter_subsets ~large_first allowed (fun ext ->
            tick ();
            let pop' = Population.add_objects t ext pop in
            let s' = stage_schema current (stage + 1) None in
            if consistent s' pop' then assign_types rest (stage + 1) s' pop')
  and assign_facts remaining stage current pop =
    match remaining with
    | [] -> if goal pop then raise (Found pop)
    | (ft : Fact_type.t) :: rest ->
        let ext1 = Value.Set.elements (Population.extension pop ft.player1) in
        let ext2 = Value.Set.elements (Population.extension pop ft.player2) in
        let cells = List.concat_map (fun a -> List.map (fun b -> (a, b)) ext2) ext1 in
        iter_subsets ~large_first cells (fun tuples ->
            tick ();
            let pop' = Population.add_tuples ft.name tuples pop in
            let s' = stage_schema current (stage + 1) (Some ft) in
            if consistent s' pop' then assign_facts rest (stage + 1) s' pop')
  in
  try
    assign_types types 0 (stage_schema base 0 None) Population.empty;
    No_model
  with
  | Found pop -> Model pop
  | Out_of_budget -> Budget_exceeded

let unsat_elements ?config ?max_fresh ?budget schema =
  let check_type t =
    match solve ?config ?max_fresh ?budget schema (Type_satisfiable t) with
    | No_model -> Some (`Type t)
    | Model _ | Budget_exceeded -> None
  in
  let check_role r =
    match solve ?config ?max_fresh ?budget schema (Role_satisfiable r) with
    | No_model -> Some (`Role r)
    | Model _ | Budget_exceeded -> None
  in
  List.filter_map check_type (Schema.object_types schema)
  @ List.filter_map check_role (Schema.all_roles schema)
