(** A complete bounded-domain model finder for ORM schemas.

    This is the repository's substitute for the paper's complete reasoning
    route (ORM → DLR → RACER, Section 4): a backtracking search for a
    population satisfying all constraints within a bounded universe.  It is
    complete for the given bound — if a population of the requested element
    exists using at most [max_fresh] unconstrained values per type family,
    the search finds one — and deliberately exhibits the exponential cost
    the paper attributes to complete procedures, against which the pattern
    engine is benchmarked.

    Candidate values come from the value constraints of each subtype family
    plus [max_fresh] fresh atoms; extensions and fact populations are
    enumerated with early pruning of the constraints whose mentioned
    elements are already assigned. *)

open Orm
open Orm_semantics

(** What to search for. *)
type query =
  | Schema_satisfiable  (** any model — the paper's weak satisfiability *)
  | Type_satisfiable of Ids.object_type
      (** a model populating the object type *)
  | Role_satisfiable of Ids.role  (** a model populating the role *)
  | All_populated of Ids.role list
      (** a model populating every role in the list simultaneously — refutes
          a "jointly unsatisfiable" verdict if found *)
  | Strongly_satisfiable
      (** a model populating every object type and every role *)

type outcome =
  | Model of Population.t  (** a witness population *)
  | No_model  (** exhaustively refuted within the bound *)
  | Budget_exceeded  (** the node budget ran out before an answer *)

val pp_outcome : Format.formatter -> outcome -> unit

val solve :
  ?config:Eval.config ->
  ?max_fresh:int ->
  ?budget:int ->
  ?deadline_ns:int64 ->
  ?cancel:(unit -> bool) ->
  Schema.t ->
  query ->
  outcome
(** [solve schema query] searches for a witness.  [max_fresh] (default 2)
    bounds the fresh atoms added per type family beyond the values admitted
    by value constraints; [budget] (default 200_000) bounds the number of
    search nodes.  [deadline_ns] (absolute,
    {!Orm_telemetry.Metrics.now_ns} scale) and [cancel] stop the search
    with [Budget_exceeded], polled every couple hundred nodes like the
    other backends' deadline hooks. *)

val stats_last_nodes : unit -> int
(** Number of search nodes explored by the most recent {!solve} call (for
    the benchmark harness). *)

val unsat_elements :
  ?config:Eval.config ->
  ?max_fresh:int ->
  ?budget:int ->
  Schema.t ->
  [ `Type of Ids.object_type | `Role of Ids.role ] list
(** Every object type and role for which {!solve} exhaustively refutes a
    witness within the bound — the complete reasoner's counterpart of the
    engine's [unsat_types]/[unsat_roles] (elements whose search exceeded
    the budget are omitted). *)
