(* Orm_json — the repository's single JSON core.

   Every other JSON producer/consumer (the NDJSON protocol envelope, the
   schema exporter, metrics snapshots, Chrome traces, the HTTP body
   validator, the server config file) is a thin layer over this module.
   It is deliberately dependency-free so anything can link it.

   The parser is strict RFC 8259: leading zeros, unescaped control
   characters, lone UTF-16 surrogates, non-finite numbers and trailing
   input are all rejected, with byte-offset error positions.  Depth and
   input-size limits are configurable so untrusted network bodies cannot
   blow the stack or the heap.

   The printer standardizes float formatting on shortest-round-trip
   output (the legacy stacks disagreed between %g and hand-rolled
   formats); integers print as integers, and [Float] values always carry
   a '.' or exponent so they re-parse as [Float]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

type error = { offset : int; message : string }

let error_to_string e = Printf.sprintf "at %d: %s" e.offset e.message

(* ---- printing ---------------------------------------------------------- *)

(* Shortest decimal representation that round-trips through
   [float_of_string].  %.15g suffices for most doubles; the rest need 16
   or (worst case) 17 significant digits.  Integral values get a ".0"
   suffix so they stay floats across a round-trip. *)
let float_repr f =
  if f <> f then invalid_arg "Orm_json: cannot print nan";
  if f = infinity || f = neg_infinity then
    invalid_arg "Orm_json: cannot print infinity";
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s
    else
      let s = Printf.sprintf "%.16g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

(* Byte-compatible with the legacy protocol/export escaping: named escapes
   for the common controls, \u00xx for the rest.  CESU/WTF-8-encoded
   UTF-16 surrogates (0xED 0xA0..0xBF ..) are rejected rather than
   emitted: they are not valid UTF-8 and downstream consumers (browsers,
   jq) refuse them. *)
let escape_string s =
  let n = String.length s in
  let buf = Buffer.create (n + 2) in
  for i = 0 to n - 1 do
    match s.[i] with
    | '"' -> Buffer.add_string buf "\\\""
    | '\\' -> Buffer.add_string buf "\\\\"
    | '\n' -> Buffer.add_string buf "\\n"
    | '\t' -> Buffer.add_string buf "\\t"
    | '\r' -> Buffer.add_string buf "\\r"
    | '\xed' when i + 1 < n && Char.code s.[i + 1] >= 0xa0 ->
        invalid_arg "Orm_json: lone UTF-16 surrogate in string"
    | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
    | c -> Buffer.add_char buf c
  done;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let to_string_pretty ?(indent = 2) v =
  let buf = Buffer.create 256 in
  let pad d = Buffer.add_string buf (String.make (d * indent) ' ') in
  let rec go d = function
    | List [] -> Buffer.add_string buf "[]"
    | Obj [] -> Buffer.add_string buf "{}"
    | List items ->
        Buffer.add_string buf "[\n";
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (d + 1);
            go (d + 1) item)
          items;
        Buffer.add_char buf '\n';
        pad d;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_string buf "{\n";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ",\n";
            pad (d + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape_string k);
            Buffer.add_string buf "\": ";
            go (d + 1) v)
          fields;
        Buffer.add_char buf '\n';
        pad d;
        Buffer.add_char buf '}'
    | scalar -> write buf scalar
  in
  go 0 v;
  Buffer.contents buf

(* ---- parsing ----------------------------------------------------------- *)

exception Fail of error

let fail pos msg = raise (Fail { offset = pos; message = msg })

type state = { src : string; mutable pos : int; max_depth : int }

let peek st =
  if st.pos < String.length st.src then Some st.src.[st.pos] else None

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      st.pos <- st.pos + 1;
      skip_ws st
  | _ -> ()

let expect st c =
  skip_ws st;
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | _ -> fail st.pos (Printf.sprintf "expected %c" c)

let literal st word value =
  if
    st.pos + String.length word <= String.length st.src
    && String.sub st.src st.pos (String.length word) = word
  then (
    st.pos <- st.pos + String.length word;
    value)
  else fail st.pos ("expected " ^ word)

(* UTF-8 encode one code point (already surrogate-free: pairs are
   combined and lone surrogates rejected before we get here). *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

(* Four hex digits, validated by hand: [int_of_string "0x…"] would also
   accept underscores. *)
let hex4 st =
  if st.pos + 4 > String.length st.src then fail st.pos "truncated \\u escape";
  let digit i =
    match st.src.[st.pos + i] with
    | '0' .. '9' as c -> Char.code c - Char.code '0'
    | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
    | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
    | _ -> fail (st.pos + i) "bad \\u escape"
  in
  let v = (digit 0 lsl 12) lor (digit 1 lsl 8) lor (digit 2 lsl 4) lor digit 3 in
  st.pos <- st.pos + 4;
  v

let parse_escape st buf =
  match peek st with
  | Some (('"' | '\\' | '/') as c) ->
      Buffer.add_char buf c;
      st.pos <- st.pos + 1
  | Some 'n' -> Buffer.add_char buf '\n'; st.pos <- st.pos + 1
  | Some 't' -> Buffer.add_char buf '\t'; st.pos <- st.pos + 1
  | Some 'r' -> Buffer.add_char buf '\r'; st.pos <- st.pos + 1
  | Some 'b' -> Buffer.add_char buf '\b'; st.pos <- st.pos + 1
  | Some 'f' -> Buffer.add_char buf '\012'; st.pos <- st.pos + 1
  | Some 'u' ->
      let escape_start = st.pos - 1 in
      st.pos <- st.pos + 1;
      let cp = hex4 st in
      if cp >= 0xD800 && cp <= 0xDBFF then begin
        (* High surrogate: must be followed by \uDC00-\uDFFF; combine. *)
        if
          st.pos + 2 <= String.length st.src
          && st.src.[st.pos] = '\\'
          && st.src.[st.pos + 1] = 'u'
        then begin
          st.pos <- st.pos + 2;
          let lo = hex4 st in
          if lo >= 0xDC00 && lo <= 0xDFFF then
            add_utf8 buf (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
          else fail escape_start "lone high surrogate"
        end
        else fail escape_start "lone high surrogate"
      end
      else if cp >= 0xDC00 && cp <= 0xDFFF then
        fail escape_start "lone low surrogate"
      else add_utf8 buf cp
  | _ -> fail st.pos "unsupported escape"

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st.pos "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
        st.pos <- st.pos + 1;
        parse_escape st buf;
        loop ()
    | Some c when Char.code c < 0x20 ->
        fail st.pos "unescaped control character in string"
    | Some c ->
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  (match peek st with Some '-' -> st.pos <- st.pos + 1 | _ -> ());
  let digits () =
    let d0 = st.pos in
    let rec go () =
      match peek st with
      | Some ('0' .. '9') ->
          st.pos <- st.pos + 1;
          go ()
      | _ -> ()
    in
    go ();
    if st.pos = d0 then fail st.pos "expected digit"
  in
  (match peek st with
  | Some '0' -> (
      st.pos <- st.pos + 1;
      match peek st with
      | Some ('0' .. '9') -> fail st.pos "leading zeros are not allowed"
      | _ -> ())
  | Some ('1' .. '9') ->
      st.pos <- st.pos + 1;
      (let rec go () =
         match peek st with
         | Some ('0' .. '9') ->
             st.pos <- st.pos + 1;
             go ()
         | _ -> ()
       in
       go ())
  | _ -> fail st.pos "expected digit");
  let is_float = ref false in
  (match peek st with
  | Some '.' ->
      is_float := true;
      st.pos <- st.pos + 1;
      digits ()
  | _ -> ());
  (match peek st with
  | Some ('e' | 'E') ->
      is_float := true;
      st.pos <- st.pos + 1;
      (match peek st with
      | Some ('+' | '-') -> st.pos <- st.pos + 1
      | _ -> ());
      digits ()
  | _ -> ());
  let text = String.sub st.src start (st.pos - start) in
  if not !is_float then
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> (
        (* Integer literal beyond native int range: degrade to float. *)
        match float_of_string_opt text with
        | Some f when Float.is_finite f -> Float f
        | _ -> fail start "number out of range")
  else
    match float_of_string_opt text with
    | Some f when Float.is_finite f -> Float f
    | Some _ -> fail start "number out of range"
    | None -> fail start "bad number"

let rec parse_value st depth =
  (* [depth] containers surround the value being parsed (root = 0); a
     document may nest at most [max_depth] container levels, and only
     opening a container deepens — scalars sit inside the innermost one *)
  skip_ws st;
  match peek st with
  | Some '{' ->
      if depth >= st.max_depth then fail st.pos "nesting too deep";
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then (
        st.pos <- st.pos + 1;
        Obj [])
      else
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          expect st ':';
          let v = parse_value st (depth + 1) in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail st.pos "expected , or }"
        in
        members []
  | Some '[' ->
      if depth >= st.max_depth then fail st.pos "nesting too deep";
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then (
        st.pos <- st.pos + 1;
        List [])
      else
        let rec elems acc =
          let v = parse_value st (depth + 1) in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              elems (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List (List.rev (v :: acc))
          | _ -> fail st.pos "expected , or ]"
        in
        elems []
  | Some '"' -> String (parse_string st)
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | _ -> fail st.pos "expected value"

let default_max_depth = 512

let parse ?(max_depth = default_max_depth) ?max_size src =
  match max_size with
  | Some limit when String.length src > limit ->
      Error
        {
          offset = 0;
          message = Printf.sprintf "input exceeds %d bytes" limit;
        }
  | _ -> (
      let st = { src; pos = 0; max_depth } in
      match
        let v = parse_value st 0 in
        skip_ws st;
        if st.pos <> String.length src then fail st.pos "trailing input";
        v
      with
      | v -> Ok v
      | exception Fail e -> Error e)

let of_string ?max_depth ?max_size src =
  match parse ?max_depth ?max_size src with
  | Ok v -> Ok v
  | Error e -> Error (error_to_string e)

(* ---- accessors --------------------------------------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None
let to_int_opt = function Int n -> Some n | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List items -> Some items | _ -> None
let to_obj_opt = function Obj fields -> Some fields | _ -> None

let bool_member k v = Option.bind (member k v) to_bool_opt
let int_member k v = Option.bind (member k v) to_int_opt
let float_member k v = Option.bind (member k v) to_float_opt
let string_member k v = Option.bind (member k v) to_string_opt
let list_member k v = Option.bind (member k v) to_list_opt

(* ---- builders ---------------------------------------------------------- *)

(* Field-list combinators for building objects with optional/conditional
   members: [obj (field "a" x @ field_opt "b" maybe @ field_if cond "c" y)]. *)
let obj fields = Obj fields
let field k v = [ (k, v) ]
let field_opt k = function Some v -> [ (k, v) ] | None -> []
let field_if cond k v = if cond then [ (k, v) ] else []
let strings items = List (List.map (fun s -> String s) items)
let ints items = List (List.map (fun n -> Int n) items)
