(** The repository's single JSON core.

    Every JSON producer/consumer in the tree — the NDJSON protocol
    envelope ({!Orm_server.Protocol}), the schema exporter
    ({!Orm_export.Json}), metrics snapshots, Chrome traces, the HTTP
    body validator, and the server config file — is a thin layer over
    this module.  It has no dependencies so anything can link it. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** {1 Printing} *)

val to_string : t -> string
(** Compact printing: no whitespace, [{"k":v,...}].  Strings are escaped
    per RFC 8259 ([\n]/[\t]/[\r] named, other control characters as
    [\u00xx]).  Raises [Invalid_argument] on non-finite floats and on
    strings containing WTF-8-encoded UTF-16 surrogates — neither has a
    valid JSON representation. *)

val to_string_pretty : ?indent:int -> t -> string
(** Human-readable printing with [indent]-space (default 2) nesting. *)

val float_repr : float -> string
(** Shortest decimal representation that round-trips through
    [float_of_string].  Integral values render with a trailing [.0] so
    they stay [Float] across a round-trip.  Raises [Invalid_argument] on
    nan/infinity. *)

val escape_string : string -> string
(** The string-escaping used by {!to_string}, without the surrounding
    quotes. *)

(** {1 Parsing} *)

type error = { offset : int; message : string }
(** A parse error at a byte offset into the input. *)

val error_to_string : error -> string
(** ["at <offset>: <message>"]. *)

val default_max_depth : int

val parse : ?max_depth:int -> ?max_size:int -> string -> (t, error) result
(** Strict RFC 8259 parsing of a complete value: leading zeros,
    unescaped control characters in strings, lone UTF-16 surrogate
    escapes, non-finite numbers and trailing input are all rejected.
    Surrogate pairs combine into one code point.  Numbers without a
    fraction or exponent parse as [Int] when they fit the native int
    range (degrading to [Float] beyond it); all others parse as [Float].
    [max_depth] bounds container nesting (default
    {!default_max_depth}); [max_size] (default unlimited) rejects
    oversized inputs before scanning them. *)

val of_string : ?max_depth:int -> ?max_size:int -> string -> (t, string) result
(** {!parse} with the error rendered by {!error_to_string}. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field lookup; [None] on missing field or non-object. *)

val to_bool_opt : t -> bool option
val to_int_opt : t -> int option

val to_float_opt : t -> float option
(** Accepts [Int] as well as [Float]. *)

val to_string_opt : t -> string option
val to_list_opt : t -> t list option
val to_obj_opt : t -> (string * t) list option

val bool_member : string -> t -> bool option
val int_member : string -> t -> int option
val float_member : string -> t -> float option
val string_member : string -> t -> string option
val list_member : string -> t -> t list option

(** {1 Builders}

    Field-list combinators for objects with optional or conditional
    members: [obj (field "a" x @ field_opt "b" maybe @ field_if c "d" y)]. *)

val obj : (string * t) list -> t
val field : string -> t -> (string * t) list
val field_opt : string -> t option -> (string * t) list
val field_if : bool -> string -> t -> (string * t) list
val strings : string list -> t
val ints : int list -> t
