(** Content-addressed LRU result cache for the checking service.

    Keys are {!Protocol.cache_key} strings — a digest of the schema text
    plus every request field that can change the answer — so two clients
    submitting the same schema under the same settings share one computed
    result, which is what makes a warm server answer editor traffic in
    microseconds (paper Fig. 15's interactive loop, lifted to a process
    boundary).

    Every lookup is counted: the cache keeps its own hit/miss totals and,
    when a {!Orm_telemetry.Metrics.t} is attached, mirrors them into the
    shared counter bundle ([record_cache_hit] / [record_cache_miss]) so
    [ormcheck serve --stats] and the [stats] protocol method report them
    alongside the engine's per-pattern telemetry.

    Plain O(1) mutable LRU (hash table over an intrusive doubly-linked
    recency list).  Not thread-safe: the server's event loop is the only
    writer. *)

type 'a t

val create : ?metrics:Orm_telemetry.Metrics.t -> capacity:int -> unit -> 'a t
(** [capacity] is the maximum number of entries kept; adding past it evicts
    the least recently used entry.
    @raise Invalid_argument when [capacity < 1]. *)

val find : 'a t -> string -> 'a option
(** Looks a key up and, on a hit, marks it most recently used.  Counts a
    hit or a miss either way. *)

val add : 'a t -> string -> 'a -> unit
(** Inserts (or replaces) the value for a key as most recently used,
    evicting the LRU entry when the cache is full.  Counts neither a hit
    nor a miss. *)

val length : 'a t -> int
val capacity : 'a t -> int

val set_capacity : 'a t -> int -> unit
(** Hot config reload: shrinking below the current size evicts
    least-recently-used entries immediately, growing raises the bound.
    @raise Invalid_argument when the new capacity is [< 1]. *)

val hits : 'a t -> int
val misses : 'a t -> int

val keys_mru_first : 'a t -> string list
(** Recency order, most recent first (tests and debugging). *)
