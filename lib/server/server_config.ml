module Log = Orm_trace.Log
module J = Orm_json

(* A config file names only what it wants to change; every field is
   optional so the same file works for initial load and SIGHUP reload,
   layered over whatever the CLI flags established. *)
type t = {
  deadline_ms : int option;
  budget : int option;
  sat_budget : int option;
  cache_capacity : int option;
  max_pending : int option;
  disk_cache_mb : int option;
  log_level : Log.level option;
  slo_p95_ms : int option;
  slo_goal : float option;  (* fraction of requests that must be good *)
  drain_linger_ms : int option;
      (* how long a draining front end keeps answering (503) before exit *)
}

let empty =
  {
    deadline_ms = None;
    budget = None;
    sat_budget = None;
    cache_capacity = None;
    max_pending = None;
    disk_cache_mb = None;
    log_level = None;
    slo_p95_ms = None;
    slo_goal = None;
    drain_linger_ms = None;
  }

let known_fields =
  [
    "deadline_ms"; "budget"; "sat_budget"; "cache_capacity"; "max_pending";
    "disk_cache_mb"; "log_level"; "slo_p95_ms"; "slo_goal"; "drain_linger_ms";
  ]

let of_json v =
  match v with
  | J.Obj fields -> (
      match
        List.find_opt (fun (k, _) -> not (List.mem k known_fields)) fields
      with
      | Some (k, _) ->
          Error
            (Printf.sprintf "unknown config field %S (expected one of %s)" k
               (String.concat ", " known_fields))
      | None -> (
          let positive name =
            match J.member name v with
            | None | Some J.Null -> Ok None
            | Some (J.Int n) when n > 0 -> Ok (Some n)
            | Some (J.Int n) ->
                Error (Printf.sprintf "%s: must be positive (got %d)" name n)
            | Some _ -> Error (name ^ ": expected a positive integer")
          in
          let non_negative name =
            match J.member name v with
            | None | Some J.Null -> Ok None
            | Some (J.Int n) when n >= 0 -> Ok (Some n)
            | Some (J.Int n) ->
                Error (Printf.sprintf "%s: must be non-negative (got %d)" name n)
            | Some _ -> Error (name ^ ": expected a non-negative integer")
          in
          let fraction name =
            match J.member name v with
            | None | Some J.Null -> Ok None
            | Some (J.Float f) when f > 0.0 && f <= 1.0 -> Ok (Some f)
            | Some (J.Int 1) -> Ok (Some 1.0)
            | Some (J.Float _ | J.Int _) ->
                Error (name ^ ": expected a fraction in (0, 1]")
            | Some _ -> Error (name ^ ": expected a number in (0, 1]")
          in
          let ( let* ) = Result.bind in
          match
            let* deadline_ms = positive "deadline_ms" in
            let* budget = positive "budget" in
            let* sat_budget = positive "sat_budget" in
            let* cache_capacity = positive "cache_capacity" in
            let* max_pending = positive "max_pending" in
            let* disk_cache_mb = positive "disk_cache_mb" in
            let* slo_p95_ms = positive "slo_p95_ms" in
            let* slo_goal = fraction "slo_goal" in
            let* drain_linger_ms = non_negative "drain_linger_ms" in
            let* log_level =
              match J.member "log_level" v with
              | None | Some J.Null -> Ok None
              | Some (J.String s) -> Result.map Option.some (Log.level_of_string s)
              | Some _ -> Error "log_level: expected a string"
            in
            Ok
              {
                deadline_ms;
                budget;
                sat_budget;
                cache_capacity;
                max_pending;
                disk_cache_mb;
                log_level;
                slo_p95_ms;
                slo_goal;
                drain_linger_ms;
              }
          with
          | Ok _ as ok -> ok
          | Error _ as e -> e))
  | _ -> Error "config must be a JSON object"

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | content -> (
      match J.of_string ~max_size:(1 lsl 20) content with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok v -> (
          match of_json v with
          | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
          | Ok _ as ok -> ok))

let describe c =
  let int name = Option.map (fun n -> Printf.sprintf "%s=%d" name n) in
  let parts =
    List.filter_map Fun.id
      [
        int "deadline_ms" c.deadline_ms;
        int "budget" c.budget;
        int "sat_budget" c.sat_budget;
        int "cache_capacity" c.cache_capacity;
        int "max_pending" c.max_pending;
        int "disk_cache_mb" c.disk_cache_mb;
        int "slo_p95_ms" c.slo_p95_ms;
        Option.map (fun g -> Printf.sprintf "slo_goal=%g" g) c.slo_goal;
        int "drain_linger_ms" c.drain_linger_ms;
        Option.map
          (fun l -> "log_level=" ^ Log.level_to_string l)
          c.log_level;
      ]
  in
  if parts = [] then "no overrides" else String.concat " " parts
