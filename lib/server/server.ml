module Engine = Orm_patterns.Engine
module Engine_par = Orm_patterns.Engine_par
module Metrics = Orm_telemetry.Metrics
module Trace = Orm_trace.Trace
module Log = Orm_trace.Log
module P = Protocol
module Slo = Orm_obs.Slo
module Audit = Orm_obs.Audit
module Prometheus = Orm_obs.Prometheus
module Canon = Orm_registry.Canon
module Registry = Orm_registry.Store

type config = {
  cache_capacity : int;
  max_pending : int;
  default_deadline_ms : int option;
  default_jobs : int;
  default_budget : int;
  default_sat_budget : int;
  slo : Slo.config;  (* rolling-window objectives the slo section reports *)
  drain_linger_ms : int;
      (* how long a draining front end keeps answering 503 before exit *)
}

let default_config =
  {
    cache_capacity = 512;
    max_pending = 64;
    default_deadline_ms = None;
    default_jobs = 1;
    default_budget = P.default_budget;
    default_sat_budget = P.default_sat_budget;
    slo = Slo.default;
    drain_linger_ms = 0;
  }

type t = {
  mutable config : config;  (* replaced whole on hot reload *)
  cache : (string * P.json) list Cache.t;
  (* byte digest -> (canonical key, rename maps): the fast pre-check that
     lets a byte-identical warm request skip parsing, while a byte-miss
     pays one canonicalization and then shares the canonical entry with
     every isomorphic clone.  No metrics: its lookups are bookkeeping, not
     result-cache traffic. *)
  alias : (string * Canon.rename list) Cache.t;
  registry : Registry.t option;  (* corpus store behind ingest/query *)
  disk : Disk_cache.t option;  (* persistent tier under the LRU *)
  stats_sink : string option;  (* dir of per-worker metrics snapshots *)
  metrics : Metrics.t option;
  tracer : Trace.t option;
  started_ns : int64;
  mutable served : int;
  mutable timeouts : int;
  mutable overloads : int;
  stop : bool Atomic.t;  (* set from signal handlers; polled by the loop *)
  reload : bool Atomic.t;  (* set by SIGHUP; polled by the loop *)
  audit : Audit.t option;
  audit_pid : int;  (* getpid once: servers are built post-fork *)
  mutable fail_next : bool;  (* test hook: next dispatch raises *)
  (* rolling p95 the tail sampler compares against, refreshed at most once
     a second (reading it costs a snapshot) *)
  mutable audit_p95 : int;
  mutable audit_p95_read_ns : int64;
  (* cached /readyz disk-probe result *)
  mutable ready_probe_ns : int64;
  mutable ready_probe_ok : bool;
  (* per-request audit context.  The event loop is single-threaded, so
     plain mutation is safe: exactly one request is between reset and
     write at any time. *)
  mutable cx_tier : string;
  mutable cx_planner : P.json option;
  mutable cx_phases : (string * int) list;
  mutable cx_deadline_ms : int option;
}

let create ?metrics ?tracer ?disk_cache ?stats_sink ?audit ?registry config =
  Printexc.record_backtrace true;
  (* tail sampling needs spans to dump: a server that audits without an
     explicit tracer records into a private one *)
  let tracer =
    match (tracer, audit) with
    | Some _, _ | None, None -> tracer
    | None, Some _ -> Some (Trace.create ~capacity:8192 ())
  in
  {
    config;
    cache = Cache.create ?metrics ~capacity:config.cache_capacity ();
    alias = Cache.create ~capacity:config.cache_capacity ();
    registry;
    disk = disk_cache;
    stats_sink;
    metrics;
    tracer;
    started_ns = Metrics.now_ns ();
    served = 0;
    timeouts = 0;
    overloads = 0;
    stop = Atomic.make false;
    reload = Atomic.make false;
    audit;
    audit_pid = Unix.getpid ();
    fail_next = false;
    audit_p95 = 0;
    audit_p95_read_ns = 0L;
    ready_probe_ns = 0L;
    ready_probe_ok = true;
    cx_tier = "none";
    cx_planner = None;
    cx_phases = [];
    cx_deadline_ms = None;
  }

let config t = t.config

(* Hot config reload: only the overrides present in [c] change anything.
   The LRU and the disk tier resize in place (shrinking evicts/sweeps
   immediately); deadline, budgets and admission bound apply to the next
   request admitted. *)
let reconfigure t (c : Server_config.t) =
  let cfg = t.config in
  t.config <-
    {
      cfg with
      cache_capacity = Option.value ~default:cfg.cache_capacity c.cache_capacity;
      max_pending = Option.value ~default:cfg.max_pending c.max_pending;
      default_deadline_ms =
        (match c.deadline_ms with Some _ as d -> d | None -> cfg.default_deadline_ms);
      default_budget = Option.value ~default:cfg.default_budget c.budget;
      default_sat_budget =
        Option.value ~default:cfg.default_sat_budget c.sat_budget;
      slo =
        {
          Slo.target_p95_ms =
            Option.value ~default:cfg.slo.Slo.target_p95_ms c.slo_p95_ms;
          goal = Option.value ~default:cfg.slo.Slo.goal c.slo_goal;
        };
      drain_linger_ms =
        Option.value ~default:cfg.drain_linger_ms c.drain_linger_ms;
    };
  Option.iter (Cache.set_capacity t.cache) c.cache_capacity;
  Option.iter (Cache.set_capacity t.alias) c.cache_capacity;
  (match (t.disk, c.disk_cache_mb) with
  | Some d, Some mb -> Disk_cache.set_max_bytes d (mb * 1024 * 1024)
  | _ -> ());
  Option.iter Log.set_level c.log_level

let reload_flag t = t.reload

let reload_config_file t path =
  match Server_config.load path with
  | Ok c ->
      reconfigure t c;
      Log.info "server: config reloaded from %s (%s)" path
        (Server_config.describe c)
  | Error msg ->
      (* a broken file must not take down a running service: keep the
         current settings and say so *)
      Log.err "server: config reload failed, keeping current settings: %s" msg

let maybe_reload t config_file =
  if Atomic.get t.reload then begin
    Atomic.set t.reload false;
    match config_file with
    | Some path -> reload_config_file t path
    | None -> Log.info "server: SIGHUP ignored (no --config file to reload)"
  end
let requests_served t = t.served
let timeouts_total t = t.timeouts
let overloads_total t = t.overloads
let cache_length t = Cache.length t.cache
let cache_hits t = Cache.hits t.cache
let cache_misses t = Cache.misses t.cache
let disk_hits t = match t.disk with Some d -> Disk_cache.hits d | None -> 0
let disk_misses t = match t.disk with Some d -> Disk_cache.misses d | None -> 0
let stop_flag t = t.stop

(* Each worker of a sharded server periodically drops its own metrics
   snapshot into the sink directory (atomically: temp + rename, keyed by
   pid); the [stats] method then aggregates every file it finds there, so
   any one worker can answer for the whole fleet.  Files of dead workers
   persist deliberately — their counters stay part of the cluster total. *)
let flush_stats t =
  match (t.stats_sink, t.metrics) with
  | Some dir, Some m -> (
      let path = Filename.concat dir (string_of_int (Unix.getpid ()) ^ ".json") in
      let tmp = path ^ ".tmp" in
      try
        Out_channel.with_open_bin tmp (fun oc ->
            Out_channel.output_string oc (Metrics.to_json (Metrics.snapshot m)));
        Unix.rename tmp path
      with Sys_error _ | Unix.Unix_error _ -> ())
  | _ -> ()

let instant t name = Option.iter (fun tr -> Trace.instant tr name) t.tracer

let reset_audit_ctx t =
  t.cx_tier <- "none";
  t.cx_planner <- None;
  t.cx_phases <- [];
  t.cx_deadline_ms <- None

let add_phase t name ns = t.cx_phases <- (name, ns) :: t.cx_phases

(* ---- request dispatch ------------------------------------------------- *)

let load_schema text =
  match Orm_dsl.Parser.parse text with
  | Error msg -> Error msg
  | Ok schema -> (
      match Orm.Schema.validate schema with
      | [] -> Ok schema
      | errs ->
          Error
            (Format.asprintf "@[<v>schema is not well-formed:@,%a@]"
               (Format.pp_print_list Orm.Schema.pp_error)
               errs))

let effective_jobs t (req : P.request) =
  if req.jobs > 1 then req.jobs else t.config.default_jobs

let run_engine t (req : P.request) ~deadline_ns schema =
  let jobs = effective_jobs t req in
  if jobs > 1 then
    Engine_par.check ~domains:jobs ~settings:req.settings ?metrics:t.metrics
      ?tracer:t.tracer ?deadline_ns schema
  else
    Engine.check ~settings:req.settings ?metrics:t.metrics ?tracer:t.tracer
      ?deadline_ns schema

let report_fields report =
  [
    ("clean", P.Bool (report.Engine.diagnostics = []));
    ("diagnostics", P.Int (List.length report.Engine.diagnostics));
    ("report", Orm_export.Json.report_value report);
  ]

let check_body t req ~deadline_ns schema =
  report_fields (run_engine t req ~deadline_ns schema)

let batch_body t (req : P.request) ~deadline_ns schemas =
  let reports =
    Engine_par.check_batch ~domains:(effective_jobs t req)
      ~settings:req.settings ?metrics:t.metrics ?tracer:t.tracer ?deadline_ns
      schemas
  in
  [
    ("clean", P.Bool (List.for_all (fun r -> r.Engine.diagnostics = []) reports));
    ("results", P.List (List.map (fun r -> P.Obj (report_fields r)) reports));
  ]

let reason_body t (req : P.request) schema ~deadline_ns =
  let r =
    Orm_planner.Reason.run ~settings:req.settings ?metrics:t.metrics
      ?tracer:t.tracer ?deadline_ns ~budget:req.budget
      ~sat_budget:req.sat_budget ~jobs:(effective_jobs t req)
      ~backend:req.backend schema
  in
  let dlr =
    match r.Orm_planner.Reason.dlr with
    | None -> []
    | Some { result; time_ns; cancelled } ->
        let unsat_types = Orm_dlr.Dlr_check.unsat_types result in
        let unsat_roles = Orm_dlr.Dlr_check.unsat_roles result in
        let unknown =
          List.length
            (List.filter
               (fun (v : Orm_dlr.Dlr_check.element_verdict) ->
                 v.verdict = Orm_dlr.Tableau.Unknown)
               result.verdicts)
        in
        [
          ( "dlr",
            P.Obj
              ([
                 ("complete", P.Bool result.complete);
                 ("unsat_types", Orm_json.strings unsat_types);
                 ( "unsat_roles",
                   Orm_json.strings
                     (List.map Orm.Ids.role_to_string unsat_roles) );
                 ("unknown", P.Int unknown);
                 ("time_ns", P.Int time_ns);
               ]
              @ if cancelled then [ ("cancelled", P.Bool true) ] else []) );
        ]
  in
  let sat =
    match r.Orm_planner.Reason.sat with
    | None -> []
    | Some { outcome; stats; time_ns; cancelled } ->
        [
          ( "sat",
            P.Obj
              ([
                 ( "outcome",
                   P.String
                     (match outcome with
                     | Orm_sat.Encode.Model _ -> "model"
                     | No_model -> "no_model"
                     | Timeout -> "timeout") );
                 ("variables", P.Int stats.variables);
                 ("clauses", P.Int stats.clauses);
                 ("decisions", P.Int stats.decisions);
                 ("time_ns", P.Int time_ns);
               ]
              @ if cancelled then [ ("cancelled", P.Bool true) ] else []) );
        ]
  in
  let sat_lazy =
    match r.Orm_planner.Reason.sat_lazy with
    | None -> []
    | Some { outcome; cegar_stats; time_ns; cancelled } ->
        [
          ( "sat_lazy",
            P.Obj
              ([
                 ( "outcome",
                   P.String
                     (match outcome with
                     | Orm_sat.Encode.Model _ -> "model"
                     | No_model -> "no_model"
                     | Timeout -> "timeout") );
                 ("rounds", P.Int cegar_stats.Orm_sat.Cegar.rounds);
                 ( "instantiated_clauses",
                   P.Int cegar_stats.Orm_sat.Cegar.instantiated_clauses );
                 ("variables", P.Int cegar_stats.Orm_sat.Cegar.variables);
                 ("clauses", P.Int cegar_stats.Orm_sat.Cegar.clauses);
                 ("decisions", P.Int cegar_stats.Orm_sat.Cegar.decisions);
                 ("learned", P.Int cegar_stats.Orm_sat.Cegar.learned);
                 ("restarts", P.Int cegar_stats.Orm_sat.Cegar.restarts);
                 ("time_ns", P.Int time_ns);
               ]
              @ if cancelled then [ ("cancelled", P.Bool true) ] else []) );
        ]
  in
  let planner =
    match r.Orm_planner.Reason.plan with
    | None -> []
    | Some plan ->
        let obj =
          P.Obj
            (Orm_planner.Planner.to_fields plan
              @ (match r.Orm_planner.Reason.winner with
                | Some b -> [ ("winner", P.String (Orm_planner.Cost.name b)) ]
                | None -> [])
              @ (if r.Orm_planner.Reason.short_circuit then
                   [
                     ( "note",
                       P.String
                         "patterns conclusive; complete backends skipped" );
                   ]
                 else [])
              @ [
                  ( "timings",
                    P.Obj
                      ([
                         ("patterns_ns", P.Int r.Orm_planner.Reason.patterns_time_ns);
                         ("plan_ns", P.Int r.Orm_planner.Reason.plan_time_ns);
                       ]
                      @ (match r.Orm_planner.Reason.dlr with
                        | Some d -> [ ("dlr_ns", P.Int d.time_ns) ]
                        | None -> [])
                      @ (match r.Orm_planner.Reason.sat with
                        | Some s -> [ ("sat_ns", P.Int s.time_ns) ]
                        | None -> [])
                      @
                      match r.Orm_planner.Reason.sat_lazy with
                      | Some s -> [ ("sat_lazy_ns", P.Int s.time_ns) ]
                      | None -> []) );
                ])
        in
        t.cx_planner <- Some obj;
        [ ("planner", obj) ]
  in
  let report = r.Orm_planner.Reason.report in
  [
    ("clean", P.Bool r.Orm_planner.Reason.clean);
    ("diagnostics", P.Int (List.length report.Engine.diagnostics));
    ("report", Orm_export.Json.report_value report);
  ]
  @ dlr @ sat @ sat_lazy @ planner

let lint_body schema =
  let findings = Orm_lint.Lint.check schema in
  [
    ("clean", P.Bool (findings = []));
    ( "findings",
      P.List
        (List.map
           (fun (f : Orm_lint.Lint.finding) ->
             P.Obj
               [
                 ("rule", P.String f.rule.rule_id);
                 ( "severity",
                   P.String
                     (match f.rule.severity with
                     | Orm_lint.Lint.Style -> "style"
                     | Redundancy -> "redundancy"
                     | Unsat_risk -> "unsat_risk") );
                 ("subject", P.String f.subject);
                 ("message", P.String f.message);
               ])
           findings) );
  ]

let config_fields t =
  let cfg = t.config in
  [
    ( "config",
      P.Obj
        [
          ( "deadline_ms",
            match cfg.default_deadline_ms with
            | Some ms -> P.Int ms
            | None -> P.Null );
          ("budget", P.Int cfg.default_budget);
          ("sat_budget", P.Int cfg.default_sat_budget);
          ("cache_capacity", P.Int (Cache.capacity t.cache));
          ("max_pending", P.Int cfg.max_pending);
          ( "disk_cache_mb",
            match t.disk with
            | Some d -> P.Int (Disk_cache.max_bytes d / (1024 * 1024))
            | None -> P.Null );
          ("log_level", P.String (Log.level_to_string (Log.level ())));
          ("slo_p95_ms", P.Int cfg.slo.Slo.target_p95_ms);
          ("slo_goal", P.Float cfg.slo.Slo.goal);
          ("drain_linger_ms", P.Int cfg.drain_linger_ms);
        ] );
  ]

(* Every worker's snapshot found in the stats sink (this process's own
   counters flushed there first), for the stats cluster view and for the
   /metrics scrape; [None] when the server is not sharded. *)
let cluster_snapshots t =
  match t.stats_sink with
  | None -> None
  | Some dir -> (
      flush_stats t;
      match Sys.readdir dir with
      | exception Sys_error _ -> None
      | names ->
          Some
            (Array.to_list names
            |> List.filter (fun n -> Filename.check_suffix n ".json")
            |> List.filter_map (fun n ->
                   match
                     In_channel.with_open_bin (Filename.concat dir n)
                       In_channel.input_all
                   with
                   | exception Sys_error _ -> None
                   | content -> (
                       match Metrics.of_json content with
                       | Ok snap -> Some snap
                       | Error _ -> None))))

let stats_body t =
  let counters =
    [
      ( "uptime_ms",
        P.Int
          (Int64.to_int (Int64.sub (Metrics.now_ns ()) t.started_ns) / 1_000_000)
      );
      ("requests", P.Int t.served);
      ("timeouts", P.Int t.timeouts);
      ("overloads", P.Int t.overloads);
      ( "cache",
        P.Obj
          [
            ("size", P.Int (Cache.length t.cache));
            ("capacity", P.Int (Cache.capacity t.cache));
            ("hits", P.Int (Cache.hits t.cache));
            ("misses", P.Int (Cache.misses t.cache));
          ] );
    ]
    @ config_fields t
  in
  let disk =
    match t.disk with
    | None -> []
    | Some d ->
        [
          ( "disk_cache",
            P.Obj
              [
                ("dir", P.String (Disk_cache.dir d));
                ("entries", P.Int (Disk_cache.entries d));
                ("bytes", P.Int (Disk_cache.bytes d));
                ("max_bytes", P.Int (Disk_cache.max_bytes d));
                ("hits", P.Int (Disk_cache.hits d));
                ("misses", P.Int (Disk_cache.misses d));
              ] );
        ]
  in
  let registry =
    match t.registry with
    | None -> []
    | Some store ->
        Registry.refresh store;
        [ ("registry", Registry.stats store) ]
  in
  let cluster =
    match cluster_snapshots t with
    | None -> []
    | Some snaps ->
        [
          ( "cluster",
            P.Obj
              [
                ("workers", P.Int (List.length snaps));
                ( "metrics",
                  Metrics.to_value
                    (List.fold_left Metrics.add Metrics.zero snaps) );
              ] );
        ]
  in
  let metrics =
    match t.metrics with
    | None -> []
    | Some m -> [ ("metrics", Metrics.to_value (Metrics.snapshot m)) ]
  in
  let slo =
    match t.metrics with
    | None -> []
    | Some m ->
        [
          ( "slo",
            Slo.to_value
              (Slo.evaluate t.config.slo ~now_ns:(Metrics.now_ns ())
                 (Metrics.snapshot m)) );
        ]
  in
  [ ("result", P.Obj (counters @ disk @ registry @ cluster @ metrics @ slo)) ]

(* GET /metrics: the whole cluster in one scrape.  With a stats sink every
   worker's snapshot is folded in (the scraped worker flushes its own
   first), so [ormcheck_requests_total] over a prefork server equals the
   sum over its workers; without one the scrape covers this process. *)
let metrics_body t =
  let own =
    match t.metrics with Some m -> Metrics.snapshot m | None -> Metrics.zero
  in
  let snap, workers =
    match cluster_snapshots t with
    | Some (_ :: _ as snaps) ->
        (List.fold_left Metrics.add Metrics.zero snaps, Some (List.length snaps))
    | Some [] | None -> (own, None)
  in
  let now = Metrics.now_ns () in
  let uptime_s = Int64.to_float (Int64.sub now t.started_ns) /. 1e9 in
  let slo = Slo.evaluate t.config.slo ~now_ns:now snap in
  Prometheus.render ?workers ~uptime_s ~slo snap

(* GET /readyz.  Not ready while draining, when the pending queue sits at
   the admission bound, or when the persistent tier's directory stops
   being writable (disk full, permissions): a load balancer should stop
   routing here before requests start failing.  The disk probe is cached
   for five seconds — a scrape a second must not cost a write a second. *)
let readiness t ~draining ~pending =
  if draining then Error "draining"
  else if pending >= t.config.max_pending then Error "pending queue full"
  else
    match t.disk with
    | None -> Ok ()
    | Some d ->
        let now = Metrics.now_ns () in
        if
          t.ready_probe_ns = 0L
          || Int64.sub now t.ready_probe_ns > 5_000_000_000L
        then begin
          t.ready_probe_ns <- now;
          t.ready_probe_ok <-
            (let probe =
               Filename.concat (Disk_cache.dir d)
                 (Printf.sprintf ".readyz.%d" (Unix.getpid ()))
             in
             match
               Unix.openfile probe
                 [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
                 0o600
             with
             | exception Unix.Unix_error _ -> false
             | fd ->
                 let ok =
                   match Unix.write_substring fd "ok" 0 2 with
                   | 2 -> true
                   | _ -> false
                   | exception Unix.Unix_error _ -> false
                 in
                 (try Unix.close fd with Unix.Unix_error _ -> ());
                 (try Unix.unlink probe with Unix.Unix_error _ -> ());
                 ok)
        end;
        if t.ready_probe_ok then Ok ()
        else Error "cache directory not writable"

let inject_failure t = t.fail_next <- true

(* A request that carries a schema is answered from the cache when the
   same schema text has already been checked under the same settings;
   everything else is computed, and computed [ok] results (never timeouts
   or errors) are what gets cached. *)
(* Server-side defaults from the (possibly hot-reloaded) config.  The wire
   elides fields at their protocol defaults, so a parsed request carrying
   exactly the protocol default means the client did not ask — substitute
   the server's default before the cache key is computed, so a reloaded
   budget cannot serve results computed under the old one. *)
let apply_config_defaults t (req : P.request) =
  let budget =
    if req.budget = P.default_budget then t.config.default_budget
    else req.budget
  in
  let sat_budget =
    if req.sat_budget = P.default_sat_budget then t.config.default_sat_budget
    else req.sat_budget
  in
  if budget = req.budget && sat_budget = req.sat_budget then req
  else { req with budget; sat_budget }

let dispatch t (req : P.request) =
  let req = apply_config_defaults t req in
  let deadline_ms =
    match req.deadline_ms with
    | Some ms -> Some ms
    | None -> t.config.default_deadline_ms
  in
  t.cx_deadline_ms <- deadline_ms;
  let t0 = Metrics.now_ns () in
  let deadline_ns =
    Option.map
      (fun ms -> Int64.add t0 (Int64.mul (Int64.of_int ms) 1_000_000L))
      deadline_ms
  in
  let expired () =
    match deadline_ns with
    | None -> false
    | Some d -> Metrics.now_ns () > d
  in
  let elapsed_ms () =
    Int64.to_int (Int64.sub (Metrics.now_ns ()) t0) / 1_000_000
  in
  let timeout () =
    t.timeouts <- t.timeouts + 1;
    Option.iter Metrics.record_timeout t.metrics;
    instant t "server.timeout";
    (P.timeout_response ~id:req.id ~elapsed_ms:(elapsed_ms ()), `Continue)
  in
  (* The caches are consulted on the schema text's digest BEFORE the text
     is parsed: a warm request pays hash-plus-lookup only, which is the
     whole point of content addressing.  Safe because only [ok] results are
     ever cached — a hit proves this exact text parsed, validated and
     computed cleanly before.  Tiering: in-memory LRU first, then the
     persistent store; a disk hit is promoted into the LRU, a computed
     result is written to both. *)
  let disk_find key =
    match t.disk with
    | None -> None
    | Some d -> (
        match Disk_cache.find d key with
        | None -> None
        | Some serialized -> (
            (* the value is the response body re-parsed; anything that does
               not round-trip is a corrupt entry and counts as a miss *)
            match P.json_of_string serialized with
            | Ok (P.Obj body) -> Some body
            | Ok _ | Error _ -> None))
  in
  let disk_add key body =
    Option.iter
      (fun d -> Disk_cache.add d key (P.json_to_string (P.Obj body)))
      t.disk
  in
  let cached_or_compute key compute =
    match Cache.find t.cache key with
    | Some body ->
        instant t "server.cache_hit";
        t.cx_tier <- "memory";
        (P.ok_response ~id:req.id ~cached:true body, `Continue)
    | None -> (
        match disk_find key with
        | Some body ->
            instant t "server.disk_hit";
            t.cx_tier <- "disk";
            Cache.add t.cache key body;
            (P.ok_response ~id:req.id ~cached:true body, `Continue)
        | None -> (
            instant t "server.cache_miss";
            let c0 = Metrics.now_ns () in
            let computed = compute () in
            add_phase t "compute"
              (Int64.to_int (Int64.sub (Metrics.now_ns ()) c0));
            match computed with
            | Error msg -> (P.error_response ~id:req.id msg, `Continue)
            | Ok body ->
                if expired () then timeout ()
                else begin
                  Cache.add t.cache key body;
                  disk_add key body;
                  (P.ok_response ~id:req.id ~cached:false body, `Continue)
                end))
  in
  (* ---- canonical (structural) tier ----
     [check]/[batch]/[lint] results are keyed by the schema's canonical
     digest, so isomorphic clones — renamed types, shuffled declarations —
     share one cache entry across the LRU and the disk tier.  The byte
     digest stays as a fast pre-check: the [alias] LRU maps it to the
     canonical key and rename maps, so a byte-identical warm request still
     skips parsing entirely; only a byte-miss pays one canonicalization.
     Results are stored under canonical names and renamed back through the
     recorded bijection when served.  [reason] stays byte-keyed (below):
     the complete backends are budget-sensitive and their statistics and
     Unknown-element sets follow variable order, which follows names. *)
  let rename_back renames body =
    match renames with
    | [ r ] -> List.map (fun (k, v) -> (k, Canon.rename_value r v)) body
    | rs ->
        (* batch: each schema has its own bijection, applied to its own
           result slot; top-level fields carry no schema names *)
        List.map
          (fun (k, v) ->
            match (k, v) with
            | "results", P.List items when List.length items = List.length rs
              ->
                ("results", P.List (List.map2 Canon.rename_value rs items))
            | _ -> (k, v))
          body
  in
  let canon_find canon_key =
    match Cache.find t.cache canon_key with
    | Some body ->
        instant t "server.cache_hit";
        t.cx_tier <- "memory";
        Some body
    | None -> (
        match disk_find canon_key with
        | Some body ->
            instant t "server.disk_hit";
            t.cx_tier <- "disk";
            Cache.add t.cache canon_key body;
            Some body
        | None -> None)
  in
  let canonical_cached_or_compute ~load compute =
    let byte_key = P.cache_key req in
    let serve canon_key renames =
      Option.map
        (fun body ->
          ( P.ok_response ~id:req.id ~cached:true (rename_back renames body),
            `Continue ))
        (canon_find canon_key)
    in
    let from_alias =
      match Cache.find t.alias byte_key with
      | Some (canon_key, renames) -> serve canon_key renames
      | None -> None
    in
    match from_alias with
    | Some resp -> resp
    | None -> (
        match load () with
        | Error msg -> (P.error_response ~id:req.id msg, `Continue)
        | Ok schemas -> (
            let c0 = Metrics.now_ns () in
            let canons = List.map Canon.canonicalize schemas in
            add_phase t "canonicalize"
              (Int64.to_int (Int64.sub (Metrics.now_ns ()) c0));
            let canon_key =
              P.canonical_cache_key req
                ~digests:(List.map (fun c -> c.Canon.digest) canons)
            in
            let renames = List.map (fun c -> c.Canon.rename) canons in
            Cache.add t.alias byte_key (canon_key, renames);
            match serve canon_key renames with
            | Some resp ->
                (* the byte digest missed but the structure hit: the whole
                   point of the canonical tier *)
                Option.iter (fun m -> Metrics.record_canon_hit m 1) t.metrics;
                resp
            | None ->
                Option.iter (fun m -> Metrics.record_canon_miss m 1) t.metrics;
                instant t "server.cache_miss";
                let c0 = Metrics.now_ns () in
                let body =
                  compute (List.map (fun c -> c.Canon.schema) canons)
                in
                add_phase t "compute"
                  (Int64.to_int (Int64.sub (Metrics.now_ns ()) c0));
                if expired () then timeout ()
                else begin
                  Cache.add t.cache canon_key body;
                  disk_add canon_key body;
                  ( P.ok_response ~id:req.id ~cached:false
                      (rename_back renames body),
                    `Continue )
                end))
  in
  let require_schema k =
    match req.schema_text with
    | None ->
        ( P.error_response ~id:req.id
            (Printf.sprintf "method %S requires params.schema"
               (P.meth_to_string req.meth)),
          `Continue )
    | Some text -> k text
  in
  let with_schema k =
    require_schema (fun text ->
        canonical_cached_or_compute
          ~load:(fun () -> Result.map (fun s -> [ s ]) (load_schema text))
          (function [ s ] -> k s | _ -> assert false))
  in
  let with_schemas k =
    match req.schema_texts with
    | None | Some [] ->
        ( P.error_response ~id:req.id
            "method \"batch\" requires a non-empty params.schemas array",
          `Continue )
    | Some texts ->
        canonical_cached_or_compute
          ~load:(fun () ->
            (* all schemas must load: the response is per-schema results in
               input order, so a single bad schema fails the whole batch
               with its position rather than shifting everyone's indices *)
            let rec load i = function
              | [] -> Ok []
              | text :: rest -> (
                  match load_schema text with
                  | Error msg -> Error (Printf.sprintf "schemas[%d]: %s" i msg)
                  | Ok schema ->
                      Result.map (fun tl -> schema :: tl) (load (i + 1) rest))
            in
            load 0 texts)
          k
  in
  (* [reason] keeps the plain byte-digest key (see above) *)
  let with_schema_bytes k =
    require_schema (fun text ->
        cached_or_compute (P.cache_key req) (fun () ->
            Result.map k (load_schema text)))
  in
  (* ---- registry methods ---- *)
  let registry_required k =
    match t.registry with
    | None ->
        ( P.error_response ~id:req.id
            "registry not configured (start the server with --registry DIR)",
          `Continue )
    | Some store -> k store
  in
  let registry_ingest store =
    match req.schema_texts with
    | None | Some [] ->
        ( P.error_response ~id:req.id
            "method \"ingest\" requires a non-empty params.schemas array",
          `Continue )
    | Some texts ->
        Registry.refresh store;
        let news = ref 0 and dups = ref 0 and failed = ref 0 in
        let stop = ref false in
        let results =
          List.mapi
            (fun i text ->
              if !stop || expired () then begin
                stop := true;
                None
              end
              else
                Some
                  (match load_schema text with
                  | Error msg ->
                      incr failed;
                      P.Obj
                        [
                          ("index", P.Int i);
                          ("status", P.String "error");
                          ("error", P.String msg);
                        ]
                  | Ok schema ->
                      let c = Canon.canonicalize schema in
                      (* the stored verdict is computed on the canonical
                         representative: one check covers the whole
                         isomorphism class *)
                      let report =
                        Engine.check ~settings:req.settings ?metrics:t.metrics
                          ?tracer:t.tracer ?deadline_ns c.Canon.schema
                      in
                      let patterns =
                        List.fold_left
                          (fun bm d ->
                            match Orm_patterns.Diagnostic.pattern_number d with
                            | Some n -> bm lor Registry.pattern_bit n
                            | None -> bm)
                          0 report.Engine.diagnostics
                      in
                      let verdict =
                        if report.Engine.diagnostics = [] then "clean"
                        else "unsat"
                      in
                      let status =
                        Registry.ingest store ~digest:c.Canon.digest
                          ~name:(Orm.Schema.name schema) ~verdict ~patterns
                          ~diagnostics:(List.length report.Engine.diagnostics)
                          ~entry_body:
                            (P.Obj
                               [
                                 ("canonical", P.String c.Canon.text);
                                 ( "report",
                                   Orm_export.Json.report_value report );
                               ])
                      in
                      let status_s =
                        match status with
                        | `New ->
                            incr news;
                            "new"
                        | `Dup ->
                            incr dups;
                            "duplicate"
                      in
                      P.Obj
                        [
                          ("index", P.Int i);
                          ("digest", P.String c.Canon.digest);
                          ("name", P.String (Orm.Schema.name schema));
                          ("status", P.String status_s);
                          ("verdict", P.String verdict);
                          ( "patterns",
                            Orm_json.ints (Registry.patterns_of_bitmap patterns)
                          );
                        ]))
            texts
        in
        Option.iter
          (fun m ->
            Metrics.record_registry_ingest m ~ingested:!news ~duplicates:!dups)
          t.metrics;
        if !stop then timeout () (* entries already ingested persist *)
        else
          ( P.ok_response ~id:req.id ~cached:false
              [
                ("ingested", P.Int !news);
                ("duplicates", P.Int !dups);
                ("errors", P.Int !failed);
                ("entries", P.Int (Registry.size store));
                ("results", P.List (List.filter_map Fun.id results));
              ],
            `Continue )
  in
  let registry_query store =
    match req.q with
    | None ->
        ( P.error_response ~id:req.id "method \"query\" requires params.q",
          `Continue )
    | Some q -> (
        Registry.refresh store;
        match Registry.query store ?limit:req.limit q with
        | Error msg -> (P.error_response ~id:req.id msg, `Continue)
        | Ok (matches, total) ->
            Option.iter Metrics.record_registry_query t.metrics;
            ( P.ok_response ~id:req.id ~cached:false
                [
                  ("total", P.Int total);
                  ("returned", P.Int (List.length matches));
                  ( "matches",
                    P.List
                      (List.map
                         (fun (e : Registry.entry) ->
                           P.Obj
                             [
                               ("digest", P.String e.digest);
                               ("name", P.String e.name);
                               ("verdict", P.String e.verdict);
                               ( "patterns",
                                 Orm_json.ints
                                   (Registry.patterns_of_bitmap e.patterns) );
                               ("diagnostics", P.Int e.diagnostics);
                             ])
                         matches) );
                ],
              `Continue ))
  in
  let registry_stats_body store =
    Registry.refresh store;
    ( P.ok_response ~id:req.id ~cached:false
        [ ("result", Registry.stats store) ],
      `Continue )
  in
  match req.meth with
  | P.Ping ->
      ( P.ok_response ~id:req.id ~cached:false [ ("result", P.String "pong") ],
        `Continue )
  | P.Stats -> (P.ok_response ~id:req.id ~cached:false (stats_body t), `Continue)
  | P.Shutdown ->
      ( P.ok_response ~id:req.id ~cached:false
          [ ("result", P.String "draining") ],
        `Shutdown )
  | P.Check -> with_schema (check_body t req ~deadline_ns)
  | P.Batch -> with_schemas (batch_body t req ~deadline_ns)
  | P.Lint -> with_schema lint_body
  | P.Reason -> with_schema_bytes (reason_body t req ~deadline_ns)
  | P.Ingest -> registry_required registry_ingest
  | P.Query -> registry_required registry_query
  | P.Registry_stats -> registry_required registry_stats_body

(* Pull a top-level field back out of a response line this server just
   built: the printer is ours and compact, so a substring probe is exact
   enough for audit purposes and avoids re-parsing a possibly large body
   once per request. *)
let find_sub s sub =
  let n = String.length sub and m = String.length s in
  if n = 0 then Some 0
  else begin
    (* hop between occurrences of the needle's first byte (memchr) rather
       than testing every position: this runs once per audited request *)
    let c = sub.[0] in
    let rec at i j = j = n || (s.[i + j] = sub.[j] && at i (j + 1)) in
    let rec go i =
      if i + n > m then None
      else
        match String.index_from_opt s i c with
        | None -> None
        | Some i when i + n > m -> None
        | Some i -> if at i 1 then Some i else go (i + 1)
    in
    go 0
  end

let contains s sub = String.length sub = 0 || find_sub s sub <> None

let response_status resp =
  let needle = "\"status\":\"" in
  match find_sub resp needle with
  | None -> "?"
  | Some i -> (
      let start = i + String.length needle in
      match String.index_from_opt resp start '"' with
      | None -> "?"
      | Some stop -> String.sub resp start (stop - start))

let audit_p95_ns t now =
  if
    t.audit_p95_read_ns = 0L
    || Int64.sub now t.audit_p95_read_ns > 1_000_000_000L
  then begin
    (match t.metrics with
    | Some m ->
        let w = Metrics.window (Metrics.snapshot m) ~now_ns:now ~minutes:5 in
        t.audit_p95 <- w.Metrics.w_p95_ns
    | None -> ());
    t.audit_p95_read_ns <- now
  end;
  t.audit_p95

(* Bound on the span dump a tail-sampled audit record embeds: enough to
   profile one slow request, never the whole ring. *)
let trace_sample_cap = 512

let handle t line =
  reset_audit_ctx t;
  let mark =
    match (t.audit, t.tracer) with
    | Some _, Some tr -> Some (Trace.mark tr)
    | _ -> None
  in
  let t0 = Metrics.now_ns () in
  (* method / id / digest survive into the audit record (and the error
     response) even when the request blew up mid-dispatch *)
  let meta = ref ("?", None, None) in
  let work () =
    let parsed = P.parse_request line in
    add_phase t "parse" (Int64.to_int (Int64.sub (Metrics.now_ns ()) t0));
    let result =
      match parsed with
      | Error (msg, id) ->
          meta := ("?", id, None);
          (P.error_response ~id msg, `Continue)
      | Ok req -> (
          meta := (P.meth_to_string req.meth, req.id, P.schema_digest req);
          if t.fail_next then begin
            t.fail_next <- false;
            failwith "injected failure"
          end;
          let span_name = "server." ^ P.meth_to_string req.meth in
          match t.tracer with
          | None -> dispatch t req
          | Some tr -> Trace.with_span tr span_name (fun () -> dispatch t req))
    in
    t.served <- t.served + 1;
    Option.iter
      (fun m ->
        Metrics.record_request m
          ~time_ns:(Int64.to_int (Int64.sub (Metrics.now_ns ()) t0)))
      t.metrics;
    result
  in
  let guarded () =
    try work ()
    with exn ->
      (* a bug in a backend must produce an error response, not kill the
         process other clients are talking to — and must not leak the
         exception text (paths, internals) to those clients either.  The
         details go to the log with a backtrace; the client gets a generic
         answer it can correlate by id. *)
      let _, id, _ = !meta in
      let bt = Printexc.get_backtrace () in
      Log.err "server: internal error: %s%s" (Printexc.to_string exn)
        (if String.trim bt = "" then "" else "\n" ^ bt);
      Option.iter Metrics.record_internal_error t.metrics;
      (P.error_response ~id "internal error", `Continue)
  in
  let result =
    match t.tracer with
    | None -> guarded ()
    | Some tr -> Trace.with_span tr "server.request" guarded
  in
  (match t.audit with
  | None -> ()
  | Some a ->
      let now = Metrics.now_ns () in
      let elapsed_ns = Int64.to_int (Int64.sub now t0) in
      let resp, _ = result in
      let status = response_status resp in
      let meth, id, digest = !meta in
      let p95 = audit_p95_ns t now in
      let slow = p95 > 0 && elapsed_ns > p95 in
      let trace =
        match mark with
        | Some m when slow || status = "timeout" ->
            let events =
              match t.tracer with
              | Some tr -> Trace.events_since tr m
              | None -> []
            in
            let n = List.length events in
            let events =
              if n > trace_sample_cap then
                List.filteri (fun i _ -> i >= n - trace_sample_cap) events
              else events
            in
            if events = [] then None else Some events
        | _ -> None
      in
      Audit.write a
        {
          Audit.ts = Unix.gettimeofday ();
          id;
          meth;
          digest;
          status;
          cached = contains resp "\"cached\":true";
          tier = t.cx_tier;
          planner = t.cx_planner;
          phases = List.rev t.cx_phases;
          elapsed_ns;
          deadline_ms = t.cx_deadline_ms;
          deadline_slack_ms =
            Option.map (fun d -> d - (elapsed_ns / 1_000_000)) t.cx_deadline_ms;
          worker_pid = t.audit_pid;
          trace;
        });
  result

let overloaded t line =
  let id =
    match P.parse_request line with
    | Ok req -> req.id
    | Error (_, id) -> id
  in
  t.overloads <- t.overloads + 1;
  Option.iter Metrics.record_overload t.metrics;
  instant t "server.overloaded";
  P.overloaded_response ~id ~max_pending:t.config.max_pending

(* ---- transport: select loop over a Unix socket or stdin/stdout -------- *)

type conn = {
  fd_in : Unix.file_descr;
  fd_out : Unix.file_descr;
  inbuf : Buffer.t;
  mutable out : string;  (* bytes accepted but not yet written *)
  mutable eof : bool;  (* input side exhausted *)
  mutable dead : bool;  (* write side failed; drop after cleanup *)
  close_fds : bool;  (* sockets yes, stdio no *)
}

let make_conn ~close_fds fd_in fd_out =
  {
    fd_in;
    fd_out;
    inbuf = Buffer.create 4096;
    out = "";
    eof = false;
    dead = false;
    close_fds;
  }

let enqueue_response conn resp = conn.out <- conn.out ^ resp ^ "\n"

let flush_conn conn =
  if conn.out <> "" && not conn.dead then
    match
      Unix.write_substring conn.fd_out conn.out 0 (String.length conn.out)
    with
    | n -> conn.out <- String.sub conn.out n (String.length conn.out - n)
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
        conn.dead <- true

(* Split the connection's input buffer into complete lines, admitting each
   into the bounded pending queue (or answering [overloaded] on the spot). *)
let admit t pending conn =
  let s = Buffer.contents conn.inbuf in
  let n = String.length s in
  let consumed = ref 0 in
  let rec go start =
    match String.index_from_opt s start '\n' with
    | None -> ()
    | Some i ->
        let line = String.sub s start (i - start) in
        consumed := i + 1;
        if String.trim line <> "" then begin
          if Queue.length pending >= t.config.max_pending then
            enqueue_response conn (overloaded t line)
          else Queue.add (conn, line) pending
        end;
        go (i + 1)
  in
  go 0;
  if !consumed > 0 then begin
    Buffer.clear conn.inbuf;
    Buffer.add_substring conn.inbuf s !consumed (n - !consumed)
  end

let read_conn t pending conn =
  let buf = Bytes.create 65536 in
  match Unix.read conn.fd_in buf 0 (Bytes.length buf) with
  | 0 -> conn.eof <- true
  | n ->
      Buffer.add_subbytes conn.inbuf buf 0 n;
      admit t pending conn
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error ((ECONNRESET | EBADF), _, _) ->
      conn.eof <- true;
      conn.dead <- true

let close_conn conn =
  if conn.close_fds then begin
    (try Unix.close conn.fd_in with Unix.Unix_error _ -> ());
    if conn.fd_out <> conn.fd_in then
      try Unix.close conn.fd_out with Unix.Unix_error _ -> ()
  end

(* Once draining starts the server answers what it has already admitted,
   flushes, and leaves; it stops reading and accepting.  A client that
   never drains its responses cannot hold shutdown hostage: the drain is
   itself bounded. *)
let drain_grace_s = 5.0

let serve ?config_file t mode =
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> Atomic.set t.stop true)) in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> Atomic.set t.stop true)) in
  let old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let old_hup =
    Sys.signal Sys.sighup (Sys.Signal_handle (fun _ -> Atomic.set t.reload true))
  in
  let restore () =
    Sys.set_signal Sys.sigterm old_term;
    Sys.set_signal Sys.sigint old_int;
    Sys.set_signal Sys.sigpipe old_pipe;
    Sys.set_signal Sys.sighup old_hup
  in
  let listen_fd, socket_path, conns =
    match mode with
    | `Stdio ->
        Unix.set_nonblock Unix.stdin;
        (None, None, ref [ make_conn ~close_fds:false Unix.stdin Unix.stdout ])
    | `Socket path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try
           Unix.bind fd (Unix.ADDR_UNIX path);
           Unix.listen fd 64;
           Unix.set_nonblock fd
         with exn ->
           (try Unix.close fd with Unix.Unix_error _ -> ());
           restore ();
           raise exn);
        Log.info "server: listening on %s" path;
        (Some fd, Some path, ref [])
  in
  let pending : (conn * string) Queue.t = Queue.create () in
  let draining = ref false in
  (* monotonic, not wall clock: an NTP step mid-drain must neither cut the
     grace short nor extend it *)
  let drain_deadline = ref Int64.max_int in
  let start_drain reason =
    if not !draining then begin
      draining := true;
      drain_deadline :=
        Int64.add (Metrics.now_ns ()) (Int64.of_float (drain_grace_s *. 1e9));
      Log.info "server: draining (%s): %d pending request(s)" reason
        (Queue.length pending)
    end
  in
  let finished = ref false in
  while not !finished do
    if Atomic.get t.stop then start_drain "signal";
    (* reload between requests, never mid-dispatch: an in-flight request
       finishes under the settings it was admitted with *)
    maybe_reload t config_file;
    (* answer everything already admitted *)
    while not (Queue.is_empty pending) do
      let conn, line = Queue.pop pending in
      Option.iter
        (fun tr -> Trace.counter tr "server.pending" (Queue.length pending))
        t.tracer;
      let resp, verdict = handle t line in
      enqueue_response conn resp;
      if verdict = `Shutdown then start_drain "shutdown request"
    done;
    List.iter flush_conn !conns;
    (* reap finished connections *)
    conns :=
      List.filter
        (fun c ->
          let gone = c.dead || (c.eof && c.out = "") in
          if gone then close_conn c;
          not gone)
        !conns;
    let all_flushed = List.for_all (fun c -> c.out = "" || c.dead) !conns in
    let input_exhausted =
      listen_fd = None && List.for_all (fun c -> c.eof) !conns
    in
    if
      (!draining && all_flushed)
      || (!draining && Metrics.now_ns () > !drain_deadline)
      || (input_exhausted && Queue.is_empty pending && all_flushed)
    then finished := true
    else begin
      let read_fds =
        if !draining then []
        else
          (match listen_fd with Some fd -> [ fd ] | None -> [])
          @ List.filter_map
              (fun c -> if c.eof || c.dead then None else Some c.fd_in)
              !conns
      in
      let write_fds =
        List.filter_map
          (fun c -> if c.out <> "" && not c.dead then Some c.fd_out else None)
          !conns
      in
      match Unix.select read_fds write_fds [] 0.2 with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | ready_r, ready_w, _ ->
          (match listen_fd with
          | Some fd when List.mem fd ready_r ->
              let rec accept_all () =
                match Unix.accept fd with
                | client, _ ->
                    Unix.set_nonblock client;
                    conns := make_conn ~close_fds:true client client :: !conns;
                    accept_all ()
                | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
                | exception Unix.Unix_error (EINTR, _, _) -> ()
              in
              accept_all ()
          | _ -> ());
          List.iter
            (fun c -> if List.mem c.fd_in ready_r then read_conn t pending c)
            !conns;
          List.iter
            (fun c -> if List.mem c.fd_out ready_w then flush_conn c)
            !conns
    end
  done;
  List.iter
    (fun c ->
      flush_conn c;
      close_conn c)
    !conns;
  (match listen_fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  (match socket_path with
  | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | None -> ());
  Log.info "server: stopped after %d request(s) (%d timeout(s), %d overload(s))"
    t.served t.timeouts t.overloads;
  restore ()
