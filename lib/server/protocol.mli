(** Wire protocol of the checking service ([ormcheck serve]).

    Requests and responses travel as newline-delimited JSON: one object per
    line, in a versioned envelope.  A request is

    {v
    {"ormcheck": 1, "id": "r1", "method": "check", "params": {...}}
    v}

    and the matching response echoes the envelope version and [id]:

    {v
    {"ormcheck": 1, "id": "r1", "status": "ok", "cached": false, ...}
    v}

    [status] is one of [ok], [error], [timeout] (the request's deadline
    expired) or [overloaded] (admission control rejected it).  The full
    field catalogue is documented in [docs/SERVER.md]; this module is the
    single place both the server and the bundled [ormcheck client] build
    and parse those lines, so the two cannot drift apart. *)

(** {1 JSON} *)

type json = Orm_json.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list
      (** the repository-wide JSON type ({!Orm_json.t}), re-exported so
          protocol values can be built and matched without naming
          [Orm_json] *)

val json_to_string : json -> string
(** {!Orm_json.to_string}: compact printing. *)

val json_of_string : string -> (json, string) result
(** Strict RFC 8259 parsing via {!Orm_json.of_string}, with nesting
    bounded at 64 levels — envelope lines arrive over the network.
    [Error] carries the offending byte offset.  Integer-typed envelope
    fields still reject [Float] values individually. *)

val member : string -> json -> json option
(** Field lookup on an [Obj]; [None] on other constructors. *)

(** {1 Requests} *)

val version : int
(** Envelope version this build speaks (1).  Requests carrying any other
    version are answered with an [error] response. *)

val format_version : int
(** Schema-format / result-encoding version of this build
    ({!Cache_key.format_version}), folded into every {!cache_key}.  Bump
    it (there) whenever the [.orm] format or the meaning of a serialized
    result changes, so persistent stores written by older builds — LRU
    keys, disk-cache entries and registry records alike — miss instead of
    serving stale answers. *)

val default_budget : int
(** Tableau rule budget a request carries when the wire names none. *)

val default_sat_budget : int
(** DPLL step budget a request carries when the wire names none. *)

type meth =
  | Check
  | Batch
  | Reason
  | Lint
  | Stats
  | Ping
  | Shutdown
  | Ingest  (** bulk-add checked schemas to the registry store *)
  | Query  (** covering-index query over the registry ([q] param) *)
  | Registry_stats  (** registry aggregates; wire name ["registry-stats"] *)

val meth_to_string : meth -> string
val meth_of_string : string -> meth option

type request = {
  id : string option;  (** echoed verbatim in the response *)
  meth : meth;
  schema_text : string option;  (** inline [.orm] source; [check]/[reason]/[lint] *)
  schema_texts : string list option;
      (** inline sources of a [batch] request, checked in order *)
  settings : Orm_patterns.Settings.t;
  jobs : int;  (** [> 1] checks on that many domains *)
  deadline_ms : int option;  (** per-request deadline; overrides the server default *)
  budget : int;  (** tableau rule budget ([reason]) *)
  sat_budget : int;  (** DPLL step budget ([reason]) *)
  backend : [ `Auto | `Dlr | `Sat | `SatLazy | `Both ];
      (** complete procedure(s) for [reason]; [`Auto] delegates the choice
          to the planner (the wire default stays ["both"] for
          compatibility — older clients keep their semantics) *)
  q : string option;  (** registry query string ([query]) *)
  limit : int option;  (** registry query match cap ([query]) *)
}

val backend_to_string : [ `Auto | `Dlr | `Sat | `SatLazy | `Both ] -> string
(** The wire spelling ("auto" / "dlr" / "sat" / "sat-lazy" / "both"). *)

val parse_request : string -> (request, string * string option) result
(** Parses one request line.  [Error (message, id)] carries the request id
    when the envelope parsed far enough to reveal one, so the error
    response can still be correlated by the client. *)

val build_request :
  ?id:string ->
  ?schema_text:string ->
  ?schema_texts:string list ->
  ?settings:Orm_patterns.Settings.t ->
  ?jobs:int ->
  ?deadline_ms:int ->
  ?budget:int ->
  ?sat_budget:int ->
  ?backend:[ `Auto | `Dlr | `Sat | `SatLazy | `Both ] ->
  ?q:string ->
  ?limit:int ->
  meth ->
  string
(** The client side: one request line (no trailing newline).  Settings and
    numeric fields are emitted only when they differ from the defaults, so
    the common case stays short. *)

val build_params :
  ?schema_text:string ->
  ?schema_texts:string list ->
  ?settings:Orm_patterns.Settings.t ->
  ?jobs:int ->
  ?deadline_ms:int ->
  ?budget:int ->
  ?sat_budget:int ->
  ?backend:[ `Auto | `Dlr | `Sat | `SatLazy | `Both ] ->
  ?q:string ->
  ?limit:int ->
  unit ->
  string
(** Just the [params] object of {!build_request}, serialized — the HTTP
    transport carries it as the request body ([POST /v1/<method>]) and
    rebuilds the envelope server-side, so both transports share one
    params encoding. *)

val cache_key : request -> string
(** Content-addressed cache key: the build's {!format_version} plus a
    digest of the schema text (or the NUL-joined batch texts) plus every
    request field that can change the answer (method, settings, budgets,
    backend) — and {e not} [id], [jobs] or [deadline_ms], which cannot.
    Meaningless (but stable) for requests without a schema. *)

val cache_key_with : format_version:int -> request -> string
(** {!cache_key} under an explicit format version — exposed so tests can
    prove that a version bump misses the cache. *)

val canonical_cache_key : request -> digests:string list -> string
(** The structural tier's key for a request whose schema(s) canonicalized
    to [digests] ({!Orm_registry.Canon.digest}, in request order for a
    batch): identical to {!cache_key} except the subject is the joined
    canonical digests prefixed [c-], so isomorphic clones share an entry
    in both the LRU and the disk tier. *)

val schema_digest : request -> string option
(** The digest component alone (hex MD5 of the schema text, or of the
    NUL-joined batch texts) — what audit records report as the request's
    subject.  [None] for requests that carry no schema. *)

(** {1 Responses} *)

val ok_response :
  id:string option -> cached:bool -> (string * json) list -> string

val error_response : id:string option -> string -> string

val timeout_response : id:string option -> elapsed_ms:int -> string

val overloaded_response : id:string option -> max_pending:int -> string

type parsed_response = {
  resp_id : string option;
  status : string;  (** "ok", "error", "timeout" or "overloaded" *)
  cached : bool;
  body : json;  (** the whole response object *)
}

val parse_response : string -> (parsed_response, string) result
(** Used by the bundled client and the tests. *)
