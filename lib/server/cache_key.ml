let format_version = 3

let render ~format_version ~subject ~meth ~settings_key ~budget ~sat_budget
    ~backend =
  Printf.sprintf "v%d:%s:%s:%s:b%d:sb%d:%s" format_version subject meth
    settings_key budget sat_budget backend
