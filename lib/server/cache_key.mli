(** The one format-version constant shared by every persistent tier.

    Three stores outlive a process: the in-memory LRU snapshots nothing,
    but the disk cache ([lib/server/disk_cache]) and the registry store
    ([lib/registry/store]) both persist results, and the LRU's keys must
    agree with the disk tier's so promotion works.  All three derive their
    versioning from {!format_version}: the LRU and disk tiers fold it into
    every key via {!render}, and the registry stamps it on every index
    record and skips foreign records on replay.  Bumping the constant
    therefore invalidates all three tiers in the same breath — there is no
    way to bump one and forget another. *)

val format_version : int
(** Bump whenever the [.orm] schema format, the meaning of a serialized
    result, or the canonical form computed by [Orm_registry.Canon]
    changes.
    v2: unified JSON core — shortest-round-trip float printing and the
    sharded disk-cache layout.
    v3: canonical cache tier and registry — keys gain a structural
    subject, and canonicalization now defines result identity. *)

val render :
  format_version:int ->
  subject:string ->
  meth:string ->
  settings_key:string ->
  budget:int ->
  sat_budget:int ->
  backend:string ->
  string
(** The shared key syntax: [v<fv>:<subject>:<meth>:<settings>:b<n>:sb<n>:<backend>].
    The [subject] is a hex digest of the request's schema payload — the
    byte digest for the byte-addressed tier, or the canonical digest
    (prefixed [c-]) for the structural tier — and must not contain [':']
    ambiguity-inducing content (hex and [c-] prefixes are safe). *)
