(** The long-running checking service behind [ormcheck serve].

    The paper's point is that the pattern checks are cheap enough to run
    inside a modeling tool's edit loop while the complete DLR route is
    worst-case exponential; a server is the natural shape for that split —
    a warm process answers the cheap requests immediately (and repeated
    ones straight from a content-addressed cache), while the expensive
    complete checks are bounded by per-request deadlines instead of being
    allowed to wedge the process.

    One server owns:
    {ul
    {- a {!Cache} of finished results keyed by
       {!Protocol.canonical_cache_key} for [check]/[batch]/[lint] (format
       version + canonical digest + settings — isomorphic clones share an
       entry) and by the byte-digest {!Protocol.cache_key} for [reason]
       (the complete backends are budget- and name-order-sensitive);
       hit/miss counters mirrored into the attached
       {!Orm_telemetry.Metrics}.  A second, unmetered LRU aliases byte
       digests to canonical keys so a byte-identical warm request skips
       parsing entirely;}
    {- optionally an {!Orm_registry.Store}: the [ingest], [query] and
       [registry-stats] methods over a persistent corpus of checked
       schemas, deduplicated by canonical digest;}
    {- optionally a persistent {!Disk_cache} tier under the LRU: a miss
       falls through to disk before computing, a disk hit is promoted into
       the LRU, a computed [ok] result is written to both — so a restarted
       server still answers previously-checked schemas without recomputing;}
    {- per-request deadlines ([deadline_ms] in the request, else the
       configured default) forwarded to the DLR tableau and DPLL backends,
       which abandon the search cleanly and let the server answer
       [timeout];}
    {- admission control: a bounded pending queue; requests beyond
       [max_pending] are answered [overloaded] without being queued;}
    {- graceful shutdown: SIGINT/SIGTERM (or a [shutdown] request) stop
       intake, drain the already-admitted requests, flush the responses and
       return — the CLI then exits 0.}}

    Request handling is single-threaded by design: the event loop owns all
    state (no locks), the engine itself can still fan a single check across
    domains ([jobs] in the request), and a deadline bounds the time any one
    request can hold the loop.  The transport is newline-delimited JSON
    over a Unix-domain socket, or stdin/stdout ([`Stdio]) for tests and
    editor integrations. *)

type config = {
  cache_capacity : int;  (** LRU entries kept (default 512) *)
  max_pending : int;  (** admission-control queue bound (default 64) *)
  default_deadline_ms : int option;
      (** deadline applied when a request names none; [None] = unbounded *)
  default_jobs : int;  (** domain count for requests that don't ask (default 1) *)
  default_budget : int;
      (** tableau budget for requests at the protocol default *)
  default_sat_budget : int;
      (** DPLL budget for requests at the protocol default *)
  slo : Orm_obs.Slo.config;
      (** rolling-window objectives the [slo] stats section and the
          Prometheus gauges report against *)
  drain_linger_ms : int;
      (** how long a draining network front end keeps accepting (answering
          503 on [/readyz]) before closing its listeners; 0 = immediately *)
}

val default_config : config

type t

val create :
  ?metrics:Orm_telemetry.Metrics.t ->
  ?tracer:Orm_trace.Trace.t ->
  ?disk_cache:Disk_cache.t ->
  ?stats_sink:string ->
  ?audit:Orm_obs.Audit.t ->
  ?registry:Orm_registry.Store.t ->
  config ->
  t
(** A fresh server.  [metrics] receives one [record_request] per answered
    request (with latency histogram), [record_timeout] / [record_overload]
    per abandoned or rejected one, and the cache's hit/miss counters.
    [tracer] records a [server.request] span per request with a
    [server.<method>] span nested inside, plus [server.cache_hit] /
    [server.disk_hit] / [server.cache_miss] / [server.timeout] /
    [server.overloaded] instants — a server trace profiles with
    [ormcheck profile] like any other.

    [disk_cache] adds the persistent tier under the in-memory LRU.
    [stats_sink] names the directory where {!flush_stats} drops this
    process's metrics snapshot and where the [stats] method aggregates a
    [cluster] view over every worker's snapshot (prefork sharding).

    [audit] attaches a per-request {!Orm_obs.Audit} log: one NDJSON record
    per handled request, tail-sampling a trace dump for requests slower
    than the rolling 5-minute p95 or timed out.  An auditing server with
    no [tracer] records spans into a private one so the dumps have
    content.

    [registry] enables the [ingest] / [query] / [registry-stats] methods
    over that store; without it they answer an [error] telling the
    operator to start with [--registry DIR]. *)

val config : t -> config
(** The server's current configuration (initially what it was created
    with, possibly changed since by {!reconfigure}) — the network front
    end reads [max_pending] to run the same admission control as the
    built-in loop. *)

(** {1 Hot config reload} *)

val reconfigure : t -> Server_config.t -> unit
(** Applies the overrides present in a loaded config: deadline, budgets
    and [max_pending] take effect for the next request admitted, the LRU
    and disk tier resize in place (shrinking evicts/sweeps immediately),
    and the log level switches globally.  In-flight requests finish under
    the settings they were admitted with. *)

val reload_config_file : t -> string -> unit
(** {!Server_config.load} + {!reconfigure}, logging the outcome.  A file
    that fails to load keeps the current settings (logged as an error) —
    a typo in a config edit must not take down a running service. *)

val reload_flag : t -> bool Atomic.t
(** The flag a SIGHUP handler sets; transport loops poll it between
    requests and re-read their config file when it is up.  {!serve} wires
    this itself; the network front end owns its own signal handling. *)

val handle : t -> string -> string * [ `Continue | `Shutdown ]
(** [handle t line] answers one request line with one response line
    (neither carries the ['\n']).  Never raises: an exception escaping a
    backend is logged with its backtrace, counted
    ([internal_errors] in the metrics), and answered with a generic
    [error] response that does not echo the exception text to the client.  [`Shutdown] accompanies a [shutdown] request's
    response; the transport loop is expected to drain and stop.  Exposed
    for tests and benchmarks, which drive a server without any socket. *)

val overloaded : t -> string -> string
(** The [overloaded] response for a request line that admission control
    rejected (counted and traced; the line is parsed only far enough to
    echo its [id]). *)

val serve : ?config_file:string -> t -> [ `Socket of string | `Stdio ] -> unit
(** Runs the event loop until a [shutdown] request, SIGINT/SIGTERM, or (in
    [`Stdio] mode) end of input.  Installs SIGINT/SIGTERM handlers that
    trigger the drain, a SIGHUP handler that re-reads [config_file]
    between requests (hot reload; without a [config_file] the signal is
    logged and ignored), and ignores SIGPIPE (a client hanging up
    mid-response must not kill the server).  [`Socket path] binds a
    Unix-domain socket at [path] (an existing file there is replaced) and
    removes it on the way out. *)

val flush_stats : t -> unit
(** Writes this process's metrics snapshot into the [stats_sink] directory
    (atomically, keyed by pid); a no-op without a sink or metrics.  The
    network front end calls it periodically and on drain so the [stats]
    method's [cluster] aggregate stays fresh across prefork workers. *)

val metrics_body : t -> string
(** The [GET /metrics] Prometheus exposition (text format 0.0.4) —
    {!Orm_obs.Prometheus.render} over this process's snapshot, or over the
    fold of every worker snapshot in the [stats_sink] when the server is
    sharded, so one scrape sees the cluster.  Includes the rolling-window
    SLO gauges evaluated against the configured objectives. *)

val readiness : t -> draining:bool -> pending:int -> (unit, string) result
(** The [GET /readyz] decision: [Error reason] while draining, while the
    pending queue sits at [max_pending], or when the persistent tier's
    directory is not writable (probed with a real write, cached for five
    seconds).  [Ok ()] otherwise; [GET /healthz] is unconditional. *)

val inject_failure : t -> unit
(** Test hook: makes the next dispatched request raise inside the handler,
    so the internal-error path (generic response, counter, log) can be
    exercised from the tests. *)

val stop_flag : t -> bool Atomic.t
(** The flag {!serve} polls: setting it from a signal handler (or another
    transport loop) starts the drain.  Exposed for the network front end,
    which owns its own signal handling. *)

(** {1 Introspection} (the [stats] method and the tests) *)

val requests_served : t -> int
val timeouts_total : t -> int
val overloads_total : t -> int
val cache_length : t -> int
val cache_hits : t -> int
val cache_misses : t -> int

val disk_hits : t -> int
(** Hits served by the persistent tier; 0 when the server has none. *)

val disk_misses : t -> int
